#!/usr/bin/env bash
# Loopback smoke test: build gfserved + gfload, bring the server up,
# drive 10k RS(255,239) round trips over 8 connections through a noisy
# channel, then shut the server down gracefully (SIGINT) and check it
# drains and exits cleanly. Run from the repo root; exits nonzero on
# any failure.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:46500}"
REQUESTS="${REQUESTS:-10000}"
CONNS="${CONNS:-8}"
WINDOW="${WINDOW:-8}"
# ~2 bit flips per 255-byte word: real corrections on every frame, but
# comfortably inside RS(255,239)'s t=8 bound (p=0.004 would sit AT the
# bound and fail half the words).
P="${P:-0.001}"

workdir=$(mktemp -d)
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/gfserved" ./cmd/gfserved
go build -o "$workdir/gfload" ./cmd/gfload

"$workdir/gfserved" -addr "$ADDR" >"$workdir/server.log" 2>&1 &
server_pid=$!

"$workdir/gfload" -addr "$ADDR" -wait 10s \
  -conns "$CONNS" -window "$WINDOW" -requests "$REQUESTS" -p "$P"

kill -INT "$server_pid"
for _ in $(seq 1 100); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
  echo "smoke: gfserved did not exit within 10s of SIGINT" >&2
  cat "$workdir/server.log" >&2
  exit 1
fi
wait "$server_pid" || {
  status=$?
  echo "smoke: gfserved exited with status $status" >&2
  cat "$workdir/server.log" >&2
  exit "$status"
}

grep -q '"requests"' "$workdir/server.log" || {
  echo "smoke: no final stats snapshot in server log" >&2
  cat "$workdir/server.log" >&2
  exit 1
}
echo "smoke: ok — $REQUESTS round trips + graceful drain"
