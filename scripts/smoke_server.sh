#!/usr/bin/env bash
# Loopback smoke test: build gfserved + gfload, bring the server up with
# the admin endpoint and progress lines enabled, drive 10k RS(255,239)
# round trips over 8 connections through a noisy channel while scraping
# /healthz and /metrics mid-load (failing on malformed exposition), then
# shut the server down gracefully (SIGINT) and check it drains and exits
# cleanly. Run from the repo root; exits nonzero on any failure.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:24650}"
ADMIN="${ADMIN:-127.0.0.1:24690}"
REQUESTS="${REQUESTS:-10000}"
CONNS="${CONNS:-8}"
WINDOW="${WINDOW:-8}"
# ~2 bit flips per 255-byte word: real corrections on every frame, but
# comfortably inside RS(255,239)'s t=8 bound (p=0.004 would sit AT the
# bound and fail half the words).
P="${P:-0.001}"

workdir=$(mktemp -d)
trap 'kill "$server_pid" "$load_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
server_pid= load_pid=

go build -o "$workdir/gfserved" ./cmd/gfserved
go build -o "$workdir/gfload" ./cmd/gfload

"$workdir/gfserved" -addr "$ADDR" -admin "$ADMIN" -progress 2s \
  -trace-every 8 >"$workdir/server.log" 2>&1 &
server_pid=$!

# Wait for the admin plane before launching load.
up=0
for _ in $(seq 1 100); do
  if curl -fsS "http://$ADMIN/healthz" >/dev/null 2>&1; then up=1; break; fi
  sleep 0.1
done
if [ "$up" != 1 ]; then
  echo "smoke: /healthz never came up on $ADMIN" >&2
  cat "$workdir/server.log" >&2
  exit 1
fi

"$workdir/gfload" -addr "$ADDR" -wait 10s \
  -conns "$CONNS" -window "$WINDOW" -requests "$REQUESTS" -p "$P" \
  -metrics-out "$workdir/load-metrics.json" >"$workdir/load.log" 2>&1 &
load_pid=$!

# Mid-load scrape: the exposition must be well-formed Prometheus text —
# every line a comment (# HELP/# TYPE) or `name{labels} value [ts]` —
# and must cover the server ledger, pipeline stages, queue-wait
# histograms and kernel tiers.
sleep 0.5
curl -fsS "http://$ADMIN/metrics" >"$workdir/metrics.txt"
awk '
  /^#/ {
    if ($0 !~ /^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* /) { bad = 1; print "bad comment: " $0 > "/dev/stderr" }
    next
  }
  !/^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)( [0-9]+)?$/ {
    bad = 1; print "bad sample: " $0 > "/dev/stderr"
  }
  END { exit bad }
' "$workdir/metrics.txt" || {
  echo "smoke: malformed Prometheus exposition" >&2
  exit 1
}
for want in gfp_server_requests_total gfp_pipeline_stage_frames_total \
    gfp_pipeline_stage_queue_wait_seconds_bucket gfp_gf_kernel_calls_total; do
  grep -q "^$want" "$workdir/metrics.txt" || {
    echo "smoke: /metrics missing $want" >&2
    exit 1
  }
done
# Download before grepping: with pipefail, `curl | grep -q` fails
# whenever grep matches and exits before curl finishes writing.
curl -fsS "http://$ADMIN/statsz" >"$workdir/statsz.json"
grep -q '"metrics"' "$workdir/statsz.json" || {
  echo "smoke: /statsz missing metrics array" >&2
  exit 1
}

wait "$load_pid" || {
  status=$?
  echo "smoke: gfload exited with status $status" >&2
  cat "$workdir/load.log" >&2
  exit "$status"
}
load_pid=

# Post-load: the tracer must have sampled frames.
traced=$(curl -fsS "http://$ADMIN/metrics" | awk '/^gfp_pipeline_traced_frames_total /{print $2}')
if [ -z "$traced" ] || [ "${traced%%.*}" -lt 1 ]; then
  echo "smoke: no traced frames after load (got '${traced:-none}')" >&2
  exit 1
fi
grep -q '"gfp_load_round_trips_total"' "$workdir/load-metrics.json" || {
  echo "smoke: gfload -metrics-out dump missing round-trip counters" >&2
  exit 1
}

kill -INT "$server_pid"
for _ in $(seq 1 100); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
  echo "smoke: gfserved did not exit within 10s of SIGINT" >&2
  cat "$workdir/server.log" >&2
  exit 1
fi
wait "$server_pid" || {
  status=$?
  echo "smoke: gfserved exited with status $status" >&2
  cat "$workdir/server.log" >&2
  exit "$status"
}
server_pid=

grep -q '"requests"' "$workdir/server.log" || {
  echo "smoke: no final stats snapshot in server log" >&2
  cat "$workdir/server.log" >&2
  exit 1
}
echo "smoke: ok — $REQUESTS round trips + live /metrics + graceful drain"
