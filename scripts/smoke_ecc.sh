#!/usr/bin/env bash
# ECC service smoke test: build gfserved + gfproxy + gfload, bring up a
# 2-backend fleet sharing one key (so both derive the same deterministic
# signing scalar — identical public points and signatures), front it
# with gfproxy, and drive `gfload -mode ecc` (sign → verify → derive,
# cross-checked client-side) through the proxy while SIGKILLing one
# backend mid-load: sign/verify/derive are idempotent, so the proxy
# must replay them on the survivor and the run must finish with zero
# wrong answers. Then `-mode session` handshakes against the surviving
# backend, the gfp_ecc_* metric families are checked on the backend
# admin page, the proxy ledger must balance exactly, and everything
# drains on SIGINT. Run from the repo root; exits nonzero on failure.
set -euo pipefail

ECC_REQUESTS="${ECC_REQUESTS:-2000}"
SESSION_REQUESTS="${SESSION_REQUESTS:-400}"
CONNS="${CONNS:-8}"
WINDOW="${WINDOW:-4}"
# 16 bytes: a valid AES-128 key, shared so the fleet signs identically.
FLEET_KEY="${FLEET_KEY:-ecc-smoke-key-16}"

workdir=$(mktemp -d)
pids=()
trap 'kill "${pids[@]}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/gfserved" ./cmd/gfserved
go build -o "$workdir/gfproxy" ./cmd/gfproxy
go build -o "$workdir/gfload" ./cmd/gfload

# wait_line FILE REGEX: polls until the first capture of REGEX appears
# in FILE and prints it.
wait_line() {
  local file=$1 re=$2 m
  for _ in $(seq 1 100); do
    m=$(sed -nE "s#.*$re.*#\1#p" "$file" 2>/dev/null | head -1)
    if [ -n "$m" ]; then echo "$m"; return 0; fi
    sleep 0.1
  done
  echo "smoke-ecc: never saw /$re/ in $file" >&2
  cat "$file" >&2
  return 1
}

start_backend() {
  local i=$1
  "$workdir/gfserved" -addr 127.0.0.1:0 -admin 127.0.0.1:0 \
    -key "$FLEET_KEY" -quiet >"$workdir/backend$i.log" 2>&1 &
  pids+=($!)
  eval "b${i}_pid=$!"
  eval "b${i}_addr=\$(wait_line "$workdir/backend$i.log" 'listening on ([0-9.:]+)')"
  eval "b${i}_admin=\$(wait_line "$workdir/backend$i.log" 'admin on http://([0-9.:]+)')"
  eval "b${i}_pub=\$(wait_line "$workdir/backend$i.log" 'pub ([0-9a-f]+)')"
}

start_backend 1
start_backend 2
echo "smoke-ecc: backends $b1_addr $b2_addr"

# Shared key => shared signing identity: the fleet must advertise one
# public point, or retried signatures would differ across backends.
if [ "$b1_pub" != "$b2_pub" ]; then
  echo "smoke-ecc: fleet public points differ under a shared key" >&2
  echo "  $b1_addr: $b1_pub" >&2
  echo "  $b2_addr: $b2_pub" >&2
  exit 1
fi
echo "smoke-ecc: fleet signing identity ${b1_pub:0:16}… shared by both backends"

# The startup self-test now covers gfbig: every mul strategy must agree
# on GF(2^233) before the backend takes ECC traffic.
curl -fsS "http://$b1_admin/selftest" >"$workdir/selftest.json"
grep -q '"ok": true' "$workdir/selftest.json" || {
  echo "smoke-ecc: backend /selftest did not pass" >&2
  cat "$workdir/selftest.json" >&2
  exit 1
}
grep -q 'gfbig' "$workdir/selftest.json" || {
  echo "smoke-ecc: /selftest does not cover the gfbig field" >&2
  cat "$workdir/selftest.json" >&2
  exit 1
}

"$workdir/gfproxy" -addr 127.0.0.1:0 -admin 127.0.0.1:0 \
  -backends "$b1_addr@$b1_admin,$b2_addr@$b2_admin" \
  -route request -retries 3 \
  -health-interval 200ms -health-timeout 1s -fail-after 2 -readmit-after 2 \
  -dial-wait 200ms -quiet >"$workdir/proxy.log" 2>&1 &
pids+=($!)
proxy_pid=$!
proxy_addr=$(wait_line "$workdir/proxy.log" 'listening on ([0-9.:]+)')
proxy_admin=$(wait_line "$workdir/proxy.log" 'admin on http://([0-9.:]+)')

# --- sign/verify/derive through the proxy, killing a backend under load ---
"$workdir/gfload" -addr "$proxy_addr" -wait 10s -mode ecc \
  -conns "$CONNS" -window "$WINDOW" -requests "$ECC_REQUESTS" \
  >"$workdir/load-ecc.log" 2>&1 &
load_pid=$!
pids+=($load_pid)

sleep 0.5
{ kill -9 "$b1_pid" && wait "$b1_pid"; } 2>/dev/null || true
echo "smoke-ecc: SIGKILLed backend $b1_addr under ecc load"

metric() { curl -fsS "http://$proxy_admin/metrics" | awk -v m="$1" '$1 == m {print int($2)}'; }

ejected=0
for _ in $(seq 1 100); do
  if [ "$(metric gfp_proxy_ejections_total)" -ge 1 ]; then ejected=1; break; fi
  sleep 0.1
done
if [ "$ejected" != 1 ]; then
  echo "smoke-ecc: killed backend was never ejected" >&2
  curl -fsS "http://$proxy_admin/statsz" >&2 || true
  exit 1
fi

# Every ECC round trip must land: the retried signatures came off the
# survivor's identical scalar, and the client-side cross-checks (shared
# secret, signature verification) hold bit-for-bit.
wait "$load_pid" || {
  status=$?
  echo "smoke-ecc: ecc load failed across the kill (status $status)" >&2
  cat "$workdir/load-ecc.log" >&2
  exit "$status"
}
grep -q 'mode ecc on NIST K-233' "$workdir/load-ecc.log" || {
  echo "smoke-ecc: load banner missing the discovered curve" >&2
  cat "$workdir/load-ecc.log" >&2
  exit 1
}
echo "smoke-ecc: $ECC_REQUESTS sign/verify/derive round trips survived the kill with zero failures"

# --- secure-session handshakes against the surviving backend ------------
"$workdir/gfload" -addr "$proxy_addr" -wait 10s -mode session \
  -conns "$CONNS" -window "$WINDOW" -requests "$SESSION_REQUESTS" \
  >"$workdir/load-session.log" 2>&1 || {
  status=$?
  echo "smoke-ecc: session load failed (status $status)" >&2
  cat "$workdir/load-session.log" >&2
  exit "$status"
}
echo "smoke-ecc: $SESSION_REQUESTS secure-session handshakes opened cleanly"

# --- backend ECC metrics -------------------------------------------------
curl -fsS "http://$b2_admin/metrics" >"$workdir/backend-metrics.txt"
for want in 'gfp_ecc_ops_total{op="ecdsa-sign"}' \
    'gfp_ecc_ops_total{op="ecdsa-verify"}' \
    'gfp_ecc_ops_total{op="ecdh-derive"}' \
    'gfp_ecc_ops_total{op="secure-session"}' \
    gfp_ecc_failures_total gfp_ecc_sign_seconds_bucket gfp_ecc_derive_seconds_bucket \
    gfp_ecc_info; do
  grep -qF "$want" "$workdir/backend-metrics.txt" || {
    echo "smoke-ecc: backend /metrics missing $want" >&2
    exit 1
  }
done
signs=$(awk -F' ' '/^gfp_ecc_ops_total\{op="ecdsa-sign"\} /{print int($2)}' "$workdir/backend-metrics.txt")
if [ -z "$signs" ] || [ "$signs" -lt 1 ]; then
  echo "smoke-ecc: surviving backend signed nothing (got '${signs:-none}')" >&2
  exit 1
fi
echo "smoke-ecc: surviving backend served $signs signatures; gfp_ecc_* families present"

# --- exact proxy ledger, then graceful teardown --------------------------
curl -fsS "http://$proxy_admin/metrics" >"$workdir/proxy-metrics.txt"
awk '
  $1 == "gfp_proxy_requests_total"  { req  = $2 }
  $1 == "gfp_proxy_responses_total" { resp = $2 }
  $1 == "gfp_proxy_rejects_total"   { rej  = $2 }
  $1 == "gfp_proxy_dropped_total"   { drop = $2 }
  END {
    if (req == "" || req != resp + rej + drop) {
      printf "ledger: requests=%d responses=%d rejects=%d dropped=%d\n", req, resp, rej, drop > "/dev/stderr"
      exit 1
    }
  }
' "$workdir/proxy-metrics.txt" || {
  echo "smoke-ecc: proxy request ledger does not balance" >&2
  exit 1
}

kill -INT "$proxy_pid"
for _ in $(seq 1 100); do
  kill -0 "$proxy_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$proxy_pid" 2>/dev/null; then
  echo "smoke-ecc: gfproxy did not exit within 10s of SIGINT" >&2
  cat "$workdir/proxy.log" >&2
  exit 1
fi
kill -INT "$b2_pid" 2>/dev/null || true
echo "smoke-ecc: ok — fleet-deterministic signing, kill-tolerant idempotent retries, sealed handshakes, balanced ledger"
