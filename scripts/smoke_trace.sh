#!/usr/bin/env bash
# Distributed-tracing smoke test: build gfserved + gfproxy + gfload,
# bring up a 2-backend fleet behind a gfproxy, drive a traced load
# burst (gfload samples one round trip in N and prints the sampled
# trace ids), then assert the observability surfaces hold together:
# a sampled trace id appears on the proxy's fleet-merged /tracez AND on
# a backend's own /tracez, its spans cover >= 3 hops across >= 2
# services with nonzero monotonic start timestamps, the proxy's SLO
# tracker counted requests (gfp_slo_requests_total > 0), structured
# wide events landed in the proxy's JSON log, and gfload's own report
# carries the client-side SLO line. Run from the repo root; exits
# nonzero on any failure.
set -euo pipefail

REQUESTS="${REQUESTS:-2000}"
CONNS="${CONNS:-4}"
WINDOW="${WINDOW:-4}"
TRACE_EVERY="${TRACE_EVERY:-50}"

workdir=$(mktemp -d)
pids=()
trap 'kill "${pids[@]}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/gfserved" ./cmd/gfserved
go build -o "$workdir/gfproxy" ./cmd/gfproxy
go build -o "$workdir/gfload" ./cmd/gfload

# wait_line FILE REGEX: polls until the first capture of REGEX appears
# in FILE and prints it.
wait_line() {
  local file=$1 re=$2 m
  for _ in $(seq 1 100); do
    m=$(sed -nE "s#.*$re.*#\1#p" "$file" 2>/dev/null | head -1)
    if [ -n "$m" ]; then echo "$m"; return 0; fi
    sleep 0.1
  done
  echo "smoke-trace: never saw /$re/ in $file" >&2
  cat "$file" >&2
  return 1
}

start_backend() {
  local i=$1
  "$workdir/gfserved" -addr 127.0.0.1:0 -admin 127.0.0.1:0 -quiet \
    -trace-ring 4096 -slo 'default=250ms@99' \
    >"$workdir/backend$i.log" 2>&1 &
  pids+=($!)
  eval "b${i}_addr=\$(wait_line "$workdir/backend$i.log" 'listening on ([0-9.:]+)')"
  eval "b${i}_admin=\$(wait_line "$workdir/backend$i.log" 'admin on http://([0-9.:]+)')"
}

start_backend 1
start_backend 2
echo "smoke-trace: backends $b1_addr $b2_addr"

"$workdir/gfproxy" -addr 127.0.0.1:0 -admin 127.0.0.1:0 \
  -backends "$b1_addr@$b1_admin,$b2_addr@$b2_admin" -route request \
  -health-interval 200ms -dial-wait 200ms -quiet \
  -trace-ring 4096 -slo 'default=250ms@99' \
  -log-format json -wide-every 500 \
  >"$workdir/proxy.log" 2>&1 &
pids+=($!)
proxy_addr=$(wait_line "$workdir/proxy.log" 'listening on ([0-9.:]+)')
proxy_admin=$(wait_line "$workdir/proxy.log" 'admin on http://([0-9.:]+)')
echo "smoke-trace: proxy $proxy_addr (admin $proxy_admin)"

# --- traced burst through the proxy --------------------------------------
"$workdir/gfload" -addr "$proxy_addr" -wait 10s \
  -conns "$CONNS" -window "$WINDOW" -requests "$REQUESTS" \
  -trace "$TRACE_EVERY" -slo 'rs=250ms@99' \
  >"$workdir/load.log" 2>&1 || {
  echo "smoke-trace: traced gfload run failed" >&2
  cat "$workdir/load.log" >&2
  exit 1
}

tid=$(sed -nE 's/.*sampled traces: +([0-9a-f]{16}).*/\1/p' "$workdir/load.log" | head -1)
if [ -z "$tid" ]; then
  echo "smoke-trace: gfload report carries no sampled trace ids" >&2
  cat "$workdir/load.log" >&2
  exit 1
fi
echo "smoke-trace: following trace $tid"

grep -q '^slo:' "$workdir/load.log" || {
  echo "smoke-trace: gfload report carries no client-side SLO line" >&2
  cat "$workdir/load.log" >&2
  exit 1
}

# Give the last span recordings (which complete just after the response
# is written) a beat to land before scraping.
sleep 0.5

# --- /tracez: fleet-merged on the proxy, local on a backend --------------
curl -fsS "http://$proxy_admin/tracez?format=text&n=200" >"$workdir/proxy-tracez.txt"
curl -fsS "http://$b1_admin/tracez?format=text&n=200" >"$workdir/b1-tracez.txt"
curl -fsS "http://$b2_admin/tracez?format=text&n=200" >"$workdir/b2-tracez.txt"

grep -q "^span $tid " "$workdir/proxy-tracez.txt" || {
  echo "smoke-trace: trace $tid missing from the proxy's fleet /tracez" >&2
  head -30 "$workdir/proxy-tracez.txt" >&2
  exit 1
}
if ! grep -q "^span $tid " "$workdir/b1-tracez.txt" &&
   ! grep -q "^span $tid " "$workdir/b2-tracez.txt"; then
  echo "smoke-trace: trace $tid missing from both backends' /tracez" >&2
  exit 1
fi

# The merged trace must show the full path: >= 3 hops, >= 2 services
# (gfproxy and gfserved), every span with a nonzero start, and starts
# monotonic in the order /tracez emits them (sorted by start time).
awk -v tid="$tid" '
  $1 == "span" && $2 == tid {
    n++
    svc[$7] = 1
    if ($5 + 0 == 0) { print "zero start_unix_ns: " $0 > "/dev/stderr"; bad = 1 }
    if (prev != "" && $5 + 0 < prev + 0) { print "non-monotonic start: " $0 > "/dev/stderr"; bad = 1 }
    prev = $5
  }
  END {
    s = 0; for (k in svc) s++
    if (n < 3) { print "only " n " spans for the trace, want >= 3" > "/dev/stderr"; bad = 1 }
    if (s < 2) { print "only " s " services in the trace, want >= 2" > "/dev/stderr"; bad = 1 }
    exit bad
  }
' "$workdir/proxy-tracez.txt" || {
  echo "smoke-trace: trace $tid is not a well-formed multi-hop trace" >&2
  grep "^span $tid " "$workdir/proxy-tracez.txt" >&2 || true
  exit 1
}
echo "smoke-trace: trace $tid spans proxy and backend with monotonic timestamps"

# --- SLO accounting and wide events --------------------------------------
curl -fsS "http://$proxy_admin/metrics" >"$workdir/proxy-metrics.txt"
awk '
  $1 ~ /^gfp_slo_requests_total\{/ { total += $2 }
  END { exit (total > 0 ? 0 : 1) }
' "$workdir/proxy-metrics.txt" || {
  echo "smoke-trace: proxy gfp_slo_requests_total never incremented" >&2
  grep gfp_slo "$workdir/proxy-metrics.txt" >&2 || true
  exit 1
}
grep -q 'gfp_slo_burn_rate' "$workdir/proxy-metrics.txt" || {
  echo "smoke-trace: proxy /metrics missing gfp_slo_burn_rate" >&2
  exit 1
}
grep -q '"msg":"request"' "$workdir/proxy.log" || {
  echo "smoke-trace: no structured wide events in the proxy's JSON log" >&2
  head -20 "$workdir/proxy.log" >&2
  exit 1
}

echo "smoke-trace: ok — end-to-end trace at /tracez on proxy and backend, SLO counters live, wide events logged"
