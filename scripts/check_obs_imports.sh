#!/usr/bin/env bash
# Guard the observability core's dependency budget: internal/obs (the
# metrics core; stdlib plus repro/internal/perf for histogram buckets)
# and internal/obs/trace (the distributed-tracing core; stdlib only)
# must never drag a third-party client library or tracing SDK into
# every binary that links them. Run from the repo root; exits nonzero
# on any violation.
set -euo pipefail

bad=0
check_pkg() {
  local pkg=$1
  shift
  local imp std ok
  for imp in $(go list -f '{{join .Imports "\n"}}' "$pkg"); do
    ok=0
    for allowed in "$@"; do
      if [ "$imp" = "$allowed" ]; then ok=1; break; fi
    done
    if [ "$ok" = 1 ]; then continue; fi
    std=$(go list -f '{{.Standard}}' "$imp")
    if [ "$std" != "true" ]; then
      echo "check_obs_imports: $pkg imports non-stdlib package $imp" >&2
      bad=1
    fi
  done
}

check_pkg ./internal/obs repro/internal/perf
check_pkg ./internal/obs/trace
if [ "$bad" != 0 ]; then
  exit 1
fi
go vet ./internal/obs/...
echo "check_obs_imports: ok — internal/obs is stdlib + internal/perf only; internal/obs/trace is stdlib only"
