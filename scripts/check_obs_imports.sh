#!/usr/bin/env bash
# Guard internal/obs's dependency budget: the metrics core must stay
# stdlib-only (plus repro/internal/perf for the histogram buckets), so
# it never drags a third-party client library into every binary that
# links it. Run from the repo root; exits nonzero on any violation.
set -euo pipefail

allowed="repro/internal/perf"
bad=0
for imp in $(go list -f '{{join .Imports "\n"}}' ./internal/obs); do
  if [ "$imp" = "$allowed" ]; then
    continue
  fi
  std=$(go list -f '{{.Standard}}' "$imp")
  if [ "$std" != "true" ]; then
    echo "check_obs_imports: internal/obs imports non-stdlib package $imp" >&2
    bad=1
  fi
done
if [ "$bad" != 0 ]; then
  exit 1
fi
go vet ./internal/obs/...
echo "check_obs_imports: ok — internal/obs is stdlib + internal/perf only"
