#!/usr/bin/env bash
# Cluster smoke test: build gfserved + gfproxy + gfload, bring up a
# 3-backend fleet on ephemeral ports behind a gfproxy front door,
# record 1-backend vs 3-backend throughput through the proxy, then
# SIGKILL one backend mid-load and assert the run survives with zero
# failed requests (rs encode/decode are idempotent, so the proxy
# replays them on the surviving backends), the dead backend is ejected
# and — once restarted on the same ports — readmitted, the proxy's
# request ledger balances exactly, and its /metrics page carries both
# its own gfp_proxy_* families and the fleet-merged gfp_server_*
# families. Run from the repo root; exits nonzero on any failure.
set -euo pipefail

REQUESTS="${REQUESTS:-15000}"
CHURN_REQUESTS="${CHURN_REQUESTS:-60000}"
CONNS="${CONNS:-8}"
WINDOW="${WINDOW:-8}"

workdir=$(mktemp -d)
pids=()
trap 'kill "${pids[@]}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/gfserved" ./cmd/gfserved
go build -o "$workdir/gfproxy" ./cmd/gfproxy
go build -o "$workdir/gfload" ./cmd/gfload

# wait_line FILE REGEX: polls until the first capture of REGEX appears
# in FILE and prints it.
wait_line() {
  local file=$1 re=$2 m
  for _ in $(seq 1 100); do
    m=$(sed -nE "s#.*$re.*#\1#p" "$file" 2>/dev/null | head -1)
    if [ -n "$m" ]; then echo "$m"; return 0; fi
    sleep 0.1
  done
  echo "smoke-cluster: never saw /$re/ in $file" >&2
  cat "$file" >&2
  return 1
}

# start_backend IDX ADDR ADMIN: launches one gfserved (":0" ports on
# first start, the recorded ports on restart) and records its pid and
# bound addresses in b$IDX_addr / b$IDX_admin.
start_backend() {
  local i=$1 addr=$2 admin=$3
  "$workdir/gfserved" -addr "$addr" -admin "$admin" -quiet \
    >"$workdir/backend$i.log" 2>&1 &
  pids+=($!)
  eval "b${i}_pid=$!"
  eval "b${i}_addr=\$(wait_line "$workdir/backend$i.log" 'listening on ([0-9.:]+)')"
  eval "b${i}_admin=\$(wait_line "$workdir/backend$i.log" 'admin on http://([0-9.:]+)')"
}

for i in 1 2 3; do start_backend "$i" 127.0.0.1:0 127.0.0.1:0; done
echo "smoke-cluster: backends $b1_addr $b2_addr $b3_addr"

# Each backend's datapath self-test must pass before it takes traffic.
# (Download before grepping: with pipefail, `curl | grep -q` fails
# whenever grep matches and exits before curl finishes writing.)
curl -fsS "http://$b1_admin/selftest" >"$workdir/selftest.json"
grep -q '"ok": true' "$workdir/selftest.json" || {
  echo "smoke-cluster: backend /selftest did not pass" >&2
  exit 1
}

# start_proxy NAME BACKENDS: launches a gfproxy over the given fleet
# with an aggressive health cadence; prints "addr admin".
start_proxy() {
  local name=$1 backends=$2
  "$workdir/gfproxy" -addr 127.0.0.1:0 -admin 127.0.0.1:0 \
    -backends "$backends" -route request -retries 3 \
    -health-interval 200ms -health-timeout 1s -fail-after 2 -readmit-after 2 \
    -dial-wait 200ms -quiet >"$workdir/$name.log" 2>&1 &
  pids+=($!)
  eval "${name}_pid=$!"
  eval "${name}_addr=\$(wait_line "$workdir/$name.log" 'listening on ([0-9.:]+)')"
  eval "${name}_admin=\$(wait_line "$workdir/$name.log" 'admin on http://([0-9.:]+)')"
}

rps_of() { sed -nE 's#.* ([0-9.]+) round trips/s.*#\1#p' "$1" | head -1; }

# --- 1 vs 3 backend throughput through the proxy ------------------------
start_proxy proxy1 "$b1_addr@$b1_admin"
"$workdir/gfload" -addr "$proxy1_addr" -wait 10s \
  -conns "$CONNS" -window "$WINDOW" -requests "$REQUESTS" \
  >"$workdir/load1.log" 2>&1 || {
  echo "smoke-cluster: gfload through 1-backend proxy failed" >&2
  cat "$workdir/load1.log" >&2
  exit 1
}
kill -INT "$proxy1_pid" && wait "$proxy1_pid" || true

start_proxy proxy "$b1_addr@$b1_admin,$b2_addr@$b2_admin,$b3_addr@$b3_admin"
"$workdir/gfload" -addr "$proxy_addr" -wait 10s \
  -conns "$CONNS" -window "$WINDOW" -requests "$REQUESTS" \
  >"$workdir/load3.log" 2>&1 || {
  echo "smoke-cluster: gfload through 3-backend proxy failed" >&2
  cat "$workdir/load3.log" >&2
  exit 1
}
echo "smoke-cluster: throughput scaling 1->3 backends: $(rps_of "$workdir/load1.log") -> $(rps_of "$workdir/load3.log") round trips/s"

# --- SIGKILL one backend under load -------------------------------------
"$workdir/gfload" -addr "$proxy_addr" -wait 10s \
  -conns "$CONNS" -window "$WINDOW" -requests "$CHURN_REQUESTS" \
  >"$workdir/load-churn.log" 2>&1 &
load_pid=$!
pids+=($load_pid)

sleep 1
{ kill -9 "$b1_pid" && wait "$b1_pid"; } 2>/dev/null || true
echo "smoke-cluster: SIGKILLed backend $b1_addr under load"

metric() { curl -fsS "http://$proxy_admin/metrics" | awk -v m="$1" '$1 == m {print int($2)}'; }

ejected=0
for _ in $(seq 1 100); do
  if [ "$(metric gfp_proxy_ejections_total)" -ge 1 ]; then ejected=1; break; fi
  sleep 0.1
done
if [ "$ejected" != 1 ]; then
  echo "smoke-cluster: killed backend was never ejected" >&2
  curl -fsS "http://$proxy_admin/statsz" >&2 || true
  exit 1
fi
echo "smoke-cluster: backend ejected"

start_backend 1 "$b1_addr" "$b1_admin"
readmitted=0
for _ in $(seq 1 100); do
  if [ "$(metric gfp_proxy_readmits_total)" -ge 1 ]; then readmitted=1; break; fi
  sleep 0.1
done
if [ "$readmitted" != 1 ]; then
  echo "smoke-cluster: restarted backend was never readmitted" >&2
  curl -fsS "http://$proxy_admin/statsz" >&2 || true
  exit 1
fi
echo "smoke-cluster: backend restarted on $b1_addr and readmitted"

# The load must finish with zero failures: every rs round trip either
# completed on the first try or was transparently replayed.
wait "$load_pid" || {
  status=$?
  echo "smoke-cluster: gfload failed across the kill/restart (status $status)" >&2
  cat "$workdir/load-churn.log" >&2
  exit "$status"
}
echo "smoke-cluster: $CHURN_REQUESTS round trips survived the kill with zero failures"

# --- proxy admin plane ---------------------------------------------------
curl -fsS "http://$proxy_admin/metrics" >"$workdir/proxy-metrics.txt"
# Well-formed Prometheus exposition.
awk '
  /^#/ {
    if ($0 !~ /^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* /) { bad = 1; print "bad comment: " $0 > "/dev/stderr" }
    next
  }
  !/^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)( [0-9]+)?$/ {
    bad = 1; print "bad sample: " $0 > "/dev/stderr"
  }
  END { exit bad }
' "$workdir/proxy-metrics.txt" || {
  echo "smoke-cluster: malformed proxy /metrics exposition" >&2
  exit 1
}
# The proxy's own families plus the fleet-merged backend families on one page.
for want in gfp_proxy_requests_total gfp_proxy_backend_forwards_total \
    gfp_proxy_backends_healthy gfp_server_requests_total \
    gfp_pipeline_latency_seconds_bucket; do
  grep -q "^$want" "$workdir/proxy-metrics.txt" || {
    echo "smoke-cluster: proxy /metrics missing $want" >&2
    exit 1
  }
done

# Exact disjoint ledger: requests == responses + rejects + dropped once
# the loaders are gone.
awk '
  $1 == "gfp_proxy_requests_total"  { req  = $2 }
  $1 == "gfp_proxy_responses_total" { resp = $2 }
  $1 == "gfp_proxy_rejects_total"   { rej  = $2 }
  $1 == "gfp_proxy_dropped_total"   { drop = $2 }
  END {
    if (req == "" || req != resp + rej + drop) {
      printf "ledger: requests=%d responses=%d rejects=%d dropped=%d\n", req, resp, rej, drop > "/dev/stderr"
      exit 1
    }
  }
' "$workdir/proxy-metrics.txt" || {
  echo "smoke-cluster: proxy request ledger does not balance" >&2
  exit 1
}
curl -fsS "http://$proxy_admin/statsz" >"$workdir/proxy-statsz.json"
grep -q '"scraped": 3' "$workdir/proxy-statsz.json" || {
  echo "smoke-cluster: proxy /statsz did not scrape all 3 backends" >&2
  exit 1
}

# Every backend's own ledger must balance exactly post-kill as well —
# including the restarted backend 1 — so the fleet sum the proxy serves
# is a sum of exact ledgers, not approximations that happen to cancel.
for admin in "$b1_admin" "$b2_admin" "$b3_admin"; do
  curl -fsS "http://$admin/metrics" >"$workdir/backend-ledger.txt"
  awk '
    $1 == "gfp_server_requests_total"  { req  = $2 }
    $1 == "gfp_server_responses_total" { resp = $2 }
    $1 == "gfp_server_rejects_total"   { rej  = $2 }
    $1 == "gfp_server_dropped_total"   { drop = $2 }
    END {
      if (req == "" || req != resp + rej + drop) {
        printf "ledger: requests=%d responses=%d rejects=%d dropped=%d\n", req, resp, rej, drop > "/dev/stderr"
        exit 1
      }
    }
  ' "$workdir/backend-ledger.txt" || {
    echo "smoke-cluster: backend $admin request ledger does not balance post-kill" >&2
    exit 1
  }
done
echo "smoke-cluster: all 3 backend ledgers balance post-kill"

# --- graceful teardown ---------------------------------------------------
kill -INT "$proxy_pid"
for _ in $(seq 1 100); do
  kill -0 "$proxy_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$proxy_pid" 2>/dev/null; then
  echo "smoke-cluster: gfproxy did not exit within 10s of SIGINT" >&2
  cat "$workdir/proxy.log" >&2
  exit 1
fi
wait "$proxy_pid" || {
  status=$?
  echo "smoke-cluster: gfproxy exited with status $status" >&2
  cat "$workdir/proxy.log" >&2
  exit "$status"
}
for pid in "$b1_pid" "$b2_pid" "$b3_pid"; do
  kill -INT "$pid" 2>/dev/null || true
done
echo "smoke-cluster: ok — kill/eject/readmit under load with a balanced ledger and aggregated fleet metrics"
