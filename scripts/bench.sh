#!/usr/bin/env bash
# bench.sh — run the repository's throughput benchmarks and emit a
# machine-readable BENCH_<n>.json summary: a "host" block (cores matter —
# pipeline scaling numbers are meaningless without them) plus one entry
# per benchmark (name, ns/op, MB/s, B/op, allocs/op).
#
# Usage:
#   scripts/bench.sh [out.json] [benchtime]
#
# Defaults: out=BENCH_9.json, benchtime=0.5s. Runs from the repo root.
# The benchmark set covers the bulk GF kernel layer and everything built
# on it: root RS/GF/pipeline benches (including the batched pipeline
# variants and the per-kernel-tier GFTier A/B rows: table vs bitsliced
# vs clmul vs the calibrated auto dispatch), the per-package
# Bulk-vs-Scalar pairs in internal/rs, internal/bch, internal/aes and
# the pipeline link chain, plus the wide-field layer: the gfbig
# full-product strategy race (schoolbook/karatsuba/comb/clmul through
# the allocation-free MulTo path) and the ECC engine ops built on it.
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_9.json}"
benchtime="${2:-0.5s}"

pattern='RSEncode255|RSSyndromes255|RSDecode255|GFKernel|GFMul|GFTier|PipelineRS255_239'
pkg_pattern='Bulk|Scalar|DecodeTo255|Syndromes63|MixColumns|LinkStages'
ecc_pattern='MulToStrategies|MulFull233|InvTo|ECDHDerive|ECDSASign|ECDSAVerify'

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run 'ZZZNONE' -bench "$pattern" -benchtime "$benchtime" -benchmem . >>"$raw"
go test -run 'ZZZNONE' -bench "$pkg_pattern" -benchtime "$benchtime" -benchmem \
    ./internal/rs ./internal/bch ./internal/aes ./internal/pipeline >>"$raw"
go test -run 'ZZZNONE' -bench "$ecc_pattern" -benchtime "$benchtime" -benchmem \
    ./internal/gfbig ./internal/ecc >>"$raw"

cpus="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
goversion="$(go env GOVERSION)"

# Parse `go test -bench` lines:
#   BenchmarkName-8   1234   5678 ns/op [12.3 MB/s] [45 B/op] [6 allocs/op] [...]
awk -v OFS='' -v cpus="$cpus" -v gover="$goversion" '
BEGIN {
    print "{"
    print "  \"host\": {\"cpus\": " cpus ", \"go\": \"" gover "\"},"
    print "  \"benchmarks\": ["
    first = 1
}
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; mbs = ""; bop = ""; aop = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns  = $(i-1)
        if ($i == "MB/s")      mbs = $(i-1)
        if ($i == "B/op")      bop = $(i-1)
        if ($i == "allocs/op") aop = $(i-1)
    }
    if (ns == "") next
    if (!first) print ","
    first = 0
    line = "    {\"name\": \"" name "\", \"ns_op\": " ns
    if (mbs != "") line = line ", \"mb_s\": " mbs
    if (bop != "") line = line ", \"b_op\": " bop
    if (aop != "") line = line ", \"allocs_op\": " aop
    printf "%s}", line
}
END { print "\n  ]\n}" }
' "$raw" >"$out"

n="$(grep -c '"name"' "$out" || true)"
echo "wrote $out ($n benchmarks, $cpus cpus)"
