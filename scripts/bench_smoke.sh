#!/usr/bin/env bash
# bench_smoke.sh — CI gate on pipeline scaling: workers=4 must deliver at
# least MIN_SPEEDUP x the frames/s of workers=1. The assertion only fires
# on hosts with >= 4 CPUs (the GitHub runner); on smaller hosts the ratio
# is printed but not enforced, so the script stays runnable anywhere.
#
# Usage:
#   scripts/bench_smoke.sh [benchtime]
#
# Environment:
#   MIN_SPEEDUP   required workers=4 / workers=1 throughput ratio (default 2.0)
set -euo pipefail

cd "$(dirname "$0")/.."
benchtime="${1:-1s}"
min_speedup="${MIN_SPEEDUP:-2.0}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# The batch=16 children of the matched pair run too (Go matches -bench
# per path segment); the awk below only scores the unbatched pair.
go test -run 'ZZZNONE' -benchtime "$benchtime" -count 3 \
    -bench 'PipelineRS255_239/^workers=[14]$' . | tee "$raw"

cpus="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"

# Best-of-3 ns/op per variant, then frames/s ratio = ns(w1) / ns(w4).
# The -N GOMAXPROCS suffix is absent on single-proc hosts, so it is optional.
awk -v cpus="$cpus" -v min="$min_speedup" '
$1 ~ /^BenchmarkPipelineRS255_239\/workers=1(-[0-9]+)?$/ { if (w1 == 0 || $3 < w1) w1 = $3 }
$1 ~ /^BenchmarkPipelineRS255_239\/workers=4(-[0-9]+)?$/ { if (w4 == 0 || $3 < w4) w4 = $3 }
END {
    if (w1 == 0 || w4 == 0) {
        print "bench_smoke: missing workers=1 or workers=4 results" > "/dev/stderr"
        exit 1
    }
    ratio = w1 / w4
    printf "bench_smoke: workers=1 %.0f ns/op, workers=4 %.0f ns/op, speedup %.2fx (%d cpus)\n",
        w1, w4, ratio, cpus
    if (cpus < 4) {
        print "bench_smoke: < 4 cpus, scaling gate skipped"
        exit 0
    }
    if (ratio < min) {
        printf "bench_smoke: FAIL — workers=4 speedup %.2fx < required %.2fx\n",
            ratio, min > "/dev/stderr"
        exit 1
    }
    printf "bench_smoke: OK — speedup %.2fx >= %.2fx\n", ratio, min
}
' "$raw"
