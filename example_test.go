package gfp_test

import (
	"fmt"

	gfp "repro"
)

// Galois-field arithmetic with an arbitrary irreducible polynomial — the
// flexibility the processor's configuration register provides in hardware.
func ExampleNewField() {
	f, err := gfp.NewField(8, 0x11B) // the AES field
	if err != nil {
		panic(err)
	}
	fmt.Printf("%#02x\n", uint8(f.Mul(0x53, 0xCA)))
	fmt.Printf("%#02x\n", uint8(f.Inv(0x53)))
	// Output:
	// 0x01
	// 0xca
}

// A Reed-Solomon round trip through symbol corruption.
func ExampleNewRS() {
	f, _ := gfp.DefaultField(8)
	code, _ := gfp.NewRS(f, 255, 239)
	msg := make([]byte, code.K)
	copy(msg, "an IoT packet")
	cw, _ := code.EncodeBytes(msg)
	cw[0] ^= 0xFF // corrupt up to t = 8 symbols
	cw[100] ^= 0x42
	got, err := code.DecodeBytes(cw)
	fmt.Println(err == nil && string(got[:13]) == "an IoT packet")
	// Output: true
}

// The paper's flagship binary code, BCH(31,11,5).
func ExampleNewBCH() {
	f, _ := gfp.DefaultField(5)
	code, _ := gfp.NewBCH(f, 5)
	fmt.Printf("BCH(%d,%d,%d)\n", code.N, code.K, code.T)
	// Output: BCH(31,11,5)
}

// Assembling and running a program on the simulated GF processor.
func ExampleAssemble() {
	prog, err := gfp.Assemble(`
		movi r1, =field
		gfconf r1
		movi r2, #0x57
		movi r3, #0x83
		gfmul r4, r2, r3
		halt
	.data
	field: .word 0x11B
	`)
	if err != nil {
		panic(err)
	}
	cpu, _ := gfp.NewProcessor(prog, gfp.ProcessorConfig{GFUnit: true})
	if err := cpu.Run(0); err != nil {
		panic(err)
	}
	fmt.Printf("%#02x in %d cycles\n", cpu.Reg(4), cpu.Cycles())
	// Output: 0xc1 in 7 cycles
}

// Enumerating the processor's legal field configurations.
func ExampleIrreduciblePolys() {
	fmt.Println(len(gfp.IrreduciblePolys(8)))
	// Output: 30
}

// The minimal polynomial of a primitive element is the field polynomial.
func ExampleMinimalPolynomial() {
	f, _ := gfp.DefaultField(5)
	fmt.Printf("%#x\n", gfp.MinimalPolynomial(f, f.Alpha()))
	// Output: 0x25
}
