package kernels

import (
	"repro/internal/aes"
	"repro/internal/perf"
)

// AES kernels (paper Table 5, Fig. 10).
//
// Baseline model: the TI-style open-source M0+ implementation the paper
// selects ([44]): state array in memory, S-box as a 256-byte table,
// multiplication by x ("galois_mul2") as a small function called per use,
// MixColumns with the 02/03/01/01 shift trick, InvMixColumns through
// galois_mul2 chains (coefficients 0E/0B/0D/09 defeat the trick — the
// paper's explanation for the asymmetric speedups).
//
// GF-processor model: the state lives in four row-major registers, so
// SubBytes is four gfMultInv_simd instructions (the S-box affine stage is
// folded into the instruction's output network — a documented
// reproduction assumption, see DESIGN.md), ShiftRows is three lane
// rotations, and MixColumns/InvMixColumns are row-wise SIMD GF
// multiply-accumulates that are agnostic to the coefficient values.

// chargeBaseMul2Call charges one call to the baseline galois_mul2 helper:
// BL + (shift, mask, conditional reduction xor, move) + RET.
func chargeBaseMul2Call(m *perf.Meter) {
	m.Taken(1) // BL
	m.Alu(4)
	m.NotTaken(1) // conditional 0x1B reduction
	m.Taken(1)    // RET
}

// chargeStateLoad charges bringing the 16-byte state into registers
// (GF processor: 4 word loads) and chargeStateStore writes it back.
func chargeStateLoad(m *perf.Meter)  { m.Load(4); m.Alu(1) }
func chargeStateStore(m *perf.Meter) { m.Store(4); m.Alu(1) }

// AddRoundKey XORs the round key into the state, metering both machines.
func AddRoundKey(s *aes.State, rk []byte, mach Machine, m *perf.Meter) {
	aes.AddRoundKey(s, rk)
	switch mach {
	case Baseline:
		// 4 words: load state, load key, xor, store (+ addressing).
		m.Load(8)
		m.Alu(8)
		m.Store(4)
	case GFProc:
		chargeStateLoad(m)
		m.Load(4) // round key words
		m.GF(4)   // gfadd per row register
		chargeStateStore(m)
	}
}

// SubBytes applies the S-box (forward or inverse) to the state.
func SubBytes(s *aes.State, inverse bool, mach Machine, m *perf.Meter) {
	if inverse {
		aes.InvSubBytes(s)
	} else {
		aes.SubBytes(s)
	}
	switch mach {
	case Baseline:
		// 16x table lookup: load byte, index, load table, store.
		for i := 0; i < 16; i++ {
			m.Load(2)
			m.Alu(2)
			m.Store(1)
			loopOverhead(m)
		}
	case GFProc:
		chargeStateLoad(m)
		m.GF(4) // gfMultInv_simd per row (affine folded; see package comment)
		chargeStateStore(m)
	}
}

// ShiftRows permutes the state rows — the "nonvectorizable data movement"
// of Table 5; neither machine gets arithmetic help.
func ShiftRows(s *aes.State, inverse bool, mach Machine, m *perf.Meter) {
	if inverse {
		aes.InvShiftRows(s)
	} else {
		aes.ShiftRows(s)
	}
	switch mach {
	case Baseline:
		// Rows 1..3: load 4 bytes, store rotated (+ temp shuffling).
		for r := 1; r < 4; r++ {
			m.Load(4)
			m.Store(4)
			m.Alu(6)
		}
	case GFProc:
		chargeStateLoad(m)
		m.Alu(9) // 3 lane rotations x (2 shifts + or)
		chargeStateStore(m)
	}
}

// MixColumns applies the (inverse) MixColumns matrix.
func MixColumns(s *aes.State, inverse bool, mach Machine, m *perf.Meter) {
	if inverse {
		aes.InvMixColumns(s)
	} else {
		aes.MixColumns(s)
	}
	switch mach {
	case Baseline:
		if !inverse {
			// Optimized 02/03/01/01 path: per column, Tmp = a0^..^a3 and per
			// byte one galois_mul2 call plus xors.
			for col := 0; col < 4; col++ {
				m.Load(4)
				m.Alu(4 + 3) // addressing + Tmp
				for b := 0; b < 4; b++ {
					m.Alu(1) // Tm = a_i ^ a_{i+1}
					chargeBaseMul2Call(m)
					m.Alu(2) // out = a_i ^ Tm2 ^ Tmp
				}
				m.Store(4)
				m.Alu(4)
				loopOverhead(m)
			}
		} else {
			// 0E/0B/0D/09 path: per input byte the x2/x4/x8 chain (3 calls),
			// then 16 multiply-accumulate combinations per column.
			for col := 0; col < 4; col++ {
				m.Load(4)
				m.Alu(4)
				for b := 0; b < 4; b++ {
					chargeBaseMul2Call(m) // x2
					chargeBaseMul2Call(m) // x4
					chargeBaseMul2Call(m) // x8
					m.Alu(2)              // stash chain values
				}
				m.Alu(16 * 2) // combine: ~2 xors per product term
				m.Store(4)
				m.Alu(4)
				loopOverhead(m)
			}
		}
	case GFProc:
		chargeStateLoad(m)
		if !inverse {
			m.Alu(2)        // materialize 0x02020202 / 0x03030303 splats
			m.GF(4*2 + 4*3) // per output row: 2 gfmul (coeff 2,3) + 3 gfadd
		} else {
			m.Alu(4)        // materialize the four coefficient splats
			m.GF(4*4 + 4*3) // per output row: 4 gfmul + 3 gfadd
		}
		m.Alu(4) // register moves for the new state
		chargeStateStore(m)
	}
}

// KeyExpansion meters the full key schedule (nk words -> 4*(rounds+1)).
func KeyExpansion(key []byte, mach Machine, m *perf.Meter) (*aes.Cipher, error) {
	c, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	rounds := c.Rounds()
	nk := len(key) / 4
	nw := 4 * (rounds + 1)
	for i := nk; i < nw; i++ {
		if i%nk == 0 {
			switch mach {
			case Baseline:
				// RotWord: 4 byte moves; SubWord: 4 table lookups; Rcon xor.
				m.Alu(6)
				for b := 0; b < 4; b++ {
					m.Load(2)
					m.Alu(2)
				}
				m.Alu(1)
			case GFProc:
				m.Alu(3) // lane rotation
				m.GF(1)  // SubWord: one SIMD inverse (affine folded)
				m.Alu(1) // Rcon
			}
		} else if nk > 6 && i%nk == 4 {
			switch mach {
			case Baseline:
				for b := 0; b < 4; b++ {
					m.Load(2)
					m.Alu(2)
				}
			case GFProc:
				m.GF(1)
			}
		}
		// w[i] = w[i-nk] ^ t
		m.Load(1)
		m.Alu(2)
		m.Store(1)
		loopOverhead(m)
	}
	return c, nil
}

// AESBreakdown is the per-kernel cycle table behind Fig. 10.
type AESBreakdown struct {
	AddRoundKey  Result
	SBox         Result
	ShiftRows    Result
	MixCol       Result
	InvMixCol    Result
	KeyExpansion Result
	Encrypt      Result // full block encryption
	Decrypt      Result // full block decryption
}

// EncryptBlock meters a full AES block encryption on the given machine
// and returns the ciphertext. On the GF processor the state stays
// register-resident across the whole encryption (only the initial load,
// round-key loads and final store touch memory) — the register-pressure
// benefit the paper calls out in Section 3.2.
func EncryptBlock(c *aes.Cipher, pt []byte, mach Machine, m *perf.Meter) []byte {
	s := aes.LoadState(pt)
	rounds := c.Rounds()
	if mach == GFProc {
		chargeStateLoad(m)
	}
	arq := func(r int) {
		aes.AddRoundKey(&s, c.RoundKey(r))
		switch mach {
		case Baseline:
			m.Load(8)
			m.Alu(8)
			m.Store(4)
		case GFProc:
			m.Load(4)
			m.GF(4)
		}
	}
	sub := func() {
		aes.SubBytes(&s)
		switch mach {
		case Baseline:
			for i := 0; i < 16; i++ {
				m.Load(2)
				m.Alu(2)
				m.Store(1)
				loopOverhead(m)
			}
		case GFProc:
			m.GF(4)
		}
	}
	shift := func() {
		aes.ShiftRows(&s)
		switch mach {
		case Baseline:
			for r := 1; r < 4; r++ {
				m.Load(4)
				m.Store(4)
				m.Alu(6)
			}
		case GFProc:
			m.Alu(9)
		}
	}
	mix := func() {
		aes.MixColumns(&s)
		switch mach {
		case Baseline:
			for col := 0; col < 4; col++ {
				m.Load(4)
				m.Alu(7)
				for b := 0; b < 4; b++ {
					m.Alu(1)
					chargeBaseMul2Call(m)
					m.Alu(2)
				}
				m.Store(4)
				m.Alu(4)
				loopOverhead(m)
			}
		case GFProc:
			m.Alu(2)
			m.GF(20)
			m.Alu(4)
		}
	}
	arq(0)
	for r := 1; r < rounds; r++ {
		sub()
		shift()
		mix()
		arq(r)
		loopOverhead(m)
	}
	sub()
	shift()
	arq(rounds)
	if mach == GFProc {
		chargeStateStore(m)
	}
	return s.Bytes()
}

// DecryptBlock meters a full AES block decryption and returns the
// plaintext.
func DecryptBlock(c *aes.Cipher, ct []byte, mach Machine, m *perf.Meter) []byte {
	s := aes.LoadState(ct)
	rounds := c.Rounds()
	if mach == GFProc {
		chargeStateLoad(m)
	}
	arq := func(r int) {
		aes.AddRoundKey(&s, c.RoundKey(r))
		switch mach {
		case Baseline:
			m.Load(8)
			m.Alu(8)
			m.Store(4)
		case GFProc:
			m.Load(4)
			m.GF(4)
		}
	}
	invSub := func() {
		aes.InvSubBytes(&s)
		switch mach {
		case Baseline:
			for i := 0; i < 16; i++ {
				m.Load(2)
				m.Alu(2)
				m.Store(1)
				loopOverhead(m)
			}
		case GFProc:
			m.GF(4)
		}
	}
	invShift := func() {
		aes.InvShiftRows(&s)
		switch mach {
		case Baseline:
			for r := 1; r < 4; r++ {
				m.Load(4)
				m.Store(4)
				m.Alu(6)
			}
		case GFProc:
			m.Alu(9)
		}
	}
	invMix := func() {
		aes.InvMixColumns(&s)
		switch mach {
		case Baseline:
			for col := 0; col < 4; col++ {
				m.Load(4)
				m.Alu(4)
				for b := 0; b < 4; b++ {
					chargeBaseMul2Call(m)
					chargeBaseMul2Call(m)
					chargeBaseMul2Call(m)
					m.Alu(2)
				}
				m.Alu(32)
				m.Store(4)
				m.Alu(4)
				loopOverhead(m)
			}
		case GFProc:
			m.Alu(4)
			m.GF(28)
			m.Alu(4)
		}
	}
	arq(rounds)
	for r := rounds - 1; r >= 1; r-- {
		invShift()
		invSub()
		arq(r)
		invMix()
		loopOverhead(m)
	}
	invShift()
	invSub()
	arq(0)
	if mach == GFProc {
		chargeStateStore(m)
	}
	return s.Bytes()
}

// AESKernels measures every Fig. 10 kernel plus full block encryption and
// decryption for the given key and plaintext.
func AESKernels(key, pt []byte) (*AESBreakdown, error) {
	bd := &AESBreakdown{}
	c, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	rk := c.RoundKey(1)

	kernel := func(name string, run func(mach Machine, m *perf.Meter)) Result {
		r := measure(name, run)
		return r
	}
	bd.AddRoundKey = kernel("AddRoundKey", func(mach Machine, m *perf.Meter) {
		s := aes.LoadState(pt)
		AddRoundKey(&s, rk, mach, m)
	})
	bd.SBox = kernel("S-box", func(mach Machine, m *perf.Meter) {
		s := aes.LoadState(pt)
		SubBytes(&s, false, mach, m)
	})
	bd.ShiftRows = kernel("ShiftRows", func(mach Machine, m *perf.Meter) {
		s := aes.LoadState(pt)
		ShiftRows(&s, false, mach, m)
	})
	bd.MixCol = kernel("MixCol", func(mach Machine, m *perf.Meter) {
		s := aes.LoadState(pt)
		MixColumns(&s, false, mach, m)
	})
	bd.InvMixCol = kernel("invMixCol", func(mach Machine, m *perf.Meter) {
		s := aes.LoadState(pt)
		MixColumns(&s, true, mach, m)
	})
	bd.KeyExpansion = kernel("KeyExpansion", func(mach Machine, m *perf.Meter) {
		if _, err := KeyExpansion(key, mach, m); err != nil {
			panic(err)
		}
	})
	bd.Encrypt = kernel("Encryption", func(mach Machine, m *perf.Meter) {
		EncryptBlock(c, pt, mach, m)
	})
	bd.Decrypt = kernel("Decryption", func(mach Machine, m *perf.Meter) {
		ct := make([]byte, 16)
		c.Encrypt(ct, pt)
		DecryptBlock(c, ct, mach, m)
	})
	return bd, nil
}
