package kernels

import (
	"repro/internal/bch"
	"repro/internal/gf"
	"repro/internal/perf"
	"repro/internal/rs"
)

// Encoder kernels. The paper evaluates decoding ("here coding refers to
// the decoding process, while encoding is also feasible with the proposed
// architecture"); these kernels complete the picture. Systematic encoding
// is LFSR division by the generator: per message symbol one feedback
// computation and deg(g) multiply-accumulate steps, which vectorize four
// parity positions per SIMD register.

// EncodeRS meters systematic RS encoding and returns the codeword.
func EncodeRS(c *rs.Code, msg []gf.Elem, mach Machine, m *perf.Meter) ([]gf.Elem, error) {
	cw, err := c.Encode(msg)
	if err != nil {
		return nil, err
	}
	nk := c.N - c.K
	switch mach {
	case Baseline:
		for i := 0; i < c.K; i++ {
			m.Load(1) // msg[i]
			m.Alu(2)  // feedback = msg ^ rem[top]; address
			m.NotTaken(1)
			// Shift + multiply-accumulate over nk parity bytes.
			for j := 0; j < nk; j++ {
				m.Load(2) // rem[j], g[j]
				chargeBaseMul(m)
				m.Alu(2)
				m.Store(1)
				loopOverhead(m)
			}
			loopOverhead(m)
		}
	case GFProc:
		nv := (nk + 3) / 4 // parity registers, 4 lanes each
		m.Alu(int64(2 * nv))
		for i := 0; i < c.K; i++ {
			m.Load(1) // msg[i]
			m.Alu(1)  // feedback
			chargeSplat(m)
			// Per vector: gfmul (feedback x generator lanes) + gfadd into
			// the shifted remainder, plus a lane shift (2 ALU).
			m.GF(int64(2 * nv))
			m.Alu(int64(2 * nv))
			loopOverhead(m)
		}
	}
	return cw, nil
}

// EncodeBCH meters systematic binary BCH encoding. The generator has 0/1
// coefficients, so the baseline needs only conditional word xors; the GF
// unit adds little here — the honest counterpoint the breakdown shows.
func EncodeBCH(c *bch.Code, msg []byte, mach Machine, m *perf.Meter) ([]byte, error) {
	cw, err := c.Encode(msg)
	if err != nil {
		return nil, err
	}
	nk := c.N - c.K
	words := (nk + 31) / 32
	for i := 0; i < c.K; i++ {
		m.Load(1)
		m.Alu(2)
		// Conditional xor of the packed generator into the packed
		// remainder (both machines: plain word ops), feedback-dependent.
		if msg[i] != 0 { // data-dependent branch modeled on the real bit
			m.Taken(1)
			m.Load(int64(2 * words))
			m.Alu(int64(2 * words)) // xor + shift
			m.Store(int64(words))
		} else {
			m.NotTaken(1)
			m.Load(int64(words)) // shift only
			m.Alu(int64(words))
			m.Store(int64(words))
		}
		loopOverhead(m)
	}
	return cw, nil
}

// EncoderResults measures both encoders on both machines.
func EncoderResults(c *rs.Code, msg []gf.Elem, bc *bch.Code, bits []byte) ([]Result, error) {
	out := make([]Result, 2)
	out[0].Kernel = "RS encode " + c.String()
	out[1].Kernel = "BCH encode " + bc.String()
	for _, mach := range []Machine{Baseline, GFProc} {
		var mr, mb perf.Meter
		if _, err := EncodeRS(c, msg, mach, &mr); err != nil {
			return nil, err
		}
		if _, err := EncodeBCH(bc, bits, mach, &mb); err != nil {
			return nil, err
		}
		prof := mach.Profile()
		if mach == Baseline {
			out[0].Baseline = mr.Cycles(prof)
			out[1].Baseline = mb.Cycles(prof)
		} else {
			out[0].GFProc = mr.Cycles(prof)
			out[1].GFProc = mb.Cycles(prof)
		}
	}
	return out, nil
}
