package kernels

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/ecc"
	"repro/internal/perf"
)

func TestMontgomeryLadderMeteredMatchesReference(t *testing.T) {
	c := ecc.K233()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3; trial++ {
		k := new(big.Int).Rand(rng, c.Order)
		want := c.ScalarBaseMult(k)
		var m perf.Meter
		tr := MontgomeryLadder(c, k, c.Generator(), GFProc, &m)
		if !c.Equal(tr.Result, want) {
			t.Fatalf("trial %d: metered ladder result wrong", trial)
		}
		if tr.Bits != k.BitLen()-1 {
			t.Errorf("bits = %d, want %d", tr.Bits, k.BitLen()-1)
		}
	}
}

func TestLadderVsDoubleAndAddCost(t *testing.T) {
	// The ladder executes the same work every bit (constant control flow);
	// on the paper scalar (sparse: 56 adds for 112 doubles) it costs more
	// than double-and-add, but on a dense scalar the gap narrows. Either
	// way the result must land in the same few-hundred-thousand-cycle
	// band, i.e. still comfortably <= ~2x the double-and-add cost.
	c := ecc.K233()
	k := ecc.PaperScalar()
	var mL, mD perf.Meter
	lt := MontgomeryLadder(c, k, c.Generator(), GFProc, &mL)
	dt := ScalarMult(c, k, c.Generator(), GFProc, 0, &mD)
	if !c.Equal(lt.Result, dt.Result) {
		t.Fatal("methods disagree")
	}
	ratio := float64(lt.MainCycles+lt.RecovCycles) / float64(dt.MainCycles+dt.SupportCycles)
	if ratio < 0.3 || ratio > 2.5 {
		t.Errorf("ladder/double-and-add = %.2f (ladder %d, dda %d)", ratio,
			lt.MainCycles+lt.RecovCycles, dt.MainCycles+dt.SupportCycles)
	}
	t.Logf("K-233 paper scalar: ladder %d cycles (recovery %d), double-and-add %d cycles",
		lt.MainCycles, lt.RecovCycles, dt.MainCycles+dt.SupportCycles)
}

func TestLadderEdgeCases(t *testing.T) {
	c := ecc.K233()
	var m perf.Meter
	if tr := MontgomeryLadder(c, big.NewInt(0), c.Generator(), GFProc, &m); !tr.Result.Inf {
		t.Error("k=0 not infinity")
	}
	if tr := MontgomeryLadder(c, big.NewInt(1), c.Generator(), GFProc, &m); !c.Equal(tr.Result, c.Generator()) {
		t.Error("k=1 != G")
	}
	nm1 := new(big.Int).Sub(c.Order, big.NewInt(1))
	tr := MontgomeryLadder(c, nm1, c.Generator(), GFProc, &m)
	if !c.Equal(tr.Result, c.Neg(c.Generator())) {
		t.Error("k=n-1 != -G")
	}
}

func TestScalarMultTNAFMetered(t *testing.T) {
	c := ecc.K233()
	rng := rand.New(rand.NewSource(5))
	k := new(big.Int).Rand(rng, c.Order)
	want := c.ScalarBaseMult(k)
	var m perf.Meter
	tr, err := ScalarMultTNAF(c, k, c.Generator(), GFProc, &m)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(tr.Result, want) {
		t.Fatal("metered TNAF result wrong")
	}
	// TNAF must beat both double-and-add and the ladder on the GF
	// processor (doublings become squarings).
	var md perf.Meter
	dt := ScalarMult(c, k, c.Generator(), GFProc, 0, &md)
	dda := dt.MainCycles + dt.SupportCycles
	if tr.Cycles >= dda {
		t.Errorf("TNAF (%d cycles) not faster than double-and-add (%d)", tr.Cycles, dda)
	}
	t.Logf("K-233 random scalar: TNAF %d cycles (%d adds, %d Frobenius) vs double-and-add %d cycles",
		tr.Cycles, tr.Adds, tr.Frobenius, dda)
	// Non-Koblitz rejection propagates.
	if _, err := ScalarMultTNAF(ecc.B233(), k, ecc.B233().Generator(), GFProc, &perf.Meter{}); err == nil {
		t.Error("B-233 accepted")
	}
}
