package kernels

import (
	"repro/internal/bch"
	"repro/internal/gf"
	"repro/internal/gfpoly"
	"repro/internal/perf"
	"repro/internal/rs"
)

// RS/BCH decoder kernels (paper Fig. 1a/1b, Table 5, Fig. 9).

// SyndromesRS computes the 2t syndromes of recv while charging machine
// costs. Baseline: one Horner pass per syndrome, log-domain multiplies.
// GF processor: four syndromes per SIMD register ("Explicit vectorizable
// with 2t independent syndromes"), one received symbol load shared by all
// vectors per inner step.
func SyndromesRS(c *rs.Code, recv []gf.Elem, mach Machine, m *perf.Meter) []gf.Elem {
	synd := c.Syndromes(recv)
	n := int64(len(recv))
	twoT := 2 * c.T
	switch mach {
	case Baseline:
		for i := 0; i < twoT; i++ {
			m.Alu(3) // per-syndrome setup: alpha^i, sum=0, pointer
			// inner loop over n symbols
			m.Load(n) // ldrb R[j]
			m.Alu(n)  // address arithmetic for R[j]
			m.Alu(n)  // xor into sum
			for j := int64(0); j < n; j++ {
				chargeBaseMul(m)
				loopOverhead(m)
			}
		}
	case GFProc:
		nv := (twoT + 3) / 4 // SIMD registers holding 4 syndromes each
		m.Alu(int64(2 * nv)) // setup: alpha vectors and zeroed accumulators
		for j := int64(0); j < n; j++ {
			m.Load(1) // ldrb R[j], shared across every syndrome vector
			m.Alu(1)  // address increment
			chargeSplat(m)
			m.GF(int64(2 * nv)) // gfmul + gfadd per vector
			loopOverhead(m)
		}
	}
	return synd
}

// SyndromesBCH computes the 2t syndromes of the received bit vector.
// The structure matches SyndromesRS; on the GF processor the even
// syndromes could also be derived by squaring, but the paper's Table 5
// description vectorizes all 2t directly, which is what we model.
func SyndromesBCH(c *bch.Code, recv []byte, mach Machine, m *perf.Meter) []gf.Elem {
	synd := c.Syndromes(recv)
	n := int64(len(recv))
	twoT := 2 * c.T
	switch mach {
	case Baseline:
		for i := 0; i < twoT; i++ {
			m.Alu(3)
			m.Load(n)
			m.Alu(2 * n)
			for j := int64(0); j < n; j++ {
				chargeBaseMul(m)
				loopOverhead(m)
			}
		}
	case GFProc:
		nv := (twoT + 3) / 4
		m.Alu(int64(2 * nv))
		for j := int64(0); j < n; j++ {
			m.Load(1)
			m.Alu(1)
			chargeSplat(m)
			m.GF(int64(2 * nv))
			loopOverhead(m)
		}
	}
	return synd
}

// BerlekampMassey runs BMA over the syndromes with metering. The
// discrepancy accumulation is inherently serial ("Small and implicit
// parallelism ... Dependency among coefficients limits parallelism",
// Table 5); only the connection-polynomial update vectorizes, four
// coefficients per SIMD register.
func BerlekampMassey(f *gf.Field, synd []gf.Elem, mach Machine, m *perf.Meter) gfpoly.Poly {
	lambda := gfpoly.One(f)
	prev := gfpoly.One(f)
	l := 0
	mm := 1
	b := gf.Elem(1)
	for n := 0; n < len(synd); n++ {
		// Discrepancy d = S_n + sum_{i=1..l} lambda_i * S_{n-i}.
		d := synd[n]
		m.Load(1) // S[n]
		m.Alu(1)
		for i := 1; i <= l; i++ {
			d ^= f.Mul(lambda.Coeff(i), synd[n-i])
			m.Load(2) // lambda[i], S[n-i]
			m.Alu(3)  // two addresses + xor
			if mach == Baseline {
				chargeBaseMul(m)
			} else {
				m.GF(1)
			}
			loopOverhead(m)
		}
		m.Alu(1) // test d == 0
		if d == 0 {
			mm++
			m.NotTaken(1)
			continue
		}
		m.Taken(1)
		// coef = d / b
		if mach == Baseline {
			chargeBaseInv(m)
			chargeBaseMul(m)
		} else {
			m.GF(2) // gfmulinv + gfmul
		}
		// lambda += coef * x^mm * prev (degree <= l terms touched)
		terms := prev.Degree() + 1
		if terms < 0 {
			terms = 0
		}
		update := func(count int) {
			if mach == Baseline {
				for k := 0; k < count; k++ {
					m.Load(2) // prev[k], lambda[k+mm]
					chargeBaseMul(m)
					m.Alu(2) // xor + address
					m.Store(1)
					loopOverhead(m)
				}
			} else {
				groups := (count + 3) / 4
				for g := 0; g < groups; g++ {
					m.Load(2)  // 4 prev coeffs + 4 lambda coeffs (word loads)
					m.GF(2)    // gfmul by splatted coef + gfadd
					m.Store(1) // store 4 updated coeffs
					loopOverhead(m)
				}
				chargeSplat(m)
			}
		}
		if 2*l <= n {
			tmp := lambda.Clone()
			lambda = lambda.Add(prev.Scale(f.Div(d, b)).MulX(mm))
			prev = tmp
			// The copy B <- Lambda moves l+1 coefficients.
			cp := l + 1
			if mach == Baseline {
				m.Load(int64(cp))
				m.Store(int64(cp))
				m.Alu(int64(cp))
			} else {
				w := (cp + 3) / 4
				m.Load(int64(w))
				m.Store(int64(w))
			}
			update(terms)
			l = n + 1 - l
			b = d
			mm = 1
			m.Alu(3) // bookkeeping
		} else {
			lambda = lambda.Add(prev.Scale(f.Div(d, b)).MulX(mm))
			update(terms)
			mm++
			m.Alu(1)
		}
		loopOverhead(m)
	}
	return lambda
}

// ChienSearch locates the roots of lambda over all n codeword positions.
// Baseline: Horner evaluation per position. GF processor: four positions
// evaluated per pass ("Explicit vectorizable with 2^m independent
// elements to evaluate", Table 5).
func ChienSearch(f *gf.Field, lambda gfpoly.Poly, n int, mach Machine, m *perf.Meter) []int {
	var pos []int
	nu := lambda.Degree()
	if nu < 1 {
		return pos
	}
	for p := 0; p < n; p++ {
		if lambda.Eval(f.AlphaPow(-p)) == 0 {
			pos = append(pos, n-1-p)
		}
	}
	switch mach {
	case Baseline:
		for p := 0; p < n; p++ {
			m.Alu(1) // x update (incremental alpha^-1 multiply below)
			chargeBaseMul(m)
			for i := 0; i < nu; i++ { // Horner: nu mult + nu xor + coeff loads
				m.Load(1)
				m.Alu(2)
				chargeBaseMul(m)
			}
			m.Alu(1) // zero test
			m.NotTaken(1)
			loopOverhead(m)
		}
	case GFProc:
		groups := (n + 3) / 4
		m.Alu(int64(2 * (nu + 1))) // preload splatted coefficients & x vector
		for g := 0; g < groups; g++ {
			m.GF(1) // x-vector update: gfmul by alpha^-4 splat
			for i := 0; i < nu; i++ {
				m.GF(2) // gfmul + gfadd (coefficients pre-splatted in registers when nu small, else loaded)
				if nu > 2 {
					m.Load(1) // coefficient reload when registers run out
				}
			}
			m.Alu(2) // lane zero tests (compare + mask)
			m.NotTaken(1)
			loopOverhead(m)
		}
	}
	return pos
}

// Forney computes the error magnitudes for RS codes: for each located
// error, evaluate Omega and Lambda' at X^-1 and divide. On the GF
// processor four error locations are processed per pass ("We are able to
// calculate four independent errors in parallel").
func Forney(c *rs.Code, synd []gf.Elem, lambda gfpoly.Poly, positions []int, mach Machine, m *perf.Meter) ([]gf.Elem, error) {
	vals, err := c.Forney(synd, lambda, positions)
	if err != nil {
		return nil, err
	}
	ne := len(positions)
	if ne == 0 {
		return vals, nil
	}
	nu := lambda.Degree()
	// Omega = S*Lambda mod x^2t: convolution with nu+1 taps per output
	// coefficient, nu outputs needed (deg Omega < nu).
	omegaTerms := nu * (nu + 1)
	switch mach {
	case Baseline:
		for k := 0; k < omegaTerms; k++ {
			m.Load(2)
			m.Alu(2)
			chargeBaseMul(m)
			loopOverhead(m)
		}
		for e := 0; e < ne; e++ {
			// Evaluate Omega (nu terms) and Lambda' ((nu+1)/2 terms), then
			// invert and multiply.
			for i := 0; i < nu+(nu+1)/2; i++ {
				m.Load(1)
				m.Alu(2)
				chargeBaseMul(m)
			}
			chargeBaseInv(m)
			chargeBaseMul(m)
			m.Alu(2)
			m.Store(1)
			loopOverhead(m)
		}
	case GFProc:
		for k := 0; k < (omegaTerms+3)/4; k++ {
			m.Load(1)
			m.GF(2)
			loopOverhead(m)
		}
		groups := (ne + 3) / 4
		for g := 0; g < groups; g++ {
			for i := 0; i < nu+(nu+1)/2; i++ {
				m.Load(1)
				chargeSplat(m)
				m.GF(2)
			}
			m.GF(2) // gfmulinv + gfmul across the 4 lanes
			m.Store(1)
			loopOverhead(m)
		}
	}
	return vals, nil
}

// DecoderBreakdown is the per-kernel cycle table behind Fig. 9.
type DecoderBreakdown struct {
	Code     string
	Syndrome Result
	BMA      Result
	Chien    Result
	Forney   Result // zero for binary BCH (no Forney stage)
	Overall  Result
}

// DecodeRS runs the full RS decoder datapath on both machines for the
// given received word and returns the per-kernel breakdown (Fig. 9) plus
// the corrected codeword.
func DecodeRS(c *rs.Code, recv []gf.Elem) (*DecoderBreakdown, []gf.Elem, error) {
	bd := &DecoderBreakdown{Code: c.String()}
	var corrected []gf.Elem

	for _, mach := range []Machine{Baseline, GFProc} {
		var mSyn, mBMA, mChien, mForney perf.Meter
		synd := SyndromesRS(c, recv, mach, &mSyn)
		lambda := BerlekampMassey(c.F, synd, mach, &mBMA)
		positions := ChienSearch(c.F, lambda, c.N, mach, &mChien)
		vals, err := Forney(c, synd, lambda, positions, mach, &mForney)
		if err != nil {
			return nil, nil, err
		}
		if mach == GFProc {
			corrected = append([]gf.Elem(nil), recv...)
			for i, p := range positions {
				corrected[p] ^= vals[i]
			}
		}
		prof := mach.Profile()
		set := func(r *Result, m *perf.Meter) {
			if mach == Baseline {
				r.Baseline = m.Cycles(prof)
			} else {
				r.GFProc = m.Cycles(prof)
			}
		}
		set(&bd.Syndrome, &mSyn)
		set(&bd.BMA, &mBMA)
		set(&bd.Chien, &mChien)
		set(&bd.Forney, &mForney)
	}
	bd.Syndrome.Kernel = "Syndrome"
	bd.BMA.Kernel = "BMA"
	bd.Chien.Kernel = "Chien search"
	bd.Forney.Kernel = "Forney"
	bd.Overall = Result{
		Kernel:   "Overall",
		Baseline: bd.Syndrome.Baseline + bd.BMA.Baseline + bd.Chien.Baseline + bd.Forney.Baseline,
		GFProc:   bd.Syndrome.GFProc + bd.BMA.GFProc + bd.Chien.GFProc + bd.Forney.GFProc,
	}
	return bd, corrected, nil
}

// DecodeBCH runs the binary BCH decoder datapath (no Forney; errors are
// corrected by bit flips) on both machines.
func DecodeBCH(c *bch.Code, recv []byte) (*DecoderBreakdown, []byte, error) {
	bd := &DecoderBreakdown{Code: c.String()}
	var corrected []byte
	for _, mach := range []Machine{Baseline, GFProc} {
		var mSyn, mBMA, mChien perf.Meter
		synd := SyndromesBCH(c, recv, mach, &mSyn)
		lambda := BerlekampMassey(c.F, synd, mach, &mBMA)
		positions := ChienSearch(c.F, lambda, c.N, mach, &mChien)
		if mach == GFProc {
			corrected = append([]byte(nil), recv...)
			for _, p := range positions {
				corrected[p] ^= 1
			}
		}
		prof := mach.Profile()
		set := func(r *Result, m *perf.Meter) {
			if mach == Baseline {
				r.Baseline = m.Cycles(prof)
			} else {
				r.GFProc = m.Cycles(prof)
			}
		}
		set(&bd.Syndrome, &mSyn)
		set(&bd.BMA, &mBMA)
		set(&bd.Chien, &mChien)
	}
	bd.Syndrome.Kernel = "Syndrome"
	bd.BMA.Kernel = "BMA"
	bd.Chien.Kernel = "Chien search"
	bd.Forney.Kernel = "Forney (n/a)"
	bd.Overall = Result{
		Kernel:   "Overall",
		Baseline: bd.Syndrome.Baseline + bd.BMA.Baseline + bd.Chien.Baseline,
		GFProc:   bd.Syndrome.GFProc + bd.BMA.GFProc + bd.Chien.GFProc,
	}
	return bd, corrected, nil
}
