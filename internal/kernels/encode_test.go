package kernels

import (
	"math/rand"
	"testing"

	"repro/internal/bch"
	"repro/internal/gf"
	"repro/internal/perf"
	"repro/internal/rs"
)

func TestEncodeRSMatchesReference(t *testing.T) {
	c := rs.Must(gf.MustDefault(8), 255, 239)
	rng := rand.New(rand.NewSource(1))
	msg := make([]gf.Elem, c.K)
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(256))
	}
	want, _ := c.Encode(msg)
	for _, mach := range []Machine{Baseline, GFProc} {
		var m perf.Meter
		got, err := EncodeRS(c, msg, mach, &m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: codeword mismatch", mach)
			}
		}
		if m.Counts.Total() == 0 {
			t.Fatalf("%v: no cost charged", mach)
		}
	}
}

func TestEncodeBCHMatchesReference(t *testing.T) {
	c := bch.Must(gf.MustDefault(5), 5)
	rng := rand.New(rand.NewSource(2))
	msg := make([]byte, c.K)
	for i := range msg {
		msg[i] = byte(rng.Intn(2))
	}
	want, _ := c.Encode(msg)
	for _, mach := range []Machine{Baseline, GFProc} {
		var m perf.Meter
		got, err := EncodeBCH(c, msg, mach, &m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: codeword mismatch", mach)
			}
		}
	}
}

func TestEncoderResults(t *testing.T) {
	c := rs.Must(gf.MustDefault(8), 255, 239)
	bc := bch.Must(gf.MustDefault(5), 5)
	rng := rand.New(rand.NewSource(3))
	msg := make([]gf.Elem, c.K)
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(256))
	}
	bits := make([]byte, bc.K)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	res, err := EncoderResults(c, msg, bc, bits)
	if err != nil {
		t.Fatal(err)
	}
	// RS encoding is GF-multiply dominated: big speedup. BCH encoding is
	// xor-only: modest (near 1x) — the honest asymmetry.
	if s := res[0].Speedup(); s < 5 {
		t.Errorf("RS encode speedup %.1f < 5", s)
	}
	if s := res[1].Speedup(); s < 0.8 || s > 3 {
		t.Errorf("BCH encode speedup %.1f outside [0.8, 3]", s)
	}
	if res[0].Speedup() <= res[1].Speedup() {
		t.Error("RS encode should gain more than binary BCH encode")
	}
	// Errors propagate.
	if _, err := EncodeRS(c, msg[:5], Baseline, &perf.Meter{}); err == nil {
		t.Error("short message accepted")
	}
}
