// Package kernels contains metered implementations of every application
// kernel the paper evaluates (Table 5): the RS/BCH decoder kernels
// (syndrome computation, Berlekamp-Massey, Chien search, Forney), the AES
// kernels (AddRoundKey, S-box, ShiftRows, MixColumns, key expansion) and
// the ECC_l kernels (wide GF multiplication/squaring/inversion, point
// addition/doubling, scalar multiplication).
//
// Each kernel executes the real algorithm on real data — outputs are
// cross-checked against the reference codecs in the tests — while
// charging per-operation costs to a perf.Meter under one of two machine
// models, following the paper's methodology (Section 3.3.1): the
// control structure is the same on both machines; only the Galois-field
// operations differ. On the M0+ baseline a GF multiplication is the
// log/antilog-table sequence of Table 6 (left column); on the GF
// processor it is a single-cycle SIMD instruction (right column).
//
// All baseline cost assumptions are centralized in this file as named
// constants with the reasoning attached, so the model is auditable.
//
// This package models cycle costs; it does not try to be fast on the
// host. The host-performance counterpart — bulk slice kernels the real
// codecs run on (flat product tables, batched Horner, LFSR feedback
// banks) — lives in gf.Kernels (internal/gf/kernels.go).
package kernels

import (
	"repro/internal/gf"
	"repro/internal/perf"
)

// Machine selects the cost model.
type Machine int

const (
	// Baseline is the ARM Cortex M0+ software model: GF arithmetic in the
	// log domain with table lookups, scalar code only.
	Baseline Machine = iota
	// GFProc is the paper's processor: Table-1 GF instructions, 4-way
	// 8-bit SIMD, single-cycle 32-bit carry-free partial products.
	GFProc
)

// String implements fmt.Stringer.
func (m Machine) String() string {
	if m == Baseline {
		return "M0+ baseline"
	}
	return "GF processor"
}

// Profile returns the perf timing profile for the machine.
func (m Machine) Profile() perf.Profile {
	if m == Baseline {
		return perf.M0Plus()
	}
	return perf.GFProcessor()
}

// ---------------------------------------------------------------------------
// Baseline software GF-arithmetic cost model (log-domain method [38], the
// optimization the paper applies to its own baseline: "The baseline
// implementation on the M0+ is optimized by conducting GF multiplication /
// multiplicative inverse in the log domain").
//
// One log-domain multiply sum = a (*) b executes (Table 6, left column):
//
//	cbz  a, zero        ; zero checks: 2 compare+branch pairs
//	cbz  b, zero
//	add  r, tblLog, a   ; address arithmetic        1 ALU
//	ldrb ia, [r]        ; BIN2Idx[a]                1 LD
//	add  r, tblLog, b   ;                           1 ALU
//	ldrb ib, [r]        ; BIN2Idx[b]                1 LD
//	add  i, ia, ib      ; integer add               1 ALU
//	cmp  i, #N          ; modulo 2^m-1 (conditional subtract)
//	blt  .+2
//	sub  i, i, #N       ;                           ~2 ALU + 1 branch
//	add  r, tblExp, i   ;                           1 ALU
//	ldrb p, [r]         ; Idx2BIN[i]                1 LD
//
// charged as: 3 LD + 6 ALU + 3 not-taken branches (zero checks + modulo).
// With LD = 2 cycles this is 15 cycles per multiply, matching the
// "two multi-cycle table lookup operations" characterization.
// ---------------------------------------------------------------------------

// chargeBaseMul charges one baseline log-domain GF multiplication.
func chargeBaseMul(m *perf.Meter) {
	m.Load(3)
	m.Alu(6)
	m.NotTaken(3)
}

// chargeBaseInv charges one baseline log-domain inverse:
// exp[N - log[a]] = 2 table lookups + subtract + zero check.
func chargeBaseInv(m *perf.Meter) {
	m.Load(2)
	m.Alu(3)
	m.NotTaken(1)
}

// chargeBaseXtime charges one baseline "xtime" (multiply by x with the
// conditional reduction xor) — the shift/branch/xor idiom compiled code
// uses for multiplication by small constants like the MixColumns 0x02:
// lsl + tst + conditional eor.
func chargeBaseXtime(m *perf.Meter) {
	m.Alu(2)
	m.NotTaken(1)
}

// loopOverhead charges one iteration of compiled loop control on either
// machine: index increment, compare, backward (taken) branch.
func loopOverhead(m *perf.Meter) {
	m.Alu(2)
	m.Taken(1)
}

// ---------------------------------------------------------------------------
// GF-processor helpers. Four m-bit values (m <= 8) ride in one register;
// a "splat" replicates a loaded byte into all four lanes with one integer
// multiply by 0x01010101 (single cycle on the M0+ multiplier datapath the
// shell retains).
// ---------------------------------------------------------------------------

// chargeSplat charges broadcasting a scalar byte to 4 lanes.
func chargeSplat(m *perf.Meter) { m.IMul(1) }

// lanes packs up to 4 field elements into a SIMD register image.
func lanes(vals ...gf.Elem) uint32 {
	var v uint32
	for i, e := range vals {
		v |= uint32(e&0xFF) << (8 * i)
	}
	return v
}

// Result bundles a kernel's name and measured cycles on both machines.
type Result = perf.Result

// measure prices the same kernel under both machines.
func measure(name string, run func(mach Machine, m *perf.Meter)) Result {
	var base, gfp perf.Meter
	run(Baseline, &base)
	run(GFProc, &gfp)
	return Result{
		Kernel:   name,
		Baseline: base.Cycles(perf.M0Plus()),
		GFProc:   gfp.Cycles(perf.GFProcessor()),
	}
}
