package kernels

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/aes"
	"repro/internal/perf"
)

func TestGCMSealPacketMatchesLibrary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	key := make([]byte, 16)
	nonce := make([]byte, 12)
	pt := make([]byte, 64)
	aad := make([]byte, 16)
	rng.Read(key)
	rng.Read(nonce)
	rng.Read(pt)
	rng.Read(aad)

	c, _ := aes.NewCipher(key)
	want, _ := c.NewGCM().Seal(nonce, pt, aad)
	for _, mach := range []Machine{Baseline, GFProc} {
		var m perf.Meter
		got, err := GCMSealPacket(key, nonce, pt, aad, mach, &m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%v: sealed output differs", mach)
		}
		if m.Counts.Total() == 0 {
			t.Fatalf("%v: nothing metered", mach)
		}
	}
}

func TestGCMResultSpeedup(t *testing.T) {
	key := make([]byte, 16)
	nonce := make([]byte, 12)
	pt := make([]byte, 128) // an 8-block IoT packet
	r, err := GCMResult(key, nonce, pt, []byte("hdr"))
	if err != nil {
		t.Fatal(err)
	}
	// GCM combines an AES-bound part (enc speedup ~10x) and a GHASH part
	// (wide-multiply speedup); the package seal should land 5x..25x.
	if s := r.Speedup(); s < 5 || s > 25 {
		t.Errorf("GCM seal speedup %.1f outside 5..25 (base %d, gfproc %d)",
			s, r.Baseline, r.GFProc)
	}
	t.Logf("AES-GCM seal of a 128-byte packet: %s", r.String())
}

func TestGCMSealPacketValidation(t *testing.T) {
	var m perf.Meter
	if _, err := GCMSealPacket(make([]byte, 5), make([]byte, 12), nil, nil, Baseline, &m); err == nil {
		t.Error("bad key accepted")
	}
	if _, err := GCMSealPacket(make([]byte, 16), make([]byte, 5), nil, nil, Baseline, &m); err == nil {
		t.Error("bad nonce accepted")
	}
}
