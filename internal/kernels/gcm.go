package kernels

import (
	"repro/internal/aes"
	"repro/internal/perf"
)

// AES-GCM packet kernel: the authenticated-encryption pipeline an IoT
// packet actually needs. Per 16-byte block it costs one AES encryption
// (the CTR keystream) plus one GHASH multiplication in GF(2^128) —
// which on the GF processor is sixteen gf32bMult partial products plus
// the sparse x^128+x^7+x^2+x+1 reduction, the same structure as the
// Section 3.3.4 wide multiplies. The M0+ baseline runs the canonical
// 128-iteration shift-and-conditional-xor GHASH.

// chargeGHASHBlock charges one 128x128 GHASH multiplication.
func chargeGHASHBlock(mach Machine, m *perf.Meter) {
	switch mach {
	case Baseline:
		// 128 iterations: test one bit of X (shift+test), conditional
		// 4-word xor of V into Z (taken ~half the time), shift V right by
		// one across 4 words, conditional reduction xor.
		for i := 0; i < 128; i++ {
			m.Alu(2)
			if i%2 == 0 { // statistically half the X bits are set
				m.Taken(1)
				m.Alu(4)
			} else {
				m.NotTaken(1)
			}
			m.Alu(9)      // 4-word right shift with carries
			m.NotTaken(1) // reduction test
			m.Alu(1)
			loopOverhead(m)
		}
	case GFProc:
		// H pinned in 4 registers; X loaded; 4x4 grid of gf32mul with
		// column accumulation; sparse reduction on the core.
		m.Load(4)       // X words
		m.GF32Mult(16)  // 128x128 carry-free product
		m.Alu(2*16 + 8) // accumulate hi/lo + column carries
		m.Alu(4 * 8)    // reduction: per word, shifted xors for x^7,x^2,x,1
		m.Store(4)
	}
}

// GCMSealPacket meters sealing a packet: CTR encryption of ptLen bytes,
// GHASH over aadLen+ptLen bytes plus the length block, and the tag
// computation. It executes the real operation and returns the sealed
// bytes alongside the metered cost.
func GCMSealPacket(key, nonce, plaintext, aad []byte, mach Machine, m *perf.Meter) ([]byte, error) {
	c, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	sealed, err := c.NewGCM().Seal(nonce, plaintext, aad)
	if err != nil {
		return nil, err
	}
	blocks := func(n int) int { return (n + 15) / 16 }
	// CTR keystream: one AES block per plaintext block (+1 for the tag
	// mask E(J0)); counter increment and xor are cheap word ops.
	aesBlocks := blocks(len(plaintext)) + 1
	for b := 0; b < aesBlocks; b++ {
		EncryptBlock(c, make([]byte, 16), mach, m)
		m.Alu(2) // counter increment
		m.Load(4)
		m.Alu(4) // xor keystream into payload
		m.Store(4)
	}
	// GHASH: aad blocks + ciphertext blocks + 1 length block.
	ghashBlocks := blocks(len(aad)) + blocks(len(plaintext)) + 1
	for b := 0; b < ghashBlocks; b++ {
		m.Load(4)
		m.Alu(4) // xor into Y
		chargeGHASHBlock(mach, m)
		loopOverhead(m)
	}
	m.Alu(4) // tag = S xor E(J0)
	return sealed, nil
}

// GCMResult measures a whole packet seal on both machines.
func GCMResult(key, nonce, plaintext, aad []byte) (Result, error) {
	var r Result
	r.Kernel = "AES-GCM seal"
	for _, mach := range []Machine{Baseline, GFProc} {
		var m perf.Meter
		if _, err := GCMSealPacket(key, nonce, plaintext, aad, mach, &m); err != nil {
			return r, err
		}
		if mach == Baseline {
			r.Baseline = m.Cycles(perf.M0Plus())
		} else {
			r.GFProc = m.Cycles(perf.GFProcessor())
		}
	}
	return r, nil
}
