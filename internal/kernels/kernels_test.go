package kernels

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/aes"
	"repro/internal/bch"
	"repro/internal/ecc"
	"repro/internal/gf"
	"repro/internal/gfpoly"
	"repro/internal/perf"
	"repro/internal/rs"
)

var f8 = gf.MustDefault(8)

func corruptedRS(t *testing.T, seed int64, nerr int) (*rs.Code, []gf.Elem, []gf.Elem) {
	t.Helper()
	c := rs.Must(f8, 255, 239)
	rng := rand.New(rand.NewSource(seed))
	msg := make([]gf.Elem, c.K)
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(256))
	}
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	recv := append([]gf.Elem(nil), cw...)
	for _, p := range rng.Perm(c.N)[:nerr] {
		recv[p] ^= gf.Elem(1 + rng.Intn(255))
	}
	return c, cw, recv
}

func TestSyndromesMatchReference(t *testing.T) {
	c, _, recv := corruptedRS(t, 1, 8)
	for _, mach := range []Machine{Baseline, GFProc} {
		var m perf.Meter
		synd := SyndromesRS(c, recv, mach, &m)
		want := c.Syndromes(recv)
		for i := range want {
			if synd[i] != want[i] {
				t.Fatalf("%v: syndrome %d mismatch", mach, i)
			}
		}
		if m.Counts.Total() == 0 {
			t.Fatalf("%v: no costs charged", mach)
		}
	}
}

func TestBaselineCannotUseGFOps(t *testing.T) {
	// Any kernel metered for the baseline must not charge GF instructions.
	c, _, recv := corruptedRS(t, 2, 5)
	var m perf.Meter
	SyndromesRS(c, recv, Baseline, &m)
	if m.GFOp != 0 || m.GF32 != 0 {
		t.Fatal("baseline charged GF instructions")
	}
	// Cycles() must panic if we price GF counts on the baseline profile.
	var g perf.Meter
	SyndromesRS(c, recv, GFProc, &g)
	defer func() {
		if recover() == nil {
			t.Fatal("pricing GF counts on M0+ did not panic")
		}
	}()
	g.Cycles(perf.M0Plus())
}

func TestBMAMatchesReference(t *testing.T) {
	c, _, recv := corruptedRS(t, 3, 7)
	synd := c.Syndromes(recv)
	want := gfpoly.BerlekampMassey(c.F, synd)
	for _, mach := range []Machine{Baseline, GFProc} {
		var m perf.Meter
		got := BerlekampMassey(c.F, synd, mach, &m)
		if !got.Equal(want) {
			t.Fatalf("%v: BMA polynomial mismatch", mach)
		}
	}
}

func TestChienMatchesReference(t *testing.T) {
	c, _, recv := corruptedRS(t, 4, 6)
	synd := c.Syndromes(recv)
	lambda := c.BerlekampMassey(synd)
	want := c.ChienSearch(lambda)
	for _, mach := range []Machine{Baseline, GFProc} {
		var m perf.Meter
		got := ChienSearch(c.F, lambda, c.N, mach, &m)
		if len(got) != len(want) {
			t.Fatalf("%v: positions %v want %v", mach, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: positions %v want %v", mach, got, want)
			}
		}
	}
}

func TestDecodeRSCorrectsAndSpeedups(t *testing.T) {
	c, cw, recv := corruptedRS(t, 5, 8)
	bd, corrected, err := DecodeRS(c, recv)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cw {
		if corrected[i] != cw[i] {
			t.Fatal("metered decoder did not correct the word")
		}
	}
	// Fig. 9 shape: syndrome has the largest speedup (> 15x), BMA the
	// smallest; Forney > 8x; overall > 8x.
	if s := bd.Syndrome.Speedup(); s < 15 {
		t.Errorf("syndrome speedup %.1f < 15", s)
	}
	if s := bd.BMA.Speedup(); s >= bd.Syndrome.Speedup() {
		t.Errorf("BMA speedup %.1f not the smallest", s)
	}
	if s := bd.Forney.Speedup(); s < 8 {
		t.Errorf("Forney speedup %.1f < 8", s)
	}
	if s := bd.Overall.Speedup(); s < 8 {
		t.Errorf("overall RS speedup %.1f < 8", s)
	}
	for _, r := range []Result{bd.Syndrome, bd.BMA, bd.Chien, bd.Forney} {
		if r.Baseline <= 0 || r.GFProc <= 0 {
			t.Errorf("kernel %s has empty cycles: %+v", r.Kernel, r)
		}
	}
}

func TestDecodeBCHCorrectsAndSpeedups(t *testing.T) {
	code := bch.Must(gf.MustDefault(5), 5) // BCH(31,11,5)
	rng := rand.New(rand.NewSource(6))
	msg := make([]byte, code.K)
	for i := range msg {
		msg[i] = byte(rng.Intn(2))
	}
	cw, _ := code.Encode(msg)
	recv := append([]byte(nil), cw...)
	for _, p := range rng.Perm(code.N)[:5] {
		recv[p] ^= 1
	}
	bd, corrected, err := DecodeBCH(code, recv)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(corrected, cw) {
		t.Fatal("BCH metered decoder did not correct")
	}
	if s := bd.Overall.Speedup(); s < 3 {
		t.Errorf("overall BCH speedup %.1f < 3", s)
	}
	// The paper: RS overall speedup exceeds binary BCH overall speedup.
	c, cwRS, recvRS := corruptedRS(t, 7, 8)
	_ = cwRS
	rsBd, _, err := DecodeRS(c, recvRS)
	if err != nil {
		t.Fatal(err)
	}
	if rsBd.Overall.Speedup() <= bd.Overall.Speedup() {
		t.Errorf("RS overall (%.1f) should exceed BCH overall (%.1f)",
			rsBd.Overall.Speedup(), bd.Overall.Speedup())
	}
}

func TestAESKernelOutputsMatchCipher(t *testing.T) {
	key := []byte("0123456789abcdef")
	pt := []byte("the quick brown ")
	c, _ := aes.NewCipher(key)
	want := make([]byte, 16)
	c.Encrypt(want, pt)
	for _, mach := range []Machine{Baseline, GFProc} {
		var m perf.Meter
		got := EncryptBlock(c, pt, mach, &m)
		if !bytes.Equal(got, want) {
			t.Fatalf("%v: EncryptBlock output wrong", mach)
		}
		var md perf.Meter
		back := DecryptBlock(c, got, mach, &md)
		if !bytes.Equal(back, pt) {
			t.Fatalf("%v: DecryptBlock output wrong", mach)
		}
	}
}

func TestAESKernelSpeedupShape(t *testing.T) {
	key := []byte("0123456789abcdef")
	pt := []byte("fedcba9876543210")
	bd, err := AESKernels(key, pt)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 10 shape: S-box and the MixColumns pair show the best speedups;
	// invMixCol > MixCol; enc > 3x, dec > 6x, dec > enc.
	if bd.InvMixCol.Speedup() <= bd.MixCol.Speedup() {
		t.Errorf("invMixCol (%.1f) should beat MixCol (%.1f)",
			bd.InvMixCol.Speedup(), bd.MixCol.Speedup())
	}
	if bd.SBox.Speedup() < 5 {
		t.Errorf("S-box speedup %.1f < 5", bd.SBox.Speedup())
	}
	if bd.InvMixCol.Speedup() < 10 {
		t.Errorf("invMixCol speedup %.1f < 10", bd.InvMixCol.Speedup())
	}
	if bd.Encrypt.Speedup() < 3 {
		t.Errorf("encrypt speedup %.1f < 3", bd.Encrypt.Speedup())
	}
	if bd.Decrypt.Speedup() < 6 {
		t.Errorf("decrypt speedup %.1f < 6", bd.Decrypt.Speedup())
	}
	if bd.Decrypt.Speedup() <= bd.Encrypt.Speedup() {
		t.Errorf("decrypt (%.1f) should beat encrypt (%.1f)",
			bd.Decrypt.Speedup(), bd.Encrypt.Speedup())
	}
	// ShiftRows and AddRoundKey gain little (pure data movement).
	if bd.ShiftRows.Speedup() > bd.SBox.Speedup() {
		t.Errorf("ShiftRows (%.1f) should not beat S-box (%.1f)",
			bd.ShiftRows.Speedup(), bd.SBox.Speedup())
	}
}

func TestWideOpsMatchField(t *testing.T) {
	c := ecc.K233()
	f := c.F
	rng := rand.New(rand.NewSource(8))
	a := f.Zero()
	b := f.Zero()
	for i := range a {
		a[i] = rng.Uint32()
		b[i] = rng.Uint32()
	}
	a[len(a)-1] &= 1<<(f.M()%32) - 1
	b[len(b)-1] &= 1<<(f.M()%32) - 1
	for _, mach := range []Machine{Baseline, GFProc} {
		var m perf.Meter
		o := &WideOps{F: f, Mach: mach, M: &m}
		if !f.Equal(o.Mul(a, b), f.Mul(a, b)) {
			t.Fatalf("%v: Mul wrong", mach)
		}
		if !f.Equal(o.Sqr(a), f.Sqr(a)) {
			t.Fatalf("%v: Sqr wrong", mach)
		}
		if !f.Equal(o.Add(a, b), f.Add(a, b)) {
			t.Fatalf("%v: Add wrong", mach)
		}
		if !f.Equal(o.Inv(a), f.Inv(a)) {
			t.Fatalf("%v: Inv wrong", mach)
		}
	}
	// Karatsuba path
	var m perf.Meter
	o := &WideOps{F: f, Mach: GFProc, M: &m, Karatsuba: 2}
	if !f.Equal(o.Mul(a, b), f.Mul(a, b)) {
		t.Fatal("Karatsuba Mul wrong")
	}
}

func TestWideFieldCycleBands(t *testing.T) {
	// Table 7/8 shape: GF-processor GF(2^233) multiply lands in the
	// few-hundred-cycle band (paper: 599 direct, 439 Karatsuba), squaring
	// well under multiplication (paper: 136), inversion tens of thousands
	// (paper: 39,972); the baseline is several times slower than all of
	// them (Clercq reference: 3672 mult).
	c := ecc.K233()
	gfp := MeasureWideField(c, GFProc)
	base := MeasureWideField(c, Baseline)

	if gfp.Mul < 300 || gfp.Mul > 900 {
		t.Errorf("GF-proc mult = %d cycles, expected 300..900", gfp.Mul)
	}
	if gfp.MulKaratsuba >= gfp.Mul {
		t.Errorf("Karatsuba (%d) not faster than direct (%d)", gfp.MulKaratsuba, gfp.Mul)
	}
	if gfp.Sqr >= gfp.Mul/2 {
		t.Errorf("squaring (%d) should be well under half a mult (%d)", gfp.Sqr, gfp.Mul)
	}
	if gfp.Inv < 10000 || gfp.Inv > 80000 {
		t.Errorf("GF-proc inverse = %d, expected 10k..80k", gfp.Inv)
	}
	if ratio := float64(base.Mul) / float64(gfp.Mul); ratio < 4 {
		t.Errorf("mult speedup %.1f < 4 (paper: 6.1 vs Clercq)", ratio)
	}
	if ratio := float64(base.Sqr) / float64(gfp.Sqr); ratio < 2 {
		t.Errorf("square speedup %.1f < 2 (paper: 2.9 vs Clercq)", ratio)
	}
	if gfp.PointAdd < gfp.PointDbl {
		t.Errorf("point add (%d) should cost more than double (%d)", gfp.PointAdd, gfp.PointDbl)
	}
	// Paper Table 9 bands (measured on our model, generous): PA in the
	// thousands, under 4x the paper's 6742.
	if gfp.PointAdd < 2000 || gfp.PointAdd > 27000 {
		t.Errorf("point add = %d, expected 2k..27k", gfp.PointAdd)
	}
}

func TestScalarMultMetered(t *testing.T) {
	c := ecc.K233()
	k := ecc.PaperScalar()
	var m perf.Meter
	tr := ScalarMult(c, k, c.Generator(), GFProc, 0, &m)
	// Paper scalar: 112 doubles, 56 adds.
	if tr.PointDoubles != 112 {
		t.Errorf("doubles = %d, want 112", tr.PointDoubles)
	}
	if tr.PointAdds != 56 {
		t.Errorf("adds = %d, want 56", tr.PointAdds)
	}
	want := c.ScalarBaseMult(k)
	if !c.Equal(tr.Result, want) {
		t.Fatal("metered scalar mult result wrong")
	}
	// Band: paper reports 617,120 main + 157,442 support; allow 0.3x..3x.
	if tr.MainCycles < 200_000 || tr.MainCycles > 1_900_000 {
		t.Errorf("main loop = %d cycles, expected 0.2M..1.9M", tr.MainCycles)
	}
	if tr.SupportCycles <= 0 || tr.SupportCycles > 500_000 {
		t.Errorf("support = %d cycles", tr.SupportCycles)
	}
	// At 100 MHz the whole scalar multiplication must stay under ~25 ms
	// (paper: 7.75 ms).
	totalMs := float64(tr.MainCycles+tr.SupportCycles) / 100e6 * 1e3
	if totalMs > 25 {
		t.Errorf("scalar mult = %.2f ms @100MHz, paper band exceeded", totalMs)
	}
}

func TestKaratsubaSpeedupBand(t *testing.T) {
	// Paper: Karatsuba gives 1.4x over the direct product on the GF
	// processor; accept 1.1x..2.0x.
	c := ecc.K233()
	gfp := MeasureWideField(c, GFProc)
	ratio := float64(gfp.Mul) / float64(gfp.MulKaratsuba)
	if ratio < 1.1 || ratio > 2.0 {
		t.Errorf("Karatsuba speedup %.2f outside 1.1..2.0 (paper: 1.4)", ratio)
	}
}

func TestMeasureTable7(t *testing.T) {
	ph := MeasureTable7(ecc.K233().F)
	if ph.GF32PerMul != 64 {
		t.Errorf("gf32 per mult = %d, want 64", ph.GF32PerMul)
	}
	if ph.GF32PerSqr != 8 {
		t.Errorf("gf32 per square = %d, want 8", ph.GF32PerSqr)
	}
	if ph.MulTotal != ph.MulFullProduct+ph.MulReduction {
		t.Error("phase totals inconsistent")
	}
	if ph.SqrTotal >= ph.MulTotal {
		t.Error("square should be cheaper than multiply")
	}
}

func TestScalarMultBaselineSlower(t *testing.T) {
	c := ecc.K233()
	k := big.NewInt(0xABCDEF)
	var mb, mg perf.Meter
	trB := ScalarMult(c, k, c.Generator(), Baseline, 0, &mb)
	trG := ScalarMult(c, k, c.Generator(), GFProc, 0, &mg)
	if !c.Equal(trB.Result, trG.Result) {
		t.Fatal("machines disagree on result")
	}
	if trB.MainCycles <= trG.MainCycles {
		t.Error("baseline not slower than GF processor")
	}
}

func TestAESKeySizeScaling(t *testing.T) {
	// EncryptBlock handles all key sizes; AES-256's 14 rounds cost ~1.4x
	// AES-128's 10 rounds on both machines, keeping the speedup stable.
	pt := make([]byte, 16)
	cycles := map[int]int64{}
	for _, ks := range []int{16, 24, 32} {
		c, err := aes.NewCipher(make([]byte, ks))
		if err != nil {
			t.Fatal(err)
		}
		var m perf.Meter
		EncryptBlock(c, pt, GFProc, &m)
		cycles[ks] = m.Cycles(perf.GFProcessor())
	}
	if cycles[24] <= cycles[16] || cycles[32] <= cycles[24] {
		t.Fatalf("cycles not increasing with key size: %v", cycles)
	}
	ratio := float64(cycles[32]) / float64(cycles[16])
	if ratio < 1.3 || ratio > 1.5 {
		t.Errorf("AES-256/AES-128 cycle ratio %.2f, want ~1.4 (14/10 rounds)", ratio)
	}
}
