package kernels

import (
	"math/big"

	"repro/internal/ecc"
	"repro/internal/perf"
)

// Montgomery-ladder metering: the constant-control-flow alternative to
// double-and-add. Its x-only step costs are key-independent (every bit
// executes one differential add and one double), which is the
// side-channel-hardened design point an IoT security core would
// realistically pick; the price is measured here against the paper's
// double-and-add numbers.

// LadderTrace reports a metered ladder run.
type LadderTrace struct {
	Bits        int
	MainCycles  int64 // per-bit ladder steps
	RecovCycles int64 // y-recovery + affine conversion (two inversions)
	Result      ecc.Point
}

// MontgomeryLadder runs k*P with x-only Lopez-Dahab ladder arithmetic
// under the machine cost model, mirroring ecc.MontgomeryLadder (whose
// result it must reproduce).
func MontgomeryLadder(c *ecc.Curve, k *big.Int, p ecc.Point, mach Machine, m *perf.Meter) LadderTrace {
	o := &WideOps{F: c.F, Mach: mach, M: m}
	f := c.F
	tr := LadderTrace{}
	k = new(big.Int).Mod(k, c.Order)
	if k.Sign() == 0 || p.Inf {
		tr.Result = ecc.Infinity()
		return tr
	}
	if k.Cmp(big.NewInt(1)) == 0 {
		tr.Result = p
		return tr
	}
	x := p.X
	x1, z1 := f.Copy(x), f.One()
	x2 := o.Add(o.Sqr(o.Sqr(x)), c.B)
	z2 := o.Sqr(x)
	mAdd := func(xa, za, xb, zb []uint32) ([]uint32, []uint32) {
		t1 := o.Mul(xa, zb)
		t2 := o.Mul(xb, za)
		z3 := o.Sqr(o.Add(t1, t2))
		x3 := o.Add(o.Mul(x, z3), o.Mul(t1, t2))
		return x3, z3
	}
	mDouble := func(xa, za []uint32) ([]uint32, []uint32) {
		xa2 := o.Sqr(xa)
		za2 := o.Sqr(za)
		x3 := o.Add(o.Sqr(xa2), o.Mul(c.B, o.Sqr(za2)))
		z3 := o.Mul(xa2, za2)
		return x3, z3
	}
	for i := k.BitLen() - 2; i >= 0; i-- {
		if k.Bit(i) == 1 {
			x1, z1 = mAdd(x1, z1, x2, z2)
			x2, z2 = mDouble(x2, z2)
		} else {
			x2, z2 = mAdd(x2, z2, x1, z1)
			x1, z1 = mDouble(x1, z1)
		}
		tr.Bits++
	}
	tr.MainCycles = m.Cycles(mach.Profile())
	// y recovery (two inversions) — matches ecc.MontgomeryLadder.
	if f.IsZero(z1) {
		tr.Result = ecc.Infinity()
	} else if f.IsZero(z2) {
		tr.Result = c.Neg(p)
	} else {
		t3 := o.Mul(z1, z2)
		xk := o.Mul(x1, o.Inv(z1))
		num := o.Add(
			o.Mul(o.Add(x1, o.Mul(x, z1)), o.Add(x2, o.Mul(x, z2))),
			o.Mul(o.Add(o.Sqr(x), p.Y), t3),
		)
		den := o.Mul(x, t3)
		yk := o.Add(o.Mul(o.Add(x, xk), o.Mul(num, o.Inv(den))), p.Y)
		tr.Result = ecc.Point{X: xk, Y: yk}
	}
	tr.RecovCycles = m.Cycles(mach.Profile()) - tr.MainCycles
	return tr
}

// TNAFTrace reports a metered tau-adic multiplication.
type TNAFTrace struct {
	Digits, Adds, Frobenius int
	Cycles                  int64
	Result                  ecc.Point
}

// ScalarMultTNAF meters the tau-adic NAF multiplication on a Koblitz
// curve: every point doubling becomes three field squarings (the
// Frobenius map), the operation the GF processor makes nearly free —
// the Koblitz-specific ablation of the scalar-multiplication design
// space.
func ScalarMultTNAF(c *ecc.Curve, k *big.Int, p ecc.Point, mach Machine, m *perf.Meter) (TNAFTrace, error) {
	var tr TNAFTrace
	digits, _, err := c.TNAFDigits(k)
	if err != nil {
		return tr, err
	}
	o := &WideOps{F: c.F, Mach: mach, M: m}
	f := c.F
	tr.Digits = len(digits)
	if len(digits) == 0 || p.Inf {
		tr.Result = ecc.Infinity()
		return tr, nil
	}
	acc := ldPt{X: f.One(), Y: f.Zero(), Z: f.Zero()}
	started := false
	for i := len(digits) - 1; i >= 0; i-- {
		if started {
			acc = ldPt{X: o.Sqr(acc.X), Y: o.Sqr(acc.Y), Z: o.Sqr(acc.Z)}
			tr.Frobenius++
		}
		switch digits[i] {
		case 1:
			if !started {
				acc = ldPt{X: f.Copy(p.X), Y: f.Copy(p.Y), Z: f.One()}
				started = true
			} else {
				acc = o.pointAddMixed(c, acc, p)
				tr.Adds++
			}
		case -1:
			q := c.Neg(p)
			if !started {
				acc = ldPt{X: f.Copy(q.X), Y: f.Copy(q.Y), Z: f.One()}
				started = true
			} else {
				acc = o.pointAddMixed(c, acc, q)
				tr.Adds++
			}
		}
	}
	zInv := o.Inv(acc.Z)
	tr.Result = ecc.Point{X: o.Mul(acc.X, zInv), Y: o.Mul(acc.Y, o.Sqr(zInv))}
	tr.Cycles = m.Cycles(mach.Profile())
	return tr, nil
}
