package kernels

import (
	"math/big"
	"math/bits"

	"repro/internal/ecc"
	"repro/internal/gfbig"
	"repro/internal/perf"
)

// ECC_l kernels (paper Section 3.3.4, Tables 7, 8, 9).
//
// GF-processor model: wide multiplication iterates the single-cycle
// 32-bit partial product (gf32bMult) with the operand words of one input
// pinned in registers and the other streamed from memory (product
// scanning), then performs the sparse polynomial reduction on the scalar
// core — the two-phase structure of Table 7. Squaring needs only W
// gf32bMult instructions (one per word, Fig. 5c). Inversion is the
// Itoh-Tsujii chain over these primitives.
//
// Baseline model: a table-free right-to-left comb multiplication (the
// paper notes that published baselines such as Clercq [11] spend >= 4 KB
// on precomputed tables, "undesirable for low power devices"; our
// baseline avoids them, so it lands somewhat above Clercq's 3672 cycles),
// mask-interleave squaring, and Itoh-Tsujii inversion over those.

// WideOps bundles a wide field with a machine model and meter; its
// methods compute real values while charging cycles.
type WideOps struct {
	F         *gfbig.Field
	Mach      Machine
	M         *perf.Meter
	Karatsuba int  // Karatsuba levels for GFProc multiplication (0 = direct)
	Window    bool // Baseline only: 4-bit-window comb with a 16-entry table (Clercq-style, ~4 KB RAM)
}

// Add computes a+b: word-wise load/xor/store on both machines.
func (o *WideOps) Add(a, b gfbig.Elem) gfbig.Elem {
	w := int64(o.F.Words())
	o.M.Load(2 * w)
	o.M.Alu(w)
	o.M.Store(w)
	return o.F.Add(a, b)
}

// chargeReduce models the sparse-polynomial reduction on the scalar core
// (identical on both machines: it is plain shift/xor code).
func (o *WideOps) chargeReduce() {
	w := int64(o.F.Words())
	k := int64(len(o.F.Exponents()))
	o.M.Load(2 * w)        // high words + low accumulators
	o.M.Store(w)           // reduced result
	o.M.Alu(w * (3*k + 2)) // per word: shift+shift+xor per exponent, bookkeeping
}

// Mul computes a*b with the machine's multiplication strategy.
func (o *WideOps) Mul(a, b gfbig.Elem) gfbig.Elem {
	w := int64(o.F.Words())
	switch o.Mach {
	case GFProc:
		if o.Karatsuba > 0 {
			n := int64(gfbig.Clmul32Count(o.F.Words(), o.Karatsuba))
			o.M.GF32Mult(n)
			o.M.Load(2*w + n/2) // operands + re-reads of stacked halves
			o.M.Alu(3*n + 3*w)  // accumulate hi/lo + operand-sum preparation
			o.M.Store(2*w + w)  // full product + intermediate sums
			o.chargeReduce()
			return o.F.Reduce(o.F.MulFullKaratsuba(a, b, o.Karatsuba))
		}
		// Product scanning: one operand's W words pinned in registers
		// (W loads), the other loaded per partial product (W^2 loads).
		o.M.Load(w + w*w)
		o.M.GF32Mult(w * w)
		o.M.Alu(2*w*w + 2*w) // xor hi/lo into column accumulators + carries
		o.M.Store(2 * w)     // full product words
		o.chargeReduce()
		return o.F.Mul(a, b)
	default: // Baseline
		if o.Window {
			// Left-to-right comb with a 4-bit window (Lopez-Dahab
			// Alg. 2.36): precompute T[u] = u(x)*b(x) for u = 0..15
			// (the precomputed-table optimization of Clercq [11], ~4 KB
			// of RAM the paper flags as "undesirable"), then per window
			// position xor T[nibble] into the accumulator and shift.
			bw := w + 1
			// Precompute: T[2u] = T[u]<<1, T[2u+1] = T[2u]+b.
			for u := 2; u < 16; u++ {
				o.M.Load(bw)
				o.M.Alu(2 * bw)
				o.M.Store(bw)
			}
			nib := gfbig.WordBits / 4 // window positions per word
			for k := nib - 1; k >= 0; k-- {
				for j := 0; j < o.F.Words(); j++ {
					// accumulate T[nibble] at word offset j
					o.M.Load(1)   // a[j] (cached per j in registers realistically)
					o.M.Alu(2)    // extract nibble, index T
					o.M.Load(bw)  // T entry
					o.M.Load(bw)  // accumulator words
					o.M.Alu(bw)   // xors
					o.M.Store(bw) //
					loopOverhead(o.M)
				}
				if k > 0 {
					// shift the (2W+1)-word accumulator left by 4
					o.M.Load(2*w + 1)
					o.M.Alu(2 * (2*w + 1))
					o.M.Store(2*w + 1)
				}
			}
			o.chargeReduce()
			return o.F.Mul(a, b)
		}
		// Table-free right-to-left comb, data-dependent.
		// b<<k is maintained in registers (W+1 words); the accumulator
		// lives in memory. Costs depend on the actual bit pattern of a.
		bw := w + 1
		for k := 0; k < gfbig.WordBits; k++ {
			o.M.Load(w) // a words (re-read each pass)
			o.M.Alu(w)  // bit tests
			for i := 0; i < o.F.Words(); i++ {
				if a[i]>>k&1 == 1 {
					o.M.Taken(1)
					o.M.Load(bw) // accumulator words
					o.M.Alu(bw)  // xors
					o.M.Store(bw)
				} else {
					o.M.NotTaken(1)
				}
			}
			o.M.Alu(2 * bw) // shift the register-resident b left by one
			loopOverhead(o.M)
		}
		o.chargeReduce()
		return o.F.Mul(a, b)
	}
}

// Sqr computes a^2.
func (o *WideOps) Sqr(a gfbig.Elem) gfbig.Elem {
	w := int64(o.F.Words())
	switch o.Mach {
	case GFProc:
		// One gf32bMult per word (operand squared against itself spreads
		// the bits), interleaved with the rearrange, reduction on the core.
		o.M.Load(w)
		o.M.GF32Mult(w)
		o.M.Alu(3 * w) // interleave/rearrange moves
		o.M.Store(w)
		o.chargeReduce()
	default:
		// Mask-interleave bit spreading: ~24 ALU per input word produces
		// two output words (five shift-mask rounds per half).
		o.M.Load(w)
		o.M.Alu(24 * w)
		o.M.Store(2 * w)
		o.chargeReduce()
	}
	return o.F.Sqr(a)
}

// Inv computes a^-1 with the Itoh-Tsujii chain (10 multiplications + 232
// squarings for GF(2^233)) priced through Mul and Sqr.
func (o *WideOps) Inv(a gfbig.Elem) gfbig.Elem {
	if o.F.IsZero(a) {
		panic("kernels: inverse of zero")
	}
	e := o.F.M() - 1
	hb := 63 - bits.LeadingZeros64(uint64(e))
	beta := o.F.Copy(a)
	cur := 1
	sq := func(x gfbig.Elem, k int) gfbig.Elem {
		for i := 0; i < k; i++ {
			x = o.Sqr(x)
		}
		return x
	}
	for i := hb - 1; i >= 0; i-- {
		beta = o.Mul(sq(o.F.Copy(beta), cur), beta)
		cur *= 2
		if e>>i&1 == 1 {
			beta = o.Mul(sq(beta, 1), a)
			cur++
		}
	}
	return sq(beta, 1)
}

// PointAdd adds an affine point q into the Lopez-Dahab projective point
// (x1,y1,z1), mirroring ecc's mixed addition, with metering.
type ldPt struct{ X, Y, Z gfbig.Elem }

func (o *WideOps) pointAddMixed(c *ecc.Curve, p ldPt, q ecc.Point) ldPt {
	f := o.F
	z12 := o.Sqr(p.Z)
	a := o.Add(o.Mul(q.Y, z12), p.Y)
	b := o.Add(o.Mul(q.X, p.Z), p.X)
	cc := o.Mul(p.Z, b)
	var d gfbig.Elem
	if f.IsZero(c.A) {
		d = o.Mul(o.Sqr(b), cc)
	} else {
		d = o.Mul(o.Sqr(b), o.Add(cc, o.Mul(c.A, z12)))
	}
	z3 := o.Sqr(cc)
	e := o.Mul(a, cc)
	x3 := o.Add(o.Add(o.Sqr(a), d), e)
	ff := o.Add(x3, o.Mul(q.X, z3))
	g := o.Mul(o.Add(q.X, q.Y), o.Sqr(z3))
	y3 := o.Add(o.Mul(o.Add(e, z3), ff), g)
	return ldPt{X: x3, Y: y3, Z: z3}
}

func (o *WideOps) pointDouble(c *ecc.Curve, p ldPt) ldPt {
	f := o.F
	x2 := o.Sqr(p.X)
	z2 := o.Sqr(p.Z)
	bz4 := o.Mul(c.B, o.Sqr(z2))
	z3 := o.Mul(x2, z2)
	x3 := o.Add(o.Sqr(x2), bz4)
	t := o.Add(o.Sqr(p.Y), bz4)
	if !f.IsZero(c.A) {
		t = o.Add(t, o.Mul(c.A, z3))
	}
	y3 := o.Add(o.Mul(bz4, z3), o.Mul(x3, t))
	return ldPt{X: x3, Y: y3, Z: z3}
}

// ScalarMultTrace reports the structure of a metered scalar multiplication.
type ScalarMultTrace struct {
	PointAdds     int
	PointDoubles  int
	MainCycles    int64 // double-and-add loop
	SupportCycles int64 // final inversion + affine conversion
	Result        ecc.Point
}

// ScalarMult runs k*P by double-and-add over Lopez-Dahab coordinates with
// full metering, separating the main loop from the supporting conversion
// (the paper's 617,120 + 157,442 split).
func ScalarMult(c *ecc.Curve, k *big.Int, p ecc.Point, mach Machine, karatsuba int, m *perf.Meter) ScalarMultTrace {
	o := &WideOps{F: c.F, Mach: mach, M: m, Karatsuba: karatsuba}
	tr := ScalarMultTrace{}
	k = new(big.Int).Mod(k, c.Order)
	acc := ldPt{X: c.F.One(), Y: c.F.Zero(), Z: c.F.Zero()}
	started := false
	for i := k.BitLen() - 1; i >= 0; i-- {
		if started {
			acc = o.pointDouble(c, acc)
			tr.PointDoubles++
		}
		if k.Bit(i) == 1 {
			if !started {
				acc = ldPt{X: c.F.Copy(p.X), Y: c.F.Copy(p.Y), Z: c.F.One()}
				started = true
			} else {
				acc = o.pointAddMixed(c, acc, p)
				tr.PointAdds++
			}
		}
	}
	tr.MainCycles = m.Cycles(mach.Profile())
	// Support: convert back to affine (one inversion + 2 mult + 1 square).
	if started && !c.F.IsZero(acc.Z) {
		zInv := o.Inv(acc.Z)
		x := o.Mul(acc.X, zInv)
		y := o.Mul(acc.Y, o.Sqr(zInv))
		tr.Result = ecc.Point{X: x, Y: y}
	} else {
		tr.Result = ecc.Infinity()
	}
	tr.SupportCycles = m.Cycles(mach.Profile()) - tr.MainCycles
	return tr
}

// WideFieldBreakdown carries the Table 8/9 measurements for one machine
// configuration.
type WideFieldBreakdown struct {
	Mul          int64
	MulKaratsuba int64
	MulWindowed  int64 // Baseline only: Clercq-style 4-bit-window comb
	Sqr          int64
	Add          int64
	Inv          int64
	PointAdd     int64
	PointDbl     int64
}

// MeasureWideField measures all Table 8/9 primitives on the given machine
// for curve c using deterministic operands.
func MeasureWideField(c *ecc.Curve, mach Machine) WideFieldBreakdown {
	f := c.F
	a := f.FromUint64(0xDEADBEEFCAFEF00D)
	b := f.Copy(c.Gx)
	// densify a across all words
	for i := range a {
		a[i] ^= uint32(0x9E3779B9 * (i + 1))
	}
	top := f.M() % 32
	if top != 0 {
		a[len(a)-1] &= 1<<top - 1
	}

	var bd WideFieldBreakdown
	run := func(f func(o *WideOps)) int64 {
		var m perf.Meter
		o := &WideOps{F: c.F, Mach: mach, M: &m}
		f(o)
		return m.Cycles(mach.Profile())
	}
	bd.Mul = run(func(o *WideOps) { o.Mul(a, b) })
	bd.MulKaratsuba = run(func(o *WideOps) {
		if mach == GFProc {
			o.Karatsuba = 2
		}
		o.Mul(a, b)
	})
	bd.MulWindowed = run(func(o *WideOps) {
		if mach == Baseline {
			o.Window = true
		}
		o.Mul(a, b)
	})
	bd.Sqr = run(func(o *WideOps) { o.Sqr(a) })
	bd.Add = run(func(o *WideOps) { o.Add(a, b) })
	bd.Inv = run(func(o *WideOps) { o.Inv(a) })
	bd.PointAdd = run(func(o *WideOps) {
		o.pointAddMixed(c, ldPt{X: a, Y: b, Z: f.One()}, c.Generator())
	})
	bd.PointDbl = run(func(o *WideOps) {
		o.pointDouble(c, ldPt{X: a, Y: b, Z: f.One()})
	})
	return bd
}

// Table7Phases reproduces the phase structure of Table 7 for the GF
// processor: cycles for the full product, rearrange+store, and the
// polynomial reduction of one GF(2^233) multiplication, plus the squaring
// phases.
type Table7Phases struct {
	MulFullProduct int64
	MulReduction   int64
	MulTotal       int64
	SqrTotal       int64
	GF32PerMul     int64
	GF32PerSqr     int64
}

// MeasureTable7 measures the phase breakdown on the GF processor.
func MeasureTable7(f *gfbig.Field) Table7Phases {
	w := int64(f.Words())
	var ph Table7Phases
	var m perf.Meter
	o := &WideOps{F: f, Mach: GFProc, M: &m}
	// Phase accounting mirrors Mul's internal charging.
	m.Reset()
	m.Load(w + w*w)
	m.GF32Mult(w * w)
	m.Alu(2*w*w + 2*w)
	m.Store(2 * w)
	ph.MulFullProduct = m.Cycles(perf.GFProcessor())
	m.Reset()
	o.chargeReduce()
	ph.MulReduction = m.Cycles(perf.GFProcessor())
	ph.MulTotal = ph.MulFullProduct + ph.MulReduction
	m.Reset()
	o.Sqr(f.FromUint64(12345))
	ph.SqrTotal = m.Cycles(perf.GFProcessor())
	ph.GF32PerMul = w * w
	ph.GF32PerSqr = w
	return ph
}
