package perf

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestHistMerge is the Merge regression test: folding two independently
// observed histograms together must be indistinguishable — buckets,
// count, sum, max, quantiles — from observing every sample in one
// shared histogram.
func TestHistMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var a, b, all Hist
	for i := 0; i < 500; i++ {
		d := time.Duration(rng.Int63n(int64(50 * time.Millisecond)))
		all.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	var merged Hist
	merged.Merge(&a)
	merged.Merge(&b)

	ms, as := merged.Snapshot(), all.Snapshot()
	if ms != as {
		t.Fatalf("merged snapshot diverges from shared-histogram snapshot:\n got %+v\nwant %+v", ms, as)
	}
	if merged.Count() != all.Count() || merged.Max() != all.Max() || merged.Mean() != all.Mean() {
		t.Fatalf("merged summary stats diverge: count %d/%d max %v/%v mean %v/%v",
			merged.Count(), all.Count(), merged.Max(), all.Max(), merged.Mean(), all.Mean())
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if merged.Quantile(q) != all.Quantile(q) {
			t.Errorf("Quantile(%g) = %v, want %v", q, merged.Quantile(q), all.Quantile(q))
		}
	}
}

// TestHistMergeConcurrent runs Merge against live Observe traffic on
// both sides (meaningful under -race) and checks nothing is lost: after
// everything quiesces, the destination holds every merged sample plus
// its own.
func TestHistMergeConcurrent(t *testing.T) {
	const workers, perWorker, merges = 4, 1000, 50
	var src, dst Hist
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				src.Observe(time.Duration(i%1000) * time.Microsecond)
				dst.Observe(time.Duration(i%1000) * time.Nanosecond)
			}
		}(w)
	}
	stop := make(chan struct{})
	var mergeWG sync.WaitGroup
	mergeWG.Add(1)
	go func() {
		defer mergeWG.Done()
		for i := 0; i < merges; i++ {
			var scratch Hist
			scratch.Merge(&src) // concurrent reads of a live histogram
			_ = scratch.Snapshot()
		}
		<-stop
	}()
	wg.Wait()
	close(stop)
	mergeWG.Wait()

	// Quiesced: one final merge must land every src sample in dst.
	before := dst.Count()
	dst.Merge(&src)
	if got, want := dst.Count(), before+int64(workers*perWorker); got != want {
		t.Fatalf("post-merge count = %d, want %d", got, want)
	}
	if dst.Max() < src.Max() {
		t.Fatalf("merge lost max: dst %v < src %v", dst.Max(), src.Max())
	}
}

// TestHistMergeSnapshot: folding exported snapshots into a live
// histogram must match folding the live histograms themselves — the
// over-the-wire fan-in (proxy /statsz aggregation) and the in-memory
// Merge are the same operation.
func TestHistMergeSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b Hist
	for i := 0; i < 300; i++ {
		d := time.Duration(rng.Int63n(int64(20 * time.Millisecond)))
		if i%3 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	var viaMerge, viaSnap Hist
	viaMerge.Merge(&a)
	viaMerge.Merge(&b)
	viaSnap.MergeSnapshot(a.Snapshot())
	viaSnap.MergeSnapshot(b.Snapshot())
	if viaSnap.Snapshot() != viaMerge.Snapshot() {
		t.Fatalf("MergeSnapshot diverges from Merge:\n got %+v\nwant %+v",
			viaSnap.Snapshot(), viaMerge.Snapshot())
	}
}

// TestHistMergeSnapshotConcurrent folds snapshots of a live histogram
// into a shared destination from several goroutines while observers are
// still running — the proxy aggregating /statsz mid-load. Under -race
// this proves the fan-in path is data-race free; afterwards a final
// fold must account for every quiesced sample.
func TestHistMergeSnapshotConcurrent(t *testing.T) {
	const workers, perWorker, folds = 4, 1000, 50
	var src, dst Hist
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				src.Observe(time.Duration(i%777) * time.Microsecond)
			}
		}()
	}
	var foldWG sync.WaitGroup
	for g := 0; g < 2; g++ {
		foldWG.Add(1)
		go func() {
			defer foldWG.Done()
			for i := 0; i < folds; i++ {
				var scratch Hist
				scratch.MergeSnapshot(src.Snapshot())
				s := scratch.Snapshot()
				var n int64
				for _, c := range s.Buckets {
					n += c
				}
				if n != s.Count {
					panic("merged snapshot count != bucket sum")
				}
				dst.MergeSnapshot(scratch.Snapshot())
			}
		}()
	}
	wg.Wait()
	foldWG.Wait()

	var final Hist
	final.MergeSnapshot(src.Snapshot())
	if got, want := final.Count(), int64(workers*perWorker); got != want {
		t.Fatalf("quiesced MergeSnapshot count = %d, want %d", got, want)
	}
	if final.Max() != src.Max() {
		t.Fatalf("quiesced MergeSnapshot max = %v, want %v", final.Max(), src.Max())
	}
}

// TestHistSnapshot pins the snapshot contract: self-consistent count,
// exported bucket bounds, and quantiles matching the live histogram.
func TestHistSnapshot(t *testing.T) {
	var h Hist
	if s := h.Snapshot(); s.Count != 0 || s.SumNs != 0 || s.MaxNs != 0 {
		t.Fatalf("empty snapshot = %+v, want zero", s)
	}
	samples := []time.Duration{1, 3, 100, 5 * time.Microsecond, 2 * time.Millisecond, 2 * time.Millisecond}
	var sum int64
	for _, d := range samples {
		h.Observe(d)
		sum += int64(d)
	}
	s := h.Snapshot()
	if s.Count != int64(len(samples)) {
		t.Errorf("Count = %d, want %d", s.Count, len(samples))
	}
	var bucketSum int64
	for _, n := range s.Buckets {
		bucketSum += n
	}
	if bucketSum != s.Count {
		t.Errorf("bucket sum %d != Count %d", bucketSum, s.Count)
	}
	if s.SumNs != sum || s.MaxNs != int64(2*time.Millisecond) {
		t.Errorf("SumNs=%d MaxNs=%d, want %d and %d", s.SumNs, s.MaxNs, sum, int64(2*time.Millisecond))
	}
	if s.MeanNs() != sum/int64(len(samples)) {
		t.Errorf("MeanNs = %d, want %d", s.MeanNs(), sum/int64(len(samples)))
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := s.Quantile(q), int64(h.Quantile(q)); got != want {
			t.Errorf("snapshot Quantile(%g) = %d, live = %d", q, got, want)
		}
	}
}

// TestBucketUpperNs: bounds double per bucket and the overflow bucket
// is unbounded.
func TestBucketUpperNs(t *testing.T) {
	if got := BucketUpperNs(0); got != 2 {
		t.Errorf("BucketUpperNs(0) = %d, want 2", got)
	}
	for i := 1; i < NumBuckets-1; i++ {
		if got, want := BucketUpperNs(i), int64(1)<<(i+1); got != want {
			t.Errorf("BucketUpperNs(%d) = %d, want %d", i, got, want)
		}
	}
	if got := BucketUpperNs(NumBuckets - 1); got != math.MaxInt64 {
		t.Errorf("overflow bucket bound = %d, want MaxInt64", got)
	}
}
