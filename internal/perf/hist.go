package perf

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets. Bucket i
// holds samples with latency in [2^i, 2^(i+1)) nanoseconds (bucket 0
// holds 0ns and 1ns); the last bucket absorbs everything longer.
const histBuckets = 40

// Hist is a lock-free power-of-two latency histogram. All methods are
// safe for concurrent use. It is shared by the pipeline stage stats, the
// codec server and the load generators, so every layer reports latency
// in the same buckets.
type Hist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // total nanoseconds
	max     atomic.Int64
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	// Bucket index: 0 and 1 land in bucket 0, [2^i, 2^(i+1)) in bucket i.
	i := bits.Len64(uint64(ns))
	if i > 0 {
		i--
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Merge folds a point-in-time snapshot of o's samples into h. Both
// histograms stay live: Merge is safe to run concurrently with Observe
// on either side, and merging the per-worker histograms of a sharded
// producer into one report histogram yields exactly the same buckets,
// count and sum as observing every sample in one shared Hist (max is
// the max of the two).
func (h *Hist) Merge(o *Hist) {
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	m := o.max.Load()
	for {
		old := h.max.Load()
		if m <= old || h.max.CompareAndSwap(old, m) {
			break
		}
	}
}

// MergeSnapshot folds an exported snapshot into h — the wire-format
// counterpart of Merge, used by fleet aggregators that receive
// HistSnapshot buckets over HTTP rather than sharing memory with the
// producer. The snapshot's count is taken as the sum of its buckets (the
// invariant Snapshot guarantees), so a merged histogram stays
// self-consistent even if the snapshot's Count field disagrees.
func (h *Hist) MergeSnapshot(s HistSnapshot) {
	var n int64
	for i, c := range s.Buckets {
		if c != 0 {
			h.buckets[i].Add(c)
			n += c
		}
	}
	h.count.Add(n)
	h.sum.Add(s.SumNs)
	for {
		old := h.max.Load()
		if s.MaxNs <= old || h.max.CompareAndSwap(old, s.MaxNs) {
			break
		}
	}
}

// Count returns the number of samples observed.
func (h *Hist) Count() int64 { return h.count.Load() }

// Mean returns the mean observed latency.
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observed latency.
func (h *Hist) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// top edge of the bucket containing it. Resolution is a factor of two,
// which is enough to tell microseconds from milliseconds in a report.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			if i == histBuckets-1 {
				return h.Max()
			}
			// Top edge of bucket i = 2^(i+1) (exclusive upper bound).
			return time.Duration(int64(1) << (i + 1))
		}
	}
	return h.Max()
}

// Percentiles returns the p50, p95 and p99 latency upper bounds — the
// three numbers load reports quote.
func (h *Hist) Percentiles() (p50, p95, p99 time.Duration) {
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
}

// HistSummary is a serializable point-in-time summary of a Hist, used by
// stats endpoints that export latency over the wire. All durations are
// nanoseconds.
type HistSummary struct {
	Count  int64 `json:"count"`
	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P95Ns  int64 `json:"p95_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
}

// Summary snapshots the histogram into a HistSummary.
func (h *Hist) Summary() HistSummary {
	p50, p95, p99 := h.Percentiles()
	return HistSummary{
		Count:  h.Count(),
		MeanNs: int64(h.Mean()),
		P50Ns:  int64(p50),
		P95Ns:  int64(p95),
		P99Ns:  int64(p99),
		MaxNs:  int64(h.Max()),
	}
}

// String formats the summary the way reports print it.
func (s HistSummary) String() string {
	return fmt.Sprintf("mean=%v p50<%v p95<%v p99<%v max=%v",
		time.Duration(s.MeanNs).Round(time.Microsecond),
		time.Duration(s.P50Ns), time.Duration(s.P95Ns), time.Duration(s.P99Ns),
		time.Duration(s.MaxNs).Round(time.Microsecond))
}

// String summarizes the histogram as mean/p50/p99/max.
func (h *Hist) String() string {
	return fmt.Sprintf("mean=%v p50<%v p99<%v max=%v",
		h.Mean().Round(time.Microsecond), h.Quantile(0.50), h.Quantile(0.99),
		h.Max().Round(time.Microsecond))
}

// NumBuckets is the number of buckets a HistSnapshot exposes — one per
// power-of-two latency bucket of the live Hist.
const NumBuckets = histBuckets

// BucketUpperNs returns bucket i's exclusive upper bound in nanoseconds
// (2^(i+1)); the overflow bucket's bound is math.MaxInt64.
func BucketUpperNs(i int) int64 {
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	return int64(1) << (i + 1)
}

// HistSnapshot is a point-in-time copy of a Hist with the raw buckets
// exposed, for exporters (Prometheus exposition, JSON metric dumps)
// that need more than the Summary percentiles. Count is computed as the
// sum of the copied buckets, so a snapshot is always self-consistent
// (the cumulative +Inf bucket equals Count) even when taken while
// observers are running; SumNs and MaxNs are read separately and may
// trail the buckets by in-flight observations.
type HistSnapshot struct {
	Count   int64
	SumNs   int64
	MaxNs   int64
	Buckets [NumBuckets]int64 // Buckets[i] holds samples in [2^i, 2^(i+1)) ns
}

// Snapshot copies the histogram's current state.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.SumNs = h.sum.Load()
	s.MaxNs = h.max.Load()
	return s
}

// MeanNs returns the snapshot's mean sample in nanoseconds.
func (s HistSnapshot) MeanNs() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumNs / s.Count
}

// Quantile returns an upper bound in nanoseconds for the q-quantile
// (0 < q <= 1), with the same bucket-edge resolution as Hist.Quantile.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for i := 0; i < NumBuckets; i++ {
		seen += s.Buckets[i]
		if seen > rank {
			if i == NumBuckets-1 {
				return s.MaxNs
			}
			return BucketUpperNs(i)
		}
	}
	return s.MaxNs
}
