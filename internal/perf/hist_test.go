package perf

import (
	"testing"
	"time"
)

// TestHistBucketBoundaries pins the documented bucket layout: bucket 0
// holds 0ns and 1ns, bucket i holds [2^i, 2^(i+1)). Regression for the
// off-by-one that put 1ns in bucket 1.
func TestHistBucketBoundaries(t *testing.T) {
	bucketOf := func(ns int64) int {
		var h Hist
		h.Observe(time.Duration(ns))
		for i := range h.buckets {
			if h.buckets[i].Load() == 1 {
				return i
			}
		}
		t.Fatalf("no bucket recorded %dns", ns)
		return -1
	}
	if got := bucketOf(0); got != 0 {
		t.Errorf("0ns in bucket %d, want 0", got)
	}
	if got := bucketOf(1); got != 0 {
		t.Errorf("1ns in bucket %d, want 0", got)
	}
	if got := bucketOf(2); got != 1 {
		t.Errorf("2ns in bucket %d, want 1", got)
	}
	for i := 2; i < 20; i++ {
		lo := int64(1) << i
		if got := bucketOf(lo - 1); got != i-1 {
			t.Errorf("%dns (2^%d-1) in bucket %d, want %d", lo-1, i, got, i-1)
		}
		if got := bucketOf(lo); got != i {
			t.Errorf("%dns (2^%d) in bucket %d, want %d", lo, i, got, i)
		}
	}
}

// TestHistQuantileUpperBound: Quantile must return an inclusive upper
// bound for the bucket holding the sample.
func TestHistQuantileUpperBound(t *testing.T) {
	var h Hist
	h.Observe(1) // bucket 0, top edge 2
	if q := h.Quantile(1); q < 1 || q > 2 {
		t.Errorf("Quantile(1) after Observe(1ns) = %v, want in [1,2]", q)
	}
	var h2 Hist
	h2.Observe(3) // bucket 1, top edge 4
	if q := h2.Quantile(1); q < 3 || q > 4 {
		t.Errorf("Quantile(1) after Observe(3ns) = %v, want in [3,4]", q)
	}
}

// TestHistQuantileOrder: quantiles are monotone in q and bounded by Max.
func TestHistQuantileOrder(t *testing.T) {
	var h Hist
	for _, d := range []time.Duration{
		3 * time.Microsecond, 5 * time.Microsecond, 8 * time.Microsecond,
		40 * time.Microsecond, 70 * time.Microsecond,
		300 * time.Microsecond, 2 * time.Millisecond,
		9 * time.Millisecond, 30 * time.Millisecond, 110 * time.Millisecond,
	} {
		h.Observe(d)
	}
	p50, p95, p99 := h.Percentiles()
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("percentiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if p99 > 2*h.Max() {
		t.Fatalf("p99=%v beyond bucket above max=%v", p99, h.Max())
	}
	// p50 of 10 samples ranks the 6th (300us) sample: its bucket top edge
	// is 524.288us.
	if p50 < 300*time.Microsecond || p50 > 525*time.Microsecond {
		t.Errorf("p50 = %v, want in [300us, 524.288us]", p50)
	}
	// p99 ranks the largest sample (110ms): the bucket above caps at
	// 134.217728ms.
	if p99 < 110*time.Millisecond || p99 > 135*time.Millisecond {
		t.Errorf("p99 = %v, want in [110ms, 134.3ms]", p99)
	}
}

// TestHistSummary: the serialized snapshot must agree with the live
// accessors, and an empty histogram summarizes to all zeros.
func TestHistSummary(t *testing.T) {
	var empty Hist
	if s := empty.Summary(); s != (HistSummary{}) {
		t.Errorf("empty Summary() = %+v, want zero", s)
	}
	var h Hist
	h.Observe(10 * time.Microsecond)
	h.Observe(20 * time.Microsecond)
	s := h.Summary()
	if s.Count != 2 {
		t.Errorf("Count = %d, want 2", s.Count)
	}
	if s.MeanNs != int64(15*time.Microsecond) {
		t.Errorf("MeanNs = %d, want 15000", s.MeanNs)
	}
	if s.MaxNs != int64(20*time.Microsecond) {
		t.Errorf("MaxNs = %d, want 20000", s.MaxNs)
	}
	if s.P50Ns != int64(h.Quantile(0.50)) || s.P95Ns != int64(h.Quantile(0.95)) ||
		s.P99Ns != int64(h.Quantile(0.99)) {
		t.Errorf("summary percentiles disagree with Quantile: %+v", s)
	}
	if s.String() == "" {
		t.Error("String() empty")
	}
}
