// Package perf defines the shared cycle-accounting model used by both the
// instruction-level processor simulator (repro/internal/core) and the
// metered application kernels (repro/internal/kernels).
//
// The model follows the paper's methodology (Section 3.3.1): the Cortex
// M0+ baseline and the GF processor share the same two-stage in-order
// timing — loads/stores take 2 cycles, taken branches take 2 cycles
// (pipeline refill), and every other instruction, including every GF
// instruction on the GF processor, takes a single cycle (Table 7
// footnote: "LD/ST has 2 cycles; all other operations are single cycle").
package perf

import "fmt"

// Counts tallies executed operations by class.
type Counts struct {
	LD       int64 // memory loads
	ST       int64 // memory stores
	ALU      int64 // integer/logic/shift single-cycle ops (incl. address arithmetic)
	Mul      int64 // integer multiplies (single-cycle on M0+ with fast multiplier)
	Branch   int64 // taken branches / calls / returns
	BranchNT int64 // not-taken branches
	GFOp     int64 // GF SIMD instructions (mult/sq/pow/inv/add), GF processor only
	GF32     int64 // 32-bit carry-free partial products, GF processor only
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.LD += other.LD
	c.ST += other.ST
	c.ALU += other.ALU
	c.Mul += other.Mul
	c.Branch += other.Branch
	c.BranchNT += other.BranchNT
	c.GFOp += other.GFOp
	c.GF32 += other.GF32
}

// Total returns the total number of operations.
func (c Counts) Total() int64 {
	return c.LD + c.ST + c.ALU + c.Mul + c.Branch + c.BranchNT + c.GFOp + c.GF32
}

// Profile is a machine timing profile: cycles per operation class.
type Profile struct {
	Name     string
	LD       int64
	ST       int64
	ALU      int64
	Mul      int64
	Branch   int64
	BranchNT int64
	GFOp     int64 // 0 = instruction unavailable
	GF32     int64 // 0 = instruction unavailable
}

// M0Plus returns the ARM Cortex M0+ baseline timing: 2-cycle loads/stores,
// 2-cycle taken branches, single-cycle ALU and (fast-multiplier option)
// MULS. GF instructions do not exist on this machine.
func M0Plus() Profile {
	return Profile{Name: "ARM M0+ (baseline)", LD: 2, ST: 2, ALU: 1, Mul: 1, Branch: 2, BranchNT: 1}
}

// GFProcessor returns the paper's processor timing: the M0+ subset timing
// plus single-cycle GF instructions (Table 1: "All SIMD GF instructions
// ... are single cycle instructions").
func GFProcessor() Profile {
	p := M0Plus()
	p.Name = "GF processor (this work)"
	p.GFOp = 1
	p.GF32 = 1
	return p
}

// Cycles prices the counts under the profile. It panics if the counts use
// an instruction class the profile does not implement — a kernel metered
// for the GF processor cannot run on the baseline.
func (c Counts) Cycles(p Profile) int64 {
	if (c.GFOp > 0 && p.GFOp == 0) || (c.GF32 > 0 && p.GF32 == 0) {
		panic(fmt.Sprintf("perf: %s cannot execute GF instructions", p.Name))
	}
	return c.LD*p.LD + c.ST*p.ST + c.ALU*p.ALU + c.Mul*p.Mul +
		c.Branch*p.Branch + c.BranchNT*p.BranchNT + c.GFOp*p.GFOp + c.GF32*p.GF32
}

// Meter is the accumulator kernels thread through their inner loops.
type Meter struct {
	Counts
}

// Reset clears the meter.
func (m *Meter) Reset() { m.Counts = Counts{} }

// Convenience bump helpers (n operations of the class).

func (m *Meter) Load(n int64)     { m.LD += n }
func (m *Meter) Store(n int64)    { m.ST += n }
func (m *Meter) Alu(n int64)      { m.ALU += n }
func (m *Meter) IMul(n int64)     { m.Mul += n }
func (m *Meter) Taken(n int64)    { m.Branch += n }
func (m *Meter) NotTaken(n int64) { m.BranchNT += n }
func (m *Meter) GF(n int64)       { m.GFOp += n }
func (m *Meter) GF32Mult(n int64) { m.GF32 += n }

// Result pairs a kernel name with its cycle counts on two machines.
type Result struct {
	Kernel   string
	Baseline int64
	GFProc   int64
}

// Speedup returns Baseline/GFProc.
func (r Result) Speedup() float64 {
	if r.GFProc == 0 {
		return 0
	}
	return float64(r.Baseline) / float64(r.GFProc)
}

// String formats a result row.
func (r Result) String() string {
	return fmt.Sprintf("%-28s %12d %12d %8.1fx", r.Kernel, r.Baseline, r.GFProc, r.Speedup())
}
