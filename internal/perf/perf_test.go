package perf

import (
	"strings"
	"testing"
)

func TestProfileCosts(t *testing.T) {
	m0 := M0Plus()
	if m0.LD != 2 || m0.ST != 2 || m0.ALU != 1 || m0.Branch != 2 || m0.BranchNT != 1 {
		t.Fatalf("M0+ profile wrong: %+v", m0)
	}
	if m0.GFOp != 0 || m0.GF32 != 0 {
		t.Fatal("M0+ must not implement GF instructions")
	}
	gfp := GFProcessor()
	if gfp.GFOp != 1 || gfp.GF32 != 1 {
		t.Fatal("GF processor must implement single-cycle GF instructions")
	}
	if gfp.LD != m0.LD || gfp.Branch != m0.Branch {
		t.Fatal("scalar timing must match between machines")
	}
}

func TestCountsCycles(t *testing.T) {
	c := Counts{LD: 3, ST: 2, ALU: 10, Mul: 1, Branch: 2, BranchNT: 4}
	got := c.Cycles(M0Plus())
	want := int64(3*2 + 2*2 + 10 + 1 + 2*2 + 4)
	if got != want {
		t.Fatalf("cycles = %d, want %d", got, want)
	}
	c.GFOp = 5
	if c.Cycles(GFProcessor()) != want+5 {
		t.Fatal("GF op pricing wrong")
	}
}

func TestCyclesPanicsOnImpossibleCounts(t *testing.T) {
	c := Counts{GFOp: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic pricing GF ops on M0+")
		}
	}()
	c.Cycles(M0Plus())
}

func TestMeterHelpers(t *testing.T) {
	var m Meter
	m.Load(2)
	m.Store(3)
	m.Alu(4)
	m.IMul(1)
	m.Taken(2)
	m.NotTaken(1)
	m.GF(5)
	m.GF32Mult(6)
	if m.LD != 2 || m.ST != 3 || m.ALU != 4 || m.Mul != 1 || m.Branch != 2 ||
		m.BranchNT != 1 || m.GFOp != 5 || m.GF32 != 6 {
		t.Fatalf("meter = %+v", m.Counts)
	}
	if m.Counts.Total() != 24 {
		t.Fatalf("total = %d", m.Counts.Total())
	}
	m.Reset()
	if m.Counts.Total() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{LD: 1, GFOp: 2}
	a.Add(Counts{LD: 3, ST: 4, GF32: 5})
	if a.LD != 4 || a.ST != 4 || a.GFOp != 2 || a.GF32 != 5 {
		t.Fatalf("add = %+v", a)
	}
}

func TestResult(t *testing.T) {
	r := Result{Kernel: "syndrome", Baseline: 200, GFProc: 10}
	if r.Speedup() != 20 {
		t.Fatalf("speedup = %v", r.Speedup())
	}
	if (Result{GFProc: 0}).Speedup() != 0 {
		t.Fatal("zero division not handled")
	}
	if !strings.Contains(r.String(), "syndrome") || !strings.Contains(r.String(), "20.0x") {
		t.Fatalf("String() = %q", r.String())
	}
}
