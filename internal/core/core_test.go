package core

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
	"repro/internal/isa"
)

// --- GFUnit ---

func TestGFUnitConfigValidation(t *testing.T) {
	if _, err := NewGFUnit(0x3); err == nil { // degree 1
		t.Error("degree 1 accepted")
	}
	if _, err := NewGFUnit(0x211); err == nil { // degree 9
		t.Error("degree 9 accepted")
	}
	if _, err := NewGFUnit(0x11); err == nil { // x^4+1 reducible
		t.Error("reducible poly accepted")
	}
	u, err := NewGFUnit(0x11B)
	if err != nil {
		t.Fatal(err)
	}
	if u.M() != 8 || u.Poly() != 0x11B || !u.Configured() {
		t.Fatal("configuration state wrong")
	}
}

func TestGFUnitMatchesFieldForEveryPoly(t *testing.T) {
	// The hardware datapath (carryless mult + reduction matrix + mapping)
	// must agree with the reference field for every irreducible polynomial
	// of every supported degree — the paper's central flexibility claim.
	for m := MinDegree; m <= MaxDegree; m++ {
		for _, poly := range gf.IrreduciblePolys(m) {
			u, err := NewGFUnit(poly)
			if err != nil {
				t.Fatal(err)
			}
			f := gf.MustNew(m, poly)
			rng := rand.New(rand.NewSource(int64(poly)))
			for trial := 0; trial < 40; trial++ {
				a := packLanes(rng, f)
				b := packLanes(rng, f)
				// SIMD multiply
				got := u.Mul4(a, b)
				for l := 0; l < SIMDLanes; l++ {
					la := gf.Elem(a >> (8 * l) & 0xFF)
					lb := gf.Elem(b >> (8 * l) & 0xFF)
					want := f.Mul(la, lb)
					if gf.Elem(got>>(8*l)&0xFF) != want {
						t.Fatalf("m=%d poly=%#x: lane %d mul", m, poly, l)
					}
				}
				// SIMD square
				got = u.Sq4(a)
				for l := 0; l < SIMDLanes; l++ {
					la := gf.Elem(a >> (8 * l) & 0xFF)
					if gf.Elem(got>>(8*l)&0xFF) != f.Sqr(la) {
						t.Fatalf("m=%d poly=%#x: lane %d square", m, poly, l)
					}
				}
				// SIMD inverse (zero lanes map to zero)
				got = u.Inv4(a)
				for l := 0; l < SIMDLanes; l++ {
					la := gf.Elem(a >> (8 * l) & 0xFF)
					want := gf.Elem(0)
					if la != 0 {
						want = f.Inv(la)
					}
					if gf.Elem(got>>(8*l)&0xFF) != want {
						t.Fatalf("m=%d poly=%#x: lane %d inverse of %#x", m, poly, l, la)
					}
				}
				// SIMD add
				if u.Add4(a, b) != (a^b)&u.laneMask() {
					t.Fatalf("m=%d poly=%#x: add", m, poly)
				}
			}
		}
	}
}

func packLanes(rng *rand.Rand, f *gf.Field) uint32 {
	var v uint32
	for l := 0; l < SIMDLanes; l++ {
		v |= uint32(rng.Intn(f.Order())) << (8 * l)
	}
	return v
}

func TestGFUnitPow(t *testing.T) {
	u, _ := NewGFUnit(0x11D)
	f := gf.MustNew(8, 0x11D)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		a := packLanes(rng, f)
		e := rng.Uint32()
		got := u.Pow4(a, e)
		for l := 0; l < SIMDLanes; l++ {
			la := gf.Elem(a >> (8 * l) & 0xFF)
			le := int(e >> (8 * l) & 0xFF)
			if gf.Elem(got>>(8*l)&0xFF) != f.Pow(la, le) {
				t.Fatalf("lane %d: %#x^%d", l, la, le)
			}
		}
	}
}

func TestPartialProduct32(t *testing.T) {
	u, _ := NewGFUnit(0x11B)
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		a := rng.Uint32()
		b := rng.Uint32()
		hi, lo := u.PartialProduct32(a, b)
		want := gf.CarrylessMul(a, b)
		if uint64(hi)<<32|uint64(lo) != want {
			t.Fatalf("clmul(%#x,%#x) = %#x%08x, want %#x", a, b, hi, lo, want)
		}
	}
}

func TestGFUnitResourceAccounting(t *testing.T) {
	// The paper's resource match: a 4-way SIMD inverse uses exactly 16
	// multipliers + 28 squares; a 32-bit partial product uses exactly the
	// 16 multipliers (Section 2.4.3).
	u, _ := NewGFUnit(0x11B)
	u.ResetStats()
	u.Inv4(0x01020304)
	st := u.Stats()
	if st.MultUses != NumMultUnits {
		t.Errorf("SIMD inverse used %d multipliers, want %d", st.MultUses, NumMultUnits)
	}
	if st.SquareUses != NumSquareUnits {
		t.Errorf("SIMD inverse used %d squares, want %d", st.SquareUses, NumSquareUnits)
	}
	u.ResetStats()
	u.PartialProduct32(0xDEADBEEF, 0x01234567)
	st = u.Stats()
	if st.MultUses != NumMultUnits {
		t.Errorf("32-bit product used %d multipliers, want %d", st.MultUses, NumMultUnits)
	}
	if st.SquareUses != 0 {
		t.Errorf("32-bit product used square units")
	}
	u.ResetStats()
	u.Mul4(1, 1)
	if u.Stats().MultUses != SIMDLanes {
		t.Errorf("SIMD mul used %d multipliers, want %d", u.Stats().MultUses, SIMDLanes)
	}
}

func TestGFUnitUnconfiguredPanics(t *testing.T) {
	u := &GFUnit{}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	u.Mul4(1, 2)
}

// --- Processor ---

func run(t *testing.T, src string, gfu bool) *Processor {
	t.Helper()
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(prog, Config{GFUnit: gfu})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProcessorArithmetic(t *testing.T) {
	p := run(t, `
		movi r1, #7
		movi r2, #5
		add r3, r1, r2    ; 12
		sub r4, r1, r2    ; 2
		mul r5, r1, r2    ; 35
		and r6, r1, r2    ; 5
		orr r7, r1, r2    ; 7
		eor r8, r1, r2    ; 2
		lsli r9, r1, #4   ; 112
		lsri r10, r9, #2  ; 28
		mvn r11, r1       ; ^7
		halt
	`, false)
	want := map[int]uint32{3: 12, 4: 2, 5: 35, 6: 5, 7: 7, 8: 2, 9: 112, 10: 28, 11: ^uint32(7)}
	for r, v := range want {
		if p.Reg(r) != v {
			t.Errorf("r%d = %d, want %d", r, p.Reg(r), v)
		}
	}
}

func TestProcessorNegativeImmediatesAndMovhi(t *testing.T) {
	p := run(t, `
		movi r1, #-1
		movi r2, #0x1234
		movhi r2, #0xABCD
		halt
	`, false)
	if p.Reg(1) != 0xFFFFFFFF {
		t.Errorf("r1 = %#x", p.Reg(1))
	}
	if p.Reg(2) != 0xABCD1234 {
		t.Errorf("r2 = %#x", p.Reg(2))
	}
}

func TestProcessorLoopAndMemory(t *testing.T) {
	// Sum bytes 1..10 stored in data memory.
	p := run(t, `
		movi r1, =buf
		movi r2, #0     ; sum
		movi r3, #0     ; i
	loop:
		ldrbr r4, [r1, r3]
		add r2, r2, r4
		addi r3, r3, #1
		cmpi r3, #10
		blt loop
		movi r5, =out
		str r2, [r5, #0]
		halt
	.data
	buf: .byte 1,2,3,4,5,6,7,8,9,10
	out: .space 4
	`, false)
	if p.Reg(2) != 55 {
		t.Fatalf("sum = %d", p.Reg(2))
	}
	if p.Mem()[10] != 55 {
		t.Fatalf("stored sum = %d", p.Mem()[10])
	}
}

func TestProcessorCallReturn(t *testing.T) {
	p := run(t, `
		movi r1, #3
		bl double
		bl double
		halt
	double:
		add r1, r1, r1
		ret
	`, false)
	if p.Reg(1) != 12 {
		t.Fatalf("r1 = %d, want 12", p.Reg(1))
	}
}

func TestProcessorBranchConditions(t *testing.T) {
	// Signed and unsigned comparisons.
	p := run(t, `
		movi r1, #-1      ; 0xFFFFFFFF
		movi r2, #1
		movi r10, #0
		cmp r1, r2
		bge signed_ge     ; -1 < 1 signed: not taken
		addi r10, r10, #1 ; reached
	signed_ge:
		cmp r1, r2
		blo uns_lo        ; 0xFFFFFFFF > 1 unsigned: not taken
		addi r10, r10, #2 ; reached
	uns_lo:
		cmp r2, r2
		beq eq
		movi r10, #0      ; skipped
	eq:
		halt
	`, false)
	if p.Reg(10) != 3 {
		t.Fatalf("r10 = %d, want 3", p.Reg(10))
	}
}

func TestProcessorCycleModel(t *testing.T) {
	// ALU=1, LD=2, ST=2, taken branch=2, not-taken=1.
	p := run(t, `
		movi r1, =w       ; 1
		ldr r2, [r1, #0]  ; 2
		str r2, [r1, #4]  ; 2
		cmpi r2, #0       ; 1
		beq skip          ; not taken: 1 (w=5 != 0)
		nop               ; 1
	skip:
		b end             ; 2
		nop               ; skipped
	end:
		halt              ; 1
	.data
	w: .word 5
	   .space 4
	`, false)
	if p.Cycles() != 11 {
		t.Fatalf("cycles = %d, want 11", p.Cycles())
	}
	c := p.Counts()
	if c.LD != 1 || c.ST != 1 || c.Branch != 1 || c.BranchNT != 1 || c.ALU != 4 {
		t.Fatalf("counts = %+v", c)
	}
	if p.Instructions() != 8 {
		t.Fatalf("instret = %d", p.Instructions())
	}
}

func TestProcessorGFProgram(t *testing.T) {
	// Configure the AES field and exercise each GF instruction.
	p := run(t, `
		movi r1, =field
		gfconf r1
		movi r2, #0x53
		movi r3, #0xCA
		gfmul r4, r2, r3     ; 0x53*0xCA = 1 in AES field
		gfmulinv r5, r2      ; inv(0x53) = 0xCA
		gfsq r6, r3          ; 0xCA^2
		gfadd r7, r2, r3     ; xor
		movi r8, #2
		gfpow r9, r2, r8     ; 0x53^2
		halt
	.data
	field: .word 0x11B
	`, true)
	if p.Reg(4) != 1 {
		t.Fatalf("gfmul = %#x", p.Reg(4))
	}
	if p.Reg(5) != 0xCA {
		t.Fatalf("gfmulinv = %#x", p.Reg(5))
	}
	f := gf.AES()
	if p.Reg(6) != uint32(f.Sqr(0xCA)) {
		t.Fatalf("gfsq = %#x", p.Reg(6))
	}
	if p.Reg(7) != 0x53^0xCA {
		t.Fatalf("gfadd = %#x", p.Reg(7))
	}
	// Lane 0: 0x53^2; upper lanes compute 0^0 = 1.
	if p.Reg(9) != uint32(f.Sqr(0x53))|0x01010100 {
		t.Fatalf("gfpow = %#x", p.Reg(9))
	}
	if p.GFBusyCycles() == 0 || p.GFBusyCycles() >= p.Cycles() {
		t.Fatalf("gf busy cycles = %d of %d", p.GFBusyCycles(), p.Cycles())
	}
}

func TestProcessorGF32Mul(t *testing.T) {
	p := run(t, `
		movi r1, =field
		gfconf r1
		movi r2, #0x1234
		movhi r2, #0x5678
		movi r3, #0x9ABC
		movhi r3, #0xDEF0
		gf32mul r4, r5, r2, r3
		halt
	.data
	field: .word 0x11B
	`, true)
	want := gf.CarrylessMul(0x56781234, 0xDEF09ABC)
	if uint64(p.Reg(4))<<32|uint64(p.Reg(5)) != want {
		t.Fatalf("gf32mul = %#x_%08x, want %#x", p.Reg(4), p.Reg(5), want)
	}
}

func TestProcessorFaults(t *testing.T) {
	cases := []struct {
		name string
		src  string
		gfu  bool
	}{
		{"gf on baseline", "gfmul r1, r2, r3\nhalt", false},
		{"gf unconfigured", "gfmul r1, r2, r3\nhalt", true},
		{"load oob", "movi r1, #-4\nldr r2, [r1, #0]\nhalt", false},
		{"store oob", "movi r1, #-4\nstr r2, [r1, #0]\nhalt", false},
		{"pc falls off end", "nop", false},
		{"bad gfconf poly", "movi r1, =p\ngfconf r1\nhalt\n.data\np: .word 0x11", true},
	}
	for _, c := range cases {
		prog, err := isa.Assemble(c.src)
		if err != nil {
			t.Fatalf("%s: assemble: %v", c.name, err)
		}
		p, err := New(prog, Config{GFUnit: c.gfu})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Run(0); err == nil {
			t.Errorf("%s: no fault", c.name)
		}
	}
}

func TestProcessorCycleLimit(t *testing.T) {
	prog := isa.MustAssemble("spin: b spin")
	p, _ := New(prog, Config{})
	if err := p.Run(100); err == nil {
		t.Fatal("infinite loop not caught")
	}
}

func TestProcessorStepAfterHalt(t *testing.T) {
	prog := isa.MustAssemble("halt")
	p, _ := New(prog, Config{})
	if err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if !p.Halted() {
		t.Fatal("not halted")
	}
	if err := p.Step(); err == nil {
		t.Fatal("step after halt succeeded")
	}
}

func TestDataImageTooLarge(t *testing.T) {
	prog := isa.MustAssemble("halt\n.data\nbuf: .space 200000")
	if _, err := New(prog, Config{MemSize: 1024}); err == nil {
		t.Fatal("oversized data image accepted")
	}
}

func TestShiftEdgeCases(t *testing.T) {
	p := run(t, `
		movi r1, #1
		movi r2, #40
		lsl r3, r1, r2   ; shift >= 32 -> 0
		lsr r4, r1, r2   ; 0
		halt
	`, false)
	if p.Reg(3) != 0 || p.Reg(4) != 0 {
		t.Fatal("shift >= 32 not zero")
	}
}

func TestOpHistogram(t *testing.T) {
	p := run(t, `
		movi r1, #3
	loop:
		subi r1, r1, #1
		cmpi r1, #0
		bgt loop
		halt
	`, false)
	h := p.OpHistogram()
	if h[isa.MOVI] != 1 || h[isa.SUBI] != 3 || h[isa.CMPI] != 3 || h[isa.BGT] != 3 || h[isa.HALT] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	var total int64
	for _, n := range h {
		total += n
	}
	if total != p.Instructions() {
		t.Fatalf("histogram total %d != instret %d", total, p.Instructions())
	}
	// The returned map is a copy.
	h[isa.MOVI] = 999
	if p.OpHistogram()[isa.MOVI] != 1 {
		t.Fatal("histogram aliased internal state")
	}
}
