package core

import (
	"fmt"

	"repro/internal/gf"
)

// The product-mapping circuit of Fig. 5(b). The physical reduction module
// is sized for the default 8-bit datapath: a "remaining vector" of 8 bits
// (passed through) and a "reduction vector" of 7 bits driving the 8-by-7
// matrix-vector multiplier whose matrix P sits in the configuration
// register. A smaller field's (2m-1)-bit full product cannot simply be
// zero-extended into that datapath — the bits above x^(m-1) must be
// *remapped* onto the reduction-vector inputs ("the c_2 bit in the
// partial product would be mapped to the wrong position"). This file
// models both the correct mapping and the naive zero-extension, so the
// paper's argument is executable.

// DatapathBits is the native width of the reduction module.
const DatapathBits = 8

// MappedProduct is the full product split for the physical datapath.
type MappedProduct struct {
	Remaining uint32 // low-order pass-through bits (8-bit port)
	Reduction uint32 // bits driving the P-matrix rows (7-bit port)
}

// MapProduct routes the (2m-1)-bit carry-free product c into the 8-bit
// datapath according to the configured bit-width m: product bits
// 0..m-1 go to the remaining vector, bits m..2m-2 to reduction-vector
// inputs 0..m-2. This is the GF-size-dependent pattern the configuration
// register programs.
func MapProduct(c uint64, m int) MappedProduct {
	return MappedProduct{
		Remaining: uint32(c) & (1<<m - 1),
		Reduction: uint32(c>>m) & (1<<(m-1) - 1),
	}
}

// NaiveMapProduct models the broken alternative the paper warns against:
// zero-extending the operands and keeping the fixed 8-bit mapping, so the
// product's high bits land at datapath positions 8.. regardless of m.
func NaiveMapProduct(c uint64) MappedProduct {
	return MappedProduct{
		Remaining: uint32(c) & 0xFF,
		Reduction: uint32(c>>DatapathBits) & 0x7F,
	}
}

// ReduceMapped completes the reduction on the physical module: output =
// Remaining XOR sum of P rows selected by the Reduction bits. The rows
// are the configuration-register contents for the active field.
func ReduceMapped(mp MappedProduct, rows []uint32) uint32 {
	out := mp.Remaining
	for i := 0; i < len(rows); i++ {
		if mp.Reduction>>i&1 == 1 {
			out ^= rows[i]
		}
	}
	return out
}

// MulViaDatapath multiplies two elements of the configured field through
// the explicit mapping-circuit model; it must agree with Mul4's lanes for
// every field. Exposed for the microarchitecture tests and cmd tooling.
func (u *GFUnit) MulViaDatapath(a, b uint8) (uint8, error) {
	if u.field == nil {
		return 0, fmt.Errorf("core: GF unit not configured")
	}
	mask := uint8(1<<u.m - 1)
	c := gf.CarrylessMul(uint32(a&mask), uint32(b&mask))
	return uint8(ReduceMapped(MapProduct(c, u.m), u.rows)), nil
}
