package core

import (
	"fmt"
	"io"

	"repro/internal/isa"
	"repro/internal/perf"
)

// Processor is the two-stage in-order core of Fig. 2: a 16-entry 32-bit
// register file, a small data memory, the M0+-subset scalar pipeline, and
// (optionally) the GF arithmetic unit. Timing follows perf: loads/stores
// 2 cycles, taken branches 2 cycles, everything else — including every GF
// instruction — 1 cycle.
type Processor struct {
	prog *isa.Program
	mem  []byte
	regs [isa.NumRegs]uint32
	pc   int

	flagN, flagZ, flagC, flagV bool

	gfu       *GFUnit // nil on the baseline profile
	halted    bool
	trace     io.Writer
	maxCycles int64

	cycles  int64
	instret int64
	counts  perf.Counts
	gfBusy  int64 // cycles with a GF instruction in execute
	opHist  map[isa.Op]int64
}

// Config controls processor construction.
type Config struct {
	MemSize   int  // data memory size in bytes (default 64 KiB)
	GFUnit    bool // attach the GF arithmetic unit
	MaxCycles int64
	Trace     io.Writer // when set, Step writes one line per retired instruction
}

// New creates a processor for the program. The program's data image is
// loaded at address 0.
func New(prog *isa.Program, cfg Config) (*Processor, error) {
	if cfg.MemSize == 0 {
		cfg.MemSize = 64 << 10
	}
	if len(prog.Data) > cfg.MemSize {
		return nil, fmt.Errorf("core: data image (%d bytes) exceeds memory (%d)", len(prog.Data), cfg.MemSize)
	}
	p := &Processor{prog: prog, mem: make([]byte, cfg.MemSize), trace: cfg.Trace,
		maxCycles: cfg.MaxCycles, opHist: make(map[isa.Op]int64)}
	copy(p.mem, prog.Data)
	if cfg.GFUnit {
		p.gfu = &GFUnit{}
	}
	return p, nil
}

// ExecError describes a fault during execution.
type ExecError struct {
	PC   int
	Inst string
	Msg  string
}

func (e *ExecError) Error() string {
	return fmt.Sprintf("core: pc=%d [%s]: %s", e.PC, e.Inst, e.Msg)
}

func (p *Processor) fault(msg string) error {
	in := "???"
	if p.pc >= 0 && p.pc < len(p.prog.Insts) {
		in = p.prog.Insts[p.pc].String()
	}
	return &ExecError{PC: p.pc, Inst: in, Msg: msg}
}

// Reg returns register r.
func (p *Processor) Reg(r int) uint32 { return p.regs[r] }

// SetReg sets register r (for test setup and the CLI).
func (p *Processor) SetReg(r int, v uint32) { p.regs[r] = v }

// Mem returns the data memory (aliased, not copied).
func (p *Processor) Mem() []byte { return p.mem }

// Cycles returns total simulated cycles.
func (p *Processor) Cycles() int64 { return p.cycles }

// Instructions returns the retired-instruction count.
func (p *Processor) Instructions() int64 { return p.instret }

// Counts returns the per-class operation counts.
func (p *Processor) Counts() perf.Counts { return p.counts }

// GFUnit returns the attached GF unit (nil on the baseline).
func (p *Processor) GFUnit() *GFUnit { return p.gfu }

// GFBusyCycles returns the cycles a GF instruction occupied the unit; the
// remainder of the cycles the unit is data-gated (Section 2.4.3).
func (p *Processor) GFBusyCycles() int64 { return p.gfBusy }

// Halted reports whether the program executed HALT.
func (p *Processor) Halted() bool { return p.halted }

// OpHistogram returns the per-opcode retired-instruction counts.
func (p *Processor) OpHistogram() map[isa.Op]int64 {
	out := make(map[isa.Op]int64, len(p.opHist))
	for op, n := range p.opHist {
		out[op] = n
	}
	return out
}

func (p *Processor) loadWord(addr uint32) (uint32, error) {
	if int(addr)+4 > len(p.mem) {
		return 0, p.fault(fmt.Sprintf("load word out of bounds at %#x", addr))
	}
	return uint32(p.mem[addr]) | uint32(p.mem[addr+1])<<8 |
		uint32(p.mem[addr+2])<<16 | uint32(p.mem[addr+3])<<24, nil
}

func (p *Processor) storeWord(addr, v uint32) error {
	if int(addr)+4 > len(p.mem) {
		return p.fault(fmt.Sprintf("store word out of bounds at %#x", addr))
	}
	p.mem[addr] = byte(v)
	p.mem[addr+1] = byte(v >> 8)
	p.mem[addr+2] = byte(v >> 16)
	p.mem[addr+3] = byte(v >> 24)
	return nil
}

// setFlags updates NZCV for CMP (a - b).
func (p *Processor) setFlags(a, b uint32) {
	d := a - b
	p.flagZ = d == 0
	p.flagN = int32(d) < 0
	p.flagC = a >= b // no borrow
	p.flagV = (int32(a) < 0) != (int32(b) < 0) && (int32(d) < 0) != (int32(a) < 0)
}

func (p *Processor) cond(op isa.Op) bool {
	switch op {
	case isa.BEQ:
		return p.flagZ
	case isa.BNE:
		return !p.flagZ
	case isa.BLT:
		return p.flagN != p.flagV
	case isa.BGE:
		return p.flagN == p.flagV
	case isa.BGT:
		return !p.flagZ && p.flagN == p.flagV
	case isa.BLE:
		return p.flagZ || p.flagN != p.flagV
	case isa.BLO:
		return !p.flagC
	case isa.BHS:
		return p.flagC
	}
	return true
}

// Run executes until HALT, an error, or maxCycles (0 falls back to the
// Config.MaxCycles limit, then to a 100M default).
func (p *Processor) Run(maxCycles int64) error {
	if maxCycles <= 0 {
		maxCycles = p.maxCycles
	}
	if maxCycles <= 0 {
		maxCycles = 100_000_000
	}
	for !p.halted {
		if p.cycles >= maxCycles {
			return p.fault(fmt.Sprintf("cycle limit %d exceeded", maxCycles))
		}
		if err := p.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Step executes one instruction.
func (p *Processor) Step() error {
	if p.halted {
		return p.fault("processor halted")
	}
	if p.pc < 0 || p.pc >= len(p.prog.Insts) {
		return p.fault("pc out of program")
	}
	in := p.prog.Insts[p.pc]
	next := p.pc + 1
	r := &p.regs
	if p.trace != nil {
		fmt.Fprintf(p.trace, "%8d  %4d  %s\n", p.cycles, p.pc, in)
	}
	p.opHist[in.Op]++

	switch in.Op {
	case isa.NOP:
		p.tickALU()
	case isa.HALT:
		p.halted = true
		p.tickALU()
	case isa.MOV:
		r[in.Rd] = r[in.Rs1]
		p.tickALU()
	case isa.MVN:
		r[in.Rd] = ^r[in.Rs1]
		p.tickALU()
	case isa.MOVI:
		r[in.Rd] = uint32(in.Imm)
		p.tickALU()
	case isa.MOVHI:
		r[in.Rd] = r[in.Rd]&0xFFFF | uint32(in.Imm)<<16
		p.tickALU()
	case isa.ADD:
		r[in.Rd] = r[in.Rs1] + r[in.Rs2]
		p.tickALU()
	case isa.ADDI:
		r[in.Rd] = r[in.Rs1] + uint32(in.Imm)
		p.tickALU()
	case isa.SUB:
		r[in.Rd] = r[in.Rs1] - r[in.Rs2]
		p.tickALU()
	case isa.SUBI:
		r[in.Rd] = r[in.Rs1] - uint32(in.Imm)
		p.tickALU()
	case isa.AND:
		r[in.Rd] = r[in.Rs1] & r[in.Rs2]
		p.tickALU()
	case isa.ANDI:
		r[in.Rd] = r[in.Rs1] & uint32(in.Imm)
		p.tickALU()
	case isa.ORR:
		r[in.Rd] = r[in.Rs1] | r[in.Rs2]
		p.tickALU()
	case isa.EOR:
		r[in.Rd] = r[in.Rs1] ^ r[in.Rs2]
		p.tickALU()
	case isa.LSL:
		r[in.Rd] = shiftL(r[in.Rs1], r[in.Rs2])
		p.tickALU()
	case isa.LSLI:
		r[in.Rd] = shiftL(r[in.Rs1], uint32(in.Imm))
		p.tickALU()
	case isa.LSR:
		r[in.Rd] = shiftR(r[in.Rs1], r[in.Rs2])
		p.tickALU()
	case isa.LSRI:
		r[in.Rd] = shiftR(r[in.Rs1], uint32(in.Imm))
		p.tickALU()
	case isa.MUL:
		r[in.Rd] = r[in.Rs1] * r[in.Rs2]
		p.cycles++
		p.counts.Mul++
	case isa.CMP:
		p.setFlags(r[in.Rs1], r[in.Rs2])
		p.tickALU()
	case isa.CMPI:
		p.setFlags(r[in.Rs1], uint32(in.Imm))
		p.tickALU()
	case isa.B:
		next = int(in.Imm)
		p.tickTaken()
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BGT, isa.BLE, isa.BLO, isa.BHS:
		if p.cond(in.Op) {
			next = int(in.Imm)
			p.tickTaken()
		} else {
			p.cycles++
			p.counts.BranchNT++
		}
	case isa.BL:
		r[isa.LR] = uint32(p.pc + 1)
		next = int(in.Imm)
		p.tickTaken()
	case isa.RET:
		next = int(r[isa.LR])
		p.tickTaken()
	case isa.LDR:
		v, err := p.loadWord(r[in.Rs1] + uint32(in.Imm))
		if err != nil {
			return err
		}
		r[in.Rd] = v
		p.tickLD()
	case isa.LDRR:
		v, err := p.loadWord(r[in.Rs1] + r[in.Rs2])
		if err != nil {
			return err
		}
		r[in.Rd] = v
		p.tickLD()
	case isa.LDRB:
		addr := r[in.Rs1] + uint32(in.Imm)
		if int(addr) >= len(p.mem) {
			return p.fault(fmt.Sprintf("load byte out of bounds at %#x", addr))
		}
		r[in.Rd] = uint32(p.mem[addr])
		p.tickLD()
	case isa.LDRBR:
		addr := r[in.Rs1] + r[in.Rs2]
		if int(addr) >= len(p.mem) {
			return p.fault(fmt.Sprintf("load byte out of bounds at %#x", addr))
		}
		r[in.Rd] = uint32(p.mem[addr])
		p.tickLD()
	case isa.STR:
		if err := p.storeWord(r[in.Rs1]+uint32(in.Imm), r[in.Rs2]); err != nil {
			return err
		}
		p.tickST()
	case isa.STRR:
		if err := p.storeWord(r[in.Rs1]+r[in.Rd2], r[in.Rs2]); err != nil {
			return err
		}
		p.tickST()
	case isa.STRB:
		addr := r[in.Rs1] + uint32(in.Imm)
		if int(addr) >= len(p.mem) {
			return p.fault(fmt.Sprintf("store byte out of bounds at %#x", addr))
		}
		p.mem[addr] = byte(r[in.Rs2])
		p.tickST()
	case isa.STRBR:
		addr := r[in.Rs1] + r[in.Rd2]
		if int(addr) >= len(p.mem) {
			return p.fault(fmt.Sprintf("store byte out of bounds at %#x", addr))
		}
		p.mem[addr] = byte(r[in.Rs2])
		p.tickST()

	case isa.GFCONF:
		if p.gfu == nil {
			return p.fault("GF instruction on baseline processor (no GF unit)")
		}
		poly, err := p.loadWord(r[in.Rs1])
		if err != nil {
			return err
		}
		if err := p.gfu.Configure(poly); err != nil {
			return p.fault(err.Error())
		}
		// Configuration loads from memory: charge a load.
		p.tickLD()
		p.gfBusy++
	case isa.GFMUL, isa.GFMULINV, isa.GFSQ, isa.GFPOW, isa.GFADD, isa.GF32MUL:
		if p.gfu == nil {
			return p.fault("GF instruction on baseline processor (no GF unit)")
		}
		if !p.gfu.Configured() {
			return p.fault("GF unit not configured (missing gfconf)")
		}
		switch in.Op {
		case isa.GFMUL:
			r[in.Rd] = p.gfu.Mul4(r[in.Rs1], r[in.Rs2])
		case isa.GFMULINV:
			r[in.Rd] = p.gfu.Inv4(r[in.Rs1])
		case isa.GFSQ:
			r[in.Rd] = p.gfu.Sq4(r[in.Rs1])
		case isa.GFPOW:
			r[in.Rd] = p.gfu.Pow4(r[in.Rs1], r[in.Rs2])
		case isa.GFADD:
			r[in.Rd] = p.gfu.Add4(r[in.Rs1], r[in.Rs2])
		case isa.GF32MUL:
			hi, lo := p.gfu.PartialProduct32(r[in.Rs1], r[in.Rs2])
			r[in.Rd] = hi
			r[in.Rd2] = lo
		}
		p.cycles++
		p.gfBusy++
		if in.Op == isa.GF32MUL {
			p.counts.GF32++
		} else {
			p.counts.GFOp++
		}
	default:
		return p.fault("illegal opcode")
	}
	p.instret++
	p.pc = next
	return nil
}

func shiftL(v, by uint32) uint32 {
	if by >= 32 {
		return 0
	}
	return v << by
}

func shiftR(v, by uint32) uint32 {
	if by >= 32 {
		return 0
	}
	return v >> by
}

func (p *Processor) tickALU() {
	p.cycles++
	p.counts.ALU++
}

func (p *Processor) tickLD() {
	p.cycles += 2
	p.counts.LD++
}

func (p *Processor) tickST() {
	p.cycles += 2
	p.counts.ST++
}

func (p *Processor) tickTaken() {
	p.cycles += 2
	p.counts.Branch++
}
