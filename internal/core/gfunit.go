// Package core implements the paper's contribution: the programmable
// Galois Field processor. It contains two cooperating models:
//
//   - GFUnit — the GF arithmetic unit microarchitecture of Section 2.4:
//     16 8-bit multiplier primitives and 28 8-bit square primitives, a
//     centralized configuration register holding the reduction matrix for
//     an arbitrary irreducible polynomial of degree 2..8, and the
//     interconnect that wires the primitives into the Table-1 SIMD,
//     multiplicative-inverse and 32-bit-partial-product instructions.
//
//   - Processor — the two-stage in-order core of Fig. 2 executing the
//     repro/internal/isa instruction set with the paper's cycle timing,
//     with the GF unit attached as a functional unit.
package core

import (
	"fmt"

	"repro/internal/gf"
)

// Datapath geometry constants from the paper (Section 2.4.1: "Our
// preferred design includes 16 GF multiplication units and 28 GF square
// units", four-lane 8-bit SIMD).
const (
	NumMultUnits   = 16 // 8-bit GF multiplier primitives
	NumSquareUnits = 28 // 8-bit GF square primitives
	SIMDLanes      = 4  // 8-bit lanes per 32-bit register
	LaneBits       = 8  // default datapath element width
	MaxDegree      = 8  // largest supported field degree
	MinDegree      = 2  // smallest supported field degree
)

// UnitStats tracks primitive-unit activity so kernels can be checked
// against the paper's utilization and data-gating claims.
type UnitStats struct {
	Instructions int64 // GF instructions executed
	MultUses     int64 // multiplier-primitive activations
	SquareUses   int64 // square-primitive activations
	Configs      int64 // configuration-register writes
}

// AffineMode selects the optional affine output stage of the SIMD
// inverse instruction. The paper maps the AES S-box "directly" onto
// gfMultInv; the affine transform is a fixed XOR network folded into the
// instruction's output (reproduction assumption A1, see DESIGN.md /
// EXPERIMENTS.md). It is selected through configuration-register bits
// 17:16 of the gfConfig word.
type AffineMode int

const (
	// AffineNone: plain multiplicative inverse (coding workloads).
	AffineNone AffineMode = iota
	// AffineAES: forward S-box — inverse then the FIPS-197 affine map.
	AffineAES
	// AffineAESInverse: inverse S-box — inverse affine map then inverse.
	AffineAESInverse
)

// GFUnit is the configurable GF arithmetic unit. The zero value is
// unconfigured; call Configure before issuing operations.
type GFUnit struct {
	m      int
	poly   uint32
	field  *gf.Field
	rows   []uint32 // reduction matrix P in the configuration register
	affine AffineMode

	stats UnitStats
}

// NewGFUnit returns a unit configured for the given irreducible
// polynomial (degree 2..8, leading term included).
func NewGFUnit(poly uint32) (*GFUnit, error) {
	u := &GFUnit{}
	if err := u.Configure(poly); err != nil {
		return nil, err
	}
	return u, nil
}

// Configure loads the field configuration register from a gfConfig word:
// bits 15:0 hold the irreducible polynomial (leading term included),
// bits 17:16 the AffineMode for the SIMD-inverse output stage. It
// derives the reduction matrix P and records the bit-width for the
// product-mapping circuit (Section 2.4.2).
func (u *GFUnit) Configure(word uint32) error {
	poly := word & 0xFFFF
	mode := AffineMode(word >> 16 & 0x3)
	if mode > AffineAESInverse {
		return fmt.Errorf("core: bad affine mode %d", mode)
	}
	m := gf.PolyDegree(uint64(poly))
	if m < MinDegree || m > MaxDegree {
		return fmt.Errorf("core: field degree %d outside hardware range [%d,%d]", m, MinDegree, MaxDegree)
	}
	if !gf.Irreducible(uint64(poly)) {
		return fmt.Errorf("core: polynomial %#x is reducible", poly)
	}
	f, err := gf.New(m, poly)
	if err != nil {
		return err
	}
	if mode != AffineNone && m != 8 {
		return fmt.Errorf("core: AES affine stage requires an 8-bit field")
	}
	u.m = m
	u.poly = poly
	u.field = f
	u.rows = gf.ReductionMatrix(poly)
	u.affine = mode
	u.stats.Configs++
	return nil
}

// Affine returns the configured affine output mode.
func (u *GFUnit) Affine() AffineMode { return u.affine }

// aesAffine applies b_i = a_i ^ a_{i+4} ^ a_{i+5} ^ a_{i+6} ^ a_{i+7} ^ c_i
// (indices mod 8, c = 0x63) — the FIPS-197 S-box output map.
func aesAffine(a uint8) uint8 {
	var b uint8
	for i := 0; i < 8; i++ {
		bit := (a>>i ^ a>>((i+4)%8) ^ a>>((i+5)%8) ^ a>>((i+6)%8) ^ a>>((i+7)%8)) & 1
		b |= bit << i
	}
	return b ^ 0x63
}

// aesInvAffine inverts aesAffine.
func aesInvAffine(b uint8) uint8 {
	var a uint8
	for i := 0; i < 8; i++ {
		bit := (b>>((i+2)%8) ^ b>>((i+5)%8) ^ b>>((i+7)%8)) & 1
		a |= bit << i
	}
	return a ^ 0x05
}

// Configured reports whether the unit has a field loaded.
func (u *GFUnit) Configured() bool { return u.field != nil }

// M returns the configured field degree.
func (u *GFUnit) M() int { return u.m }

// Poly returns the configured irreducible polynomial.
func (u *GFUnit) Poly() uint32 { return u.poly }

// Field returns the functional field model for the current configuration.
func (u *GFUnit) Field() *gf.Field { return u.field }

// Stats returns a copy of the unit-activity counters.
func (u *GFUnit) Stats() UnitStats { return u.stats }

// ResetStats clears the activity counters.
func (u *GFUnit) ResetStats() { u.stats = UnitStats{} }

// laneMask zeroes lane bits above the configured bit-width, the "setting
// the most significant bits to zeros" half of Fig. 5(b); the mapping
// circuit (ReduceWithMatrix on the m-specific rows) is the other half.
func (u *GFUnit) laneMask() uint32 {
	lane := uint32(1)<<u.m - 1
	return lane | lane<<8 | lane<<16 | lane<<24
}

func (u *GFUnit) mustConfig() {
	if u.field == nil {
		panic("core: GF unit not configured (execute gfconf first)")
	}
}

// laneMul multiplies one 8-bit lane pair on the hardware path: carry-free
// product then reduction-matrix linear transform.
func (u *GFUnit) laneMul(a, b uint8) uint8 {
	c := gf.CarrylessMul(uint32(a), uint32(b))
	return uint8(gf.ReduceWithMatrix(c, u.rows, u.m))
}

// laneSq squares one lane: bit spread + reduction (no multiplier needed).
func (u *GFUnit) laneSq(a uint8) uint8 {
	return uint8(gf.ReduceWithMatrix(gf.SpreadBits(uint32(a)), u.rows, u.m))
}

// Mul4 executes gfMult_simd: four independent lane products in one cycle,
// using 4 of the 16 multiplier primitives.
func (u *GFUnit) Mul4(a, b uint32) uint32 {
	u.mustConfig()
	a &= u.laneMask()
	b &= u.laneMask()
	var out uint32
	for l := 0; l < SIMDLanes; l++ {
		sh := uint(8 * l)
		out |= uint32(u.laneMul(uint8(a>>sh), uint8(b>>sh))) << sh
	}
	u.stats.Instructions++
	u.stats.MultUses += SIMDLanes
	return out
}

// Add4 executes gfAdd_simd (lane-wise XOR; lanes cannot interact).
func (u *GFUnit) Add4(a, b uint32) uint32 {
	u.mustConfig()
	u.stats.Instructions++
	return (a ^ b) & u.laneMask()
}

// Sq4 executes gfSq_simd using 4 of the 28 square primitives.
func (u *GFUnit) Sq4(a uint32) uint32 {
	u.mustConfig()
	a &= u.laneMask()
	var out uint32
	for l := 0; l < SIMDLanes; l++ {
		sh := uint(8 * l)
		out |= uint32(u.laneSq(uint8(a>>sh))) << sh
	}
	u.stats.Instructions++
	u.stats.SquareUses += SIMDLanes
	return out
}

// Inv4 executes gfMultInv_simd: each lane runs the Itoh-Tsujii chain of
// Fig. 6 (4 multipliers + 7 squares per lane for m = 8, muxed taps for
// smaller m), so a 4-lane inverse consumes exactly the 16 multiplier and
// 28 square primitives — the resource-match the paper engineered.
// Zero lanes produce zero (hardware convention, matching the AES S-box
// 0 -> 0 requirement).
func (u *GFUnit) Inv4(a uint32) uint32 {
	u.mustConfig()
	a &= u.laneMask()
	var out uint32
	for l := 0; l < SIMDLanes; l++ {
		sh := uint(8 * l)
		lane := uint8(a >> sh)
		if u.affine == AffineAESInverse {
			lane = aesInvAffine(lane) // input stage of the inverse S-box
		}
		var inv uint8
		if lane == 0 {
			// The chain still clocks through the primitives; inverse(0)
			// is 0 by hardware convention (the AES S-box needs 0 -> 0
			// before the affine stage).
			u.stats.MultUses += 4
			u.stats.SquareUses += 7
		} else {
			v, tr := u.field.InvITAOps(gf.Elem(lane))
			inv = uint8(v)
			u.stats.MultUses += int64(tr.Muls)
			u.stats.SquareUses += int64(tr.Squares)
			// Idle chain stages (smaller m) still occupy their units.
			u.stats.MultUses += int64(4 - tr.Muls)
			u.stats.SquareUses += int64(7 - tr.Squares)
		}
		if u.affine == AffineAES {
			inv = aesAffine(inv) // output stage of the forward S-box
		}
		out |= uint32(inv) << sh
	}
	u.stats.Instructions++
	return out
}

// Pow4 executes gfPower_simd: lane-wise a^e where e is the integer value
// of the exponent lane. Even powers route through the square-primitive
// bank (Fig. 8); the general case is modeled functionally.
func (u *GFUnit) Pow4(a, e uint32) uint32 {
	u.mustConfig()
	a &= u.laneMask()
	var out uint32
	for l := 0; l < SIMDLanes; l++ {
		sh := uint(8 * l)
		base := gf.Elem(a >> sh & 0xFF)
		exp := int(e >> sh & 0xFF)
		out |= uint32(u.field.Pow(base, exp)) << sh
	}
	u.stats.Instructions++
	u.stats.SquareUses += 7 * SIMDLanes // the square bank clocks regardless
	return out
}

// PartialProduct32 executes gf32bMult: the single-cycle 32-bit carry-free
// product, wiring all 16 multiplier primitives as a 4x4 grid of 8x8
// carryless multipliers whose partial results are XOR-combined (Fig. 7).
// The reduction datapath is data-gated during this instruction (the
// paper's 33% power saving).
func (u *GFUnit) PartialProduct32(a, b uint32) (hi, lo uint32) {
	u.mustConfig()
	var full uint64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			p := gf.CarrylessMul(a>>(8*i)&0xFF, b>>(8*j)&0xFF)
			full ^= p << (8 * (i + j))
		}
	}
	u.stats.Instructions++
	u.stats.MultUses += NumMultUnits
	return uint32(full >> 32), uint32(full)
}
