package core

import (
	"testing"

	"repro/internal/gf"
)

func TestMappedDatapathMatchesFieldForAllWidths(t *testing.T) {
	// The mapping circuit must make the shared 8-bit reduction module
	// compute correct products for every m = 2..8 and every irreducible
	// polynomial — the exact flexibility claim of Section 2.4.1.
	for m := MinDegree; m <= MaxDegree; m++ {
		for _, poly := range gf.IrreduciblePolys(m) {
			u, err := NewGFUnit(poly)
			if err != nil {
				t.Fatal(err)
			}
			f := gf.MustNew(m, poly)
			for a := 0; a < 1<<m; a++ {
				for b := 0; b <= a; b++ {
					got, err := u.MulViaDatapath(uint8(a), uint8(b))
					if err != nil {
						t.Fatal(err)
					}
					if gf.Elem(got) != f.Mul(gf.Elem(a), gf.Elem(b)) {
						t.Fatalf("m=%d poly=%#x: datapath %#x*%#x = %#x, field %#x",
							m, poly, a, b, got, f.Mul(gf.Elem(a), gf.Elem(b)))
					}
				}
			}
		}
	}
}

func TestNaiveMappingFailsForSmallWidths(t *testing.T) {
	// The paper's Fig. 5(b) argument: zeroing the operand MSBs without
	// remapping the product bits gives WRONG results for m < 8, because
	// the product's high bits never reach the reduction-vector inputs.
	u, err := NewGFUnit(0x25) // GF(2^5)/x^5+x^2+1
	if err != nil {
		t.Fatal(err)
	}
	f := gf.MustNew(5, 0x25)
	failures := 0
	for a := 1; a < 32; a++ {
		for b := 1; b < 32; b++ {
			c := gf.CarrylessMul(uint32(a), uint32(b))
			naive := ReduceMapped(NaiveMapProduct(c), gf.ReductionMatrix(0x25))
			want := uint32(f.Mul(gf.Elem(a), gf.Elem(b)))
			if naive != want {
				failures++
			}
		}
	}
	if failures == 0 {
		t.Fatal("naive zero-extension never failed — the mapping circuit would be unnecessary")
	}
	t.Logf("naive mapping wrong for %d of 961 GF(2^5) products; the mapping circuit fixes all of them", failures)
	// And the correct mapping fixes exactly those cases (covered
	// exhaustively above); spot-check the paper's c_2-style scenario.
	got, _ := u.MulViaDatapath(0x1F, 0x1F)
	if gf.Elem(got) != f.Mul(0x1F, 0x1F) {
		t.Fatal("mapped datapath wrong on spot check")
	}
}

func TestMulViaDatapathUnconfigured(t *testing.T) {
	u := &GFUnit{}
	if _, err := u.MulViaDatapath(1, 2); err == nil {
		t.Fatal("unconfigured unit accepted")
	}
}
