package core

import (
	"testing"

	"repro/internal/aes"
	"repro/internal/gf"
)

func TestAffineModeSBox(t *testing.T) {
	// AffineAES: Inv4 computes the full forward S-box per lane.
	u := &GFUnit{}
	if err := u.Configure(1<<16 | 0x11B); err != nil {
		t.Fatal(err)
	}
	if u.Affine() != AffineAES {
		t.Fatal("affine mode not set")
	}
	for x := 0; x < 256; x++ {
		in := uint32(x) | uint32(x)<<8 | uint32(x)<<16 | uint32(x)<<24
		out := u.Inv4(in)
		want := aes.SubByteComputed(byte(x))
		for l := 0; l < 4; l++ {
			if byte(out>>(8*l)) != want {
				t.Fatalf("lane %d: sbox(%#02x) = %#02x, want %#02x", l, x, byte(out>>(8*l)), want)
			}
		}
	}
}

func TestAffineModeInvSBox(t *testing.T) {
	u := &GFUnit{}
	if err := u.Configure(2<<16 | 0x11B); err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 256; x++ {
		out := u.Inv4(uint32(x))
		want := aes.InvSubByteComputed(byte(x))
		if byte(out) != want {
			t.Fatalf("invsbox(%#02x) = %#02x, want %#02x", x, byte(out), want)
		}
	}
}

func TestAffineModeValidation(t *testing.T) {
	u := &GFUnit{}
	if err := u.Configure(3<<16 | 0x11B); err == nil {
		t.Error("mode 3 accepted")
	}
	// Affine stage only defined for 8-bit fields.
	if err := u.Configure(1<<16 | 0x25); err == nil {
		t.Error("affine on GF(2^5) accepted")
	}
	// Mode 0 on a small field is fine.
	if err := u.Configure(0x25); err != nil {
		t.Errorf("plain GF(2^5) rejected: %v", err)
	}
	if u.Affine() != AffineNone {
		t.Error("affine mode leaked across configurations")
	}
}

func TestAffineNoneUnchanged(t *testing.T) {
	// Without the affine stage Inv4 must still be the plain inverse
	// (regression guard for the coding workloads).
	u, err := NewGFUnit(0x11D)
	if err != nil {
		t.Fatal(err)
	}
	f := u.Field()
	for x := 1; x < 256; x++ {
		if byte(u.Inv4(uint32(x))) != byte(f.Inv(gf.Elem(x))) {
			t.Fatalf("plain inverse broken at %#x", x)
		}
	}
	if u.Inv4(0) != 0 {
		t.Fatal("inverse of zero lane not zero")
	}
}
