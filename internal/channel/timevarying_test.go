package channel

import (
	"bytes"
	"testing"
)

func TestParseSchedule(t *testing.T) {
	eps, err := ParseSchedule("500:7,1000:7>4:burst,500:-1.5>7")
	if err != nil {
		t.Fatal(err)
	}
	want := []Episode{
		{Frames: 500, StartEbN0: 7, EndEbN0: 7},
		{Frames: 1000, StartEbN0: 7, EndEbN0: 4, Burst: true},
		{Frames: 500, StartEbN0: -1.5, EndEbN0: 7},
	}
	if len(eps) != len(want) {
		t.Fatalf("got %d episodes, want %d", len(eps), len(want))
	}
	for i := range want {
		if eps[i] != want[i] {
			t.Errorf("episode %d = %+v, want %+v", i, eps[i], want[i])
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, s := range []string{
		"", "abc", "10", "0:7", "-3:7", "10:x", "10:7>x", "10:7:bursty", "10:7:burst:extra",
	} {
		if _, err := ParseSchedule(s); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", s)
		}
	}
}

func TestTimeVaryingDrift(t *testing.T) {
	tv, err := NewTimeVarying([]Episode{
		{Frames: 10, StartEbN0: 8, EndEbN0: 8},
		{Frames: 11, StartEbN0: 8, EndEbN0: 4},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tv.TotalFrames() != 21 {
		t.Fatalf("TotalFrames = %d, want 21", tv.TotalFrames())
	}
	if got := tv.EbN0At(0); got != 8 {
		t.Errorf("EbN0At(0) = %v, want 8", got)
	}
	if got := tv.EbN0At(9); got != 8 {
		t.Errorf("EbN0At(9) = %v, want 8", got)
	}
	// Drift endpoints are inclusive: frame 10 starts at 8dB, frame 20
	// ends at 4dB, frame 15 sits exactly halfway.
	if got := tv.EbN0At(10); got != 8 {
		t.Errorf("EbN0At(10) = %v, want 8", got)
	}
	if got := tv.EbN0At(15); got != 6 {
		t.Errorf("EbN0At(15) = %v, want 6", got)
	}
	if got := tv.EbN0At(20); got != 4 {
		t.Errorf("EbN0At(20) = %v, want 4", got)
	}
	// Past the schedule: clamped to the last episode's end point.
	if got := tv.EbN0At(1000); got != 4 {
		t.Errorf("EbN0At(1000) = %v, want 4", got)
	}
	if got := tv.EpisodeAt(1000); got != 1 {
		t.Errorf("EpisodeAt(1000) = %d, want 1", got)
	}
}

// TestTimeVaryingFrameDeterminism: FrameChannel must corrupt a given
// frame identically no matter how many times (or in what order) it is
// asked — the property the concurrent pipeline's reproducibility rests
// on.
func TestTimeVaryingFrameDeterminism(t *testing.T) {
	tv, err := NewTimeVarying([]Episode{
		{Frames: 50, StartEbN0: 2, EndEbN0: 2},
		{Frames: 50, StartEbN0: 2, EndEbN0: 1, Burst: true},
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	bits := make([]byte, 512) // all zeros: output ones are the flips
	for _, frame := range []uint64{0, 49, 50, 99, 7} {
		a := tv.FrameChannel(frame).TransmitBits(bits)
		b := tv.FrameChannel(frame).TransmitBits(bits)
		if !bytes.Equal(a, b) {
			t.Fatalf("frame %d corrupted differently across FrameChannel calls", frame)
		}
	}
	// Distinct frames get independent streams (overwhelmingly likely to
	// differ at these noise levels).
	a := tv.FrameChannel(3).TransmitBits(bits)
	b := tv.FrameChannel(4).TransmitBits(bits)
	if bytes.Equal(a, b) {
		t.Error("adjacent frames got identical corruption")
	}
}

// TestTimeVaryingChannelInterface: the sequential Channel mode advances
// one frame per TransmitBits call and Fork resets the counter.
func TestTimeVaryingChannelInterface(t *testing.T) {
	mk := func() *TimeVarying {
		tv, err := NewTimeVarying([]Episode{{Frames: 4, StartEbN0: 1, EndEbN0: 1}}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return tv
	}
	bits := make([]byte, 256)
	tv1, tv2 := mk(), mk()
	for i := 0; i < 3; i++ {
		if !bytes.Equal(tv1.TransmitBits(bits), tv2.TransmitBits(bits)) {
			t.Fatalf("call %d diverged between identical instances", i)
		}
	}
	var f Forker = mk()
	fork := f.Fork(7).(*TimeVarying)
	ref := mk()
	if !bytes.Equal(fork.TransmitBits(bits), ref.TransmitBits(bits)) {
		t.Error("Fork(sameSeed) did not reproduce the frame-0 stream")
	}
	if tv1.Description() == "" {
		t.Error("empty description")
	}
}

func TestTimeVaryingValidation(t *testing.T) {
	if _, err := NewTimeVarying(nil, 1); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := NewTimeVarying([]Episode{{Frames: 0}}, 1); err == nil {
		t.Error("zero-length episode accepted")
	}
}

// TestNewBurstAvg: the bursty channel's long-run average flip rate
// should approximate the target p.
func TestNewBurstAvg(t *testing.T) {
	const p = 0.01
	ge, err := NewBurstAvg(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	n := 400000
	bits := make([]byte, n)
	out := ge.TransmitBits(bits)
	flips := CountBitErrors(bits, out)
	rate := float64(flips) / float64(n)
	if rate < p/2 || rate > 2*p {
		t.Errorf("average flip rate %v, want ~%v", rate, p)
	}
}
