// Package channel provides the wireless-channel substrate for the
// paper's motivating IoT scenario (Section 1.1): error-coding flexibility
// pays off because channel conditions vary. It implements a binary
// symmetric channel, a Gilbert-Elliott bursty channel (the "burst bit
// errors" the paper says RS codes absorb), and BPSK-over-AWGN bit-error
// probability so link budgets map to flip probabilities.
//
// Concurrency: the channel models are NOT goroutine-safe. Each carries a
// seeded math/rand.Rand (and GilbertElliott additionally its Markov
// state), and concurrent TransmitBits calls race on it. Concurrent users
// — e.g. the worker pools of package pipeline — must give every worker
// its own instance via Fork, which derives an independent deterministic
// stream from a per-worker seed.
package channel

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/gf"
)

// Channel corrupts a bit stream in place-independent fashion.
type Channel interface {
	// TransmitBits returns a corrupted copy of bits (values 0/1).
	TransmitBits(bits []byte) []byte
	// Description labels the channel for reports.
	Description() string
}

// InPlacer is implemented by channels that can corrupt a bit buffer in
// place — the allocation-free path TransmitSymbolsTo and the bulk
// pipeline's corruption stage use.
type InPlacer interface {
	// TransmitBitsInPlace corrupts bits (values 0/1) in place.
	TransmitBitsInPlace(bits []byte)
}

// Forker is a Channel that can derive an independent same-parameter
// instance with its own deterministic random stream — the per-worker
// constructor concurrent pipelines need, since Channels themselves are
// not goroutine-safe.
type Forker interface {
	Channel
	// Fork returns a fresh channel with identical parameters, reset
	// state, and a new RNG seeded with seed.
	Fork(seed int64) Channel
}

// BSC is the memoryless binary symmetric channel with crossover
// probability P. Not goroutine-safe: use Fork to give each goroutine its
// own instance.
type BSC struct {
	P   float64
	rng *rand.Rand
}

// NewBSC creates a BSC with the given crossover probability and seed.
func NewBSC(p float64, seed int64) (*BSC, error) {
	if p < 0 || p > 0.5 {
		return nil, fmt.Errorf("channel: crossover %v outside [0, 0.5]", p)
	}
	return &BSC{P: p, rng: rand.New(rand.NewSource(seed))}, nil
}

// TransmitBits flips each bit independently with probability P.
func (c *BSC) TransmitBits(bits []byte) []byte {
	out := append([]byte(nil), bits...)
	c.TransmitBitsInPlace(out)
	return out
}

// TransmitBitsInPlace implements InPlacer.
func (c *BSC) TransmitBitsInPlace(bits []byte) {
	for i := range bits {
		if c.rng.Float64() < c.P {
			bits[i] ^= 1
		}
	}
}

// Description implements Channel.
func (c *BSC) Description() string { return fmt.Sprintf("BSC(p=%.2g)", c.P) }

// Fork implements Forker: a BSC with the same crossover probability and
// an independent RNG stream.
func (c *BSC) Fork(seed int64) Channel {
	return &BSC{P: c.P, rng: rand.New(rand.NewSource(seed))}
}

// GilbertElliott is the two-state bursty channel: a good state with a low
// flip probability and a bad state with a high one, with geometric
// sojourn times. Not goroutine-safe (RNG plus Markov state): use Fork to
// give each goroutine its own instance.
type GilbertElliott struct {
	PGoodToBad float64 // transition probability good -> bad per bit
	PBadToGood float64 // transition probability bad -> good per bit
	PErrGood   float64 // flip probability in the good state
	PErrBad    float64 // flip probability in the bad state

	bad bool
	rng *rand.Rand
}

// NewGilbertElliott creates a bursty channel.
func NewGilbertElliott(pGB, pBG, peGood, peBad float64, seed int64) (*GilbertElliott, error) {
	for _, p := range []float64{pGB, pBG, peGood, peBad} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("channel: probability %v outside [0,1]", p)
		}
	}
	return &GilbertElliott{
		PGoodToBad: pGB, PBadToGood: pBG, PErrGood: peGood, PErrBad: peBad,
		rng: rand.New(rand.NewSource(seed)),
	}, nil
}

// TransmitBits runs the two-state Markov chain across the bits.
func (c *GilbertElliott) TransmitBits(bits []byte) []byte {
	out := append([]byte(nil), bits...)
	c.TransmitBitsInPlace(out)
	return out
}

// TransmitBitsInPlace implements InPlacer.
func (c *GilbertElliott) TransmitBitsInPlace(bits []byte) {
	for i := range bits {
		if c.bad {
			if c.rng.Float64() < c.PBadToGood {
				c.bad = false
			}
		} else {
			if c.rng.Float64() < c.PGoodToBad {
				c.bad = true
			}
		}
		pe := c.PErrGood
		if c.bad {
			pe = c.PErrBad
		}
		if c.rng.Float64() < pe {
			bits[i] ^= 1
		}
	}
}

// Fork implements Forker: same channel parameters, reset to the good
// state, independent RNG stream.
func (c *GilbertElliott) Fork(seed int64) Channel {
	return &GilbertElliott{
		PGoodToBad: c.PGoodToBad, PBadToGood: c.PBadToGood,
		PErrGood: c.PErrGood, PErrBad: c.PErrBad,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Description implements Channel.
func (c *GilbertElliott) Description() string {
	return fmt.Sprintf("Gilbert-Elliott(pGB=%.2g, pBG=%.2g, peG=%.2g, peB=%.2g)",
		c.PGoodToBad, c.PBadToGood, c.PErrGood, c.PErrBad)
}

// BPSKBitErrorProb returns the uncoded BPSK bit-error probability over
// AWGN at the given Eb/N0 (dB): p = Q(sqrt(2 Eb/N0)) = erfc(sqrt(Eb/N0))/2.
func BPSKBitErrorProb(ebn0dB float64) float64 {
	lin := math.Pow(10, ebn0dB/10)
	return 0.5 * math.Erfc(math.Sqrt(lin))
}

// TransmitSymbols pushes m-bit field symbols through a bit channel,
// serializing each symbol MSB-first — the mapping a radio would use.
func TransmitSymbols(ch Channel, syms []gf.Elem, m int) []gf.Elem {
	return TransmitSymbolsTo(make([]gf.Elem, len(syms)), ch, syms, m, nil)
}

// TransmitSymbolsTo is TransmitSymbols into a caller-owned destination
// (len(dst) == len(syms); dst may alias syms) with an optional reusable
// bit buffer of capacity >= len(syms)*m. When the channel also implements
// InPlacer and the scratch is big enough, the whole transmission is
// allocation-free. Returns dst.
func TransmitSymbolsTo(dst []gf.Elem, ch Channel, syms []gf.Elem, m int, scratch []byte) []gf.Elem {
	if len(dst) != len(syms) {
		panic(fmt.Sprintf("channel: TransmitSymbolsTo length mismatch dst=%d syms=%d", len(dst), len(syms)))
	}
	if need := len(syms) * m; cap(scratch) < need {
		scratch = make([]byte, need)
	}
	bits := scratch[:0]
	for _, s := range syms {
		for b := m - 1; b >= 0; b-- {
			bits = append(bits, byte(s>>b&1))
		}
	}
	if ip, ok := ch.(InPlacer); ok {
		ip.TransmitBitsInPlace(bits)
	} else {
		bits = ch.TransmitBits(bits)
	}
	for i := range dst {
		var v gf.Elem
		for b := 0; b < m; b++ {
			v = v<<1 | gf.Elem(bits[i*m+b])
		}
		dst[i] = v
	}
	return dst
}

// CountBitErrors returns the Hamming distance between two bit slices.
// When the lengths differ, positions past the shorter slice count as
// errors (a truncated or padded stream is maximally wrong there).
func CountBitErrors(a, b []byte) int {
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	n := len(a) + len(b) - 2*m
	for i := 0; i < m; i++ {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

// CountSymbolErrors returns the number of differing symbols. When the
// lengths differ, positions past the shorter slice count as errors.
func CountSymbolErrors(a, b []gf.Elem) int {
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	n := len(a) + len(b) - 2*m
	for i := 0; i < m; i++ {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}
