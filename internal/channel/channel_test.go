package channel

import (
	"math"
	"testing"

	"repro/internal/gf"
)

func TestBSCValidation(t *testing.T) {
	if _, err := NewBSC(-0.1, 1); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := NewBSC(0.6, 1); err == nil {
		t.Error("p > 0.5 accepted")
	}
}

func TestBSCErrorRate(t *testing.T) {
	c, _ := NewBSC(0.1, 42)
	n := 100000
	bits := make([]byte, n)
	out := c.TransmitBits(bits)
	errs := CountBitErrors(bits, out)
	rate := float64(errs) / float64(n)
	if math.Abs(rate-0.1) > 0.01 {
		t.Errorf("observed rate %v, want ~0.1", rate)
	}
	if len(out) != n {
		t.Error("length changed")
	}
	// Input must be untouched.
	for _, b := range bits {
		if b != 0 {
			t.Fatal("input mutated")
		}
	}
}

func TestBSCZeroProbability(t *testing.T) {
	c, _ := NewBSC(0, 1)
	bits := []byte{1, 0, 1, 1}
	out := c.TransmitBits(bits)
	if CountBitErrors(bits, out) != 0 {
		t.Error("p=0 flipped bits")
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// A bursty channel with the same average error rate as a BSC must
	// produce longer error runs.
	ge, err := NewGilbertElliott(0.01, 0.1, 0.0001, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	n := 200000
	bits := make([]byte, n)
	out := ge.TransmitBits(bits)
	// Measure run lengths of errors.
	var runs, runLen, maxRun int
	cur := 0
	for i := 0; i < n; i++ {
		if out[i] == 1 {
			cur++
			if cur > maxRun {
				maxRun = cur
			}
		} else {
			if cur > 0 {
				runs++
				runLen += cur
			}
			cur = 0
		}
	}
	if runs == 0 {
		t.Fatal("no errors at all")
	}
	avgRun := float64(runLen) / float64(runs)
	if avgRun < 1.2 {
		t.Errorf("average error run %.2f — not bursty", avgRun)
	}
	if maxRun < 3 {
		t.Errorf("max run %d — not bursty", maxRun)
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	if _, err := NewGilbertElliott(1.5, 0, 0, 0, 1); err == nil {
		t.Error("probability > 1 accepted")
	}
}

func TestBPSKBitErrorProb(t *testing.T) {
	// Known BPSK points: ~0.0786 at 0 dB, ~7.8e-4 at ~6.8 dB... check
	// canonical values: Q(sqrt(2)) = 0.0786 at 0 dB; at 9.6 dB ~1e-5.
	p0 := BPSKBitErrorProb(0)
	if math.Abs(p0-0.0786) > 0.002 {
		t.Errorf("BER @0dB = %v, want ~0.0786", p0)
	}
	p96 := BPSKBitErrorProb(9.6)
	if p96 > 2e-5 || p96 < 5e-6 {
		t.Errorf("BER @9.6dB = %v, want ~1e-5", p96)
	}
	// Monotone decreasing.
	if BPSKBitErrorProb(3) >= BPSKBitErrorProb(6) == false {
		t.Error("BER not decreasing with SNR")
	}
}

func TestTransmitSymbolsRoundTrip(t *testing.T) {
	c, _ := NewBSC(0, 3)
	syms := []gf.Elem{0x1F, 0x00, 0x0A, 0x15}
	out := TransmitSymbols(c, syms, 5)
	for i := range syms {
		if out[i] != syms[i] {
			t.Fatal("noiseless transmission changed symbols")
		}
	}
}

func TestTransmitSymbolsErrorMapping(t *testing.T) {
	c, _ := NewBSC(0.5, 9)
	syms := make([]gf.Elem, 1000)
	out := TransmitSymbols(c, syms, 8)
	if CountSymbolErrors(syms, out) < 900 {
		t.Error("p=0.5 channel left most symbols intact")
	}
	for _, s := range out {
		if s > 0xFF {
			t.Fatal("symbol out of field range")
		}
	}
}

func TestDescriptions(t *testing.T) {
	b, _ := NewBSC(0.01, 1)
	g, _ := NewGilbertElliott(0.1, 0.1, 0.01, 0.3, 1)
	if b.Description() == "" || g.Description() == "" {
		t.Error("empty description")
	}
}

// Regression: CountBitErrors/CountSymbolErrors used to index b[i] for
// i := range a and panicked with index-out-of-range whenever
// len(a) > len(b). Length differences now count as errors.
func TestCountBitErrorsLengthMismatch(t *testing.T) {
	cases := []struct {
		a, b []byte
		want int
	}{
		{[]byte{0, 1, 1}, []byte{0, 1, 1}, 0},
		{[]byte{0, 1, 1}, []byte{1, 1, 0}, 2},
		{[]byte{0, 1, 1, 0, 1}, []byte{0, 1}, 3}, // longer a: 3 extra positions
		{[]byte{0, 1}, []byte{0, 0, 1, 1, 1}, 4}, // longer b: 1 flip + 3 extra
		{nil, []byte{1, 0}, 2},
		{[]byte{1, 0}, nil, 2},
		{nil, nil, 0},
	}
	for i, c := range cases {
		if got := CountBitErrors(c.a, c.b); got != c.want {
			t.Errorf("case %d: CountBitErrors(%v, %v) = %d, want %d", i, c.a, c.b, got, c.want)
		}
	}
}

func TestCountSymbolErrorsLengthMismatch(t *testing.T) {
	cases := []struct {
		a, b []gf.Elem
		want int
	}{
		{[]gf.Elem{1, 2, 3}, []gf.Elem{1, 2, 3}, 0},
		{[]gf.Elem{1, 2, 3}, []gf.Elem{1, 9, 3}, 1},
		{[]gf.Elem{1, 2, 3, 4}, []gf.Elem{1, 2}, 2},
		{[]gf.Elem{1}, []gf.Elem{2, 3, 4}, 3},
		{nil, []gf.Elem{7}, 1},
	}
	for i, c := range cases {
		if got := CountSymbolErrors(c.a, c.b); got != c.want {
			t.Errorf("case %d: CountSymbolErrors(%v, %v) = %d, want %d", i, c.a, c.b, got, c.want)
		}
	}
}
