package channel

import (
	"fmt"
	"strconv"
	"strings"
)

// Time-varying channel: the fault-injection substrate for adaptive-coding
// experiments. A schedule of Episodes drifts the operating point (Eb/N0
// for BPSK over AWGN) linearly across frames and can toggle bursty
// Gilbert-Elliott behavior per episode — the "channel conditions vary"
// scenario of the paper's Section 1.1, made reproducible.

// Episode is one segment of a TimeVarying schedule: Frames frames over
// which Eb/N0 drifts linearly from StartEbN0 to EndEbN0 (dB). With Burst
// set the flip process is a Gilbert-Elliott bursty channel with the same
// average flip probability instead of a memoryless BSC.
type Episode struct {
	Frames             int
	StartEbN0, EndEbN0 float64
	Burst              bool
}

// TimeVarying maps a frame index to channel conditions according to an
// episode schedule. Frames past the schedule's end hold the last
// episode's final operating point.
//
// Per-frame corruption is deterministic in (seed, frame index) alone:
// FrameChannel derives an independent RNG stream for every frame, so a
// concurrent pipeline corrupting frames in any worker interleaving
// produces bit-identical results. TimeVarying also implements Channel /
// Forker with an internal frame counter (one TransmitBits call = one
// frame) for sequential use; that mode, like the other channel models,
// is not goroutine-safe.
type TimeVarying struct {
	episodes []Episode
	total    uint64
	seed     int64
	frame    uint64 // Channel-interface call counter
}

// NewTimeVarying builds a time-varying channel from a non-empty episode
// schedule.
func NewTimeVarying(episodes []Episode, seed int64) (*TimeVarying, error) {
	if len(episodes) == 0 {
		return nil, fmt.Errorf("channel: empty episode schedule")
	}
	total := uint64(0)
	for i, ep := range episodes {
		if ep.Frames < 1 {
			return nil, fmt.Errorf("channel: episode %d has %d frames, want >= 1", i, ep.Frames)
		}
		total += uint64(ep.Frames)
	}
	eps := append([]Episode(nil), episodes...)
	return &TimeVarying{episodes: eps, total: total, seed: seed}, nil
}

// TotalFrames returns the number of frames the schedule spans.
func (tv *TimeVarying) TotalFrames() int { return int(tv.total) }

// Episodes returns a copy of the schedule.
func (tv *TimeVarying) Episodes() []Episode { return append([]Episode(nil), tv.episodes...) }

// EpisodeAt returns the index of the episode covering the given frame
// (the last episode for frames past the schedule's end).
func (tv *TimeVarying) EpisodeAt(frame uint64) int {
	var start uint64
	for i, ep := range tv.episodes {
		start += uint64(ep.Frames)
		if frame < start {
			return i
		}
	}
	return len(tv.episodes) - 1
}

// EbN0At returns the scheduled Eb/N0 (dB) at the given frame, linearly
// interpolated within its episode.
func (tv *TimeVarying) EbN0At(frame uint64) float64 {
	var start uint64
	for _, ep := range tv.episodes {
		if frame < start+uint64(ep.Frames) {
			if ep.Frames == 1 {
				return ep.EndEbN0
			}
			frac := float64(frame-start) / float64(ep.Frames-1)
			return ep.StartEbN0 + (ep.EndEbN0-ep.StartEbN0)*frac
		}
		start += uint64(ep.Frames)
	}
	return tv.episodes[len(tv.episodes)-1].EndEbN0
}

// PAt returns the scheduled raw bit-flip probability at the given frame.
func (tv *TimeVarying) PAt(frame uint64) float64 {
	return BPSKBitErrorProb(tv.EbN0At(frame))
}

// FrameChannel returns the channel instance corrupting the given frame:
// the scheduled operating point with an RNG stream derived from (seed,
// frame) alone. Calling it twice with the same frame yields channels
// producing identical corruption.
func (tv *TimeVarying) FrameChannel(frame uint64) Channel {
	p := tv.PAt(frame)
	seed := int64(mix64(uint64(tv.seed), frame))
	if tv.episodes[tv.EpisodeAt(frame)].Burst {
		if ge, err := NewBurstAvg(p, seed); err == nil {
			return ge
		}
	}
	if p > 0.5 {
		p = 0.5
	}
	bsc, _ := NewBSC(p, seed)
	return bsc
}

// TransmitBits implements Channel: each call corrupts one frame and
// advances the internal frame counter.
func (tv *TimeVarying) TransmitBits(bits []byte) []byte {
	ch := tv.FrameChannel(tv.frame)
	tv.frame++
	return ch.TransmitBits(bits)
}

// Fork implements Forker: same schedule, reset frame counter, new seed.
func (tv *TimeVarying) Fork(seed int64) Channel {
	return &TimeVarying{episodes: tv.episodes, total: tv.total, seed: seed}
}

// Description implements Channel.
func (tv *TimeVarying) Description() string {
	var b strings.Builder
	b.WriteString("TimeVarying(")
	for i, ep := range tv.episodes {
		if i > 0 {
			b.WriteString(", ")
		}
		if ep.StartEbN0 == ep.EndEbN0 {
			fmt.Fprintf(&b, "%d@%.3gdB", ep.Frames, ep.StartEbN0)
		} else {
			fmt.Fprintf(&b, "%d@%.3g>%.3gdB", ep.Frames, ep.StartEbN0, ep.EndEbN0)
		}
		if ep.Burst {
			b.WriteString("+burst")
		}
	}
	b.WriteString(")")
	return b.String()
}

// NewBurstAvg builds a Gilbert-Elliott channel with average flip
// probability p: rare transitions into a bad state 50x noisier than the
// good one (mean sojourn 5 bits bad, ~1% of the time bad) — the bursty
// counterpart of a BSC(p) used by gfpipe's -channel burst and by
// TimeVarying burst episodes.
func NewBurstAvg(p float64, seed int64) (*GilbertElliott, error) {
	// Solve 0.99*pg + 0.01*pb = p with pb = 50*pg.
	pBad := 50 * p / (0.99 + 50*0.01)
	if pBad > 0.5 {
		pBad = 0.5
	}
	return NewGilbertElliott(0.002, 0.2, pBad/50, pBad, seed)
}

// mix64 is a splitmix64-style finalizer mixing a base seed with a frame
// index into an independent per-frame seed.
func mix64(a, b uint64) uint64 {
	x := a ^ (b+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// ParseSchedule parses a compact schedule string into episodes. The
// format is a comma-separated list of
//
//	FRAMES:EBN0[>EBN0END][:burst]
//
// e.g. "500:7,1000:7>4:burst,500:4>7" — 500 frames at 7dB, then 1000
// frames drifting 7dB down to 4dB with bursty errors, then 500 frames
// recovering to 7dB. '>' (not '-') separates the drift endpoints so
// negative Eb/N0 values stay unambiguous.
func ParseSchedule(s string) ([]Episode, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("channel: empty schedule")
	}
	var eps []Episode
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("channel: episode %q, want FRAMES:EBN0[>END][:burst]", part)
		}
		frames, err := strconv.Atoi(fields[0])
		if err != nil || frames < 1 {
			return nil, fmt.Errorf("channel: episode %q: bad frame count %q", part, fields[0])
		}
		ep := Episode{Frames: frames}
		drift := strings.SplitN(fields[1], ">", 2)
		if ep.StartEbN0, err = strconv.ParseFloat(drift[0], 64); err != nil {
			return nil, fmt.Errorf("channel: episode %q: bad Eb/N0 %q", part, drift[0])
		}
		ep.EndEbN0 = ep.StartEbN0
		if len(drift) == 2 {
			if ep.EndEbN0, err = strconv.ParseFloat(drift[1], 64); err != nil {
				return nil, fmt.Errorf("channel: episode %q: bad Eb/N0 %q", part, drift[1])
			}
		}
		if len(fields) == 3 {
			if fields[2] != "burst" {
				return nil, fmt.Errorf("channel: episode %q: unknown modifier %q", part, fields[2])
			}
			ep.Burst = true
		}
		eps = append(eps, ep)
	}
	return eps, nil
}
