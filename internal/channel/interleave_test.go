package channel

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bch"
	"repro/internal/gf"
)

func TestInterleaverRoundTrip(t *testing.T) {
	il, err := NewInterleaver(4, 31)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	blk := make([]byte, il.Size())
	rng.Read(blk)
	inter, err := il.Interleave(blk)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(inter, blk) {
		t.Fatal("interleaving is identity")
	}
	back, err := il.Deinterleave(inter)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, blk) {
		t.Fatal("round trip failed")
	}
}

func TestInterleaverValidation(t *testing.T) {
	if _, err := NewInterleaver(0, 5); err == nil {
		t.Error("0 rows accepted")
	}
	il, _ := NewInterleaver(2, 3)
	if _, err := il.Interleave(make([]byte, 5)); err == nil {
		t.Error("wrong block size accepted")
	}
	if _, err := il.Deinterleave(make([]byte, 7)); err == nil {
		t.Error("wrong block size accepted")
	}
}

func TestInterleaverSpreadsBursts(t *testing.T) {
	// A burst of length `rows` must land one error in each row.
	rows, cols := 4, 8
	il, _ := NewInterleaver(rows, cols)
	blk := make([]byte, il.Size())
	inter, _ := il.Interleave(blk)
	// Corrupt a burst in the *interleaved* stream.
	start := 9
	for i := 0; i < rows; i++ {
		inter[start+i] ^= 1
	}
	back, _ := il.Deinterleave(inter)
	perRow := make([]int, rows)
	for i, b := range back {
		if b != 0 {
			perRow[i/cols]++
		}
	}
	for r, n := range perRow {
		if n != 1 {
			t.Fatalf("row %d got %d errors, want exactly 1 (%v)", r, n, perRow)
		}
	}
}

func TestInterleavedBCHSurvivesBursts(t *testing.T) {
	// End-to-end: 4 interleaved BCH(31,11,5) codewords survive a 20-bit
	// channel burst that would destroy any single codeword.
	code := bch.Must(gf.MustDefault(5), 5)
	rows := 4
	il, _ := NewInterleaver(rows, code.N)
	rng := rand.New(rand.NewSource(2))

	msgs := make([][]byte, rows)
	stream := make([]byte, 0, rows*code.N)
	for r := 0; r < rows; r++ {
		msgs[r] = make([]byte, code.K)
		for i := range msgs[r] {
			msgs[r][i] = byte(rng.Intn(2))
		}
		cw, err := code.Encode(msgs[r])
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, cw...)
	}
	inter, _ := il.Interleave(stream)
	// A 20-bit burst: 5 consecutive complete 4-bit groups -> 5 errors per
	// codeword, exactly t.
	start := 16
	for i := 0; i < 20; i++ {
		inter[start+i] ^= 1
	}
	back, _ := il.Deinterleave(inter)
	for r := 0; r < rows; r++ {
		res, err := code.Decode(back[r*code.N : (r+1)*code.N])
		if err != nil {
			t.Fatalf("codeword %d uncorrectable: %v", r, err)
		}
		for i := range msgs[r] {
			if res.Message[i] != msgs[r][i] {
				t.Fatalf("codeword %d corrupted", r)
			}
		}
	}
	// Control: without interleaving the same burst kills one codeword.
	direct := append([]byte(nil), stream...)
	for i := 0; i < 20; i++ {
		direct[start+i] ^= 1
	}
	if _, err := code.Decode(direct[0:code.N]); err == nil {
		t.Log("note: un-interleaved burst happened to be correctable (burst at codeword boundary)")
	}
}
