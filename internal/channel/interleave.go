package channel

import "fmt"

// Block interleaver: the classic companion to block codes on bursty
// channels. Bits are written into a rows x cols matrix row-major and
// read out column-major, so a burst of up to `rows` consecutive channel
// errors lands in distinct codewords (or distinct symbols), converting
// burst errors into the near-uniform errors BCH handles best — the
// paper's Section 1.1 "different error patterns" flexibility knob.
type Interleaver struct {
	rows, cols int
}

// NewInterleaver creates a rows x cols block interleaver.
func NewInterleaver(rows, cols int) (*Interleaver, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("channel: interleaver dimensions %dx%d invalid", rows, cols)
	}
	return &Interleaver{rows: rows, cols: cols}, nil
}

// Size returns the block size rows*cols the interleaver operates on.
func (il *Interleaver) Size() int { return il.rows * il.cols }

// Interleave permutes one block (len must equal Size).
func (il *Interleaver) Interleave(in []byte) ([]byte, error) {
	if len(in) != il.Size() {
		return nil, fmt.Errorf("channel: interleave block length %d, want %d", len(in), il.Size())
	}
	out := make([]byte, len(in))
	k := 0
	for c := 0; c < il.cols; c++ {
		for r := 0; r < il.rows; r++ {
			out[k] = in[r*il.cols+c]
			k++
		}
	}
	return out, nil
}

// Deinterleave inverts Interleave.
func (il *Interleaver) Deinterleave(in []byte) ([]byte, error) {
	if len(in) != il.Size() {
		return nil, fmt.Errorf("channel: deinterleave block length %d, want %d", len(in), il.Size())
	}
	out := make([]byte, len(in))
	k := 0
	for c := 0; c < il.cols; c++ {
		for r := 0; r < il.rows; r++ {
			out[r*il.cols+c] = in[k]
			k++
		}
	}
	return out, nil
}

// MaxSpreadBurst returns the longest channel burst (consecutive errors)
// guaranteed to hit each row at most once: the number of rows.
func (il *Interleaver) MaxSpreadBurst() int { return il.rows }
