package hwmodel

import (
	"math"
	"testing"
)

func TestTable2ReproducesPaperPolynomials(t *testing.T) {
	// m = 8: systolic AND/XOR = 128 each; total 16.5*64 - 80 = 976;
	// compact AND = 120, XOR = 105, total 6.5*64 - 62 = 354.
	s := SystolicMultiplier(8)
	if s.AND != 128 || s.XOR != 128 {
		t.Errorf("systolic AND/XOR = %d/%d", s.AND, s.XOR)
	}
	if s.Total != 976 {
		t.Errorf("systolic total = %v, want 976", s.Total)
	}
	if s.FF != 56+28+56 {
		t.Errorf("systolic FF = %d", s.FF)
	}
	c := CompactMultiplier(8)
	if c.AND != 120 || c.XOR != 105 || c.FF != 0 {
		t.Errorf("compact = %+v", c)
	}
	if c.Total != 354 {
		t.Errorf("compact total = %v, want 354", c.Total)
	}
	if c.ConfigFF != 56 {
		t.Errorf("compact config FF = %d, want 56", c.ConfigFF)
	}
	// The headline claim: this work's multiplier is ~2.75x smaller.
	for m := 5; m <= 8; m++ {
		if CompactMultiplier(m).Total >= SystolicMultiplier(m).Total {
			t.Errorf("m=%d: compact not smaller", m)
		}
	}
}

func TestTable4ReproducesPaperPolynomials(t *testing.T) {
	s := SystolicEuclidInverse(8)
	if s.XOR != 8*51 || s.AND != 8*55 || s.MUX != 8*53 || s.FF != 8*52 {
		t.Errorf("systolic euclid = %+v", s)
	}
	if s.Total != 57*64 {
		t.Errorf("systolic total = %v", s.Total)
	}
	i := ITAInverse(8)
	if i.AND != 15*64-88 || i.XOR != 15*64-104+4 {
		t.Errorf("ITA = %+v", i)
	}
	if i.Total != 48.75*64 {
		t.Errorf("ITA total = %v", i.Total)
	}
	if i.Total >= s.Total {
		t.Error("ITA not smaller than systolic Euclid")
	}
}

func TestTable10Consistency(t *testing.T) {
	b := Table10()
	sum := b.MultArrayAreaUm2 + b.SquareArrayAreaUm2 + b.ControlAreaUm2
	if math.Abs(sum-b.TotalAreaUm2) > 0.01 {
		t.Errorf("breakdown sums to %v, total %v", sum, b.TotalAreaUm2)
	}
	if math.Abs(b.MultArrayAreaUm2-3193.44) > 0.1 {
		t.Errorf("mult array = %v", b.MultArrayAreaUm2)
	}
	if math.Abs(b.SquareArrayAreaUm2-1777.44) > 0.1 {
		t.Errorf("square array = %v", b.SquareArrayAreaUm2)
	}
	if b.CritPathNs != 2.91 {
		t.Errorf("crit path = %v", b.CritPathNs)
	}
	// 300 MHz max clock implies crit path < 3.34 ns.
	if b.CritPathNs > 1000.0/MaxClockMHz {
		t.Error("critical path inconsistent with max clock")
	}
}

func TestTable11Consistency(t *testing.T) {
	p := Table11()
	if p.ShellGates+p.GFGates != p.TotalGates {
		t.Errorf("gates: %d + %d != %d", p.ShellGates, p.GFGates, p.TotalGates)
	}
	if math.Abs(p.ShellArea+p.GFArea-p.TotalArea) > 1 {
		t.Errorf("area: %v + %v != %v", p.ShellArea, p.GFArea, p.TotalArea)
	}
	if math.Abs(p.ShellPower+p.GFPower-p.TotalPower) > 1 {
		t.Errorf("power: %v + %v != %v", p.ShellPower, p.GFPower, p.TotalPower)
	}
	// 0.0103 mm^2 claim.
	if mm2 := p.TotalArea / 1e6; mm2 < 0.010 || mm2 > 0.0104 {
		t.Errorf("total area = %v mm^2", mm2)
	}
}

func TestTable12Claims(t *testing.T) {
	c := Table12()
	if !c.GFUnitSmaller {
		t.Error("GF unit should be smaller than Intel enc+dec")
	}
	// "With 63.5% additional area in total".
	if math.Abs(c.ExtraAreaFrac-0.635) > 0.01 {
		t.Errorf("extra area = %.3f, want ~0.635", c.ExtraAreaFrac)
	}
}

func TestTable13Energy(t *testing.T) {
	// The paper's 12.2 Mbps at 100 MHz implies ~1049 cycles per block;
	// feeding that back must reproduce ~35.3 pJ/b.
	rows := Table13(1049)
	measured := rows[1]
	if math.Abs(measured.ThroughputMbps-12.2) > 0.1 {
		t.Errorf("throughput = %v, want ~12.2", measured.ThroughputMbps)
	}
	if math.Abs(measured.EnergyPJPerBit-35.3) > 0.5 {
		t.Errorf("energy = %v, want ~35.3", measured.EnergyPJPerBit)
	}
	// The ASIC stays ~6x more efficient (the flexibility price).
	ratio := measured.EnergyPJPerBit / rows[0].EnergyPJPerBit
	if ratio < 4 || ratio > 8 {
		t.Errorf("ASIC efficiency ratio = %.1f, want ~6", ratio)
	}
}

func TestVoltageScaling(t *testing.T) {
	v := VoltageScaled()
	if v.TotalPower != 231 || v.GFPower != 75 {
		t.Errorf("scaled powers: %+v", v)
	}
	// 1.86x energy gain claim: energy ratio at same frequency = power ratio.
	gain := TotalPowerUW / v.TotalPower
	if math.Abs(gain-VScaleEnergyGain) > 0.01 {
		t.Errorf("energy gain = %.2f, want %.2f", gain, VScaleEnergyGain)
	}
}

func TestGFUnitPowerModel(t *testing.T) {
	full := GFUnitPowerModel(1)
	idle := GFUnitPowerModel(0)
	if full != GFUnitPowerUW {
		t.Errorf("full-activity power = %v", full)
	}
	// Idle power reflects the 77% data-gating saving.
	if math.Abs(idle-GFUnitPowerUW*0.23) > 0.01 {
		t.Errorf("idle power = %v", idle)
	}
	if GFUnitPowerModel(-1) != idle || GFUnitPowerModel(2) != full {
		t.Error("clamping broken")
	}
	if GFUnitPowerModel(0.5) <= idle || GFUnitPowerModel(0.5) >= full {
		t.Error("not monotone")
	}
}

func TestMappingOverheadClaim(t *testing.T) {
	// The chosen mapping approach (8%) must undercut the alternative
	// (+26%) — the Section 2.4.1 design decision.
	if MappingOverheadFrac >= AltMatrixOverheadFrac {
		t.Error("mapping overhead not smaller than alternative")
	}
}

func TestEnergyPerBit(t *testing.T) {
	if EnergyPerBit(431, 12.2) < 35 || EnergyPerBit(431, 12.2) > 36 {
		t.Errorf("energy/bit = %v", EnergyPerBit(431, 12.2))
	}
}

func TestStringers(t *testing.T) {
	if SystolicMultiplier(8).String() == "" || ITAInverse(8).String() == "" {
		t.Error("empty stringer")
	}
}
