package hwmodel

import (
	"math"
	"testing"
)

func TestEstimateFullActivity(t *testing.T) {
	// 100% GF activity draws the full Table 11 budget.
	e := Estimate(1000, 1000, 0)
	if math.Abs(e.AvgPowerUW-TotalPowerUW) > 0.01 {
		t.Errorf("full-activity power = %v, want %v", e.AvgPowerUW, TotalPowerUW)
	}
	if math.Abs(e.TimeUs-10) > 1e-9 { // 1000 cycles @ 100 MHz = 10 us
		t.Errorf("time = %v us", e.TimeUs)
	}
	if math.Abs(e.EnergyNJ-431*10/1e3) > 1e-6 {
		t.Errorf("energy = %v nJ", e.EnergyNJ)
	}
}

func TestEstimateIdleGFUnit(t *testing.T) {
	// A pure scalar program keeps only the gated GF-unit residue.
	e := Estimate(1000, 0, 0)
	want := ShellPowerUW + GFUnitPowerUW*(1-IdleGatingSavingFrac)
	if math.Abs(e.AvgPowerUW-want) > 0.01 {
		t.Errorf("idle power = %v, want %v", e.AvgPowerUW, want)
	}
	if e.AvgPowerUW >= TotalPowerUW {
		t.Error("idle power not below full budget")
	}
}

func TestEstimateEnergyPerBit(t *testing.T) {
	// The paper's AES point: 1049 cycles per 128-bit block at full-ish
	// activity gives ~35 pJ/b.
	e := Estimate(1049, 1049, 128)
	if e.EnergyPerBit < 33 || e.EnergyPerBit > 37 {
		t.Errorf("energy/bit = %v pJ, want ~35", e.EnergyPerBit)
	}
	// Zero payload leaves the field at 0.
	if Estimate(100, 50, 0).EnergyPerBit != 0 {
		t.Error("energy/bit without payload not zero")
	}
	// Zero cycles does not divide by zero.
	if Estimate(0, 0, 0).AvgPowerUW <= 0 {
		t.Error("zero-cycle estimate broken")
	}
}
