package hwmodel

// Technology-node scaling, the convention behind the paper's "scaled to
// 28 nm" comparison rows (Intel NanoAES from 22 nm, Mathew's 64-bit GF
// multiplier from 45 nm, Zhang's AES from 40 nm): area scales with the
// square of the feature size, switching power approximately linearly
// with it at fixed voltage and frequency (C ~ node).

// ScaleArea converts an area between process nodes (nm).
func ScaleArea(area, fromNm, toNm float64) float64 {
	r := toNm / fromNm
	return area * r * r
}

// ScalePower converts dynamic power between nodes at fixed V and f.
func ScalePower(power, fromNm, toNm float64) float64 {
	return power * toNm / fromNm
}

// Reference designs at their native nodes, for the scaling cross-checks.
const (
	IntelAESNodeNm  = 22.0
	ZhangAESNodeNm  = 40.0
	MathewMulNodeNm = 45.0
	PaperNodeNm     = 28.0
)

// Mathew64bScaled returns the 28 nm-equivalent power (mW) of the 45 nm
// 64-bit GF multiplier accelerator [40], matching the paper's 1.25 mW
// comparison point (Section 3.5) when scaled at fixed 0.9 V / 100 MHz.
func Mathew64bScaled() float64 {
	// The paper reports the already-scaled figure; expose the native
	// number implied by the linear power rule for the cross-check.
	return Mathew64bPowerMW
}

// Mathew64bNativePowerMW back-derives the native 45 nm power implied by
// the scaled figure.
func Mathew64bNativePowerMW() float64 {
	return ScalePower(Mathew64bPowerMW, PaperNodeNm, MathewMulNodeNm)
}
