package hwmodel

import (
	"math"
	"testing"
)

func TestScaleAreaQuadratic(t *testing.T) {
	// Halving the node quarters the area.
	if got := ScaleArea(100, 28, 14); math.Abs(got-25) > 1e-9 {
		t.Errorf("ScaleArea = %v, want 25", got)
	}
	// Round trip is identity.
	if got := ScaleArea(ScaleArea(123, 22, 28), 28, 22); math.Abs(got-123) > 1e-9 {
		t.Errorf("round trip = %v", got)
	}
}

func TestScalePowerLinear(t *testing.T) {
	if got := ScalePower(100, 28, 14); math.Abs(got-50) > 1e-9 {
		t.Errorf("ScalePower = %v, want 50", got)
	}
}

func TestIntelScalingPlausibility(t *testing.T) {
	// The paper's 28 nm Intel figures imply native 22 nm areas of
	// enc ~1729, dec ~2150 um^2 — same order as the published NanoAES
	// (2090 gates, ~O(1500-2500) um^2 at 22 nm). Sanity band check only.
	encNative := ScaleArea(IntelAESEncAreaUm2, PaperNodeNm, IntelAESNodeNm)
	if encNative < 1000 || encNative > 2500 {
		t.Errorf("implied native Intel enc area %v um^2 implausible", encNative)
	}
}

func TestMathewBackDerivation(t *testing.T) {
	native := Mathew64bNativePowerMW()
	if native <= Mathew64bPowerMW {
		t.Error("native 45 nm power should exceed the 28 nm-scaled figure")
	}
	if math.Abs(ScalePower(native, MathewMulNodeNm, PaperNodeNm)-Mathew64bScaled()) > 1e-9 {
		t.Error("scaling round trip broken")
	}
	// The paper's headline: our whole processor (0.431 mW) draws about a
	// third of the scaled 64-bit multiplier accelerator (1.25 mW).
	if ratio := Mathew64bPowerMW * 1000 / TotalPowerUW; ratio < 2.5 || ratio > 3.5 {
		t.Errorf("power ratio vs Mathew = %.2f, want ~2.9", ratio)
	}
}
