// Package hwmodel implements the closed-form hardware resource, area and
// power models of the paper's Tables 2, 3, 4, 10, 11, 12 and 13. The
// paper's resource-comparison tables are themselves analytic gate-count
// polynomials in the field degree m; this package evaluates the same
// polynomials, together with the 28 nm calibration constants the paper
// publishes (per-primitive cell area, shell power, ASIC reference
// points), so the tables can be regenerated and the design space swept.
package hwmodel

import "fmt"

// Normalized gate-area weights in the paper's 28 nm library:
// AND : MUX : XOR : FF = 1 : 2.25 : 2.25 : 4 (footnote of Tables 2 and 4).
const (
	WeightAND = 1.0
	WeightMUX = 2.25
	WeightXOR = 2.25
	WeightFF  = 4.0
)

// MultResources is one column of Table 2 (multiplication method
// comparison). Counts are gate counts; TotalArea is in normalized gate
// units; ConfigFF is the configuration-register storage shared across
// ALUs.
type MultResources struct {
	Method   string
	AND      int
	XOR      int
	FF       int // pipeline/intermediate flip-flops (0 for pure combinational)
	Total    float64
	ConfigFF int
}

// SystolicMultiplier returns the bit-pipelined systolic LSB multiplier
// resources for degree m (Table 2, left column): AND 2m^2, XOR 2m^2,
// FF (m-1)m + (m-1)m/2 + (m-1)m, total 16.5m^2 - 10m.
func SystolicMultiplier(m int) MultResources {
	ff := (m-1)*m + (m-1)*m/2 + (m-1)*m
	return MultResources{
		Method:   "Systolic (bit-pipelined)",
		AND:      2 * m * m,
		XOR:      2 * m * m,
		FF:       ff,
		Total:    16.5*float64(m*m) - 10*float64(m),
		ConfigFF: m,
	}
}

// CompactMultiplier returns this work's single-step linear-transform
// multiplier resources (Table 2, right column): AND 2m^2 - m,
// XOR 2m^2 - 3m + 1, pure combinational, total 6.5m^2 - 7.75m.
// The configuration datapath stores the m(m-1) reduction-matrix bits,
// amortized across all ALUs through the centralized register.
func CompactMultiplier(m int) MultResources {
	return MultResources{
		Method:   "This work (single-step linear transform)",
		AND:      2*m*m - m,
		XOR:      2*m*m - 3*m + 1,
		FF:       0,
		Total:    6.5*float64(m*m) - 7.75*float64(m),
		ConfigFF: m * (m - 1),
	}
}

// InvResources is one column of Table 4 (multiplicative inverse
// comparison).
type InvResources struct {
	Method string
	AND    int
	XOR    int
	MUX    int
	FF     int
	Total  float64 // normalized gate units, m^2 term only (paper's note)
}

// SystolicEuclidInverse returns the pipelined systolic extended-Euclid
// divider resources (Table 4, left column): XOR m(6m+3), AND m(6m+7),
// MUX m(6m+5), FF m(6m+4), total 57m^2.
func SystolicEuclidInverse(m int) InvResources {
	return InvResources{
		Method: "Systolic Euclidean (pipelined)",
		XOR:    m * (6*m + 3),
		AND:    m * (6*m + 7),
		MUX:    m * (6*m + 5),
		FF:     m * (6*m + 4),
		Total:  57 * float64(m*m),
	}
}

// ITAInverse returns this work's Itoh-Tsujii inverse resources (Table 4,
// right column): AND 15m^2 - 11m, XOR 15m^2 - 13m + 4, no flip-flops,
// total 48.75m^2 (m^2 terms only, which overestimates this work).
func ITAInverse(m int) InvResources {
	return InvResources{
		Method: "This work (ITA)",
		AND:    15*m*m - 11*m,
		XOR:    15*m*m - 13*m + 4,
		Total:  48.75 * float64(m*m),
	}
}

// 28 nm physical calibration constants (Tables 3, 10 and 11).
const (
	MultUnitCells      = 263
	MultUnitAreaUm2    = 199.59
	MultUnitCritNs     = 0.4
	SquareUnitCells    = 73
	SquareUnitAreaUm2  = 63.48
	SquareUnitCritNs   = 0.2
	NumMultUnits       = 16
	NumSquareUnits     = 28
	GFUnitTotalAreaUm2 = 5760.0 // Table 10 bottom line ("less than 6000 um^2")
	GFUnitCritPathNs   = 2.91   // at the GF multiplicative-inverse instruction

	// Small-bit-width support overhead: the product-mapping circuit costs
	// 8% of the arithmetic units (Section 2.4.1); the rejected
	// alternatives cost >= 26% (added 5-by-3 matrix) or extra triangular-
	// matrix control.
	MappingOverheadFrac   = 0.08
	AltMatrixOverheadFrac = 0.26

	// Table 11: processor characteristics at 0.9 V, 100 MHz.
	ShellCombGates  = 3482
	ShellRFGates    = 694
	ShellGates      = 4176
	ShellAreaUm2    = 4512.0
	ShellPowerUW    = 279.0
	GFUnitGates     = 7494
	GFUnitPowerUW   = 152.0
	TotalGates      = 11670
	TotalAreaUm2    = 10272.0
	TotalPowerUW    = 431.0
	NominalVoltage  = 0.9
	NominalClockMHz = 100.0
	MaxClockMHz     = 300.0

	// Voltage scaling point (Section 3.4.2).
	ScaledVoltage      = 0.7
	ScaledGFPowerUW    = 75.0
	ScaledTotalPowerUW = 231.0
	VScaleEnergyGain   = 1.86

	// Data gating (Section 2.4.3): idle-unit dynamic power saving and the
	// reduction-datapath gating during 32-bit partial products.
	IdleGatingSavingFrac  = 0.77
	Config32bGatingSaving = 0.33

	// Table 12: smallest AES ASIC (Intel NanoAES [41]) scaled to 28 nm.
	IntelAESEncAreaUm2 = 2800.0
	IntelAESDecAreaUm2 = 3482.0

	// Table 13: most energy-efficient compact AES ASIC (Zhang [59])
	// scaled to 28 nm at 0.9 V, 100 MHz.
	ZhangPowerUW        = 236.0
	ZhangThroughputMbps = 38.0
	ZhangEnergyPJPerBit = 6.21
	PaperThroughputMbps = 12.2
	PaperEnergyPJPerBit = 35.5

	// 64-bit GF multiplier accelerator comparison (Mathew [40], scaled).
	Mathew64bPowerMW = 1.25
)

// GFUnitControlAreaUm2 is the instruction-control slice of the GF unit:
// the Table 10 total minus the primitive arrays. (The paper's Table 10
// prints 1005 um^2 for control but a 5760 um^2 total; the total is the
// figure used everywhere else, so we keep the total authoritative.)
const GFUnitControlAreaUm2 = GFUnitTotalAreaUm2 - NumMultUnits*MultUnitAreaUm2 - NumSquareUnits*SquareUnitAreaUm2

// GFUnitBreakdown returns Table 10's rows.
type GFUnitBreakdown struct {
	MultArrayAreaUm2   float64
	SquareArrayAreaUm2 float64
	ControlAreaUm2     float64
	TotalAreaUm2       float64
	CritPathNs         float64
}

// Table10 computes the GF arithmetic unit area breakdown.
func Table10() GFUnitBreakdown {
	return GFUnitBreakdown{
		MultArrayAreaUm2:   NumMultUnits * MultUnitAreaUm2,
		SquareArrayAreaUm2: NumSquareUnits * SquareUnitAreaUm2,
		ControlAreaUm2:     GFUnitControlAreaUm2,
		TotalAreaUm2:       GFUnitTotalAreaUm2,
		CritPathNs:         GFUnitCritPathNs,
	}
}

// Processor returns Table 11's characteristics.
type Processor struct {
	ShellGates int
	ShellArea  float64
	ShellPower float64
	GFGates    int
	GFArea     float64
	GFPower    float64
	TotalGates int
	TotalArea  float64
	TotalPower float64
	VoltageV   float64
	ClockMHz   float64
}

// Table11 returns the processor characteristics at nominal voltage.
func Table11() Processor {
	return Processor{
		ShellGates: ShellGates, ShellArea: ShellAreaUm2, ShellPower: ShellPowerUW,
		GFGates: GFUnitGates, GFArea: GFUnitTotalAreaUm2, GFPower: GFUnitPowerUW,
		TotalGates: TotalGates, TotalArea: TotalAreaUm2, TotalPower: TotalPowerUW,
		VoltageV: NominalVoltage, ClockMHz: NominalClockMHz,
	}
}

// AESAreaComparison returns Table 12: the Intel NanoAES datapaths versus
// this design.
type AESAreaComparison struct {
	IntelEnc, IntelDec, IntelTotal float64
	GFUnit, ProcessorTotal         float64
	ExtraAreaFrac                  float64 // processor total over Intel total - 1
	GFUnitSmaller                  bool    // GF unit smaller than enc+dec ASIC?
}

// Table12 computes the area comparison.
func Table12() AESAreaComparison {
	intel := IntelAESEncAreaUm2 + IntelAESDecAreaUm2
	return AESAreaComparison{
		IntelEnc: IntelAESEncAreaUm2, IntelDec: IntelAESDecAreaUm2, IntelTotal: intel,
		GFUnit: GFUnitTotalAreaUm2, ProcessorTotal: TotalAreaUm2,
		ExtraAreaFrac: TotalAreaUm2/intel - 1,
		GFUnitSmaller: GFUnitTotalAreaUm2 < intel,
	}
}

// AESEnergy holds one Table 13 row.
type AESEnergy struct {
	Design         string
	PowerUW        float64
	ThroughputMbps float64
	EnergyPJPerBit float64
}

// Table13 computes the energy-efficiency comparison. encCyclesPerBlock is
// the measured GF-processor AES-128 encryption cost (cycles per 128-bit
// block); throughput follows at the nominal 100 MHz clock.
func Table13(encCyclesPerBlock int64) []AESEnergy {
	tput := 128.0 / float64(encCyclesPerBlock) * NominalClockMHz // Mbit/s
	energy := TotalPowerUW / tput                                // uW / Mbps = pJ/bit
	return []AESEnergy{
		{Design: "Zhang [59] (ASIC)", PowerUW: ZhangPowerUW, ThroughputMbps: ZhangThroughputMbps, EnergyPJPerBit: ZhangEnergyPJPerBit},
		{Design: "This work (measured)", PowerUW: TotalPowerUW, ThroughputMbps: tput, EnergyPJPerBit: energy},
		{Design: "This work (paper)", PowerUW: TotalPowerUW, ThroughputMbps: PaperThroughputMbps, EnergyPJPerBit: PaperEnergyPJPerBit},
	}
}

// VoltageScaled returns the 0.7 V operating point (Section 3.4.2).
func VoltageScaled() Processor {
	return Processor{
		ShellPower: ScaledTotalPowerUW - ScaledGFPowerUW,
		GFPower:    ScaledGFPowerUW,
		TotalPower: ScaledTotalPowerUW,
		ShellGates: ShellGates, GFGates: GFUnitGates, TotalGates: TotalGates,
		ShellArea: ShellAreaUm2, GFArea: GFUnitTotalAreaUm2, TotalArea: TotalAreaUm2,
		VoltageV: ScaledVoltage, ClockMHz: NominalClockMHz,
	}
}

// EnergyPerBit returns pJ/bit for a power (uW) and throughput (Mbps).
func EnergyPerBit(powerUW, throughputMbps float64) float64 {
	return powerUW / throughputMbps
}

// GFUnitPowerModel estimates GF-unit dynamic power (uW) given the
// fraction of cycles a GF instruction occupies the unit. Idle cycles are
// data-gated, retaining (1 - IdleGatingSavingFrac) of the active dynamic
// power (clocking and leakage residue). At full activity the unit draws
// its Table 11 budget.
func GFUnitPowerModel(busyFrac float64) float64 {
	if busyFrac < 0 {
		busyFrac = 0
	}
	if busyFrac > 1 {
		busyFrac = 1
	}
	idle := 1 - busyFrac
	return GFUnitPowerUW * (busyFrac + idle*(1-IdleGatingSavingFrac))
}

// String renders a MultResources row.
func (r MultResources) String() string {
	return fmt.Sprintf("%-42s AND=%-5d XOR=%-5d FF=%-5d total=%8.1f configFF=%d",
		r.Method, r.AND, r.XOR, r.FF, r.Total, r.ConfigFF)
}

// String renders an InvResources row.
func (r InvResources) String() string {
	return fmt.Sprintf("%-32s AND=%-5d XOR=%-5d MUX=%-5d FF=%-5d total=%8.1f",
		r.Method, r.AND, r.XOR, r.MUX, r.FF, r.Total)
}
