package hwmodel

// Energy estimation for simulated program runs: combines the Table 11
// power budget with the data-gating model so a cycle count plus the
// GF-unit busy fraction yields average power and energy at the nominal
// operating point. This is how the paper's 35.5 pJ/b AES figure connects
// to its cycle counts.

// EnergyEstimate is the power/energy projection of one program run.
type EnergyEstimate struct {
	Cycles       int64
	GFBusyFrac   float64 // fraction of cycles a GF instruction executed
	AvgPowerUW   float64 // shell + activity-scaled GF unit
	TimeUs       float64 // at the nominal 100 MHz clock
	EnergyNJ     float64
	EnergyPerBit float64 // pJ/bit, 0 unless payloadBits > 0
}

// Estimate projects a run of `cycles` cycles with `gfBusy` GF-instruction
// cycles over `payloadBits` processed bits (0 if not applicable).
func Estimate(cycles, gfBusy int64, payloadBits int64) EnergyEstimate {
	e := EnergyEstimate{Cycles: cycles}
	if cycles > 0 {
		e.GFBusyFrac = float64(gfBusy) / float64(cycles)
	}
	e.AvgPowerUW = ShellPowerUW + GFUnitPowerModel(e.GFBusyFrac)
	e.TimeUs = float64(cycles) / NominalClockMHz
	e.EnergyNJ = e.AvgPowerUW * e.TimeUs / 1e3 // uW * us = pJ; /1e3 -> nJ
	if payloadBits > 0 {
		e.EnergyPerBit = e.AvgPowerUW * e.TimeUs / float64(payloadBits) // pJ/bit
	}
	return e
}
