package pipeline

import "sync"

// Payload buffer pool. The codec stages produce a fresh payload per frame
// (message -> codeword -> message); drawing those from a shared pool and
// recycling them once the frame is consumed makes the steady-state hot
// path allocation-free. A frame carries at most one pool-owned buffer —
// the one currently backing Frame.Data — and a stage installing a new one
// releases the previous, which it has fully consumed by then.
//
// The pool stores *pooledBuf holders rather than raw slices so Get/Put
// move only a pointer through the interface (no slice-header boxing
// allocation).
type pooledBuf struct{ data []byte }

var bufPool = sync.Pool{New: func() any { return new(pooledBuf) }}

// getBuf returns a pool buffer with data length n.
func getBuf(n int) *pooledBuf {
	pb := bufPool.Get().(*pooledBuf)
	if cap(pb.data) < n {
		pb.data = make([]byte, n)
	}
	pb.data = pb.data[:n]
	return pb
}

func putBuf(pb *pooledBuf) { bufPool.Put(pb) }

// Recycle returns the frame's pool-owned payload buffer (if any) to the
// stage buffer pool and clears Data. Call it once the payload has been
// consumed — e.g. after the sink loop of a load driver has checked the
// frame — and never touch Data afterwards. Frames without a pool-owned
// buffer (no buffer-reusing stage ran) are a no-op, so it is always safe
// to call.
func (f *Frame) Recycle() {
	if f.pooled != nil {
		putBuf(f.pooled)
		f.pooled = nil
		f.Data = nil
	}
}

// setPooled installs a pool buffer as the frame's payload, releasing the
// previously installed one.
func (f *Frame) setPooled(pb *pooledBuf) {
	if f.pooled != nil {
		putBuf(f.pooled)
	}
	f.pooled = pb
	f.Data = pb.data
}

// framePool recycles Frame headers themselves. Submit draws frames from
// it and Free returns them, closing the last per-frame allocation on the
// steady-state submit->deliver path.
var framePool = sync.Pool{New: func() any { return new(Frame) }}

// Free recycles the frame after delivery: the pool-owned payload buffer
// (as Recycle) and the Frame itself, which Submit will hand out again.
// Call it instead of Recycle in delivery sinks that keep no reference to
// the frame or its Data; unlike Recycle it must be called at most once,
// and the frame must not be touched afterwards. Frames that never came
// from Submit are safe to Free — they just seed the pool.
func (f *Frame) Free() {
	f.Recycle()
	*f = Frame{}
	framePool.Put(f)
}
