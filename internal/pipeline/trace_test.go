package pipeline

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func tracedPipeline(t testing.TB, cfg TraceConfig) (*Pipeline, *Tracer) {
	t.Helper()
	p, err := New(Config{Workers: 2, Queue: 4},
		Func{Label: "double", F: func(f *Frame) error {
			for i := range f.Data {
				f.Data[i] *= 2
			}
			return nil
		}},
		Func{Label: "sleepy", F: func(f *Frame) error {
			time.Sleep(50 * time.Microsecond)
			return nil
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return p, p.EnableTracing(cfg)
}

// TestTraceEveryFrame: with SampleEvery=1 every frame is traced, so the
// queue-wait and service histograms each hold exactly frames samples
// per stage and Dump retains the slowest.
func TestTraceEveryFrame(t *testing.T) {
	const frames = 40
	p, tr := tracedPipeline(t, TraceConfig{SampleEvery: 1, Slowest: 4})
	run := p.Start()
	payloads := make([][]byte, frames)
	for i := range payloads {
		payloads[i] = []byte{1, 2, 3}
	}
	if _, err := run.Drain(payloads); err != nil {
		t.Fatal(err)
	}
	if got := tr.Traced(); got != frames {
		t.Errorf("Traced() = %d, want %d", got, frames)
	}
	for i, name := range tr.Stages() {
		if got := tr.QueueWait(i).Count(); got != frames {
			t.Errorf("stage %s queue-wait samples = %d, want %d", name, got, frames)
		}
		if got := tr.Service(i).Count(); got != frames {
			t.Errorf("stage %s service samples = %d, want %d", name, got, frames)
		}
	}
	// The sleepy stage's sampled service time must reflect the sleep.
	if mean := tr.Service(1).Mean(); mean < 50*time.Microsecond {
		t.Errorf("sleepy stage mean service %v, want >= 50us", mean)
	}

	dump := tr.Dump()
	if len(dump) != 4 {
		t.Fatalf("Dump retained %d traces, want 4", len(dump))
	}
	for i := 1; i < len(dump); i++ {
		if dump[i].LatencyNs > dump[i-1].LatencyNs {
			t.Errorf("Dump not sorted slowest-first at %d", i)
		}
	}
	ft := dump[0]
	if len(ft.Spans) != 2 || ft.Spans[0].Stage != "double" || ft.Spans[1].Stage != "sleepy" {
		t.Fatalf("trace spans malformed: %+v", ft.Spans)
	}
	for _, sp := range ft.Spans {
		if sp.EnqNs == 0 || sp.StartNs == 0 || sp.FinNs == 0 {
			t.Errorf("stage %s has unstamped event: %+v", sp.Stage, sp)
		}
		if sp.StartNs < sp.EnqNs || sp.FinNs < sp.StartNs {
			t.Errorf("stage %s events out of order: %+v", sp.Stage, sp)
		}
		if sp.QueueWaitNs != sp.StartNs-sp.EnqNs || sp.ServiceNs != sp.FinNs-sp.StartNs {
			t.Errorf("stage %s derived intervals wrong: %+v", sp.Stage, sp)
		}
	}
	if ft.LatencyNs < int64(50*time.Microsecond) {
		t.Errorf("slowest latency %dns below the sleepy stage's floor", ft.LatencyNs)
	}
}

// TestTraceSampling: SampleEvery=4 traces one quarter of the frames.
func TestTraceSampling(t *testing.T) {
	const frames = 100
	p, tr := tracedPipeline(t, TraceConfig{SampleEvery: 4})
	run := p.Start()
	payloads := make([][]byte, frames)
	for i := range payloads {
		payloads[i] = []byte{1}
	}
	if _, err := run.Drain(payloads); err != nil {
		t.Fatal(err)
	}
	if got := tr.Traced(); got != frames/4 {
		t.Errorf("Traced() = %d, want %d", got, frames/4)
	}
	if got := tr.SampleEvery(); got != 4 {
		t.Errorf("SampleEvery() = %d, want 4", got)
	}
}

// TestTraceConfigDefaults pins the zero-value defaults.
func TestTraceConfigDefaults(t *testing.T) {
	p, tr := tracedPipeline(t, TraceConfig{})
	if got := tr.SampleEvery(); got != 64 {
		t.Errorf("default SampleEvery = %d, want 64", got)
	}
	if tr.cap != 16 {
		t.Errorf("default Slowest = %d, want 16", tr.cap)
	}
	if p.Tracer() != tr {
		t.Error("Pipeline.Tracer() must return the enabled tracer")
	}
}

// TestTraceUnsampledZeroAlloc is the acceptance criterion: the sampling
// decision on the untraced path allocates nothing.
func TestTraceUnsampledZeroAlloc(t *testing.T) {
	_, tr := tracedPipeline(t, TraceConfig{SampleEvery: 1 << 30})
	if raceEnabled {
		t.Skip("alloc counting is unreliable under -race")
	}
	if avg := testing.AllocsPerRun(1000, func() {
		if ft := tr.sample(); ft != nil {
			t.Fatal("unexpected sample")
		}
	}); avg != 0 {
		t.Fatalf("unsampled path allocates %.2f per frame, want 0", avg)
	}
}

// TestPipelineRegisterMetrics wires a traced pipeline into a registry
// and checks the instrument families and read-through values.
func TestPipelineRegisterMetrics(t *testing.T) {
	const frames = 20
	p, _ := tracedPipeline(t, TraceConfig{SampleEvery: 1})
	reg := obs.NewRegistry()
	p.RegisterMetrics(reg)
	RegisterGFKernelMetrics(reg)

	run := p.Start()
	payloads := make([][]byte, frames)
	for i := range payloads {
		payloads[i] = []byte{9, 9}
	}
	if _, err := run.Drain(payloads); err != nil {
		t.Fatal(err)
	}

	if v, ok := reg.Value("gfp_pipeline_stage_frames_total", obs.L("stage", "double")); !ok || v != frames {
		t.Errorf("stage frames metric = %g,%v, want %d", v, ok, frames)
	}
	if v, ok := reg.Value("gfp_pipeline_stage_bytes_in_total", obs.L("stage", "sleepy")); !ok || v != frames*2 {
		t.Errorf("bytes_in metric = %g,%v, want %d", v, ok, frames*2)
	}
	if s, ok := reg.HistValue("gfp_pipeline_stage_queue_wait_seconds", obs.L("stage", "double")); !ok || s.Count != frames {
		t.Errorf("queue-wait hist = %+v,%v, want count %d", s, ok, frames)
	}
	if s, ok := reg.HistValue("gfp_pipeline_latency_seconds"); !ok || s.Count != frames {
		t.Errorf("total latency hist count = %d,%v, want %d", s.Count, ok, frames)
	}
	if v, ok := reg.Value("gfp_pipeline_traced_frames_total"); !ok || v != frames {
		t.Errorf("traced frames metric = %g,%v, want %d", v, ok, frames)
	}
	if _, ok := reg.Value("gfp_gf_kernel_calls_total", obs.L("tier", "table")); !ok {
		t.Error("kernel tier metric missing")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`gfp_pipeline_stage_frames_total{stage="double"}`,
		`gfp_model_ops_total{class="gf_op",stage="double"}`,
		`gfp_model_cycles_total{machine="gfproc",stage="sleepy"}`,
		`gfp_pipeline_stage_service_seconds_bucket{stage="sleepy",le=`,
		`gfp_gf_kernel_calls_total{tier="scalar"}`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestRegisterMetricsDuplicateStageNames: two stages with the same name
// must not collide in the registry.
func TestRegisterMetricsDuplicateStageNames(t *testing.T) {
	nop := func(f *Frame) error { return nil }
	p := Must(Config{Workers: 1}, Func{Label: "nop", F: nop}, Func{Label: "nop", F: nop})
	reg := obs.NewRegistry()
	p.RegisterMetrics(reg) // must not panic
	if _, ok := reg.Value("gfp_pipeline_stage_frames_total", obs.L("stage", "nop")); !ok {
		t.Error("first nop stage missing")
	}
	if _, ok := reg.Value("gfp_pipeline_stage_frames_total", obs.L("stage", "nop#1")); !ok {
		t.Error("second nop stage not disambiguated")
	}
}

// TestRunClosed pins the Closed() accessor.
func TestRunClosed(t *testing.T) {
	p := Must(Config{Workers: 1}, Func{Label: "nop", F: func(f *Frame) error { return nil }})
	run := p.Start()
	if run.Closed() {
		t.Error("fresh run reports closed")
	}
	run.Close()
	if !run.Closed() {
		t.Error("closed run reports open")
	}
	run.Wait()
}

// BenchmarkTracedPipeline drives the full pipeline with tracing enabled
// at the default sampling rate; allocs/op shows the tracing overhead on
// the submit path (sampled frames amortized).
func BenchmarkTracedPipeline(b *testing.B) {
	p, _ := tracedPipeline(b, TraceConfig{SampleEvery: 64})
	run := p.Start()
	payload := []byte{1, 2, 3, 4}
	b.ReportAllocs()
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		for range run.Out() {
		}
		close(done)
	}()
	for i := 0; i < b.N; i++ {
		run.Submit(payload)
	}
	run.Close()
	<-done
}
