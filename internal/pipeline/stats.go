package pipeline

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/perf"
)

// Hist is the shared lock-free power-of-two latency histogram, defined
// in package perf so that servers and load drivers report latency in the
// same buckets as pipeline stages. The alias keeps the historical
// pipeline.Hist name working.
type Hist = perf.Hist

// StageStats aggregates what one stage did across all of its workers.
// All counters are updated atomically by the stage's worker goroutines;
// reading them while the pipeline runs yields a consistent-enough live
// snapshot, and an exact one once Run.Wait has returned.
type StageStats struct {
	Name string

	Frames    atomic.Int64 // frames processed (excluding skipped error frames)
	Codewords atomic.Int64 // codewords processed (>= Frames when frames are batched)
	Errors    atomic.Int64 // frames this stage failed
	BytesIn   atomic.Int64 // payload bytes entering the stage
	BytesOut  atomic.Int64 // payload bytes leaving the stage
	Corrected atomic.Int64 // symbol/bit errors corrected (decode stages)

	Latency Hist // wall-clock Process latency per frame

	// counts accumulates perf.Counts cycle accounting reported by metered
	// stages (each field atomically).
	counts countsAccum
}

// countsAccum is perf.Counts with every field updated atomically.
type countsAccum struct {
	ld, st, alu, mul, br, brnt, gfop, gf32 atomic.Int64
}

func (a *countsAccum) add(c perf.Counts) {
	a.ld.Add(c.LD)
	a.st.Add(c.ST)
	a.alu.Add(c.ALU)
	a.mul.Add(c.Mul)
	a.br.Add(c.Branch)
	a.brnt.Add(c.BranchNT)
	a.gfop.Add(c.GFOp)
	a.gf32.Add(c.GF32)
}

func (a *countsAccum) snapshot() perf.Counts {
	return perf.Counts{
		LD: a.ld.Load(), ST: a.st.Load(), ALU: a.alu.Load(), Mul: a.mul.Load(),
		Branch: a.br.Load(), BranchNT: a.brnt.Load(),
		GFOp: a.gfop.Load(), GF32: a.gf32.Load(),
	}
}

// Counts returns the accumulated cycle accounting from metered stages
// (zero unless a metered stage ran).
func (s *StageStats) Counts() perf.Counts { return s.counts.snapshot() }

// SinkStats counts what left the pipeline, folded at the reorder sink.
// Frames are engine frames (one per Submit); Codewords unpacks batching
// (a frame carrying a 16-codeword payload counts 16), so failure rates
// stay comparable across batch settings — a failed batched frame charges
// its full width, never 1.
type SinkStats struct {
	Frames          atomic.Int64 // frames delivered (with or without Err)
	Codewords       atomic.Int64 // codewords delivered
	Failed          atomic.Int64 // frames delivered with Err set
	FailedCodewords atomic.Int64 // codewords in frames delivered with Err set
}

// String formats one report row.
func (s *StageStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s frames=%-8d err=%-6d in=%s out=%s",
		s.Name, s.Frames.Load(), s.Errors.Load(),
		fmtBytes(s.BytesIn.Load()), fmtBytes(s.BytesOut.Load()))
	if cw := s.Codewords.Load(); cw > s.Frames.Load() {
		fmt.Fprintf(&b, " cw=%d", cw)
	}
	if c := s.Corrected.Load(); c > 0 {
		fmt.Fprintf(&b, " corrected=%d", c)
	}
	fmt.Fprintf(&b, " lat[%s]", s.Latency.String())
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
