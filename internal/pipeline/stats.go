package pipeline

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/perf"
)

// histBuckets is the number of power-of-two latency buckets. Bucket i
// holds samples with latency in [2^i, 2^(i+1)) nanoseconds (bucket 0
// holds 0ns and 1ns); the last bucket absorbs everything longer.
const histBuckets = 40

// Hist is a lock-free power-of-two latency histogram. All methods are
// safe for concurrent use.
type Hist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // total nanoseconds
	max     atomic.Int64
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	// Bucket index: 0 and 1 land in bucket 0, [2^i, 2^(i+1)) in bucket i.
	i := bits.Len64(uint64(ns))
	if i > 0 {
		i--
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Count returns the number of samples observed.
func (h *Hist) Count() int64 { return h.count.Load() }

// Mean returns the mean observed latency.
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observed latency.
func (h *Hist) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// top edge of the bucket containing it. Resolution is a factor of two,
// which is enough to tell microseconds from milliseconds in a report.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			if i == histBuckets-1 {
				return h.Max()
			}
			// Top edge of bucket i = 2^(i+1) (exclusive upper bound).
			return time.Duration(int64(1) << (i + 1))
		}
	}
	return h.Max()
}

// String summarizes the histogram as mean/p50/p99/max.
func (h *Hist) String() string {
	return fmt.Sprintf("mean=%v p50<%v p99<%v max=%v",
		h.Mean().Round(time.Microsecond), h.Quantile(0.50), h.Quantile(0.99),
		h.Max().Round(time.Microsecond))
}

// StageStats aggregates what one stage did across all of its workers.
// All counters are updated atomically by the stage's worker goroutines;
// reading them while the pipeline runs yields a consistent-enough live
// snapshot, and an exact one once Run.Wait has returned.
type StageStats struct {
	Name string

	Frames    atomic.Int64 // frames processed (excluding skipped error frames)
	Errors    atomic.Int64 // frames this stage failed
	BytesIn   atomic.Int64 // payload bytes entering the stage
	BytesOut  atomic.Int64 // payload bytes leaving the stage
	Corrected atomic.Int64 // symbol/bit errors corrected (decode stages)

	Latency Hist // wall-clock Process latency per frame

	// counts accumulates perf.Counts cycle accounting reported by metered
	// stages (each field atomically).
	counts countsAccum
}

// countsAccum is perf.Counts with every field updated atomically.
type countsAccum struct {
	ld, st, alu, mul, br, brnt, gfop, gf32 atomic.Int64
}

func (a *countsAccum) add(c perf.Counts) {
	a.ld.Add(c.LD)
	a.st.Add(c.ST)
	a.alu.Add(c.ALU)
	a.mul.Add(c.Mul)
	a.br.Add(c.Branch)
	a.brnt.Add(c.BranchNT)
	a.gfop.Add(c.GFOp)
	a.gf32.Add(c.GF32)
}

func (a *countsAccum) snapshot() perf.Counts {
	return perf.Counts{
		LD: a.ld.Load(), ST: a.st.Load(), ALU: a.alu.Load(), Mul: a.mul.Load(),
		Branch: a.br.Load(), BranchNT: a.brnt.Load(),
		GFOp: a.gfop.Load(), GF32: a.gf32.Load(),
	}
}

// Counts returns the accumulated cycle accounting from metered stages
// (zero unless a metered stage ran).
func (s *StageStats) Counts() perf.Counts { return s.counts.snapshot() }

// String formats one report row.
func (s *StageStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s frames=%-8d err=%-6d in=%s out=%s",
		s.Name, s.Frames.Load(), s.Errors.Load(),
		fmtBytes(s.BytesIn.Load()), fmtBytes(s.BytesOut.Load()))
	if c := s.Corrected.Load(); c > 0 {
		fmt.Fprintf(&b, " corrected=%d", c)
	}
	fmt.Fprintf(&b, " lat[%s]", s.Latency.String())
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
