// Package pipeline composes the repository's codecs into concurrent,
// batched, backpressured frame-processing pipelines — the scaling layer
// that lets a multi-core host exploit the parallelism the paper's
// processor finds inside one cycle (its 4-way SIMD GF ops) across many
// frames at once.
//
// A Pipeline is an ordered list of Stages. Each stage runs a private
// worker pool (Config.Workers goroutines) fed by a bounded channel, so a
// slow stage exerts backpressure all the way back to Run.Submit instead
// of buffering without limit. Frames are stamped with a sequence number
// on submission and reordered at the sink, so output order always equals
// submission order no matter how workers interleave.
//
// Stage implementations must be safe for concurrent use by multiple
// workers (the codec adapters in stages.go are — see the concurrency
// notes in packages rs, bch and aes); a stage holding per-worker mutable
// state (e.g. a channel-model RNG) instead implements WorkerLocal to get
// one private instance per worker.
package pipeline

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/perf"
)

// Frame is one unit of work flowing through a pipeline. The payload in
// Data is rewritten by each stage (message -> codeword -> corrupted
// codeword -> message ...). A Frame is owned by exactly one stage worker
// at a time, so stages may mutate it freely without locking.
type Frame struct {
	// Seq is the submission sequence number, assigned by Run.Submit.
	// Frames leave the pipeline in increasing Seq order.
	Seq uint64
	// Epoch tags the frame with the configuration epoch it was submitted
	// under (see Run.SubmitTagged). Epoch-aware stage pairs — e.g. the
	// switchable encoder/decoder of package adaptive — use it to apply
	// the same per-epoch configuration on both sides of the channel, so
	// the pipeline can change codes coherently without draining.
	Epoch int
	// Data is the current payload.
	Data []byte
	// Err is the first stage error encountered; once set, later stages
	// skip the frame and it is delivered as-is so the caller can account
	// for it. FailedAt names the stage that set Err.
	Err      error
	FailedAt string
	// Corrected accumulates symbol/bit corrections reported by decode
	// stages. CorrectedMax is the worst per-codeword correction count an
	// interleaved decode stage observed — the frame's distance to the
	// code's correction bound t, which adaptive controllers use as their
	// degradation signal.
	Corrected    int
	CorrectedMax int
	// Counts accumulates perf cycle accounting reported by metered
	// stages (zero for unmetered pipelines).
	Counts perf.Counts
	// Tag is opaque caller context carried through the pipeline
	// untouched. Multiplexers (e.g. the codec server) attach their
	// routing state here at submission and read it back at delivery,
	// with no map or lock between the two.
	Tag any
	// Latency is the submit-to-delivery wall-clock time, set at the sink.
	Latency time.Duration

	submitted time.Time
	// pooled, when non-nil, is the pool-owned buffer backing Data,
	// installed by a buffer-reusing stage and released by Frame.Recycle.
	pooled *pooledBuf
	// trace, when non-nil, is the sampled lifecycle record stamped by the
	// stage workers and folded into the tracer's histograms at the sink.
	trace *frameTrace
}

// Stage transforms frames. Process is called concurrently from many
// worker goroutines, each call with exclusive ownership of its frame;
// implementations must not keep per-call mutable state on the receiver
// unless they also implement WorkerLocal.
type Stage interface {
	// Name labels the stage in stats and reports.
	Name() string
	// Process transforms f.Data in place (replacing the slice is fine).
	// Returning an error marks the frame failed; the pipeline keeps
	// running.
	Process(f *Frame) error
}

// WorkerLocal is implemented by stages that need private per-worker
// state. At Start, the pipeline calls ForWorker once per worker and
// routes each worker's frames through its own instance.
type WorkerLocal interface {
	Stage
	// ForWorker returns the stage instance worker w (0-based) will use.
	ForWorker(w int) Stage
}

// Func adapts a function to a stateless Stage.
type Func struct {
	Label string
	F     func(f *Frame) error
}

// Name implements Stage.
func (s Func) Name() string { return s.Label }

// Process implements Stage.
func (s Func) Process(f *Frame) error { return s.F(f) }

// Config sizes a pipeline.
type Config struct {
	// Workers is the worker-pool size of every stage. 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Queue is the depth of each stage's input channel (and of the output
	// channel). 0 means 2*Workers. Smaller values tighten backpressure;
	// larger values smooth out latency jitter between stages.
	Queue int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 2 * c.Workers
	}
	return c
}

// Pipeline is an immutable description of a stage sequence plus the
// stats the stages accumulate across runs. Build one with New, then
// Start it (possibly several times, though stats are cumulative).
type Pipeline struct {
	cfg    Config
	stages []Stage
	stats  []*StageStats
	tracer *Tracer // nil unless EnableTracing was called
	// Total observes end-to-end submit-to-delivery latency.
	Total Hist
}

// New builds a pipeline from the given stages. The configuration is
// validated here — negative sizes are programming errors, rejected
// up front instead of producing a pipeline that deadlocks or panics
// once started (zero still means "use the default").
func New(cfg Config, stages ...Stage) (*Pipeline, error) {
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("pipeline: negative worker count %d", cfg.Workers)
	}
	if cfg.Queue < 0 {
		return nil, fmt.Errorf("pipeline: negative queue depth %d", cfg.Queue)
	}
	if len(stages) == 0 {
		return nil, errors.New("pipeline: no stages")
	}
	p := &Pipeline{cfg: cfg.withDefaults(), stages: stages}
	for _, s := range stages {
		if s == nil {
			return nil, errors.New("pipeline: nil stage")
		}
		p.stats = append(p.stats, &StageStats{Name: s.Name()})
	}
	return p, nil
}

// Must is New but panics on error.
func Must(cfg Config, stages ...Stage) *Pipeline {
	p, err := New(cfg, stages...)
	if err != nil {
		panic(err)
	}
	return p
}

// Stats returns the per-stage statistics, in stage order. The returned
// values are live: they keep updating while a run is active.
func (p *Pipeline) Stats() []*StageStats { return p.stats }

// Config returns the resolved configuration (defaults applied).
func (p *Pipeline) Config() Config { return p.cfg }

// Run is one execution of a pipeline: submit frames, read them back in
// submission order from Out, Close when done.
type Run struct {
	p    *Pipeline
	in   chan *Frame
	out  chan *Frame
	seq  atomic.Uint64
	done chan struct{}

	// mu gates submissions against Close: SubmitChecked holds it shared
	// while sending on in, Close holds it exclusively while closing in,
	// so a long-lived concurrent submitter (e.g. a server connection
	// handler) can race Close safely and get ErrClosed instead of a send
	// on a closed channel.
	mu     sync.RWMutex
	closed bool
}

// Start launches the worker pools and returns a Run accepting frames.
func (p *Pipeline) Start() *Run {
	cfg := p.cfg
	r := &Run{
		p:    p,
		in:   make(chan *Frame, cfg.Queue),
		out:  make(chan *Frame, cfg.Queue),
		done: make(chan struct{}),
	}
	src := r.in
	for i, s := range p.stages {
		dst := make(chan *Frame, cfg.Queue)
		startStage(s, p.stats[i], i, p.tracer, cfg.Workers, src, dst)
		src = dst
	}
	go r.reorder(src)
	return r
}

// startStage spawns the worker pool for stage idx and closes dst once
// every worker has drained src.
func startStage(s Stage, st *StageStats, idx int, tr *Tracer, workers int, src <-chan *Frame, dst chan<- *Frame) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		inst := s
		if wl, ok := s.(WorkerLocal); ok {
			inst = wl.ForWorker(w)
		}
		go func(inst Stage) {
			defer wg.Done()
			for f := range src {
				if f.trace != nil {
					f.trace.spans[idx].start = tr.now()
				}
				if f.Err == nil {
					runStage(inst, st, f)
				}
				if f.trace != nil {
					now := tr.now()
					f.trace.spans[idx].fin = now
					// The frame is ready for the next stage the moment this
					// one finishes; a blocked send below (backpressure) then
					// counts as that stage's queue wait.
					if idx+1 < len(f.trace.spans) {
						f.trace.spans[idx+1].enq = now
					}
				}
				dst <- f
			}
		}(inst)
	}
	go func() {
		wg.Wait()
		close(dst)
	}()
}

func runStage(s Stage, st *StageStats, f *Frame) {
	st.BytesIn.Add(int64(len(f.Data)))
	beforeCorrected := f.Corrected
	beforeCounts := f.Counts
	start := time.Now()
	err := s.Process(f)
	st.Latency.Observe(time.Since(start))
	st.Frames.Add(1)
	if f.Counts != beforeCounts {
		st.counts.add(subCounts(f.Counts, beforeCounts))
	}
	if err != nil {
		f.Err = err
		f.FailedAt = s.Name()
		st.Errors.Add(1)
		return
	}
	st.BytesOut.Add(int64(len(f.Data)))
	if d := f.Corrected - beforeCorrected; d > 0 {
		st.Corrected.Add(int64(d))
	}
}

// subCounts returns a - b field-wise, attributing a frame's counts delta
// to the stage that produced it.
func subCounts(a, b perf.Counts) perf.Counts {
	return perf.Counts{
		LD: a.LD - b.LD, ST: a.ST - b.ST, ALU: a.ALU - b.ALU, Mul: a.Mul - b.Mul,
		Branch: a.Branch - b.Branch, BranchNT: a.BranchNT - b.BranchNT,
		GFOp: a.GFOp - b.GFOp, GF32: a.GF32 - b.GF32,
	}
}

// reorder is the sink: it buffers out-of-order frames and releases them
// strictly by Seq. The buffer is bounded by the number of in-flight
// frames, which the bounded stage channels already cap.
func (r *Run) reorder(src <-chan *Frame) {
	defer close(r.out)
	defer close(r.done)
	next := uint64(0)
	pending := make(map[uint64]*Frame)
	for f := range src {
		pending[f.Seq] = f
		for {
			g, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			g.Latency = time.Since(g.submitted)
			r.p.Total.Observe(g.Latency)
			if g.trace != nil {
				r.p.tracer.complete(g)
			}
			r.out <- g
		}
	}
	// src closed: every submitted frame has arrived, so pending is empty
	// unless seq assignment was bypassed. Emit the leftovers in Seq order
	// (the delivery contract), preserving any stage error the frame
	// already carries, and leave Latency zero when the frame never went
	// through Submit (submitted unset).
	leftover := make([]uint64, 0, len(pending))
	for seq := range pending {
		leftover = append(leftover, seq)
	}
	sort.Slice(leftover, func(i, j int) bool { return leftover[i] < leftover[j] })
	for _, seq := range leftover {
		g := pending[seq]
		if !g.submitted.IsZero() {
			g.Latency = time.Since(g.submitted)
		}
		if g.Err == nil {
			g.Err = fmt.Errorf("pipeline: frame %d delivered out of band", seq)
			g.FailedAt = "reorder"
		}
		if g.trace != nil {
			r.p.tracer.complete(g)
		}
		r.out <- g
	}
}

// ErrClosed is returned by SubmitChecked once Close has been called.
var ErrClosed = errors.New("pipeline: run closed")

// Submit injects a payload as the next frame and returns its sequence
// number. It blocks when the first stage's queue is full (backpressure).
// Submit is safe for concurrent use; "submission order" is then the
// order of sequence assignment. Submit must not be called after Close
// (it panics with ErrClosed); callers that cannot order their
// submissions against Close use SubmitChecked.
func (r *Run) Submit(data []byte) uint64 { return r.SubmitTagged(data, 0) }

// SubmitTagged is Submit with an explicit configuration epoch stamped on
// the frame, for pipelines whose stages switch behavior per epoch.
func (r *Run) SubmitTagged(data []byte, epoch int) uint64 {
	seq, err := r.SubmitChecked(data, epoch, nil)
	if err != nil {
		panic(err)
	}
	return seq
}

// SubmitChecked is SubmitTagged for submitters that may race Close — a
// server draining live connections, for example. It returns ErrClosed
// (instead of panicking) once the run's input has been closed, and
// stamps tag (which may be nil) onto Frame.Tag for delivery-time
// routing. Like Submit it blocks while the first stage's queue is full.
func (r *Run) SubmitChecked(data []byte, epoch int, tag any) (uint64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return 0, ErrClosed
	}
	f := &Frame{Data: data, Epoch: epoch, Tag: tag, submitted: time.Now()}
	f.Seq = r.seq.Add(1) - 1
	if tr := r.p.tracer; tr != nil {
		if ft := tr.sample(); ft != nil {
			ft.spans[0].enq = tr.now()
			f.trace = ft
		}
	}
	r.in <- f
	return f.Seq, nil
}

// Closed reports whether Close has been called on this run. Health
// endpoints use it to tell "draining" from "accepting".
func (r *Run) Closed() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.closed
}

// Out delivers processed frames in submission order. It is closed after
// Close once every submitted frame has been delivered.
func (r *Run) Out() <-chan *Frame { return r.out }

// Close declares the input complete. In-flight frames still drain to
// Out, which is closed afterwards. Close is idempotent and safe to call
// concurrently with SubmitChecked; it blocks until submitters already
// inside SubmitChecked have handed their frame to the first stage.
func (r *Run) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	close(r.in)
}

// Wait blocks until the pipeline has fully drained (Close called and
// every frame delivered). The caller must be consuming Out — or have
// consumed it — for Wait to return.
func (r *Run) Wait() { <-r.done }

// Drain submits every payload, closes the input and collects all frames
// in submission order — the convenient batch entry point. Frames whose
// stages failed carry Err; the first such error (by Seq) is returned
// alongside the full frame list.
func (r *Run) Drain(payloads [][]byte) ([]*Frame, error) {
	go func() {
		for _, d := range payloads {
			r.Submit(d)
		}
		r.Close()
	}()
	frames := make([]*Frame, 0, len(payloads))
	var firstErr error
	for f := range r.Out() {
		frames = append(frames, f)
		if f.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("pipeline: frame %d failed in %s: %w", f.Seq, f.FailedAt, f.Err)
		}
	}
	return frames, firstErr
}
