// Package pipeline composes the repository's codecs into concurrent,
// batched, backpressured frame-processing pipelines — the scaling layer
// that lets a multi-core host exploit the parallelism the paper's
// processor finds inside one cycle (its 4-way SIMD GF ops) across many
// frames at once.
//
// A Pipeline is an ordered list of Stages. Each stage runs a private
// worker pool (Config.Workers goroutines) fed by a bounded channel, so a
// slow stage exerts backpressure all the way back to Run.Submit instead
// of buffering without limit. Frames are stamped with a sequence number
// on submission and reordered at the sink, so output order always equals
// submission order no matter how workers interleave.
//
// Stage implementations must be safe for concurrent use by multiple
// workers (the codec adapters in stages.go are — see the concurrency
// notes in packages rs, bch and aes); a stage holding per-worker mutable
// state (e.g. a channel-model RNG) instead implements WorkerLocal to get
// one private instance per worker.
package pipeline

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/perf"
)

// Frame is one unit of work flowing through a pipeline. The payload in
// Data is rewritten by each stage (message -> codeword -> corrupted
// codeword -> message ...). A Frame is owned by exactly one stage worker
// at a time, so stages may mutate it freely without locking.
type Frame struct {
	// Seq is the submission sequence number, assigned by Run.Submit.
	// Frames leave the pipeline in increasing Seq order.
	Seq uint64
	// Epoch tags the frame with the configuration epoch it was submitted
	// under (see Run.SubmitTagged). Epoch-aware stage pairs — e.g. the
	// switchable encoder/decoder of package adaptive — use it to apply
	// the same per-epoch configuration on both sides of the channel, so
	// the pipeline can change codes coherently without draining.
	Epoch int
	// Data is the current payload.
	Data []byte
	// Err is the first stage error encountered; once set, later stages
	// skip the frame and it is delivered as-is so the caller can account
	// for it. FailedAt names the stage that set Err.
	Err      error
	FailedAt string
	// Corrected accumulates symbol/bit corrections reported by decode
	// stages. CorrectedMax is the worst per-codeword correction count an
	// interleaved decode stage observed — the frame's distance to the
	// code's correction bound t, which adaptive controllers use as their
	// degradation signal.
	Corrected    int
	CorrectedMax int
	// Counts accumulates perf cycle accounting reported by metered
	// stages (zero for unmetered pipelines).
	Counts perf.Counts
	// Tag is opaque caller context carried through the pipeline
	// untouched. Multiplexers (e.g. the codec server) attach their
	// routing state here at submission and read it back at delivery,
	// with no map or lock between the two.
	Tag any
	// Width is the number of codewords packed into this frame's payload.
	// The codec stages set it when they infer the batch width from the
	// payload length; 0 is read as 1 (an unbatched frame). Delivery-side
	// accounting (Pipeline.Sink) is per codeword, so a failed batched
	// frame charges its full width.
	Width int
	// Latency is the submit-to-delivery wall-clock time, set at the sink.
	Latency time.Duration

	submitted time.Time
	// pooled, when non-nil, is the pool-owned buffer backing Data,
	// installed by a buffer-reusing stage and released by Frame.Recycle.
	pooled *pooledBuf
	// trace, when non-nil, is the sampled lifecycle record stamped by the
	// stage workers and folded into the tracer's histograms at the sink.
	trace *frameTrace
}

// width returns the frame's codeword count for accounting (Width, with
// 0 meaning 1).
func (f *Frame) width() int {
	if f.Width > 0 {
		return f.Width
	}
	return 1
}

// Stage transforms frames. Process is called concurrently from many
// worker goroutines, each call with exclusive ownership of its frame;
// implementations must not keep per-call mutable state on the receiver
// unless they also implement WorkerLocal.
type Stage interface {
	// Name labels the stage in stats and reports.
	Name() string
	// Process transforms f.Data in place (replacing the slice is fine).
	// Returning an error marks the frame failed; the pipeline keeps
	// running.
	Process(f *Frame) error
}

// WorkerLocal is implemented by stages that need private per-worker
// state. At Start, the pipeline calls ForWorker once per worker and
// routes each worker's frames through its own instance.
type WorkerLocal interface {
	Stage
	// ForWorker returns the stage instance worker w (0-based) will use.
	ForWorker(w int) Stage
}

// Func adapts a function to a stateless Stage.
type Func struct {
	Label string
	F     func(f *Frame) error
}

// Name implements Stage.
func (s Func) Name() string { return s.Label }

// Process implements Stage.
func (s Func) Process(f *Frame) error { return s.F(f) }

// Config sizes a pipeline.
type Config struct {
	// Workers is the worker-pool size of every stage. 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Queue is the depth of each stage's input ring (and of the output
	// channel), in frames. 0 means 2*Workers. Smaller values tighten
	// backpressure; larger values smooth out latency jitter between
	// stages. Note the unit is frames: with batching each slot holds
	// Batch codewords, so byte-level buffering scales with the batch.
	Queue int
	// Batch is the number of codewords batch-aware submitters (the cmd
	// drivers, the server) pack into each frame's payload. The codec
	// stages infer every frame's width from its payload length — a
	// multiple of the codeword size — so the engine itself accepts mixed
	// widths; Batch is carried here so all layers size payloads and
	// queues consistently. 0 means 1 (unbatched).
	Batch int
	// Shards is the number of reorder-sink shards: frames fan out by
	// Seq%Shards to per-shard sequencers whose ordered streams a final
	// selector merges, so delivery-side stats folding parallelizes
	// instead of serializing on one goroutine. 0 means min(4, Workers).
	Shards int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 2 * c.Workers
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.Shards <= 0 {
		c.Shards = c.Workers
		if c.Shards > 4 {
			c.Shards = 4
		}
	}
	return c
}

// Pipeline is an immutable description of a stage sequence plus the
// stats the stages accumulate across runs. Build one with New, then
// Start it (possibly several times, though stats are cumulative).
type Pipeline struct {
	cfg    Config
	stages []Stage
	stats  []*StageStats
	tracer *Tracer // nil unless EnableTracing was called
	// Total observes end-to-end submit-to-delivery latency.
	Total Hist
	// Sink counts delivered frames and codewords (see SinkStats).
	Sink SinkStats
}

// New builds a pipeline from the given stages. The configuration is
// validated here — negative sizes are programming errors, rejected
// up front instead of producing a pipeline that deadlocks or panics
// once started (zero still means "use the default").
func New(cfg Config, stages ...Stage) (*Pipeline, error) {
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("pipeline: negative worker count %d", cfg.Workers)
	}
	if cfg.Queue < 0 {
		return nil, fmt.Errorf("pipeline: negative queue depth %d", cfg.Queue)
	}
	if cfg.Batch < 0 {
		return nil, fmt.Errorf("pipeline: negative batch %d", cfg.Batch)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("pipeline: negative shard count %d", cfg.Shards)
	}
	if len(stages) == 0 {
		return nil, errors.New("pipeline: no stages")
	}
	p := &Pipeline{cfg: cfg.withDefaults(), stages: stages}
	for _, s := range stages {
		if s == nil {
			return nil, errors.New("pipeline: nil stage")
		}
		p.stats = append(p.stats, &StageStats{Name: s.Name()})
	}
	return p, nil
}

// Must is New but panics on error.
func Must(cfg Config, stages ...Stage) *Pipeline {
	p, err := New(cfg, stages...)
	if err != nil {
		panic(err)
	}
	return p
}

// Stats returns the per-stage statistics, in stage order. The returned
// values are live: they keep updating while a run is active.
func (p *Pipeline) Stats() []*StageStats { return p.stats }

// Config returns the resolved configuration (defaults applied).
func (p *Pipeline) Config() Config { return p.cfg }

// Run is one execution of a pipeline: submit frames, read them back in
// submission order from Out, Close when done.
type Run struct {
	p    *Pipeline
	in   *frameRing
	out  chan *Frame
	seq  atomic.Uint64
	done chan struct{}

	// mu gates submissions against Close: SubmitChecked holds it shared
	// while sending on in, Close holds it exclusively while closing in,
	// so a long-lived concurrent submitter (e.g. a server connection
	// handler) can race Close safely and get ErrClosed instead of a send
	// on a closed channel.
	mu     sync.RWMutex
	closed bool
}

// Start launches the worker pools and returns a Run accepting frames.
// Stages hand frames downstream through bulk rings; the last stage
// scatters onto the sharded reorder sink (per-shard sequencers merged by
// a selector), which delivers on Out in Seq order.
func (p *Pipeline) Start() *Run {
	cfg := p.cfg
	r := &Run{
		p:    p,
		in:   newFrameRing(cfg.Queue),
		out:  make(chan *Frame, cfg.Queue),
		done: make(chan struct{}),
	}
	merged := newFrameRing(cfg.Queue)
	var sink frameSink = merged
	if cfg.Shards > 1 {
		shards := make([]*frameRing, cfg.Shards)
		for i := range shards {
			shards[i] = newFrameRing(cfg.Queue)
		}
		sink = &shardedSink{shards: shards}
		var seqWG sync.WaitGroup
		seqWG.Add(cfg.Shards)
		for i := range shards {
			go r.sequencer(shards[i], merged, &seqWG)
		}
		go func() {
			seqWG.Wait()
			merged.close()
		}()
	}
	src := r.in
	for i, s := range p.stages {
		if i == len(p.stages)-1 {
			startStage(s, p.stats[i], i, p.tracer, cfg.Workers, src, sink)
			break
		}
		next := newFrameRing(cfg.Queue)
		startStage(s, p.stats[i], i, p.tracer, cfg.Workers, src, next)
		src = next
	}
	// With one shard there is nothing to fold in parallel: the last stage
	// feeds the merged ring directly and the selector folds stats inline,
	// costing no more handoffs than the pre-shard engine.
	go r.selector(merged, cfg.Shards == 1)
	return r
}

// startStage spawns the worker pool for stage idx and closes dst once
// every worker has drained src. Workers dequeue a run of frames per ring
// synchronization and re-enqueue the whole run downstream in one bulk
// put, so handoff cost amortizes over the run.
func startStage(s Stage, st *StageStats, idx int, tr *Tracer, workers int, src *frameRing, dst frameSink) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		inst := s
		if wl, ok := s.(WorkerLocal); ok {
			inst = wl.ForWorker(w)
		}
		go func(inst Stage) {
			defer wg.Done()
			run := make([]*Frame, stageRun)
			for {
				n := src.getSome(run)
				if n == 0 {
					return
				}
				for _, f := range run[:n] {
					if f.trace != nil {
						f.trace.spans[idx].start = tr.now()
					}
					if f.Err == nil {
						runStage(inst, st, f)
					}
					if f.trace != nil {
						now := tr.now()
						f.trace.spans[idx].fin = now
						// The frame is ready for the next stage the moment this
						// one finishes; time spent in the worker's run buffer and
						// any blocked bulk put below (backpressure) then count as
						// the next stage's queue wait.
						if idx+1 < len(f.trace.spans) {
							f.trace.spans[idx+1].enq = now
						}
					}
				}
				dst.putAll(run[:n])
				for i := range run[:n] {
					run[i] = nil
				}
			}
		}(inst)
	}
	go func() {
		wg.Wait()
		dst.close()
	}()
}

func runStage(s Stage, st *StageStats, f *Frame) {
	st.BytesIn.Add(int64(len(f.Data)))
	beforeCorrected := f.Corrected
	beforeCounts := f.Counts
	start := time.Now()
	err := s.Process(f)
	st.Latency.Observe(time.Since(start))
	st.Frames.Add(1)
	if f.Counts != beforeCounts {
		st.counts.add(subCounts(f.Counts, beforeCounts))
	}
	if err != nil {
		f.Err = err
		f.FailedAt = s.Name()
		st.Errors.Add(1)
		return
	}
	st.BytesOut.Add(int64(len(f.Data)))
	st.Codewords.Add(int64(f.width()))
	if d := f.Corrected - beforeCorrected; d > 0 {
		st.Corrected.Add(int64(d))
	}
}

// subCounts returns a - b field-wise, attributing a frame's counts delta
// to the stage that produced it.
func subCounts(a, b perf.Counts) perf.Counts {
	return perf.Counts{
		LD: a.LD - b.LD, ST: a.ST - b.ST, ALU: a.ALU - b.ALU, Mul: a.Mul - b.Mul,
		Branch: a.Branch - b.Branch, BranchNT: a.BranchNT - b.BranchNT,
		GFOp: a.GFOp - b.GFOp, GF32: a.GF32 - b.GF32,
	}
}

// ErrClosed is returned by SubmitChecked once Close has been called.
var ErrClosed = errors.New("pipeline: run closed")

// Submit injects a payload as the next frame and returns its sequence
// number. It blocks when the first stage's queue is full (backpressure).
// Submit is safe for concurrent use; "submission order" is then the
// order of sequence assignment. Submit must not be called after Close
// (it panics with ErrClosed); callers that cannot order their
// submissions against Close use SubmitChecked.
func (r *Run) Submit(data []byte) uint64 { return r.SubmitTagged(data, 0) }

// SubmitTagged is Submit with an explicit configuration epoch stamped on
// the frame, for pipelines whose stages switch behavior per epoch.
func (r *Run) SubmitTagged(data []byte, epoch int) uint64 {
	seq, err := r.SubmitChecked(data, epoch, nil)
	if err != nil {
		panic(err)
	}
	return seq
}

// SubmitChecked is SubmitTagged for submitters that may race Close — a
// server draining live connections, for example. It returns ErrClosed
// (instead of panicking) once the run's input has been closed, and
// stamps tag (which may be nil) onto Frame.Tag for delivery-time
// routing. Like Submit it blocks while the first stage's queue is full.
func (r *Run) SubmitChecked(data []byte, epoch int, tag any) (uint64, error) {
	return r.submitChecked(data, epoch, tag, false)
}

// SubmitTracedChecked is SubmitChecked for request-scoped traced
// frames: when traced is true and the pipeline has a tracer, the frame
// is force-sampled so its per-stage lifecycle is recorded regardless of
// the 1/N sampling tick (a traced request always yields stage spans).
// With traced false it is exactly SubmitChecked.
func (r *Run) SubmitTracedChecked(data []byte, epoch int, tag any, traced bool) (uint64, error) {
	return r.submitChecked(data, epoch, tag, traced)
}

func (r *Run) submitChecked(data []byte, epoch int, tag any, force bool) (uint64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return 0, ErrClosed
	}
	f := framePool.Get().(*Frame)
	*f = Frame{Data: data, Epoch: epoch, Tag: tag, submitted: time.Now()}
	f.Seq = r.seq.Add(1) - 1
	if tr := r.p.tracer; tr != nil {
		var ft *frameTrace
		if force {
			ft = tr.force()
		} else {
			ft = tr.sample()
		}
		if ft != nil {
			ft.spans[0].enq = tr.now()
			f.trace = ft
		}
	}
	// Copy Seq before the handoff: once put, the consumer may deliver
	// and Free the frame (returning it to the pool) at any moment.
	seq := f.Seq
	r.in.put(f)
	return seq, nil
}

// Closed reports whether Close has been called on this run. Health
// endpoints use it to tell "draining" from "accepting".
func (r *Run) Closed() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.closed
}

// Out delivers processed frames in submission order. It is closed after
// Close once every submitted frame has been delivered.
func (r *Run) Out() <-chan *Frame { return r.out }

// Close declares the input complete. In-flight frames still drain to
// Out, which is closed afterwards. Close is idempotent and safe to call
// concurrently with SubmitChecked; it blocks until submitters already
// inside SubmitChecked have handed their frame to the first stage.
func (r *Run) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	r.in.close()
}

// Wait blocks until the pipeline has fully drained (Close called and
// every frame delivered). The caller must be consuming Out — or have
// consumed it — for Wait to return.
func (r *Run) Wait() { <-r.done }

// Drain submits every payload, closes the input and collects all frames
// in submission order — the convenient batch entry point. Frames whose
// stages failed carry Err; the first such error (by Seq) is returned
// alongside the full frame list.
func (r *Run) Drain(payloads [][]byte) ([]*Frame, error) {
	go func() {
		for _, d := range payloads {
			r.Submit(d)
		}
		r.Close()
	}()
	frames := make([]*Frame, 0, len(payloads))
	var firstErr error
	for f := range r.Out() {
		frames = append(frames, f)
		if f.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("pipeline: frame %d failed in %s: %w", f.Seq, f.FailedAt, f.Err)
		}
	}
	return frames, firstErr
}
