package pipeline

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/channel"
)

// The Hist bucket-boundary and quantile regressions moved to
// internal/perf/hist_test.go with the type.

// TestReorderOutOfBand exercises the sink's leftover path by injecting
// frames directly into the run (bypassing Submit's seq assignment) with
// a sequence gap, so none can be released in band. Regression: the
// leftovers used to come out in nondeterministic map order, any stage
// error was overwritten, and Latency was computed from a zero submitted
// timestamp.
func TestReorderOutOfBand(t *testing.T) {
	sentinel := errors.New("stage failure to preserve")
	pl := Must(Config{Workers: 1, Queue: 8}, Func{Label: "id", F: func(f *Frame) error {
		return nil
	}})
	r := pl.Start()
	// Seqs 5, 3, 4: seq 0 never arrives, so the in-band loop releases
	// nothing and every frame takes the out-of-band path.
	f5 := &Frame{Seq: 5, Data: []byte{5}}
	f3 := &Frame{Seq: 3, Data: []byte{3}, Err: sentinel, FailedAt: "earlier-stage"}
	f4 := &Frame{Seq: 4, Data: []byte{4}}
	for _, f := range []*Frame{f5, f3, f4} {
		r.in.put(f)
	}
	r.Close()

	var got []*Frame
	for f := range r.Out() {
		got = append(got, f)
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d frames, want 3", len(got))
	}
	for i, want := range []uint64{3, 4, 5} {
		if got[i].Seq != want {
			t.Fatalf("delivery order %v, want Seq ascending [3 4 5]",
				[]uint64{got[0].Seq, got[1].Seq, got[2].Seq})
		}
	}
	if !errors.Is(got[0].Err, sentinel) {
		t.Errorf("pre-existing error overwritten: %v", got[0].Err)
	}
	if got[0].FailedAt != "earlier-stage" {
		t.Errorf("FailedAt overwritten: %q", got[0].FailedAt)
	}
	for _, f := range got[1:] {
		if f.Err == nil {
			t.Errorf("frame %d missing out-of-band error", f.Seq)
		}
	}
	// None of these frames went through Submit: Latency must not be
	// computed from the zero timestamp (which would be ~25 years).
	for _, f := range got {
		if f.Latency != 0 {
			t.Errorf("frame %d Latency = %v from zero submitted time, want 0", f.Seq, f.Latency)
		}
	}
}

// TestReorderOutOfBandBatchedCounts: the leftover path must account
// batched frames per codeword. Regression guard for the sharded sink: a
// width-4 frame delivered out of band (or carrying a stage error)
// charges 4 failed codewords to Pipeline.Sink, not 1.
func TestReorderOutOfBandBatchedCounts(t *testing.T) {
	pl := Must(Config{Workers: 1, Queue: 8}, Func{Label: "id", F: func(f *Frame) error {
		return nil
	}})
	r := pl.Start()
	// Both frames are batched (Width 4 and 3) and stranded behind the
	// missing seq 0, so both take the out-of-band path.
	r.in.put(&Frame{Seq: 2, Width: 4, Data: []byte{2}})
	r.in.put(&Frame{Seq: 3, Width: 3, Data: []byte{3}, Err: errors.New("stage failed"), FailedAt: "enc"})
	r.Close()
	var n int
	for f := range r.Out() {
		if f.Err == nil {
			t.Fatalf("frame %d delivered clean, want out-of-band or stage error", f.Seq)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("delivered %d frames, want 2", n)
	}
	sink := &pl.Sink
	if got := sink.Frames.Load(); got != 2 {
		t.Errorf("Sink.Frames = %d, want 2", got)
	}
	if got := sink.Codewords.Load(); got != 7 {
		t.Errorf("Sink.Codewords = %d, want 7", got)
	}
	if got := sink.Failed.Load(); got != 2 {
		t.Errorf("Sink.Failed = %d, want 2", got)
	}
	if got := sink.FailedCodewords.Load(); got != 7 {
		t.Errorf("Sink.FailedCodewords = %d, want 7 (full width per failed frame)", got)
	}
}

// TestSubmitTaggedEpoch: the epoch tag must ride the frame through the
// pipeline unchanged, and plain Submit means epoch 0.
func TestSubmitTaggedEpoch(t *testing.T) {
	pl := Must(Config{Workers: 2, Queue: 4}, Func{Label: "id", F: func(f *Frame) error { return nil }})
	r := pl.Start()
	go func() {
		r.SubmitTagged([]byte{0}, 7)
		r.Submit([]byte{1})
		r.SubmitTagged([]byte{2}, 9)
		r.Close()
	}()
	var epochs []int
	for f := range r.Out() {
		epochs = append(epochs, f.Epoch)
	}
	if len(epochs) != 3 || epochs[0] != 7 || epochs[1] != 0 || epochs[2] != 9 {
		t.Fatalf("epochs %v, want [7 0 9]", epochs)
	}
}

// TestCorruptTVWorkerIndependence: schedule-driven corruption is keyed
// on Frame.Seq, so the corrupted bytes must be identical for any worker
// count — unlike Corrupt, whose streams are per worker.
func TestCorruptTVWorkerIndependence(t *testing.T) {
	tv, err := channel.NewTimeVarying([]channel.Episode{
		{Frames: 16, StartEbN0: 2, EndEbN0: 2},
		{Frames: 16, StartEbN0: 2, EndEbN0: 0, Burst: true},
	}, 99)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := func(workers int) [][]byte {
		stage, err := NewCorruptTV(tv, 8)
		if err != nil {
			t.Fatal(err)
		}
		pl := Must(Config{Workers: workers, Queue: 32}, stage)
		r := pl.Start()
		payloads := randPayloads(t, 32, 64, 5)
		frames, err := r.Drain(payloads)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]byte, len(frames))
		for i, f := range frames {
			out[i] = f.Data
		}
		return out
	}
	a := corrupted(1)
	b := corrupted(4)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("frame %d corrupted differently with 1 vs 4 workers", i)
		}
	}
}
