package pipeline

import (
	"errors"
	"strconv"
	"sync"
	"testing"
)

func idStage() Func {
	return Func{Label: "id", F: func(f *Frame) error { return nil }}
}

// TestNewRejectsBadConfig: negative sizes are rejected in New, not
// deferred to a misbehaving run.
func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Workers: -1}, idStage()); err == nil {
		t.Error("New accepted Workers=-1")
	}
	if _, err := New(Config{Queue: -3}, idStage()); err == nil {
		t.Error("New accepted Queue=-3")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted zero stages")
	}
	if _, err := New(Config{}, nil); err == nil {
		t.Error("New accepted a nil stage")
	}
	// Zero still means "default", not an error.
	p, err := New(Config{}, idStage())
	if err != nil {
		t.Fatalf("New with zero config: %v", err)
	}
	if c := p.Config(); c.Workers <= 0 || c.Queue <= 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
}

// TestCloseIdempotent: double Close must be a no-op, not a panic.
func TestCloseIdempotent(t *testing.T) {
	r := Must(Config{Workers: 1}, idStage()).Start()
	r.Close()
	r.Close()
	for range r.Out() {
	}
}

// TestSubmitCheckedAfterClose returns ErrClosed, and SubmitTagged
// panics with it.
func TestSubmitCheckedAfterClose(t *testing.T) {
	r := Must(Config{Workers: 1}, idStage()).Start()
	r.Close()
	if _, err := r.SubmitChecked([]byte{1}, 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitChecked after Close = %v, want ErrClosed", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("SubmitTagged after Close did not panic")
		}
	}()
	r.SubmitTagged([]byte{1}, 0)
}

// TestSubmitCheckedRacesClose hammers SubmitChecked from many
// goroutines while Close lands in the middle: every accepted frame must
// be delivered exactly once, every rejection must be ErrClosed, and
// nothing may panic. Run under -race this is the server-shutdown drain
// guarantee.
func TestSubmitCheckedRacesClose(t *testing.T) {
	const submitters = 8
	const perSubmitter = 200
	r := Must(Config{Workers: 2, Queue: 4}, idStage()).Start()

	var accepted, rejected int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			<-start
			for i := 0; i < perSubmitter; i++ {
				_, err := r.SubmitChecked([]byte(strconv.Itoa(s)), 0, nil)
				mu.Lock()
				if err == nil {
					accepted++
				} else if errors.Is(err, ErrClosed) {
					rejected++
				} else {
					t.Errorf("unexpected error: %v", err)
				}
				mu.Unlock()
			}
		}(s)
	}

	delivered := 0
	sink := make(chan struct{})
	go func() {
		defer close(sink)
		for range r.Out() {
			delivered++
		}
	}()

	close(start)
	// Let some submissions through, then close concurrently.
	r.Close()
	wg.Wait()
	<-sink

	if int64(delivered) != accepted {
		t.Fatalf("delivered %d frames, accepted %d", delivered, accepted)
	}
	if accepted+rejected != submitters*perSubmitter {
		t.Fatalf("accepted %d + rejected %d != %d", accepted, rejected, submitters*perSubmitter)
	}
}
