package pipeline

import (
	"fmt"
	"sync"
	"time"
)

// Sharded reorder sink. The original engine funneled every frame through
// one goroutine holding an unbounded pending map that never shrank after
// an out-of-order burst. Here the delivery path fans out by Seq modulo
// the shard count: the last stage's workers scatter frames onto
// per-shard rings and each shard's sequencer folds the per-frame
// delivery stats (latency, end-to-end histogram, lifecycle traces) in
// parallel before funneling into the selector, which restores dense Seq
// order through a power-of-two circular window — O(1) slab-reusing
// insert/release per frame, no map.
//
// The selector never waits on a *specific* shard (a selective receive
// plus bounded shard queues can deadlock behind head-of-line blocking in
// the stage workers); it consumes whatever the merged ring holds and
// parks out-of-order frames in the window, which grows to the in-flight
// bound and is reused thereafter.

// shardedSink scatters a stage worker's run of frames onto the per-shard
// sequencer rings with at most one bulk enqueue per shard per run.
type shardedSink struct {
	shards []*frameRing
}

func (ss *shardedSink) putAll(fs []*Frame) {
	s := uint64(len(ss.shards))
	if s == 1 {
		ss.shards[0].putAll(fs)
		return
	}
	var tmp [stageRun]*Frame
	for i, ring := range ss.shards {
		k := 0
		for _, f := range fs {
			if f.Seq%s == uint64(i) {
				tmp[k] = f
				k++
			}
		}
		if k > 0 {
			ring.putAll(tmp[:k])
		}
	}
}

func (ss *shardedSink) close() {
	for _, ring := range ss.shards {
		ring.close()
	}
}

// sequencer folds delivery stats for its shard's frames and forwards
// them to the merged ring; wg tracks the last sequencer out, which
// closes the ring.
func (r *Run) sequencer(src, merged *frameRing, wg *sync.WaitGroup) {
	defer wg.Done()
	run := make([]*Frame, stageRun)
	for {
		n := src.getSome(run)
		if n == 0 {
			return
		}
		for _, f := range run[:n] {
			r.finish(f)
		}
		merged.putAll(run[:n])
		for i := range run[:n] {
			run[i] = nil
		}
	}
}

// finish folds one frame's delivery stats: submit-to-sink latency into
// the pipeline's Total histogram and any sampled lifecycle trace into
// the tracer. Runs on the frame's shard sequencer, so shards fold stats
// in parallel. Frames injected past Submit carry no submit timestamp and
// keep Latency 0.
func (r *Run) finish(f *Frame) {
	if !f.submitted.IsZero() {
		f.Latency = time.Since(f.submitted)
		r.p.Total.Observe(f.Latency)
	}
	if f.trace != nil {
		r.p.tracer.complete(f)
	}
}

// seqWindow buffers out-of-order frames indexed by Seq: a power-of-two
// circular window that grows to the in-flight high-water mark and then
// reuses its slots forever — unlike the map it replaces, steady-state
// insert/release touches one slot and allocates nothing.
type seqWindow struct {
	buf  []*Frame
	base uint64 // seq stored at slot pos
	pos  int    // slot holding seq base
	held int
}

func newSeqWindow() *seqWindow { return &seqWindow{buf: make([]*Frame, 16)} }

// put stores the frame at its Seq (>= base; seqs are unique, so a slot
// is never written twice).
func (w *seqWindow) put(seq uint64, f *Frame) {
	for seq-w.base >= uint64(len(w.buf)) {
		w.grow()
	}
	w.buf[(w.pos+int(seq-w.base))%len(w.buf)] = f
	w.held++
}

func (w *seqWindow) grow() {
	nb := make([]*Frame, 2*len(w.buf))
	for i := 0; i < len(w.buf); i++ {
		nb[i] = w.buf[(w.pos+i)%len(w.buf)]
	}
	w.buf = nb
	w.pos = 0
}

// take removes and returns the frame at seq base, or nil if it has not
// arrived; on success the window advances.
func (w *seqWindow) take() *Frame {
	f := w.buf[w.pos]
	if f == nil {
		return nil
	}
	w.buf[w.pos] = nil
	w.pos = (w.pos + 1) % len(w.buf)
	w.base++
	w.held--
	return f
}

// drain returns every still-held frame in Seq order (the leftover path:
// frames whose predecessors never arrived).
func (w *seqWindow) drain() []*Frame {
	if w.held == 0 {
		return nil
	}
	out := make([]*Frame, 0, w.held)
	for i := 0; i < len(w.buf) && len(out) < cap(out); i++ {
		if f := w.buf[(w.pos+i)%len(w.buf)]; f != nil {
			out = append(out, f)
		}
	}
	return out
}

// selector releases frames in dense Seq order on r.out. With fold set
// (single-shard runs, where no sequencers exist) it folds delivery stats
// itself. Frames held at close (their predecessors were never submitted
// — only possible for frames injected out of band) are delivered in Seq
// order carrying the out-of-band error, exactly as the pre-shard engine
// marked every frame still pending at close.
func (r *Run) selector(merged *frameRing, fold bool) {
	defer close(r.out)
	defer close(r.done)
	w := newSeqWindow()
	run := make([]*Frame, stageRun)
	for {
		n := merged.getSome(run)
		if n == 0 {
			break
		}
		for _, f := range run[:n] {
			if fold {
				r.finish(f)
			}
			if f.Seq < w.base {
				// Duplicate of an already-released seq (injected frames
				// only): deliver rather than wedge the window.
				r.emit(f, true)
				continue
			}
			w.put(f.Seq, f)
			for {
				g := w.take()
				if g == nil {
					break
				}
				r.emit(g, false)
			}
		}
		for i := range run[:n] {
			run[i] = nil
		}
	}
	for _, g := range w.drain() {
		r.emit(g, true)
	}
}

// emit counts the frame (and its codewords — a failed batched frame
// charges its full width, not 1) and delivers it. oob marks out-of-band
// frames, preserving any stage error already on the frame.
func (r *Run) emit(f *Frame, oob bool) {
	if oob && f.Err == nil {
		f.Err = fmt.Errorf("pipeline: frame %d delivered out of band", f.Seq)
		f.FailedAt = "reorder"
	}
	cw := int64(f.width())
	sk := &r.p.Sink
	sk.Frames.Add(1)
	sk.Codewords.Add(cw)
	if f.Err != nil {
		sk.Failed.Add(1)
		sk.FailedCodewords.Add(cw)
	}
	r.out <- f
}
