package pipeline

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/gf"
	"repro/internal/rs"
)

// rsBatchPipeline builds encode -> flip -> decode over RS(255,239) with
// deterministic corruption keyed on the global codeword index, so the
// same codeword stream is corrupted identically no matter how many
// codewords each frame packs.
func rsBatchPipeline(t *testing.T, cfg Config, batch int) *Pipeline {
	t.Helper()
	c := rs.Must(gf.MustDefault(8), 255, 239)
	enc, err := NewRSEncode(c)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewRSDecode(c)
	if err != nil {
		t.Fatal(err)
	}
	flip := Func{Label: "flip", F: func(f *Frame) error {
		for w := 0; w < len(f.Data)/c.N; w++ {
			cw := f.Data[w*c.N : (w+1)*c.N]
			key := f.Seq*uint64(batch) + uint64(w)
			for i := 0; i < 8; i++ {
				cw[(int(key)%31+i*31)%c.N] ^= byte(1 + (key+uint64(i))%255)
			}
		}
		return nil
	}}
	cfg.Batch = batch
	return Must(cfg, enc, flip, dec)
}

// TestBatchEquivalence: packing codewords into batched frames must be
// bit-exact with submitting them one per frame — same decoded payloads,
// same per-codeword corrections — across worker counts (run under -race
// this also exercises the sharded sink's handoffs).
func TestBatchEquivalence(t *testing.T) {
	const (
		K     = 239
		batch = 4
		n     = 32 // codewords; 8 batched frames
	)
	rng := rand.New(rand.NewSource(11))
	stream := make([]byte, n*K)
	for i := range stream {
		stream[i] = byte(rng.Intn(256))
	}

	run := func(workers, batchSize int) (data []byte, corrected int) {
		t.Helper()
		p := rsBatchPipeline(t, Config{Workers: workers, Queue: 4}, batchSize)
		r := p.Start()
		var payloads [][]byte
		for off := 0; off < len(stream); off += batchSize * K {
			payloads = append(payloads, stream[off:off+batchSize*K])
		}
		frames, err := r.Drain(payloads)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range frames {
			data = append(data, f.Data...)
			corrected += f.Corrected
		}
		return data, corrected
	}

	wantData, wantCorr := run(1, 1)
	if !bytes.Equal(wantData, stream) {
		t.Fatal("unbatched baseline failed to round-trip")
	}
	for _, workers := range []int{1, 4} {
		got, corr := run(workers, batch)
		if !bytes.Equal(got, wantData) {
			t.Errorf("workers=%d batch=%d: decoded stream differs from unbatched baseline", workers, batch)
		}
		if corr != wantCorr {
			t.Errorf("workers=%d batch=%d: corrected %d symbols, unbatched baseline corrected %d",
				workers, batch, corr, wantCorr)
		}
	}
}

// TestPartialFinalBatch: the engine infers each frame's width from its
// payload, so a submitter whose stream does not divide evenly simply
// sends a final frame with fewer codewords. Width accounting must match
// per frame and in the sink totals.
func TestPartialFinalBatch(t *testing.T) {
	const (
		K     = 239
		batch = 4
	)
	rng := rand.New(rand.NewSource(12))
	stream := make([]byte, (2*batch+3)*K) // 2 full frames + a 3-codeword tail
	for i := range stream {
		stream[i] = byte(rng.Intn(256))
	}
	p := rsBatchPipeline(t, Config{Workers: 2, Queue: 4}, batch)
	r := p.Start()
	var payloads [][]byte
	for off := 0; off < len(stream); off += batch * K {
		end := off + batch*K
		if end > len(stream) {
			end = len(stream)
		}
		payloads = append(payloads, stream[off:end])
	}
	frames, err := r.Drain(payloads)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for _, f := range frames {
		got = append(got, f.Data...)
	}
	if !bytes.Equal(got, stream) {
		t.Fatal("stream with partial final batch failed to round-trip")
	}
	if w := frames[len(frames)-1].Width; w != 3 {
		t.Errorf("final frame Width = %d, want 3", w)
	}
	if cw := p.Sink.Codewords.Load(); cw != 2*batch+3 {
		t.Errorf("Sink.Codewords = %d, want %d", cw, 2*batch+3)
	}
	if fr := p.Sink.Frames.Load(); fr != 3 {
		t.Errorf("Sink.Frames = %d, want 3", fr)
	}
}

// TestBatchLengthValidation: a payload that is not a multiple of the
// codec unit must fail the frame with a clear error instead of
// corrupting the chunk walk.
func TestBatchLengthValidation(t *testing.T) {
	c := rs.Must(gf.MustDefault(8), 255, 239)
	enc, err := NewRSEncode(c)
	if err != nil {
		t.Fatal(err)
	}
	p := Must(Config{Workers: 1, Queue: 2}, enc)
	r := p.Start()
	frames, err := r.Drain([][]byte{make([]byte, c.K+1), {}})
	if err == nil {
		t.Fatal("expected ragged/empty payloads to fail")
	}
	for _, f := range frames {
		if f.Err == nil {
			t.Errorf("frame %d (len %d) passed, want length error", f.Seq, len(f.Data))
		}
	}
}
