package pipeline

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/aes"
	"repro/internal/bch"
	"repro/internal/channel"
	"repro/internal/gf"
	"repro/internal/kernels"
	"repro/internal/rs"
)

// flipStage deterministically corrupts `errs` distinct symbols of each
// frame, derived from the frame's Seq — reproducible with any worker
// count, unlike an RNG channel model.
func flipStage(errs int) Func {
	return Func{Label: fmt.Sprintf("flip(%d)", errs), F: func(f *Frame) error {
		n := len(f.Data)
		if errs > n {
			return fmt.Errorf("flip: %d errors in %d bytes", errs, n)
		}
		stride := n / errs
		for i := 0; i < errs; i++ {
			pos := (int(f.Seq)%stride + i*stride) % n
			f.Data[pos] ^= byte(1 + (f.Seq+uint64(i))%255)
		}
		return nil
	}}
}

func randPayloads(t testing.TB, count, size int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, count)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

// TestPipelineRSOrderedRoundTrip pushes hundreds of frames through
// encode -> corrupt -> decode with 4 workers per stage on one shared
// rs.Code and checks byte-exact round trips, strict submission-order
// delivery and correction accounting. Run under -race this also
// exercises concurrent Encode/Decode on the shared codec.
func TestPipelineRSOrderedRoundTrip(t *testing.T) {
	code := rs.Must(gf.MustDefault(8), 255, 239)
	enc, err := NewRSEncode(code)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewRSDecode(code)
	if err != nil {
		t.Fatal(err)
	}
	const frames, errsPerFrame = 300, 8
	p := Must(Config{Workers: 4, Queue: 8}, enc, flipStage(errsPerFrame), dec)
	payloads := randPayloads(t, frames, code.K, 1)

	got, err := p.Start().Drain(payloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != frames {
		t.Fatalf("got %d frames, want %d", len(got), frames)
	}
	for i, f := range got {
		if f.Seq != uint64(i) {
			t.Fatalf("frame %d delivered out of order (seq %d)", i, f.Seq)
		}
		if !bytes.Equal(f.Data, payloads[i]) {
			t.Fatalf("frame %d: round trip mismatch", i)
		}
		if f.Corrected != errsPerFrame {
			t.Fatalf("frame %d: corrected %d, want %d", i, f.Corrected, errsPerFrame)
		}
	}
	st := p.Stats()
	if n := st[2].Corrected.Load(); n != frames*errsPerFrame {
		t.Errorf("decode stage corrected %d, want %d", n, frames*errsPerFrame)
	}
	if n := st[0].Frames.Load(); n != frames {
		t.Errorf("encode stage frames %d, want %d", n, frames)
	}
	if in, out := st[0].BytesIn.Load(), st[0].BytesOut.Load(); in != frames*int64(code.K) || out != frames*int64(code.N) {
		t.Errorf("encode bytes in/out = %d/%d, want %d/%d", in, out, frames*code.K, frames*code.N)
	}
	if p.Total.Count() != frames {
		t.Errorf("total latency histogram has %d samples, want %d", p.Total.Count(), frames)
	}
}

// TestPipelineSecureInterleavedLink is the full paper-style link: GCM
// seal -> depth-4 interleaved RS encode -> bursty Gilbert-Elliott
// channel -> interleaved decode -> GCM open, four workers per stage.
func TestPipelineSecureInterleavedLink(t *testing.T) {
	code := rs.Must(gf.MustDefault(8), 255, 223)
	iv, err := rs.NewInterleaved(code, 4)
	if err != nil {
		t.Fatal(err)
	}
	cipher, err := aes.NewCipher(bytes.Repeat([]byte{0x42}, 16))
	if err != nil {
		t.Fatal(err)
	}
	gcm := cipher.NewGCM()
	ge, err := channel.NewGilbertElliott(0.002, 0.2, 1e-4, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	corrupt, err := NewCorrupt(ge, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	encF, err := NewRSFrameEncode(iv)
	if err != nil {
		t.Fatal(err)
	}
	decF, err := NewRSFrameDecode(iv)
	if err != nil {
		t.Fatal(err)
	}
	aad := []byte("gfpipe-test")
	p := Must(Config{Workers: 4},
		NewSealAEAD(gcm, aad), encF, corrupt, decF, NewOpenAEAD(gcm, aad))

	const frames = 64
	plainLen := iv.FrameK() - 16 // seal adds the 16-byte tag
	payloads := randPayloads(t, frames, plainLen, 2)
	got, err := p.Start().Drain(payloads)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range got {
		if f.Seq != uint64(i) {
			t.Fatalf("frame %d delivered out of order (seq %d)", i, f.Seq)
		}
		if !bytes.Equal(f.Data, payloads[i]) {
			t.Fatalf("frame %d: secure round trip mismatch", i)
		}
	}
	// The bursty channel at these settings corrupts some symbols across
	// 64 frames with overwhelming probability; the decoder must have
	// actually worked for the GCM tags to verify, so just sanity-check
	// that stats flowed.
	if p.Stats()[3].Frames.Load() != frames {
		t.Errorf("decode stage did not see all frames")
	}
}

// TestPipelineErrorPropagation injects one uncorrectable frame and
// checks that it is delivered with Err set (and FailedAt naming the
// decode stage) in its original position while every other frame
// round-trips.
func TestPipelineErrorPropagation(t *testing.T) {
	code := rs.Must(gf.MustDefault(8), 255, 239)
	enc, _ := NewRSEncode(code)
	dec, _ := NewRSDecode(code)
	const bad = 13 // seq to make uncorrectable
	sabotage := Func{Label: "sabotage", F: func(f *Frame) error {
		if f.Seq == bad {
			for i := 0; i < 2*code.T+1; i++ { // beyond any decoder's reach
				f.Data[i*3] ^= byte(0x5a + i)
			}
		} else {
			f.Data[int(f.Seq)%len(f.Data)] ^= 0xff
		}
		return nil
	}}
	p := Must(Config{Workers: 4, Queue: 4}, enc, sabotage, dec)
	const frames = 40
	payloads := randPayloads(t, frames, code.K, 3)
	got, err := p.Start().Drain(payloads)
	if err == nil {
		t.Fatal("expected an error from the sabotaged frame")
	}
	for i, f := range got {
		if f.Seq != uint64(i) {
			t.Fatalf("frame %d delivered out of order (seq %d)", i, f.Seq)
		}
		if i == bad {
			if f.Err == nil {
				t.Fatalf("sabotaged frame %d has no error", i)
			}
			if f.FailedAt != dec.Name() {
				t.Errorf("frame %d failed at %q, want %q", i, f.FailedAt, dec.Name())
			}
			continue
		}
		if f.Err != nil {
			t.Fatalf("frame %d unexpectedly failed: %v", i, f.Err)
		}
		if !bytes.Equal(f.Data, payloads[i]) {
			t.Fatalf("frame %d: round trip mismatch", i)
		}
	}
	if n := p.Stats()[2].Errors.Load(); n != 1 {
		t.Errorf("decode stage errors = %d, want 1", n)
	}
}

// TestPipelineBackpressure runs with queue depth 1 and a single worker
// per stage — the tightest legal configuration — to verify nothing
// deadlocks and ordering still holds when every channel is contended.
func TestPipelineBackpressure(t *testing.T) {
	code := rs.Must(gf.MustDefault(8), 15, 11)
	enc, _ := NewRSEncode(code)
	dec, _ := NewRSDecode(code)
	p := Must(Config{Workers: 1, Queue: 1}, enc, flipStage(2), dec)
	const frames = 200
	payloads := randPayloads(t, frames, code.K, 4)
	got, err := p.Start().Drain(payloads)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range got {
		if f.Seq != uint64(i) || !bytes.Equal(f.Data, payloads[i]) {
			t.Fatalf("frame %d wrong under backpressure", i)
		}
	}
}

// TestPipelineConcurrentSubmit drives Submit from several goroutines:
// sequence numbers must come back dense and in increasing delivery
// order even though submitters race.
func TestPipelineConcurrentSubmit(t *testing.T) {
	p := Must(Config{Workers: 4, Queue: 4}, Func{Label: "ident", F: func(f *Frame) error { return nil }})
	r := p.Start()
	const submitters, perSubmitter = 4, 50
	var wg sync.WaitGroup
	wg.Add(submitters)
	for s := 0; s < submitters; s++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				r.Submit([]byte{byte(i)})
			}
		}()
	}
	go func() { wg.Wait(); r.Close() }()
	var want uint64
	for f := range r.Out() {
		if f.Seq != want {
			t.Fatalf("delivery seq %d, want %d", f.Seq, want)
		}
		want++
	}
	if want != submitters*perSubmitter {
		t.Fatalf("delivered %d frames, want %d", want, submitters*perSubmitter)
	}
	r.Wait() // must not hang after Out is drained
}

// TestPipelineBCHRoundTrip runs the bit-oriented BCH(31,11,5) codec
// through a forked BSC at m=1 with 4 workers.
func TestPipelineBCHRoundTrip(t *testing.T) {
	code := bch.Must(gf.MustDefault(5), 5)
	bsc, err := channel.NewBSC(0.02, 11)
	if err != nil {
		t.Fatal(err)
	}
	corrupt, err := NewCorrupt(bsc, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := Must(Config{Workers: 4}, NewBCHEncode(code), corrupt, NewBCHDecode(code))
	const frames = 400
	rng := rand.New(rand.NewSource(6))
	payloads := make([][]byte, frames)
	for i := range payloads {
		payloads[i] = make([]byte, code.K)
		for j := range payloads[i] {
			payloads[i][j] = byte(rng.Intn(2))
		}
	}
	got, err := p.Start().Drain(payloads)
	if err != nil {
		// p=0.02 over 31 bits rarely exceeds t=5 errors; tolerate a
		// decode failure only if the pipeline reported it on the frame.
		t.Logf("tolerating channel overload: %v", err)
	}
	for i, f := range got {
		if f.Seq != uint64(i) {
			t.Fatalf("frame %d delivered out of order (seq %d)", i, f.Seq)
		}
		if f.Err == nil && !bytes.Equal(f.Data, payloads[i]) {
			t.Fatalf("frame %d: BCH round trip mismatch", i)
		}
	}
}

// TestMeteredRSDecodeCounts checks the metered decode stage corrects
// like the reference decoder while accumulating GF-processor cycle
// accounting in the stage stats.
func TestMeteredRSDecodeCounts(t *testing.T) {
	code := rs.Must(gf.MustDefault(8), 255, 239)
	enc, _ := NewRSEncode(code)
	dec, err := NewMeteredRSDecode(code, kernels.GFProc)
	if err != nil {
		t.Fatal(err)
	}
	p := Must(Config{Workers: 4}, enc, flipStage(5), dec)
	const frames = 50
	payloads := randPayloads(t, frames, code.K, 8)
	got, err := p.Start().Drain(payloads)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range got {
		if !bytes.Equal(f.Data, payloads[i]) {
			t.Fatalf("frame %d: metered round trip mismatch", i)
		}
		if f.Counts.GFOp == 0 {
			t.Fatalf("frame %d: no GF ops metered", i)
		}
	}
	counts := p.Stats()[2].Counts()
	if counts.GFOp == 0 || counts.Total() == 0 {
		t.Fatalf("stage counts not accumulated: %+v", counts)
	}
	if cyc := counts.Cycles(kernels.GFProc.Profile()); cyc <= 0 {
		t.Fatalf("nonpositive cycle total %d", cyc)
	}
}

// TestCorruptForkDeterminism: the same prototype, seed and worker index
// must reproduce the same corruption; different worker indices must
// diverge.
func TestCorruptForkDeterminism(t *testing.T) {
	bsc, _ := channel.NewBSC(0.05, 1)
	mk := func() *Corrupt {
		c, err := NewCorrupt(bsc, 8, 42)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	payload := func() *Frame { return &Frame{Data: bytes.Repeat([]byte{0xA5}, 512)} }

	a0 := mk().ForWorker(0)
	b0 := mk().ForWorker(0)
	c1 := mk().ForWorker(1)
	fa, fb, fc := payload(), payload(), payload()
	for _, st := range []struct {
		s Stage
		f *Frame
	}{{a0, fa}, {b0, fb}, {c1, fc}} {
		if err := st.s.Process(st.f); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(fa.Data, fb.Data) {
		t.Error("same worker index not deterministic")
	}
	if bytes.Equal(fa.Data, fc.Data) {
		t.Error("different worker indices produced identical corruption")
	}
}

// TestHistQuantiles sanity-checks the power-of-two histogram.
func TestHistQuantiles(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Observe(1000) // 1µs
	}
	h.Observe(1 << 30) // one ~1s outlier
	if h.Count() != 1001 {
		t.Fatalf("count %d", h.Count())
	}
	if q := h.Quantile(0.5); q < 1000 || q > 2048 {
		t.Errorf("p50 %v outside the 1µs bucket", q)
	}
	if q := h.Quantile(0.9999); q < 1<<30 {
		t.Errorf("p99.99 %v missed the outlier", q)
	}
	if h.Max() != 1<<30 {
		t.Errorf("max %v", h.Max())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty pipeline accepted")
	}
	if _, err := New(Config{}, nil); err == nil {
		t.Error("nil stage accepted")
	}
	p := Must(Config{}, Func{Label: "x", F: func(*Frame) error { return nil }})
	if p.Config().Workers < 1 || p.Config().Queue < 1 {
		t.Errorf("defaults not applied: %+v", p.Config())
	}
}
