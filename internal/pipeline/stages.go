package pipeline

// Stage adapters wrapping the repository's codecs.
//
// The Reed-Solomon and corruption stages implement WorkerLocal: every
// pipeline worker gets a private instance holding its own conversion
// scratch and rs decode buffers, and payloads are drawn from the shared
// buffer pool (bufpool.go), so steady-state frame processing allocates
// nothing. The shared prototype instances remain safe for direct
// concurrent Process calls (as tests do) — they just allocate transient
// scratch per call. Corrupt additionally carries a channel-model RNG, so
// worker w transmits through proto.Fork(seed+w) for an independent
// deterministic stream.
//
// Byte-oriented stages (RS, GCM) require fields with m <= 8 — symbols
// travel one per byte, matching rs.Code.EncodeBytes. BCH stages treat
// the payload as one bit per byte (values 0/1).

import (
	"encoding/binary"
	"fmt"

	"repro/internal/aes"
	"repro/internal/bch"
	"repro/internal/channel"
	"repro/internal/gf"
	"repro/internal/kernels"
	"repro/internal/perf"
	"repro/internal/rs"
)

func bytesToElems(b []byte) []gf.Elem {
	out := make([]gf.Elem, len(b))
	bytesToElemsInto(out, b)
	return out
}

func elemsToBytes(e []gf.Elem) []byte {
	out := make([]byte, len(e))
	elemsToBytesInto(out, e)
	return out
}

func bytesToElemsInto(dst []gf.Elem, b []byte) {
	for i, v := range b {
		dst[i] = gf.Elem(v)
	}
}

func elemsToBytesInto(dst []byte, e []gf.Elem) {
	for i, v := range e {
		dst[i] = byte(v)
	}
}

func requireByteField(f *gf.Field, what string) error {
	if f.M() > 8 {
		return fmt.Errorf("pipeline: %s requires a field with m <= 8, got %v", what, f)
	}
	return nil
}

// --- Reed-Solomon ---

// rsScratch is the per-worker working set of the plain RS stages: elem
// staging for both codeword and message plus the decode buffer.
type rsScratch struct {
	msg []gf.Elem
	cw  []gf.Elem
	dec *rs.DecodeBuf
}

func newRSScratch(c *rs.Code) *rsScratch {
	return &rsScratch{
		msg: make([]gf.Elem, c.K),
		cw:  make([]gf.Elem, c.N),
		dec: c.NewDecodeBuf(),
	}
}

// RSEncode encodes a k-byte message frame into an n-byte codeword.
type RSEncode struct {
	Code *rs.Code
	sc   *rsScratch // per-worker; nil on the shared prototype
}

// NewRSEncode wraps the code's systematic encoder as a stage.
func NewRSEncode(c *rs.Code) (*RSEncode, error) {
	if err := requireByteField(c.F, "RSEncode"); err != nil {
		return nil, err
	}
	return &RSEncode{Code: c}, nil
}

// Name implements Stage.
func (s *RSEncode) Name() string { return fmt.Sprintf("rs-encode(%d,%d)", s.Code.N, s.Code.K) }

// ForWorker implements WorkerLocal: each worker encodes through private
// scratch, so the steady state allocates nothing.
func (s *RSEncode) ForWorker(w int) Stage { return &RSEncode{Code: s.Code, sc: newRSScratch(s.Code)} }

// Process implements Stage. The payload may pack several codewords: any
// positive multiple of K encodes as that many back-to-back messages
// (Config.Batch), reusing the same per-worker scratch for every chunk,
// and Frame.Width records the inferred batch width.
func (s *RSEncode) Process(f *Frame) error {
	sc := s.sc
	if sc == nil { // direct use of the shared prototype: stay concurrency-safe
		sc = newRSScratch(s.Code)
	}
	k, n := s.Code.K, s.Code.N
	if len(f.Data) == 0 || len(f.Data)%k != 0 {
		return fmt.Errorf("rs: message length %d, want a positive multiple of %d", len(f.Data), k)
	}
	w := len(f.Data) / k
	pb := getBuf(w * n)
	for i := 0; i < w; i++ {
		bytesToElemsInto(sc.msg, f.Data[i*k:(i+1)*k])
		if _, err := s.Code.EncodeTo(sc.cw, sc.msg); err != nil {
			putBuf(pb)
			return err
		}
		elemsToBytesInto(pb.data[i*n:(i+1)*n], sc.cw)
	}
	f.Width = w
	f.setPooled(pb)
	return nil
}

// RSDecode corrects an n-byte received word into its k-byte message,
// adding the number of corrected symbols to Frame.Corrected.
type RSDecode struct {
	Code *rs.Code
	sc   *rsScratch // per-worker; nil on the shared prototype
}

// NewRSDecode wraps the full decoder datapath as a stage.
func NewRSDecode(c *rs.Code) (*RSDecode, error) {
	if err := requireByteField(c.F, "RSDecode"); err != nil {
		return nil, err
	}
	return &RSDecode{Code: c}, nil
}

// Name implements Stage.
func (s *RSDecode) Name() string { return fmt.Sprintf("rs-decode(%d,%d)", s.Code.N, s.Code.K) }

// ForWorker implements WorkerLocal: each worker decodes through a private
// rs.DecodeBuf, so the steady state allocates nothing.
func (s *RSDecode) ForWorker(w int) Stage { return &RSDecode{Code: s.Code, sc: newRSScratch(s.Code)} }

// Process implements Stage. Like RSEncode it accepts batched payloads:
// any positive multiple of N decodes as that many received words. A
// chunk failing to decode fails the whole frame (delivery accounting
// then charges the frame's full codeword width).
func (s *RSDecode) Process(f *Frame) error {
	sc := s.sc
	if sc == nil {
		sc = newRSScratch(s.Code)
	}
	k, n := s.Code.K, s.Code.N
	if len(f.Data) == 0 || len(f.Data)%n != 0 {
		return fmt.Errorf("rs: received length %d, want a positive multiple of %d", len(f.Data), n)
	}
	w := len(f.Data) / n
	pb := getBuf(w * k)
	for i := 0; i < w; i++ {
		bytesToElemsInto(sc.cw, f.Data[i*n:(i+1)*n])
		res, err := s.Code.DecodeTo(sc.dec, sc.cw)
		if err != nil {
			putBuf(pb)
			return err
		}
		f.Corrected += res.NumErrors
		if res.NumErrors > f.CorrectedMax {
			f.CorrectedMax = res.NumErrors
		}
		elemsToBytesInto(pb.data[i*k:(i+1)*k], res.Message)
	}
	f.Width = w
	f.setPooled(pb)
	return nil
}

// rsFrameScratch is the per-worker working set of the interleaved RS
// stages.
type rsFrameScratch struct {
	msg   []gf.Elem
	frame []gf.Elem
	fb    *rs.FrameBuf
}

func newRSFrameScratch(iv *rs.Interleaved) *rsFrameScratch {
	return &rsFrameScratch{
		msg:   make([]gf.Elem, iv.FrameK()),
		frame: make([]gf.Elem, iv.FrameN()),
		fb:    iv.NewFrameBuf(),
	}
}

// RSFrameEncode encodes an I*k-byte message into a depth-I interleaved
// I*n-byte frame (burst tolerance I*t symbols).
type RSFrameEncode struct {
	IV *rs.Interleaved
	sc *rsFrameScratch // per-worker; nil on the shared prototype
}

// NewRSFrameEncode wraps the interleaved encoder as a stage.
func NewRSFrameEncode(iv *rs.Interleaved) (*RSFrameEncode, error) {
	if err := requireByteField(iv.Code.F, "RSFrameEncode"); err != nil {
		return nil, err
	}
	return &RSFrameEncode{IV: iv}, nil
}

// Name implements Stage.
func (s *RSFrameEncode) Name() string {
	return fmt.Sprintf("rsx%d-encode(%d,%d)", s.IV.Depth, s.IV.Code.N, s.IV.Code.K)
}

// ForWorker implements WorkerLocal.
func (s *RSFrameEncode) ForWorker(w int) Stage {
	return &RSFrameEncode{IV: s.IV, sc: newRSFrameScratch(s.IV)}
}

// Process implements Stage. The payload may batch several interleaved
// frames: any positive multiple of FrameK encodes chunk by chunk through
// the same per-worker scratch. Frame.Width counts codewords (chunks x
// Depth).
func (s *RSFrameEncode) Process(f *Frame) error {
	sc := s.sc
	if sc == nil {
		sc = newRSFrameScratch(s.IV)
	}
	fk, fn := s.IV.FrameK(), s.IV.FrameN()
	if len(f.Data) == 0 || len(f.Data)%fk != 0 {
		return fmt.Errorf("rs: frame message length %d, want a positive multiple of %d", len(f.Data), fk)
	}
	w := len(f.Data) / fk
	pb := getBuf(w * fn)
	for i := 0; i < w; i++ {
		bytesToElemsInto(sc.msg, f.Data[i*fk:(i+1)*fk])
		if _, err := s.IV.EncodeTo(sc.frame, sc.msg, sc.fb); err != nil {
			putBuf(pb)
			return err
		}
		elemsToBytesInto(pb.data[i*fn:(i+1)*fn], sc.frame)
	}
	f.Width = w * s.IV.Depth
	f.setPooled(pb)
	return nil
}

// RSFrameDecode deinterleaves and decodes an I*n-byte frame back to its
// I*k-byte message. Beyond Frame.Corrected it also raises
// Frame.CorrectedMax to the worst per-codeword correction count — the
// margin signal adaptive controllers feed on.
type RSFrameDecode struct {
	IV *rs.Interleaved
	sc *rsFrameScratch // per-worker; nil on the shared prototype
}

// NewRSFrameDecode wraps the interleaved decoder as a stage.
func NewRSFrameDecode(iv *rs.Interleaved) (*RSFrameDecode, error) {
	if err := requireByteField(iv.Code.F, "RSFrameDecode"); err != nil {
		return nil, err
	}
	return &RSFrameDecode{IV: iv}, nil
}

// Name implements Stage.
func (s *RSFrameDecode) Name() string {
	return fmt.Sprintf("rsx%d-decode(%d,%d)", s.IV.Depth, s.IV.Code.N, s.IV.Code.K)
}

// ForWorker implements WorkerLocal.
func (s *RSFrameDecode) ForWorker(w int) Stage {
	return &RSFrameDecode{IV: s.IV, sc: newRSFrameScratch(s.IV)}
}

// Process implements Stage. Accepts batched payloads (any positive
// multiple of FrameN); CorrectedMax is the worst per-codeword correction
// across every chunk in the batch.
func (s *RSFrameDecode) Process(f *Frame) error {
	sc := s.sc
	if sc == nil {
		sc = newRSFrameScratch(s.IV)
	}
	fk, fn := s.IV.FrameK(), s.IV.FrameN()
	if len(f.Data) == 0 || len(f.Data)%fn != 0 {
		return fmt.Errorf("rs: frame length %d, want a positive multiple of %d", len(f.Data), fn)
	}
	w := len(f.Data) / fn
	pb := getBuf(w * fk)
	for i := 0; i < w; i++ {
		bytesToElemsInto(sc.frame, f.Data[i*fn:(i+1)*fn])
		st, err := s.IV.DecodeWithStatsTo(sc.msg, sc.frame, sc.fb)
		if err != nil {
			putBuf(pb)
			return err
		}
		f.Corrected += st.Total
		if st.Max > f.CorrectedMax {
			f.CorrectedMax = st.Max
		}
		elemsToBytesInto(pb.data[i*fk:(i+1)*fk], sc.msg)
	}
	f.Width = w * s.IV.Depth
	f.setPooled(pb)
	return nil
}

// MeteredRSDecode is RSDecode through the metered kernel datapath of
// internal/kernels: the same syndrome/BMA/Chien/Forney pipeline, but
// each frame also charges its operation counts to Frame.Counts under the
// chosen machine model, so stage stats accumulate the cycle accounting
// of the paper's Section 3.3.1 methodology across the whole run.
type MeteredRSDecode struct {
	Code *rs.Code
	Mach kernels.Machine
}

// NewMeteredRSDecode wraps the metered decoder kernels as a stage.
func NewMeteredRSDecode(c *rs.Code, mach kernels.Machine) (*MeteredRSDecode, error) {
	if err := requireByteField(c.F, "MeteredRSDecode"); err != nil {
		return nil, err
	}
	return &MeteredRSDecode{Code: c, Mach: mach}, nil
}

// Name implements Stage.
func (s *MeteredRSDecode) Name() string {
	return fmt.Sprintf("rs-decode-metered(%d,%d)", s.Code.N, s.Code.K)
}

// Process implements Stage.
func (s *MeteredRSDecode) Process(f *Frame) error {
	c := s.Code
	recv := bytesToElems(f.Data)
	if len(recv) != c.N {
		return fmt.Errorf("pipeline: received length %d, want %d", len(recv), c.N)
	}
	var m perf.Meter
	defer func() { f.Counts.Add(m.Counts) }()
	synd := kernels.SyndromesRS(c, recv, s.Mach, &m)
	if rs.AllZero(synd) {
		f.Data = f.Data[:c.K]
		return nil
	}
	lambda := kernels.BerlekampMassey(c.F, synd, s.Mach, &m)
	if lambda.Degree() > c.T {
		return fmt.Errorf("pipeline: locator degree %d exceeds t=%d (uncorrectable)", lambda.Degree(), c.T)
	}
	positions := kernels.ChienSearch(c.F, lambda, c.N, s.Mach, &m)
	if len(positions) != lambda.Degree() {
		return fmt.Errorf("pipeline: Chien found %d roots for degree-%d locator (uncorrectable)",
			len(positions), lambda.Degree())
	}
	vals, err := kernels.Forney(c, synd, lambda, positions, s.Mach, &m)
	if err != nil {
		return err
	}
	for i, p := range positions {
		recv[p] ^= vals[i]
	}
	if !rs.AllZero(c.Syndromes(recv)) {
		return fmt.Errorf("pipeline: correction verification failed (uncorrectable word)")
	}
	f.Corrected += len(positions)
	f.Data = elemsToBytes(recv[:c.K])
	return nil
}

// --- BCH ---

// BCHEncode encodes k message bits (one bit per byte, values 0/1) into
// an n-bit codeword.
type BCHEncode struct{ Code *bch.Code }

// NewBCHEncode wraps the BCH encoder as a stage.
func NewBCHEncode(c *bch.Code) *BCHEncode { return &BCHEncode{Code: c} }

// Name implements Stage.
func (s *BCHEncode) Name() string {
	return fmt.Sprintf("bch-encode(%d,%d,%d)", s.Code.N, s.Code.K, s.Code.T)
}

// Process implements Stage. Batched payloads (a positive multiple of K
// bits) encode chunk by chunk.
func (s *BCHEncode) Process(f *Frame) error {
	k := s.Code.K
	if len(f.Data) == 0 || len(f.Data)%k != 0 {
		return fmt.Errorf("bch: message length %d, want a positive multiple of %d", len(f.Data), k)
	}
	w := len(f.Data) / k
	if w == 1 {
		out, err := s.Code.Encode(f.Data)
		if err != nil {
			return err
		}
		f.Data = out
		f.Width = 1
		return nil
	}
	out := make([]byte, 0, w*s.Code.N)
	for i := 0; i < w; i++ {
		cw, err := s.Code.Encode(f.Data[i*k : (i+1)*k])
		if err != nil {
			return err
		}
		out = append(out, cw...)
	}
	f.Data = out
	f.Width = w
	return nil
}

// BCHDecode corrects an n-bit received word into its k message bits.
type BCHDecode struct{ Code *bch.Code }

// NewBCHDecode wraps the BCH decoder as a stage.
func NewBCHDecode(c *bch.Code) *BCHDecode { return &BCHDecode{Code: c} }

// Name implements Stage.
func (s *BCHDecode) Name() string {
	return fmt.Sprintf("bch-decode(%d,%d,%d)", s.Code.N, s.Code.K, s.Code.T)
}

// Process implements Stage. Batched payloads (a positive multiple of N
// bits) decode chunk by chunk; one uncorrectable chunk fails the frame.
func (s *BCHDecode) Process(f *Frame) error {
	n := s.Code.N
	if len(f.Data) == 0 || len(f.Data)%n != 0 {
		return fmt.Errorf("bch: received length %d, want a positive multiple of %d", len(f.Data), n)
	}
	w := len(f.Data) / n
	if w == 1 {
		res, err := s.Code.Decode(f.Data)
		if err != nil {
			return err
		}
		f.Corrected += res.NumErrors
		f.Data = res.Message
		f.Width = 1
		return nil
	}
	out := make([]byte, 0, w*s.Code.K)
	for i := 0; i < w; i++ {
		res, err := s.Code.Decode(f.Data[i*n : (i+1)*n])
		if err != nil {
			return err
		}
		f.Corrected += res.NumErrors
		out = append(out, res.Message...)
	}
	f.Data = out
	f.Width = w
	return nil
}

// --- AES-GCM ---

// gcmNonce derives the 12-byte per-frame nonce from the sequence number:
// a fixed 4-byte label plus the big-endian Seq. Unique per frame within
// a run, and reconstructible on the open side without shipping it in the
// payload.
func gcmNonce(seq uint64) []byte {
	n := make([]byte, 12)
	copy(n, "gfp\x00")
	binary.BigEndian.PutUint64(n[4:], seq)
	return n
}

// SealAEAD encrypts and authenticates the payload with AES-GCM,
// replacing it with ciphertext || 16-byte tag (16 bytes longer). The
// nonce is derived from Frame.Seq.
type SealAEAD struct {
	G *aes.GCM
	// AAD is bound into every frame's tag (may be nil).
	AAD []byte
}

// NewSealAEAD wraps GCM sealing as a stage.
func NewSealAEAD(g *aes.GCM, aad []byte) *SealAEAD { return &SealAEAD{G: g, AAD: aad} }

// Name implements Stage.
func (s *SealAEAD) Name() string { return "gcm-seal" }

// Process implements Stage.
func (s *SealAEAD) Process(f *Frame) error {
	out, err := s.G.Seal(gcmNonce(f.Seq), f.Data, s.AAD)
	if err != nil {
		return err
	}
	f.Data = out
	return nil
}

// OpenAEAD verifies and decrypts a SealAEAD payload, failing the frame
// when authentication fails (e.g. residual errors survived decoding).
type OpenAEAD struct {
	G   *aes.GCM
	AAD []byte
}

// NewOpenAEAD wraps GCM opening as a stage.
func NewOpenAEAD(g *aes.GCM, aad []byte) *OpenAEAD { return &OpenAEAD{G: g, AAD: aad} }

// Name implements Stage.
func (s *OpenAEAD) Name() string { return "gcm-open" }

// Process implements Stage.
func (s *OpenAEAD) Process(f *Frame) error {
	pt, err := s.G.Open(gcmNonce(f.Seq), f.Data, s.AAD)
	if err != nil {
		return err
	}
	f.Data = pt
	return nil
}

// --- Channel corruption (loopback testing) ---

// Corrupt pushes each payload through a channel model, serializing every
// byte as an m-bit symbol (m=8 for RS symbol streams, m=1 for BCH bit
// streams). It implements WorkerLocal: worker w transmits through
// proto.Fork(seed+w), so runs are deterministic for a fixed worker count
// and every worker's error process is independent.
type Corrupt struct {
	proto channel.Forker
	ch    channel.Channel // this instance's private channel
	m     int
	seed  int64
	sc    *corruptScratch // per-worker; nil on the shared prototype
}

// corruptScratch holds a worker's symbol staging and serialized-bit
// buffers. Frame sizes can vary across a run, so transmit grows the
// buffers as needed instead of fixing their size at construction.
type corruptScratch struct {
	in, out []gf.Elem
	bits    []byte
}

// transmit pushes the frame payload through ch and installs a pooled
// result buffer, reusing the scratch across calls.
func (sc *corruptScratch) transmit(f *Frame, ch channel.Channel, m int) {
	n := len(f.Data)
	if cap(sc.in) < n {
		sc.in = make([]gf.Elem, n)
		sc.out = make([]gf.Elem, n)
	}
	if cap(sc.bits) < n*m {
		sc.bits = make([]byte, n*m)
	}
	in, out := sc.in[:n], sc.out[:n]
	bytesToElemsInto(in, f.Data)
	channel.TransmitSymbolsTo(out, ch, in, m, sc.bits)
	pb := getBuf(n)
	elemsToBytesInto(pb.data, out)
	f.setPooled(pb)
}

// NewCorrupt builds the corruption stage from a forkable channel
// prototype and the per-symbol bit width m (1..8).
func NewCorrupt(proto channel.Forker, m int, seed int64) (*Corrupt, error) {
	if m < 1 || m > 8 {
		return nil, fmt.Errorf("pipeline: symbol width %d outside [1,8]", m)
	}
	return &Corrupt{proto: proto, m: m, seed: seed}, nil
}

// Name implements Stage.
func (s *Corrupt) Name() string { return "channel[" + s.proto.Description() + "]" }

// ForWorker implements WorkerLocal.
func (s *Corrupt) ForWorker(w int) Stage {
	return &Corrupt{
		proto: s.proto, ch: s.proto.Fork(s.seed + int64(w)),
		m: s.m, seed: s.seed, sc: new(corruptScratch),
	}
}

// Process implements Stage.
func (s *Corrupt) Process(f *Frame) error {
	ch := s.ch
	if ch == nil {
		// Not running under a pipeline worker (e.g. direct use in a test):
		// fall back to a single fork.
		s.ch = s.proto.Fork(s.seed)
		ch = s.ch
	}
	sc := s.sc
	if sc == nil {
		sc = new(corruptScratch)
	}
	sc.transmit(f, ch, s.m)
	return nil
}

// CorruptTV corrupts frames through a time-varying channel schedule,
// deriving each frame's channel conditions and RNG stream from Frame.Seq
// alone (channel.TimeVarying.FrameChannel). Unlike Corrupt, the result is
// bit-identical for any worker count and interleaving — the determinism
// the adaptive link controller's reproducibility guarantee rests on. The
// shared instance holds no mutable state and is safe across workers; it
// implements WorkerLocal only to give each worker private conversion
// scratch.
type CorruptTV struct {
	TV *channel.TimeVarying
	m  int
	sc *corruptScratch // per-worker; nil on the shared prototype
}

// NewCorruptTV builds the schedule-driven corruption stage with per-symbol
// bit width m (1..8).
func NewCorruptTV(tv *channel.TimeVarying, m int) (*CorruptTV, error) {
	if m < 1 || m > 8 {
		return nil, fmt.Errorf("pipeline: symbol width %d outside [1,8]", m)
	}
	return &CorruptTV{TV: tv, m: m}, nil
}

// Name implements Stage.
func (s *CorruptTV) Name() string { return "channel[" + s.TV.Description() + "]" }

// ForWorker implements WorkerLocal.
func (s *CorruptTV) ForWorker(w int) Stage {
	return &CorruptTV{TV: s.TV, m: s.m, sc: new(corruptScratch)}
}

// Process implements Stage.
func (s *CorruptTV) Process(f *Frame) error {
	ch := s.TV.FrameChannel(f.Seq)
	sc := s.sc
	if sc == nil {
		sc = new(corruptScratch)
	}
	sc.transmit(f, ch, s.m)
	return nil
}
