package pipeline

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/obs"
	"repro/internal/perf"
)

// RegisterMetrics registers every stage's live stats with reg as
// read-through instruments under the gfp_pipeline_* and gfp_model_*
// names, plus the tracer's queue-wait/service histograms when tracing
// is enabled. Call once per pipeline per registry; stages sharing a
// name are disambiguated with a "#index" suffix on the stage label.
func (p *Pipeline) RegisterMetrics(reg *obs.Registry) {
	seen := make(map[string]bool)
	labels := make([]obs.Label, len(p.stats))
	for i, st := range p.stats {
		name := st.Name
		if seen[name] {
			name = fmt.Sprintf("%s#%d", name, i)
		}
		seen[st.Name] = true
		labels[i] = obs.L("stage", name)
	}

	for i, st := range p.stats {
		st := st
		l := labels[i]
		reg.CounterFunc("gfp_pipeline_stage_frames_total",
			"Frames processed by the stage (error-skipped frames excluded).",
			st.Frames.Load, l)
		reg.CounterFunc("gfp_pipeline_stage_codewords_total",
			"Codewords processed by the stage (>= frames when frames are batched).",
			st.Codewords.Load, l)
		reg.CounterFunc("gfp_pipeline_stage_errors_total",
			"Frames the stage failed.", st.Errors.Load, l)
		reg.CounterFunc("gfp_pipeline_stage_bytes_in_total",
			"Payload bytes entering the stage.", st.BytesIn.Load, l)
		reg.CounterFunc("gfp_pipeline_stage_bytes_out_total",
			"Payload bytes leaving the stage.", st.BytesOut.Load, l)
		reg.CounterFunc("gfp_pipeline_stage_corrected_total",
			"Symbol/bit errors corrected by the stage (decode stages).",
			st.Corrected.Load, l)
		reg.HistogramFunc("gfp_pipeline_stage_latency_seconds",
			"Wall-clock Process latency per frame.", &st.Latency, l)

		// Cycle-model accounting from metered stages: per-class op totals
		// and their price on the paper's GF-processor timing — the
		// software analogue of the paper's Table 5 per-kernel counts.
		for _, cl := range []struct {
			class string
			fn    func(perf.Counts) int64
		}{
			{"ld", func(c perf.Counts) int64 { return c.LD }},
			{"st", func(c perf.Counts) int64 { return c.ST }},
			{"alu", func(c perf.Counts) int64 { return c.ALU }},
			{"mul", func(c perf.Counts) int64 { return c.Mul }},
			{"branch", func(c perf.Counts) int64 { return c.Branch }},
			{"branch_nt", func(c perf.Counts) int64 { return c.BranchNT }},
			{"gf_op", func(c perf.Counts) int64 { return c.GFOp }},
			{"gf32", func(c perf.Counts) int64 { return c.GF32 }},
		} {
			fn := cl.fn
			reg.CounterFunc("gfp_model_ops_total",
				"Modeled operations executed by metered stages, by instruction class.",
				func() int64 { return fn(st.Counts()) }, l, obs.L("class", cl.class))
		}
		gfProf := perf.GFProcessor()
		reg.CounterFunc("gfp_model_cycles_total",
			"Modeled cycles of metered stages priced on the paper's GF-processor timing.",
			func() int64 { return st.Counts().Cycles(gfProf) },
			l, obs.L("machine", "gfproc"))
	}

	reg.HistogramFunc("gfp_pipeline_latency_seconds",
		"End-to-end submit-to-delivery frame latency.", &p.Total)

	reg.CounterFunc("gfp_pipeline_delivered_frames_total",
		"Frames delivered by the reorder sink (with or without error).",
		p.Sink.Frames.Load)
	reg.CounterFunc("gfp_pipeline_delivered_codewords_total",
		"Codewords delivered by the reorder sink (batch-aware frame widths).",
		p.Sink.Codewords.Load)
	reg.CounterFunc("gfp_pipeline_failed_frames_total",
		"Frames delivered with an error set.", p.Sink.Failed.Load)
	reg.CounterFunc("gfp_pipeline_failed_codewords_total",
		"Codewords in frames delivered with an error set (a failed batched frame charges its full width).",
		p.Sink.FailedCodewords.Load)

	if t := p.tracer; t != nil {
		for i := range p.stats {
			reg.HistogramFunc("gfp_pipeline_stage_queue_wait_seconds",
				"Sampled time frames spent ready-but-unserved before the stage.",
				t.QueueWait(i), labels[i])
			reg.HistogramFunc("gfp_pipeline_stage_service_seconds",
				"Sampled stage Process time from lifecycle traces.",
				t.Service(i), labels[i])
		}
		reg.CounterFunc("gfp_pipeline_traced_frames_total",
			"Sampled frame lifecycles completed.", t.Traced)
		reg.GaugeFunc("gfp_pipeline_trace_sample_every",
			"Trace sampling period (1 = every frame).",
			func() float64 { return float64(t.SampleEvery()) })
	}
}

// RegisterGFKernelMetrics registers the process-wide gf bulk-kernel
// tier counters — one series per registered tier (scalar, packed,
// table, bitsliced, clmul), labeled with the tier's registry name —
// plus the active kernel-tier override as a gauge. Call at most once
// per registry.
func RegisterGFKernelMetrics(reg *obs.Registry) {
	for i, tier := range gf.TierNames() {
		id := i
		reg.CounterFunc("gfp_gf_kernel_calls_total",
			"Bulk GF kernel invocations by implementation tier.",
			func() int64 { return gf.KernelCalls()[id] }, obs.L("tier", tier))
	}
	reg.GaugeFunc("gfp_gf_kernel_tier_forced",
		"Process-wide forced kernel tier as a TierID (-1 = auto/calibrated).",
		func() float64 {
			if t := gf.ForcedKernelTier(); t != gf.TierAuto {
				return float64(t)
			}
			return -1
		})
}
