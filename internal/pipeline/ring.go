package pipeline

import "sync"

// stageRun is the largest run of frames a stage worker dequeues (and
// re-enqueues downstream) per ring synchronization. Under load a worker
// pays one lock round-trip per run instead of per frame; under light
// load getSome returns whatever is queued, so latency is unaffected.
const stageRun = 8

// frameSink is the downstream end of a stage's handoff: either the next
// stage's input ring or the sharded reorder sink.
type frameSink interface {
	// putAll enqueues every frame, blocking on backpressure.
	putAll(fs []*Frame)
	// close marks the producer side done. Called exactly once, after
	// every producer has returned.
	close()
}

// frameRing is the slab handoff between stages: a bounded ring of frame
// pointers guarded by one mutex with bulk enqueue/dequeue, replacing the
// per-frame channel send of the original engine. Producers block while
// the ring is full (backpressure), consumers while it is empty; close
// wakes everyone and lets consumers drain the remainder.
type frameRing struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	buf      []*Frame
	head     int // next dequeue slot
	n        int // occupied slots
	closed   bool
}

func newFrameRing(capacity int) *frameRing {
	if capacity < 1 {
		capacity = 1
	}
	r := &frameRing{buf: make([]*Frame, capacity)}
	r.notEmpty.L = &r.mu
	r.notFull.L = &r.mu
	return r
}

// put enqueues one frame, blocking while the ring is full. Calling put
// after close is a produce-after-close bug and panics.
func (r *frameRing) put(f *Frame) {
	r.mu.Lock()
	for r.n == len(r.buf) && !r.closed {
		r.notFull.Wait()
	}
	if r.closed {
		r.mu.Unlock()
		panic("pipeline: put on closed ring")
	}
	r.buf[(r.head+r.n)%len(r.buf)] = f
	r.n++
	r.mu.Unlock()
	r.notEmpty.Signal()
}

// putAll enqueues every frame in order, blocking as needed. One lock
// round-trip moves up to a full ring of frames.
func (r *frameRing) putAll(fs []*Frame) {
	for len(fs) > 0 {
		r.mu.Lock()
		for r.n == len(r.buf) && !r.closed {
			r.notFull.Wait()
		}
		if r.closed {
			r.mu.Unlock()
			panic("pipeline: putAll on closed ring")
		}
		k := len(r.buf) - r.n
		if k > len(fs) {
			k = len(fs)
		}
		for i := 0; i < k; i++ {
			r.buf[(r.head+r.n+i)%len(r.buf)] = fs[i]
		}
		r.n += k
		r.mu.Unlock()
		if k == 1 {
			r.notEmpty.Signal()
		} else {
			r.notEmpty.Broadcast()
		}
		fs = fs[k:]
	}
}

// getSome dequeues up to len(dst) frames, blocking while the ring is
// empty and open. It returns 0 only once the ring is closed and fully
// drained — the consumer's termination signal.
func (r *frameRing) getSome(dst []*Frame) int {
	r.mu.Lock()
	for r.n == 0 && !r.closed {
		r.notEmpty.Wait()
	}
	k := r.n
	if k > len(dst) {
		k = len(dst)
	}
	for i := 0; i < k; i++ {
		dst[i] = r.buf[r.head]
		r.buf[r.head] = nil
		r.head++
		if r.head == len(r.buf) {
			r.head = 0
		}
	}
	r.n -= k
	r.mu.Unlock()
	if k > 0 {
		r.notFull.Broadcast()
	}
	return k
}

func (r *frameRing) close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.notEmpty.Broadcast()
	r.notFull.Broadcast()
}
