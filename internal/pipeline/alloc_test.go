package pipeline

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/channel"
	"repro/internal/gf"
	"repro/internal/rs"
)

// buildLinkStages assembles the per-worker instances of a full
// encode -> corrupt -> decode chain, as startStage would for worker 0.
func buildLinkStages(t testing.TB) (enc, cor, dec Stage, payload []byte) {
	t.Helper()
	c := rs.Must(gf.MustDefault(8), 255, 223)
	e, err := NewRSEncode(c)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewRSDecode(c)
	if err != nil {
		t.Fatal(err)
	}
	bsc, err := channel.NewBSC(0.002, 1)
	if err != nil {
		t.Fatal(err)
	}
	co, err := NewCorrupt(bsc, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	payload = make([]byte, c.K)
	rng := rand.New(rand.NewSource(5))
	for i := range payload {
		payload[i] = byte(rng.Intn(256))
	}
	return e.ForWorker(0), co.ForWorker(0), d.ForWorker(0), payload
}

// TestLinkStagesZeroAlloc is the tentpole's pipeline acceptance check:
// once a worker's stage instances are warm, pushing a frame through
// encode -> corrupt -> decode allocates nothing — payload buffers cycle
// through the pool and all codec scratch lives on the worker instances.
func TestLinkStagesZeroAlloc(t *testing.T) {
	enc, cor, dec, payload := buildLinkStages(t)
	f := new(Frame) // reused: the frame itself is pooled by callers in practice
	run := func() {
		*f = Frame{Data: payload}
		if err := enc.Process(f); err != nil {
			t.Fatal(err)
		}
		if err := cor.Process(f); err != nil {
			t.Fatal(err)
		}
		if err := dec.Process(f); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f.Data, payload) {
			t.Fatal("roundtrip mismatch")
		}
		f.Recycle()
	}
	run() // warm pool and scratch
	if raceEnabled {
		run()
		t.Skip("alloc counting is unreliable under -race (pool randomization)")
	}
	if avg := testing.AllocsPerRun(200, run); avg != 0 {
		t.Fatalf("steady-state link allocates %.1f times per frame, want 0", avg)
	}
}

// TestFrameLinkStagesZeroAlloc covers the interleaved pair the same way.
func TestFrameLinkStagesZeroAlloc(t *testing.T) {
	c := rs.Must(gf.MustDefault(8), 255, 223)
	iv, err := rs.NewInterleaved(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewRSFrameEncode(iv)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewRSFrameDecode(iv)
	if err != nil {
		t.Fatal(err)
	}
	enc, dec := e.ForWorker(0), d.ForWorker(0)
	payload := make([]byte, iv.FrameK())
	rng := rand.New(rand.NewSource(6))
	for i := range payload {
		payload[i] = byte(rng.Intn(256))
	}
	f := new(Frame)
	run := func() {
		*f = Frame{Data: payload}
		if err := enc.Process(f); err != nil {
			t.Fatal(err)
		}
		// Burst hitting consecutive frame symbols: spread across codewords
		// by the interleaver, well within capability.
		for i := 100; i < 100+3*iv.Depth; i++ {
			f.Data[i] ^= 0x5a
		}
		if err := dec.Process(f); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f.Data, payload) {
			t.Fatal("roundtrip mismatch")
		}
		f.Recycle()
	}
	run()
	if raceEnabled {
		run()
		t.Skip("alloc counting is unreliable under -race (pool randomization)")
	}
	if avg := testing.AllocsPerRun(200, run); avg != 0 {
		t.Fatalf("steady-state frame link allocates %.1f times per frame, want 0", avg)
	}
}

// TestSubmitDeliverZeroAlloc walks the whole engine — Submit, ring
// handoff, stage workers, reorder sink, delivery — and requires the
// steady state to allocate nothing per frame. Regression: Submit used to
// build a fresh &Frame{} per call (192 B/frame) instead of drawing from
// framePool; the 0.5 threshold makes any reintroduced 1-alloc-per-frame
// path fail, while tolerating a stray GC emptying a pool mid-run.
func TestSubmitDeliverZeroAlloc(t *testing.T) {
	c := rs.Must(gf.MustDefault(8), 255, 223)
	e, err := NewRSEncode(c)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewRSDecode(c)
	if err != nil {
		t.Fatal(err)
	}
	p := Must(Config{Workers: 1, Queue: 4}, e, d)
	r := p.Start()
	payload := make([]byte, 4*c.K)
	rng := rand.New(rand.NewSource(7))
	for i := range payload {
		payload[i] = byte(rng.Intn(256))
	}
	delivered := make(chan struct{})
	go func() {
		for f := range r.Out() {
			ok := f.Err == nil
			f.Free()
			if ok {
				delivered <- struct{}{}
			}
		}
		close(delivered)
	}()
	run := func() {
		r.Submit(payload)
		if _, ok := <-delivered; !ok {
			t.Fatal("frame failed in pipeline")
		}
	}
	for i := 0; i < 8; i++ {
		run() // warm frame pool, payload pool and codec scratch
	}
	if raceEnabled {
		r.Close()
		t.Skip("alloc counting is unreliable under -race (pool randomization)")
	}
	avg := testing.AllocsPerRun(200, run)
	r.Close()
	if avg >= 0.5 {
		t.Fatalf("steady-state submit->deliver allocates %.2f times per frame, want 0", avg)
	}
}

// TestRecycleSafety pins the pool ownership contract: Recycle is a no-op
// without a pooled buffer, idempotent with one, and a recycled buffer is
// handed back out by the pool.
func TestRecycleSafety(t *testing.T) {
	f := &Frame{Data: []byte{1, 2, 3}}
	f.Recycle() // no pooled buffer: must not touch Data
	if f.Data == nil {
		t.Fatal("Recycle cleared caller-owned Data")
	}
	pb := getBuf(16)
	f.setPooled(pb)
	if len(f.Data) != 16 {
		t.Fatalf("Data len = %d, want 16", len(f.Data))
	}
	f.Recycle()
	if f.Data != nil || f.pooled != nil {
		t.Fatal("Recycle left pooled state behind")
	}
	f.Recycle() // idempotent
}

// BenchmarkLinkStages measures the warm single-worker chain; allocs/op
// is the headline number (must be 0).
func BenchmarkLinkStages(b *testing.B) {
	enc, cor, dec, payload := buildLinkStages(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	f := new(Frame)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		*f = Frame{Data: payload}
		if err := enc.Process(f); err != nil {
			b.Fatal(err)
		}
		if err := cor.Process(f); err != nil {
			b.Fatal(err)
		}
		if err := dec.Process(f); err != nil {
			b.Fatal(err)
		}
		f.Recycle()
	}
}
