//go:build race

package pipeline

// raceEnabled reports whether the race detector is active. Race
// instrumentation randomizes sync.Pool retention, so allocation-count
// assertions are skipped under -race (the functional checks still run).
const raceEnabled = true
