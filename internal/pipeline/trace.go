package pipeline

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/perf"
)

// Frame-lifecycle tracing: a sampled subset of frames carries a compact
// per-stage timestamp record (enqueue/start/finish, nanoseconds on the
// tracer's monotonic clock) through the pipeline. At the reorder sink
// the record is folded into per-stage queue-wait and service-time
// histograms and — if the frame is among the slowest seen — retained for
// TraceDump tail forensics, then recycled to a pool. Unsampled frames
// pay one atomic increment and zero allocations.

// TraceConfig sizes a pipeline tracer.
type TraceConfig struct {
	// SampleEvery traces one in every SampleEvery submitted frames.
	// 1 traces every frame; <= 0 defaults to 64.
	SampleEvery int
	// Slowest is how many of the slowest traced frames Dump retains.
	// <= 0 defaults to 16.
	Slowest int
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 64
	}
	if c.Slowest <= 0 {
		c.Slowest = 16
	}
	return c
}

// span is one stage's lifecycle timestamps, nanoseconds since the
// tracer's base time; zero means the event was never stamped.
type span struct {
	enq   int64 // frame became ready for this stage's queue
	start int64 // a worker began Process
	fin   int64 // Process returned
}

// frameTrace rides Frame.trace for sampled frames. Pool-recycled.
type frameTrace struct {
	spans []span
}

// Tracer samples frame lifecycles for one pipeline. All methods are
// safe for concurrent use.
type Tracer struct {
	every  uint64
	base   time.Time
	stages []string

	tick   atomic.Uint64
	traced atomic.Int64

	queueWait []perf.Hist // per stage: enq -> start
	service   []perf.Hist // per stage: start -> fin

	pool sync.Pool

	mu   sync.Mutex
	slow []FrameTrace // up to slowCap slowest completed traces
	cap  int
}

// EnableTracing attaches a tracer to the pipeline. It must be called
// before Start; runs started earlier are not traced. It returns the
// tracer for metric registration and dumps (also available via Tracer).
func (p *Pipeline) EnableTracing(cfg TraceConfig) *Tracer {
	cfg = cfg.withDefaults()
	t := &Tracer{
		every:     uint64(cfg.SampleEvery),
		base:      time.Now(),
		queueWait: make([]perf.Hist, len(p.stages)),
		service:   make([]perf.Hist, len(p.stages)),
		cap:       cfg.Slowest,
	}
	for _, s := range p.stages {
		t.stages = append(t.stages, s.Name())
	}
	n := len(p.stages)
	t.pool.New = func() any { return &frameTrace{spans: make([]span, n)} }
	p.tracer = t
	return t
}

// Tracer returns the pipeline's tracer, or nil if tracing is disabled.
func (p *Pipeline) Tracer() *Tracer { return p.tracer }

// TraceObserver is implemented by Frame.Tag values that want a sampled
// frame's materialized lifecycle record at delivery — the hook a server
// uses to turn per-stage pipeline timings into request-scoped
// distributed-trace spans. ObserveTrace runs at the reorder sink,
// before the frame reaches Run.Out, so the record is visible to
// whoever consumes the delivered frame. TraceWanted gates the export:
// materializing a FrameTrace allocates, so tags say no unless the
// request is actually traced.
type TraceObserver interface {
	TraceWanted() bool
	ObserveTrace(FrameTrace)
}

// now returns nanoseconds since the tracer's base time (monotonic).
func (t *Tracer) now() int64 { return int64(time.Since(t.base)) }

// Base returns the tracer's base time: trace timestamps are nanosecond
// offsets from it, so base.Add(offset) converts them to wall clock.
func (t *Tracer) Base() time.Time { return t.base }

// sample decides whether the next submitted frame is traced, returning
// a cleared trace record or nil. The untraced path is one atomic
// increment — no allocation (benchmark-pinned in trace_test.go).
func (t *Tracer) sample() *frameTrace {
	if t.tick.Add(1)%t.every != 0 {
		return nil
	}
	ft := t.pool.Get().(*frameTrace)
	for i := range ft.spans {
		ft.spans[i] = span{}
	}
	return ft
}

// force returns a cleared trace record unconditionally — the path for
// request-scoped traced frames, which are recorded regardless of where
// the 1/N sampling tick stands. The tick still advances so forced
// frames don't skew the background sampling cadence.
func (t *Tracer) force() *frameTrace {
	t.tick.Add(1)
	ft := t.pool.Get().(*frameTrace)
	for i := range ft.spans {
		ft.spans[i] = span{}
	}
	return ft
}

// complete folds a delivered frame's trace into the histograms and the
// slowest ring, then recycles the record. Called from the reorder sink.
func (t *Tracer) complete(f *Frame) {
	ft := f.trace
	f.trace = nil
	t.traced.Add(1)
	for i := range ft.spans {
		sp := ft.spans[i]
		// Out-of-band frames can carry partially stamped spans; fold in
		// only the intervals whose both endpoints exist.
		if sp.enq != 0 && sp.start != 0 {
			t.queueWait[i].Observe(time.Duration(sp.start - sp.enq))
		}
		if sp.start != 0 && sp.fin != 0 {
			t.service[i].Observe(time.Duration(sp.fin - sp.start))
		}
	}
	if ob, ok := f.Tag.(TraceObserver); ok && ob.TraceWanted() {
		ob.ObserveTrace(t.export(f, ft))
	}
	t.offerSlow(f, ft)
	t.pool.Put(ft)
}

// offerSlow retains the frame's trace if it ranks among the slowest.
func (t *Tracer) offerSlow(f *Frame, ft *frameTrace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.slow) >= t.cap {
		// Replace the fastest retained trace, if this one is slower.
		min := 0
		for i := 1; i < len(t.slow); i++ {
			if t.slow[i].LatencyNs < t.slow[min].LatencyNs {
				min = i
			}
		}
		if int64(f.Latency) <= t.slow[min].LatencyNs {
			return
		}
		t.slow[min] = t.export(f, ft)
		return
	}
	t.slow = append(t.slow, t.export(f, ft))
}

// export materializes a retained FrameTrace (allocates; slow-ring only).
func (t *Tracer) export(f *Frame, ft *frameTrace) FrameTrace {
	out := FrameTrace{
		Seq:       f.Seq,
		Epoch:     f.Epoch,
		LatencyNs: int64(f.Latency),
		Spans:     make([]StageSpan, len(ft.spans)),
	}
	for i, sp := range ft.spans {
		ss := StageSpan{Stage: t.stages[i], EnqNs: sp.enq, StartNs: sp.start, FinNs: sp.fin}
		if sp.enq != 0 && sp.start != 0 {
			ss.QueueWaitNs = sp.start - sp.enq
		}
		if sp.start != 0 && sp.fin != 0 {
			ss.ServiceNs = sp.fin - sp.start
		}
		out.Spans[i] = ss
	}
	return out
}

// StageSpan is one stage's lifecycle in a dumped trace. Timestamps are
// nanoseconds since the tracer's base time; zero means unstamped.
type StageSpan struct {
	Stage       string `json:"stage"`
	EnqNs       int64  `json:"enq_ns"`
	StartNs     int64  `json:"start_ns"`
	FinNs       int64  `json:"fin_ns"`
	QueueWaitNs int64  `json:"queue_wait_ns"`
	ServiceNs   int64  `json:"service_ns"`
}

// FrameTrace is one retained frame lifecycle.
type FrameTrace struct {
	Seq       uint64      `json:"seq"`
	Epoch     int         `json:"epoch"`
	LatencyNs int64       `json:"latency_ns"`
	Spans     []StageSpan `json:"spans"`
}

// Dump returns the retained slowest traces, slowest first.
func (t *Tracer) Dump() []FrameTrace {
	t.mu.Lock()
	out := make([]FrameTrace, len(t.slow))
	copy(out, t.slow)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].LatencyNs > out[j].LatencyNs })
	return out
}

// Stages returns the traced pipeline's stage names, in stage order.
func (t *Tracer) Stages() []string { return append([]string(nil), t.stages...) }

// QueueWait returns stage i's live queue-wait histogram (time between a
// frame becoming ready for the stage and a worker picking it up).
func (t *Tracer) QueueWait(i int) *perf.Hist { return &t.queueWait[i] }

// Service returns stage i's live service-time histogram (Process
// duration of sampled frames).
func (t *Tracer) Service(i int) *perf.Hist { return &t.service[i] }

// Traced returns how many sampled frames have completed.
func (t *Tracer) Traced() int64 { return t.traced.Load() }

// SampleEvery returns the sampling period.
func (t *Tracer) SampleEvery() int { return int(t.every) }
