package gfpoly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gf"
)

var f8 = gf.MustDefault(8)

func randPoly(rng *rand.Rand, f *gf.Field, maxDeg int) Poly {
	n := rng.Intn(maxDeg + 2)
	coeffs := make([]gf.Elem, n)
	for i := range coeffs {
		coeffs[i] = gf.Elem(rng.Intn(f.Order()))
	}
	return New(f, coeffs...)
}

func TestDegreeAndTrim(t *testing.T) {
	p := New(f8, 1, 2, 3, 0, 0)
	if p.Degree() != 2 {
		t.Fatalf("degree = %d, want 2", p.Degree())
	}
	if len(p.Coeffs) != 3 {
		t.Fatalf("trim failed: %v", p.Coeffs)
	}
	if !Zero(f8).IsZero() || Zero(f8).Degree() != -1 {
		t.Fatal("zero polynomial wrong")
	}
	if One(f8).Degree() != 0 || One(f8).Coeff(0) != 1 {
		t.Fatal("one polynomial wrong")
	}
}

func TestMono(t *testing.T) {
	p := Mono(f8, 5, 3)
	if p.Degree() != 3 || p.Coeff(3) != 5 || p.Coeff(0) != 0 {
		t.Fatalf("Mono wrong: %v", p)
	}
	if !Mono(f8, 0, 3).IsZero() {
		t.Fatal("Mono(0) not zero")
	}
}

func TestAddSelfIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		p := randPoly(rng, f8, 10)
		if !p.Add(p).IsZero() {
			t.Fatalf("p+p != 0 for %v", p)
		}
	}
}

func TestMulProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		p := randPoly(rng, f8, 8)
		q := randPoly(rng, f8, 8)
		r := randPoly(rng, f8, 8)
		// commutative
		if !p.Mul(q).Equal(q.Mul(p)) {
			t.Fatal("mul not commutative")
		}
		// distributive
		if !p.Mul(q.Add(r)).Equal(p.Mul(q).Add(p.Mul(r))) {
			t.Fatal("mul not distributive")
		}
		// degree additivity
		if !p.IsZero() && !q.IsZero() {
			if p.Mul(q).Degree() != p.Degree()+q.Degree() {
				t.Fatal("degree not additive")
			}
		}
	}
}

func TestDivModInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		p := randPoly(rng, f8, 12)
		q := randPoly(rng, f8, 6)
		if q.IsZero() {
			continue
		}
		quo, rem := p.DivMod(q)
		if rem.Degree() >= q.Degree() {
			t.Fatalf("rem degree %d >= divisor degree %d", rem.Degree(), q.Degree())
		}
		if !quo.Mul(q).Add(rem).Equal(p) {
			t.Fatalf("q*quo+rem != p for p=%v q=%v", p, q)
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	One(f8).DivMod(Zero(f8))
}

func TestEvalHorner(t *testing.T) {
	// p(x) = x^2 + 3x + 2 at x: direct power evaluation must agree.
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		p := randPoly(rng, f8, 10)
		x := gf.Elem(rng.Intn(f8.Order()))
		var want gf.Elem
		for j, c := range p.Coeffs {
			want ^= f8.Mul(c, f8.Pow(x, j))
		}
		if got := p.Eval(x); got != want {
			t.Fatalf("Eval mismatch: got %#x want %#x", got, want)
		}
	}
}

func TestRootsOfKnownFactorization(t *testing.T) {
	// (x - a)(x - b) has roots {a, b}.
	f := gf.MustDefault(5)
	a, b := gf.Elem(7), gf.Elem(19)
	p := New(f, a, 1).Mul(New(f, b, 1)) // (x+a)(x+b); minus == plus
	roots := p.Roots()
	if len(roots) != 2 || roots[0] != a || roots[1] != b {
		t.Fatalf("roots = %v, want [%d %d]", roots, a, b)
	}
}

func TestDerivative(t *testing.T) {
	// d/dx (x^3 + 5x^2 + 3x + 9) = 3x^2 + 3 -> in char 2: x^2 coeff from x^3 term, const from x term.
	p := New(f8, 9, 3, 5, 1)
	d := p.Derivative()
	want := New(f8, 3, 0, 1)
	if !d.Equal(want) {
		t.Fatalf("derivative = %v, want %v", d, want)
	}
	// Derivative of a square is zero (char 2).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		q := randPoly(rng, f8, 6)
		if !q.Mul(q).Derivative().IsZero() {
			t.Fatal("derivative of square not zero")
		}
	}
}

func TestDerivativeProductRule(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		p := randPoly(rng, f8, 6)
		q := randPoly(rng, f8, 6)
		lhs := p.Mul(q).Derivative()
		rhs := p.Derivative().Mul(q).Add(p.Mul(q.Derivative()))
		if !lhs.Equal(rhs) {
			t.Fatalf("product rule fails for %v, %v", p, q)
		}
	}
}

func TestGCD(t *testing.T) {
	// gcd((x+1)(x+2), (x+1)(x+3)) = x+1 (monic).
	f := gf.MustDefault(4)
	x1 := New(f, 1, 1)
	g := GCD(x1.Mul(New(f, 2, 1)), x1.Mul(New(f, 3, 1)))
	if !g.Equal(x1) {
		t.Fatalf("gcd = %v, want %v", g, x1)
	}
	if !GCD(Zero(f), Zero(f)).IsZero() {
		t.Fatal("gcd(0,0) != 0")
	}
}

func TestModXn(t *testing.T) {
	p := New(f8, 1, 2, 3, 4, 5)
	q := p.ModXn(3)
	if !q.Equal(New(f8, 1, 2, 3)) {
		t.Fatalf("ModXn = %v", q)
	}
	if !p.ModXn(10).Equal(p) {
		t.Fatal("ModXn beyond length changed poly")
	}
}

func TestMulX(t *testing.T) {
	p := New(f8, 1, 2)
	q := p.MulX(2)
	if !q.Equal(New(f8, 0, 0, 1, 2)) {
		t.Fatalf("MulX = %v", q)
	}
}

func TestScaleQuick(t *testing.T) {
	prop := func(cs []byte, c byte) bool {
		coeffs := make([]gf.Elem, len(cs))
		for i, b := range cs {
			coeffs[i] = gf.Elem(b)
		}
		p := New(f8, coeffs...)
		// Scale then scale by inverse is identity (c != 0).
		if c == 0 {
			return p.Scale(0).IsZero()
		}
		return p.Scale(gf.Elem(c)).Scale(f8.Inv(gf.Elem(c))).Equal(p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	p := New(f8, 1, 1, 3)
	if p.String() != "0x3*x^2 + x + 0x1" {
		t.Errorf("String() = %q", p.String())
	}
	if Zero(f8).String() != "0" {
		t.Errorf("zero String() = %q", Zero(f8).String())
	}
}
