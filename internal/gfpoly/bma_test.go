package gfpoly

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
)

func TestBerlekampMasseyRecoversLFSR(t *testing.T) {
	// Generate a sequence from a known connection polynomial and check
	// BMA recovers it (given >= 2L samples).
	f := gf.MustDefault(8)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		l := 1 + rng.Intn(6)
		coeffs := make([]gf.Elem, l+1)
		coeffs[0] = 1
		for i := 1; i <= l; i++ {
			coeffs[i] = gf.Elem(rng.Intn(f.Order()))
		}
		coeffs[l] = gf.Elem(1 + rng.Intn(f.Order()-1)) // degree exactly l
		conn := New(f, coeffs...)
		// Seed l initial values (not all zero) and extend by the LFSR rule
		// s[n] = sum_{i=1..l} conn_i * s[n-i].
		s := make([]gf.Elem, 4*l)
		any := false
		for i := 0; i < l; i++ {
			s[i] = gf.Elem(rng.Intn(f.Order()))
			if s[i] != 0 {
				any = true
			}
		}
		if !any {
			s[0] = 1
		}
		for n := l; n < len(s); n++ {
			var v gf.Elem
			for i := 1; i <= l; i++ {
				v ^= f.Mul(conn.Coeff(i), s[n-i])
			}
			s[n] = v
		}
		got := BerlekampMassey(f, s)
		// The recovered polynomial must regenerate the sequence.
		lg := got.Degree()
		if lg > l {
			t.Fatalf("trial %d: recovered degree %d > true %d", trial, lg, l)
		}
		for n := lg; n < len(s); n++ {
			var v gf.Elem
			for i := 1; i <= lg; i++ {
				v ^= f.Mul(got.Coeff(i), s[n-i])
			}
			if v != s[n] {
				t.Fatalf("trial %d: recovered LFSR does not generate the sequence", trial)
			}
		}
	}
}

func TestBerlekampMasseyZeroSequence(t *testing.T) {
	f := gf.MustDefault(4)
	lam := BerlekampMassey(f, make([]gf.Elem, 8))
	if !lam.Equal(One(f)) {
		t.Fatalf("BMA on zero sequence = %v", lam)
	}
}

func TestCoeffLeadEqualEdges(t *testing.T) {
	f := gf.MustDefault(8)
	p := New(f, 1, 2, 3)
	if p.Coeff(-1) != 0 || p.Coeff(99) != 0 {
		t.Error("out-of-range Coeff not zero")
	}
	if p.Lead() != 3 {
		t.Errorf("Lead = %v", p.Lead())
	}
	if Zero(f).Lead() != 0 {
		t.Error("Lead of zero poly not 0")
	}
	if p.Equal(New(f, 1, 2)) {
		t.Error("different degrees equal")
	}
	if p.Equal(New(f, 1, 2, 4)) {
		t.Error("different coeffs equal")
	}
	if !p.Equal(New(f, 1, 2, 3, 0)) {
		t.Error("trailing zero breaks equality")
	}
}

func TestMulXZeroAndRootsOfZero(t *testing.T) {
	f := gf.MustDefault(8)
	if !Zero(f).MulX(3).IsZero() {
		t.Error("0 * x^3 != 0")
	}
	if Zero(f).Roots() != nil {
		t.Error("roots of zero poly not empty")
	}
}

func TestStringEdgeTerms(t *testing.T) {
	f := gf.MustDefault(8)
	cases := map[string]Poly{
		"x":         New(f, 0, 1),
		"0x2*x":     New(f, 0, 2),
		"x^3":       New(f, 0, 0, 0, 1),
		"x^2 + 0x5": New(f, 5, 0, 1),
	}
	for want, p := range cases {
		if got := p.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
