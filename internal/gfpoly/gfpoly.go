// Package gfpoly implements polynomials with coefficients in a small binary
// Galois field (repro/internal/gf). It provides the polynomial algebra the
// BCH and Reed-Solomon codecs are built on: arithmetic, Horner evaluation
// (the paper's syndrome recursion), formal derivatives (Forney's algorithm)
// and exhaustive root finding (Chien search).
//
// The coefficient loops run on gf.Kernels, so each call is served by
// whichever kernel tier (table, bitsliced, clmul, ...) the calibrated
// per-(op, length) selection — or a GFP_KERNEL_TIER force — picks;
// results are bit-exact regardless of tier (see docs/GF.md).
package gfpoly

import (
	"fmt"
	"strings"

	"repro/internal/gf"
)

// Poly is a polynomial over a Galois field. Coeffs[i] is the coefficient of
// x^i. The zero polynomial is represented by an empty (or all-zero)
// coefficient slice. A Poly is immutable by convention: operations return
// new polynomials.
type Poly struct {
	F      *gf.Field
	Coeffs []gf.Elem
}

// New returns the polynomial with the given coefficients (index = power).
// Trailing zero coefficients are trimmed.
func New(f *gf.Field, coeffs ...gf.Elem) Poly {
	p := Poly{F: f, Coeffs: append([]gf.Elem(nil), coeffs...)}
	return p.trim()
}

// Zero returns the zero polynomial.
func Zero(f *gf.Field) Poly { return Poly{F: f} }

// One returns the constant polynomial 1.
func One(f *gf.Field) Poly { return New(f, 1) }

// Mono returns c*x^deg.
func Mono(f *gf.Field, c gf.Elem, deg int) Poly {
	if c == 0 {
		return Zero(f)
	}
	coeffs := make([]gf.Elem, deg+1)
	coeffs[deg] = c
	return Poly{F: f, Coeffs: coeffs}
}

func (p Poly) trim() Poly {
	n := len(p.Coeffs)
	for n > 0 && p.Coeffs[n-1] == 0 {
		n--
	}
	p.Coeffs = p.Coeffs[:n]
	return p
}

// Degree returns the degree of p, or -1 for the zero polynomial.
func (p Poly) Degree() int {
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		if p.Coeffs[i] != 0 {
			return i
		}
	}
	return -1
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return p.Degree() < 0 }

// Coeff returns the coefficient of x^i (zero beyond the stored length).
func (p Poly) Coeff(i int) gf.Elem {
	if i < 0 || i >= len(p.Coeffs) {
		return 0
	}
	return p.Coeffs[i]
}

// Lead returns the leading coefficient (0 for the zero polynomial).
func (p Poly) Lead() gf.Elem {
	d := p.Degree()
	if d < 0 {
		return 0
	}
	return p.Coeffs[d]
}

// Clone returns a deep copy of p.
func (p Poly) Clone() Poly {
	return Poly{F: p.F, Coeffs: append([]gf.Elem(nil), p.Coeffs...)}
}

// Add returns p + q (== p - q in characteristic 2).
func (p Poly) Add(q Poly) Poly {
	n := len(p.Coeffs)
	if len(q.Coeffs) > n {
		n = len(q.Coeffs)
	}
	out := make([]gf.Elem, n)
	copy(out, p.Coeffs)
	if len(q.Coeffs) > 0 {
		q.F.Kernels().XorSlice(out, q.Coeffs)
	}
	return Poly{F: p.F, Coeffs: out}.trim()
}

// Scale returns c * p.
func (p Poly) Scale(c gf.Elem) Poly {
	if c == 0 {
		return Zero(p.F)
	}
	out := make([]gf.Elem, len(p.Coeffs))
	p.F.Kernels().MulConstSlice(out, p.Coeffs, c)
	return Poly{F: p.F, Coeffs: out}.trim()
}

// Mul returns p * q by schoolbook convolution, one bulk
// multiply-accumulate row (gf.Kernels.MulConstAddSlice) per nonzero
// coefficient of p.
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return Zero(p.F)
	}
	k := p.F.Kernels()
	out := make([]gf.Elem, p.Degree()+q.Degree()+2)
	qc := q.Coeffs[:q.Degree()+1] // tolerate untrimmed inputs
	for i, a := range p.Coeffs[:p.Degree()+1] {
		if a == 0 {
			continue
		}
		k.MulConstAddSlice(out[i:i+len(qc)], qc, a)
	}
	return Poly{F: p.F, Coeffs: out}.trim()
}

// MulX returns p * x^k (shift up by k).
func (p Poly) MulX(k int) Poly {
	if p.IsZero() {
		return p
	}
	out := make([]gf.Elem, len(p.Coeffs)+k)
	copy(out[k:], p.Coeffs)
	return Poly{F: p.F, Coeffs: out}
}

// DivMod returns the quotient and remainder of p / q. It panics if q is zero.
func (p Poly) DivMod(q Poly) (quo, rem Poly) {
	dq := q.Degree()
	if dq < 0 {
		panic("gfpoly: division by zero polynomial")
	}
	r := append([]gf.Elem(nil), p.Coeffs...)
	dr := p.Degree()
	if dr < dq {
		return Zero(p.F), p.Clone().trim()
	}
	quoC := make([]gf.Elem, dr-dq+1)
	invLead := p.F.Inv(q.Coeffs[dq])
	k := p.F.Kernels()
	for d := dr; d >= dq; d-- {
		if r[d] == 0 {
			continue
		}
		c := p.F.Mul(r[d], invLead)
		quoC[d-dq] = c
		k.MulConstAddSlice(r[d-dq:d+1], q.Coeffs[:dq+1], c)
	}
	return Poly{F: p.F, Coeffs: quoC}.trim(), Poly{F: p.F, Coeffs: r}.trim()
}

// Mod returns p mod q.
func (p Poly) Mod(q Poly) Poly {
	_, r := p.DivMod(q)
	return r
}

// ModXn returns p mod x^n (truncation to the n lowest coefficients), the
// operation used to form the error evaluator Omega = S*Lambda mod x^2t.
func (p Poly) ModXn(n int) Poly {
	if len(p.Coeffs) <= n {
		return p.Clone().trim()
	}
	return Poly{F: p.F, Coeffs: append([]gf.Elem(nil), p.Coeffs[:n]...)}.trim()
}

// Eval evaluates p at x using Horner's rule, the recursion the paper's
// syndrome kernel implements (S_{i,j} = S_{i,j-1}*a^i + R_{n-j}). The
// loop runs through the field's bulk kernels (one table lookup per
// coefficient instead of Field.Mul's two plus a branch).
func (p Poly) Eval(x gf.Elem) gf.Elem {
	if len(p.Coeffs) == 0 {
		return 0
	}
	return p.F.Kernels().EvalSlice(p.Coeffs, x)
}

// Derivative returns the formal derivative of p. In characteristic 2 the
// even-power terms vanish and odd powers drop to the even power below, so
// the derivative has only even-power terms.
func (p Poly) Derivative() Poly {
	if p.Degree() < 1 {
		return Zero(p.F)
	}
	out := make([]gf.Elem, p.Degree())
	for i := 1; i < len(p.Coeffs); i += 2 {
		out[i-1] = p.Coeffs[i]
	}
	return Poly{F: p.F, Coeffs: out}.trim()
}

// Roots returns all field elements r with p(r) == 0, in increasing numeric
// order, by exhaustive evaluation over the whole field — the software analogue
// of the Chien search.
func (p Poly) Roots() []gf.Elem {
	var roots []gf.Elem
	if p.IsZero() {
		return roots
	}
	for a := 0; a < p.F.Order(); a++ {
		if p.Eval(gf.Elem(a)) == 0 {
			roots = append(roots, gf.Elem(a))
		}
	}
	return roots
}

// GCD returns the monic greatest common divisor of p and q.
func GCD(p, q Poly) Poly {
	a, b := p.Clone().trim(), q.Clone().trim()
	for !b.IsZero() {
		a, b = b, a.Mod(b)
	}
	if a.IsZero() {
		return a
	}
	return a.Scale(a.F.Inv(a.Lead()))
}

// Equal reports whether p and q have identical coefficients.
func (p Poly) Equal(q Poly) bool {
	dp, dq := p.Degree(), q.Degree()
	if dp != dq {
		return false
	}
	for i := 0; i <= dp; i++ {
		if p.Coeffs[i] != q.Coeffs[i] {
			return false
		}
	}
	return true
}

// String renders the polynomial with hexadecimal coefficients, highest
// degree first, e.g. "x^2 + 3*x + 1".
func (p Poly) String() string {
	d := p.Degree()
	if d < 0 {
		return "0"
	}
	var parts []string
	for i := d; i >= 0; i-- {
		c := p.Coeffs[i]
		if c == 0 {
			continue
		}
		var term string
		switch {
		case i == 0:
			term = fmt.Sprintf("%#x", uint16(c))
		case i == 1 && c == 1:
			term = "x"
		case i == 1:
			term = fmt.Sprintf("%#x*x", uint16(c))
		case c == 1:
			term = fmt.Sprintf("x^%d", i)
		default:
			term = fmt.Sprintf("%#x*x^%d", uint16(c), i)
		}
		parts = append(parts, term)
	}
	return strings.Join(parts, " + ")
}
