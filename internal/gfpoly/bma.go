package gfpoly

import "repro/internal/gf"

// BerlekampMassey finds the shortest LFSR (connection polynomial) that
// generates the syndrome sequence synd: it returns Lambda(x) with
// Lambda(0) = 1 such that for all n >= L,
//
//	synd[n] = sum_{i=1..L} Lambda_i * synd[n-i]
//
// For a received word with e <= t errors and 2t syndromes, Lambda is the
// error-locator polynomial of degree e. This is the shared BMA kernel of
// the paper's RS and BCH decoder datapaths (Fig. 1a/1b).
func BerlekampMassey(f *gf.Field, synd []gf.Elem) Poly {
	lambda := One(f)
	prev := One(f)
	l := 0
	m := 1
	b := gf.Elem(1)
	for n := 0; n < len(synd); n++ {
		// Discrepancy d = S_n + sum_{i=1..l} lambda_i * S_{n-i}.
		d := synd[n]
		for i := 1; i <= l; i++ {
			d ^= f.Mul(lambda.Coeff(i), synd[n-i])
		}
		if d == 0 {
			m++
			continue
		}
		if 2*l <= n {
			t := lambda.Clone()
			lambda = lambda.Add(prev.Scale(f.Div(d, b)).MulX(m))
			prev = t
			l = n + 1 - l
			b = d
			m = 1
		} else {
			lambda = lambda.Add(prev.Scale(f.Div(d, b)).MulX(m))
			m++
		}
	}
	return lambda
}
