// Package sweep runs coded-link Monte-Carlo sweeps: packets of BCH- or
// RS-protected data over a BPSK/AWGN (or arbitrary) channel across a
// range of operating points. It is the workload generator behind the
// paper's Section 1.1 trade space — "the optimal energy efficiency, data
// rate, and link distance tradeoff can be obtained by adjusting the
// error correction coding rate and/or the information encoding schemes."
package sweep

import (
	"fmt"
	"math/rand"

	"repro/internal/bch"
	"repro/internal/channel"
	"repro/internal/gf"
	"repro/internal/rs"
)

// Point is one (code, Eb/N0) measurement.
type Point struct {
	EbN0dB      float64
	RawBER      float64 // analytic uncoded BPSK bit-error probability
	ObservedBER float64 // measured channel bit-error rate before decoding
	ResidualBER float64 // information bit-error rate after decoding
	PER         float64 // packet (frame) error rate
	Goodput     float64 // code rate x delivered fraction
}

// Codec is a packet codec under test.
type Codec interface {
	Name() string
	Rate() float64
	// Transmit sends one random packet through the channel and reports
	// channel bit errors, residual message bit errors, message bits and
	// whether the packet decoded to the original message.
	Transmit(ch channel.Channel, rng *rand.Rand) (chanErrs, msgErrs, msgBits int, ok bool)
}

// BCHCodec adapts a binary BCH code.
type BCHCodec struct{ Code *bch.Code }

// Name implements Codec.
func (c BCHCodec) Name() string { return c.Code.String() }

// Rate implements Codec.
func (c BCHCodec) Rate() float64 { return c.Code.Rate() }

// Transmit implements Codec.
func (c BCHCodec) Transmit(ch channel.Channel, rng *rand.Rand) (int, int, int, bool) {
	msg := make([]byte, c.Code.K)
	for i := range msg {
		msg[i] = byte(rng.Intn(2))
	}
	cw, err := c.Code.Encode(msg)
	if err != nil {
		panic(err)
	}
	recv := ch.TransmitBits(cw)
	chanErrs := channel.CountBitErrors(cw, recv)
	res, err := c.Code.Decode(recv)
	if err != nil {
		// Count residual errors in the (unrepaired) message portion.
		return chanErrs, channel.CountBitErrors(msg, recv[:c.Code.K]), c.Code.K, false
	}
	msgErrs := channel.CountBitErrors(msg, res.Message)
	return chanErrs, msgErrs, c.Code.K, msgErrs == 0
}

// RSCodec adapts a Reed-Solomon code (m <= 8), serializing symbols
// MSB-first onto the bit channel.
type RSCodec struct{ Code *rs.Code }

// Name implements Codec.
func (c RSCodec) Name() string { return c.Code.String() }

// Rate implements Codec.
func (c RSCodec) Rate() float64 { return c.Code.Rate() }

// Transmit implements Codec.
func (c RSCodec) Transmit(ch channel.Channel, rng *rand.Rand) (int, int, int, bool) {
	m := c.Code.F.M()
	msg := make([]gf.Elem, c.Code.K)
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(c.Code.F.Order()))
	}
	cw, err := c.Code.Encode(msg)
	if err != nil {
		panic(err)
	}
	recv := channel.TransmitSymbols(ch, cw, m)
	chanErrs := 0
	for i := range cw {
		chanErrs += popcount16(uint16(cw[i] ^ recv[i]))
	}
	msgBits := c.Code.K * m
	res, err := c.Code.Decode(recv)
	if err != nil {
		errs := 0
		for i := 0; i < c.Code.K; i++ {
			errs += popcount16(uint16(msg[i] ^ recv[i]))
		}
		return chanErrs, errs, msgBits, false
	}
	errs := 0
	for i := range msg {
		errs += popcount16(uint16(msg[i] ^ res.Message[i]))
	}
	return chanErrs, errs, msgBits, errs == 0
}

func popcount16(v uint16) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// Run sweeps the codec over the Eb/N0 points (dB), sending `packets`
// packets per point over a BSC with the matching BPSK crossover.
func Run(c Codec, ebn0dB []float64, packets int, seed int64) ([]Point, error) {
	if packets < 1 {
		return nil, fmt.Errorf("sweep: packets < 1")
	}
	out := make([]Point, 0, len(ebn0dB))
	for pi, snr := range ebn0dB {
		p := channel.BPSKBitErrorProb(snr)
		ch, err := channel.NewBSC(p, seed+int64(pi))
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + 1000*int64(pi)))
		var chanErrs, chanBits, msgErrs, msgBits, fails int
		for k := 0; k < packets; k++ {
			ce, me, mb, ok := c.Transmit(ch, rng)
			chanErrs += ce
			msgErrs += me
			msgBits += mb
			chanBits += int(float64(mb) / c.Rate())
			if !ok {
				fails++
			}
		}
		per := float64(fails) / float64(packets)
		out = append(out, Point{
			EbN0dB:      snr,
			RawBER:      p,
			ObservedBER: float64(chanErrs) / float64(chanBits),
			ResidualBER: float64(msgErrs) / float64(msgBits),
			PER:         per,
			Goodput:     c.Rate() * (1 - per),
		})
	}
	return out, nil
}
