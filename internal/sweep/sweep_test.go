package sweep

import (
	"testing"

	"repro/internal/bch"
	"repro/internal/gf"
	"repro/internal/rs"
)

func TestSweepBCHCodingGain(t *testing.T) {
	c := BCHCodec{Code: bch.Must(gf.MustDefault(5), 5)} // BCH(31,11,5)
	pts, err := Run(c, []float64{4, 6, 8}, 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	for i, p := range pts {
		// Observed channel BER should track the analytic BPSK value.
		if p.ObservedBER > 3*p.RawBER+0.01 || (p.RawBER > 1e-3 && p.ObservedBER < p.RawBER/3) {
			t.Errorf("point %d: observed BER %v far from raw %v", i, p.ObservedBER, p.RawBER)
		}
		// Coding gain: residual BER must not exceed the raw channel BER.
		if p.ResidualBER > p.RawBER {
			t.Errorf("point %d: residual %v > raw %v (negative coding gain)", i, p.ResidualBER, p.RawBER)
		}
	}
	// Monotone improvement with SNR.
	if pts[0].PER < pts[2].PER {
		t.Errorf("PER not improving with SNR: %v vs %v", pts[0].PER, pts[2].PER)
	}
	// At 8 dB (BER ~2e-4), a t=5 code over 31 bits never fails in 150 trials.
	if pts[2].PER != 0 || pts[2].ResidualBER != 0 {
		t.Errorf("high-SNR point not clean: %+v", pts[2])
	}
	if g := pts[2].Goodput; g < 0.35 || g > 0.36 {
		t.Errorf("goodput %v, want ~11/31", g)
	}
}

func TestSweepRS(t *testing.T) {
	c := RSCodec{Code: rs.Must(gf.MustDefault(8), 255, 223)}
	pts, err := Run(c, []float64{5, 7}, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 7 dB: raw BER ~8e-4 -> ~1.6 symbol errors per codeword; t=16 never fails.
	if pts[1].PER != 0 {
		t.Errorf("RS(255,223) failing at 7 dB: %+v", pts[1])
	}
	// 5 dB: raw BER ~6e-3 -> ~12 symbol errors average; mostly correctable,
	// residual far below raw.
	if pts[0].ResidualBER > pts[0].RawBER/2 {
		t.Errorf("RS coding gain too small at 5 dB: %+v", pts[0])
	}
}

func TestSweepValidation(t *testing.T) {
	c := BCHCodec{Code: bch.Must(gf.MustDefault(4), 1)}
	if _, err := Run(c, []float64{5}, 0, 1); err == nil {
		t.Error("packets=0 accepted")
	}
	if c.Name() == "" || c.Rate() <= 0 {
		t.Error("codec metadata broken")
	}
}
