package gf

// MinimalPolynomial returns the minimal polynomial of a over GF(2): the
// lowest-degree binary polynomial with a as a root, computed as the
// product of (x - c) over the conjugacy class {a, a^2, a^4, ...}.
// The result is packed with bit i = coefficient of x^i (leading term
// included). MinimalPolynomial(f, 0) returns x (0b10).
//
// This is the construction behind BCH generator polynomials (the LCM of
// minimal polynomials of consecutive powers of alpha) and behind the
// field-polynomial table itself: the minimal polynomial of a primitive
// element is a primitive polynomial of degree m.
func MinimalPolynomial(f *Field, a Elem) uint32 {
	if a == 0 {
		return 0b10 // x
	}
	// Collect the conjugacy class.
	var conj []Elem
	c := a
	for {
		conj = append(conj, c)
		c = f.Sqr(c)
		if c == a {
			break
		}
	}
	// Multiply out prod (x + c_j) with coefficients in the field; the
	// result's coefficients are guaranteed to land in GF(2).
	coeffs := make([]Elem, 1, len(conj)+1)
	coeffs[0] = 1
	for _, r := range conj {
		next := make([]Elem, len(coeffs)+1)
		for i, v := range coeffs {
			next[i+1] ^= v         // x * p(x)
			next[i] ^= f.Mul(v, r) // r * p(x)
		}
		coeffs = next
	}
	var p uint32
	for i, v := range coeffs {
		if v > 1 {
			panic("gf: minimal polynomial has non-binary coefficient")
		}
		p |= uint32(v) << i
	}
	return p
}

// ConjugacyClass returns {a, a^2, a^4, ...}, the Frobenius orbit of a.
func ConjugacyClass(f *Field, a Elem) []Elem {
	if a == 0 {
		return []Elem{0}
	}
	var conj []Elem
	c := a
	for {
		conj = append(conj, c)
		c = f.Sqr(c)
		if c == a {
			break
		}
	}
	return conj
}
