package gf

import "testing"

func TestMinimalPolynomialOfPrimitiveElement(t *testing.T) {
	// The minimal polynomial of alpha (= x, when the field polynomial is
	// primitive) is the field polynomial itself.
	for m := 2; m <= 10; m++ {
		f := MustDefault(m)
		if got := MinimalPolynomial(f, f.Alpha()); got != f.Poly() {
			t.Errorf("m=%d: minpoly(alpha) = %#x, want %#x", m, got, f.Poly())
		}
	}
}

func TestMinimalPolynomialProperties(t *testing.T) {
	f := MustDefault(5)
	for a := 1; a < f.Order(); a++ {
		p := MinimalPolynomial(f, Elem(a))
		// Irreducible, degree = conjugacy class size, degree divides m.
		if !Irreducible(uint64(p)) {
			t.Fatalf("minpoly(%#x) = %#x not irreducible", a, p)
		}
		cls := ConjugacyClass(f, Elem(a))
		if PolyDegree(uint64(p)) != len(cls) {
			t.Fatalf("minpoly(%#x) degree %d != class size %d", a, PolyDegree(uint64(p)), len(cls))
		}
		if f.M()%len(cls) != 0 {
			t.Fatalf("class size %d does not divide m", len(cls))
		}
		// a is a root: evaluate over the field by Horner.
		var acc Elem
		for i := PolyDegree(uint64(p)); i >= 0; i-- {
			acc = f.Mul(acc, Elem(a)) ^ Elem(p>>i&1)
		}
		if acc != 0 {
			t.Fatalf("minpoly(%#x) does not vanish at its element", a)
		}
	}
}

func TestMinimalPolynomialSpecials(t *testing.T) {
	f := MustDefault(8)
	if MinimalPolynomial(f, 0) != 0b10 {
		t.Error("minpoly(0) != x")
	}
	if MinimalPolynomial(f, 1) != 0b11 {
		t.Error("minpoly(1) != x+1")
	}
	// In the AES field the generator 0x03 has full degree 8.
	aes := AES()
	if d := PolyDegree(uint64(MinimalPolynomial(aes, 0x03))); d != 8 {
		t.Errorf("AES minpoly(0x03) degree = %d", d)
	}
	if len(ConjugacyClass(f, 0)) != 1 {
		t.Error("conjugacy class of 0 wrong")
	}
}

func TestMinimalPolynomialBuildsBCHGenerator(t *testing.T) {
	// LCM of minpoly(alpha^1..alpha^4) for GF(2^4) must have degree 8 =
	// deg generator of BCH(15,7,2): minpoly(a^1)=minpoly(a^2)=minpoly(a^4)
	// (same class) and minpoly(a^3) add 4 + 4.
	f := MustDefault(4)
	seen := map[uint32]bool{}
	deg := 0
	for i := 1; i <= 4; i++ {
		p := MinimalPolynomial(f, f.AlphaPow(i))
		if !seen[p] {
			seen[p] = true
			deg += PolyDegree(uint64(p))
		}
	}
	if deg != 8 {
		t.Errorf("BCH(15,7,2) generator degree via minpolys = %d, want 8", deg)
	}
}
