package gf

// Alternative multiplicative-inverse computations. The paper's hardware
// realizes inversion with the Itoh-Tsujii algorithm (ITA) by chaining the
// multiplier and square primitives (Fig. 6: 4 multiplications + 7 squares
// for m = 8); InvITA mirrors that computation and InvITAOps reports the
// primitive-operation counts so the microarchitecture model can check its
// wiring. InvEuclid implements the systolic-Euclid alternative the paper
// compares against in Table 4.

// ITATrace records the number of primitive multiplications and squarings an
// Itoh-Tsujii inversion performs, matching the hardware unit usage.
type ITATrace struct {
	Muls    int // multiplier primitives consumed
	Squares int // square primitives consumed
}

// InvITA computes a^-1 with the Itoh-Tsujii algorithm:
//
//	a^-1 = a^(2^m - 2) = (a^(2^(m-1) - 1))^2
//
// where a^(2^(m-1)-1) is built with an addition chain on m-1 using the
// identity β_{j+k} = β_j^(2^k) · β_k with β_e = a^(2^e - 1).
// It panics if a == 0.
func (f *Field) InvITA(a Elem) Elem {
	inv, _ := f.InvITAOps(a)
	return inv
}

// InvITAOps is InvITA, additionally returning the primitive-unit usage.
// For m = 8 the trace is exactly 4 multiplications and 7 squares, the
// numbers the paper wires into the single-cycle SIMD inverse instruction.
func (f *Field) InvITAOps(a Elem) (Elem, ITATrace) {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	var tr ITATrace
	if f.m == 1 {
		return 1, tr
	}
	sq := func(x Elem, k int) Elem {
		for i := 0; i < k; i++ {
			x = f.SqrNoTable(x)
			tr.Squares++
		}
		return x
	}
	mul := func(x, y Elem) Elem {
		tr.Muls++
		return f.MulNoTable(x, y)
	}

	// Addition chain on e = m-1 by the binary (left-to-right) method:
	// beta_e = a^(2^e - 1).
	e := f.m - 1
	// Find the highest set bit of e and descend.
	hb := 0
	for i := 15; i >= 0; i-- {
		if e>>i&1 == 1 {
			hb = i
			break
		}
	}
	beta := a // beta = a^(2^cur - 1)
	cur := 1  // current chain exponent
	for i := hb - 1; i >= 0; i-- {
		// Double: beta_{2cur} = beta_cur^(2^cur) * beta_cur
		beta = mul(sq(beta, cur), beta)
		cur *= 2
		if e>>i&1 == 1 {
			// Add one: beta_{cur+1} = beta_cur^2 * a
			beta = mul(sq(beta, 1), a)
			cur++
		}
	}
	// a^-1 = beta^2.
	return sq(beta, 1), tr
}

// InvFermat computes a^-1 = a^(2^m - 2) by plain square-and-multiply,
// the naive route the paper rejects as "a large power depending on m".
func (f *Field) InvFermat(a Elem) Elem {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return f.powNoTable(a, f.order-2)
}

// InvEuclid computes a^-1 with the binary extended Euclidean algorithm over
// GF(2)[x], the algorithmic basis of the systolic dividers the paper
// compares against (Table 4). It panics if a == 0.
func (f *Field) InvEuclid(a Elem) Elem {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	// Standard extended Euclid on (a, p): find u with a*u == 1 mod p.
	r0, r1 := uint64(f.poly), uint64(a)
	s0, s1 := uint64(0), uint64(1)
	for r1 != 0 {
		d := polyDegree(r0) - polyDegree(r1)
		if d < 0 {
			r0, r1 = r1, r0
			s0, s1 = s1, s0
			continue
		}
		r0 ^= r1 << d
		s0 ^= s1 << d
	}
	// r0 == gcd == 1 since p is irreducible and a != 0.
	return Elem(ReducePoly(s0, uint64(f.poly)))
}
