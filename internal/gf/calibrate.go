package gf

// One-shot micro-calibration: the first auto-dispatched kernel call on
// a field shape races every candidate tier over a small grid of input
// lengths and freezes a two-regime selection per op — one tier below a
// crossover length, one at or above it. This is the software image of
// the paper's evaluation method (profile each GF routine on each
// datapath, then bind the routine to the cheaper one): instead of
// baking the winner in at design time, every process measures its own
// machine once and the dispatcher routes accordingly.
//
// Results are cached process-wide per (m, poly) shape, so the many
// transient Field constructions the codecs make (MustDefault builds a
// fresh Field per call) calibrate exactly once, and the selection rows
// are published through Selections() for the observability plane.

import (
	"sync"
	"time"
)

// calLens is the measurement grid. Calls shorter than the first point
// behave like it; longer than the last, like it.
var calLens = [...]int{16, 64, 256, 1024}

// calPoints is the syndrome-op point count used for measurement
// (RS(255,223)/BCH-16 shaped: 16 evaluation points).
const calPoints = 16

// tierSel is one op's frozen selection.
type tierSel struct {
	below     TierID // serves lengths < crossover
	above     TierID // serves lengths >= crossover
	crossover int    // 0 when below == above
}

// selTable lazily holds the per-op selections of one field shape.
type selTable struct {
	once sync.Once
	ops  [numOps]tierSel
}

func (s *selTable) get(k *Kernels, op kernelOp) tierSel {
	s.once.Do(func() { s.calibrate(k) })
	return s.ops[op]
}

// calCache maps field shape (m << 32 | poly) to *[numOps]tierSel so a
// shape is measured once per process no matter how many Field values
// alias it.
var calCache sync.Map

func (s *selTable) calibrate(k *Kernels) {
	key := uint64(k.f.m)<<32 | uint64(k.f.poly)
	if v, ok := calCache.Load(key); ok {
		s.ops = *(v.(*[numOps]tierSel))
		return
	}
	ops := measureField(k)
	if v, raced := calCache.LoadOrStore(key, &ops); raced {
		ops = *(v.(*[numOps]tierSel))
	} else {
		publishSelections(k.f, &ops)
	}
	s.ops = ops
}

// timeOp returns the cost of one fn() invocation in nanoseconds,
// growing the iteration count until the sample window is long enough
// to trust (~20us).
func timeOp(fn func()) float64 {
	fn() // warm caches and lazy state
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed >= 20*time.Microsecond || iters >= 1<<22 {
			return float64(elapsed.Nanoseconds()) / float64(iters)
		}
		iters *= 2
	}
}

// measureField races every candidate tier over the length grid for
// each op and derives the two-regime selection. Candidate op functions
// are invoked directly (not through dispatch), so calibration neither
// recurses into selection nor pollutes the tier hit counters.
func measureField(k *Kernels) [numOps]tierSel {
	f := k.f
	maxLen := calLens[len(calLens)-1]

	// Deterministic xorshift inputs; the multiplier constant has its top
	// bit set so double-and-add tiers pay their full per-bit cost.
	state := uint64(0x9E3779B97F4A7C15) ^ uint64(f.poly)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	src := make([]Elem, maxLen)
	srcB := make([]Elem, maxLen)
	dst := make([]Elem, maxLen)
	bitsW := make([]byte, maxLen)
	for i := range src {
		src[i] = Elem(next() % uint64(f.order))
		srcB[i] = Elem(next() % uint64(f.order))
		bitsW[i] = byte(next() & 1)
	}
	c := Elem(f.order - 2)
	if c < 2 {
		c = 1
	}
	x := f.Generator()
	xs := make([]Elem, calPoints)
	for i := range xs {
		xs[i] = f.Exp(2*i + 1) // odd powers, the BCH root shape
	}
	sdst := make([]Elem, calPoints)

	// run builds the one-invocation closure for (op, tier ops, length).
	run := func(op kernelOp, t *tierOps, n int) func() {
		switch op {
		case opMulConst:
			return func() { t.mulConst(dst[:n], src[:n], c) }
		case opMulConstAdd:
			return func() { t.mulConstAdd(dst[:n], src[:n], c) }
		case opDot:
			return func() { t.dot(src[:n], srcB[:n]) }
		case opHorner:
			return func() { t.horner(src[:n], x) }
		case opEval:
			return func() { t.eval(src[:n], x) }
		case opSyndrome:
			return func() { t.syndrome(sdst, src[:n], xs) }
		case opHornerBit:
			return func() { t.hornerBit(bitsW[:n], x) }
		case opSyndromeBit, opSyndromeBitFold:
			return func() { t.syndromeBit(sdst, bitsW[:n], xs) }
		}
		return nil
	}

	// The clmul tier serves opSyndromeBit through BitSyndromePlan's
	// minpoly fold, not a registered op function; measure that route on
	// a throwaway plan.
	foldPlan := k.NewBitSyndromePlan(xs)

	var out [numOps]tierSel
	for op := kernelOp(0); op < numOps; op++ {
		const inf = 1e18
		var cost [NumTiers][len(calLens)]float64
		avail := [NumTiers]bool{}
		for t := TierID(0); t < NumTiers; t++ {
			ops := k.tiers[t]
			special := op == opSyndromeBitFold && t == TierCLMul && ops != nil
			if !ops.supports(op) && !special {
				continue
			}
			avail[t] = true
			for li, n := range calLens {
				var fn func()
				if special {
					bits := bitsW[:n]
					fn = func() { foldPlan.fold(sdst, bits) }
				} else {
					fn = run(op, ops, n)
				}
				cost[t][li] = timeOp(fn)
			}
		}
		best := func(li int) TierID {
			bt, bc := TierScalar, inf
			for t := TierID(0); t < NumTiers; t++ {
				if avail[t] && cost[t][li] < bc {
					bt, bc = t, cost[t][li]
				}
			}
			return bt
		}
		sel := tierSel{below: best(0), above: best(len(calLens) - 1)}
		if sel.below != sel.above {
			sel.crossover = calLens[len(calLens)-1]
			for li, n := range calLens {
				if cost[sel.above][li] <= cost[sel.below][li] {
					sel.crossover = n
					break
				}
			}
		}
		out[op] = sel
	}
	return out
}

// publishSelections records one shape's frozen selections for the
// observability plane (gfserved /statsz, Selections()).
func publishSelections(f *Field, ops *[numOps]tierSel) {
	rows := make([]TierSelection, 0, numOps)
	for op := kernelOp(0); op < numOps; op++ {
		s := ops[op]
		rows = append(rows, TierSelection{
			Field:     f.String(),
			Op:        opNames[op],
			Below:     s.below.String(),
			Above:     s.above.String(),
			Crossover: s.crossover,
		})
	}
	recordSelections(rows)
}
