package gf

import (
	"fmt"
	"math/rand"
	"testing"
)

// clmul64Ref is the bit-serial 128-bit carry-less product reference.
func clmul64Ref(a, b uint64) (hi, lo uint64) {
	for i := uint(0); i < 64; i++ {
		if a>>i&1 == 1 {
			lo ^= b << i
			if i > 0 {
				hi ^= b >> (64 - i)
			}
		}
	}
	return hi, lo
}

func TestClmul32AgainstCarrylessMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		a, b := rng.Uint32(), rng.Uint32()
		if got, want := clmul32(a, b), CarrylessMul(a, b); got != want {
			t.Fatalf("clmul32(%#x, %#x) = %#x, want %#x", a, b, got, want)
		}
	}
}

func TestClmulGMatchesClmul32(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100000; i++ {
		a, b := rng.Uint32(), rng.Uint32()
		if got, want := clmulG(uint64(a), clmulGroups(uint64(b))), CarrylessMul(a, b); got != want {
			t.Fatalf("clmulG(%#x, %#x) = %#x, want %#x", a, b, got, want)
		}
	}
}

func TestClmul64(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct{ a, b uint64 }{
		{0, 0}, {1, 1}, {^uint64(0), ^uint64(0)},
		{1 << 63, 1 << 63}, {^uint64(0), 1}, {1, ^uint64(0)},
	}
	for _, tc := range cases {
		hi, lo := Clmul64(tc.a, tc.b)
		whi, wlo := clmul64Ref(tc.a, tc.b)
		if hi != whi || lo != wlo {
			t.Fatalf("Clmul64(%#x, %#x) = (%#x, %#x), want (%#x, %#x)", tc.a, tc.b, hi, lo, whi, wlo)
		}
	}
	for i := 0; i < 100000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		hi, lo := Clmul64(a, b)
		whi, wlo := clmul64Ref(a, b)
		if hi != whi || lo != wlo {
			t.Fatalf("Clmul64(%#x, %#x) = (%#x, %#x), want (%#x, %#x)", a, b, hi, lo, whi, wlo)
		}
	}
}

// TestBarrettReduce checks the two-clmul Barrett division against the
// long-division reference for divisors of every degree 1..16.
func TestBarrettReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for d := 1; d <= 16; d++ {
		for k := 0; k < 25; k++ {
			p := uint64(1)<<uint(d) | uint64(rng.Intn(1<<uint(d)))
			bc := newBarrettConsts(p)
			for i := 0; i < 2000; i++ {
				v := uint64(rng.Uint32())
				if got, want := bc.reduce(v), ReducePoly(v, p); got != want {
					t.Fatalf("d=%d p=%#x: reduce(%#x) = %#x, want %#x", d, p, v, got, want)
				}
			}
		}
	}
}

func TestPolyDivGF2(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		p := uint64(rng.Intn(1<<16)) | 1<<uint(1+rng.Intn(16))
		v := uint64(rng.Uint32())
		q := polyDivGF2(v, p)
		// v = q*p + r with deg(r) < deg(p)
		r := v ^ clmul32(uint32(q), uint32(p))
		if want := ReducePoly(v, p); r != want {
			t.Fatalf("polyDivGF2(%#x, %#x) = %#x: remainder %#x, want %#x", v, p, q, r, want)
		}
	}
}

// TestBitSyndromePlanFold checks the minimal-polynomial fold against
// the scalar Horner for every odd power of alpha (the BCH root layout)
// across word lengths that exercise the partial lead chunk, on the
// default m=8 and m=16 fields and the non-primitive AES field.
func TestBitSyndromePlanFold(t *testing.T) {
	fields := []*Field{}
	for _, m := range []int{3, 8, 16} {
		f, err := NewDefault(m)
		if err != nil {
			t.Fatal(err)
		}
		fields = append(fields, f)
	}
	fields = append(fields, MustNew(8, 0x11B)) // AES: generator != x

	rng := rand.New(rand.NewSource(6))
	for _, f := range fields {
		xs := make([]Elem, 16)
		for i := range xs {
			xs[i] = f.Exp(2*i + 1)
		}
		xs[15] = 0 // degenerate point: minpoly x, syndrome = last bit
		bp := f.Kernels().NewBitSyndromePlan(xs)
		ref := f.ScalarKernels()
		for _, n := range []int{1, 2, 31, 32, 33, 63, 64, 255, 1023} {
			bits := make([]byte, n)
			for i := range bits {
				bits[i] = byte(rng.Intn(2))
			}
			got, want := make([]Elem, len(xs)), make([]Elem, len(xs))
			bp.fold(got, bits)
			ref.SyndromeBitSlice(want, bits, xs)
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%v n=%d point %d (x=%d): fold %d, scalar %d", f, n, j, xs[j], got[j], want[j])
				}
			}
		}
	}
}

// TestBitSyndromePlanConcurrent exercises the plan's scratch pool under
// concurrent Run calls (the pipeline decodes frames in parallel).
func TestBitSyndromePlanConcurrent(t *testing.T) {
	f, err := NewDefault(8)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]Elem, 16)
	for i := range xs {
		xs[i] = f.Exp(2*i + 1)
	}
	bp := f.Kernels().forTier(TierCLMul).NewBitSyndromePlan(xs)
	ref := f.ScalarKernels()
	bits := make([]byte, 255)
	for i := range bits {
		bits[i] = byte(i % 2)
	}
	want := make([]Elem, len(xs))
	ref.SyndromeBitSlice(want, bits, xs)

	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			got := make([]Elem, len(xs))
			for it := 0; it < 200; it++ {
				bp.Run(got, bits)
				for j := range got {
					if got[j] != want[j] {
						done <- fmt.Errorf("concurrent plan mismatch at point %d: %d want %d", j, got[j], want[j])
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
