// Package gf implements arithmetic in small binary Galois fields GF(2^m)
// for m = 1..16 with arbitrary irreducible polynomials.
//
// It is the mathematical substrate of the whole repository: the BCH and
// Reed-Solomon codecs, the AES implementation, and the GF-processor
// microarchitecture model are all expressed in terms of this package.
//
// A field element is represented by its polynomial-basis bit vector packed
// into an Elem (uint16); bit i is the coefficient of x^i. Addition is
// bitwise XOR. Multiplication is carry-free polynomial multiplication
// followed by reduction modulo the field's irreducible polynomial, exactly
// the decomposition the paper's compact multiplier uses (carryless multiplier
// + linear-transform polynomial reduction).
package gf

import (
	"fmt"
	"math/bits"
	"sync"
)

// Elem is an element of a binary field GF(2^m), m <= 16, in polynomial
// basis: bit i holds the coefficient of x^i.
type Elem uint16

// MaxM is the largest supported extension degree.
const MaxM = 16

// MinM is the smallest supported extension degree.
const MinM = 1

// Field represents GF(2^m) with a specific irreducible polynomial.
// The zero value is not usable; construct with New or MustNew.
type Field struct {
	m     int    // extension degree
	poly  uint32 // irreducible polynomial including the x^m term
	order int    // 2^m, number of field elements
	n     int    // 2^m - 1, multiplicative group order

	// exp/log tables relative to a fixed generator of the multiplicative
	// group. exp has length 2n so products of logs index without a modulo.
	exp []Elem
	log []uint16

	generator Elem // the generator the tables are built on
	alphaIsX  bool // true when x itself is primitive (the common case)

	// Bulk-arithmetic kernels (kernels.go), built lazily on first use so
	// fields that never touch the slice operations pay nothing. The Once
	// keeps the otherwise-immutable Field safe for concurrent callers.
	kernOnce   sync.Once
	kern       *Kernels
	scalarKern *Kernels
}

// New constructs GF(2^m) using the given irreducible polynomial. The
// polynomial must include its leading x^m term (e.g. 0x11B for the AES
// field x^8+x^4+x^3+x+1, 0x25 for x^5+x^2+1). It returns an error if m is
// out of range, the polynomial has the wrong degree, or it is reducible.
func New(m int, poly uint32) (*Field, error) {
	if m < MinM || m > MaxM {
		return nil, fmt.Errorf("gf: extension degree m=%d out of range [%d,%d]", m, MinM, MaxM)
	}
	if deg := polyDegree(uint64(poly)); deg != m {
		return nil, fmt.Errorf("gf: polynomial %#x has degree %d, want %d", poly, deg, m)
	}
	if !Irreducible(uint64(poly)) {
		return nil, fmt.Errorf("gf: polynomial %#x is reducible", poly)
	}
	f := &Field{
		m:     m,
		poly:  poly,
		order: 1 << m,
		n:     1<<m - 1,
	}
	f.buildTables()
	return f, nil
}

// MustNew is New but panics on error. Intended for package-level variables
// and tests with known-good parameters.
func MustNew(m int, poly uint32) *Field {
	f, err := New(m, poly)
	if err != nil {
		panic(err)
	}
	return f
}

// DefaultPoly returns a conventional irreducible polynomial of degree m.
// For m where a primitive trinomial/pentanomial is standard (e.g. CCSDS,
// NIST) that polynomial is used. All returned polynomials are primitive
// except none (every entry below is primitive).
func DefaultPoly(m int) (uint32, error) {
	// Conventional primitive polynomials, low degree terms chosen to match
	// widespread coding-standard usage.
	table := map[int]uint32{
		1:  0x3,     // x + 1
		2:  0x7,     // x^2+x+1
		3:  0xB,     // x^3+x+1
		4:  0x13,    // x^4+x+1
		5:  0x25,    // x^5+x^2+1
		6:  0x43,    // x^6+x+1
		7:  0x89,    // x^7+x^3+1
		8:  0x11D,   // x^8+x^4+x^3+x^2+1 (CCSDS / common RS(255) field)
		9:  0x211,   // x^9+x^4+1
		10: 0x409,   // x^10+x^3+1
		11: 0x805,   // x^11+x^2+1
		12: 0x1053,  // x^12+x^6+x^4+x+1
		13: 0x201B,  // x^13+x^4+x^3+x+1
		14: 0x4443,  // x^14+x^10+x^6+x+1
		15: 0x8003,  // x^15+x+1
		16: 0x1100B, // x^16+x^12+x^3+x+1
	}
	p, ok := table[m]
	if !ok {
		return 0, fmt.Errorf("gf: no default polynomial for m=%d", m)
	}
	return p, nil
}

// NewDefault constructs GF(2^m) with the conventional polynomial from
// DefaultPoly.
func NewDefault(m int) (*Field, error) {
	p, err := DefaultPoly(m)
	if err != nil {
		return nil, err
	}
	return New(m, p)
}

// MustDefault is NewDefault but panics on error.
func MustDefault(m int) *Field {
	f, err := NewDefault(m)
	if err != nil {
		panic(err)
	}
	return f
}

// AES is the AES field GF(2^8) with polynomial x^8+x^4+x^3+x+1 (0x11B).
// Note 0x11B is irreducible but NOT primitive; the package finds a group
// generator automatically (0x03 generates the AES field).
func AES() *Field { return MustNew(8, 0x11B) }

// M returns the extension degree m.
func (f *Field) M() int { return f.m }

// Poly returns the irreducible polynomial, including the x^m term.
func (f *Field) Poly() uint32 { return f.poly }

// Order returns the number of field elements, 2^m.
func (f *Field) Order() int { return f.order }

// N returns the multiplicative group order 2^m - 1 (also the natural
// codeword length of codes built on this field).
func (f *Field) N() int { return f.n }

// Generator returns the multiplicative-group generator used by the
// exp/log tables. It is x (0b10) whenever x is primitive for the chosen
// polynomial.
func (f *Field) Generator() Elem { return f.generator }

// GeneratorIsX reports whether the polynomial is primitive, i.e. x itself
// generates the multiplicative group.
func (f *Field) GeneratorIsX() bool { return f.alphaIsX }

// Valid reports whether a is a valid element of this field (fits in m bits).
func (f *Field) Valid(a Elem) bool { return int(a) < f.order }

func (f *Field) buildTables() {
	// Find a generator: prefer x; otherwise scan.
	gen := Elem(2)
	if f.m == 1 {
		gen = 1
	}
	if !f.isGenerator(gen) {
		gen = 0
		for c := 2; c < f.order; c++ {
			if f.isGenerator(Elem(c)) {
				gen = Elem(c)
				break
			}
		}
		if gen == 0 {
			gen = 1 // m==1 degenerate case
		}
	}
	f.generator = gen
	f.alphaIsX = f.m == 1 || gen == 2

	f.exp = make([]Elem, 2*f.n)
	f.log = make([]uint16, f.order)
	v := Elem(1)
	for i := 0; i < f.n; i++ {
		f.exp[i] = v
		f.exp[i+f.n] = v
		f.log[v] = uint16(i)
		v = f.mulNoTable(v, gen)
	}
	if v != 1 {
		// isGenerator guarantees this cannot happen.
		panic("gf: generator order mismatch")
	}
}

// isGenerator reports whether g has multiplicative order 2^m-1, testing
// g^((2^m-1)/p) != 1 for every prime p dividing 2^m-1.
func (f *Field) isGenerator(g Elem) bool {
	if g == 0 {
		return false
	}
	if f.n == 1 {
		return g == 1
	}
	for _, p := range primeFactors(uint64(f.n)) {
		if f.powNoTable(g, f.n/int(p)) == 1 {
			return false
		}
	}
	return true
}

// Add returns a + b = a XOR b. Addition and subtraction coincide in
// characteristic 2.
func (f *Field) Add(a, b Elem) Elem { return a ^ b }

// Sub returns a - b, identical to Add in GF(2^m).
func (f *Field) Sub(a, b Elem) Elem { return a ^ b }

// Mul returns the product a*b using the log/antilog tables (the software
// technique the paper's M0+ baseline uses).
func (f *Field) Mul(a, b Elem) Elem {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[int(f.log[a])+int(f.log[b])]
}

// MulNoTable returns a*b by carry-free multiplication followed by modular
// reduction — the datapath the paper's hardware multiplier implements.
// It must always agree with Mul.
func (f *Field) MulNoTable(a, b Elem) Elem { return f.mulNoTable(a, b) }

func (f *Field) mulNoTable(a, b Elem) Elem {
	c := CarrylessMul(uint32(a), uint32(b))
	return Elem(ReducePoly(c, uint64(f.poly)))
}

// Sqr returns a^2. Squaring in GF(2^m) is linear: the full product merely
// interleaves the input bits with zeros before reduction (paper Fig. 5c).
func (f *Field) Sqr(a Elem) Elem {
	if a == 0 {
		return 0
	}
	l := 2 * int(f.log[a])
	if l >= f.n {
		l -= f.n
	}
	return f.exp[l]
}

// SqrNoTable squares via bit spreading and reduction, mirroring the
// hardware square primitive.
func (f *Field) SqrNoTable(a Elem) Elem {
	return Elem(ReducePoly(spreadBits(uint32(a)), uint64(f.poly)))
}

// Div returns a/b. It panics if b == 0.
func (f *Field) Div(a, b Elem) Elem {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(f.log[a]) - int(f.log[b])
	if d < 0 {
		d += f.n
	}
	return f.exp[d]
}

// Inv returns the multiplicative inverse of a. It panics if a == 0.
// This is the table-based route; see InvITA and InvEuclid for the
// hardware-style and Euclid-style computations.
func (f *Field) Inv(a Elem) Elem {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return f.exp[f.n-int(f.log[a])]
}

// Pow returns a^e for e >= 0 (a^0 == 1, including 0^0 == 1 by convention;
// 0^e == 0 for e > 0). Negative exponents are reduced modulo 2^m-1 after
// inversion.
func (f *Field) Pow(a Elem, e int) Elem {
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	le := (int(f.log[a]) * (e % f.n)) % f.n
	if le < 0 {
		le += f.n
	}
	return f.exp[le]
}

func (f *Field) powNoTable(a Elem, e int) Elem {
	r := Elem(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			r = f.mulNoTable(r, base)
		}
		base = f.mulNoTable(base, base)
		e >>= 1
	}
	return r
}

// Exp returns g^i where g is the table generator; i is taken modulo 2^m-1.
func (f *Field) Exp(i int) Elem {
	i %= f.n
	if i < 0 {
		i += f.n
	}
	return f.exp[i]
}

// Log returns the discrete logarithm of a to the table generator.
// It panics if a == 0, which has no logarithm.
func (f *Field) Log(a Elem) int {
	if a == 0 {
		panic("gf: log of zero")
	}
	return int(f.log[a])
}

// Alpha returns the primitive element used as α by the coding layers:
// the table generator (x when the polynomial is primitive).
func (f *Field) Alpha() Elem { return f.generator }

// AlphaPow returns α^i, the standard notation in BCH/RS constructions.
func (f *Field) AlphaPow(i int) Elem { return f.Exp(i) }

// String implements fmt.Stringer.
func (f *Field) String() string {
	return fmt.Sprintf("GF(2^%d)/%s", f.m, PolyString(uint64(f.poly)))
}

// CarrylessMul returns the GF(2) polynomial product of a and b: a full
// (2m-1)-bit product with XOR accumulation and no carries. This is the
// "carryless multiplier" stage of the paper's compact multiplier and the
// functional model of the gf32bMult instruction for 32-bit operands.
func CarrylessMul(a, b uint32) uint64 {
	var r uint64
	bb := uint64(b)
	for a != 0 {
		i := bits.TrailingZeros32(a)
		r ^= bb << i
		a &= a - 1
	}
	return r
}

// ReducePoly reduces the carry-free product c modulo the polynomial p
// (with leading term included). It is the functional model of the paper's
// polynomial-reduction linear transform.
func ReducePoly(c uint64, p uint64) uint64 {
	dp := polyDegree(p)
	for d := polyDegree(c); d >= dp && c != 0; d = polyDegree(c) {
		c ^= p << (d - dp)
	}
	return c
}

// spreadBits inserts a zero bit after every bit of a: the full product of a
// square (paper Fig. 5c).
func spreadBits(a uint32) uint64 {
	var r uint64
	for i := 0; i < 32 && a>>i != 0; i++ {
		if a>>i&1 == 1 {
			r |= 1 << (2 * i)
		}
	}
	return r
}

// SpreadBits exposes the square-spreading transform for the hardware model.
func SpreadBits(a uint32) uint64 { return spreadBits(a) }

func polyDegree(p uint64) int {
	if p == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(p)
}

// PolyDegree returns the degree of the GF(2) polynomial p, or -1 for p == 0.
func PolyDegree(p uint64) int { return polyDegree(p) }

// PolyString renders a GF(2) polynomial such as 0x13 as "x^4+x+1".
func PolyString(p uint64) string {
	if p == 0 {
		return "0"
	}
	s := ""
	for d := polyDegree(p); d >= 0; d-- {
		if p>>uint(d)&1 == 0 {
			continue
		}
		if s != "" {
			s += "+"
		}
		switch d {
		case 0:
			s += "1"
		case 1:
			s += "x"
		default:
			s += fmt.Sprintf("x^%d", d)
		}
	}
	return s
}

// primeFactors returns the distinct prime factors of n in increasing order.
func primeFactors(n uint64) []uint64 {
	var fs []uint64
	for p := uint64(2); p*p <= n; p++ {
		if n%p == 0 {
			fs = append(fs, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}
