package gf

// Differential kernel verification: the first slice of the roadmap's
// algebraic self-verification harness. The scalar kernel tier is the
// behavioral specification (every product routed through Field.Mul);
// every other registered tier — packed, table, bitsliced, clmul — is an
// optimization that must be extensionally equal to it. VerifyKernels
// drives ALL tiers built for the field over the same pseudo-random
// vectors across every bulk op (including the BitSyndromePlan clmul
// fold) and reports the first disagreement — production deployments
// (the gfserved /selftest admin endpoint, the gfproxy health gate) run
// it before serving traffic, so a corrupted product table or a
// miscompiled fast path never serves wrong math silently.

import (
	"fmt"
	"math/rand"
)

// VerifyKernels differentially checks every registered kernel tier of
// the field against the scalar reference: vectors pseudo-random input
// vectors per (tier, op) — seeded, so failures reproduce — each run
// through a view of Field.Kernels pinned to the tier under test and
// through Field.ScalarKernels, compared element-wise. It also checks
// the auto-dispatched view itself, so whatever mix calibration chose is
// exercised end to end. It returns nil when every tier agrees on every
// vector, and a descriptive error naming the tier, the op, the vector
// index and the first mismatching element otherwise.
func VerifyKernels(f *Field, vectors int, seed int64) error {
	if vectors <= 0 {
		vectors = 8
	}
	auto, ref := f.Kernels(), f.ScalarKernels()

	// Vector length: one full codeword worth for m=8 (the serving field),
	// scaled down for narrow fields so every element value still appears,
	// capped for wide fields (m=16 would otherwise mean 64Ki-symbol
	// vectors per op per tier).
	n := f.Order() - 1
	if n < 8 {
		n = 8
	}
	if n > 1024 {
		n = 1024
	}

	// The tiers under test: every registered tier (the scalar tier
	// checks the reference against itself, proving determinism), plus
	// the auto view with calibrated dispatch.
	views := []*Kernels{auto}
	names := []string{"auto"}
	for id := TierID(0); id < NumTiers; id++ {
		if auto.tiers[id] != nil {
			views = append(views, auto.forTier(id))
			names = append(names, id.String())
		}
	}

	for vi, fast := range views {
		if err := verifyTierOnce(f, fast, ref, names[vi], vectors, seed); err != nil {
			return err
		}
	}
	return nil
}

func verifyTierOnce(f *Field, fast, ref *Kernels, tier string, vectors int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	order := f.Order()
	n := order - 1
	if n < 8 {
		n = 8
	}
	if n > 1024 {
		n = 1024
	}

	randVec := func(len_ int) []Elem {
		v := make([]Elem, len_)
		for i := range v {
			v[i] = Elem(rng.Intn(order))
		}
		return v
	}
	randBits := func(len_ int) []byte {
		b := make([]byte, len_)
		for i := range b {
			b[i] = byte(rng.Intn(2))
		}
		return b
	}

	for vi := 0; vi < vectors; vi++ {
		a, b := randVec(n), randVec(n)
		c := Elem(rng.Intn(order))
		x := Elem(rng.Intn(order))

		got, want := make([]Elem, n), make([]Elem, n)
		check := func(op string) error {
			for i := range got {
				if got[i] != want[i] {
					return fmt.Errorf("gf: selftest %s/%s: vector %d: %s[%d] = %d, scalar reference says %d",
						f, tier, vi, op, i, got[i], want[i])
				}
			}
			return nil
		}
		scalarCheck := func(op string, g, w Elem) error {
			if g != w {
				return fmt.Errorf("gf: selftest %s/%s: vector %d: %s = %d, scalar reference says %d",
					f, tier, vi, op, g, w)
			}
			return nil
		}

		fast.AddSlice(got, a, b)
		ref.AddSlice(want, a, b)
		if err := check("AddSlice"); err != nil {
			return err
		}

		fast.MulConstSlice(got, a, c)
		ref.MulConstSlice(want, a, c)
		if err := check("MulConstSlice"); err != nil {
			return err
		}

		copy(got, b)
		copy(want, b)
		fast.MulConstAddSlice(got, a, c)
		ref.MulConstAddSlice(want, a, c)
		if err := check("MulConstAddSlice"); err != nil {
			return err
		}

		if err := scalarCheck("DotSlice", fast.DotSlice(a, b), ref.DotSlice(a, b)); err != nil {
			return err
		}
		if err := scalarCheck("HornerSlice", fast.HornerSlice(a, x), ref.HornerSlice(a, x)); err != nil {
			return err
		}
		if err := scalarCheck("EvalSlice", fast.EvalSlice(a, x), ref.EvalSlice(a, x)); err != nil {
			return err
		}

		// Syndrome points: distinct powers of alpha, the codec layout.
		xs := make([]Elem, 8)
		for i := range xs {
			xs[i] = f.Exp(i + 1)
		}
		gs, ws := make([]Elem, len(xs)), make([]Elem, len(xs))
		fast.SyndromeSlice(gs, a, xs)
		ref.SyndromeSlice(ws, a, xs)
		got, want = gs, ws
		if err := check("SyndromeSlice"); err != nil {
			return err
		}

		bits := randBits(n)
		if err := scalarCheck("HornerBitSlice", fast.HornerBitSlice(bits, x), ref.HornerBitSlice(bits, x)); err != nil {
			return err
		}
		fast.SyndromeBitSlice(gs, bits, xs)
		ref.SyndromeBitSlice(ws, bits, xs)
		if err := check("SyndromeBitSlice"); err != nil {
			return err
		}

		// The precomputed bit-syndrome plan. On the clmul view this pins
		// the minimal-polynomial fold; elsewhere it exercises the plan's
		// dispatch back into SyndromeBitSlice.
		fast.NewBitSyndromePlan(xs).Run(gs, bits)
		ref.SyndromeBitSlice(ws, bits, xs)
		if err := check("BitSyndromePlan.Run"); err != nil {
			return err
		}

		// LFSR: the systematic encoder's feedback bank, table-heavy on the
		// fast tiers. Taps must be at least one symbol.
		taps := randVec(1 + rng.Intn(min(n, 64)))
		pf, pr := make([]Elem, len(taps)), make([]Elem, len(taps))
		fast.NewLFSR(taps).Run(pf, a)
		ref.NewLFSR(taps).Run(pr, a)
		got, want = pf, pr
		if err := check("LFSR.Run"); err != nil {
			return err
		}
	}
	return nil
}
