package gf

// Differential kernel verification: the first slice of the roadmap's
// algebraic self-verification harness. The scalar kernel tier is the
// behavioral specification (every product routed through Field.Mul); the
// fast tiers (packed, table) are optimizations that must be extensionally
// equal to it. VerifyKernels drives both tiers over the same
// pseudo-random vectors across every bulk op and reports the first
// disagreement — production deployments (the gfserved /selftest admin
// endpoint, the gfproxy health gate) run it before serving traffic, so a
// corrupted product table or a miscompiled fast path never serves wrong
// math silently.

import (
	"fmt"
	"math/rand"
)

// VerifyKernels differentially checks the field's active kernel tier
// against the scalar reference: vectors pseudo-random input vectors per
// op (seeded, so failures reproduce), each run through both Field.Kernels
// and Field.ScalarKernels and compared element-wise. It returns nil when
// every op agrees on every vector, and a descriptive error naming the
// op, the vector index and the first mismatching element otherwise.
//
// When the active tier is the scalar tier itself (m > 8), the check
// still runs — it then validates the scalar path against itself, which
// verifies the op implementations are deterministic but cannot catch
// table corruption (there are no tables).
func VerifyKernels(f *Field, vectors int, seed int64) error {
	if vectors <= 0 {
		vectors = 8
	}
	fast, ref := f.Kernels(), f.ScalarKernels()
	rng := rand.New(rand.NewSource(seed))
	order := f.Order()

	// Vector length: one full codeword worth for m=8 (the serving field),
	// scaled down for narrow fields so every element value still appears.
	n := order - 1
	if n < 8 {
		n = 8
	}

	randVec := func(len_ int) []Elem {
		v := make([]Elem, len_)
		for i := range v {
			v[i] = Elem(rng.Intn(order))
		}
		return v
	}
	randBits := func(len_ int) []byte {
		b := make([]byte, len_)
		for i := range b {
			b[i] = byte(rng.Intn(2))
		}
		return b
	}

	for vi := 0; vi < vectors; vi++ {
		a, b := randVec(n), randVec(n)
		c := Elem(rng.Intn(order))
		x := Elem(rng.Intn(order))

		got, want := make([]Elem, n), make([]Elem, n)
		check := func(op string) error {
			for i := range got {
				if got[i] != want[i] {
					return fmt.Errorf("gf: selftest %s/%s: vector %d: %s[%d] = %d, scalar reference says %d",
						f, fast.Tier(), vi, op, i, got[i], want[i])
				}
			}
			return nil
		}
		scalarCheck := func(op string, g, w Elem) error {
			if g != w {
				return fmt.Errorf("gf: selftest %s/%s: vector %d: %s = %d, scalar reference says %d",
					f, fast.Tier(), vi, op, g, w)
			}
			return nil
		}

		fast.AddSlice(got, a, b)
		ref.AddSlice(want, a, b)
		if err := check("AddSlice"); err != nil {
			return err
		}

		fast.MulConstSlice(got, a, c)
		ref.MulConstSlice(want, a, c)
		if err := check("MulConstSlice"); err != nil {
			return err
		}

		copy(got, b)
		copy(want, b)
		fast.MulConstAddSlice(got, a, c)
		ref.MulConstAddSlice(want, a, c)
		if err := check("MulConstAddSlice"); err != nil {
			return err
		}

		if err := scalarCheck("DotSlice", fast.DotSlice(a, b), ref.DotSlice(a, b)); err != nil {
			return err
		}
		if err := scalarCheck("HornerSlice", fast.HornerSlice(a, x), ref.HornerSlice(a, x)); err != nil {
			return err
		}
		if err := scalarCheck("EvalSlice", fast.EvalSlice(a, x), ref.EvalSlice(a, x)); err != nil {
			return err
		}

		// Syndrome points: distinct powers of alpha, the codec layout.
		xs := make([]Elem, 8)
		for i := range xs {
			xs[i] = f.Exp(i + 1)
		}
		gs, ws := make([]Elem, len(xs)), make([]Elem, len(xs))
		fast.SyndromeSlice(gs, a, xs)
		ref.SyndromeSlice(ws, a, xs)
		got, want = gs, ws
		if err := check("SyndromeSlice"); err != nil {
			return err
		}

		bits := randBits(n)
		if err := scalarCheck("HornerBitSlice", fast.HornerBitSlice(bits, x), ref.HornerBitSlice(bits, x)); err != nil {
			return err
		}
		fast.SyndromeBitSlice(gs, bits, xs)
		ref.SyndromeBitSlice(ws, bits, xs)
		if err := check("SyndromeBitSlice"); err != nil {
			return err
		}

		// LFSR: the systematic encoder's feedback bank, table-heavy on the
		// fast tiers. Taps must be at least one symbol.
		taps := randVec(1 + rng.Intn(n/2+1))
		pf, pr := make([]Elem, len(taps)), make([]Elem, len(taps))
		fast.NewLFSR(taps).Run(pf, a)
		ref.NewLFSR(taps).Run(pr, a)
		got, want = pf, pr
		if err := check("LFSR.Run"); err != nil {
			return err
		}
	}
	return nil
}
