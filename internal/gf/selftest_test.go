package gf

import (
	"strings"
	"testing"
)

// TestVerifyKernelsAllFields: the differential check passes for every
// default field the fast tiers cover, plus one wide field on the scalar
// path.
func TestVerifyKernelsAllFields(t *testing.T) {
	for m := 2; m <= 8; m++ {
		f := MustDefault(m)
		if err := VerifyKernels(f, 4, 1); err != nil {
			t.Errorf("VerifyKernels(GF(2^%d)): %v", m, err)
		}
	}
	// AES field: same degree as the default m=8 field, different polynomial.
	if err := VerifyKernels(AES(), 4, 1); err != nil {
		t.Errorf("VerifyKernels(AES): %v", err)
	}
	// m > 8 runs the scalar path against itself; must still pass.
	if err := VerifyKernels(MustDefault(10), 2, 1); err != nil {
		t.Errorf("VerifyKernels(GF(2^10)): %v", err)
	}
}

// TestVerifyKernelsCatchesCorruption: poison one product-table entry and
// the differential check must report it (with the op name in the error),
// proving the harness can actually detect a bad fast tier.
func TestVerifyKernelsCatchesCorruption(t *testing.T) {
	// Build a private field instance so the shared cached Kernels used by
	// every other test stays intact.
	poly, err := DefaultPoly(8)
	if err != nil {
		t.Fatal(err)
	}
	f := MustNew(8, poly)
	k := f.Kernels()
	if !k.Table() {
		t.Fatal("m=8 field did not build the table tier")
	}
	// Corrupt 2*3 in the flat product table.
	idx := 2*k.order + 3
	orig := k.mul[idx]
	k.mul[idx] = orig ^ 1
	defer func() { k.mul[idx] = orig }()

	err = VerifyKernels(f, 32, 1)
	if err == nil {
		t.Fatal("VerifyKernels passed over a corrupted product table")
	}
	if !strings.Contains(err.Error(), "selftest") {
		t.Errorf("corruption error %q does not mention selftest", err)
	}
}

// TestVerifyKernelsDeterministic: same seed, same verdict and no panic —
// the harness must be reproducible so CI failures can be replayed.
func TestVerifyKernelsDeterministic(t *testing.T) {
	f := MustDefault(8)
	for i := 0; i < 3; i++ {
		if err := VerifyKernels(f, 2, 42); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}
