package gf

// The carry-less-multiply tier: GF(2)[x] products computed with plain
// integer multiplies. An integer multiply is a carry-less multiply plus
// unwanted carries; splitting each operand into interleaved "hole"
// classes (every 4th bit for 32-bit operands, every 5th for 64-bit)
// leaves enough zero gap between live bits that column sums stay below
// the gap capacity — the carries never reach the next live bit, and
// masking the product back to its class recovers the exact XOR
// convolution. This is the software analogue of the paper's gf32bMult
// wide-word route: one instruction-level multiply produces 32 (or 64)
// bit-positions of GF(2) product at once, against one table lookup per
// 8-bit symbol on the M0+ baseline.
//
// Reductions use GF(2) Barrett division: with mu = x^32 / p
// precomputed, v mod p costs two carry-less multiplies and no data-
// dependent loop.
//
// The tier registers variable-point ops (dot / horner / eval /
// hornerBit) built on 32-bit clmuls, and supplies the BitSyndromePlan
// fold: a binary received word is packed 32 coefficients per machine
// word and reduced modulo the minimal polynomial of each syndrome
// point, so one clmul step consumes 32 codeword bits — this is the op
// that beats the table tier on BCH syndromes (crossover near n = 64 on
// the reference machine). Exported Clmul64 (5-way holes + bits.Mul64)
// is the wide-word primitive package gfbig builds its multi-word
// multiply on.

import (
	"math/bits"
	"sync"
)

func init() { registerTier(TierCLMul, buildCLMulOps) }

const (
	holeMask4 = 0x1111111111111111 // every 4th bit, class 0
	holeMask5 = 0x1084210842108421 // every 5th bit, class 0
)

// clmulGroups splits b into its four hole classes for clmulG.
func clmulGroups(b uint64) [4]uint64 {
	return [4]uint64{
		b & holeMask4,
		b & (holeMask4 << 1),
		b & (holeMask4 << 2),
		b & (holeMask4 << 3),
	}
}

// clmulG is the carry-less product of a and a pre-grouped operand bg.
// Safe whenever each hole class of a has at most 8 live bits (any
// a <= 32 bits qualifies) and the true product fits in 64 bits: at most
// 8 partial products collide per column, and 8 < 2^4 keeps every carry
// inside the 3-bit hole gap.
func clmulG(a uint64, bg [4]uint64) uint64 {
	a0 := a & holeMask4
	a1 := a & (holeMask4 << 1)
	a2 := a & (holeMask4 << 2)
	a3 := a & (holeMask4 << 3)
	r0 := a0*bg[0] ^ a1*bg[3] ^ a2*bg[2] ^ a3*bg[1]
	r1 := a0*bg[1] ^ a1*bg[0] ^ a2*bg[3] ^ a3*bg[2]
	r2 := a0*bg[2] ^ a1*bg[1] ^ a2*bg[0] ^ a3*bg[3]
	r3 := a0*bg[3] ^ a1*bg[2] ^ a2*bg[1] ^ a3*bg[0]
	return r0&holeMask4 | r1&(holeMask4<<1) | r2&(holeMask4<<2) | r3&(holeMask4<<3)
}

// clmul32 is the carry-less product of two 32-bit polynomials.
func clmul32(a, b uint32) uint64 {
	return clmulG(uint64(a), clmulGroups(uint64(b)))
}

// Clmul64 returns the 128-bit carry-less product of two 64-bit
// polynomials as (hi, lo). It splits both operands into five hole
// classes (at most 13 live bits each, 13 < 2^5 so carries stay in the
// 4-bit gaps) and runs the 25 class products through bits.Mul64. The
// product bit at position p lands in class p mod 5; positions >= 64
// shift down by 64 = 5*12+4, so the hi word of a class-k product is
// masked with class (k+1) mod 5. Package gfbig's word-comb multiply is
// built on this primitive.
func Clmul64(a, b uint64) (hi, lo uint64) {
	var ag, bg [5]uint64
	for k := uint(0); k < 5; k++ {
		ag[k] = a & (holeMask5 << k)
		bg[k] = b & (holeMask5 << k)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			h, l := bits.Mul64(ag[i], bg[j])
			k := uint(i+j) % 5
			lo ^= l & (holeMask5 << k)
			hi ^= h & (holeMask5 << ((k + 1) % 5))
		}
	}
	return hi, lo
}

// polyDivGF2 returns the quotient of v / p over GF(2) (long division,
// remainder discarded). Companion of ReducePoly, used to precompute
// Barrett constants mu = x^32 / p.
func polyDivGF2(v, p uint64) uint64 {
	dp := polyDegree(p)
	var q uint64
	for d := polyDegree(v); d >= dp; d = polyDegree(v) {
		q |= 1 << uint(d-dp)
		v ^= p << uint(d-dp)
	}
	return q
}

// barrettConsts precomputes the Barrett pair for divisor p (degree d,
// 1 <= d <= 16): mu = x^32 / p and the grouped forms of both.
type barrettConsts struct {
	d   uint
	pg  [4]uint64
	mug [4]uint64
}

func newBarrettConsts(p uint64) barrettConsts {
	return barrettConsts{
		d:   uint(polyDegree(p)),
		pg:  clmulGroups(p),
		mug: clmulGroups(polyDivGF2(1<<32, p)),
	}
}

// reduce maps a polynomial v of degree <= 31 to v mod p, degree < d:
// q = floor(v/x^d * mu / x^(32-d)) is the exact GF(2) quotient, so
// v ^ q*p cancels everything above degree d-1.
func (bc *barrettConsts) reduce(v uint64) uint64 {
	q := clmulG(v>>bc.d, bc.mug) >> (32 - bc.d)
	return (v ^ clmulG(q, bc.pg)) & (1<<bc.d - 1)
}

// clField carries the per-field clmul state: Barrett constants for the
// field polynomial itself.
type clField struct {
	f  *Field
	bc barrettConsts
}

func buildCLMulOps(f *Field) *tierOps {
	if f.m < 2 {
		return nil // GF(2): nothing to multiply
	}
	p := &clField{f: f, bc: newBarrettConsts(uint64(f.poly))}
	return &tierOps{
		dot:       p.dot,
		horner:    p.horner,
		eval:      p.eval,
		hornerBit: p.hornerBit,
	}
}

// dot XOR-accumulates the carry-less products (degree <= 2m-2 <= 30,
// no per-element reduction needed) and Barrett-reduces once at the end.
func (p *clField) dot(a, b []Elem) Elem {
	var acc uint64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		acc ^= clmul32(uint32(a[i]), uint32(b[i])) ^
			clmul32(uint32(a[i+1]), uint32(b[i+1])) ^
			clmul32(uint32(a[i+2]), uint32(b[i+2])) ^
			clmul32(uint32(a[i+3]), uint32(b[i+3]))
	}
	for ; i < len(a); i++ {
		acc ^= clmul32(uint32(a[i]), uint32(b[i]))
	}
	return Elem(p.bc.reduce(acc))
}

func (p *clField) horner(word []Elem, x Elem) Elem {
	xg := clmulGroups(uint64(x))
	var acc uint64
	for _, r := range word {
		acc = p.bc.reduce(clmulG(acc, xg)) ^ uint64(r)
	}
	return Elem(acc)
}

func (p *clField) eval(coeffs []Elem, x Elem) Elem {
	xg := clmulGroups(uint64(x))
	var acc uint64
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = p.bc.reduce(clmulG(acc, xg)) ^ uint64(coeffs[i])
	}
	return Elem(acc)
}

func (p *clField) hornerBit(bits []byte, x Elem) Elem {
	xg := clmulGroups(uint64(x))
	var acc uint64
	for _, b := range bits {
		acc = p.bc.reduce(clmulG(acc, xg)) ^ uint64(b)
	}
	return Elem(acc)
}

// rootPlan is the per-evaluation-point state of a BitSyndromePlan. The
// point's syndrome S = r(x) is computed structurally: reduce the packed
// binary word r modulo the point's minimal polynomial m_x over GF(2)
// (degree d <= m), then evaluate the d-bit remainder at x — correct
// because m_x(x) = 0 makes reduction mod m_x invisible at x. The
// reduction consumes the word 32 coefficients per step with a deferred-
// reduction fold and one final Barrett division.
type rootPlan struct {
	bc   barrettConsts
	t32g [4]uint64 // x^32 mod m_x, grouped — the per-chunk fold factor
	pow  [17]Elem  // pow[i] = x^i for the remainder evaluation
}

func newRootPlan(f *Field, x Elem) rootPlan {
	p := uint64(MinimalPolynomial(f, x))
	rp := rootPlan{
		bc:   newBarrettConsts(p),
		t32g: clmulGroups(ReducePoly(1<<32, p)),
	}
	for i := 0; i <= polyDegree(p); i++ {
		rp.pow[i] = f.Pow(x, i)
	}
	return rp
}

// fold reduces the packed word (32-bit chunks, chunks[0] most
// significant and possibly partial) mod m_x, keeping acc as a 32-bit
// unreduced residue representative between chunks:
//
//	acc*x^32 + chunk  ==  hi(acc*t32)*t32 ^ lo(acc*t32) ^ chunk  (mod m_x)
//
// where t32 = x^32 mod m_x, so each step costs two clmuls with the
// final Barrett division deferred to the very end.
func (rp *rootPlan) fold(chunks []uint32) Elem {
	var acc uint64
	for _, c := range chunks {
		t := clmulG(acc, rp.t32g)
		acc = clmulG(t>>32, rp.t32g) ^ t&0xFFFFFFFF ^ uint64(c)
	}
	acc = rp.bc.reduce(acc)
	var s Elem
	for i := 0; acc != 0; i++ {
		if acc&1 != 0 {
			s ^= rp.pow[i]
		}
		acc >>= 1
	}
	return s
}

// packBitsInto packs a binary word (one bit per byte, transmission
// order: bits[0] is the coefficient of x^(n-1)) into 32-bit chunks,
// most significant chunk first. The first chunk is partial when n is
// not a multiple of 32, keeping every later chunk's inner loop exact.
func packBitsInto(buf []uint32, bitsIn []byte) []uint32 {
	n := len(bitsIn)
	nc := (n + 31) / 32
	chunks := buf[:nc]
	lead := n % 32
	if lead == 0 {
		lead = 32
	}
	var w uint32
	idx := 0
	for i := 0; i < lead; i++ {
		w = w<<1 | uint32(bitsIn[idx])
		idx++
	}
	chunks[0] = w
	for c := 1; c < nc; c++ {
		var w uint32
		for i := 0; i < 32; i += 4 {
			w = w<<4 | uint32(bitsIn[idx])<<3 | uint32(bitsIn[idx+1])<<2 |
				uint32(bitsIn[idx+2])<<1 | uint32(bitsIn[idx+3])
			idx += 4
		}
		chunks[c] = w
	}
	return chunks
}

// BitSyndromePlan evaluates a binary received word at a fixed set of
// syndrome points, dispatching between the lookup-tier multi-point
// Horner (short words) and the carry-less minimal-polynomial fold (long
// words) by the calibrated crossover for this field — overridable like
// every kernel via GFP_KERNEL_TIER / ForceKernelTier. Build one per
// codec (package bch keeps one per root set) and reuse it across
// frames; a plan is safe for concurrent use.
type BitSyndromePlan struct {
	k     *Kernels
	xs    []Elem
	plans []rootPlan
	bufs  sync.Pool // *[]uint32 chunk scratch
}

// NewBitSyndromePlan builds the per-point fold plans (minimal
// polynomials, Barrett constants, power tables) for the given
// evaluation points.
func (k *Kernels) NewBitSyndromePlan(xs []Elem) *BitSyndromePlan {
	bp := &BitSyndromePlan{
		k:     k,
		xs:    append([]Elem(nil), xs...),
		plans: make([]rootPlan, len(xs)),
	}
	for i, x := range xs {
		bp.plans[i] = newRootPlan(k.f, x)
	}
	bp.bufs.New = func() any { s := make([]uint32, 64); return &s }
	return bp
}

// Points returns the plan's evaluation points.
func (bp *BitSyndromePlan) Points() []Elem { return append([]Elem(nil), bp.xs...) }

// Run sets dst[j] = r(xs[j]) for the binary word r stored one bit per
// byte in transmission order. dst must have the plan's point count.
func (bp *BitSyndromePlan) Run(dst []Elem, bits []byte) {
	if len(dst) != len(bp.xs) {
		panic("gf: BitSyndromePlan.Run length mismatch")
	}
	if bp.k.tierFor(opSyndromeBitFold, len(bits)) != TierCLMul {
		bp.k.SyndromeBitSlice(dst, bits, bp.xs)
		return
	}
	bp.k.hit(TierCLMul)
	bp.fold(dst, bits)
}

// fold runs the clmul route unconditionally (calibration measures it
// through this entry point).
func (bp *BitSyndromePlan) fold(dst []Elem, bits []byte) {
	nc := (len(bits) + 31) / 32
	bufp := bp.bufs.Get().(*[]uint32)
	if cap(*bufp) < nc {
		*bufp = make([]uint32, nc)
	}
	chunks := packBitsInto((*bufp)[:cap(*bufp)], bits)
	for j := range bp.plans {
		dst[j] = bp.plans[j].fold(chunks)
	}
	bp.bufs.Put(bufp)
}
