package gf

import "testing"

// fuzzFields caches one field per width so fuzz iterations skip table
// construction.
var fuzzFields = func() map[int]*Field {
	fs := make(map[int]*Field)
	for m := 1; m <= 16; m++ {
		fs[m] = MustDefault(m)
	}
	return fs
}()

// FuzzMulAgainstNoTable cross-checks the log/antilog table arithmetic
// against the carry-less polynomial reference for every default field
// width: Mul vs MulNoTable, Sqr vs SqrNoTable, Pow vs powNoTable, plus
// the Inv/Pow(-1) and Exp/Log consistency laws the coding layers rely on.
func FuzzMulAgainstNoTable(f *testing.F) {
	f.Add(uint8(8), uint16(0x57), uint16(0x83), int16(3))
	f.Add(uint8(4), uint16(0xF), uint16(0x9), int16(-2))
	f.Add(uint8(1), uint16(1), uint16(1), int16(5))
	f.Add(uint8(16), uint16(0xFFFF), uint16(0x1234), int16(-1))
	f.Fuzz(func(t *testing.T, mRaw uint8, aRaw, bRaw uint16, e int16) {
		m := int(mRaw)%16 + 1
		fld := fuzzFields[m]
		a := Elem(int(aRaw) % fld.Order())
		b := Elem(int(bRaw) % fld.Order())

		if got, want := fld.Mul(a, b), fld.MulNoTable(a, b); got != want {
			t.Fatalf("m=%d: Mul(%#x,%#x) = %#x, MulNoTable = %#x", m, a, b, got, want)
		}
		// The carry-less-multiply routes must agree with the tables too:
		// hole-masked clmul plus field-poly reduction is a third
		// independent implementation of the same product.
		if got := Elem(ReducePoly(clmul32(uint32(a), uint32(b)), uint64(fld.Poly()))); got != fld.Mul(a, b) {
			t.Fatalf("m=%d: clmul32 route (%#x,%#x) = %#x, Mul = %#x", m, a, b, got, fld.Mul(a, b))
		}
		if hi, lo := Clmul64(uint64(a), uint64(b)); hi != 0 || lo != clmul32(uint32(a), uint32(b)) {
			t.Fatalf("m=%d: Clmul64(%#x,%#x) = (%#x,%#x), want (0,%#x)", m, a, b, hi, lo, clmul32(uint32(a), uint32(b)))
		}
		if got, want := fld.Sqr(a), fld.SqrNoTable(a); got != want {
			t.Fatalf("m=%d: Sqr(%#x) = %#x, SqrNoTable = %#x", m, a, got, want)
		}

		// Pow vs square-and-multiply on the non-negative range the
		// reference implements; negative exponents via the a^-e == (a^e)^-1
		// law (a != 0).
		pe := int(e)
		if pe < 0 {
			pe = -pe
		}
		if got, want := fld.Pow(a, pe), fld.powNoTable(a, pe); got != want {
			t.Fatalf("m=%d: Pow(%#x,%d) = %#x, powNoTable = %#x", m, a, pe, got, want)
		}
		if a != 0 && pe > 0 {
			if got, want := fld.Pow(a, -pe), fld.Inv(fld.Pow(a, pe)); got != want {
				t.Fatalf("m=%d: Pow(%#x,%d) = %#x, want Inv(Pow) = %#x", m, a, -pe, got, want)
			}
		}
		if a != 0 {
			if got := fld.Mul(a, fld.Inv(a)); got != 1 {
				t.Fatalf("m=%d: %#x * Inv = %#x, want 1", m, a, got)
			}
			if got := fld.Exp(fld.Log(a)); got != a {
				t.Fatalf("m=%d: Exp(Log(%#x)) = %#x", m, a, got)
			}
		}
	})
}

// FuzzSyndromeTiers drives the multi-point syndrome kernels of every
// registered tier — and the BitSyndromePlan clmul fold — over
// fuzzer-chosen words and evaluation points, comparing each against the
// scalar reference. This is the differential gate for the hot decode
// path: a tier that disagrees on any (field, word, points) triple is a
// silent-corruption bug.
func FuzzSyndromeTiers(f *testing.F) {
	f.Add(uint8(8), []byte{0xA5, 0x5A, 0xFF, 0x00, 0x33, 0x0F, 0xF0, 0x81}, uint16(1))
	f.Add(uint8(16), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, uint16(0x1234))
	f.Add(uint8(3), []byte{0xFF}, uint16(7))
	f.Add(uint8(5), make([]byte, 64), uint16(0))
	f.Add(uint8(1), []byte{0xAA, 0x55}, uint16(3))
	f.Fuzz(func(t *testing.T, mRaw uint8, data []byte, xsSeed uint16) {
		if len(data) == 0 {
			return
		}
		if len(data) > 256 {
			data = data[:256]
		}
		m := int(mRaw)%16 + 1
		fld := fuzzFields[m]

		// One binary word (the data's bits) and one symbol word (its
		// bytes folded into the field).
		bits := make([]byte, len(data)*8)
		word := make([]Elem, len(data))
		for i, by := range data {
			for b := 0; b < 8; b++ {
				bits[i*8+b] = by >> b & 1
			}
			word[i] = Elem(int(by) % fld.Order())
		}
		xs := make([]Elem, 8)
		for i := range xs {
			xs[i] = Elem((int(xsSeed)*(2*i+1) + i) % fld.Order())
		}

		ref := fld.ScalarKernels()
		wantBits := make([]Elem, len(xs))
		wantWord := make([]Elem, len(xs))
		ref.SyndromeBitSlice(wantBits, bits, xs)
		ref.SyndromeSlice(wantWord, word, xs)

		k := fld.Kernels()
		got := make([]Elem, len(xs))
		for id := TierID(0); id < NumTiers; id++ {
			if k.tiers[id] == nil {
				continue
			}
			v := k.forTier(id)
			v.SyndromeBitSlice(got, bits, xs)
			for j := range got {
				if got[j] != wantBits[j] {
					t.Fatalf("m=%d tier=%v: SyndromeBitSlice[%d] = %d, scalar says %d", m, id, j, got[j], wantBits[j])
				}
			}
			v.SyndromeSlice(got, word, xs)
			for j := range got {
				if got[j] != wantWord[j] {
					t.Fatalf("m=%d tier=%v: SyndromeSlice[%d] = %d, scalar says %d", m, id, j, got[j], wantWord[j])
				}
			}
		}

		k.NewBitSyndromePlan(xs).fold(got, bits)
		for j := range got {
			if got[j] != wantBits[j] {
				t.Fatalf("m=%d: plan fold[%d] = %d, scalar says %d", m, j, got[j], wantBits[j])
			}
		}
	})
}
