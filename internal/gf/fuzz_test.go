package gf

import "testing"

// fuzzFields caches one field per width so fuzz iterations skip table
// construction.
var fuzzFields = func() map[int]*Field {
	fs := make(map[int]*Field)
	for m := 1; m <= 16; m++ {
		fs[m] = MustDefault(m)
	}
	return fs
}()

// FuzzMulAgainstNoTable cross-checks the log/antilog table arithmetic
// against the carry-less polynomial reference for every default field
// width: Mul vs MulNoTable, Sqr vs SqrNoTable, Pow vs powNoTable, plus
// the Inv/Pow(-1) and Exp/Log consistency laws the coding layers rely on.
func FuzzMulAgainstNoTable(f *testing.F) {
	f.Add(uint8(8), uint16(0x57), uint16(0x83), int16(3))
	f.Add(uint8(4), uint16(0xF), uint16(0x9), int16(-2))
	f.Add(uint8(1), uint16(1), uint16(1), int16(5))
	f.Add(uint8(16), uint16(0xFFFF), uint16(0x1234), int16(-1))
	f.Fuzz(func(t *testing.T, mRaw uint8, aRaw, bRaw uint16, e int16) {
		m := int(mRaw)%16 + 1
		fld := fuzzFields[m]
		a := Elem(int(aRaw) % fld.Order())
		b := Elem(int(bRaw) % fld.Order())

		if got, want := fld.Mul(a, b), fld.MulNoTable(a, b); got != want {
			t.Fatalf("m=%d: Mul(%#x,%#x) = %#x, MulNoTable = %#x", m, a, b, got, want)
		}
		if got, want := fld.Sqr(a), fld.SqrNoTable(a); got != want {
			t.Fatalf("m=%d: Sqr(%#x) = %#x, SqrNoTable = %#x", m, a, got, want)
		}

		// Pow vs square-and-multiply on the non-negative range the
		// reference implements; negative exponents via the a^-e == (a^e)^-1
		// law (a != 0).
		pe := int(e)
		if pe < 0 {
			pe = -pe
		}
		if got, want := fld.Pow(a, pe), fld.powNoTable(a, pe); got != want {
			t.Fatalf("m=%d: Pow(%#x,%d) = %#x, powNoTable = %#x", m, a, pe, got, want)
		}
		if a != 0 && pe > 0 {
			if got, want := fld.Pow(a, -pe), fld.Inv(fld.Pow(a, pe)); got != want {
				t.Fatalf("m=%d: Pow(%#x,%d) = %#x, want Inv(Pow) = %#x", m, a, -pe, got, want)
			}
		}
		if a != 0 {
			if got := fld.Mul(a, fld.Inv(a)); got != 1 {
				t.Fatalf("m=%d: %#x * Inv = %#x, want 1", m, a, got)
			}
			if got := fld.Exp(fld.Log(a)); got != a {
				t.Fatalf("m=%d: Exp(Log(%#x)) = %#x", m, a, got)
			}
		}
	})
}
