package gf

// The three classic tiers, ported from the original fixed-tier Kernels
// into registry builders:
//
//   - scalar: every product through Field.Mul — the behavioral
//     specification and the universal fallback.
//   - packed (m <= 4): each mul-by-constant row (<= 16 products of <= 4
//     bits) packs into a single 64-bit word, so a product is a register
//     shift+mask with no memory traffic at all — the nibble-split
//     trick, cousin of the paper's gf32bMult packing.
//   - table (m <= 8): a flat order x order product table; row c is a
//     contiguous 256-entry (at most) slice, one L1 lookup per product.

func init() {
	registerTier(TierScalar, buildScalarOps)
	registerTier(TierPacked, buildPackedOps)
	registerTier(TierTable, buildTableOps)
}

func buildScalarOps(f *Field) *tierOps {
	return &tierOps{
		mulConst: func(dst, src []Elem, c Elem) {
			for i, s := range src {
				dst[i] = f.Mul(c, s)
			}
		},
		mulConstAdd: func(dst, src []Elem, c Elem) {
			for i, s := range src {
				dst[i] ^= f.Mul(c, s)
			}
		},
		dot: func(a, b []Elem) Elem {
			var acc Elem
			for i := range a {
				acc ^= f.Mul(a[i], b[i])
			}
			return acc
		},
		horner: func(word []Elem, x Elem) Elem {
			var acc Elem
			for _, r := range word {
				acc = f.Mul(acc, x) ^ r
			}
			return acc
		},
		eval: func(coeffs []Elem, x Elem) Elem {
			var acc Elem
			for i := len(coeffs) - 1; i >= 0; i-- {
				acc = f.Mul(acc, x) ^ coeffs[i]
			}
			return acc
		},
		syndrome: func(dst, word, xs []Elem) {
			for j, x := range xs {
				var acc Elem
				for _, r := range word {
					acc = f.Mul(acc, x) ^ r
				}
				dst[j] = acc
			}
		},
		hornerBit: func(bits []byte, x Elem) Elem {
			var acc Elem
			for _, b := range bits {
				acc = f.Mul(acc, x) ^ Elem(b)
			}
			return acc
		},
		syndromeBit: func(dst []Elem, bits []byte, xs []Elem) {
			for j, x := range xs {
				var acc Elem
				for _, b := range bits {
					acc = f.Mul(acc, x) ^ Elem(b)
				}
				dst[j] = acc
			}
		},
	}
}

func buildPackedOps(f *Field) *tierOps {
	if f.m > packedMaxM {
		return nil
	}
	packed := make([]uint64, f.order)
	for c := 0; c < f.order; c++ {
		var w uint64
		for x := 0; x < f.order; x++ {
			w |= uint64(f.Mul(Elem(c), Elem(x))) << (4 * x)
		}
		packed[c] = w
	}
	return &tierOps{
		packed: packed,
		mulConst: func(dst, src []Elem, c Elem) {
			w := packed[c]
			for i, s := range src {
				dst[i] = Elem(w >> (uint(s) * 4) & 0xF)
			}
		},
		mulConstAdd: func(dst, src []Elem, c Elem) {
			w := packed[c]
			for i, s := range src {
				dst[i] ^= Elem(w >> (uint(s) * 4) & 0xF)
			}
		},
		horner: func(word []Elem, x Elem) Elem {
			w := packed[x]
			var acc Elem
			for _, r := range word {
				acc = Elem(w>>(uint(acc)*4)&0xF) ^ r
			}
			return acc
		},
		eval: func(coeffs []Elem, x Elem) Elem {
			w := packed[x]
			var acc Elem
			for i := len(coeffs) - 1; i >= 0; i-- {
				acc = Elem(w>>(uint(acc)*4)&0xF) ^ coeffs[i]
			}
			return acc
		},
		hornerBit: func(bits []byte, x Elem) Elem {
			w := packed[x]
			var acc Elem
			for _, b := range bits {
				acc = Elem(w>>(uint(acc)*4)&0xF) ^ Elem(b)
			}
			return acc
		},
	}
}

func buildTableOps(f *Field) *tierOps {
	if f.m > tableMaxM {
		return nil
	}
	order := f.order
	mul := make([]Elem, order*order)
	for c := 0; c < order; c++ {
		row := mul[c*order : (c+1)*order]
		for x := 0; x < order; x++ {
			row[x] = f.Mul(Elem(c), Elem(x))
		}
	}
	row := func(c Elem) []Elem { return mul[int(c)*order : int(c)*order+order] }
	hornerRow := func(word []Elem, r []Elem) Elem {
		var acc Elem
		for _, s := range word {
			acc = r[acc] ^ s
		}
		return acc
	}
	hornerBitRow := func(bits []byte, r []Elem) Elem {
		var acc Elem
		for _, b := range bits {
			acc = r[acc] ^ Elem(b)
		}
		return acc
	}
	return &tierOps{
		mul: mul,
		mulConst: func(dst, src []Elem, c Elem) {
			r := row(c)
			for i, s := range src {
				dst[i] = r[s]
			}
		},
		mulConstAdd: func(dst, src []Elem, c Elem) {
			r := row(c)
			for i, s := range src {
				dst[i] ^= r[s]
			}
		},
		dot: func(a, b []Elem) Elem {
			var acc Elem
			for i := range a {
				acc ^= mul[int(a[i])*order+int(b[i])]
			}
			return acc
		},
		horner: func(word []Elem, x Elem) Elem {
			return hornerRow(word, row(x))
		},
		eval: func(coeffs []Elem, x Elem) Elem {
			r := row(x)
			var acc Elem
			for i := len(coeffs) - 1; i >= 0; i-- {
				acc = r[acc] ^ coeffs[i]
			}
			return acc
		},
		// Four independent accumulator chains per pass over the word, so
		// the dependent table lookups pipeline the way the paper's four
		// SIMD lanes do.
		syndrome: func(dst, word, xs []Elem) {
			j := 0
			for ; j+4 <= len(xs); j += 4 {
				r0, r1, r2, r3 := row(xs[j]), row(xs[j+1]), row(xs[j+2]), row(xs[j+3])
				var a0, a1, a2, a3 Elem
				for _, r := range word {
					a0 = r0[a0] ^ r
					a1 = r1[a1] ^ r
					a2 = r2[a2] ^ r
					a3 = r3[a3] ^ r
				}
				dst[j], dst[j+1], dst[j+2], dst[j+3] = a0, a1, a2, a3
			}
			for ; j < len(xs); j++ {
				dst[j] = hornerRow(word, row(xs[j]))
			}
		},
		hornerBit: func(bits []byte, x Elem) Elem {
			return hornerBitRow(bits, row(x))
		},
		syndromeBit: func(dst []Elem, bits []byte, xs []Elem) {
			j := 0
			for ; j+4 <= len(xs); j += 4 {
				r0, r1, r2, r3 := row(xs[j]), row(xs[j+1]), row(xs[j+2]), row(xs[j+3])
				var a0, a1, a2, a3 Elem
				for _, b := range bits {
					e := Elem(b)
					a0 = r0[a0] ^ e
					a1 = r1[a1] ^ e
					a2 = r2[a2] ^ e
					a3 = r3[a3] ^ e
				}
				dst[j], dst[j+1], dst[j+2], dst[j+3] = a0, a1, a2, a3
			}
			for ; j < len(xs); j++ {
				dst[j] = hornerBitRow(bits, row(xs[j]))
			}
		},
	}
}
