package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// allFields returns one default field per supported degree plus the AES
// field, covering both primitive and non-primitive polynomials.
func allFields(t *testing.T) []*Field {
	t.Helper()
	var fs []*Field
	for m := 2; m <= MaxM; m++ {
		fs = append(fs, MustDefault(m))
	}
	fs = append(fs, AES())
	return fs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0x3); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := New(17, 0x3); err == nil {
		t.Error("m=17 accepted")
	}
	if _, err := New(4, 0x13<<1); err == nil {
		t.Error("degree mismatch accepted")
	}
	if _, err := New(4, 0x1F); err != nil { // x^4+x^3+x^2+x+1 is irreducible (5th cyclotomic)
		t.Errorf("0x1F rejected: %v; it is irreducible of degree 4", err)
	}
	if _, err := New(4, 0x11); err == nil { // x^4+1 = (x+1)^4 reducible
		t.Error("reducible x^4+1 accepted")
	}
}

func TestDefaultPolysArePrimitive(t *testing.T) {
	for m := 1; m <= MaxM; m++ {
		p, err := DefaultPoly(m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if !Irreducible(uint64(p)) {
			t.Errorf("m=%d default poly %#x not irreducible", m, p)
		}
		if !Primitive(uint64(p)) {
			t.Errorf("m=%d default poly %#x not primitive", m, p)
		}
	}
}

func TestAESFieldNotPrimitiveButIrreducible(t *testing.T) {
	if !Irreducible(0x11B) {
		t.Fatal("AES poly must be irreducible")
	}
	if Primitive(0x11B) {
		t.Fatal("AES poly must not be primitive (x has order 51)")
	}
	f := AES()
	if f.GeneratorIsX() {
		t.Fatal("AES field generator should not be x")
	}
	if f.Generator() != 0x03 {
		t.Fatalf("AES generator = %#x, want 0x03", f.Generator())
	}
}

func TestKnownAESProducts(t *testing.T) {
	// Classic worked example: {53} * {CA} = {01} in the AES field.
	f := AES()
	cases := []struct{ a, b, want Elem }{
		{0x53, 0xCA, 0x01},
		{0x02, 0x87, 0x15}, // xtime over the reduction boundary: 0x87<<1 ^ 0x11B = 0x15
		{0x03, 0x6E, 0xB2},
		{0x57, 0x83, 0xC1}, // FIPS-197 worked example
		{0x00, 0xFF, 0x00},
		{0x01, 0xFF, 0xFF},
	}
	for _, c := range cases {
		if got := f.Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x,%#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
		if got := f.MulNoTable(c.a, c.b); got != c.want {
			t.Errorf("MulNoTable(%#x,%#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulAgreesWithMulNoTable(t *testing.T) {
	for _, f := range allFields(t) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 2000; i++ {
			a := Elem(rng.Intn(f.Order()))
			b := Elem(rng.Intn(f.Order()))
			if f.Mul(a, b) != f.MulNoTable(a, b) {
				t.Fatalf("%v: Mul(%#x,%#x) != MulNoTable", f, a, b)
			}
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	// Exhaustive for small fields, sampled for large.
	for _, f := range []*Field{MustDefault(2), MustDefault(3), MustDefault(4), MustDefault(5), AES()} {
		n := f.Order()
		one := Elem(1)
		for a := 0; a < n; a++ {
			ea := Elem(a)
			if f.Mul(ea, one) != ea {
				t.Fatalf("%v: %#x*1 != %#x", f, a, a)
			}
			if f.Add(ea, ea) != 0 {
				t.Fatalf("%v: a+a != 0", f)
			}
			if ea != 0 {
				if f.Mul(ea, f.Inv(ea)) != one {
					t.Fatalf("%v: a*a^-1 != 1 for %#x", f, a)
				}
			}
			for b := 0; b < n; b++ {
				eb := Elem(b)
				if f.Mul(ea, eb) != f.Mul(eb, ea) {
					t.Fatalf("%v: commutativity fails", f)
				}
			}
		}
	}
}

func TestDistributivityQuick(t *testing.T) {
	for _, f := range allFields(t) {
		f := f
		mask := Elem(f.Order() - 1)
		prop := func(a, b, c Elem) bool {
			a, b, c = a&mask, b&mask, c&mask
			return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
}

func TestAssociativityQuick(t *testing.T) {
	for _, f := range allFields(t) {
		f := f
		mask := Elem(f.Order() - 1)
		prop := func(a, b, c Elem) bool {
			a, b, c = a&mask, b&mask, c&mask
			return f.Mul(a, f.Mul(b, c)) == f.Mul(f.Mul(a, b), c)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
}

func TestSqrMatchesMul(t *testing.T) {
	for _, f := range allFields(t) {
		for a := 0; a < f.Order(); a++ {
			ea := Elem(a)
			want := f.Mul(ea, ea)
			if got := f.Sqr(ea); got != want {
				t.Fatalf("%v: Sqr(%#x) = %#x want %#x", f, a, got, want)
			}
			if got := f.SqrNoTable(ea); got != want {
				t.Fatalf("%v: SqrNoTable(%#x) = %#x want %#x", f, a, got, want)
			}
		}
	}
}

func TestSquareIsLinear(t *testing.T) {
	// Frobenius: (a+b)^2 == a^2 + b^2, the property that makes the square
	// primitive so much cheaper than the multiplier.
	for _, f := range allFields(t) {
		f := f
		mask := Elem(f.Order() - 1)
		prop := func(a, b Elem) bool {
			a, b = a&mask, b&mask
			return f.Sqr(f.Add(a, b)) == f.Add(f.Sqr(a), f.Sqr(b))
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
}

func TestInverseVariantsAgree(t *testing.T) {
	for _, f := range allFields(t) {
		for a := 1; a < f.Order(); a++ {
			ea := Elem(a)
			want := f.Inv(ea)
			if got := f.InvITA(ea); got != want {
				t.Fatalf("%v: InvITA(%#x) = %#x want %#x", f, a, got, want)
			}
			if got := f.InvEuclid(ea); got != want {
				t.Fatalf("%v: InvEuclid(%#x) = %#x want %#x", f, a, got, want)
			}
			if got := f.InvFermat(ea); got != want {
				t.Fatalf("%v: InvFermat(%#x) = %#x want %#x", f, a, got, want)
			}
		}
	}
}

func TestInverseOfZeroPanics(t *testing.T) {
	f := MustDefault(8)
	for name, fn := range map[string]func(){
		"Inv":       func() { f.Inv(0) },
		"InvITA":    func() { f.InvITA(0) },
		"InvEuclid": func() { f.InvEuclid(0) },
		"Div":       func() { f.Div(1, 0) },
		"Log":       func() { f.Log(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(0) did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestITAOpCounts(t *testing.T) {
	// The paper wires the m=8 single-cycle inverse as 4 multiplications and
	// 7 squares (Section 2.4.3). Verify that our chain matches, and that no
	// supported field needs more than the 16 mult / 28 square primitives of
	// the SIMD datapath (4 lanes x 4 muls, 4 lanes x 7 squares).
	counts := map[int]ITATrace{}
	for m := 2; m <= 8; m++ {
		f := MustDefault(m)
		_, tr := f.InvITAOps(Elem(3))
		counts[m] = tr
		if tr.Muls > 4 || tr.Squares > 7 {
			t.Errorf("m=%d ITA uses %d muls %d squares, exceeds paper datapath (4,7)", m, tr.Muls, tr.Squares)
		}
	}
	if counts[8].Muls != 4 || counts[8].Squares != 7 {
		t.Errorf("m=8 ITA = %+v, paper specifies 4 muls + 7 squares", counts[8])
	}
}

func TestPowConsistency(t *testing.T) {
	f := MustDefault(6)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a := Elem(rng.Intn(f.Order()))
		e := rng.Intn(200)
		want := Elem(1)
		for j := 0; j < e; j++ {
			want = f.Mul(want, a)
		}
		if got := f.Pow(a, e); got != want {
			t.Fatalf("Pow(%#x,%d) = %#x want %#x", a, e, got, want)
		}
	}
	if f.Pow(0, 0) != 1 {
		t.Error("0^0 != 1")
	}
	if f.Pow(0, 5) != 0 {
		t.Error("0^5 != 0")
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	for _, f := range allFields(t) {
		for a := 1; a < f.Order(); a++ {
			if f.Exp(f.Log(Elem(a))) != Elem(a) {
				t.Fatalf("%v: exp(log(%#x)) mismatch", f, a)
			}
		}
		if f.Exp(-1) != f.Exp(f.N()-1) {
			t.Errorf("%v: negative Exp index not wrapped", f)
		}
	}
}

func TestGeneratorOrder(t *testing.T) {
	for _, f := range allFields(t) {
		g := f.Generator()
		seen := map[Elem]bool{}
		v := Elem(1)
		for i := 0; i < f.N(); i++ {
			if seen[v] {
				t.Fatalf("%v: generator %#x has order < %d", f, g, f.N())
			}
			seen[v] = true
			v = f.Mul(v, g)
		}
		if v != 1 {
			t.Fatalf("%v: generator %#x order != %d", f, g, f.N())
		}
	}
}

func TestCarrylessMulProperties(t *testing.T) {
	prop := func(a, b uint16) bool {
		// Commutative and degree-additive.
		x, y := uint32(a), uint32(b)
		p := CarrylessMul(x, y)
		if p != CarrylessMul(y, x) {
			return false
		}
		if a != 0 && b != 0 {
			if PolyDegree(p) != PolyDegree(uint64(a))+PolyDegree(uint64(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	if CarrylessMul(0b101, 0b11) != 0b1111 {
		t.Error("(x^2+1)(x+1) != x^3+x^2+x+1")
	}
}

func TestReduceWithMatrixEquivalence(t *testing.T) {
	// The hardware reduces with the P-matrix linear transform; it must equal
	// direct polynomial reduction for every product, for every irreducible
	// polynomial of every supported small degree. This is the correctness
	// core of the paper's configurable multiplier.
	for m := 2; m <= 8; m++ {
		for _, p := range IrreduciblePolys(m) {
			rows := ReductionMatrix(p)
			if len(rows) != m-1 {
				t.Fatalf("m=%d poly=%#x: %d rows, want %d", m, p, len(rows), m-1)
			}
			for a := 0; a < 1<<m; a++ {
				for b := 0; b < 1<<m; b++ {
					c := CarrylessMul(uint32(a), uint32(b))
					want := uint32(ReducePoly(c, uint64(p)))
					got := ReduceWithMatrix(c, rows, m)
					if got != want {
						t.Fatalf("m=%d poly=%#x: reduce(%#x*%#x) matrix=%#x direct=%#x", m, p, a, b, got, want)
					}
				}
				if m >= 7 && a > 64 {
					break // keep exhaustive cost bounded for big fields
				}
			}
		}
	}
}

func TestIrreduciblePolyCounts(t *testing.T) {
	// Known counts of monic irreducible polynomials over GF(2):
	// degree: 2->1, 3->2, 4->3, 5->6, 6->9, 7->18, 8->30.
	want := map[int]int{2: 1, 3: 2, 4: 3, 5: 6, 6: 9, 7: 18, 8: 30}
	for m, w := range want {
		if got := len(IrreduciblePolys(m)); got != w {
			t.Errorf("deg %d: %d irreducible polys, want %d", m, got, w)
		}
	}
	// Known primitive counts: phi(2^m-1)/m: 2->1, 3->2, 4->2, 5->6, 6->6, 7->18, 8->16.
	wantP := map[int]int{2: 1, 3: 2, 4: 2, 5: 6, 6: 6, 7: 18, 8: 16}
	for m, w := range wantP {
		if got := len(PrimitivePolys(m)); got != w {
			t.Errorf("deg %d: %d primitive polys, want %d", m, got, w)
		}
	}
}

func TestEveryIrreduciblePolyMakesAField(t *testing.T) {
	// The paper's headline flexibility: arbitrary irreducible polynomials for
	// m in 2..8. Construct every such field and sanity-check inverses.
	for m := 2; m <= 8; m++ {
		for _, p := range IrreduciblePolys(m) {
			f, err := New(m, p)
			if err != nil {
				t.Fatalf("m=%d poly=%#x: %v", m, p, err)
			}
			for a := 1; a < f.Order(); a += 7 {
				if f.Mul(Elem(a), f.Inv(Elem(a))) != 1 {
					t.Fatalf("%v: inverse broken for %#x", f, a)
				}
			}
		}
	}
}

func TestPolyString(t *testing.T) {
	cases := map[uint64]string{
		0:     "0",
		1:     "1",
		2:     "x",
		0x13:  "x^4+x+1",
		0x11B: "x^8+x^4+x^3+x+1",
	}
	for p, want := range cases {
		if got := PolyString(p); got != want {
			t.Errorf("PolyString(%#x) = %q want %q", p, got, want)
		}
	}
}

func TestSpreadBits(t *testing.T) {
	if SpreadBits(0b1011) != 0b1000101 {
		t.Errorf("SpreadBits(0b1011) = %b", SpreadBits(0b1011))
	}
	// Squaring via spread+reduce equals Mul(a,a) — covered in TestSqrMatchesMul,
	// here check the raw spread against shift arithmetic.
	for a := uint32(0); a < 256; a++ {
		if SpreadBits(a) != CarrylessMul(a, a) {
			t.Fatalf("spread(%#x) != clmul(a,a)", a)
		}
	}
}

func TestValid(t *testing.T) {
	f := MustDefault(5)
	if !f.Valid(31) || f.Valid(32) {
		t.Error("Valid boundary wrong for m=5")
	}
}

func TestFieldStringer(t *testing.T) {
	f := MustDefault(4)
	if f.String() != "GF(2^4)/x^4+x+1" {
		t.Errorf("String() = %q", f.String())
	}
}
