package gf

import "testing"

// TestPowNegativeExponents pins the negative-exponent contract across
// field widths: a^-e == (a^-1)^e == (a^e)^-1, periodicity modulo 2^m-1,
// and the extreme int16-ish magnitudes a caller might compute from a
// degree difference.
func TestPowNegativeExponents(t *testing.T) {
	for _, m := range []int{2, 4, 8, 12} {
		f := MustDefault(m)
		n := f.N()
		for _, a := range []Elem{1, 2, 3, Elem(n - 1), Elem(n)} {
			if !f.Valid(a) || a == 0 {
				continue
			}
			inv := f.Inv(a)
			for _, e := range []int{-1, -2, -7, -n, -n - 1, -3 * n, -(1 << 20)} {
				want := Elem(1)
				for i := 0; i < ((-e)%n+n)%n; i++ {
					want = f.Mul(want, a)
				}
				want = f.Inv(want)
				got := f.Pow(a, e)
				if got != want {
					t.Fatalf("m=%d: Pow(%#x,%d) = %#x, want %#x", m, a, e, got, want)
				}
				if alt := f.Pow(inv, -e); alt != got {
					t.Fatalf("m=%d: Pow(a,%d)=%#x but Pow(a^-1,%d)=%#x", m, e, got, -e, alt)
				}
				// Periodicity: shifting the exponent by the group order is a
				// no-op.
				if per := f.Pow(a, e+n); per != got {
					t.Fatalf("m=%d: Pow(%#x,%d)=%#x != Pow(..,%d)=%#x", m, a, e+n, per, e, got)
				}
			}
			if got := f.Pow(a, -1); got != inv {
				t.Fatalf("m=%d: Pow(%#x,-1) = %#x, want Inv = %#x", m, a, got, inv)
			}
		}
	}
}

// TestExpNegativeIndex pins Exp's modular index handling far below zero,
// where a naive `i % n` would index negatively.
func TestExpNegativeIndex(t *testing.T) {
	for _, m := range []int{3, 8, 16} {
		f := MustDefault(m)
		n := f.N()
		for _, i := range []int{-1, -2, -n, -n - 1, -2*n + 3, -(1 << 30)} {
			want := f.Exp(((i % n) + n) % n)
			if got := f.Exp(i); got != want {
				t.Fatalf("m=%d: Exp(%d) = %#x, want %#x", m, i, got, want)
			}
			// Exp(i) * Exp(-i) == g^0 == 1.
			if p := f.Mul(f.Exp(i), f.Exp(-i)); p != 1 {
				t.Fatalf("m=%d: Exp(%d)*Exp(%d) = %#x, want 1", m, i, -i, p)
			}
		}
		if f.Exp(-n) != 1 || f.Exp(0) != 1 {
			t.Fatalf("m=%d: Exp at multiples of n must be 1", m)
		}
	}
}
