package gf

// Bulk (slice-at-a-time) arithmetic: the software analogue of the paper's
// 4-way SIMD GF instructions. Where the GF processor wires 16 multiplier
// primitives into gfMult4/gfSquare4/gfInv4 so a whole vector of symbols
// moves through the datapath in one cycle, this layer replaces the
// symbol-at-a-time Field.Mul route (two table lookups plus a zero branch
// per product) with flat mul-by-constant rows applied across whole slices
// — one dependent lookup per symbol, and four independent accumulator
// chains in the syndrome kernel so the lookups pipeline the way the
// hardware lanes do.
//
// Three implementation tiers, selected per field:
//
//   - m <= 4: each mul-by-constant row (<= 16 products of <= 4 bits) packs
//     into a single 64-bit word, so a product is a register shift+mask
//     with no memory traffic at all — the nibble-split trick, cousin of
//     the paper's gf32bMult packing.
//   - m <= 8: a flat order x order product table; row c is a contiguous
//     256-entry (at most) slice, one L1 lookup per product.
//   - m > 8 (and ScalarKernels): the pure-scalar reference path on top of
//     Field.Mul. This is the behavioral specification; the property tests
//     assert the table and packed tiers agree with it exactly.
//
// All operations are allocation-free: callers own every buffer.

import "fmt"

// packedMaxM is the largest extension degree whose mul-by-constant rows
// fit one uint64 (16 products x 4 bits).
const packedMaxM = 4

// tableMaxM is the largest extension degree for which the flat product
// table is built (2^8 x 2^8 entries = 128 KiB of Elem).
const tableMaxM = 8

// Kernels provides bulk slice operations over one field. Obtain one with
// Field.Kernels (fast path: tables for m <= 8, scalar above) or
// Field.ScalarKernels (the pure-scalar reference used by tests and A/B
// benchmarks). A Kernels is immutable after construction and safe for
// concurrent use by any number of goroutines.
//
// Inputs must be valid field elements (Field.Valid); out-of-field values
// may panic (table tiers) or produce junk (packed tier), exactly as the
// scalar table lookups in Field.Mul do.
type Kernels struct {
	f      *Field
	order  int
	tier   kernelTier
	mul    []Elem   // flat product table, row c at [c*order : (c+1)*order]; nil on the scalar tier
	packed []uint64 // packed rows for m <= packedMaxM; nil otherwise
}

// Kernels returns the field's bulk-arithmetic kernels, built lazily on
// first use and cached on the Field. For m <= 8 the table tiers are used;
// wider fields fall back to the scalar reference (still correct, no
// tables).
func (f *Field) Kernels() *Kernels {
	f.kernOnce.Do(f.buildKernels)
	return f.kern
}

// ScalarKernels returns the pure-scalar reference kernels: same API,
// every product routed through Field.Mul. Tests and benchmarks use it as
// the behavioral baseline the table tiers are checked against.
func (f *Field) ScalarKernels() *Kernels {
	f.kernOnce.Do(f.buildKernels)
	return f.scalarKern
}

func (f *Field) buildKernels() {
	f.scalarKern = &Kernels{f: f, order: f.order, tier: tierScalar}
	if f.m > tableMaxM {
		f.kern = f.scalarKern
		return
	}
	k := &Kernels{f: f, order: f.order, tier: tierTable}
	if f.m <= packedMaxM {
		k.tier = tierPacked
	}
	k.mul = make([]Elem, f.order*f.order)
	for c := 0; c < f.order; c++ {
		row := k.mul[c*f.order : (c+1)*f.order]
		for x := 0; x < f.order; x++ {
			row[x] = f.Mul(Elem(c), Elem(x))
		}
	}
	if f.m <= packedMaxM {
		k.packed = make([]uint64, f.order)
		for c := 0; c < f.order; c++ {
			var w uint64
			for x := 0; x < f.order; x++ {
				w |= uint64(f.Mul(Elem(c), Elem(x))) << (4 * x)
			}
			k.packed[c] = w
		}
	}
	f.kern = k
}

// Field returns the field these kernels operate in.
func (k *Kernels) Field() *Field { return k.f }

// Table reports whether the table tiers are active (false on the scalar
// reference path and for fields with m > 8).
func (k *Kernels) Table() bool { return k.mul != nil }

// row returns the mul-by-c table row (table tier only).
func (k *Kernels) row(c Elem) []Elem {
	o := k.order
	return k.mul[int(c)*o : int(c)*o+o]
}

// AddSlice sets dst[i] = a[i] + b[i] (XOR). dst may alias a or b. All
// three slices must have equal length.
func (k *Kernels) AddSlice(dst, a, b []Elem) {
	if len(a) != len(dst) || len(b) != len(dst) {
		panic(fmt.Sprintf("gf: AddSlice length mismatch dst=%d a=%d b=%d", len(dst), len(a), len(b)))
	}
	k.hit()
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = a[i] ^ b[i]
		dst[i+1] = a[i+1] ^ b[i+1]
		dst[i+2] = a[i+2] ^ b[i+2]
		dst[i+3] = a[i+3] ^ b[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] ^ b[i]
	}
}

// XorSlice folds src into dst: dst[i] ^= src[i]. src must not be longer
// than dst.
func (k *Kernels) XorSlice(dst, src []Elem) {
	if len(src) > len(dst) {
		panic(fmt.Sprintf("gf: XorSlice src length %d exceeds dst %d", len(src), len(dst)))
	}
	k.hit()
	for i, v := range src {
		dst[i] ^= v
	}
}

// MulConstSlice sets dst[i] = c * src[i]. dst may alias src. Both slices
// must have equal length.
func (k *Kernels) MulConstSlice(dst, src []Elem, c Elem) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf: MulConstSlice length mismatch dst=%d src=%d", len(dst), len(src)))
	}
	k.hit()
	switch {
	case c == 0:
		for i := range dst {
			dst[i] = 0
		}
	case c == 1:
		copy(dst, src)
	case k.packed != nil:
		w := k.packed[c]
		for i, s := range src {
			dst[i] = Elem(w >> (uint(s) * 4) & 0xF)
		}
	case k.mul != nil:
		row := k.row(c)
		for i, s := range src {
			dst[i] = row[s]
		}
	default:
		for i, s := range src {
			dst[i] = k.f.Mul(c, s)
		}
	}
}

// MulConstAddSlice folds c * src into dst: dst[i] ^= c * src[i] — the
// LFSR/encode primitive (one generator-row update per feedback symbol).
// dst must not alias src. Both slices must have equal length.
func (k *Kernels) MulConstAddSlice(dst, src []Elem, c Elem) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf: MulConstAddSlice length mismatch dst=%d src=%d", len(dst), len(src)))
	}
	k.hit()
	switch {
	case c == 0:
	case c == 1:
		k.XorSlice(dst, src)
	case k.packed != nil:
		w := k.packed[c]
		for i, s := range src {
			dst[i] ^= Elem(w >> (uint(s) * 4) & 0xF)
		}
	case k.mul != nil:
		row := k.row(c)
		for i, s := range src {
			dst[i] ^= row[s]
		}
	default:
		for i, s := range src {
			dst[i] ^= k.f.Mul(c, s)
		}
	}
}

// DotSlice returns the inner product sum_i a[i]*b[i]. Both slices must
// have equal length.
func (k *Kernels) DotSlice(a, b []Elem) Elem {
	if len(a) != len(b) {
		panic(fmt.Sprintf("gf: DotSlice length mismatch a=%d b=%d", len(a), len(b)))
	}
	k.hit()
	var acc Elem
	if k.mul == nil {
		for i := range a {
			acc ^= k.f.Mul(a[i], b[i])
		}
		return acc
	}
	o := k.order
	for i := range a {
		acc ^= k.mul[int(a[i])*o+int(b[i])]
	}
	return acc
}

// HornerSlice evaluates the polynomial whose coefficients are given in
// transmission order — word[0] is the highest-degree coefficient — at x:
//
//	acc <- acc*x + word[i]   for i = 0..len(word)-1
//
// This is the received-word layout of the RS/BCH codecs and the paper's
// syndrome recursion S_j <- S_j*alpha^j + R.
func (k *Kernels) HornerSlice(word []Elem, x Elem) Elem {
	k.hit()
	var acc Elem
	switch {
	case k.packed != nil:
		w := k.packed[x]
		for _, r := range word {
			acc = Elem(w>>(uint(acc)*4)&0xF) ^ r
		}
	case k.mul != nil:
		row := k.row(x)
		for _, r := range word {
			acc = row[acc] ^ r
		}
	default:
		for _, r := range word {
			acc = k.f.Mul(acc, x) ^ r
		}
	}
	return acc
}

// EvalSlice evaluates the polynomial with coeffs[i] the coefficient of
// x^i (package gfpoly's storage order) at x by Horner's rule.
func (k *Kernels) EvalSlice(coeffs []Elem, x Elem) Elem {
	k.hit()
	var acc Elem
	switch {
	case k.packed != nil:
		w := k.packed[x]
		for i := len(coeffs) - 1; i >= 0; i-- {
			acc = Elem(w>>(uint(acc)*4)&0xF) ^ coeffs[i]
		}
	case k.mul != nil:
		row := k.row(x)
		for i := len(coeffs) - 1; i >= 0; i-- {
			acc = row[acc] ^ coeffs[i]
		}
	default:
		for i := len(coeffs) - 1; i >= 0; i-- {
			acc = k.f.Mul(acc, x) ^ coeffs[i]
		}
	}
	return acc
}

// SyndromeSlice sets dst[j] = HornerSlice(word, xs[j]) for every
// evaluation point, four points per pass over the word — the software
// image of the paper's 4-lane SIMD syndrome kernel: four independent
// accumulator chains overlap their table lookups instead of serializing
// them. dst and xs must have equal length.
func (k *Kernels) SyndromeSlice(dst []Elem, word []Elem, xs []Elem) {
	if len(dst) != len(xs) {
		panic(fmt.Sprintf("gf: SyndromeSlice length mismatch dst=%d xs=%d", len(dst), len(xs)))
	}
	k.hit()
	j := 0
	if k.mul != nil {
		for ; j+4 <= len(xs); j += 4 {
			r0, r1, r2, r3 := k.row(xs[j]), k.row(xs[j+1]), k.row(xs[j+2]), k.row(xs[j+3])
			var a0, a1, a2, a3 Elem
			for _, r := range word {
				a0 = r0[a0] ^ r
				a1 = r1[a1] ^ r
				a2 = r2[a2] ^ r
				a3 = r3[a3] ^ r
			}
			dst[j], dst[j+1], dst[j+2], dst[j+3] = a0, a1, a2, a3
		}
	}
	for ; j < len(xs); j++ {
		dst[j] = k.HornerSlice(word, xs[j])
	}
}

// HornerBitSlice is HornerSlice for a binary word stored one bit per
// byte (values 0/1), the BCH codeword layout.
func (k *Kernels) HornerBitSlice(bits []byte, x Elem) Elem {
	k.hit()
	var acc Elem
	switch {
	case k.packed != nil:
		w := k.packed[x]
		for _, b := range bits {
			acc = Elem(w>>(uint(acc)*4)&0xF) ^ Elem(b)
		}
	case k.mul != nil:
		row := k.row(x)
		for _, b := range bits {
			acc = row[acc] ^ Elem(b)
		}
	default:
		for _, b := range bits {
			acc = k.f.Mul(acc, x) ^ Elem(b)
		}
	}
	return acc
}

// SyndromeBitSlice is SyndromeSlice for a binary word stored one bit per
// byte — the BCH syndrome kernel, four evaluation points per pass.
func (k *Kernels) SyndromeBitSlice(dst []Elem, bits []byte, xs []Elem) {
	if len(dst) != len(xs) {
		panic(fmt.Sprintf("gf: SyndromeBitSlice length mismatch dst=%d xs=%d", len(dst), len(xs)))
	}
	k.hit()
	j := 0
	if k.mul != nil {
		for ; j+4 <= len(xs); j += 4 {
			r0, r1, r2, r3 := k.row(xs[j]), k.row(xs[j+1]), k.row(xs[j+2]), k.row(xs[j+3])
			var a0, a1, a2, a3 Elem
			for _, b := range bits {
				e := Elem(b)
				a0 = r0[a0] ^ e
				a1 = r1[a1] ^ e
				a2 = r2[a2] ^ e
				a3 = r3[a3] ^ e
			}
			dst[j], dst[j+1], dst[j+2], dst[j+3] = a0, a1, a2, a3
		}
	}
	for ; j < len(xs); j++ {
		dst[j] = k.HornerBitSlice(bits, xs[j])
	}
}

// LFSR is a multiply-accumulate bank precomputed for one fixed
// coefficient vector — a generator polynomial in transmission order, the
// systematic encoder's feedback taps. On the table tiers every possible
// feedback row fb*coeffs is materialized once, so an LFSR step collapses
// to a single fused shift-XOR pass with no multiplies at all: the
// software image of the paper's hard-wired encoder datapath, where the
// constant multiplications are baked into the routing.
//
// An LFSR is immutable after construction and safe for concurrent use.
type LFSR struct {
	k      *Kernels
	nk     int
	coeffs []Elem
	tab    []Elem // flat order x nk feedback rows; nil on the scalar tier
}

// NewLFSR builds the feedback bank for the given taps (len >= 1).
func (k *Kernels) NewLFSR(coeffs []Elem) *LFSR {
	if len(coeffs) == 0 {
		panic("gf: NewLFSR with no coefficients")
	}
	l := &LFSR{k: k, nk: len(coeffs), coeffs: append([]Elem(nil), coeffs...)}
	if k.mul != nil {
		l.tab = make([]Elem, k.order*l.nk)
		for fb := 0; fb < k.order; fb++ {
			k.MulConstSlice(l.tab[fb*l.nk:(fb+1)*l.nk], l.coeffs, Elem(fb))
		}
	}
	return l
}

// Run feeds msg through the register: for each symbol s,
//
//	feedback = s ^ par[0]; par shifts down one; par ^= feedback*coeffs
//
// updating par (length = len(coeffs)) in place. Seed par with zeros to
// compute the systematic RS parity of msg.
func (l *LFSR) Run(par, msg []Elem) {
	nk := l.nk
	if len(par) != nk {
		panic(fmt.Sprintf("gf: LFSR.Run register length %d, want %d", len(par), nk))
	}
	l.k.hit()
	if l.tab == nil {
		for _, s := range msg {
			fb := s ^ par[0]
			copy(par, par[1:])
			par[nk-1] = 0
			if fb != 0 {
				l.k.MulConstAddSlice(par, l.coeffs, fb)
			}
		}
		return
	}
	for _, s := range msg {
		fb := s ^ par[0]
		if fb == 0 {
			copy(par, par[1:])
			par[nk-1] = 0
			continue
		}
		row := l.tab[int(fb)*nk : int(fb)*nk+nk]
		// Fused shift + XOR: each write at j consumes the old value at
		// j+1 before the next iteration overwrites it.
		j := 0
		for ; j+4 <= nk-1; j += 4 {
			par[j] = par[j+1] ^ row[j]
			par[j+1] = par[j+2] ^ row[j+1]
			par[j+2] = par[j+3] ^ row[j+2]
			par[j+3] = par[j+4] ^ row[j+3]
		}
		for ; j < nk-1; j++ {
			par[j] = par[j+1] ^ row[j]
		}
		par[nk-1] = row[nk-1]
	}
}

// GatherStride copies len(dst) elements src[off], src[off+stride], ...
// into dst — the deinterleave copy kernel (column i of a depth-`stride`
// interleaved frame is off=i).
func GatherStride(dst, src []Elem, off, stride int) {
	if stride == 1 {
		copy(dst, src[off:])
		return
	}
	si := off
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = src[si]
		dst[i+1] = src[si+stride]
		dst[i+2] = src[si+2*stride]
		dst[i+3] = src[si+3*stride]
		si += 4 * stride
	}
	for ; i < len(dst); i++ {
		dst[i] = src[si]
		si += stride
	}
}

// ScatterStride copies len(src) elements of src into dst[off],
// dst[off+stride], ... — the interleave copy kernel, inverse of
// GatherStride.
func ScatterStride(dst, src []Elem, off, stride int) {
	if stride == 1 {
		copy(dst[off:], src)
		return
	}
	di := off
	i := 0
	for ; i+4 <= len(src); i += 4 {
		dst[di] = src[i]
		dst[di+stride] = src[i+1]
		dst[di+2*stride] = src[i+2]
		dst[di+3*stride] = src[i+3]
		di += 4 * stride
	}
	for ; i < len(src); i++ {
		dst[di] = src[i]
		di += stride
	}
}
