package gf

// Bulk (slice-at-a-time) arithmetic: the software analogue of the paper's
// 4-way SIMD GF instructions. Where the GF processor wires 16 multiplier
// primitives into gfMult4/gfSquare4/gfInv4 so a whole vector of symbols
// moves through the datapath in one cycle, this layer replaces the
// symbol-at-a-time Field.Mul route (two table lookups plus a zero branch
// per product) with whole-slice kernels.
//
// The implementation strategies live in a pluggable tier registry (see
// tier.go): classic lookup tiers (packed rows for m <= 4, a flat product
// table for m <= 8), a computed 64-bit SWAR tier (bitslice.go) and a
// carry-less-multiply tier (clmul.go). Every exported operation picks
// its tier per call from the calibrated per-(field, op, length)
// selection — overridable process-wide via GFP_KERNEL_TIER /
// ForceKernelTier — and falls back to the scalar reference for ops the
// chosen tier does not implement. The scalar tier is the behavioral
// specification; selftest.go proves every other tier extensionally
// equal to it.
//
// All operations are allocation-free: callers own every buffer.

import "fmt"

// packedMaxM is the largest extension degree whose mul-by-constant rows
// fit one uint64 (16 products x 4 bits).
const packedMaxM = 4

// tableMaxM is the largest extension degree for which the flat product
// table is built (2^8 x 2^8 entries = 128 KiB of Elem).
const tableMaxM = 8

// Kernels provides bulk slice operations over one field. Obtain one with
// Field.Kernels (auto-dispatched across the registered tiers) or
// Field.ScalarKernels (a view pinned to the pure-scalar reference, used
// by tests and A/B benchmarks). A Kernels is immutable after
// construction and safe for concurrent use by any number of goroutines.
//
// Inputs must be valid field elements (Field.Valid); out-of-field values
// may panic (table tiers) or produce junk (computed tiers), exactly as
// the scalar table lookups in Field.Mul do.
type Kernels struct {
	f     *Field
	order int
	base  TierID // the classic tier for the field shape; names Tier()
	pin   TierID // TierAuto unless this view is pinned to one tier

	tiers *[NumTiers]*tierOps // shared between the auto and pinned views
	sel   *selTable           // calibrated per-op selection (shared)

	mul    []Elem   // table tier's product table (nil on pinned-scalar views)
	packed []uint64 // packed tier's rows (nil on pinned-scalar views)
}

// Kernels returns the field's bulk-arithmetic kernels, built lazily on
// first use and cached on the Field. Tier choice is per (op, length),
// calibrated once per field shape; see tier.go for the override knobs.
func (f *Field) Kernels() *Kernels {
	f.kernOnce.Do(f.buildKernels)
	return f.kern
}

// ScalarKernels returns a view pinned to the pure-scalar reference
// tier: same API, every product routed through Field.Mul. Tests and
// benchmarks use it as the behavioral baseline the other tiers are
// checked against.
func (f *Field) ScalarKernels() *Kernels {
	f.kernOnce.Do(f.buildKernels)
	return f.scalarKern
}

func (f *Field) buildKernels() {
	tiers := new([NumTiers]*tierOps)
	for id := TierID(0); id < NumTiers; id++ {
		if b := tierBuilders[id]; b != nil {
			tiers[id] = b(f)
		}
	}
	if tiers[TierScalar] == nil {
		panic("gf: scalar tier missing from registry")
	}
	base := TierScalar
	switch {
	case f.m <= packedMaxM:
		base = TierPacked
	case f.m <= tableMaxM:
		base = TierTable
	}
	sel := &selTable{}
	k := &Kernels{f: f, order: f.order, base: base, pin: TierAuto, tiers: tiers, sel: sel}
	if t := tiers[TierTable]; t != nil {
		k.mul = t.mul
	}
	if t := tiers[TierPacked]; t != nil {
		k.packed = t.packed
	}
	f.kern = k
	f.scalarKern = &Kernels{f: f, order: f.order, base: TierScalar, pin: TierScalar, tiers: tiers, sel: sel}
}

// forTier returns a view of k pinned to one tier (ops the tier lacks
// still fall back to scalar). The differential selftest uses this to
// drive every registered tier over the same vectors.
func (k *Kernels) forTier(t TierID) *Kernels {
	v := *k
	v.pin = t
	if t != TierTable && t != TierPacked {
		v.mul, v.packed = nil, nil
	}
	return &v
}

// Field returns the field these kernels operate in.
func (k *Kernels) Field() *Field { return k.f }

// Table reports whether the flat product table is available to this
// view (false on pinned-scalar views and for fields with m > 8).
func (k *Kernels) Table() bool { return k.mul != nil }

// AvailableTiers lists the registry names of every tier built for this
// field, in TierID order. The scalar tier is always present.
func (k *Kernels) AvailableTiers() []string {
	var out []string
	for id := TierID(0); id < NumTiers; id++ {
		if k.tiers[id] != nil {
			out = append(out, id.String())
		}
	}
	return out
}

// tierFor resolves the tier serving op at input length n: instance pin,
// then process-wide force, then the calibrated selection.
func (k *Kernels) tierFor(op kernelOp, n int) TierID {
	if k.pin != TierAuto {
		return k.pin
	}
	if ft := ForcedKernelTier(); ft != TierAuto {
		return ft
	}
	s := k.sel.get(k, op)
	if n < s.crossover {
		return s.below
	}
	return s.above
}

// dispatch resolves op at length n to a concrete op table, falling back
// to the scalar reference when the chosen tier lacks the op, and
// records the hit against the tier that actually serves the call.
func (k *Kernels) dispatch(op kernelOp, n int) *tierOps {
	t := k.tierFor(op, n)
	ops := k.tiers[t]
	if !ops.supports(op) {
		t, ops = TierScalar, k.tiers[TierScalar]
	}
	k.hit(t)
	return ops
}

// baseTier is the tier charged for tier-independent ops (AddSlice,
// XorSlice, stride copies): the pin or force when set, the field's
// classic tier otherwise.
func (k *Kernels) baseTier() TierID {
	if k.pin != TierAuto {
		return k.pin
	}
	if ft := ForcedKernelTier(); ft != TierAuto {
		return ft
	}
	return k.base
}

// AddSlice sets dst[i] = a[i] + b[i] (XOR). dst may alias a or b. All
// three slices must have equal length.
func (k *Kernels) AddSlice(dst, a, b []Elem) {
	if len(a) != len(dst) || len(b) != len(dst) {
		panic(fmt.Sprintf("gf: AddSlice length mismatch dst=%d a=%d b=%d", len(dst), len(a), len(b)))
	}
	k.hit(k.baseTier())
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = a[i] ^ b[i]
		dst[i+1] = a[i+1] ^ b[i+1]
		dst[i+2] = a[i+2] ^ b[i+2]
		dst[i+3] = a[i+3] ^ b[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] ^ b[i]
	}
}

// XorSlice folds src into dst: dst[i] ^= src[i]. src must not be longer
// than dst.
func (k *Kernels) XorSlice(dst, src []Elem) {
	if len(src) > len(dst) {
		panic(fmt.Sprintf("gf: XorSlice src length %d exceeds dst %d", len(src), len(dst)))
	}
	k.hit(k.baseTier())
	for i, v := range src {
		dst[i] ^= v
	}
}

// MulConstSlice sets dst[i] = c * src[i]. dst may alias src. Both slices
// must have equal length.
func (k *Kernels) MulConstSlice(dst, src []Elem, c Elem) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf: MulConstSlice length mismatch dst=%d src=%d", len(dst), len(src)))
	}
	switch c {
	case 0:
		k.hit(k.baseTier())
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		k.hit(k.baseTier())
		copy(dst, src)
		return
	}
	k.dispatch(opMulConst, len(src)).mulConst(dst, src, c)
}

// MulConstAddSlice folds c * src into dst: dst[i] ^= c * src[i] — the
// LFSR/encode primitive (one generator-row update per feedback symbol).
// dst must not alias src. Both slices must have equal length.
func (k *Kernels) MulConstAddSlice(dst, src []Elem, c Elem) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf: MulConstAddSlice length mismatch dst=%d src=%d", len(dst), len(src)))
	}
	switch c {
	case 0:
		k.hit(k.baseTier())
		return
	case 1:
		k.hit(k.baseTier())
		for i, v := range src {
			dst[i] ^= v
		}
		return
	}
	k.dispatch(opMulConstAdd, len(src)).mulConstAdd(dst, src, c)
}

// DotSlice returns the inner product sum_i a[i]*b[i]. Both slices must
// have equal length.
func (k *Kernels) DotSlice(a, b []Elem) Elem {
	if len(a) != len(b) {
		panic(fmt.Sprintf("gf: DotSlice length mismatch a=%d b=%d", len(a), len(b)))
	}
	return k.dispatch(opDot, len(a)).dot(a, b)
}

// HornerSlice evaluates the polynomial whose coefficients are given in
// transmission order — word[0] is the highest-degree coefficient — at x:
//
//	acc <- acc*x + word[i]   for i = 0..len(word)-1
//
// This is the received-word layout of the RS/BCH codecs and the paper's
// syndrome recursion S_j <- S_j*alpha^j + R.
func (k *Kernels) HornerSlice(word []Elem, x Elem) Elem {
	return k.dispatch(opHorner, len(word)).horner(word, x)
}

// EvalSlice evaluates the polynomial with coeffs[i] the coefficient of
// x^i (package gfpoly's storage order) at x by Horner's rule.
func (k *Kernels) EvalSlice(coeffs []Elem, x Elem) Elem {
	return k.dispatch(opEval, len(coeffs)).eval(coeffs, x)
}

// SyndromeSlice sets dst[j] = HornerSlice(word, xs[j]) for every
// evaluation point — the multi-point syndrome kernel. The table tier
// runs four independent accumulator chains per pass (the software image
// of the paper's 4-lane SIMD); the bitsliced tier packs the evaluation
// points into 64-bit lanes instead. dst and xs must have equal length.
func (k *Kernels) SyndromeSlice(dst []Elem, word []Elem, xs []Elem) {
	if len(dst) != len(xs) {
		panic(fmt.Sprintf("gf: SyndromeSlice length mismatch dst=%d xs=%d", len(dst), len(xs)))
	}
	k.dispatch(opSyndrome, len(word)).syndrome(dst, word, xs)
}

// HornerBitSlice is HornerSlice for a binary word stored one bit per
// byte (values 0/1), the BCH codeword layout.
func (k *Kernels) HornerBitSlice(bits []byte, x Elem) Elem {
	return k.dispatch(opHornerBit, len(bits)).hornerBit(bits, x)
}

// SyndromeBitSlice is SyndromeSlice for a binary word stored one bit per
// byte — the BCH syndrome kernel. For repeated syndrome sets over the
// same evaluation points prefer NewBitSyndromePlan, which additionally
// unlocks the carry-less-multiply fold tier.
func (k *Kernels) SyndromeBitSlice(dst []Elem, bits []byte, xs []Elem) {
	if len(dst) != len(xs) {
		panic(fmt.Sprintf("gf: SyndromeBitSlice length mismatch dst=%d xs=%d", len(dst), len(xs)))
	}
	k.dispatch(opSyndromeBit, len(bits)).syndromeBit(dst, bits, xs)
}

// LFSR is a multiply-accumulate bank precomputed for one fixed
// coefficient vector — a generator polynomial in transmission order, the
// systematic encoder's feedback taps. On the table tiers every possible
// feedback row fb*coeffs is materialized once, so an LFSR step collapses
// to a single fused shift-XOR pass with no multiplies at all: the
// software image of the paper's hard-wired encoder datapath, where the
// constant multiplications are baked into the routing.
//
// An LFSR is immutable after construction and safe for concurrent use.
type LFSR struct {
	k      *Kernels
	nk     int
	coeffs []Elem
	tab    []Elem // flat order x nk feedback rows; nil on the scalar tier
}

// NewLFSR builds the feedback bank for the given taps (len >= 1).
func (k *Kernels) NewLFSR(coeffs []Elem) *LFSR {
	if len(coeffs) == 0 {
		panic("gf: NewLFSR with no coefficients")
	}
	l := &LFSR{k: k, nk: len(coeffs), coeffs: append([]Elem(nil), coeffs...)}
	if k.mul != nil {
		l.tab = make([]Elem, k.order*l.nk)
		for fb := 0; fb < k.order; fb++ {
			k.MulConstSlice(l.tab[fb*l.nk:(fb+1)*l.nk], l.coeffs, Elem(fb))
		}
	}
	return l
}

// Run feeds msg through the register: for each symbol s,
//
//	feedback = s ^ par[0]; par shifts down one; par ^= feedback*coeffs
//
// updating par (length = len(coeffs)) in place. Seed par with zeros to
// compute the systematic RS parity of msg. When the scalar tier is
// forced process-wide the definitional multiply-accumulate route is
// taken even if the bank exists, so forced-tier accounting stays honest.
func (l *LFSR) Run(par, msg []Elem) {
	nk := l.nk
	if len(par) != nk {
		panic(fmt.Sprintf("gf: LFSR.Run register length %d, want %d", len(par), nk))
	}
	if l.tab == nil || l.k.baseTier() == TierScalar {
		l.k.hit(TierScalar)
		for _, s := range msg {
			fb := s ^ par[0]
			copy(par, par[1:])
			par[nk-1] = 0
			if fb != 0 {
				l.k.MulConstAddSlice(par, l.coeffs, fb)
			}
		}
		return
	}
	l.k.hit(TierTable)
	for _, s := range msg {
		fb := s ^ par[0]
		if fb == 0 {
			copy(par, par[1:])
			par[nk-1] = 0
			continue
		}
		row := l.tab[int(fb)*nk : int(fb)*nk+nk]
		// Fused shift + XOR: each write at j consumes the old value at
		// j+1 before the next iteration overwrites it.
		j := 0
		for ; j+4 <= nk-1; j += 4 {
			par[j] = par[j+1] ^ row[j]
			par[j+1] = par[j+2] ^ row[j+1]
			par[j+2] = par[j+3] ^ row[j+2]
			par[j+3] = par[j+4] ^ row[j+3]
		}
		for ; j < nk-1; j++ {
			par[j] = par[j+1] ^ row[j]
		}
		par[nk-1] = row[nk-1]
	}
}

// GatherStride copies len(dst) elements src[off], src[off+stride], ...
// into dst — the deinterleave copy kernel (column i of a depth-`stride`
// interleaved frame is off=i).
func GatherStride(dst, src []Elem, off, stride int) {
	if stride == 1 {
		copy(dst, src[off:])
		return
	}
	si := off
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = src[si]
		dst[i+1] = src[si+stride]
		dst[i+2] = src[si+2*stride]
		dst[i+3] = src[si+3*stride]
		si += 4 * stride
	}
	for ; i < len(dst); i++ {
		dst[i] = src[si]
		si += stride
	}
}

// ScatterStride copies len(src) elements of src into dst[off],
// dst[off+stride], ... — the interleave copy kernel, inverse of
// GatherStride.
func ScatterStride(dst, src []Elem, off, stride int) {
	if stride == 1 {
		copy(dst[off:], src)
		return
	}
	di := off
	i := 0
	for ; i+4 <= len(src); i += 4 {
		dst[di] = src[i]
		dst[di+stride] = src[i+1]
		dst[di+2*stride] = src[i+2]
		dst[di+3*stride] = src[i+3]
		di += 4 * stride
	}
	for ; i < len(src); i++ {
		dst[di] = src[i]
		di += stride
	}
}
