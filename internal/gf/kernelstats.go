package gf

import "sync/atomic"

// Kernel-tier accounting: every exported bulk operation records one hit
// against the tier that served it (packed word, flat table, or scalar
// fallback), the software analogue of counting which hardware datapath a
// GF instruction was issued to. The counters are process-wide so a
// metrics registry can report how much of the workload ran on each tier
// without threading a registry into every codec.

// kernelTier indexes the implementation tiers of a Kernels.
type kernelTier uint8

const (
	tierPacked kernelTier = iota // m <= 4: rows packed into one uint64
	tierTable                    // m <= 8: flat order x order product table
	tierScalar                   // reference path over Field.Mul
	numTiers
)

var tierNames = [numTiers]string{"packed", "table", "scalar"}

var tierCalls [numTiers]atomic.Int64

// hit records one bulk-kernel invocation on k's tier.
func (k *Kernels) hit() { tierCalls[k.tier].Add(1) }

// Tier names the implementation tier serving this Kernels: "packed",
// "table" or "scalar".
func (k *Kernels) Tier() string { return tierNames[k.tier] }

// KernelCalls returns the process-wide cumulative number of bulk-kernel
// invocations served by each tier.
func KernelCalls() (packed, table, scalar int64) {
	return tierCalls[tierPacked].Load(), tierCalls[tierTable].Load(), tierCalls[tierScalar].Load()
}
