package gf

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Kernel-tier accounting: every exported bulk operation records one hit
// against the tier that actually served it — the software analogue of
// counting which hardware datapath a GF instruction was issued to. The
// counters are process-wide so a metrics registry can report how much
// of the workload ran on each tier without threading a registry into
// every codec. Alongside the counters, the calibrated per-(field, op)
// tier selections are published for the observability plane.

var tierCalls [NumTiers]atomic.Int64

// hit records one bulk-kernel invocation served by tier t.
func (k *Kernels) hit(t TierID) { tierCalls[t].Add(1) }

// Tier names the classic tier matching this Kernels' field shape
// ("packed" m <= 4, "table" m <= 8, "scalar" above), or "scalar" on a
// pinned-scalar view. Per-call dispatch may route individual ops to
// other tiers; see AvailableTiers and Selections for the full picture.
func (k *Kernels) Tier() string { return tierNames[k.base] }

// KernelCalls returns the process-wide cumulative number of bulk-kernel
// invocations served by each tier, indexed by TierID (see TierNames).
func KernelCalls() [NumTiers]int64 {
	var out [NumTiers]int64
	for i := range out {
		out[i] = tierCalls[i].Load()
	}
	return out
}

// TierSelection is one frozen calibration decision: for (Field, Op),
// lengths below Crossover are served by tier Below, lengths at or above
// it by Above (Crossover 0 means Below == Above serves everything).
type TierSelection struct {
	Field     string `json:"field"`
	Op        string `json:"op"`
	Below     string `json:"below"`
	Above     string `json:"above"`
	Crossover int    `json:"crossover"`
}

var (
	selMu   sync.Mutex
	selRows []TierSelection
)

// recordSelections publishes one field shape's calibration results.
func recordSelections(rows []TierSelection) {
	selMu.Lock()
	selRows = append(selRows, rows...)
	selMu.Unlock()
}

// Selections returns every calibration decision frozen so far in this
// process, sorted by field then op. Shapes calibrate lazily on first
// kernel use, so the list grows as fields come into play.
func Selections() []TierSelection {
	selMu.Lock()
	out := append([]TierSelection(nil), selRows...)
	selMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Field != out[j].Field {
			return out[i].Field < out[j].Field
		}
		return out[i].Op < out[j].Op
	})
	return out
}
