package gf

import (
	"math/rand"
	"testing"
)

// kernelFields returns every default field m = 2..8 plus the
// non-primitive AES field: the full set the table tiers support.
func kernelFields(t testing.TB) []*Field {
	var fs []*Field
	for m := 2; m <= 8; m++ {
		fs = append(fs, MustDefault(m))
	}
	fs = append(fs, AES())
	return fs
}

func randElems(rng *rand.Rand, f *Field, n int) []Elem {
	out := make([]Elem, n)
	for i := range out {
		out[i] = Elem(rng.Intn(f.Order()))
	}
	return out
}

// TestKernelsTierSelection pins the tier choice: packed for m <= 4,
// table for m <= 8, scalar above.
func TestKernelsTierSelection(t *testing.T) {
	for m := 2; m <= 8; m++ {
		f := MustDefault(m)
		k := f.Kernels()
		if !k.Table() {
			t.Errorf("m=%d: table tier expected", m)
		}
		if (k.packed != nil) != (m <= packedMaxM) {
			t.Errorf("m=%d: packed tier = %v, want %v", m, k.packed != nil, m <= packedMaxM)
		}
		if f.ScalarKernels().Table() {
			t.Errorf("m=%d: scalar kernels report table tier", m)
		}
		if k != f.Kernels() {
			t.Errorf("m=%d: Kernels not cached", m)
		}
	}
	wide := MustDefault(12)
	if wide.Kernels().Table() {
		t.Error("m=12: expected scalar fallback")
	}
	if wide.Kernels().Field() != wide {
		t.Error("Field() mismatch")
	}
}

// TestKernelsMulConstExhaustive checks the table/packed product tiers
// against Field.Mul over every (c, x) pair for every supported field —
// exhaustive, since the whole product table is only 2^16 entries even at
// m = 8.
func TestKernelsMulConstExhaustive(t *testing.T) {
	for _, f := range kernelFields(t) {
		k := f.Kernels()
		src := make([]Elem, f.Order())
		for x := range src {
			src[x] = Elem(x)
		}
		dst := make([]Elem, f.Order())
		acc := make([]Elem, f.Order())
		for c := 0; c < f.Order(); c++ {
			k.MulConstSlice(dst, src, Elem(c))
			for x := range src {
				if want := f.Mul(Elem(c), Elem(x)); dst[x] != want {
					t.Fatalf("%v: MulConstSlice %#x*%#x = %#x, want %#x", f, c, x, dst[x], want)
				}
			}
			for i := range acc {
				acc[i] = Elem(i % f.Order())
			}
			k.MulConstAddSlice(acc, src, Elem(c))
			for x := range src {
				if want := Elem(x%f.Order()) ^ f.Mul(Elem(c), Elem(x)); acc[x] != want {
					t.Fatalf("%v: MulConstAddSlice %#x at %#x = %#x, want %#x", f, c, x, acc[x], want)
				}
			}
		}
	}
}

// TestKernelsBulkMatchesScalar is the tentpole property test: every bulk
// operation on the fast kernels agrees with the pure-scalar reference,
// exhaustively over GF(2^4) evaluation points and randomized everywhere
// else, for all default fields m = 2..8 and the AES field.
func TestKernelsBulkMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, f := range kernelFields(t) {
		fast, ref := f.Kernels(), f.ScalarKernels()
		exhaustive := f.M() == 4
		for trial := 0; trial < 32; trial++ {
			n := 1 + rng.Intn(300)
			word := randElems(rng, f, n)
			other := randElems(rng, f, n)

			// Add/Xor.
			d1, d2 := make([]Elem, n), make([]Elem, n)
			fast.AddSlice(d1, word, other)
			ref.AddSlice(d2, word, other)
			assertEq(t, f, "AddSlice", d1, d2)
			copy(d1, word)
			copy(d2, word)
			fast.XorSlice(d1, other)
			ref.XorSlice(d2, other)
			assertEq(t, f, "XorSlice", d1, d2)

			// Dot product.
			if a, b := fast.DotSlice(word, other), ref.DotSlice(word, other); a != b {
				t.Fatalf("%v: DotSlice %#x != %#x", f, a, b)
			}

			// Horner / Eval at every x (exhaustive for GF(2^4), sampled above).
			var points []Elem
			if exhaustive {
				for x := 0; x < f.Order(); x++ {
					points = append(points, Elem(x))
				}
			} else {
				points = randElems(rng, f, 8)
				points = append(points, 0, 1)
			}
			for _, x := range points {
				if a, b := fast.HornerSlice(word, x), ref.HornerSlice(word, x); a != b {
					t.Fatalf("%v: HornerSlice(x=%#x) %#x != %#x", f, x, a, b)
				}
				if a, b := fast.EvalSlice(word, x), ref.EvalSlice(word, x); a != b {
					t.Fatalf("%v: EvalSlice(x=%#x) %#x != %#x", f, x, a, b)
				}
				fast.MulConstSlice(d1, word, x)
				ref.MulConstSlice(d2, word, x)
				assertEq(t, f, "MulConstSlice", d1, d2)
			}

			// Batched syndromes: lengths 1..9 cover the 4-way unroll plus tail.
			for _, np := range []int{1, 3, 4, 5, 8, 9} {
				xs := points
				if len(xs) > np {
					xs = xs[:np]
				}
				s1, s2 := make([]Elem, len(xs)), make([]Elem, len(xs))
				fast.SyndromeSlice(s1, word, xs)
				ref.SyndromeSlice(s2, word, xs)
				assertEq(t, f, "SyndromeSlice", s1, s2)
			}

			// Bit variants over a random 0/1 word.
			bits := make([]byte, n)
			for i := range bits {
				bits[i] = byte(rng.Intn(2))
			}
			for _, x := range points {
				if a, b := fast.HornerBitSlice(bits, x), ref.HornerBitSlice(bits, x); a != b {
					t.Fatalf("%v: HornerBitSlice(x=%#x) %#x != %#x", f, x, a, b)
				}
			}
			s1, s2 := make([]Elem, len(points)), make([]Elem, len(points))
			fast.SyndromeBitSlice(s1, bits, points)
			ref.SyndromeBitSlice(s2, bits, points)
			assertEq(t, f, "SyndromeBitSlice", s1, s2)
		}
	}
}

func assertEq(t *testing.T, f *Field, op string, got, want []Elem) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%v: %s[%d] = %#x, want %#x", f, op, i, got[i], want[i])
		}
	}
}

// TestLFSRMatchesStepwise checks the fused-pass LFSR bank against the
// definitional step (shift, then fold feedback*coeffs), on both the table
// tier and the scalar fallback, including all-zero feedback runs.
func TestLFSRMatchesStepwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fields := append(kernelFields(t), MustDefault(10))
	for _, f := range fields {
		for _, nk := range []int{1, 2, 3, 4, 5, 8, 16, 32} {
			coeffs := randElems(rng, f, nk)
			l := f.Kernels().NewLFSR(coeffs)
			msg := randElems(rng, f, 40)
			copy(msg[10:15], make([]Elem, 5)) // force zero-feedback steps
			par := make([]Elem, nk)
			ref := make([]Elem, nk)
			l.Run(par, msg)
			for _, s := range msg {
				fb := s ^ ref[0]
				copy(ref, ref[1:])
				ref[nk-1] = 0
				if fb != 0 {
					for j, g := range coeffs {
						ref[j] ^= f.Mul(fb, g)
					}
				}
			}
			for j := range ref {
				if par[j] != ref[j] {
					t.Fatalf("%v nk=%d: par[%d] = %#x, want %#x", f, nk, j, par[j], ref[j])
				}
			}
		}
	}
}

// TestKernelsWideFieldScalar checks the m > 8 fallback stays correct
// (scalar path, no tables).
func TestKernelsWideFieldScalar(t *testing.T) {
	f := MustDefault(10)
	k := f.Kernels()
	rng := rand.New(rand.NewSource(7))
	word := randElems(rng, f, 64)
	x := Elem(rng.Intn(f.Order()))
	var acc Elem
	for _, r := range word {
		acc = f.Mul(acc, x) ^ r
	}
	if got := k.HornerSlice(word, x); got != acc {
		t.Fatalf("HornerSlice = %#x, want %#x", got, acc)
	}
	dst := make([]Elem, len(word))
	k.MulConstSlice(dst, word, x)
	for i, w := range word {
		if dst[i] != f.Mul(x, w) {
			t.Fatalf("MulConstSlice[%d] mismatch", i)
		}
	}
}

// TestStrideCopies checks Gather/ScatterStride against index math for
// every (depth, length) shape the interleaver uses, including the
// unrolled and tail paths.
func TestStrideCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, depth := range []int{1, 2, 3, 4, 5, 8} {
		for _, n := range []int{1, 3, 4, 7, 16, 255} {
			frame := make([]Elem, depth*n)
			for i := range frame {
				frame[i] = Elem(rng.Intn(256))
			}
			cw := make([]Elem, n)
			back := make([]Elem, depth*n)
			for off := 0; off < depth; off++ {
				GatherStride(cw, frame, off, depth)
				for j := 0; j < n; j++ {
					if cw[j] != frame[off+j*depth] {
						t.Fatalf("depth=%d n=%d off=%d: gather[%d] wrong", depth, n, off, j)
					}
				}
				ScatterStride(back, cw, off, depth)
			}
			for i := range frame {
				if back[i] != frame[i] {
					t.Fatalf("depth=%d n=%d: scatter∘gather not identity at %d", depth, n, i)
				}
			}
		}
	}
}

// TestKernelsLengthPanics locks in the explicit length-mismatch panics.
func TestKernelsLengthPanics(t *testing.T) {
	k := MustDefault(8).Kernels()
	for name, fn := range map[string]func(){
		"AddSlice":         func() { k.AddSlice(make([]Elem, 2), make([]Elem, 3), make([]Elem, 2)) },
		"XorSlice":         func() { k.XorSlice(make([]Elem, 2), make([]Elem, 3)) },
		"MulConstSlice":    func() { k.MulConstSlice(make([]Elem, 2), make([]Elem, 3), 2) },
		"MulConstAddSlice": func() { k.MulConstAddSlice(make([]Elem, 2), make([]Elem, 3), 2) },
		"DotSlice":         func() { k.DotSlice(make([]Elem, 2), make([]Elem, 3)) },
		"SyndromeSlice":    func() { k.SyndromeSlice(make([]Elem, 2), nil, make([]Elem, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}
