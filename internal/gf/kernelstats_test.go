package gf

import "testing"

func TestKernelTierNames(t *testing.T) {
	cases := []struct {
		m    int
		want string
	}{
		{4, "packed"},
		{8, "table"},
		{13, "scalar"},
	}
	for _, tc := range cases {
		f, err := NewDefault(tc.m)
		if err != nil {
			t.Fatalf("NewDefault(%d): %v", tc.m, err)
		}
		if got := f.Kernels().Tier(); got != tc.want {
			t.Errorf("m=%d: Tier() = %q, want %q", tc.m, got, tc.want)
		}
		if got := f.ScalarKernels().Tier(); got != "scalar" {
			t.Errorf("m=%d: ScalarKernels().Tier() = %q, want scalar", tc.m, got)
		}
	}
}

func TestKernelCallsCount(t *testing.T) {
	f, err := NewDefault(8)
	if err != nil {
		t.Fatal(err)
	}
	k := f.Kernels()
	buf := make([]Elem, 32)

	_, table0, _ := KernelCalls()
	k.AddSlice(buf, buf, buf)
	k.MulConstSlice(buf, buf, 3)
	_ = k.HornerSlice(buf, 2)
	_, table1, _ := KernelCalls()
	if table1-table0 < 3 {
		t.Errorf("table tier calls grew by %d, want >= 3", table1-table0)
	}

	_, _, scalar0 := KernelCalls()
	f.ScalarKernels().MulConstSlice(buf, buf, 3)
	_, _, scalar1 := KernelCalls()
	if scalar1-scalar0 < 1 {
		t.Errorf("scalar tier calls grew by %d, want >= 1", scalar1-scalar0)
	}

	f4, err := NewDefault(4)
	if err != nil {
		t.Fatal(err)
	}
	packed0, _, _ := KernelCalls()
	small := make([]Elem, 8)
	f4.Kernels().MulConstSlice(small, small, 3)
	packed1, _, _ := KernelCalls()
	if packed1-packed0 < 1 {
		t.Errorf("packed tier calls grew by %d, want >= 1", packed1-packed0)
	}
}
