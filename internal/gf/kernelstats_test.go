package gf

import "testing"

func TestKernelTierNames(t *testing.T) {
	cases := []struct {
		m    int
		want string
	}{
		{4, "packed"},
		{8, "table"},
		{13, "scalar"},
	}
	for _, tc := range cases {
		f, err := NewDefault(tc.m)
		if err != nil {
			t.Fatalf("NewDefault(%d): %v", tc.m, err)
		}
		if got := f.Kernels().Tier(); got != tc.want {
			t.Errorf("m=%d: Tier() = %q, want %q", tc.m, got, tc.want)
		}
		if got := f.ScalarKernels().Tier(); got != "scalar" {
			t.Errorf("m=%d: ScalarKernels().Tier() = %q, want scalar", tc.m, got)
		}
	}
}

func TestKernelCallsCount(t *testing.T) {
	f, err := NewDefault(8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Elem, 32)

	// Force the table tier so accounting is deterministic regardless of
	// what calibration picked on this machine.
	ForceKernelTier(TierTable)
	defer ForceKernelTier(TierAuto)
	k := f.Kernels()
	before := KernelCalls()
	k.AddSlice(buf, buf, buf)
	k.MulConstSlice(buf, buf, 3)
	_ = k.HornerSlice(buf, 2)
	after := KernelCalls()
	if grew := after[TierTable] - before[TierTable]; grew < 3 {
		t.Errorf("table tier calls grew by %d, want >= 3", grew)
	}

	// A pinned-scalar view overrides the process-wide force.
	before = KernelCalls()
	f.ScalarKernels().MulConstSlice(buf, buf, 3)
	after = KernelCalls()
	if grew := after[TierScalar] - before[TierScalar]; grew < 1 {
		t.Errorf("scalar tier calls grew by %d, want >= 1", grew)
	}

	f4, err := NewDefault(4)
	if err != nil {
		t.Fatal(err)
	}
	ForceKernelTier(TierPacked)
	small := make([]Elem, 8)
	before = KernelCalls()
	f4.Kernels().MulConstSlice(small, small, 3)
	after = KernelCalls()
	if grew := after[TierPacked] - before[TierPacked]; grew < 1 {
		t.Errorf("packed tier calls grew by %d, want >= 1", grew)
	}
}

func TestSelectionsPublished(t *testing.T) {
	f, err := NewDefault(8)
	if err != nil {
		t.Fatal(err)
	}
	// Trigger calibration via one auto-dispatched call.
	buf := make([]Elem, 64)
	f.Kernels().MulConstSlice(buf, buf, 3)

	rows := Selections()
	byOp := map[string]TierSelection{}
	for _, r := range rows {
		if r.Field == f.String() {
			byOp[r.Op] = r
		}
	}
	if len(byOp) != int(numOps) {
		t.Fatalf("got %d selection rows for %v, want %d: %+v", len(byOp), f, numOps, rows)
	}
	valid := map[string]bool{}
	for _, n := range TierNames() {
		valid[n] = true
	}
	for op, r := range byOp {
		if !valid[r.Below] || !valid[r.Above] {
			t.Errorf("op %s: unknown tier names in %+v", op, r)
		}
		if (r.Below == r.Above) != (r.Crossover == 0) {
			t.Errorf("op %s: crossover %d inconsistent with below=%s above=%s", op, r.Crossover, r.Below, r.Above)
		}
	}
}
