package gf

// This file implements polynomial arithmetic over GF(2) on packed uint64
// coefficient vectors, used for irreducibility and primitivity testing and
// for enumerating candidate field polynomials. Degrees are limited to 32,
// far above the m <= 16 fields this package constructs, so intermediate
// products fit in uint64.

// polyMulMod returns a*b mod p for GF(2) polynomials packed in uint64,
// deg(p) <= 32.
func polyMulMod(a, b, p uint64) uint64 {
	var r uint64
	for b != 0 {
		if b&1 == 1 {
			r ^= a
		}
		b >>= 1
		a <<= 1
		if polyDegree(a) == polyDegree(p) {
			a ^= p
		}
	}
	return ReducePoly(r, p)
}

// polyPowMod returns a^e mod p over GF(2).
func polyPowMod(a uint64, e uint64, p uint64) uint64 {
	r := uint64(1)
	a = ReducePoly(a, p)
	for e > 0 {
		if e&1 == 1 {
			r = polyMulMod(r, a, p)
		}
		a = polyMulMod(a, a, p)
		e >>= 1
	}
	return r
}

// polyGCD returns gcd(a, b) of GF(2) polynomials.
func polyGCD(a, b uint64) uint64 {
	for b != 0 {
		da, db := polyDegree(a), polyDegree(b)
		if da < db {
			a, b = b, a
			continue
		}
		a ^= b << (da - db)
	}
	return a
}

// Irreducible reports whether the GF(2) polynomial p (degree 1..32) is
// irreducible, using the Rabin test: p of degree m is irreducible iff
// x^(2^m) == x (mod p) and gcd(x^(2^(m/q)) - x, p) == 1 for every prime q
// dividing m.
func Irreducible(p uint64) bool {
	m := polyDegree(p)
	if m <= 0 {
		return false
	}
	if m == 1 {
		return true
	}
	if p&1 == 0 {
		return false // divisible by x
	}
	// x^(2^m) mod p must equal x.
	t := uint64(2) // the polynomial x
	for i := 0; i < m; i++ {
		t = polyMulMod(t, t, p)
	}
	if t != 2 {
		return false
	}
	for _, q := range primeFactors(uint64(m)) {
		// u = x^(2^(m/q)) mod p
		u := uint64(2)
		for i := 0; i < m/int(q); i++ {
			u = polyMulMod(u, u, p)
		}
		if polyGCD(u^2, p) != 1 {
			return false
		}
	}
	return true
}

// Primitive reports whether the irreducible polynomial p of degree m is
// primitive, i.e. whether x generates the multiplicative group of
// GF(2)[x]/(p). It returns false for reducible p.
func Primitive(p uint64) bool {
	m := polyDegree(p)
	if m < 1 || m > MaxM {
		return false
	}
	if !Irreducible(p) {
		return false
	}
	n := uint64(1)<<m - 1
	if n == 1 {
		return true
	}
	for _, q := range primeFactors(n) {
		if polyPowMod(2, n/q, p) == 1 {
			return false
		}
	}
	return true
}

// IrreduciblePolys enumerates all irreducible polynomials of degree m
// (including the leading x^m term), in increasing numeric order. For m = 8
// this returns 30 polynomials; the paper's flexibility claim is that the
// hardware supports every one of them via the configuration register.
func IrreduciblePolys(m int) []uint32 {
	if m < MinM || m > MaxM {
		return nil
	}
	var out []uint32
	lo := uint64(1) << m
	for p := lo | 1; p < lo<<1; p += 2 {
		if Irreducible(p) {
			out = append(out, uint32(p))
		}
	}
	return out
}

// PrimitivePolys enumerates all primitive polynomials of degree m.
func PrimitivePolys(m int) []uint32 {
	var out []uint32
	for _, p := range IrreduciblePolys(m) {
		if Primitive(uint64(p)) {
			out = append(out, p)
		}
	}
	return out
}
