package gf

// Reduction-matrix support for the paper's polynomial-reduction module
// (Section 2.4.1). A carry-free product of two m-bit operands has 2m-1
// bits c_0..c_{2m-2}. The low m bits pass through; each high bit c_{m+i}
// contributes x^(m+i) mod p(x), a fixed m-bit pattern. Collecting those
// patterns row-wise gives the (m-1) x m reduction matrix P, which the
// hardware stores in its centralized configuration register. Reduction is
// then the GF(2) matrix-vector product
//
//	result = c_low XOR P^T · c_high
//
// For the default 8-bit datapath P is the "8-by-7 matrix" of Fig. 5 (seven
// high product bits, eight result columns).

// ReductionMatrix returns the rows of P for the irreducible polynomial p of
// degree m: row i (i = 0..m-2) is the bit pattern of x^(m+i) mod p, packed
// into a uint32 with bit j = coefficient of x^j.
func ReductionMatrix(p uint32) []uint32 {
	m := polyDegree(uint64(p))
	if m < 1 {
		return nil
	}
	rows := make([]uint32, m-1)
	for i := 0; i < m-1; i++ {
		rows[i] = uint32(ReducePoly(uint64(1)<<(m+i), uint64(p)))
	}
	return rows
}

// ReduceWithMatrix reduces the carry-free product c (up to 2m-1 bits) using
// the precomputed reduction matrix for a degree-m polynomial. It is the
// functional model of the hardware linear-transform reduction and must agree
// with ReducePoly for every valid product.
func ReduceWithMatrix(c uint64, rows []uint32, m int) uint32 {
	mask := uint32(1)<<m - 1
	r := uint32(c) & mask
	high := c >> m
	for i := 0; i < len(rows) && high != 0; i++ {
		if high&1 == 1 {
			r ^= rows[i]
		}
		high >>= 1
	}
	return r
}
