package gf

// Pluggable kernel-tier registry. The bulk slice layer (kernels.go) no
// longer hard-wires its implementation choice by field degree: each
// implementation strategy is a *tier* that registers a per-field op
// table here, and every exported Kernels operation picks a tier at call
// time from a per-(field, op, length) selection produced by a one-shot
// micro-calibration (calibrate.go). This is the software image of the
// paper's reconfigurable datapath: the same GF instruction can be
// served by the table-lookup route (the M0+ baseline) or by a computed
// carry-free route (the gf32bMult-style paths), and the dispatcher
// picks whichever the measured crossover favors.
//
// Five tiers exist today:
//
//	scalar    — Field.Mul reference loops; the behavioral specification.
//	packed    — m <= 4, mul-by-constant rows packed in one uint64.
//	table     — m <= 8, flat order x order product table.
//	bitsliced — 64-bit SWAR lanes, computed xtime steps, no tables
//	            (bitslice.go).
//	clmul     — carry-less-multiply routes built on integer multiplies
//	            (clmul.go), including the Barrett-folded bit-syndrome
//	            plans and the wide-word Clmul64 feeding gfbig.
//
// A tier may implement any subset of the ops; missing ops fall back to
// the scalar reference. Selection precedence per call:
//
//  1. an instance pin (Field.ScalarKernels, the selftest's per-tier
//     views),
//  2. a process-wide forced tier (GFP_KERNEL_TIER env at startup, or
//     ForceKernelTier — the -kernel-tier flag of gfpipe/gfserved),
//  3. the calibrated per-(field, op, length) selection.

import (
	"fmt"
	"os"
	"sync/atomic"
)

// TierID identifies one registered kernel implementation tier.
type TierID uint8

const (
	// TierScalar is the pure Field.Mul reference path — always present,
	// always the fallback for ops a tier does not implement.
	TierScalar TierID = iota
	// TierPacked packs each mul-by-constant row into one uint64 (m <= 4).
	TierPacked
	// TierTable is the flat order x order product table (m <= 8).
	TierTable
	// TierBitsliced is the 64-bit SWAR lane tier: computed shift-and-add
	// multiplication over 8 byte lanes (m <= 8) or 4 halfword lanes
	// (m <= 16), no tables.
	TierBitsliced
	// TierCLMul is the carry-less-multiply tier: products via integer
	// multiplies with hole masks, reductions via Barrett division — the
	// software analogue of the paper's gf32bMult datapath.
	TierCLMul
	// NumTiers is the number of registered tiers.
	NumTiers

	// TierAuto means "no pin / no force": use the calibrated selection.
	TierAuto TierID = 0xFF
)

var tierNames = [NumTiers]string{"scalar", "packed", "table", "bitsliced", "clmul"}

// String returns the tier's registry name.
func (t TierID) String() string {
	if t == TierAuto {
		return "auto"
	}
	if int(t) < len(tierNames) {
		return tierNames[t]
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// TierNames returns the registry names of all tiers in TierID order.
func TierNames() []string {
	out := make([]string, NumTiers)
	copy(out, tierNames[:])
	return out
}

// ParseTier maps a registry name (or "auto"/"") to a TierID.
func ParseTier(name string) (TierID, error) {
	if name == "" || name == "auto" {
		return TierAuto, nil
	}
	for i, n := range tierNames {
		if n == name {
			return TierID(i), nil
		}
	}
	return TierAuto, fmt.Errorf("gf: unknown kernel tier %q (want scalar, packed, table, bitsliced, clmul or auto)", name)
}

// kernelOp indexes the dispatchable bulk operations. AddSlice/XorSlice
// and the stride copies are tier-independent (pure XOR / moves) and are
// not dispatched.
type kernelOp uint8

const (
	opMulConst kernelOp = iota
	opMulConstAdd
	opDot
	opHorner
	opEval
	opSyndrome
	opHornerBit
	opSyndromeBit
	// opSyndromeBitFold is the pseudo-op behind BitSyndromePlan.Run: same
	// semantics as opSyndromeBit but with the clmul minpoly fold as an
	// extra candidate (the fold needs per-point precomputation a direct
	// SyndromeBitSlice call cannot amortize, so the two routes calibrate
	// separately).
	opSyndromeBitFold
	numOps
)

var opNames = [numOps]string{
	"mulconst", "mulconstadd", "dot", "horner",
	"eval", "syndrome", "hornerbit", "syndromebit", "syndromebitfold",
}

// tierOps is the per-field op table one tier builds. A nil function
// means the tier does not implement that op for this field; the
// dispatcher falls back to the scalar reference. The table/packed tiers
// additionally expose their lookup state so the LFSR bank (and the
// legacy Kernels accessors) can reuse it.
type tierOps struct {
	mulConst    func(dst, src []Elem, c Elem)
	mulConstAdd func(dst, src []Elem, c Elem)
	dot         func(a, b []Elem) Elem
	horner      func(word []Elem, x Elem) Elem
	eval        func(coeffs []Elem, x Elem) Elem
	syndrome    func(dst, word, xs []Elem)
	hornerBit   func(bits []byte, x Elem) Elem
	syndromeBit func(dst []Elem, bits []byte, xs []Elem)

	mul    []Elem   // table tier: flat product table (row c at [c*order:(c+1)*order])
	packed []uint64 // packed tier: one uint64 row per constant
}

// supports reports whether the tier implements op.
func (t *tierOps) supports(op kernelOp) bool {
	if t == nil {
		return false
	}
	switch op {
	case opMulConst:
		return t.mulConst != nil
	case opMulConstAdd:
		return t.mulConstAdd != nil
	case opDot:
		return t.dot != nil
	case opHorner:
		return t.horner != nil
	case opEval:
		return t.eval != nil
	case opSyndrome:
		return t.syndrome != nil
	case opHornerBit:
		return t.hornerBit != nil
	case opSyndromeBit, opSyndromeBitFold:
		return t.syndromeBit != nil
	}
	return false
}

// tierBuilders is the registry: one builder per tier, filled by init()
// in each tier's source file. A builder returns nil when the tier does
// not support the field at all (e.g. table tiers above m = 8).
var tierBuilders [NumTiers]func(*Field) *tierOps

// registerTier installs a tier builder. Called from init() only;
// double registration is a programming error.
func registerTier(id TierID, build func(*Field) *tierOps) {
	if tierBuilders[id] != nil {
		panic(fmt.Sprintf("gf: tier %v registered twice", id))
	}
	tierBuilders[id] = build
}

// forcedTier is the process-wide tier override, stored as int32(TierID).
var forcedTier atomic.Int32

func init() {
	forcedTier.Store(int32(TierAuto))
	if v := os.Getenv("GFP_KERNEL_TIER"); v != "" {
		t, err := ParseTier(v)
		if err != nil {
			panic(fmt.Sprintf("gf: GFP_KERNEL_TIER: %v", err))
		}
		forcedTier.Store(int32(t))
	}
}

// ForceKernelTier forces every auto-dispatched kernel call process-wide
// onto the given tier (ops the tier does not implement for a field
// still fall back to the scalar reference). ForceKernelTier(TierAuto)
// restores calibrated selection. This is the programmatic form of the
// GFP_KERNEL_TIER environment variable and the -kernel-tier flag of
// gfpipe/gfserved. Safe for concurrent use.
func ForceKernelTier(t TierID) { forcedTier.Store(int32(t)) }

// ForcedKernelTier returns the current process-wide override, or
// TierAuto when selection is calibrated.
func ForcedKernelTier() TierID { return TierID(forcedTier.Load()) }
