package gf

import (
	"math/rand"
	"testing"
)

// TestBitslicedTails drives the SWAR kernels at every length 0..3*lanes
// so both the full-word body and the scalar tail paths are hit, for a
// byte-lane field (m=8), a narrow field (m=5) and a halfword-lane field
// (m=16).
func TestBitslicedTails(t *testing.T) {
	for _, m := range []int{5, 8, 16} {
		f, err := NewDefault(m)
		if err != nil {
			t.Fatal(err)
		}
		bs := f.Kernels().forTier(TierBitsliced)
		ref := f.ScalarKernels()
		rng := rand.New(rand.NewSource(int64(m)))
		for n := 0; n <= 24; n++ {
			a, b := make([]Elem, n), make([]Elem, n)
			for i := range a {
				a[i] = Elem(rng.Intn(f.Order()))
				b[i] = Elem(rng.Intn(f.Order()))
			}
			c := Elem(rng.Intn(f.Order()))

			got, want := make([]Elem, n), make([]Elem, n)
			bs.MulConstSlice(got, a, c)
			ref.MulConstSlice(want, a, c)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("m=%d n=%d: MulConstSlice[%d] = %d, want %d", m, n, i, got[i], want[i])
				}
			}

			copy(got, b)
			copy(want, b)
			bs.MulConstAddSlice(got, a, c)
			ref.MulConstAddSlice(want, a, c)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("m=%d n=%d: MulConstAddSlice[%d] = %d, want %d", m, n, i, got[i], want[i])
				}
			}

			if g, w := bs.DotSlice(a, b), ref.DotSlice(a, b); g != w {
				t.Fatalf("m=%d n=%d: DotSlice = %d, want %d", m, n, g, w)
			}
		}
	}
}

// TestBitslicedSyndromePointCounts checks the lane-packed multi-point
// syndrome for point counts that leave partial lane groups (1..9 points
// on 8-lane fields, 1..5 on 4-lane ones).
func TestBitslicedSyndromePointCounts(t *testing.T) {
	for _, m := range []int{8, 16} {
		f, err := NewDefault(m)
		if err != nil {
			t.Fatal(err)
		}
		bs := f.Kernels().forTier(TierBitsliced)
		ref := f.ScalarKernels()
		rng := rand.New(rand.NewSource(int64(100 + m)))
		word := make([]Elem, 100)
		bits := make([]byte, 100)
		for i := range word {
			word[i] = Elem(rng.Intn(f.Order()))
			bits[i] = byte(rng.Intn(2))
		}
		for np := 1; np <= 9; np++ {
			xs := make([]Elem, np)
			for i := range xs {
				xs[i] = Elem(rng.Intn(f.Order()))
			}
			got, want := make([]Elem, np), make([]Elem, np)
			bs.SyndromeSlice(got, word, xs)
			ref.SyndromeSlice(want, word, xs)
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("m=%d np=%d: SyndromeSlice[%d] = %d, want %d", m, np, j, got[j], want[j])
				}
			}
			bs.SyndromeBitSlice(got, bits, xs)
			ref.SyndromeBitSlice(want, bits, xs)
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("m=%d np=%d: SyndromeBitSlice[%d] = %d, want %d", m, np, j, got[j], want[j])
				}
			}
		}
	}
}
