package gf

// The bitsliced tier: 64-bit SWAR (SIMD-within-a-register) kernels that
// compute GF(2^m) products with shift-and-conditional-XOR steps over
// packed lanes — no tables at all, so the tier is fully cache-resident
// and its cost is independent of table locality. Fields with m <= 8
// pack eight 8-bit lanes per uint64; wider fields pack four 16-bit
// lanes. One xtime step (multiply every lane by x simultaneously)
// costs four register ops:
//
//	hi  := w & top                      // lanes about to overflow x^m
//	w    = (w ^ hi) << 1                // shift all lanes left
//	w   ^= (hi >> (m-1)) * polyLow      // fold x^m back via the field poly
//
// which is the direct software transcription of the paper's multiplier
// primitive (the AND/XOR array of Table 2) evaluated one column per
// step across all lanes at once. The per-lane-mask trick
// (bit * 0xFF.. broadcasts a lane's multiplier bit across its lane)
// implements the conditional adds without branches.
//
// The tier covers the constant-multiply slice ops, the inner product
// and the multi-point syndrome kernels (evaluation points packed into
// lanes, per-bit masks precomputed from the points). Single-point
// Horner remains with the lookup tiers: its loop-carried dependency
// leaves nothing to slice across.

func init() { registerTier(TierBitsliced, buildBitslicedOps) }

// bsField carries the per-field SWAR geometry.
type bsField struct {
	f       *Field
	m       int
	lanes   int    // elements per uint64: 8 (m <= 8) or 4 (m <= 16)
	w       uint   // lane width in bits: 8 or 16
	lsb     uint64 // bit 0 of every lane
	fill    uint64 // every lane bit set
	top     uint64 // bit m-1 of every lane
	polyLow uint64 // field poly without its leading term
	mTop    uint   // m-1, the top-bit shift
}

func buildBitslicedOps(f *Field) *tierOps {
	if f.m < 2 {
		return nil // GF(2): multiplication is AND, nothing to slice
	}
	p := &bsField{f: f, m: f.m, polyLow: uint64(f.poly) &^ (1 << uint(f.m)), mTop: uint(f.m - 1)}
	if f.m <= 8 {
		p.lanes, p.w, p.lsb = 8, 8, 0x0101010101010101
	} else {
		p.lanes, p.w, p.lsb = 4, 16, 0x0001000100010001
	}
	p.fill = p.lsb * ((1 << p.w) - 1)
	p.top = p.lsb << p.mTop
	return &tierOps{
		mulConst:    p.mulConst,
		mulConstAdd: p.mulConstAdd,
		dot:         p.dot,
		syndrome:    p.syndrome,
		syndromeBit: p.syndromeBit,
	}
}

// xtime multiplies every lane by x, folding overflow through the field
// polynomial. Lanes must hold valid field elements (< 2^m).
func (p *bsField) xtime(v uint64) uint64 {
	hi := v & p.top
	return ((v ^ hi) << 1) ^ ((hi >> p.mTop) * p.polyLow)
}

// pack loads p.lanes elements from src into lanes of one word.
func (p *bsField) pack(src []Elem) uint64 {
	if p.w == 8 {
		return uint64(src[0]) | uint64(src[1])<<8 | uint64(src[2])<<16 | uint64(src[3])<<24 |
			uint64(src[4])<<32 | uint64(src[5])<<40 | uint64(src[6])<<48 | uint64(src[7])<<56
	}
	return uint64(src[0]) | uint64(src[1])<<16 | uint64(src[2])<<32 | uint64(src[3])<<48
}

// unpack stores the lanes of v into dst.
func (p *bsField) unpack(v uint64, dst []Elem) {
	if p.w == 8 {
		dst[0] = Elem(v & 0xFF)
		dst[1] = Elem(v >> 8 & 0xFF)
		dst[2] = Elem(v >> 16 & 0xFF)
		dst[3] = Elem(v >> 24 & 0xFF)
		dst[4] = Elem(v >> 32 & 0xFF)
		dst[5] = Elem(v >> 40 & 0xFF)
		dst[6] = Elem(v >> 48 & 0xFF)
		dst[7] = Elem(v >> 56 & 0xFF)
		return
	}
	dst[0] = Elem(v & 0xFFFF)
	dst[1] = Elem(v >> 16 & 0xFFFF)
	dst[2] = Elem(v >> 32 & 0xFFFF)
	dst[3] = Elem(v >> 48 & 0xFFFF)
}

// mulLanes multiplies the lanes of w by the single constant c via
// double-and-add over c's bits.
func (p *bsField) mulLanes(w uint64, c Elem) uint64 {
	var acc uint64
	cc := uint32(c)
	for cc != 0 {
		if cc&1 != 0 {
			acc ^= w
		}
		cc >>= 1
		w = p.xtime(w)
	}
	return acc
}

func (p *bsField) mulConst(dst, src []Elem, c Elem) {
	n, L := len(src), p.lanes
	i := 0
	for ; i+L <= n; i += L {
		p.unpack(p.mulLanes(p.pack(src[i:]), c), dst[i:])
	}
	for ; i < n; i++ {
		dst[i] = p.f.Mul(c, src[i])
	}
}

func (p *bsField) mulConstAdd(dst, src []Elem, c Elem) {
	n, L := len(src), p.lanes
	i := 0
	var lanes [8]Elem
	for ; i+L <= n; i += L {
		p.unpack(p.mulLanes(p.pack(src[i:]), c), lanes[:L])
		for j := 0; j < L; j++ {
			dst[i+j] ^= lanes[j]
		}
	}
	for ; i < n; i++ {
		dst[i] ^= p.f.Mul(c, src[i])
	}
}

func (p *bsField) dot(a, b []Elem) Elem {
	n, L := len(a), p.lanes
	var accW uint64
	i := 0
	for ; i+L <= n; i += L {
		wa, wb := p.pack(a[i:]), p.pack(b[i:])
		var prod uint64
		for bit := 0; bit < p.m; bit++ {
			lb := (wb >> uint(bit)) & p.lsb
			prod ^= wa & (lb * ((1 << p.w) - 1))
			wa = p.xtime(wa)
		}
		accW ^= prod
	}
	// Fold the lanes together.
	accW ^= accW >> 32
	accW ^= accW >> 16
	if p.w == 8 {
		accW ^= accW >> 8
	}
	acc := Elem(accW & (1<<p.w - 1))
	for ; i < n; i++ {
		acc ^= p.f.Mul(a[i], b[i])
	}
	return acc
}

// pointMasks precomputes, for one lane group of evaluation points, the
// per-bit broadcast masks: masks[b] selects the lanes whose point has
// bit b set, each selected lane filled with ones.
func (p *bsField) pointMasks(masks *[16]uint64, xs []Elem) {
	wx := uint64(0)
	for j, x := range xs {
		wx |= uint64(x) << (uint(j) * p.w)
	}
	for b := 0; b < p.m; b++ {
		masks[b] = ((wx >> uint(b)) & p.lsb) * ((1 << p.w) - 1)
	}
}

// syndromeLanes runs the multi-point Horner recursion with up to
// p.lanes evaluation points resident in lanes: every step multiplies
// each lane's accumulator by its own point (via the precomputed per-bit
// masks) and adds the next symbol broadcast across all lanes.
func (p *bsField) syndromeLanes(dst []Elem, xs []Elem, next func(int) uint64, n int) {
	var masks [16]uint64
	var lanes [8]Elem
	for j := 0; j < len(xs); j += p.lanes {
		g := xs[j:]
		if len(g) > p.lanes {
			g = g[:p.lanes]
		}
		p.pointMasks(&masks, g)
		var acc uint64
		for i := 0; i < n; i++ {
			w := acc
			var prod uint64
			for b := 0; b < p.m; b++ {
				prod ^= w & masks[b]
				w = p.xtime(w)
			}
			acc = prod ^ next(i)
		}
		p.unpack(acc, lanes[:p.lanes])
		copy(dst[j:j+len(g)], lanes[:len(g)])
	}
}

func (p *bsField) syndrome(dst, word, xs []Elem) {
	p.syndromeLanes(dst, xs, func(i int) uint64 { return uint64(word[i]) * p.lsb }, len(word))
}

func (p *bsField) syndromeBit(dst []Elem, bits []byte, xs []Elem) {
	p.syndromeLanes(dst, xs, func(i int) uint64 { return uint64(bits[i]) * p.lsb }, len(bits))
}
