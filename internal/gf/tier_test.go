package gf

import (
	"testing"
)

// TestVerifyKernelsAllTiers is the exhaustive differential gate of the
// tier registry: for EVERY irreducible polynomial of degree 2..8 (all
// field shapes the codec layer can construct) plus the default
// degree-16 field, every registered tier must agree with the scalar
// reference on every bulk op, the bit-syndrome plans included.
func TestVerifyKernelsAllTiers(t *testing.T) {
	for m := 2; m <= 8; m++ {
		for _, p := range IrreduciblePolys(m) {
			f := MustNew(m, p)
			if err := VerifyKernels(f, 2, int64(p)); err != nil {
				t.Errorf("m=%d poly=%#x: %v", m, p, err)
			}
		}
	}
	f16, err := NewDefault(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyKernels(f16, 2, 16); err != nil {
		t.Errorf("m=16: %v", err)
	}
}

// TestVerifyKernelsDefaultFields covers the default polynomial of every
// supported degree, including the 8 < m < 16 shapes the all-irreducible
// sweep skips.
func TestVerifyKernelsDefaultFields(t *testing.T) {
	for m := 1; m <= 16; m++ {
		f, err := NewDefault(m)
		if err != nil {
			t.Fatalf("NewDefault(%d): %v", m, err)
		}
		if err := VerifyKernels(f, 2, int64(m)); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
	}
}

func TestParseTier(t *testing.T) {
	for id := TierID(0); id < NumTiers; id++ {
		got, err := ParseTier(id.String())
		if err != nil || got != id {
			t.Errorf("ParseTier(%q) = %v, %v; want %v", id.String(), got, err, id)
		}
	}
	for _, name := range []string{"", "auto"} {
		if got, err := ParseTier(name); err != nil || got != TierAuto {
			t.Errorf("ParseTier(%q) = %v, %v; want TierAuto", name, got, err)
		}
	}
	if _, err := ParseTier("simd"); err == nil {
		t.Error("ParseTier(simd): want error")
	}
}

func TestAvailableTiers(t *testing.T) {
	cases := []struct {
		m    int
		want []string
	}{
		{4, []string{"scalar", "packed", "table", "bitsliced", "clmul"}},
		{8, []string{"scalar", "table", "bitsliced", "clmul"}},
		{12, []string{"scalar", "bitsliced", "clmul"}},
		{16, []string{"scalar", "bitsliced", "clmul"}},
	}
	for _, tc := range cases {
		f, err := NewDefault(tc.m)
		if err != nil {
			t.Fatal(err)
		}
		got := f.Kernels().AvailableTiers()
		if len(got) != len(tc.want) {
			t.Errorf("m=%d: AvailableTiers() = %v, want %v", tc.m, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("m=%d: AvailableTiers() = %v, want %v", tc.m, got, tc.want)
				break
			}
		}
	}
}

// TestForcedTierRouting checks that the process-wide force routes every
// auto-dispatched call onto the forced tier (with scalar fallback for
// unimplemented ops) and that outputs stay bit-exact with the scalar
// reference under every force.
func TestForcedTierRouting(t *testing.T) {
	defer ForceKernelTier(TierAuto)
	f, err := NewDefault(8)
	if err != nil {
		t.Fatal(err)
	}
	k, ref := f.Kernels(), f.ScalarKernels()
	n := 255
	src := make([]Elem, n)
	for i := range src {
		src[i] = Elem(i)
	}
	want := make([]Elem, n)
	ref.MulConstSlice(want, src, 0x57)

	for id := TierID(0); id < NumTiers; id++ {
		ForceKernelTier(id)
		if got := ForcedKernelTier(); got != id {
			t.Fatalf("ForcedKernelTier() = %v, want %v", got, id)
		}
		got := make([]Elem, n)
		before := KernelCalls()
		k.MulConstSlice(got, src, 0x57)
		after := KernelCalls()
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("forced %v: MulConstSlice[%d] = %d, want %d", id, i, got[i], want[i])
			}
		}
		// The hit lands on the forced tier when it implements the op for
		// this field, on scalar otherwise (packed is m <= 4 only).
		charged := id
		if k.tiers[id] == nil || !k.tiers[id].supports(opMulConst) {
			charged = TierScalar
		}
		if after[charged]-before[charged] < 1 {
			t.Errorf("forced %v: no hit charged to %v", id, charged)
		}
	}
	ForceKernelTier(TierAuto)

	// A pin outranks the force: scalar views stay scalar under any force.
	ForceKernelTier(TierTable)
	before := KernelCalls()
	got := make([]Elem, n)
	ref.MulConstSlice(got, src, 0x57)
	after := KernelCalls()
	if after[TierScalar]-before[TierScalar] < 1 {
		t.Error("pinned scalar view did not charge the scalar tier under a table force")
	}
}

// TestTierSelectionShape sanity-checks the calibrated selection: every
// op resolves to an available tier that supports it (or scalar), at
// both short and long lengths.
func TestTierSelectionShape(t *testing.T) {
	f, err := NewDefault(8)
	if err != nil {
		t.Fatal(err)
	}
	k := f.Kernels()
	for op := kernelOp(0); op < numOps; op++ {
		for _, n := range []int{1, 16, 63, 255, 4096} {
			tier := k.tierFor(op, n)
			if tier == TierAuto || k.tiers[tier] == nil {
				t.Fatalf("op %s n=%d: resolved to unavailable tier %v", opNames[op], n, tier)
			}
			if op != opSyndromeBitFold && !k.tiers[tier].supports(op) && tier != TierScalar {
				// dispatch() would fall back to scalar; the selection should
				// not have picked an unsupporting tier in the first place.
				t.Errorf("op %s n=%d: selection picked %v which lacks the op", opNames[op], n, tier)
			}
		}
	}
}
