package obs

import (
	"encoding/json"
	"io"
)

// WriteJSON writes the gathered registry as an indented JSON array of
// Metric families — the format gfpipe/gfload dump via -metrics-out and
// gfserved serves inside /statsz.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Gather())
}
