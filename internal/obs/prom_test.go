package obs

import (
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with fixed contents covering every
// exposition feature: help/label escaping, all three kinds, multiple
// label-sorted series, cumulative histogram buckets.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("gfp_frames_total", "Frames processed.\nSecond line with back\\slash.",
		L("stage", "rs-encode")).Add(12)
	r.Counter("gfp_frames_total", "Frames processed.\nSecond line with back\\slash.",
		L("stage", "corrupt")).Add(7)
	r.Counter("gfp_escapes_total", `Label escaping probe.`,
		L("path", `C:\tmp`), L("quote", `say "hi"`), L("nl", "a\nb")).Inc()
	r.Gauge("gfp_rung", "Adaptive ladder rung.").Set(3)
	r.GaugeFunc("gfp_code_rate", "Active code rate.", func() float64 { return 223.0 / 255.0 })

	h := r.Histogram("gfp_latency_seconds", "Frame latency.")
	h.Observe(100)   // bucket [64,128) -> le=1.28e-07
	h.Observe(100)   // same bucket
	h.Observe(5000)  // bucket [4096,8192) -> le=8.192e-06
	h.Observe(70000) // bucket [65536,131072) -> le=0.000131072
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := sb.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusEscaping(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`# HELP gfp_frames_total Frames processed.\nSecond line with back\\slash.`,
		`path="C:\\tmp"`,
		`quote="say \"hi\""`,
		`nl="a\nb"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(out, "say \"hi\"\n") {
		t.Error("raw unescaped quote leaked into exposition")
	}
}

func TestPrometheusHistogramShape(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE gfp_latency_seconds histogram",
		`gfp_latency_seconds_bucket{le="1.28e-07"} 2`,
		`gfp_latency_seconds_bucket{le="8.192e-06"} 3`,
		`gfp_latency_seconds_bucket{le="0.000131072"} 4`,
		`gfp_latency_seconds_bucket{le="+Inf"} 4`,
		"gfp_latency_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// _sum = (100+100+5000+70000)ns = 7.52e-05 s
	if !strings.Contains(out, "gfp_latency_seconds_sum 7.52e-05") {
		t.Errorf("missing histogram _sum in:\n%s", out)
	}
}

func TestHandler(t *testing.T) {
	srv := httptest.NewServer(goldenRegistry().Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "gfp_frames_total") {
		t.Error("handler response missing registered metric")
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"name": "gfp_frames_total"`,
		`"kind": "counter"`,
		`"kind": "histogram"`,
		`"p99_ns"`,
		`"upper_ns"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON dump missing %q", want)
		}
	}
}
