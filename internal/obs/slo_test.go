package obs

import (
	"strings"
	"testing"
	"time"
)

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("ecdsa-sign=5ms@99.9, default=2ms@99")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("got %d objectives, want 2", len(objs))
	}
	if objs[0].Op != "ecdsa-sign" || objs[0].Threshold != 5*time.Millisecond ||
		objs[0].Target < 0.9989999 || objs[0].Target > 0.9990001 {
		t.Fatalf("first objective wrong: %+v", objs[0])
	}
	if objs[1].Op != "default" || objs[1].Target != 0.99 {
		t.Fatalf("default objective wrong: %+v", objs[1])
	}

	if objs, err := ParseObjectives("  "); err != nil || objs != nil {
		t.Fatalf("empty spec: got %v, %v; want nil, nil", objs, err)
	}

	for _, bad := range []string{
		"no-equals",
		"op=5ms",          // missing @percent
		"op=wat@99",       // bad duration
		"op=-1ms@99",      // non-positive threshold
		"op=5ms@0",        // percent at edge
		"op=5ms@100",      // percent at edge
		"op=5ms@x",        // non-numeric percent
		"=5ms@99",         // empty op
		"a=1ms@9,a=2ms@9", // duplicate op
	} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("ParseObjectives(%q) accepted a bad spec", bad)
		}
	}
}

func TestSLONilSafe(t *testing.T) {
	var s *SLO // objectives off
	s.Observe("x", "y", time.Second)
	if got := s.Snapshot(); got != nil {
		t.Fatalf("nil SLO Snapshot = %v, want nil", got)
	}
	if s.Window() != 0 {
		t.Fatalf("nil SLO Window = %v, want 0", s.Window())
	}
	s.RegisterMetrics(NewRegistry()) // must not panic
	if NewSLO(nil, time.Minute) != nil {
		t.Fatal("NewSLO with no objectives should return nil")
	}
}

func TestSLOObserveAndBurn(t *testing.T) {
	objs, err := ParseObjectives("sign=1ms@90")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSLO(objs, time.Minute)

	// 8 fast, 2 slow: breach fraction 0.2 against a 0.1 budget -> burn 2x.
	for i := 0; i < 8; i++ {
		s.Observe("sign", "a", 100*time.Microsecond)
	}
	s.Observe("sign", "a", 5*time.Millisecond)
	s.Observe("sign", "a", 5*time.Millisecond)
	s.Observe("untracked-op", "a", time.Hour) // no objective, no default: dropped

	snap := s.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d series, want 1: %+v", len(snap), snap)
	}
	st := snap[0]
	if st.Op != "sign" || st.Tenant != "a" {
		t.Fatalf("series identity wrong: %+v", st)
	}
	if st.Total != 10 || st.Breaches != 2 || st.WindowTotal != 10 || st.WindowBreaches != 2 {
		t.Fatalf("counts wrong: %+v", st)
	}
	if st.BurnRate < 1.99 || st.BurnRate > 2.01 {
		t.Fatalf("BurnRate = %v, want 2.0", st.BurnRate)
	}
	// Cumulative: spent 0.2/0.1 = 2x the budget -> remaining = -1.
	if st.BudgetRemaining > -0.99 || st.BudgetRemaining < -1.01 {
		t.Fatalf("BudgetRemaining = %v, want -1", st.BudgetRemaining)
	}
}

func TestSLODefaultObjective(t *testing.T) {
	objs, err := ParseObjectives("default=1ms@99")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSLO(objs, time.Minute)
	s.Observe("anything", "t", 2*time.Millisecond)
	snap := s.Snapshot()
	if len(snap) != 1 || snap[0].Op != "anything" || snap[0].Breaches != 1 {
		t.Fatalf("default objective not applied: %+v", snap)
	}
}

func TestSLOSeriesCapFoldsToOther(t *testing.T) {
	objs, _ := ParseObjectives("default=1ms@99")
	s := NewSLO(objs, time.Minute)
	s.maxSeries = 2
	s.Observe("op", "t1", time.Microsecond)
	s.Observe("op", "t2", time.Microsecond)
	s.Observe("op", "t3", time.Microsecond) // over cap: folds into "other"
	s.Observe("op", "t4", time.Microsecond)
	snap := s.Snapshot()
	var other *SLOStatus
	for i := range snap {
		if snap[i].Tenant == "other" {
			other = &snap[i]
		}
		if snap[i].Tenant == "t3" || snap[i].Tenant == "t4" {
			t.Fatalf("tenant %s got its own series past the cap", snap[i].Tenant)
		}
	}
	if other == nil || other.Total != 2 {
		t.Fatalf("folded series wrong: %+v", snap)
	}
}

func TestSLORegisterMetrics(t *testing.T) {
	objs, _ := ParseObjectives("sign=1ms@90")
	s := NewSLO(objs, time.Minute)
	reg := NewRegistry()
	s.Observe("sign", "a", time.Microsecond) // series exists before binding
	s.RegisterMetrics(reg)
	s.Observe("sign", "b", 5*time.Millisecond) // and one created after

	var sb strings.Builder
	WriteMetricsText(&sb, reg.Gather())
	text := sb.String()
	for _, want := range []string{
		`gfp_slo_requests_total{op="sign",tenant="a"} 1`,
		`gfp_slo_requests_total{op="sign",tenant="b"} 1`,
		`gfp_slo_breaches_total{op="sign",tenant="b"} 1`,
		`gfp_slo_threshold_seconds{op="sign",tenant="a"} 0.001`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q\n%s", want, text)
		}
	}
}
