package obs

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/perf"
)

// Exemplar is a lock-free slot pairing a histogram with the trace id of
// a recently observed sample, so a latency distribution links back to
// one concrete traced request ("/tracez?…" has the full span breakdown
// for it). Record is two atomic stores on the hot path; readers may see
// a torn (trace, value) pair across concurrent records, which is
// acceptable for a debugging hint.
type Exemplar struct {
	trace atomic.Uint64
	ns    atomic.Int64
	at    atomic.Int64
}

// Record notes that a sample of ns nanoseconds belonged to trace.
// A zero trace id is ignored.
func (e *Exemplar) Record(trace uint64, ns int64) {
	if trace == 0 {
		return
	}
	e.trace.Store(trace)
	e.ns.Store(ns)
	e.at.Store(time.Now().UnixNano())
}

// ExemplarSample is a gathered exemplar: the trace id (16-digit hex,
// matching the span encoding) plus the sample it came from.
type ExemplarSample struct {
	TraceID  string `json:"trace_id"`
	ValueNs  int64  `json:"value_ns"`
	AtUnixNs int64  `json:"at_unix_ns"`
}

// sample materializes the exemplar, or nil if none was ever recorded.
func (e *Exemplar) sample() *ExemplarSample {
	t := e.trace.Load()
	if t == 0 {
		return nil
	}
	return &ExemplarSample{
		TraceID:  fmt.Sprintf("%016x", t),
		ValueNs:  e.ns.Load(),
		AtUnixNs: e.at.Load(),
	}
}

// HistogramFuncEx is HistogramFunc with an exemplar slot attached: the
// gathered HistSample carries the exemplar's trace id, so JSON
// consumers (/statsz, -metrics-out dumps) can jump from a latency
// distribution to one traced request. The Prometheus text exposition is
// unchanged (text v0.0.4 has no exemplar syntax).
func (r *Registry) HistogramFuncEx(name, help string, h *perf.Hist, ex *Exemplar, labels ...Label) {
	if h == nil {
		panic("obs: HistogramFuncEx with nil perf.Hist for " + name)
	}
	s := r.getOrCreate(name, help, KindHistogram, labels, true)
	r.mu.Lock()
	s.histRef = h
	s.ex = ex
	r.mu.Unlock()
}
