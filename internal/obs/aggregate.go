package obs

// Fleet aggregation: folding the gathered metric sets of N processes
// (each one backend's /statsz "metrics" array) into a single set that
// reads as one instrument — counters and histogram buckets sum exactly
// (perf.Hist.Merge semantics over the wire), gauges sum (active
// connections across a fleet add), and histogram summary fields are
// recomputed from the merged buckets. gfproxy's admin endpoint serves
// the result next to its own registry, so a whole cluster scrapes like
// one process.

import (
	"math"
	"math/bits"
	"sort"

	"repro/internal/perf"
)

// Snapshot converts a gathered histogram sample back into the perf
// bucket layout it was exported from, keyed by each bucket's exported
// upper bound. Unknown bounds (not a power of two, out of range) are
// folded into the overflow bucket rather than dropped, so counts are
// never lost.
func (hs *HistSample) Snapshot() perf.HistSnapshot {
	var s perf.HistSnapshot
	for _, b := range hs.Buckets {
		s.Buckets[bucketIndex(b.UpperNs)] += b.Count
		s.Count += b.Count
	}
	s.SumNs = hs.SumNs
	s.MaxNs = hs.MaxNs
	return s
}

// bucketIndex inverts perf.BucketUpperNs: bucket i exports bound 2^(i+1),
// the overflow bucket exports MaxInt64.
func bucketIndex(upperNs int64) int {
	if upperNs == math.MaxInt64 {
		return perf.NumBuckets - 1
	}
	if upperNs < 2 || upperNs&(upperNs-1) != 0 {
		return perf.NumBuckets - 1
	}
	i := bits.Len64(uint64(upperNs)) - 2
	if i >= perf.NumBuckets {
		return perf.NumBuckets - 1
	}
	return i
}

// MergeMetrics folds any number of gathered metric sets into one:
// families are matched by name, series within a family by their label
// set. Counter and gauge samples sum; histogram samples merge their raw
// buckets (via perf.Hist.MergeSnapshot) and recompute count, sum, max,
// mean and percentiles from the merged state. A family appearing in
// several sets with conflicting kinds keeps the first kind seen and
// skips mismatched occurrences. The result is sorted like
// Registry.Gather: families by name, series by label key.
func MergeMetrics(sets ...[]Metric) []Metric {
	type mergedSeries struct {
		labels []Label
		value  float64
		hist   *perf.Hist
	}
	type mergedFamily struct {
		help   string
		kind   Kind
		series map[string]*mergedSeries
	}
	families := make(map[string]*mergedFamily)

	for _, set := range sets {
		for _, m := range set {
			f := families[m.Name]
			if f == nil {
				f = &mergedFamily{help: m.Help, kind: m.Kind, series: make(map[string]*mergedSeries)}
				families[m.Name] = f
			} else if f.kind != m.Kind {
				continue // conflicting redefinition; keep the first kind
			}
			for _, s := range m.Samples {
				key := labelKey(s.Labels)
				ms := f.series[key]
				if ms == nil {
					ms = &mergedSeries{labels: s.Labels}
					f.series[key] = ms
				}
				if m.Kind == KindHistogram {
					if s.Hist == nil {
						continue
					}
					if ms.hist == nil {
						ms.hist = &perf.Hist{}
					}
					ms.hist.MergeSnapshot(s.Hist.Snapshot())
				} else {
					ms.value += s.Value
				}
			}
		}
	}

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Metric, 0, len(names))
	for _, name := range names {
		f := families[name]
		m := Metric{Name: name, Help: f.help, Kind: f.kind}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ms := f.series[k]
			sm := Sample{Labels: ms.labels, Value: ms.value}
			if f.kind == KindHistogram {
				sm.Value = 0
				if ms.hist != nil {
					sm.Hist = histSample(ms.hist.Snapshot())
				}
			}
			m.Samples = append(m.Samples, sm)
		}
		out = append(out, m)
	}
	return out
}
