package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition format content type
// served by Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	valueEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

func escapeLabelValue(v string) string { return valueEscaper.Replace(v) }

// WritePrometheus writes every registered metric in Prometheus text
// exposition format v0.0.4: a # HELP and # TYPE line per family, then
// one sample line per series, families sorted by name and series by
// label values. Histograms emit cumulative le buckets in seconds plus
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WriteMetricsText(w, r.Gather())
}

// WriteMetricsText renders an already-gathered metric set in Prometheus
// text exposition format — the same rendering WritePrometheus applies to
// a live registry, usable on merged fleet snapshots (MergeMetrics) that
// never lived in a registry. Families must not repeat names; samples are
// rendered in the given order.
func WriteMetricsText(w io.Writer, metrics []Metric) error {
	bw := bufio.NewWriter(w)
	for _, m := range metrics {
		bw.WriteString("# HELP ")
		bw.WriteString(m.Name)
		bw.WriteByte(' ')
		bw.WriteString(helpEscaper.Replace(m.Help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(m.Name)
		bw.WriteByte(' ')
		bw.WriteString(m.Kind.String())
		bw.WriteByte('\n')
		for _, s := range m.Samples {
			if m.Kind == KindHistogram {
				writeHistSample(bw, m.Name, s)
				continue
			}
			bw.WriteString(m.Name)
			writeLabels(bw, s.Labels, "")
			bw.WriteByte(' ')
			bw.WriteString(formatValue(s.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeHistSample emits the cumulative bucket series, _sum and _count
// for one histogram sample. Bucket bounds are converted from the
// perf.Hist nanosecond edges to seconds; the overflow bucket is folded
// into +Inf.
func writeHistSample(bw *bufio.Writer, name string, s Sample) {
	var cum int64
	for _, b := range s.Hist.Buckets {
		if b.UpperNs == math.MaxInt64 {
			break // overflow bucket: counted via +Inf below
		}
		cum += b.Count
		bw.WriteString(name)
		bw.WriteString("_bucket")
		writeLabels(bw, s.Labels, formatValue(float64(b.UpperNs)/1e9))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(cum, 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(name)
	bw.WriteString("_bucket")
	writeLabels(bw, s.Labels, "+Inf")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(s.Hist.Count, 10))
	bw.WriteByte('\n')

	bw.WriteString(name)
	bw.WriteString("_sum")
	writeLabels(bw, s.Labels, "")
	bw.WriteByte(' ')
	bw.WriteString(formatValue(float64(s.Hist.SumNs) / 1e9))
	bw.WriteByte('\n')

	bw.WriteString(name)
	bw.WriteString("_count")
	writeLabels(bw, s.Labels, "")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(s.Hist.Count, 10))
	bw.WriteByte('\n')
}

// writeLabels renders {k="v",...}; le, when non-empty, is appended as
// the final label per the histogram bucket convention.
func writeLabels(bw *bufio.Writer, ls []Label, le string) {
	if len(ls) == 0 && le == "" {
		return
	}
	bw.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(l.Key)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabelValue(l.Value))
		bw.WriteByte('"')
	}
	if le != "" {
		if len(ls) > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(`le="`)
		bw.WriteString(le)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format, for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WritePrometheus(w)
	})
}
