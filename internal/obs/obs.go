// Package obs is the repo's unified observability core: a dependency-free
// metrics registry (atomic counters and gauges, histograms reusing the
// perf.Hist power-of-two buckets) with labeled families, stable iteration
// order, Prometheus text-format v0.0.4 exposition and JSON dumps.
//
// Every stats producer in the tree — pipeline stage stats, the perf cycle
// model, the server ledger, the adaptive controller, the gf kernel tiers —
// registers here as a named instrument, so gfserved's admin listener and
// the load drivers' -metrics-out dumps all read from one surface.
//
// The package deliberately imports nothing outside the standard library
// and repro/internal/perf (enforced by scripts/check_obs_imports.sh).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/perf"
)

// Label is one key=value metric dimension.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L builds a Label; it exists so call sites stay short.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind is the metric family type.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// MarshalText makes Kind render as its TYPE keyword in JSON dumps.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses the TYPE keyword back, so a gathered metric set
// round-trips through JSON (the fleet aggregator scrapes backend
// /statsz dumps and merges them).
func (k *Kind) UnmarshalText(text []byte) error {
	switch string(text) {
	case "counter":
		*k = KindCounter
	case "gauge":
		*k = KindGauge
	case "histogram":
		*k = KindHistogram
	default:
		return fmt.Errorf("obs: unknown metric kind %q", text)
	}
	return nil
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored to keep the counter monotonic.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 gauge.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; safe for concurrent use).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a registry-owned latency histogram sharing perf.Hist's
// power-of-two nanosecond buckets. Observe is safe for concurrent use.
type Histogram struct{ h perf.Hist }

// Observe records one nanosecond sample.
func (h *Histogram) Observe(ns int64) { h.h.Observe(time.Duration(ns)) }

// Hist exposes the underlying perf.Hist for Observe(time.Duration) callers.
func (h *Histogram) Hist() *perf.Hist { return &h.h }

// series is one label combination inside a family. Exactly one of the
// value sources is set.
type series struct {
	labels []Label // sorted by key
	key    string  // canonical label encoding, family-unique

	ctr     *Counter
	gauge   *Gauge
	hist    *Histogram
	ctrFn   func() int64
	gaugeFn func() float64
	histRef *perf.Hist
	ex      *Exemplar // optional exemplar slot (HistogramFuncEx)
}

func (s *series) isFunc() bool { return s.ctrFn != nil || s.gaugeFn != nil || s.histRef != nil }

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	series map[string]*series
}

// Registry holds metric families. All methods are safe for concurrent
// use; instrument updates (Counter.Add etc.) are lock-free, and
// registration or Gather take the registry lock.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter for name+labels, creating it on first use.
// It panics if name is already registered with a different kind or help
// string, or if the name/labels are malformed.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.getOrCreate(name, help, KindCounter, labels, false).ctr
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.getOrCreate(name, help, KindGauge, labels, false).gauge
}

// Histogram returns the histogram for name+labels, creating it on first
// use. By convention histogram names end in _seconds and samples are
// nanoseconds; exposition converts to seconds.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.getOrCreate(name, help, KindHistogram, labels, false).hist
}

// CounterFunc registers a read-through counter backed by fn, for wiring
// existing atomic producers in without double accounting. fn must be
// safe for concurrent use and must not call back into the registry.
// Registering the same name+labels twice panics.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	s := r.getOrCreate(name, help, KindCounter, labels, true)
	r.mu.Lock()
	s.ctrFn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a read-through gauge backed by fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.getOrCreate(name, help, KindGauge, labels, true)
	r.mu.Lock()
	s.gaugeFn = fn
	r.mu.Unlock()
}

// HistogramFunc registers a read-through histogram over an existing live
// perf.Hist (e.g. a pipeline stage's latency histogram).
func (r *Registry) HistogramFunc(name, help string, h *perf.Hist, labels ...Label) {
	if h == nil {
		panic("obs: HistogramFunc with nil perf.Hist for " + name)
	}
	s := r.getOrCreate(name, help, KindHistogram, labels, true)
	r.mu.Lock()
	s.histRef = h
	r.mu.Unlock()
}

func (r *Registry) getOrCreate(name, help string, kind Kind, labels []Label, funcSeries bool) *series {
	validateName(name)
	ls := canonLabels(name, labels)
	key := labelKey(ls)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, f.kind))
		}
		if f.help != help {
			panic(fmt.Sprintf("obs: metric %q re-registered with different help text", name))
		}
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: ls, key: key}
		if !funcSeries {
			// Allocate the instrument under the lock so concurrent
			// get-or-create calls never race on the series fields; func
			// series are filled in by the caller, which registers once.
			switch kind {
			case KindCounter:
				s.ctr = &Counter{}
			case KindGauge:
				s.gauge = &Gauge{}
			case KindHistogram:
				s.hist = &Histogram{}
			}
		}
		f.series[key] = s
		return s
	}
	if funcSeries || s.isFunc() {
		panic(fmt.Sprintf("obs: duplicate registration of %s{%s}", name, key))
	}
	return s
}

// HistBucket is one non-empty histogram bucket in a gathered sample.
type HistBucket struct {
	UpperNs int64 `json:"upper_ns"` // exclusive upper bound; MaxInt64 = overflow
	Count   int64 `json:"count"`    // samples in this bucket (not cumulative)
}

// HistSample is a gathered histogram snapshot with summary percentiles
// and the non-empty raw buckets.
type HistSample struct {
	Count   int64        `json:"count"`
	SumNs   int64        `json:"sum_ns"`
	MaxNs   int64        `json:"max_ns"`
	MeanNs  int64        `json:"mean_ns"`
	P50Ns   int64        `json:"p50_ns"`
	P95Ns   int64        `json:"p95_ns"`
	P99Ns   int64        `json:"p99_ns"`
	Buckets []HistBucket `json:"buckets,omitempty"`

	// Exemplar, when present, names one traced request that contributed
	// a sample — the link from this distribution into /tracez.
	Exemplar *ExemplarSample `json:"exemplar,omitempty"`
}

// Sample is one gathered series: its labels plus either a scalar Value
// (counter, gauge) or a Hist snapshot.
type Sample struct {
	Labels []Label     `json:"labels,omitempty"`
	Value  float64     `json:"value"`
	Hist   *HistSample `json:"hist,omitempty"`
}

// Metric is one gathered family, samples sorted by label key.
type Metric struct {
	Name    string   `json:"name"`
	Help    string   `json:"help"`
	Kind    Kind     `json:"kind"`
	Samples []Sample `json:"samples"`
}

// Gather snapshots every registered series, families sorted by name and
// series sorted by label values, so successive gathers list metrics in
// a stable order.
func (r *Registry) Gather() []Metric {
	r.mu.Lock()
	defer r.mu.Unlock()

	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	out := make([]Metric, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		m := Metric{Name: f.name, Help: f.help, Kind: f.kind}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			m.Samples = append(m.Samples, f.series[k].sample(f.kind))
		}
		out = append(out, m)
	}
	return out
}

func (s *series) sample(kind Kind) Sample {
	out := Sample{Labels: s.labels}
	switch kind {
	case KindCounter:
		switch {
		case s.ctrFn != nil:
			out.Value = float64(s.ctrFn())
		case s.ctr != nil:
			out.Value = float64(s.ctr.Value())
		}
	case KindGauge:
		switch {
		case s.gaugeFn != nil:
			out.Value = s.gaugeFn()
		case s.gauge != nil:
			out.Value = s.gauge.Value()
		}
	case KindHistogram:
		h := s.histRef
		if h == nil && s.hist != nil {
			h = &s.hist.h
		}
		if h != nil {
			out.Hist = histSample(h.Snapshot())
			if s.ex != nil {
				out.Hist.Exemplar = s.ex.sample()
			}
		}
	}
	return out
}

func histSample(snap perf.HistSnapshot) *HistSample {
	hs := &HistSample{
		Count:  snap.Count,
		SumNs:  snap.SumNs,
		MaxNs:  snap.MaxNs,
		MeanNs: snap.MeanNs(),
		P50Ns:  snap.Quantile(0.50),
		P95Ns:  snap.Quantile(0.95),
		P99Ns:  snap.Quantile(0.99),
	}
	for i, n := range snap.Buckets {
		if n != 0 {
			hs.Buckets = append(hs.Buckets, HistBucket{UpperNs: perf.BucketUpperNs(i), Count: n})
		}
	}
	return hs
}

// Value looks up the current scalar value of a counter or gauge series.
// The second return is false if the series does not exist or is a
// histogram.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	s, kind, ok := r.lookup(name, labels)
	if !ok || kind == KindHistogram {
		return 0, false
	}
	sm := s.sample(kind)
	return sm.Value, true
}

// HistValue looks up the current snapshot of a histogram series.
func (r *Registry) HistValue(name string, labels ...Label) (perf.HistSnapshot, bool) {
	s, kind, ok := r.lookup(name, labels)
	if !ok || kind != KindHistogram {
		return perf.HistSnapshot{}, false
	}
	h := s.histRef
	if h == nil && s.hist != nil {
		h = &s.hist.h
	}
	if h == nil {
		return perf.HistSnapshot{}, false
	}
	return h.Snapshot(), true
}

func (r *Registry) lookup(name string, labels []Label) (*series, Kind, bool) {
	ls := canonLabels(name, labels)
	key := labelKey(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		return nil, 0, false
	}
	s := f.series[key]
	if s == nil {
		return nil, 0, false
	}
	return s, f.kind, true
}

// canonLabels validates and returns a key-sorted copy of labels.
func canonLabels(name string, labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	for i, l := range ls {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("obs: metric %q has invalid label key %q", name, l.Key))
		}
		if i > 0 && ls[i-1].Key == l.Key {
			panic(fmt.Sprintf("obs: metric %q repeats label key %q", name, l.Key))
		}
	}
	return ls
}

// labelKey encodes sorted labels canonically; label values are escaped
// so distinct value sets can never collide.
func labelKey(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// validateName enforces the Prometheus metric name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validateName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

// validLabelKey enforces [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelKey(k string) bool {
	if k == "" {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
