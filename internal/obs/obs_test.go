package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops", L("kind", "a"))
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
	h := r.Histogram("test_latency_seconds", "latency")
	h.Observe(100)
	h.Hist().Observe(3 * time.Microsecond)
	if got := h.Hist().Count(); got != 2 {
		t.Errorf("histogram count = %d, want 2", got)
	}
}

func TestGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", L("k", "v"))
	b := r.Counter("x_total", "x", L("k", "v"))
	if a != b {
		t.Error("same name+labels must return the same counter")
	}
	c := r.Counter("x_total", "x", L("k", "other"))
	if a == c {
		t.Error("different label values must return distinct counters")
	}
	// Label order must not matter.
	d1 := r.Counter("y_total", "y", L("a", "1"), L("b", "2"))
	d2 := r.Counter("y_total", "y", L("b", "2"), L("a", "1"))
	if d1 != d2 {
		t.Error("label order must not create a new series")
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"kind mismatch", func(r *Registry) {
			r.Counter("m_total", "m")
			r.Gauge("m_total", "m")
		}},
		{"help mismatch", func(r *Registry) {
			r.Counter("m_total", "m")
			r.Counter("m_total", "other help")
		}},
		{"bad name", func(r *Registry) { r.Counter("bad-name", "x") }},
		{"leading digit", func(r *Registry) { r.Counter("1bad", "x") }},
		{"empty name", func(r *Registry) { r.Counter("", "x") }},
		{"bad label key", func(r *Registry) { r.Counter("m_total", "m", L("bad-key", "v")) }},
		{"dup label key", func(r *Registry) { r.Counter("m_total", "m", L("k", "1"), L("k", "2")) }},
		{"dup func series", func(r *Registry) {
			r.CounterFunc("f_total", "f", func() int64 { return 0 })
			r.CounterFunc("f_total", "f", func() int64 { return 1 })
		}},
		{"func over instrument", func(r *Registry) {
			r.Counter("g_total", "g")
			r.CounterFunc("g_total", "g", func() int64 { return 0 })
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestGatherStableOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "z")
	r.Counter("aa_total", "a", L("stage", "rs-decode"))
	r.Counter("aa_total", "a", L("stage", "corrupt"))
	r.GaugeFunc("mm_depth", "m", func() float64 { return 7 })

	first := r.Gather()
	second := r.Gather()
	if len(first) != 3 {
		t.Fatalf("gathered %d families, want 3", len(first))
	}
	wantNames := []string{"aa_total", "mm_depth", "zz_total"}
	for i, m := range first {
		if m.Name != wantNames[i] {
			t.Errorf("family %d = %s, want %s", i, m.Name, wantNames[i])
		}
		if second[i].Name != m.Name || len(second[i].Samples) != len(m.Samples) {
			t.Errorf("gather order not stable at family %d", i)
		}
	}
	// aa_total series sorted by label value: corrupt before rs-decode.
	aa := first[0]
	if aa.Samples[0].Labels[0].Value != "corrupt" || aa.Samples[1].Labels[0].Value != "rs-decode" {
		t.Errorf("series not label-sorted: %+v", aa.Samples)
	}
}

func TestReadThroughCollectors(t *testing.T) {
	r := NewRegistry()
	var backing int64 = 42
	r.CounterFunc("rt_total", "rt", func() int64 { return backing })
	if v, ok := r.Value("rt_total"); !ok || v != 42 {
		t.Errorf("Value = %g,%v, want 42,true", v, ok)
	}
	backing = 99
	if v, _ := r.Value("rt_total"); v != 99 {
		t.Errorf("read-through counter must track backing value, got %g", v)
	}
}

func TestValueLookup(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c", L("k", "v")).Add(3)
	h := r.Histogram("h_seconds", "h")
	h.Observe(1000)

	if v, ok := r.Value("c_total", L("k", "v")); !ok || v != 3 {
		t.Errorf("Value = %g,%v, want 3,true", v, ok)
	}
	if _, ok := r.Value("c_total", L("k", "missing")); ok {
		t.Error("missing series must report !ok")
	}
	if _, ok := r.Value("absent_total"); ok {
		t.Error("missing family must report !ok")
	}
	if _, ok := r.Value("h_seconds"); ok {
		t.Error("Value on a histogram must report !ok")
	}
	if s, ok := r.HistValue("h_seconds"); !ok || s.Count != 1 {
		t.Errorf("HistValue = %+v,%v, want count 1", s, ok)
	}
	if _, ok := r.HistValue("c_total", L("k", "v")); ok {
		t.Error("HistValue on a counter must report !ok")
	}
}

// TestScrapeUnderLoad hammers instruments from many goroutines while
// another goroutine gathers and writes exposition — the satellite's
// scrape-under-load race test; meaningful under -race.
func TestScrapeUnderLoad(t *testing.T) {
	r := NewRegistry()
	var fnBacking int64
	r.CounterFunc("load_fn_total", "fn", func() int64 { return fnBacking })

	const workers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Seed each worker's series before the scrape loop starts so the
		// post-quiesce check doesn't depend on goroutine scheduling.
		r.Counter("load_ops_total", "ops", L("worker", string(rune('a'+w)))).Inc()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("load_ops_total", "ops", L("worker", string(rune('a'+w))))
			g := r.Gauge("load_depth", "depth", L("worker", string(rune('a'+w))))
			h := r.Histogram("load_latency_seconds", "lat")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(i))
				h.Observe(int64(i % 4096))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		if err := r.WriteJSON(&sb); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		_ = r.Gather()
	}
	close(stop)
	wg.Wait()

	// Post-quiesce sanity: every worker's counter made it into a gather.
	var series int
	for _, m := range r.Gather() {
		if m.Name == "load_ops_total" {
			series = len(m.Samples)
			for _, s := range m.Samples {
				if s.Value <= 0 {
					t.Errorf("worker counter %v never incremented", s.Labels)
				}
			}
		}
	}
	if series != workers {
		t.Errorf("gathered %d load_ops_total series, want %d", series, workers)
	}
}
