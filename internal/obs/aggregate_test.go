package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/perf"
)

// TestHistSampleSnapshotRoundtrip: exporting a histogram through
// Gather's HistSample and converting back must reproduce the original
// perf.HistSnapshot exactly — the invariant the /statsz fleet fan-in
// depends on.
func TestHistSampleSnapshotRoundtrip(t *testing.T) {
	var h perf.Hist
	for _, d := range []time.Duration{1, 3, 700, 5 * time.Microsecond, 3 * time.Millisecond, 2 * time.Hour} {
		h.Observe(d)
	}
	want := h.Snapshot()
	got := histSample(want).Snapshot()
	if got != want {
		t.Fatalf("roundtrip diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestBucketIndex(t *testing.T) {
	for i := 0; i < perf.NumBuckets; i++ {
		if got := bucketIndex(perf.BucketUpperNs(i)); got != i {
			t.Errorf("bucketIndex(BucketUpperNs(%d)) = %d", i, got)
		}
	}
	// Junk bounds fold into overflow instead of dropping counts.
	for _, bad := range []int64{0, 1, 3, 1000, math.MaxInt64 - 1} {
		if got := bucketIndex(bad); got != perf.NumBuckets-1 {
			t.Errorf("bucketIndex(%d) = %d, want overflow bucket", bad, got)
		}
	}
}

// TestMergeMetrics: two gathered sets merge into sums for counters and
// gauges and exact bucket unions for histograms — indistinguishable
// from one process having observed everything.
func TestMergeMetrics(t *testing.T) {
	build := func(reqs int64, conns float64, lat []time.Duration) []Metric {
		reg := NewRegistry()
		reg.Counter("requests_total", "Requests.").Add(reqs)
		reg.Counter("per_op_total", "Per-op.", L("op", "enc")).Add(reqs * 2)
		reg.Gauge("conns_active", "Conns.").Set(conns)
		h := reg.Histogram("latency_seconds", "Latency.")
		for _, d := range lat {
			h.Hist().Observe(d)
		}
		return reg.Gather()
	}
	a := build(10, 3, []time.Duration{time.Microsecond, time.Millisecond})
	b := build(32, 4, []time.Duration{2 * time.Microsecond, 4 * time.Millisecond, time.Second})

	merged := MergeMetrics(a, b)
	byName := map[string]Metric{}
	for _, m := range merged {
		byName[m.Name] = m
	}
	if v := byName["requests_total"].Samples[0].Value; v != 42 {
		t.Errorf("requests_total = %v, want 42", v)
	}
	if v := byName["per_op_total"].Samples[0].Value; v != 84 {
		t.Errorf("per_op_total{op=enc} = %v, want 84", v)
	}
	if ls := byName["per_op_total"].Samples[0].Labels; len(ls) != 1 || ls[0].Value != "enc" {
		t.Errorf("per_op_total labels = %v", ls)
	}
	if v := byName["conns_active"].Samples[0].Value; v != 7 {
		t.Errorf("conns_active = %v, want 7", v)
	}
	hs := byName["latency_seconds"].Samples[0].Hist
	if hs == nil || hs.Count != 5 {
		t.Fatalf("merged latency hist = %+v, want count 5", hs)
	}
	if hs.MaxNs != int64(time.Second) {
		t.Errorf("merged max = %d, want 1s", hs.MaxNs)
	}
	// Cross-check against a shared histogram observing all five samples.
	var all perf.Hist
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond,
		2 * time.Microsecond, 4 * time.Millisecond, time.Second} {
		all.Observe(d)
	}
	if got, want := hs.Snapshot(), all.Snapshot(); got != want {
		t.Errorf("merged buckets diverge from shared histogram:\n got %+v\nwant %+v", got, want)
	}

	// The merged set must render as well-formed exposition text.
	var buf bytes.Buffer
	if err := WriteMetricsText(&buf, merged); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"requests_total 42",
		`per_op_total{op="enc"} 84`,
		"latency_seconds_count 5",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

// TestMergeMetricsKindConflict: a family redefined with a different kind
// in a later set keeps the first kind and does not panic.
func TestMergeMetricsKindConflict(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ra.Counter("x_total", "X.").Add(5)
	rb.Gauge("x_total", "X.").Set(100)
	merged := MergeMetrics(ra.Gather(), rb.Gather())
	if len(merged) != 1 || merged[0].Kind != KindCounter || merged[0].Samples[0].Value != 5 {
		t.Fatalf("conflicting merge = %+v, want counter value 5", merged)
	}
}

// TestAggregateConcurrentSnapshots drives live instrument traffic while
// repeatedly gathering and merging the registries — the exact shape of
// the /statsz fan-in, where backends keep serving while the proxy
// scrapes. Meaningful under -race; the final merged totals must equal
// the quiesced sums.
func TestAggregateConcurrentSnapshots(t *testing.T) {
	const workers, perWorker, gathers = 4, 2000, 25
	regs := [2]*Registry{NewRegistry(), NewRegistry()}
	ctrs := [2]*Counter{
		regs[0].Counter("requests_total", "Requests."),
		regs[1].Counter("requests_total", "Requests."),
	}
	hists := [2]*Histogram{
		regs[0].Histogram("latency_seconds", "Latency."),
		regs[1].Histogram("latency_seconds", "Latency."),
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctrs[w%2].Inc()
				hists[w%2].Hist().Observe(time.Duration(i) * time.Nanosecond)
			}
		}(w)
	}
	var aggWG sync.WaitGroup
	aggWG.Add(1)
	go func() {
		defer aggWG.Done()
		for i := 0; i < gathers; i++ {
			merged := MergeMetrics(regs[0].Gather(), regs[1].Gather())
			// A mid-flight merge must stay internally consistent: the
			// histogram count equals its bucket sum.
			for _, m := range merged {
				for _, s := range m.Samples {
					if s.Hist == nil {
						continue
					}
					var n int64
					for _, b := range s.Hist.Buckets {
						n += b.Count
					}
					if n != s.Hist.Count {
						panic("merged histogram count != bucket sum")
					}
				}
			}
		}
	}()
	wg.Wait()
	aggWG.Wait()

	merged := MergeMetrics(regs[0].Gather(), regs[1].Gather())
	for _, m := range merged {
		switch m.Name {
		case "requests_total":
			if m.Samples[0].Value != workers*perWorker {
				t.Errorf("merged requests_total = %v, want %d", m.Samples[0].Value, workers*perWorker)
			}
		case "latency_seconds":
			if m.Samples[0].Hist.Count != workers*perWorker {
				t.Errorf("merged latency count = %d, want %d", m.Samples[0].Hist.Count, workers*perWorker)
			}
		}
	}
}
