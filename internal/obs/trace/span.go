package trace

import (
	"fmt"
	"sort"
	"sync"
)

// Span is one recorded hop interval of a distributed trace. Ids are
// rendered as 16-digit hex strings at record time so JSON consumers
// (and the fleet merge, which round-trips through JSON) never lose
// 64-bit precision to float decoding.
type Span struct {
	Trace   string `json:"trace"`
	ID      string `json:"id"`
	Parent  string `json:"parent,omitempty"`
	Service string `json:"service"` // gfload | gfproxy | gfserved
	Name    string `json:"name"`    // e.g. proxy-route, request, admission, stage:rs-decode
	Op      string `json:"op,omitempty"`

	StartUnixNs int64 `json:"start_unix_ns"`
	DurNs       int64 `json:"dur_ns"`

	// Status is empty for a successful span; otherwise the failure
	// classification (a GFP1 status string, "dropped", ...).
	Status string `json:"status,omitempty"`

	// Attrs carries hop-specific detail (backend address, attempt count,
	// queue-wait split, ...). Allocated only for sampled requests.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// FormatID renders a 64-bit id the way spans carry it.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// Ring is a fixed-size span buffer: Add overwrites the oldest span once
// full, so a process retains its most recent spans at constant memory.
// All methods are safe for concurrent use.
type Ring struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	full  bool
	total int64
}

// DefaultRingSize is the span capacity when NewRing is given n <= 0.
const DefaultRingSize = 256

// NewRing returns a ring holding up to n spans (n <= 0 selects
// DefaultRingSize).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Ring{buf: make([]Span, n)}
}

// Add records one span, overwriting the oldest when full.
func (r *Ring) Add(s Span) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (r *Ring) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Span, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Span, len(r.buf))
	n := copy(out, r.buf[r.next:])
	copy(out[n:], r.buf[:r.next])
	return out
}

// Total returns how many spans have ever been recorded (retained or
// overwritten).
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Snap is one process's (or one merged fleet's) tracez state: the
// retained spans plus ring accounting.
type Snap struct {
	Spans []Span
	Total int64
	Cap   int
}

// Snap captures the ring as a Snap.
func (r *Ring) Snap() Snap {
	return Snap{Spans: r.Snapshot(), Total: r.Total(), Cap: r.Cap()}
}

// MergeSnaps unions several tracez states (a proxy's own ring plus its
// backends' scraped reports) into one, deduplicating spans by
// (trace, id, service, name) — a span retained in both a backend's
// slowest and errored views appears once.
func MergeSnaps(snaps ...Snap) Snap {
	var out Snap
	seen := make(map[[4]string]struct{})
	for _, s := range snaps {
		out.Total += s.Total
		out.Cap += s.Cap
		for _, sp := range s.Spans {
			k := [4]string{sp.Trace, sp.ID, sp.Service, sp.Name}
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out.Spans = append(out.Spans, sp)
		}
	}
	return out
}

// TraceView is one trace reassembled from its retained spans: the
// envelope (earliest start to latest end), the services that
// contributed, and the spans sorted by start time.
type TraceView struct {
	Trace       string `json:"trace"`
	StartUnixNs int64  `json:"start_unix_ns"`
	DurNs       int64  `json:"dur_ns"`
	Services    int    `json:"services"`
	Err         bool   `json:"err"`
	Spans       []Span `json:"spans"`
}

// Group reassembles spans into per-trace views, each view's spans
// sorted by start time (ties broken longest-first, so a parent precedes
// the children it encloses).
func Group(spans []Span) []TraceView {
	byTrace := make(map[string][]Span)
	for _, sp := range spans {
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	out := make([]TraceView, 0, len(byTrace))
	for id, sps := range byTrace {
		sort.Slice(sps, func(i, j int) bool {
			if sps[i].StartUnixNs != sps[j].StartUnixNs {
				return sps[i].StartUnixNs < sps[j].StartUnixNs
			}
			return sps[i].DurNs > sps[j].DurNs
		})
		tv := TraceView{Trace: id, StartUnixNs: sps[0].StartUnixNs, Spans: sps}
		svc := make(map[string]struct{})
		for _, sp := range sps {
			if end := sp.StartUnixNs + sp.DurNs - tv.StartUnixNs; end > tv.DurNs {
				tv.DurNs = end
			}
			if sp.Status != "" {
				tv.Err = true
			}
			svc[sp.Service] = struct{}{}
		}
		tv.Services = len(svc)
		out = append(out, tv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Trace < out[j].Trace })
	return out
}
