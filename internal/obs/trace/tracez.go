package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
)

// Report is the /tracez payload: ring accounting plus the slowest-N and
// errored-N trace views reassembled from the retained spans. A proxy
// merges its backends' Reports with its own ring before building one
// fleet-wide Report, the same way /statsz merges ledgers.
type Report struct {
	Service    string `json:"service"`
	SpansTotal int64  `json:"spans_total"` // spans ever recorded
	Retained   int    `json:"retained"`    // spans currently in the ring
	RingCap    int    `json:"ring_cap"`
	Traces     int    `json:"traces"` // distinct traces among retained spans

	Slowest []TraceView `json:"slowest"`
	Errored []TraceView `json:"errored,omitempty"`
}

// BuildReport reassembles a Snap into a Report with at most n traces
// per view (n <= 0 selects 16). Slowest is ordered by trace envelope
// duration descending; Errored by recency (latest start first).
func BuildReport(service string, s Snap, n int) Report {
	if n <= 0 {
		n = 16
	}
	views := Group(s.Spans)
	rep := Report{
		Service:    service,
		SpansTotal: s.Total,
		Retained:   len(s.Spans),
		RingCap:    s.Cap,
		Traces:     len(views),
	}

	slow := make([]TraceView, len(views))
	copy(slow, views)
	sort.Slice(slow, func(i, j int) bool { return slow[i].DurNs > slow[j].DurNs })
	if len(slow) > n {
		slow = slow[:n]
	}
	rep.Slowest = slow

	var errored []TraceView
	for _, v := range views {
		if v.Err {
			errored = append(errored, v)
		}
	}
	sort.Slice(errored, func(i, j int) bool { return errored[i].StartUnixNs > errored[j].StartUnixNs })
	if len(errored) > n {
		errored = errored[:n]
	}
	rep.Errored = errored
	return rep
}

// Spans flattens the report's views back to a deduplicated span set, so
// a scraped Report can feed MergeSnaps.
func (rep Report) Spans() []Span {
	seen := make(map[[4]string]struct{})
	var out []Span
	add := func(views []TraceView) {
		for _, v := range views {
			for _, sp := range v.Spans {
				k := [4]string{sp.Trace, sp.ID, sp.Service, sp.Name}
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				out = append(out, sp)
			}
		}
	}
	add(rep.Slowest)
	add(rep.Errored)
	return out
}

// Handler serves /tracez from snap (called per request, so a merged
// fleet snapshot is always fresh). Query parameters: n caps the traces
// per view (default 16), format=text switches from indented JSON to the
// line-oriented human/awk format written by WriteText.
func Handler(service string, snap func() Snap) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n := 16
		if raw := r.URL.Query().Get("n"); raw != "" {
			if v, err := strconv.Atoi(raw); err == nil && v > 0 {
				n = v
			}
		}
		rep := BuildReport(service, snap(), n)
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			WriteText(w, rep)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	}
}

// WriteText renders a Report in a stable line-oriented format: one
// header line, one "trace" line per view, and one "span" line per span
// with fixed whitespace-separated columns
//
//	span <trace> <id> <parent|-> <start_unix_ns> <dur_ns> <service> <name> <op|-> <status|ok>
//
// so shell tooling (the smoke scripts) can assert on traces with awk
// alone. Spans within a trace are ordered by start time.
func WriteText(w http.ResponseWriter, rep Report) {
	fmt.Fprintf(w, "tracez service=%s spans_total=%d retained=%d ring_cap=%d traces=%d\n",
		rep.Service, rep.SpansTotal, rep.Retained, rep.RingCap, rep.Traces)
	writeView := func(title string, views []TraceView) {
		fmt.Fprintf(w, "%s %d\n", title, len(views))
		for _, v := range views {
			status := "ok"
			if v.Err {
				status = "error"
			}
			fmt.Fprintf(w, "trace %s start_ns=%d dur_ns=%d spans=%d services=%d status=%s\n",
				v.Trace, v.StartUnixNs, v.DurNs, len(v.Spans), v.Services, status)
			for _, sp := range v.Spans {
				parent, op, st := sp.Parent, sp.Op, sp.Status
				if parent == "" {
					parent = "-"
				}
				if op == "" {
					op = "-"
				}
				if st == "" {
					st = "ok"
				}
				fmt.Fprintf(w, "span %s %s %s %d %d %s %s %s %s\n",
					sp.Trace, sp.ID, parent, sp.StartUnixNs, sp.DurNs,
					sp.Service, sp.Name, op, st)
			}
		}
	}
	writeView("slowest", rep.Slowest)
	writeView("errored", rep.Errored)
}
