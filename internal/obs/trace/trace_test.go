package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestContextRoundTrip(t *testing.T) {
	params := []byte{1, 2, 3, 4}
	tc := Context{Trace: 0xdeadbeefcafef00d, Span: 0x0123456789abcdef, Sampled: true}
	wire := tc.Append(params)
	if len(wire) != len(params)+ExtSize {
		t.Fatalf("Append grew params by %d bytes, want %d", len(wire)-len(params), ExtSize)
	}
	got, rest, ok := Extract(wire)
	if !ok {
		t.Fatal("Extract rejected a well-formed extension")
	}
	if got != tc {
		t.Fatalf("round trip: got %+v, want %+v", got, tc)
	}
	if !bytes.Equal(rest, params) {
		t.Fatalf("Extract returned params %x, want the original prefix %x", rest, params)
	}
}

func TestContextRoundTripEmptyParams(t *testing.T) {
	tc := Context{Trace: 7, Sampled: false}
	got, rest, ok := Extract(tc.Append(nil))
	if !ok || got != tc || len(rest) != 0 {
		t.Fatalf("got %+v rest=%x ok=%v, want %+v rest= ok=true", got, rest, ok, tc)
	}
}

// A malformed or truncated extension must downgrade to "untraced" with
// the params untouched — never an error, never a mutation.
func TestExtractMalformed(t *testing.T) {
	base := Context{Trace: 42, Span: 43, Sampled: true}.Append([]byte("op-params"))
	corrupt := func(mut func([]byte)) []byte {
		b := append([]byte(nil), base...)
		mut(b)
		return b
	}
	cases := map[string][]byte{
		"short":         []byte("tiny"),
		"empty":         {},
		"truncated":     base[:len(base)-1],
		"bad magic":     corrupt(func(b []byte) { b[len(b)-ExtSize] ^= 0xff }),
		"bad version":   corrupt(func(b []byte) { b[len(b)-ExtSize+2] = 99 }),
		"zero trace id": corrupt(func(b []byte) { copy(b[len(b)-16:len(b)-8], make([]byte, 8)) }),
	}
	for name, in := range cases {
		before := append([]byte(nil), in...)
		tc, rest, ok := Extract(in)
		if ok {
			t.Errorf("%s: Extract accepted a malformed extension: %+v", name, tc)
		}
		if tc != (Context{}) {
			t.Errorf("%s: got a non-zero context %+v", name, tc)
		}
		if !bytes.Equal(rest, before) {
			t.Errorf("%s: params changed: %x -> %x", name, before, rest)
		}
	}
}

func TestNewIDNonzeroDistinct(t *testing.T) {
	seen := make(map[uint64]struct{})
	for i := 0; i < 10000; i++ {
		id := NewID()
		if id == 0 {
			t.Fatal("NewID returned 0")
		}
		if _, dup := seen[id]; dup {
			t.Fatalf("NewID repeated %016x after %d draws", id, i)
		}
		seen[id] = struct{}{}
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Add(Span{Trace: "t", ID: fmt.Sprintf("%016x", i+1)})
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d spans, want 4", len(got))
	}
	for i, sp := range got { // oldest first: spans 7..10
		want := fmt.Sprintf("%016x", 7+i)
		if sp.ID != want {
			t.Fatalf("snapshot[%d].ID = %s, want %s", i, sp.ID, want)
		}
	}
}

func TestMergeSnapsDedup(t *testing.T) {
	a := Span{Trace: "t1", ID: "s1", Service: "gfserved", Name: "request"}
	b := Span{Trace: "t1", ID: "s2", Service: "gfserved", Name: "admission"}
	merged := MergeSnaps(
		Snap{Spans: []Span{a, b}, Total: 2, Cap: 4},
		Snap{Spans: []Span{a}, Total: 1, Cap: 4}, // a retained twice fleet-wide
	)
	if len(merged.Spans) != 2 {
		t.Fatalf("merged %d spans, want 2 (dedup)", len(merged.Spans))
	}
	if merged.Total != 3 || merged.Cap != 8 {
		t.Fatalf("accounting total=%d cap=%d, want 3 and 8", merged.Total, merged.Cap)
	}
}

func TestGroup(t *testing.T) {
	spans := []Span{
		{Trace: "t1", ID: "s2", Service: "gfserved", Name: "request", StartUnixNs: 150, DurNs: 40},
		{Trace: "t1", ID: "s1", Service: "gfproxy", Name: "proxy-route", StartUnixNs: 100, DurNs: 100},
		{Trace: "t2", ID: "s3", Service: "gfserved", Name: "request", StartUnixNs: 500, DurNs: 10, Status: "overloaded"},
	}
	views := Group(spans)
	if len(views) != 2 {
		t.Fatalf("got %d views, want 2", len(views))
	}
	v1 := views[0] // sorted by trace id
	if v1.Trace != "t1" || v1.StartUnixNs != 100 || v1.DurNs != 100 || v1.Services != 2 || v1.Err {
		t.Fatalf("t1 view wrong: %+v", v1)
	}
	if v1.Spans[0].ID != "s1" {
		t.Fatalf("t1 spans not start-ordered: first is %s", v1.Spans[0].ID)
	}
	if !views[1].Err {
		t.Fatal("t2 carries an errored span but Err is false")
	}
}

func TestBuildReportAndHandler(t *testing.T) {
	r := NewRing(16)
	r.Add(Span{Trace: "aaaa", ID: "s1", Service: "gfserved", Name: "request", StartUnixNs: 100, DurNs: 50})
	r.Add(Span{Trace: "bbbb", ID: "s2", Service: "gfserved", Name: "request", StartUnixNs: 200, DurNs: 500, Status: "codec-failed"})

	rep := BuildReport("gfserved", r.Snap(), 0)
	if rep.Traces != 2 || rep.Retained != 2 || rep.SpansTotal != 2 {
		t.Fatalf("report accounting wrong: %+v", rep)
	}
	if len(rep.Slowest) != 2 || rep.Slowest[0].Trace != "bbbb" {
		t.Fatalf("slowest not duration-ordered: %+v", rep.Slowest)
	}
	if len(rep.Errored) != 1 || rep.Errored[0].Trace != "bbbb" {
		t.Fatalf("errored view wrong: %+v", rep.Errored)
	}
	if got := rep.Spans(); len(got) != 2 { // bbbb is in both views: dedup
		t.Fatalf("Spans() returned %d, want 2", len(got))
	}

	h := Handler("gfserved", r.Snap)

	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/tracez?n=1", nil))
	var got Report
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("tracez JSON: %v", err)
	}
	if got.Service != "gfserved" || len(got.Slowest) != 1 || got.Slowest[0].Trace != "bbbb" {
		t.Fatalf("tracez JSON report wrong: %+v", got)
	}

	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/tracez?format=text", nil))
	text := rec.Body.String()
	if !strings.HasPrefix(text, "tracez service=gfserved spans_total=2") {
		t.Fatalf("text header wrong: %q", strings.SplitN(text, "\n", 2)[0])
	}
	if !strings.Contains(text, "span bbbb s2 - 200 500 gfserved request - codec-failed") {
		t.Fatalf("text span line missing:\n%s", text)
	}
}
