// Package trace is the request-scoped distributed-tracing core shared
// by gfload, gfproxy and gfserved: a trace context small enough to ride
// the GFP1 wire (trace id, parent span id, sampling bit — 20 bytes
// appended to a request's params section, announced by a flag bit in
// the header), span records for each hop, and a fixed-size per-process
// ring that the /tracez admin endpoint serves as JSON or human text.
//
// Like its parent package obs, this package imports nothing outside the
// standard library (enforced by scripts/check_obs_imports.sh), so any
// binary can link it without dragging in a tracing SDK.
//
// # Wire format
//
// A traced GFP1 request sets the FlagTraced bit in the header's
// status/flags field and appends one extension to the END of its params
// section (after any op params, e.g. the 12-byte GCM nonce):
//
//	offset  size  field
//	0       2     magic 0x5443 ("TC")
//	2       1     extension version (1)
//	3       1     flags (bit 0: sampled)
//	4       8     trace id (big-endian, nonzero)
//	12      8     parent span id (big-endian; 0 = root)
//
// Receivers strip a well-formed extension before op-param validation
// and treat anything malformed or truncated as absent: a damaged trace
// context downgrades the request to untraced, it never fails it.
// Requests without the flag are byte-identical to the pre-trace
// protocol, so old and new clients and servers interoperate bit-exactly.
package trace

import (
	"encoding/binary"
	"sync/atomic"
	"time"
)

// Wire-format constants for the params trace-context extension.
const (
	// ExtSize is the exact byte length of the extension.
	ExtSize = 20

	extMagic   = 0x5443 // "TC"
	extVersion = 1

	extFlagSampled = 0x01
)

// Context is one hop's view of a distributed trace: the request's trace
// id, the span id of the sender (the receiver's parent), and whether
// span recording was requested. The zero Context means "untraced".
type Context struct {
	Trace   uint64
	Span    uint64
	Sampled bool
}

// Valid reports whether the context names a trace.
func (c Context) Valid() bool { return c.Trace != 0 }

// Append serializes the context as a params extension appended to
// params. The input slice is not modified (append semantics); callers
// that share the backing array should pass a full-capacity-bounded
// slice, as the GFP1 reader does.
func (c Context) Append(params []byte) []byte {
	var ext [ExtSize]byte
	binary.BigEndian.PutUint16(ext[0:], extMagic)
	ext[2] = extVersion
	if c.Sampled {
		ext[3] = extFlagSampled
	}
	binary.BigEndian.PutUint64(ext[4:], c.Trace)
	binary.BigEndian.PutUint64(ext[12:], c.Span)
	return append(params, ext[:]...)
}

// Extract parses and strips a trace-context extension from the tail of
// params. On success it returns the context and the params with the
// extension removed. Anything malformed — params shorter than the
// extension, wrong magic, unknown version, a zero trace id — returns
// ok=false with params unchanged: the caller serves the request
// untraced rather than rejecting it.
func Extract(params []byte) (c Context, rest []byte, ok bool) {
	if len(params) < ExtSize {
		return Context{}, params, false
	}
	ext := params[len(params)-ExtSize:]
	if binary.BigEndian.Uint16(ext[0:]) != extMagic || ext[2] != extVersion {
		return Context{}, params, false
	}
	c = Context{
		Trace:   binary.BigEndian.Uint64(ext[4:]),
		Span:    binary.BigEndian.Uint64(ext[12:]),
		Sampled: ext[3]&extFlagSampled != 0,
	}
	if c.Trace == 0 {
		return Context{}, params, false
	}
	return c, params[:len(params)-ExtSize], true
}

// idState seeds the id generator once per process; successive ids are
// the splitmix64 stream from that seed — unique within a process and
// collision-resistant across a fleet (64-bit state seeded from the
// process start time).
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano())) }

// NewID returns a new nonzero 64-bit trace or span id.
func NewID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}
