package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Per-(op, tenant) latency SLO tracking: each configured objective says
// "this op should finish under Threshold for Target of requests", and
// the tracker keeps both cumulative totals and a rolling window so the
// error-budget burn rate reflects the recent past, not the whole run.
// Burn rate is the standard ratio
//
//	(window breach fraction) / (1 - Target)
//
// so 1.0 means the service is spending its budget exactly as fast as
// the objective allows, and anything above it means the budget runs out
// early. Exported as gfp_slo_* metrics and surfaced in /statsz and
// gfload's final report.

// Objective is one latency objective: requests for Op should complete
// within Threshold at least Target (a fraction, e.g. 0.999) of the
// time. Op "default" (or "") matches any op without its own objective.
type Objective struct {
	Op        string        `json:"op"`
	Threshold time.Duration `json:"threshold_ns"`
	Target    float64       `json:"target"`
}

// ParseObjectives parses the CLI objective syntax: a comma-separated
// list of op=threshold@percent entries, e.g.
//
//	ecdsa-sign=5ms@99.9,default=2ms@99
//
// threshold is a Go duration; percent is in (0,100). The reserved op
// "default" applies to every op without an explicit entry. An empty
// spec returns nil objectives (SLO tracking off).
func ParseObjectives(spec string) ([]Objective, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []Objective
	seen := make(map[string]bool)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		op, rest, ok := strings.Cut(entry, "=")
		if !ok || op == "" {
			return nil, fmt.Errorf("obs: slo entry %q: want op=threshold@percent", entry)
		}
		thr, pct, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("obs: slo entry %q: missing @percent", entry)
		}
		d, err := time.ParseDuration(thr)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("obs: slo entry %q: bad threshold %q", entry, thr)
		}
		p, err := strconv.ParseFloat(pct, 64)
		if err != nil || p <= 0 || p >= 100 {
			return nil, fmt.Errorf("obs: slo entry %q: percent %q outside (0,100)", entry, pct)
		}
		if seen[op] {
			return nil, fmt.Errorf("obs: slo op %q configured twice", op)
		}
		seen[op] = true
		out = append(out, Objective{Op: op, Threshold: d, Target: p / 100})
	}
	return out, nil
}

// sloSeries is one (op, tenant) pair's accounting.
type sloSeries struct {
	op, tenant string
	obj        Objective

	total, breaches int64 // cumulative, guarded by SLO.mu

	// rolling window: buckets[i] covers one window/len(buckets) slice of
	// time; rotate advances cur and zeroes expired buckets lazily.
	buckets  []sloBucket
	cur      int
	curStart time.Time
}

type sloBucket struct {
	total, breaches int64
}

// SLO tracks latency objectives per (op, tenant). All methods are safe
// for concurrent use and nil-receiver safe, so call sites need no
// "is SLO tracking on" branch.
type SLO struct {
	objectives map[string]Objective
	def        *Objective
	window     time.Duration
	slice      time.Duration

	mu     sync.Mutex
	series map[[2]string]*sloSeries
	order  [][2]string // insertion order, for stable snapshots

	reg       *Registry // lazily registers new series when bound
	maxSeries int
}

// sloWindowBuckets is the rolling-window resolution.
const sloWindowBuckets = 6

// sloMaxSeries bounds the (op, tenant) cardinality; once reached, new
// tenants fold into the "other" tenant instead of growing without
// bound.
const sloMaxSeries = 256

// NewSLO builds a tracker over the given objectives with the given
// rolling window (0 = 1 minute). Nil/empty objectives return a nil
// tracker, on which every method is a no-op.
func NewSLO(objectives []Objective, window time.Duration) *SLO {
	if len(objectives) == 0 {
		return nil
	}
	if window <= 0 {
		window = time.Minute
	}
	s := &SLO{
		objectives: make(map[string]Objective, len(objectives)),
		window:     window,
		slice:      window / sloWindowBuckets,
		series:     make(map[[2]string]*sloSeries),
		maxSeries:  sloMaxSeries,
	}
	for _, o := range objectives {
		if o.Op == "default" || o.Op == "" {
			def := o
			s.def = &def
			continue
		}
		s.objectives[o.Op] = o
	}
	return s
}

// Window returns the rolling error-budget window.
func (s *SLO) Window() time.Duration {
	if s == nil {
		return 0
	}
	return s.window
}

// Observe records one completed request's latency against the (op,
// tenant) objective. Ops without a matching objective (and no default)
// are not tracked.
func (s *SLO) Observe(op, tenant string, d time.Duration) {
	if s == nil {
		return
	}
	obj, ok := s.objectives[op]
	if !ok {
		if s.def == nil {
			return
		}
		obj = *s.def
	}
	now := time.Now()

	s.mu.Lock()
	key := [2]string{op, tenant}
	ser := s.series[key]
	var registerNew *sloSeries
	if ser == nil {
		if len(s.series) >= s.maxSeries && tenant != "other" {
			s.mu.Unlock()
			s.Observe(op, "other", d)
			return
		}
		ser = &sloSeries{
			op: op, tenant: tenant, obj: obj,
			buckets: make([]sloBucket, sloWindowBuckets), curStart: now,
		}
		s.series[key] = ser
		s.order = append(s.order, key)
		registerNew = ser
	}
	s.rotate(ser, now)
	ser.total++
	ser.buckets[ser.cur].total++
	if d > ser.obj.Threshold {
		ser.breaches++
		ser.buckets[ser.cur].breaches++
	}
	reg := s.reg
	s.mu.Unlock()

	// Registration happens outside s.mu: Gather holds the registry lock
	// while its read-through funcs take s.mu, so taking the registry
	// lock under s.mu would deadlock.
	if registerNew != nil && reg != nil {
		s.registerSeries(reg, registerNew)
	}
}

// rotate advances the series' rolling window to cover now, zeroing
// expired buckets. Called under s.mu.
func (s *SLO) rotate(ser *sloSeries, now time.Time) {
	for now.Sub(ser.curStart) >= s.slice {
		ser.cur = (ser.cur + 1) % len(ser.buckets)
		ser.buckets[ser.cur] = sloBucket{}
		ser.curStart = ser.curStart.Add(s.slice)
		// A long-idle series fast-forwards instead of looping per slice.
		if now.Sub(ser.curStart) >= s.window {
			for i := range ser.buckets {
				ser.buckets[i] = sloBucket{}
			}
			ser.curStart = now
		}
	}
}

// windowCounts sums the live buckets. Called under s.mu.
func (ser *sloSeries) windowCounts() (total, breaches int64) {
	for _, b := range ser.buckets {
		total += b.total
		breaches += b.breaches
	}
	return total, breaches
}

// Status is one (op, tenant) objective's live accounting.
type SLOStatus struct {
	Op          string  `json:"op"`
	Tenant      string  `json:"tenant,omitempty"`
	ThresholdNs int64   `json:"threshold_ns"`
	Target      float64 `json:"target"`

	Total    int64 `json:"total"`    // cumulative observed requests
	Breaches int64 `json:"breaches"` // cumulative over-threshold requests

	WindowTotal    int64 `json:"window_total"`
	WindowBreaches int64 `json:"window_breaches"`

	// BurnRate is the windowed breach fraction over the error budget
	// (1 - Target): 1.0 spends the budget exactly at the allowed rate.
	BurnRate float64 `json:"burn_rate"`
	// BudgetRemaining is the cumulative budget fraction left: 1 means
	// untouched, 0 exhausted, negative overspent.
	BudgetRemaining float64 `json:"budget_remaining"`
}

// Snapshot returns every tracked series' status, in first-seen order.
func (s *SLO) Snapshot() []SLOStatus {
	if s == nil {
		return nil
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SLOStatus, 0, len(s.order))
	for _, key := range s.order {
		ser := s.series[key]
		s.rotate(ser, now)
		out = append(out, ser.status())
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Tenant < out[j].Tenant
	})
	return out
}

// status builds one series' Status. Called under s.mu.
func (ser *sloSeries) status() SLOStatus {
	wt, wb := ser.windowCounts()
	st := SLOStatus{
		Op: ser.op, Tenant: ser.tenant,
		ThresholdNs: int64(ser.obj.Threshold), Target: ser.obj.Target,
		Total: ser.total, Breaches: ser.breaches,
		WindowTotal: wt, WindowBreaches: wb,
	}
	budget := 1 - ser.obj.Target
	if budget > 0 {
		if wt > 0 {
			st.BurnRate = (float64(wb) / float64(wt)) / budget
		}
		if ser.total > 0 {
			st.BudgetRemaining = 1 - (float64(ser.breaches)/float64(ser.total))/budget
		} else {
			st.BudgetRemaining = 1
		}
	}
	return st
}

// RegisterMetrics binds the tracker to reg: every existing and future
// (op, tenant) series exports
//
//	gfp_slo_requests_total{op,tenant}
//	gfp_slo_breaches_total{op,tenant}
//	gfp_slo_burn_rate{op,tenant}
//	gfp_slo_threshold_seconds{op,tenant}
//
// Call at most once per tracker per registry.
func (s *SLO) RegisterMetrics(reg *Registry) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.reg = reg
	existing := make([]*sloSeries, 0, len(s.order))
	for _, key := range s.order {
		existing = append(existing, s.series[key])
	}
	s.mu.Unlock()
	for _, ser := range existing {
		s.registerSeries(reg, ser)
	}
}

func (s *SLO) registerSeries(reg *Registry, ser *sloSeries) {
	labels := []Label{L("op", ser.op), L("tenant", ser.tenant)}
	reg.CounterFunc("gfp_slo_requests_total",
		"Requests observed against a latency objective.",
		func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return ser.total }, labels...)
	reg.CounterFunc("gfp_slo_breaches_total",
		"Requests that exceeded their latency objective.",
		func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return ser.breaches }, labels...)
	reg.GaugeFunc("gfp_slo_burn_rate",
		"Rolling-window error-budget burn rate (1.0 = spending exactly the allowed budget).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.rotate(ser, time.Now())
			return ser.status().BurnRate
		}, labels...)
	reg.GaugeFunc("gfp_slo_threshold_seconds",
		"Configured latency objective threshold.",
		func() float64 { return ser.obj.Threshold.Seconds() }, labels...)
}
