package cluster

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// health is the active backend checker: one goroutine probing every
// backend each interval, plus the passive failure reports the
// forwarding path files when a dial or in-flight call dies. Both feed
// the same consecutive-outcome counters: FailAfter consecutive failures
// eject a backend (its pool is closed, the ring skips it), ReadmitAfter
// consecutive successful probes readmit it. A backend with an admin
// address is probed through its /healthz — which a gfserved only
// answers 200 after its datapath self-test has passed — while a
// backend without one is probed with a bare TCP dial of its GFP1
// address (liveness only).
type health struct {
	p                       *Proxy
	interval                time.Duration
	timeout                 time.Duration
	failAfter, readmitAfter int

	client *http.Client

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

func newHealth(p *Proxy, interval, timeout time.Duration, failAfter, readmitAfter int) *health {
	h := &health{
		p:            p,
		interval:     interval,
		timeout:      timeout,
		failAfter:    failAfter,
		readmitAfter: readmitAfter,
		client:       &http.Client{Timeout: timeout},
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	go h.loop()
	return h
}

func (h *health) Close() {
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
}

func (h *health) loop() {
	defer close(h.done)
	t := time.NewTicker(h.interval)
	defer t.Stop()
	for {
		// Probe immediately on start, then each tick: a backend that died
		// before the proxy came up is ejected within one interval.
		h.probeAll()
		select {
		case <-h.stop:
			return
		case <-t.C:
		}
	}
}

func (h *health) probeAll() {
	var wg sync.WaitGroup
	for _, b := range h.p.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			if err := h.probe(b); err != nil {
				h.noteFailure(b, err)
			} else {
				h.noteSuccess(b)
			}
		}(b)
	}
	wg.Wait()
}

// probe GETs the backend's /healthz (any transport error or non-200 is
// a failure), or TCP-dials the GFP1 address when no admin plane was
// configured.
func (h *health) probe(b *backend) error {
	if b.spec.Admin == "" {
		nc, err := net.DialTimeout("tcp", b.spec.Addr, h.timeout)
		if err != nil {
			return err
		}
		return nc.Close()
	}
	resp, err := h.client.Get("http://" + b.spec.Admin + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz %d: %s", resp.StatusCode, body)
	}
	return nil
}

// noteFailure records one failed probe or transport-level forward
// failure, ejecting the backend once the consecutive-failure threshold
// is reached.
func (h *health) noteFailure(b *backend, err error) {
	b.hmu.Lock()
	b.consecFails++
	b.consecOKs = 0
	b.lastHealthErr = err.Error()
	eject := b.consecFails >= h.failAfter && b.healthy()
	if eject {
		b.state.Store(stateEjected)
	}
	b.hmu.Unlock()
	if eject {
		b.ejections.Add(1)
		b.closePool()
		h.p.ctr.ejections.Add(1)
		h.p.logf("cluster: ejected backend %s after %d consecutive failures: %v",
			b.spec.Addr, h.failAfter, err)
	}
}

// noteSuccess records one successful probe (or, for passive-only
// backends, one successful forward), readmitting an ejected backend
// once the consecutive-success threshold is reached.
func (h *health) noteSuccess(b *backend) {
	b.hmu.Lock()
	b.consecOKs++
	b.consecFails = 0
	b.lastHealthErr = ""
	readmit := !b.healthy() && b.consecOKs >= h.readmitAfter
	if readmit {
		b.state.Store(stateHealthy)
	}
	b.hmu.Unlock()
	if readmit {
		b.readmits.Add(1)
		h.p.ctr.readmits.Add(1)
		h.p.logf("cluster: readmitted backend %s", b.spec.Addr)
	}
}

// lastErr returns the most recent health error, for admin surfaces.
func (b *backend) lastErr() string {
	b.hmu.Lock()
	defer b.hmu.Unlock()
	return b.lastHealthErr
}
