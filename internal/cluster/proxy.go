package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/perf"
	"repro/internal/server"
)

// Config sizes and parameterizes a Proxy.
type Config struct {
	// Backends is the fleet (1..64 members). Every backend must serve the
	// same codec configuration; the proxy forwards requests verbatim.
	Backends []BackendSpec
	// Replicas is the virtual nodes per backend on the hash ring
	// (0 = 64).
	Replicas int
	// Retries is the extra forward attempts allowed per request beyond
	// the first (0 = 2). Only idempotent ops (Op.Idempotent) are retried
	// after a transport failure; any op is re-routed when a backend
	// refuses it unprocessed (Status.RetrySafe).
	Retries int
	// PoolSize is the idle GFP1 connections kept per backend (0 = 4).
	PoolSize int
	// DialWait bounds connection establishment to a backend, retrying
	// refused dials (0 = 1s).
	DialWait time.Duration
	// ForwardTimeout bounds one forward attempt end to end; a backend
	// that accepted the connection but never answers is treated as a
	// transport failure (0 = 30s).
	ForwardTimeout time.Duration
	// Window caps each client connection's in-flight requests (0 = 32).
	Window int
	// MaxPayload is the per-request payload guard
	// (0 = server.DefaultMaxPayload).
	MaxPayload int
	// TenantInflight caps the in-flight requests per tenant class (the
	// client IP); excess requests are rejected with StatusOverloaded.
	// 0 disables admission control.
	TenantInflight int
	// RouteByRequest spreads each connection's requests across the ring
	// by mixing the request id into the routing key; the default routes
	// by connection, keeping one client's stream on one backend.
	RouteByRequest bool
	// HealthInterval is the active health-probe period (0 = 1s);
	// HealthTimeout bounds one probe (0 = 1s).
	HealthInterval, HealthTimeout time.Duration
	// FailAfter consecutive failures eject a backend; ReadmitAfter
	// consecutive successful probes readmit it (0 = 2 each).
	FailAfter, ReadmitAfter int
	// ReadTimeout is the per-connection idle limit between requests;
	// WriteTimeout bounds each response write (0 = none).
	ReadTimeout, WriteTimeout time.Duration
	// TraceEvery self-samples one in every TraceEvery untraced requests
	// as a new root trace (0 = never). Requests that arrive with their
	// own trace context are honored regardless, so a traced gfload run
	// needs no proxy configuration.
	TraceEvery int
	// TraceRing caps the proxy's own distributed-trace span ring served
	// (merged with the backends') at /tracez (0 = trace.DefaultRingSize).
	TraceRing int
	// SLO, when non-nil, receives every completed request's end-to-end
	// latency keyed by (op, tenant) for error-budget accounting.
	SLO *obs.SLO
	// WideLog, when non-nil, emits one structured wide event per
	// completed request: always for trace-sampled requests, plus one in
	// every WideEvery untraced completions (WideEvery 0 logs sampled
	// requests only).
	WideLog   *slog.Logger
	WideEvery int
	// Logf, when set, receives proxy-level diagnostics.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = defaultReplicas
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.DialWait <= 0 {
		c.DialWait = time.Second
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 30 * time.Second
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = server.DefaultMaxPayload
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 2
	}
	return c
}

// proxyCounters is the proxy-level ledger. Like the backend server's, it
// is exact and disjoint: every framed request terminates as exactly one
// of responses (an OK reply hit the wire), rejects (an error-status
// reply hit the wire — including proxy-origin overload/unavailable) or
// dropped (connection died first), so
//
//	requests == responses + rejects + dropped
//
// once the proxy quiesces. retries and backendFailures sit outside the
// ledger (they count forward attempts, not client requests).
type proxyCounters struct {
	connsAccepted atomic.Int64
	connsActive   atomic.Int64
	requests      atomic.Int64
	responses     atomic.Int64
	rejects       atomic.Int64
	dropped       atomic.Int64
	protoErrors   atomic.Int64
	retries       atomic.Int64
	backendFails  atomic.Int64
	admRejects    atomic.Int64
	ejections     atomic.Int64
	readmits      atomic.Int64
	bytesIn       atomic.Int64
	bytesOut      atomic.Int64
}

// Proxy is the GFP1 routing front door. Construct with New, run with
// Serve (or ListenAndServe), stop with Shutdown.
type Proxy struct {
	cfg      Config
	ring     *ring
	backends []*backend
	adm      *admission
	hc       *health

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*pconn]struct{}
	serving  bool
	draining bool

	readerWG  sync.WaitGroup
	handlerWG sync.WaitGroup

	ctr proxyCounters

	spans     *trace.Ring // proxy-hop spans for /tracez
	traceTick atomic.Uint64
	wideTick  atomic.Uint64
	opLat     [proxyOpSlots]perf.Hist
	opEx      [proxyOpSlots]obs.Exemplar
}

// proxyOpSlots sizes the per-op latency arrays: ops are small
// contiguous protocol constants (1..9), indexed directly.
const proxyOpSlots = 10

// New builds the proxy: the consistent-hash ring over the configured
// backends, the per-backend connection pools, the admission table, and
// the active health checker (which starts probing immediately, so a
// dead backend is ejected before the first client request routes to
// it).
func New(cfg Config) (*Proxy, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: no backends configured")
	}
	if len(cfg.Backends) > 64 {
		return nil, fmt.Errorf("cluster: %d backends exceeds the 64-backend ring limit", len(cfg.Backends))
	}
	addrs := make([]string, len(cfg.Backends))
	for i, spec := range cfg.Backends {
		if spec.Addr == "" {
			return nil, fmt.Errorf("cluster: backend %d has an empty address", i)
		}
		addrs[i] = spec.Addr
	}
	r, err := newRing(addrs, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:   cfg,
		ring:  r,
		adm:   newAdmission(cfg.TenantInflight),
		conns: make(map[*pconn]struct{}),
		spans: trace.NewRing(cfg.TraceRing),
	}
	p.backends = make([]*backend, len(cfg.Backends))
	for i, spec := range cfg.Backends {
		p.backends[i] = newBackend(i, spec, cfg.PoolSize, cfg.DialWait)
	}
	p.hc = newHealth(p, cfg.HealthInterval, cfg.HealthTimeout, cfg.FailAfter, cfg.ReadmitAfter)
	return p, nil
}

func (p *Proxy) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// ListenAndServe listens on addr and calls Serve.
func (p *Proxy) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return p.Serve(ln)
}

// Serve accepts client connections on ln until Shutdown (which closes
// ln) or a listener failure. It returns nil after a clean Shutdown.
func (p *Proxy) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		ln.Close()
		return nil
	}
	if p.serving {
		p.mu.Unlock()
		ln.Close()
		return errors.New("cluster: Serve called twice")
	}
	p.serving = true
	p.ln = ln
	p.mu.Unlock()

	for {
		nc, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			draining := p.draining
			p.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		p.startConn(nc)
	}
}

// Addr returns the listener address once Serve has been called (nil
// before).
func (p *Proxy) Addr() net.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln == nil {
		return nil
	}
	return p.ln.Addr()
}

// Shutdown gracefully stops the proxy: the listener closes, every
// connection finishes reading its current request, all in-flight
// forwards complete and their responses flush, then connections close.
// If ctx expires first, remaining connections are cut and ctx.Err() is
// returned. The health checker stops in either case.
func (p *Proxy) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	already := p.draining
	p.draining = true
	if p.ln != nil {
		p.ln.Close()
	}
	for c := range p.conns {
		c.nc.SetReadDeadline(time.Now())
	}
	p.mu.Unlock()
	if already {
		return errors.New("cluster: Shutdown called twice")
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		p.readerWG.Wait()  // no new requests framed
		p.handlerWG.Wait() // every in-flight forward answered or dropped
		p.closeConns()
		p.hc.Close()
		p.closePools()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		p.mu.Lock()
		for c := range p.conns {
			c.fail()
		}
		p.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (p *Proxy) closeConns() {
	p.mu.Lock()
	conns := make([]*pconn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.fail()
	}
}

func (p *Proxy) closePools() {
	for _, b := range p.backends {
		b.closePool()
	}
}

func (p *Proxy) isDraining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draining
}

// healthyBackends counts ring members currently admitted.
func (p *Proxy) healthyBackends() int {
	n := 0
	for _, b := range p.backends {
		if b.healthy() {
			n++
		}
	}
	return n
}

// armRead sets the idle read deadline for the next request, unless
// draining.
func (p *Proxy) armRead(c *pconn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return false
	}
	if rt := p.cfg.ReadTimeout; rt > 0 {
		c.nc.SetReadDeadline(time.Now().Add(rt))
	} else {
		c.nc.SetReadDeadline(time.Time{})
	}
	return true
}

// pconn is one client connection through the proxy.
type pconn struct {
	p      *Proxy
	nc     net.Conn
	sem    chan struct{} // window slots, held from read to response write
	dead   chan struct{}
	tenant *tenant
	host   string // remote host, the SLO/wide-event tenant key
	key    uint64 // connection routing key

	failOnce sync.Once

	wmu    sync.Mutex // serializes response writes
	bw     *bufio.Writer
	broken bool
}

func (p *Proxy) startConn(nc net.Conn) {
	host, _, err := net.SplitHostPort(nc.RemoteAddr().String())
	if err != nil {
		host = nc.RemoteAddr().String()
	}
	c := &pconn{
		p:      p,
		nc:     nc,
		bw:     bufio.NewWriterSize(nc, 64<<10),
		sem:    make(chan struct{}, p.cfg.Window),
		dead:   make(chan struct{}),
		tenant: p.adm.lookup(host),
		host:   host,
		key:    hashKey("conn:" + nc.RemoteAddr().String()),
	}
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		nc.Close()
		return
	}
	p.conns[c] = struct{}{}
	p.readerWG.Add(1)
	p.mu.Unlock()
	p.ctr.connsAccepted.Add(1)
	p.ctr.connsActive.Add(1)
	go c.readLoop()
}

// fail tears the connection down; the closed socket unblocks the reader
// and poisons subsequent writes.
func (c *pconn) fail() {
	c.failOnce.Do(func() {
		close(c.dead)
		c.nc.Close()
	})
}

func (c *pconn) remove() {
	c.p.mu.Lock()
	delete(c.p.conns, c)
	c.p.mu.Unlock()
	c.p.ctr.connsActive.Add(-1)
}

// readLoop frames client requests and hands each to a handler goroutine
// bounded by the connection window and the tenant's admission budget.
func (c *pconn) readLoop() {
	defer c.p.readerWG.Done()
	defer c.remove()
	defer c.fail()
	br := bufio.NewReaderSize(c.nc, 64<<10)
	for {
		if !c.p.armRead(c) {
			return // draining: stop intake; handlers finish and flush
		}
		m, err := server.ReadRequest(br, c.p.cfg.MaxPayload)
		if err != nil {
			if c.p.isDraining() {
				return
			}
			var pe *server.ProtoError
			if errors.As(err, &pe) {
				c.p.ctr.protoErrors.Add(1)
				c.write(&server.Message{Status: pe.Status, Payload: []byte(pe.Error())}, false)
				return
			}
			if !errors.Is(err, io.EOF) {
				c.p.logf("cluster: read from %v: %v", c.nc.RemoteAddr(), err)
			}
			return
		}
		readAt := time.Now()
		c.p.ctr.requests.Add(1)
		c.p.ctr.bytesIn.Add(int64(server.HeaderSize + len(m.Params) + len(m.Payload)))
		tc := c.extractTrace(m)

		// Window slot: a client pipelining beyond its window waits here.
		select {
		case c.sem <- struct{}{}:
		case <-c.dead:
			c.p.ctr.dropped.Add(1)
			return
		}
		// Admission: over-budget tenants are answered immediately, not
		// queued.
		if !c.p.adm.acquire(c.tenant) {
			c.p.ctr.admRejects.Add(1)
			c.write(&server.Message{Op: m.Op, Status: server.StatusOverloaded, ID: m.ID,
				Payload: []byte("tenant in-flight limit exceeded")}, true)
			<-c.sem
			c.p.finishRequest(c, tc, c.mintSpan(tc), m.Op, readAt, server.StatusOverloaded, fwdInfo{})
			continue
		}
		c.p.handlerWG.Add(1)
		go c.handle(m, tc, readAt)
	}
}

// extractTrace strips an incoming trace-context extension off m (the
// stripped message is what forward re-injects per attempt, each with a
// fresh span id), or self-samples one in every TraceEvery untraced
// requests as a new root trace. A malformed extension downgrades the
// request to untraced; it never rejects it.
func (c *pconn) extractTrace(m *server.Message) trace.Context {
	if m.Flags&server.FlagTraced != 0 {
		m.Flags &^= server.FlagTraced
		if tc, rest, ok := trace.Extract(m.Params); ok {
			m.Params = rest
			return tc
		}
		return trace.Context{}
	}
	if every := uint64(c.p.cfg.TraceEvery); every > 0 && c.p.traceTick.Add(1)%every == 0 {
		return trace.Context{Trace: trace.NewID(), Sampled: true}
	}
	return trace.Context{}
}

// mintSpan returns a fresh span id for a sampled context, 0 otherwise.
func (c *pconn) mintSpan(tc trace.Context) uint64 {
	if !tc.Sampled {
		return 0
	}
	return trace.NewID()
}

// handle forwards one request and writes its response.
func (c *pconn) handle(m *server.Message, tc trace.Context, readAt time.Time) {
	defer c.p.handlerWG.Done()
	span := c.mintSpan(tc)
	resp, fwd := c.p.forward(m, c.routeKey(m), tc, span)
	c.p.adm.release(c.tenant)
	c.write(resp, true)
	<-c.sem
	c.p.finishRequest(c, tc, span, m.Op, readAt, resp.Status, fwd)
}

// routeKey is the consistent-hash key for a request: the connection key
// alone (default, keeping a client's stream on one backend), or mixed
// with the request id to spread a single connection across the fleet.
func (c *pconn) routeKey(m *server.Message) uint64 {
	if !c.p.cfg.RouteByRequest {
		return c.key
	}
	return mix64(c.key ^ (m.ID + 0x9e3779b97f4a7c15))
}

// mix64 is the splitmix64 finalizer — full avalanche, so consecutive
// request ids land uniformly on the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fwdInfo summarizes one request's routing outcome for the trace/SLO
// books: attempts made, retries among them, and the backend that
// answered (empty when none did).
type fwdInfo struct {
	attempts, retries int
	backend           string
}

// forward routes one request to the fleet and returns the response to
// relay. The backend preference order is the ring walk from the routing
// key, healthy backends first and ejected ones as a last resort; a
// transport failure moves to the next backend when the op is idempotent,
// and a backend that refused the request unprocessed (RetrySafe) is
// retried for any op. Each failure feeds the passive health signal.
//
// A sampled trace context is re-injected per attempt under a fresh span
// id (same trace id — a retried request stays one trace), parented on
// routeSpan, and each attempt records a forward span with its backend
// and outcome.
func (p *Proxy) forward(m *server.Message, key uint64, tc trace.Context, routeSpan uint64) (*server.Message, fwdInfo) {
	var seqBuf [64]int
	seq := p.ring.sequence(key, seqBuf[:])

	// Healthy backends in ring order, then ejected ones: when the whole
	// fleet is ejected the proxy still tries (the probe interval may
	// simply not have observed a recovery yet) rather than failing fast
	// into a dead cluster.
	var order []int
	for _, bi := range seq {
		if p.backends[bi].healthy() {
			order = append(order, bi)
		}
	}
	for _, bi := range seq {
		if !p.backends[bi].healthy() {
			order = append(order, bi)
		}
	}

	maxAttempts := 1 + p.cfg.Retries
	fwd := fwdInfo{}
	var lastErr error
	for _, bi := range order {
		if fwd.attempts >= maxAttempts {
			break
		}
		fwd.attempts++
		b := p.backends[bi]
		b.forwards.Add(1)
		// Re-inject the trace context per attempt: a copy of the message
		// gets the extension appended (append copies the capacity-pinned
		// params, so the original stays pristine for the next attempt).
		am := m
		var attemptStart time.Time
		var attemptSpan uint64
		if tc.Sampled {
			attemptSpan = trace.NewID()
			cp := *m
			server.AttachTrace(&cp, trace.Context{Trace: tc.Trace, Span: attemptSpan, Sampled: true})
			am = &cp
			attemptStart = time.Now()
		}
		resp, err := p.callBackend(b, am)
		if tc.Sampled {
			p.recordForwardSpan(tc, attemptSpan, routeSpan, m.Op, b.spec.Addr,
				fwd.attempts, attemptStart, resp, err)
		}
		if err == nil {
			p.hc.noteSuccess(b)
			if resp.Status.RetrySafe() && fwd.attempts < maxAttempts {
				// Backend draining: it rejected the request unprocessed, so
				// replaying elsewhere is safe for every op.
				p.ctr.retries.Add(1)
				fwd.retries++
				continue
			}
			fwd.backend = b.spec.Addr
			return resp, fwd
		}
		lastErr = err
		b.failures.Add(1)
		p.ctr.backendFails.Add(1)
		p.hc.noteFailure(b, err)
		if m.Op.Idempotent() && fwd.attempts < maxAttempts {
			p.ctr.retries.Add(1)
			fwd.retries++
			continue
		}
		break
	}
	msg := "no healthy backend"
	if lastErr != nil {
		msg = fmt.Sprintf("backend unavailable after %d attempt(s): %v", fwd.attempts, lastErr)
		if !m.Op.Idempotent() {
			msg += fmt.Sprintf(" (%v is not idempotent: not retried)", m.Op)
		}
	}
	return &server.Message{Op: m.Op, Status: server.StatusUnavailable, ID: m.ID, Payload: []byte(msg)}, fwd
}

// recordForwardSpan records one forward attempt's span: parented on the
// proxy-route span, and itself the parent of the backend's request span
// (the backend received attemptSpan as its trace context's parent).
func (p *Proxy) recordForwardSpan(tc trace.Context, attemptSpan, routeSpan uint64,
	op server.Op, backendAddr string, attempt int, start time.Time,
	resp *server.Message, err error) {
	attrs := map[string]string{
		"backend": backendAddr,
		"attempt": strconv.Itoa(attempt),
	}
	status := ""
	switch {
	case err != nil:
		status = "transport-failure"
		attrs["error"] = err.Error()
	case resp.Status != server.StatusOK:
		status = resp.Status.String()
	}
	p.spans.Add(trace.Span{
		Trace: trace.FormatID(tc.Trace), ID: trace.FormatID(attemptSpan),
		Parent:  trace.FormatID(routeSpan),
		Service: "gfproxy", Name: "forward", Op: op.String(),
		StartUnixNs: start.UnixNano(), DurNs: time.Since(start).Nanoseconds(),
		Status: status, Attrs: attrs,
	})
}

// finishRequest closes the observability books on one proxied request:
// per-op latency (with a trace exemplar), SLO accounting, the
// proxy-route span, and the wide event.
func (p *Proxy) finishRequest(c *pconn, tc trace.Context, span uint64,
	op server.Op, readAt time.Time, st server.Status, fwd fwdInfo) {
	now := time.Now()
	lat := now.Sub(readAt)
	if int(op) < len(p.opLat) {
		p.opLat[op].Observe(lat)
		if tc.Sampled {
			p.opEx[op].Record(tc.Trace, int64(lat))
		}
	}
	p.cfg.SLO.Observe(op.String(), c.host, lat)
	if tc.Sampled {
		status := ""
		if st != server.StatusOK {
			status = st.String()
		}
		parent := ""
		if tc.Span != 0 {
			parent = trace.FormatID(tc.Span)
		}
		attrs := map[string]string{
			"attempts": strconv.Itoa(fwd.attempts),
			"retries":  strconv.Itoa(fwd.retries),
			"tenant":   c.host,
		}
		if fwd.backend != "" {
			attrs["backend"] = fwd.backend
		}
		p.spans.Add(trace.Span{
			Trace: trace.FormatID(tc.Trace), ID: trace.FormatID(span), Parent: parent,
			Service: "gfproxy", Name: "proxy-route", Op: op.String(),
			StartUnixNs: readAt.UnixNano(), DurNs: lat.Nanoseconds(),
			Status: status, Attrs: attrs,
		})
	}
	p.wideEvent(c, tc, span, op, st, lat, fwd)
}

// wideEvent emits the one-line structured record of a completed
// request: every trace-sampled request, plus one in every WideEvery
// untraced completions.
func (p *Proxy) wideEvent(c *pconn, tc trace.Context, span uint64,
	op server.Op, st server.Status, lat time.Duration, fwd fwdInfo) {
	lg := p.cfg.WideLog
	if lg == nil {
		return
	}
	if !tc.Sampled {
		every := uint64(p.cfg.WideEvery)
		if every == 0 || p.wideTick.Add(1)%every != 0 {
			return
		}
	}
	attrs := []slog.Attr{
		slog.String("service", "gfproxy"),
		slog.String("op", op.String()),
		slog.String("tenant", c.host),
		slog.String("status", st.String()),
		slog.Int("attempts", fwd.attempts),
		slog.Int("retries", fwd.retries),
		slog.Int64("latency_ns", int64(lat)),
	}
	if fwd.backend != "" {
		attrs = append(attrs, slog.String("backend", fwd.backend))
	}
	if tc.Sampled {
		attrs = append(attrs,
			slog.String("trace", trace.FormatID(tc.Trace)),
			slog.String("span", trace.FormatID(span)))
	}
	lg.LogAttrs(context.Background(), slog.LevelInfo, "request", attrs...)
}

// callBackend performs one forward attempt. A nil error means the
// backend answered — possibly with an error status, which the caller
// relays or retries by its own rules; a non-nil error is a transport
// failure (dial, connection loss, or forward timeout) and the client
// connection involved is discarded.
func (p *Proxy) callBackend(b *backend, m *server.Message) (*server.Message, error) {
	cl, err := b.get()
	if err != nil {
		return nil, err
	}
	type callResult struct {
		m   *server.Message
		err error
	}
	done := make(chan callResult, 1)
	go func() {
		// Do (not Call) preserves the trace flag and extension the
		// forward path injected into the attempt message.
		rm, cerr := cl.Do(&server.Message{Op: m.Op, Flags: m.Flags, Params: m.Params, Payload: m.Payload})
		done <- callResult{rm, cerr}
	}()
	var r callResult
	select {
	case r = <-done:
	case <-time.After(p.cfg.ForwardTimeout):
		cl.Close() // forces the pending Call to fail promptly
		r = <-done
		if r.err != nil {
			return nil, fmt.Errorf("forward timeout after %v", p.cfg.ForwardTimeout)
		}
	}
	if r.err != nil {
		var se *server.StatusError
		if errors.As(r.err, &se) && r.m != nil {
			// The backend answered with an error status: a processed
			// outcome, not a transport failure. Relay it.
			b.put(cl)
			return &server.Message{Op: r.m.Op, Status: r.m.Status, ID: m.ID, Payload: r.m.Payload}, nil
		}
		cl.Close()
		return nil, r.err
	}
	b.put(cl)
	return &server.Message{Op: r.m.Op, Status: r.m.Status, ID: m.ID, Payload: r.m.Payload}, nil
}

// write serializes one response onto the client socket. ledgered
// responses are accounted as exactly one of responses/rejects/dropped.
func (c *pconn) write(m *server.Message, ledgered bool) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.broken {
		if ledgered {
			c.p.ctr.dropped.Add(1)
		}
		return
	}
	if wt := c.p.cfg.WriteTimeout; wt > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(wt))
	}
	err := server.WriteResponse(c.bw, m)
	if err == nil {
		err = c.bw.Flush()
	}
	if err != nil {
		c.broken = true
		if ledgered {
			c.p.ctr.dropped.Add(1)
		}
		c.p.logf("cluster: write to %v: %v", c.nc.RemoteAddr(), err)
		c.fail()
		return
	}
	if ledgered {
		if m.Status == server.StatusOK {
			c.p.ctr.responses.Add(1)
		} else {
			c.p.ctr.rejects.Add(1)
		}
	}
	c.p.ctr.bytesOut.Add(int64(server.HeaderSize + len(m.Params) + len(m.Payload)))
}
