package cluster

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// BackendSpec names one backend: the GFP1 address the proxy forwards
// to, plus (optionally) the admin HTTP address whose /healthz the
// health checker probes and whose /statsz the fleet aggregator scrapes.
type BackendSpec struct {
	Addr  string // GFP1 TCP address (required)
	Admin string // admin HTTP address ("" = passive health only, no aggregation)
}

// ParseBackendSpec parses "addr" or "addr@adminAddr".
func ParseBackendSpec(s string) (BackendSpec, error) {
	addr, admin, found := strings.Cut(s, "@")
	spec := BackendSpec{Addr: strings.TrimSpace(addr)}
	if found {
		spec.Admin = strings.TrimSpace(admin)
		if spec.Admin == "" {
			return spec, fmt.Errorf("cluster: backend spec %q has an empty admin address", s)
		}
	}
	if spec.Addr == "" {
		return spec, fmt.Errorf("cluster: backend spec %q has an empty address", s)
	}
	return spec, nil
}

// Backend states.
const (
	stateHealthy int32 = iota
	stateEjected
)

// backend is one fleet member: its spec, health state and a small pool
// of persistent GFP1 client connections. All methods are safe for
// concurrent use.
type backend struct {
	spec BackendSpec
	idx  int

	state atomic.Int32

	// Health bookkeeping (guarded by hmu): consecutive probe/dial
	// failures and successes, fed by both the active checker and passive
	// transport errors.
	hmu           sync.Mutex
	consecFails   int
	consecOKs     int
	lastHealthErr string

	// Connection pool: idle clients ready to forward on. Broken clients
	// are closed, never pooled.
	pmu      sync.Mutex
	idle     []*server.Client
	poolSize int
	dialWait time.Duration

	// Counters surfaced per backend on the proxy's admin plane.
	forwards  atomic.Int64 // requests forwarded (attempts, including retries)
	failures  atomic.Int64 // transport-level forward failures
	ejections atomic.Int64 // healthy -> ejected transitions
	readmits  atomic.Int64 // ejected -> healthy transitions
}

func newBackend(idx int, spec BackendSpec, poolSize int, dialWait time.Duration) *backend {
	return &backend{spec: spec, idx: idx, poolSize: poolSize, dialWait: dialWait}
}

func (b *backend) healthy() bool { return b.state.Load() == stateHealthy }

// stateName renders the backend state for admin surfaces.
func (b *backend) stateName() string {
	if b.healthy() {
		return "healthy"
	}
	return "ejected"
}

// get returns a pooled client or dials a fresh one.
func (b *backend) get() (*server.Client, error) {
	b.pmu.Lock()
	if n := len(b.idle); n > 0 {
		c := b.idle[n-1]
		b.idle = b.idle[:n-1]
		b.pmu.Unlock()
		return c, nil
	}
	b.pmu.Unlock()
	return server.Dial(b.spec.Addr, b.dialWait)
}

// put returns a client to the pool, or closes it when the pool is full
// or the backend has been ejected (an ejected backend's sockets may be
// half-dead; readmission starts from fresh dials).
func (b *backend) put(c *server.Client) {
	if !b.healthy() {
		c.Close()
		return
	}
	b.pmu.Lock()
	if len(b.idle) < b.poolSize {
		b.idle = append(b.idle, c)
		b.pmu.Unlock()
		return
	}
	b.pmu.Unlock()
	c.Close()
}

// closePool drops every idle client (on ejection).
func (b *backend) closePool() {
	b.pmu.Lock()
	idle := b.idle
	b.idle = nil
	b.pmu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}
