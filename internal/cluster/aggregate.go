package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/perf"
	"repro/internal/server"
)

// statszTimeout bounds one backend /statsz scrape.
const statszTimeout = 2 * time.Second

// BackendStatus is one fleet member as the proxy's admin plane sees it:
// routing-side counters, health state, and — when the backend has an
// admin address and answered its /statsz — the backend's own ledger and
// actually-bound listener address.
type BackendStatus struct {
	Index      int    `json:"index"`
	Addr       string `json:"addr"`
	Admin      string `json:"admin,omitempty"`
	State      string `json:"state"` // "healthy" | "ejected"
	LastErr    string `json:"last_err,omitempty"`
	Forwards   int64  `json:"forwards"`
	Failures   int64  `json:"failures"`
	Ejections  int64  `json:"ejections"`
	Readmits   int64  `json:"readmits"`
	ListenAddr string `json:"listen_addr,omitempty"`
	// Server is the backend's own request ledger, from its /statsz.
	Server   *server.Counters `json:"server,omitempty"`
	FetchErr string           `json:"fetch_err,omitempty"`
}

// FleetStats is the cluster-wide aggregate the proxy serves on /statsz:
// per-backend status, the sum of every reachable backend's request
// ledger, and the fleet's merged pipeline latency (raw histogram
// buckets merged across backends, so the percentiles are computed from
// the union of samples, not averaged from per-backend percentiles).
type FleetStats struct {
	Backends []BackendStatus  `json:"backends"`
	Healthy  int              `json:"healthy"`
	Scraped  int              `json:"scraped"` // backends whose /statsz answered
	Fleet    server.Counters  `json:"fleet"`   // summed across scraped backends
	Latency  perf.HistSummary `json:"latency"` // merged gfp_pipeline_latency_seconds

	// metrics is the merged metric sets of every scraped backend, kept
	// off the JSON surface (it is large); the /metrics endpoint renders
	// it as Prometheus text instead.
	metrics []obs.Metric
}

// fetchStatsz scrapes one backend's /statsz.
func fetchStatsz(client *http.Client, admin string) (*server.Statsz, error) {
	resp, err := client.Get("http://" + admin + "/statsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("statsz %d: %s", resp.StatusCode, body)
	}
	var sz server.Statsz
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&sz); err != nil {
		return nil, fmt.Errorf("statsz decode: %w", err)
	}
	return &sz, nil
}

// fleetSnapshot scrapes every admin-bearing backend concurrently and
// folds the answers into one FleetStats. Backends without an admin
// plane (or whose scrape failed) still appear with their routing-side
// state; they just contribute nothing to the summed ledger or the
// merged metrics.
func (p *Proxy) fleetSnapshot() *FleetStats {
	client := &http.Client{Timeout: statszTimeout}
	type scrape struct {
		sz  *server.Statsz
		err error
	}
	results := make([]scrape, len(p.backends))
	var wg sync.WaitGroup
	for i, b := range p.backends {
		if b.spec.Admin == "" {
			continue
		}
		wg.Add(1)
		go func(i int, admin string) {
			defer wg.Done()
			sz, err := fetchStatsz(client, admin)
			results[i] = scrape{sz, err}
		}(i, b.spec.Admin)
	}
	wg.Wait()

	fs := &FleetStats{Backends: make([]BackendStatus, len(p.backends))}
	var sets [][]obs.Metric
	for i, b := range p.backends {
		st := BackendStatus{
			Index:     i,
			Addr:      b.spec.Addr,
			Admin:     b.spec.Admin,
			State:     b.stateName(),
			LastErr:   b.lastErr(),
			Forwards:  b.forwards.Load(),
			Failures:  b.failures.Load(),
			Ejections: b.ejections.Load(),
			Readmits:  b.readmits.Load(),
		}
		if b.healthy() {
			fs.Healthy++
		}
		r := results[i]
		switch {
		case r.sz != nil:
			fs.Scraped++
			st.ListenAddr = r.sz.ListenAddr
			ctr := r.sz.Server
			st.Server = &ctr
			addCounters(&fs.Fleet, ctr)
			sets = append(sets, r.sz.Metrics)
		case r.err != nil:
			st.FetchErr = r.err.Error()
		}
		fs.Backends[i] = st
	}
	fs.metrics = obs.MergeMetrics(sets...)
	fs.Latency = fleetLatency(fs.metrics)
	return fs
}

// fetchTracez scrapes one backend's /tracez report.
func fetchTracez(client *http.Client, admin string) (trace.Report, error) {
	resp, err := client.Get("http://" + admin + "/tracez")
	if err != nil {
		return trace.Report{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return trace.Report{}, fmt.Errorf("tracez %d: %s", resp.StatusCode, body)
	}
	var rep trace.Report
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&rep); err != nil {
		return trace.Report{}, fmt.Errorf("tracez decode: %w", err)
	}
	return rep, nil
}

// fleetTraceSnap merges the proxy's own span ring with every
// admin-bearing backend's scraped /tracez report — the fleet-wide view
// the proxy serves on its own /tracez, so one scrape shows a trace's
// proxy-route, forward, backend request and pipeline-stage spans
// together. Unreachable backends contribute nothing; their spans
// reappear once they answer again.
func (p *Proxy) fleetTraceSnap() trace.Snap {
	client := &http.Client{Timeout: statszTimeout}
	snaps := []trace.Snap{p.spans.Snap()}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, b := range p.backends {
		if b.spec.Admin == "" {
			continue
		}
		wg.Add(1)
		go func(admin string) {
			defer wg.Done()
			rep, err := fetchTracez(client, admin)
			if err != nil {
				return
			}
			snap := trace.Snap{Spans: rep.Spans(), Total: rep.SpansTotal, Cap: rep.RingCap}
			mu.Lock()
			snaps = append(snaps, snap)
			mu.Unlock()
		}(b.spec.Admin)
	}
	wg.Wait()
	return trace.MergeSnaps(snaps...)
}

// addCounters sums one backend's ledger into the fleet total.
func addCounters(dst *server.Counters, src server.Counters) {
	dst.ConnsAccepted += src.ConnsAccepted
	dst.ConnsActive += src.ConnsActive
	dst.Requests += src.Requests
	dst.Responses += src.Responses
	dst.Rejects += src.Rejects
	dst.Dropped += src.Dropped
	dst.ProtoErrors += src.ProtoErrors
	dst.BytesIn += src.BytesIn
	dst.BytesOut += src.BytesOut
}

// fleetLatency extracts the merged pipeline submit-to-delivery latency
// from the merged metric set, recomputing the summary from the unioned
// buckets.
func fleetLatency(metrics []obs.Metric) perf.HistSummary {
	i := sort.Search(len(metrics), func(i int) bool {
		return metrics[i].Name >= "gfp_pipeline_latency_seconds"
	})
	if i >= len(metrics) || metrics[i].Name != "gfp_pipeline_latency_seconds" {
		return perf.HistSummary{}
	}
	var h perf.Hist
	for _, s := range metrics[i].Samples {
		if s.Hist != nil {
			h.MergeSnapshot(s.Hist.Snapshot())
		}
	}
	return h.Summary()
}
