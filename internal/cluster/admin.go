package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/server"
)

// ProxyCounters is the serialized proxy-level ledger. Like the backend
// server's, it is exact and disjoint once the proxy quiesces:
//
//	Requests == Responses + Rejects + Dropped
//
// AdmissionRejects and ProtoErrors are subsets of Rejects and of
// connection teardowns respectively; Retries and BackendFailures count
// forward attempts, not client requests, and sit outside the ledger.
type ProxyCounters struct {
	ConnsAccepted    int64 `json:"conns_accepted"`
	ConnsActive      int64 `json:"conns_active"`
	Requests         int64 `json:"requests"`
	Responses        int64 `json:"responses"`
	Rejects          int64 `json:"rejects"`
	Dropped          int64 `json:"dropped"`
	ProtoErrors      int64 `json:"proto_errors"`
	Retries          int64 `json:"retries"`
	BackendFailures  int64 `json:"backend_failures"`
	AdmissionRejects int64 `json:"admission_rejects"`
	Ejections        int64 `json:"ejections"`
	Readmits         int64 `json:"readmits"`
	BytesIn          int64 `json:"bytes_in"`
	BytesOut         int64 `json:"bytes_out"`
}

// snapshot reads the counters terminal-outcomes-first (requests last),
// so a live snapshot never shows Requests below the terminal sum.
func (c *proxyCounters) snapshot() ProxyCounters {
	out := ProxyCounters{
		Responses:        c.responses.Load(),
		Rejects:          c.rejects.Load(),
		Dropped:          c.dropped.Load(),
		ProtoErrors:      c.protoErrors.Load(),
		Retries:          c.retries.Load(),
		BackendFailures:  c.backendFails.Load(),
		AdmissionRejects: c.admRejects.Load(),
		Ejections:        c.ejections.Load(),
		Readmits:         c.readmits.Load(),
	}
	out.ConnsAccepted = c.connsAccepted.Load()
	out.ConnsActive = c.connsActive.Load()
	out.BytesIn = c.bytesIn.Load()
	out.BytesOut = c.bytesOut.Load()
	out.Requests = c.requests.Load()
	return out
}

// RegisterMetrics registers the proxy ledger and per-backend routing
// counters with reg, under gfp_proxy_* — disjoint from the backend
// servers' gfp_server_* families, so the proxy's /metrics can render
// both sets on one page without collisions. Call once per proxy per
// registry.
func (p *Proxy) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("gfp_proxy_connections_accepted_total",
		"Client connections accepted by the proxy.", p.ctr.connsAccepted.Load)
	reg.GaugeFunc("gfp_proxy_connections_active",
		"Client connections currently open on the proxy.",
		func() float64 { return float64(p.ctr.connsActive.Load()) })
	reg.CounterFunc("gfp_proxy_requests_total",
		"Requests framed off client connections.", p.ctr.requests.Load)
	reg.CounterFunc("gfp_proxy_responses_total",
		"OK responses relayed to clients.", p.ctr.responses.Load)
	reg.CounterFunc("gfp_proxy_rejects_total",
		"Error-status responses written to clients (backend and proxy origin).",
		p.ctr.rejects.Load)
	reg.CounterFunc("gfp_proxy_dropped_total",
		"Requests whose response was never written (connection died).",
		p.ctr.dropped.Load)
	reg.CounterFunc("gfp_proxy_protocol_errors_total",
		"Framing violations that poisoned a client connection.",
		p.ctr.protoErrors.Load)
	reg.CounterFunc("gfp_proxy_retries_total",
		"Forward attempts beyond the first (idempotent or retry-safe replays).",
		p.ctr.retries.Load)
	reg.CounterFunc("gfp_proxy_backend_failures_total",
		"Transport-level forward failures across all backends.",
		p.ctr.backendFails.Load)
	reg.CounterFunc("gfp_proxy_admission_rejects_total",
		"Requests rejected by the per-tenant in-flight bound.",
		p.ctr.admRejects.Load)
	reg.CounterFunc("gfp_proxy_ejections_total",
		"Backend healthy->ejected transitions.", p.ctr.ejections.Load)
	reg.CounterFunc("gfp_proxy_readmits_total",
		"Backend ejected->healthy transitions.", p.ctr.readmits.Load)
	reg.CounterFunc("gfp_proxy_bytes_in_total",
		"Request bytes read off client connections (headers included).",
		p.ctr.bytesIn.Load)
	reg.CounterFunc("gfp_proxy_bytes_out_total",
		"Response bytes written to client connections (headers included).",
		p.ctr.bytesOut.Load)
	reg.GaugeFunc("gfp_proxy_backends",
		"Configured fleet size.",
		func() float64 { return float64(len(p.backends)) })
	reg.GaugeFunc("gfp_proxy_backends_healthy",
		"Backends currently admitted to the ring.",
		func() float64 { return float64(p.healthyBackends()) })

	for op := server.Op(1); int(op) < len(p.opLat); op++ {
		reg.HistogramFuncEx("gfp_proxy_op_latency_seconds",
			"End-to-end proxied request latency (framed off the client socket to response written), per op.",
			&p.opLat[op], &p.opEx[op], obs.L("op", op.String()))
	}
	p.cfg.SLO.RegisterMetrics(reg)

	for _, b := range p.backends {
		addr := obs.L("backend", b.spec.Addr)
		reg.CounterFunc("gfp_proxy_backend_forwards_total",
			"Forward attempts per backend (retries included).", b.forwards.Load, addr)
		reg.CounterFunc("gfp_proxy_backend_failures_by_backend_total",
			"Transport-level forward failures per backend.", b.failures.Load, addr)
		reg.CounterFunc("gfp_proxy_backend_ejections_total",
			"Ejections per backend.", b.ejections.Load, addr)
		reg.CounterFunc("gfp_proxy_backend_readmits_total",
			"Readmissions per backend.", b.readmits.Load, addr)
		reg.GaugeFunc("gfp_proxy_backend_healthy",
			"1 while the backend is admitted to the ring, 0 while ejected.",
			func(b *backend) func() float64 {
				return func() float64 {
					if b.healthy() {
						return 1
					}
					return 0
				}
			}(b), addr)
	}
}

// Healthy reports nil while the proxy is accepting and at least one
// backend is admitted to the ring. /healthz maps nil to 200 and an
// error to 503, so a load balancer in front of several proxies drains
// one whose whole fleet is dark.
func (p *Proxy) Healthy() error {
	p.mu.Lock()
	serving, draining := p.serving, p.draining
	p.mu.Unlock()
	switch {
	case draining:
		return errors.New("draining")
	case !serving:
		return errors.New("not serving")
	}
	if n := p.healthyBackends(); n == 0 {
		return fmt.Errorf("0 of %d backends healthy", len(p.backends))
	}
	return nil
}

// Statsz is the proxy's /statsz payload: its own ledger, the admission
// table, and the fleet aggregate (per-backend status plus the summed
// backend ledgers and merged latency).
type Statsz struct {
	ListenAddr string           `json:"listen_addr,omitempty"`
	Proxy      ProxyCounters    `json:"proxy"`
	Tenants    []TenantSnapshot `json:"tenants,omitempty"`
	Fleet      *FleetStats      `json:"fleet"`
	SLO        []obs.SLOStatus  `json:"slo,omitempty"`
}

// Statsz captures the full admin snapshot: proxy ledger, tenants
// sorted by class, and a fresh fleet scrape.
func (p *Proxy) Statsz() Statsz {
	sz := Statsz{
		Proxy:   p.ctr.snapshot(),
		Tenants: p.adm.snapshot(),
		Fleet:   p.fleetSnapshot(),
		SLO:     p.cfg.SLO.Snapshot(),
	}
	sort.Slice(sz.Tenants, func(i, j int) bool { return sz.Tenants[i].Class < sz.Tenants[j].Class })
	if a := p.Addr(); a != nil {
		sz.ListenAddr = a.String()
	}
	return sz
}

// TraceSnap captures the proxy's own distributed-trace span ring (no
// fleet scrape — see fleetTraceSnap for the merged view /tracez serves).
func (p *Proxy) TraceSnap() trace.Snap { return p.spans.Snap() }

// AdminHandler returns the admin mux gfproxy mounts on -admin:
// /metrics (the proxy registry plus the fleet's merged gfp_server_* and
// gfp_pipeline_* families as one Prometheus page), /healthz, /statsz
// (JSON), /tracez (the proxy's spans merged with every backend's, so a
// trace reads end to end from one scrape) and the net/http/pprof
// endpoints under /debug/pprof/.
func (p *Proxy) AdminHandler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		fleet := p.fleetSnapshot()
		merged := obs.MergeMetrics(reg.Gather(), fleet.metrics)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WriteMetricsText(w, merged)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if err := p.Healthy(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(p.Statsz())
	})
	mux.HandleFunc("/tracez", trace.Handler("gfproxy", p.fleetTraceSnap))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
