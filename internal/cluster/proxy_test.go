package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// testBackend is one live gfserved-shaped process for proxy tests: a
// real server.Server plus its admin HTTP plane, stoppable and
// restartable on the same ports (the restart half of the
// kill/eject/readmit lifecycle).
type testBackend struct {
	t         *testing.T
	cfg       server.Config
	srv       *server.Server
	addr      string // GFP1 address
	adminAddr string
	adminSrv  *http.Server
	serveDone chan error
	stopped   atomic.Bool
}

func startBackend(t *testing.T, cfg server.Config) *testBackend {
	t.Helper()
	tb := &testBackend{t: t, cfg: cfg}
	tb.start("127.0.0.1:0", "127.0.0.1:0")
	t.Cleanup(tb.stop)
	return tb
}

// start binds the GFP1 and admin listeners (":0" or a previously bound
// address for a restart) and launches the server.
func (tb *testBackend) start(addr, adminAddr string) {
	tb.t.Helper()
	srv, err := server.New(tb.cfg)
	if err != nil {
		tb.t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		tb.t.Fatal(err)
	}
	adminLn, err := net.Listen("tcp", adminAddr)
	if err != nil {
		tb.t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv.RegisterMetrics(reg)
	tb.srv = srv
	tb.addr = ln.Addr().String()
	tb.adminAddr = adminLn.Addr().String()
	tb.adminSrv = &http.Server{Handler: srv.AdminHandler(reg)}
	tb.serveDone = make(chan error, 1)
	tb.stopped.Store(false)
	go func() { tb.serveDone <- srv.Serve(ln) }()
	go tb.adminSrv.Serve(adminLn)
}

// kill simulates losing the process mid-flight: connections are cut
// (expired context) and the admin plane goes dark.
func (tb *testBackend) kill() {
	tb.t.Helper()
	if tb.stopped.Swap(true) {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tb.srv.Shutdown(ctx)
	tb.adminSrv.Close()
	select {
	case <-tb.serveDone:
	case <-time.After(5 * time.Second):
		tb.t.Error("Serve did not return after kill")
	}
}

// restart brings the backend back on the same GFP1 and admin ports.
func (tb *testBackend) restart() {
	tb.t.Helper()
	if !tb.stopped.Load() {
		tb.t.Fatal("restart of a running backend")
	}
	tb.start(tb.addr, tb.adminAddr)
}

func (tb *testBackend) stop() {
	if tb.stopped.Swap(true) {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tb.srv.Shutdown(ctx)
	tb.adminSrv.Close()
	select {
	case err := <-tb.serveDone:
		if err != nil {
			tb.t.Errorf("backend Serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		tb.t.Error("backend Serve did not return after Shutdown")
	}
}

func (tb *testBackend) spec() BackendSpec {
	return BackendSpec{Addr: tb.addr, Admin: tb.adminAddr}
}

// startProxy runs a proxy on a loopback listener; cleanup shuts it
// down.
func startProxy(t *testing.T, cfg Config) (*Proxy, string) {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- p.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		p.Shutdown(ctx)
		select {
		case err := <-serveDone:
			if err != nil {
				t.Errorf("proxy Serve: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("proxy Serve did not return after Shutdown")
		}
	})
	return p, ln.Addr().String()
}

func dialProxy(t *testing.T, addr string) *server.Client {
	t.Helper()
	c, err := server.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// fastHealth is the aggressive health-check config tests use so
// eject/readmit cycles complete in tens of milliseconds.
func fastHealth(c Config) Config {
	c.HealthInterval = 25 * time.Millisecond
	c.HealthTimeout = 250 * time.Millisecond
	c.DialWait = 100 * time.Millisecond
	return c
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// checkLedger asserts the proxy's exact disjoint request ledger after
// quiesce.
func checkLedger(t *testing.T, p *Proxy) {
	t.Helper()
	c := p.ctr.snapshot()
	if c.Requests != c.Responses+c.Rejects+c.Dropped {
		t.Errorf("proxy ledger: requests=%d != responses=%d + rejects=%d + dropped=%d",
			c.Requests, c.Responses, c.Rejects, c.Dropped)
	}
}

// TestProxyRoundTrip: every op round-trips through the proxy to a
// 3-backend fleet, including the stats op (answered by whichever
// backend owns the connection's arc).
func TestProxyRoundTrip(t *testing.T) {
	var specs []BackendSpec
	for i := 0; i < 3; i++ {
		specs = append(specs, startBackend(t, server.Config{Workers: 2}).spec())
	}
	p, addr := startProxy(t, fastHealth(Config{Backends: specs}))
	c := dialProxy(t, addr)

	msg := make([]byte, 239)
	rand.New(rand.NewSource(7)).Read(msg)
	cw, err := c.RSEncode(msg)
	if err != nil {
		t.Fatal(err)
	}
	cw[3] ^= 0x80
	got, err := c.RSDecode(cw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Error("rs decode through proxy did not restore the message")
	}

	nonce := make([]byte, server.NonceSize)
	sealed, err := c.Seal(nonce, msg)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := c.Open(nonce, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Error("seal/open through proxy did not restore the plaintext")
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Config.K != 239 {
		t.Errorf("stats through proxy: k=%d, want 239", st.Config.K)
	}

	// Backend error statuses relay verbatim: a wrong-size encode payload
	// is the backend's StatusBadRequest, not a proxy failure.
	if _, err := c.RSEncode(msg[:10]); err == nil {
		t.Error("short rs-encode: no error")
	} else {
		var se *server.StatusError
		if !errors.As(err, &se) || se.Status != server.StatusBadRequest {
			t.Errorf("short rs-encode: %v, want StatusBadRequest", err)
		}
	}
	if p.healthyBackends() != 3 {
		t.Errorf("healthy backends = %d, want 3", p.healthyBackends())
	}
}

// TestProxyKillEjectReadmitUnderLoad is the acceptance lifecycle test:
// idempotent load runs through a 3-backend fleet while one backend is
// killed mid-flight, ejected, restarted on the same ports and
// readmitted — with zero client-visible errors. Run under -race.
func TestProxyKillEjectReadmitUnderLoad(t *testing.T) {
	backends := make([]*testBackend, 3)
	specs := make([]BackendSpec, 3)
	for i := range backends {
		backends[i] = startBackend(t, server.Config{Workers: 2})
		specs[i] = backends[i].spec()
	}
	p, addr := startProxy(t, fastHealth(Config{
		Backends:       specs,
		Retries:        3,
		RouteByRequest: true, // spread every loader across the whole fleet
		FailAfter:      2,
		ReadmitAfter:   2,
	}))

	const loaders = 4
	var (
		stop     atomic.Bool
		calls    atomic.Int64
		failures atomic.Int64
		wg       sync.WaitGroup
	)
	msg := make([]byte, 239)
	rand.New(rand.NewSource(11)).Read(msg)
	for i := 0; i < loaders; i++ {
		c := dialProxy(t, addr)
		wg.Add(1)
		go func(c *server.Client) {
			defer wg.Done()
			for !stop.Load() {
				if _, err := c.RSEncode(msg); err != nil {
					failures.Add(1)
					t.Errorf("rs-encode under fleet churn: %v", err)
					return
				}
				calls.Add(1)
			}
		}(c)
	}

	// Let the load warm up, then lose a backend.
	waitFor(t, 5*time.Second, "warm-up traffic", func() bool { return calls.Load() > 50 })
	victim := backends[0]
	victim.kill()
	waitFor(t, 5*time.Second, "ejection of the killed backend", func() bool {
		return !p.backends[0].healthy()
	})
	// Keep load flowing against the degraded fleet.
	mid := calls.Load()
	waitFor(t, 5*time.Second, "traffic on the degraded fleet", func() bool { return calls.Load() > mid+50 })

	victim.restart()
	waitFor(t, 5*time.Second, "readmission of the restarted backend", func() bool {
		return p.backends[0].healthy()
	})
	// And traffic after recovery.
	post := calls.Load()
	waitFor(t, 5*time.Second, "traffic on the recovered fleet", func() bool { return calls.Load() > post+50 })

	stop.Store(true)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Errorf("%d idempotent requests failed across kill/eject/readmit", n)
	}
	if p.ctr.ejections.Load() < 1 || p.ctr.readmits.Load() < 1 {
		t.Errorf("ejections=%d readmits=%d, want >=1 each",
			p.ctr.ejections.Load(), p.ctr.readmits.Load())
	}
	checkLedger(t, p)
}

// fakeBackend is a scriptable GFP1 endpoint for failure-injection
// tests: handle returns the response for a request, or ok=false to
// kill the connection instead (a transport failure mid-call).
type fakeBackend struct {
	ln     net.Listener
	handle func(m *server.Message) (resp *server.Message, ok bool)
}

func startFake(t *testing.T, handle func(m *server.Message) (*server.Message, bool)) *fakeBackend {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeBackend{ln: ln, handle: handle}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go f.serve(nc)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return f
}

func (f *fakeBackend) serve(nc net.Conn) {
	defer nc.Close()
	br := bufio.NewReader(nc)
	for {
		m, err := server.ReadRequest(br, server.DefaultMaxPayload)
		if err != nil {
			return
		}
		resp, ok := f.handle(m)
		if !ok {
			return
		}
		resp.ID = m.ID
		if err := server.WriteResponse(nc, resp); err != nil {
			return
		}
	}
}

func (f *fakeBackend) addr() string { return f.ln.Addr().String() }

// TestProxyIdempotentRetry: a backend that cuts the connection on every
// rs-encode never surfaces to the client — the proxy replays the
// request on the healthy backend.
func TestProxyIdempotentRetry(t *testing.T) {
	flaky := startFake(t, func(m *server.Message) (*server.Message, bool) {
		return nil, false // kill the connection: transport failure
	})
	real := startBackend(t, server.Config{Workers: 2})
	p, addr := startProxy(t, fastHealth(Config{
		Backends:       []BackendSpec{{Addr: flaky.addr()}, real.spec()},
		Retries:        2,
		RouteByRequest: true,
		FailAfter:      100, // keep the flaky backend in rotation for the whole test
	}))
	c := dialProxy(t, addr)

	msg := make([]byte, 239)
	for i := 0; i < 64; i++ {
		if _, err := c.RSEncode(msg); err != nil {
			t.Fatalf("rs-encode %d: %v", i, err)
		}
	}
	if p.ctr.retries.Load() == 0 {
		t.Error("no retries recorded: the flaky backend was never primary? (64 spread requests)")
	}
	if p.ctr.backendFails.Load() == 0 {
		t.Error("no backend failures recorded")
	}
	checkLedger(t, p)
}

// TestProxySealNotRetried: a transport failure mid-seal must NOT be
// replayed (nonce reuse); the client sees StatusUnavailable after one
// attempt.
func TestProxySealNotRetried(t *testing.T) {
	dead := startFake(t, func(m *server.Message) (*server.Message, bool) {
		return nil, false
	})
	dead2 := startFake(t, func(m *server.Message) (*server.Message, bool) {
		return nil, false
	})
	p, addr := startProxy(t, fastHealth(Config{
		Backends:  []BackendSpec{{Addr: dead.addr()}, {Addr: dead2.addr()}},
		Retries:   2,
		FailAfter: 100,
	}))
	c := dialProxy(t, addr)

	nonce := make([]byte, server.NonceSize)
	_, err := c.Seal(nonce, []byte("secret"))
	if err == nil {
		t.Fatal("seal against a dead fleet: no error")
	}
	var se *server.StatusError
	if !errors.As(err, &se) || se.Status != server.StatusUnavailable {
		t.Fatalf("seal error = %v, want StatusUnavailable", err)
	}
	if !strings.Contains(se.Msg, "not idempotent") {
		t.Errorf("unavailable message %q does not explain the no-retry decision", se.Msg)
	}
	if n := p.ctr.retries.Load(); n != 0 {
		t.Errorf("%d retries recorded for a non-idempotent op", n)
	}
	if n := p.ctr.backendFails.Load(); n != 1 {
		t.Errorf("backend failures = %d, want exactly 1 (single attempt)", n)
	}
	checkLedger(t, p)
}

// TestProxyECDSASignRetry: ecdsa-sign is idempotent (deterministic
// RFC 6979 nonces), so a transport failure mid-sign is transparently
// replayed — and because every backend sharing the fleet key signs
// identically, the retried answers are bit-identical across the fleet.
func TestProxyECDSASignRetry(t *testing.T) {
	flaky := startFake(t, func(m *server.Message) (*server.Message, bool) {
		return nil, false // kill the connection: transport failure
	})
	key := []byte("sign-retry-key!!") // 16 bytes: a valid AES-128 key
	real1 := startBackend(t, server.Config{Workers: 2, Key: append([]byte(nil), key...)})
	real2 := startBackend(t, server.Config{Workers: 2, Key: append([]byte(nil), key...)})
	p, addr := startProxy(t, fastHealth(Config{
		Backends:       []BackendSpec{{Addr: flaky.addr()}, real1.spec(), real2.spec()},
		Retries:        2,
		RouteByRequest: true,
		FailAfter:      100, // keep the flaky backend in rotation for the whole test
	}))
	c := dialProxy(t, addr)

	digest := make([]byte, 32)
	rand.New(rand.NewSource(17)).Read(digest)
	var first []byte
	for i := 0; i < 64; i++ {
		sig, err := c.ECDSASign(digest)
		if err != nil {
			t.Fatalf("ecdsa-sign %d under flaky backend: %v", i, err)
		}
		if first == nil {
			first = sig
		} else if !bytes.Equal(first, sig) {
			t.Fatalf("ecdsa-sign %d: signature diverged across backends", i)
		}
	}
	if p.ctr.retries.Load() == 0 {
		t.Error("no retries recorded: the flaky backend was never primary? (64 spread requests)")
	}
	checkLedger(t, p)
}

// TestProxySecureSessionNotRetried: the handshake draws a fresh
// ephemeral key per attempt, so a transport failure mid-handshake must
// NOT be replayed; the client sees StatusUnavailable after one attempt.
func TestProxySecureSessionNotRetried(t *testing.T) {
	dead := startFake(t, func(m *server.Message) (*server.Message, bool) {
		return nil, false
	})
	dead2 := startFake(t, func(m *server.Message) (*server.Message, bool) {
		return nil, false
	})
	p, addr := startProxy(t, fastHealth(Config{
		Backends:  []BackendSpec{{Addr: dead.addr()}, {Addr: dead2.addr()}},
		Retries:   2,
		FailAfter: 100,
	}))
	c := dialProxy(t, addr)

	_, err := c.SecureSession(make([]byte, 61), []byte("challenge"))
	if err == nil {
		t.Fatal("secure-session against a dead fleet: no error")
	}
	var se *server.StatusError
	if !errors.As(err, &se) || se.Status != server.StatusUnavailable {
		t.Fatalf("secure-session error = %v, want StatusUnavailable", err)
	}
	if !strings.Contains(se.Msg, "not idempotent") {
		t.Errorf("unavailable message %q does not explain the no-retry decision", se.Msg)
	}
	if n := p.ctr.retries.Load(); n != 0 {
		t.Errorf("%d retries recorded for a non-idempotent op", n)
	}
	checkLedger(t, p)
}

// TestProxyRetrySafeReroute: a backend answering StatusShuttingDown
// rejected the request unprocessed, so even seal — non-idempotent — is
// transparently rerouted to the healthy backend.
func TestProxyRetrySafeReroute(t *testing.T) {
	draining := startFake(t, func(m *server.Message) (*server.Message, bool) {
		return &server.Message{Op: m.Op, Status: server.StatusShuttingDown,
			Payload: []byte("draining")}, true
	})
	real := startBackend(t, server.Config{Workers: 2})
	p, addr := startProxy(t, fastHealth(Config{
		Backends:       []BackendSpec{{Addr: draining.addr()}, real.spec()},
		Retries:        2,
		RouteByRequest: true,
	}))
	c := dialProxy(t, addr)

	nonce := make([]byte, server.NonceSize)
	for i := 0; i < 32; i++ {
		sealed, err := c.Seal(nonce, []byte("payload"))
		if err != nil {
			t.Fatalf("seal %d: %v", i, err)
		}
		if len(sealed) == 0 {
			t.Fatalf("seal %d: empty ciphertext", i)
		}
	}
	if p.ctr.retries.Load() == 0 {
		t.Error("no reroutes recorded: the draining backend was never primary? (32 spread requests)")
	}
	checkLedger(t, p)
}

// TestProxyAdmission: with a 1-deep tenant budget, a second concurrent
// request from the same client class is rejected immediately with
// StatusOverloaded while the first is still in flight.
func TestProxyAdmission(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	slow := startFake(t, func(m *server.Message) (*server.Message, bool) {
		entered <- struct{}{}
		<-release
		return &server.Message{Op: m.Op, Status: server.StatusOK}, true
	})
	defer close(release)

	p, addr := startProxy(t, fastHealth(Config{
		Backends:       []BackendSpec{{Addr: slow.addr()}},
		TenantInflight: 1,
	}))
	c := dialProxy(t, addr)

	firstDone := make(chan error, 1)
	go func() {
		_, err := c.Call(server.OpStats, nil, nil)
		firstDone <- err
	}()
	<-entered // the first request holds the tenant's only slot

	_, err := c.Call(server.OpStats, nil, nil)
	var se *server.StatusError
	if !errors.As(err, &se) || se.Status != server.StatusOverloaded {
		t.Fatalf("second concurrent call: %v, want StatusOverloaded", err)
	}

	release <- struct{}{}
	if err := <-firstDone; err != nil {
		t.Fatalf("first call after release: %v", err)
	}
	if p.ctr.admRejects.Load() != 1 {
		t.Errorf("admission rejects = %d, want 1", p.ctr.admRejects.Load())
	}
	// The freed slot admits the next request.
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(server.OpStats, nil, nil)
		done <- err
	}()
	<-entered
	release <- struct{}{}
	if err := <-done; err != nil {
		t.Fatalf("call after slot freed: %v", err)
	}
	checkLedger(t, p)
}

// TestProxyUnavailable: a fleet that is entirely dark answers
// StatusUnavailable (and /healthz goes 503) instead of hanging.
func TestProxyUnavailable(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close() // nothing listens here

	p, addr := startProxy(t, fastHealth(Config{
		Backends: []BackendSpec{{Addr: deadAddr}},
		Retries:  1,
	}))
	waitFor(t, 5*time.Second, "ejection of the dead backend", func() bool {
		return p.healthyBackends() == 0
	})
	if err := p.Healthy(); err == nil {
		t.Error("Healthy() = nil with the whole fleet ejected")
	}

	c := dialProxy(t, addr)
	_, err = c.Call(server.OpRSEncode, nil, make([]byte, 239))
	var se *server.StatusError
	if !errors.As(err, &se) || se.Status != server.StatusUnavailable {
		t.Fatalf("call against dark fleet: %v, want StatusUnavailable", err)
	}
	checkLedger(t, p)
}

// TestProxyAggregation: the proxy's admin plane folds the fleet into
// one surface — /statsz sums the backend ledgers and /metrics renders
// both the proxy's own families and the merged backend families.
func TestProxyAggregation(t *testing.T) {
	b1 := startBackend(t, server.Config{Workers: 2})
	b2 := startBackend(t, server.Config{Workers: 2})
	p, addr := startProxy(t, fastHealth(Config{
		Backends:       []BackendSpec{b1.spec(), b2.spec()},
		RouteByRequest: true,
	}))
	c := dialProxy(t, addr)
	msg := make([]byte, 239)
	for i := 0; i < 32; i++ {
		if _, err := c.RSEncode(msg); err != nil {
			t.Fatal(err)
		}
	}

	reg := obs.NewRegistry()
	p.RegisterMetrics(reg)
	admin := p.AdminHandler(reg)

	// /statsz: both backends scraped, fleet ledger sums theirs.
	rr := httptest.NewRecorder()
	admin.ServeHTTP(rr, httptest.NewRequest("GET", "/statsz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/statsz: %d", rr.Code)
	}
	var sz Statsz
	if err := json.Unmarshal(rr.Body.Bytes(), &sz); err != nil {
		t.Fatalf("/statsz decode: %v", err)
	}
	if sz.Fleet.Scraped != 2 {
		for _, b := range sz.Fleet.Backends {
			t.Logf("backend %s admin=%s state=%s fetch_err=%q", b.Addr, b.Admin, b.State, b.FetchErr)
		}
		t.Fatalf("scraped %d backends, want 2", sz.Fleet.Scraped)
	}
	var sum int64
	for _, b := range sz.Fleet.Backends {
		if b.Server == nil {
			t.Fatalf("backend %s: no scraped ledger", b.Addr)
		}
		if b.ListenAddr == "" {
			t.Errorf("backend %s: no listen_addr in scraped statsz", b.Addr)
		}
		sum += b.Server.Requests
	}
	if sz.Fleet.Fleet.Requests != sum || sum < 32 {
		t.Errorf("fleet requests = %d, want sum of backends %d (>=32)", sz.Fleet.Fleet.Requests, sum)
	}
	if sz.Proxy.Requests != 32 {
		t.Errorf("proxy requests = %d, want 32", sz.Proxy.Requests)
	}
	if sz.Fleet.Latency.Count < 32 {
		t.Errorf("merged fleet latency count = %d, want >= 32", sz.Fleet.Latency.Count)
	}

	// /metrics: one page carries gfp_proxy_* and the merged gfp_server_*
	// and gfp_pipeline_* families.
	rr = httptest.NewRecorder()
	admin.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	for _, want := range []string{
		"gfp_proxy_requests_total 32",
		"gfp_proxy_backends_healthy 2",
		`gfp_proxy_backend_forwards_total{backend="`,
		"gfp_server_requests_total ", // merged across both backends
		"gfp_pipeline_latency_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /healthz while both backends are up.
	rr = httptest.NewRecorder()
	admin.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Errorf("/healthz: %d, want 200", rr.Code)
	}
	checkLedger(t, p)
}

// TestProxyConfigErrors: constructor-level validation.
func TestProxyConfigErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no backends: no error")
	}
	specs := make([]BackendSpec, 65)
	for i := range specs {
		specs[i] = BackendSpec{Addr: fmt.Sprintf("10.0.0.%d:1", i)}
	}
	if _, err := New(Config{Backends: specs}); err == nil {
		t.Error("65 backends: no error")
	}
	if _, err := New(Config{Backends: []BackendSpec{{Addr: "a:1"}, {Addr: "a:1"}}}); err == nil {
		t.Error("duplicate backends: no error")
	}
}
