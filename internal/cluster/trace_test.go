package cluster

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs/trace"
	"repro/internal/server"
)

// traceSeen records, per fake backend, which (trace id -> attempt span
// ids) arrived in request trace extensions.
type traceSeen struct {
	mu sync.Mutex
	m  map[string][]string
}

func (s *traceSeen) record(m *server.Message) {
	if m.Flags&server.FlagTraced == 0 {
		return
	}
	tc, _, ok := trace.Extract(m.Params)
	if !ok {
		return
	}
	s.mu.Lock()
	key := trace.FormatID(tc.Trace)
	s.m[key] = append(s.m[key], trace.FormatID(tc.Span))
	s.mu.Unlock()
}

// TestProxyRetryReusesTraceID: a retried request must replay with the
// SAME trace id (it is one logical request) but a FRESH attempt span id
// (each forward is its own hop), so the reassembled trace shows both
// attempts under one id.
func TestProxyRetryReusesTraceID(t *testing.T) {
	drainSeen := &traceSeen{m: map[string][]string{}}
	okSeen := &traceSeen{m: map[string][]string{}}
	draining := startFake(t, func(m *server.Message) (*server.Message, bool) {
		drainSeen.record(m)
		// StatusShuttingDown is retry-safe: the request was rejected
		// unprocessed, so the proxy replays it on the next backend.
		return &server.Message{Op: m.Op, Status: server.StatusShuttingDown,
			Payload: []byte("draining")}, true
	})
	okb := startFake(t, func(m *server.Message) (*server.Message, bool) {
		okSeen.record(m)
		return &server.Message{Op: m.Op, Payload: []byte("pong")}, true
	})
	p, addr := startProxy(t, fastHealth(Config{
		Backends:       []BackendSpec{{Addr: draining.addr()}, {Addr: okb.addr()}},
		Retries:        2,
		RouteByRequest: true,
	}))
	c := dialProxy(t, addr)

	msg := make([]byte, 239)
	for i := 0; i < 32; i++ {
		m := &server.Message{Op: server.OpRSEncode, Payload: msg}
		server.AttachTrace(m, trace.Context{Trace: trace.NewID(), Span: trace.NewID(), Sampled: true})
		if _, err := c.Do(m); err != nil {
			t.Fatalf("traced rs-encode %d: %v", i, err)
		}
	}
	if p.ctr.retries.Load() == 0 {
		t.Fatal("no retries recorded: the draining backend was never primary? (32 spread requests)")
	}

	// Find a request that hit the draining backend and was replayed on
	// the healthy one.
	drainSeen.mu.Lock()
	okSeen.mu.Lock()
	var retried string
	for id := range drainSeen.m {
		if _, alsoOK := okSeen.m[id]; alsoOK {
			retried = id
			break
		}
	}
	if retried == "" {
		okSeen.mu.Unlock()
		drainSeen.mu.Unlock()
		t.Fatalf("no trace id seen by both backends; draining saw %d, ok saw %d",
			len(drainSeen.m), len(okSeen.m))
	}
	firstSpans, secondSpans := drainSeen.m[retried], okSeen.m[retried]
	okSeen.mu.Unlock()
	drainSeen.mu.Unlock()

	for _, s1 := range firstSpans {
		for _, s2 := range secondSpans {
			if s1 == s2 {
				t.Fatalf("retry reused attempt span id %s for trace %s", s1, retried)
			}
		}
	}

	// The proxy's own ring must hold the whole story for that trace: the
	// route span plus one forward span per attempt (recording completes
	// just after the response, so poll briefly).
	deadline := time.Now().Add(2 * time.Second)
	for {
		var route, forwards int
		for _, sp := range p.TraceSnap().Spans {
			if sp.Trace != retried {
				continue
			}
			switch sp.Name {
			case "proxy-route":
				route++
			case "forward":
				forwards++
			}
		}
		if route == 1 && forwards >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("proxy ring for trace %s: %d route, %d forward spans; want 1 and >= 2",
				retried, route, forwards)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
