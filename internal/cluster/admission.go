package cluster

import (
	"sync"
	"sync/atomic"
)

// admission is the per-tenant in-flight bound. A tenant is a client
// class — by default the client's IP address, so every process on one
// host shares a budget — and each tenant may hold at most limit
// requests in flight through the proxy at once. Over-limit requests are
// rejected immediately with StatusOverloaded instead of queuing: a hot
// tenant saturating its budget slows only itself, and the bound on
// total queued work per tenant keeps the proxy's memory flat under
// abuse. limit 0 disables admission entirely.
type admission struct {
	limit int64

	mu      sync.Mutex
	tenants map[string]*tenant
}

// tenant tracks one client class's in-flight count and rejections.
type tenant struct {
	inflight atomic.Int64
	rejects  atomic.Int64
	admitted atomic.Int64
}

func newAdmission(limit int) *admission {
	return &admission{limit: int64(limit), tenants: make(map[string]*tenant)}
}

// lookup returns (creating if needed) the tenant record for a class.
func (a *admission) lookup(class string) *tenant {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.tenants[class]
	if t == nil {
		t = &tenant{}
		a.tenants[class] = t
	}
	return t
}

// acquire claims one in-flight slot for the tenant; false means the
// tenant is at its bound and the request must be rejected. The caller
// pairs every true return with exactly one release.
func (a *admission) acquire(t *tenant) bool {
	if a.limit <= 0 {
		t.admitted.Add(1)
		return true
	}
	if n := t.inflight.Add(1); n > a.limit {
		t.inflight.Add(-1)
		t.rejects.Add(1)
		return false
	}
	t.admitted.Add(1)
	return true
}

// release returns a slot claimed by acquire.
func (a *admission) release(t *tenant) {
	if a.limit > 0 {
		t.inflight.Add(-1)
	}
}

// TenantSnapshot is one tenant's admission state on the admin plane.
type TenantSnapshot struct {
	Class    string `json:"class"`
	Inflight int64  `json:"inflight"`
	Admitted int64  `json:"admitted"`
	Rejects  int64  `json:"rejects"`
}

// snapshot lists every tenant seen so far.
func (a *admission) snapshot() []TenantSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]TenantSnapshot, 0, len(a.tenants))
	for class, t := range a.tenants {
		out = append(out, TenantSnapshot{
			Class:    class,
			Inflight: t.inflight.Load(),
			Admitted: t.admitted.Load(),
			Rejects:  t.rejects.Load(),
		})
	}
	return out
}
