// Package cluster is the scale-out layer over the GFP1 codec service: a
// consistent-hash routing front door (Proxy) that spreads requests from
// many client connections across N backend gfserved processes, actively
// health-checks each backend's /healthz, ejects and readmits backends as
// they fail and recover, transparently retries idempotent ops on backend
// loss, applies per-tenant admission control so one hot client class
// cannot starve the rest, and aggregates the fleet's /statsz metrics so
// the whole cluster reads as one instrument set.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultReplicas is the number of virtual nodes each backend
// contributes to the ring. 64 points per backend keeps the load spread
// within a few percent of uniform for small fleets while the ring stays
// tiny (N*64 points).
const defaultReplicas = 64

// ring is an immutable consistent-hash ring over backend indices. Each
// backend owns Replicas points placed by hashing "addr#i"; a key routes
// to the first point clockwise from its hash. Adding or removing one
// backend moves only the keys in its arcs — the property that keeps
// per-connection routing stable while the fleet changes underneath.
type ring struct {
	hashes   []uint64 // sorted point hashes
	backends []int    // backends[i] owns hashes[i]
	n        int      // distinct backends
}

// newRing places replicas points per backend address. Addresses must be
// distinct; the ring is immutable after construction.
func newRing(addrs []string, replicas int) (*ring, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one backend")
	}
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	seen := make(map[string]bool, len(addrs))
	r := &ring{
		hashes:   make([]uint64, 0, len(addrs)*replicas),
		backends: make([]int, 0, len(addrs)*replicas),
		n:        len(addrs),
	}
	for bi, addr := range addrs {
		if seen[addr] {
			return nil, fmt.Errorf("cluster: duplicate backend address %q", addr)
		}
		seen[addr] = true
		for v := 0; v < replicas; v++ {
			r.hashes = append(r.hashes, hashKey(fmt.Sprintf("%s#%d", addr, v)))
			r.backends = append(r.backends, bi)
		}
	}
	sort.Sort(ringSort{r})
	// Virtual-node hash collisions across backends would make routing
	// order-dependent; with 64-bit FNV they are effectively impossible,
	// but fail loudly rather than route nondeterministically.
	for i := 1; i < len(r.hashes); i++ {
		if r.hashes[i] == r.hashes[i-1] && r.backends[i] != r.backends[i-1] {
			return nil, fmt.Errorf("cluster: ring hash collision between backends %d and %d",
				r.backends[i-1], r.backends[i])
		}
	}
	return r, nil
}

type ringSort struct{ r *ring }

func (s ringSort) Len() int           { return len(s.r.hashes) }
func (s ringSort) Less(i, j int) bool { return s.r.hashes[i] < s.r.hashes[j] }
func (s ringSort) Swap(i, j int) {
	s.r.hashes[i], s.r.hashes[j] = s.r.hashes[j], s.r.hashes[i]
	s.r.backends[i], s.r.backends[j] = s.r.backends[j], s.r.backends[i]
}

// hashKey is the ring's point/key hash: FNV-1a 64 finished with the
// splitmix64 avalanche. Raw FNV of strings sharing a prefix and
// differing only in a short suffix ("addr#0".."addr#63") lands within a
// narrow band — the per-character multiply moves the hash by small
// multiples of the prime — which would clump one backend's virtual
// nodes instead of spreading them around the ring. The finalizer makes
// every output bit depend on every input bit.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// sequence returns the key's backend preference order: every distinct
// backend in the order its first point appears walking clockwise from
// the key's position. seq[0] is the primary owner; a retry that skips k
// dead backends lands on seq[k+...]. buf, when large enough, avoids the
// allocation.
func (r *ring) sequence(key uint64, buf []int) []int {
	seq := buf[:0]
	if cap(seq) < r.n {
		seq = make([]int, 0, r.n)
	}
	seen := 0 // bitmask; fleets are small (n <= 64 enforced by Config)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= key })
	for i := 0; i < len(r.hashes) && len(seq) < r.n; i++ {
		b := r.backends[(start+i)%len(r.hashes)]
		if seen&(1<<uint(b)) == 0 {
			seen |= 1 << uint(b)
			seq = append(seq, b)
		}
	}
	return seq
}
