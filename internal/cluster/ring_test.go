package cluster

import (
	"fmt"
	"testing"
)

func testAddrs(n int) []string {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("10.0.0.%d:7070", i+1)
	}
	return addrs
}

// TestRingDeterminism: two rings over the same addresses route every
// key identically — routing is a pure function of the fleet.
func TestRingDeterminism(t *testing.T) {
	a, err := newRing(testAddrs(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newRing(testAddrs(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB [64]int
	for i := 0; i < 1000; i++ {
		key := hashKey(fmt.Sprintf("key-%d", i))
		sa := a.sequence(key, bufA[:])
		sb := b.sequence(key, bufB[:])
		if len(sa) != len(sb) {
			t.Fatalf("key %d: sequence lengths differ: %d vs %d", i, len(sa), len(sb))
		}
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("key %d: sequences diverge at %d: %v vs %v", i, j, sa, sb)
			}
		}
	}
}

// TestRingSequence: every preference sequence lists each backend
// exactly once, and the primaries are not all the same backend.
func TestRingSequence(t *testing.T) {
	r, err := newRing(testAddrs(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	primaries := make(map[int]bool)
	var buf [64]int
	for i := 0; i < 2000; i++ {
		seq := r.sequence(hashKey(fmt.Sprintf("key-%d", i)), buf[:])
		if len(seq) != 7 {
			t.Fatalf("key %d: sequence %v covers %d of 7 backends", i, seq, len(seq))
		}
		seen := make(map[int]bool)
		for _, b := range seq {
			if b < 0 || b >= 7 {
				t.Fatalf("key %d: backend %d out of range", i, b)
			}
			if seen[b] {
				t.Fatalf("key %d: backend %d repeated in %v", i, b, seq)
			}
			seen[b] = true
		}
		primaries[seq[0]] = true
	}
	if len(primaries) != 7 {
		t.Errorf("only %d of 7 backends ever primary", len(primaries))
	}
}

// TestRingDistribution: with 64 virtual nodes per backend, primary
// ownership across many keys stays within a loose band of uniform.
func TestRingDistribution(t *testing.T) {
	const backends, keys = 4, 20000
	r, err := newRing(testAddrs(backends), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, backends)
	var buf [64]int
	for i := 0; i < keys; i++ {
		counts[r.sequence(hashKey(fmt.Sprintf("key-%d", i)), buf[:])[0]]++
	}
	want := keys / backends
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("backend %d owns %d of %d keys (uniform share %d): spread too skewed, counts %v",
				b, c, keys, want, counts)
		}
	}
}

// TestRingMinimalDisruption: growing the fleet by one backend moves
// only the keys the new backend claims; every other key keeps its
// primary. This is the consistent-hash contract that keeps connection
// routing stable across fleet changes.
func TestRingMinimalDisruption(t *testing.T) {
	const keys = 10000
	small, err := newRing(testAddrs(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	big, err := newRing(testAddrs(5), 0) // same first 4, one more
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	var buf [64]int
	for i := 0; i < keys; i++ {
		key := hashKey(fmt.Sprintf("key-%d", i))
		before := small.sequence(key, buf[:])[0]
		after := big.sequence(key, buf[:])[0]
		if before != after {
			if after != 4 {
				t.Fatalf("key %d moved from backend %d to %d, not to the new backend", i, before, after)
			}
			moved++
		}
	}
	// The new backend should claim roughly 1/5 of the keyspace.
	if moved < keys/10 || moved > keys/2 {
		t.Errorf("%d of %d keys moved to the new backend, want about %d", moved, keys, keys/5)
	}
}

// TestRingErrors: the constructor rejects empty and duplicate fleets.
func TestRingErrors(t *testing.T) {
	if _, err := newRing(nil, 0); err == nil {
		t.Error("empty fleet: no error")
	}
	if _, err := newRing([]string{"a:1", "b:1", "a:1"}, 0); err == nil {
		t.Error("duplicate address: no error")
	}
}

// TestParseBackendSpec covers the addr and addr@admin forms.
func TestParseBackendSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    BackendSpec
		wantErr bool
	}{
		{in: "10.0.0.1:7070", want: BackendSpec{Addr: "10.0.0.1:7070"}},
		{in: "10.0.0.1:7070@10.0.0.1:7071", want: BackendSpec{Addr: "10.0.0.1:7070", Admin: "10.0.0.1:7071"}},
		{in: " host:1 @ host:2 ", want: BackendSpec{Addr: "host:1", Admin: "host:2"}},
		{in: "", wantErr: true},
		{in: "@admin:1", wantErr: true},
		{in: "addr:1@", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParseBackendSpec(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseBackendSpec(%q): no error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBackendSpec(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseBackendSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}
