package aes

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
)

// TestMixWithTableMatchesGF: the table-driven MixColumns/InvMixColumns
// agree with the Field.Mul arithmetic reference on random states, and the
// two transforms invert each other.
func TestMixWithTableMatchesGF(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		var s State
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				s[r][c] = byte(rng.Intn(256))
			}
		}
		fwd, fwdRef, orig := s, s, s
		MixColumns(&fwd)
		mixWithGF(&fwdRef, mixColCoeff)
		if fwd != fwdRef {
			t.Fatalf("trial %d: MixColumns table %v != reference %v", trial, fwd, fwdRef)
		}
		inv, invRef := fwd, fwd
		InvMixColumns(&inv)
		mixWithGF(&invRef, invMixColCoeff)
		if inv != invRef {
			t.Fatalf("trial %d: InvMixColumns table %v != reference %v", trial, inv, invRef)
		}
		if inv != orig {
			t.Fatalf("trial %d: InvMixColumns(MixColumns(s)) != s", trial)
		}
	}
}

// TestXtime: the doubling primitive agrees with multiplication by 0x02
// in the AES field for every byte.
func TestXtime(t *testing.T) {
	f := Field()
	for x := 0; x < 256; x++ {
		if got, want := Xtime(byte(x)), byte(f.Mul(2, gf.Elem(x))); got != want {
			t.Fatalf("Xtime(%#x) = %#x, want %#x", x, got, want)
		}
	}
}

func BenchmarkMixColumns(b *testing.B) {
	var s State
	for i := 0; i < 16; i++ {
		s[i%4][i/4] = byte(i * 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MixColumns(&s)
	}
}

func BenchmarkMixColumnsGF(b *testing.B) {
	var s State
	for i := 0; i < 16; i++ {
		s[i%4][i/4] = byte(i * 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mixWithGF(&s, mixColCoeff)
	}
}
