package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"math/rand"
	"testing"
)

func TestGCMMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ks := range []int{16, 24, 32} {
		for _, ptLen := range []int{0, 1, 16, 33, 64, 100} {
			for _, aadLen := range []int{0, 7, 16, 40} {
				key := make([]byte, ks)
				nonce := make([]byte, 12)
				pt := make([]byte, ptLen)
				aad := make([]byte, aadLen)
				rng.Read(key)
				rng.Read(nonce)
				rng.Read(pt)
				rng.Read(aad)

				ours, _ := NewCipher(key)
				got, err := ours.NewGCM().Seal(nonce, pt, aad)
				if err != nil {
					t.Fatal(err)
				}
				ref, _ := stdaes.NewCipher(key)
				g, _ := cipher.NewGCM(ref)
				want := g.Seal(nil, nonce, pt, aad)
				if !bytes.Equal(got, want) {
					t.Fatalf("ks=%d pt=%d aad=%d: sealed output differs from crypto/cipher", ks, ptLen, aadLen)
				}
			}
		}
	}
}

func TestGCMOpenRoundTripAndTamper(t *testing.T) {
	key := []byte("0123456789abcdef")
	c, _ := NewCipher(key)
	g := c.NewGCM()
	nonce := []byte("12-byte-nonc")
	pt := []byte("authenticated and encrypted packet payload")
	aad := []byte("packet header")
	sealed, err := g.Seal(nonce, pt, aad)
	if err != nil {
		t.Fatal(err)
	}
	back, err := g.Open(nonce, sealed, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pt) {
		t.Fatal("round trip failed")
	}
	// Any single-bit tamper must fail authentication.
	for _, idx := range []int{0, len(sealed) / 2, len(sealed) - 1} {
		bad := append([]byte(nil), sealed...)
		bad[idx] ^= 1
		if _, err := g.Open(nonce, bad, aad); err == nil {
			t.Fatalf("tampered byte %d accepted", idx)
		}
	}
	// Wrong AAD must fail.
	if _, err := g.Open(nonce, sealed, []byte("other header")); err == nil {
		t.Fatal("wrong aad accepted")
	}
}

func TestGCMValidation(t *testing.T) {
	c, _ := NewCipher(make([]byte, 16))
	g := c.NewGCM()
	if _, err := g.Seal(make([]byte, 11), nil, nil); err == nil {
		t.Error("11-byte nonce accepted")
	}
	if _, err := g.Open(make([]byte, 12), make([]byte, 8), nil); err == nil {
		t.Error("too-short ciphertext accepted")
	}
}

func TestGHASHClmulMatchesShiftReference(t *testing.T) {
	// The carry-free-product GHASH multiplier (the GF-processor path,
	// built from the same primitives as the ECC_l wide multiply) must
	// agree with the canonical shift-and-xor reference on random blocks.
	rng := rand.New(rand.NewSource(2))
	key := make([]byte, 16)
	rng.Read(key)
	c, _ := NewCipher(key)
	g := c.NewGCM()
	for trial := 0; trial < 200; trial++ {
		var x [16]byte
		rng.Read(x[:])
		x0 := binary.BigEndian.Uint64(x[0:8])
		x1 := binary.BigEndian.Uint64(x[8:16])
		z0, z1 := g.mulH(x0, x1)
		var want [16]byte
		binary.BigEndian.PutUint64(want[0:8], z0)
		binary.BigEndian.PutUint64(want[8:16], z1)
		got := g.mulHClmul(x[:])
		if !bytes.Equal(got, want[:]) {
			t.Fatalf("trial %d: clmul GHASH %x != reference %x", trial, got, want)
		}
	}
}

func TestGHASHReflectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, _ := NewCipher(make([]byte, 16))
	g := c.NewGCM()
	for trial := 0; trial < 50; trial++ {
		var x [16]byte
		rng.Read(x[:])
		if !bytes.Equal(g.unreflect(g.reflect(x[:])), x[:]) {
			t.Fatal("reflect/unreflect not inverse")
		}
	}
}
