package aes

import "fmt"

// Block-cipher modes of operation. The paper's IoT scenario applies AES
// "on a packet-by-packet basis"; CTR is the natural packet mode (no
// padding, encrypt-only datapath) and CBC is provided for completeness.

// EncryptCTR encrypts (or decrypts — CTR is an involution) src with a
// 16-byte initial counter block. The counter increments big-endian over
// the full block.
func (c *Cipher) EncryptCTR(dst, src, iv []byte) error {
	if len(iv) != BlockSize {
		return fmt.Errorf("aes: CTR iv must be %d bytes", BlockSize)
	}
	if len(dst) < len(src) {
		return fmt.Errorf("aes: CTR dst shorter than src")
	}
	ctr := append([]byte(nil), iv...)
	var ks [BlockSize]byte
	for off := 0; off < len(src); off += BlockSize {
		c.Encrypt(ks[:], ctr)
		n := len(src) - off
		if n > BlockSize {
			n = BlockSize
		}
		for i := 0; i < n; i++ {
			dst[off+i] = src[off+i] ^ ks[i]
		}
		// big-endian increment
		for i := BlockSize - 1; i >= 0; i-- {
			ctr[i]++
			if ctr[i] != 0 {
				break
			}
		}
	}
	return nil
}

// EncryptCBC encrypts src (length must be a multiple of 16) in CBC mode.
func (c *Cipher) EncryptCBC(dst, src, iv []byte) error {
	if len(src)%BlockSize != 0 {
		return fmt.Errorf("aes: CBC plaintext not block-aligned")
	}
	if len(iv) != BlockSize {
		return fmt.Errorf("aes: CBC iv must be %d bytes", BlockSize)
	}
	if len(dst) < len(src) {
		return fmt.Errorf("aes: CBC dst shorter than src")
	}
	prev := append([]byte(nil), iv...)
	var blk [BlockSize]byte
	for off := 0; off < len(src); off += BlockSize {
		for i := 0; i < BlockSize; i++ {
			blk[i] = src[off+i] ^ prev[i]
		}
		c.Encrypt(dst[off:off+BlockSize], blk[:])
		copy(prev, dst[off:off+BlockSize])
	}
	return nil
}

// DecryptCBC decrypts src (length must be a multiple of 16) in CBC mode.
func (c *Cipher) DecryptCBC(dst, src, iv []byte) error {
	if len(src)%BlockSize != 0 {
		return fmt.Errorf("aes: CBC ciphertext not block-aligned")
	}
	if len(iv) != BlockSize {
		return fmt.Errorf("aes: CBC iv must be %d bytes", BlockSize)
	}
	if len(dst) < len(src) {
		return fmt.Errorf("aes: CBC dst shorter than src")
	}
	prev := append([]byte(nil), iv...)
	var blk [BlockSize]byte
	for off := 0; off < len(src); off += BlockSize {
		cur := append([]byte(nil), src[off:off+BlockSize]...)
		c.Decrypt(blk[:], cur)
		for i := 0; i < BlockSize; i++ {
			dst[off+i] = blk[i] ^ prev[i]
		}
		prev = cur
	}
	return nil
}
