package aes

// Galois/Counter Mode. GCM's GHASH authenticator is itself Galois-field
// arithmetic — multiplication in GF(2^128)/x^128+x^7+x^2+x+1 with a
// bit-reflected element encoding — so an AES-GCM packet pipeline runs
// entirely on the operations the paper's processor accelerates: AES
// rounds on the SIMD unit and the 128-bit GHASH products on iterated
// 32-bit carry-free partial products (gf32bMult), exactly like the
// ECC_l wide multiplications of Section 3.3.4.
//
// Two GHASH multipliers are implemented and cross-checked: the classic
// shift-and-conditional-xor reference, and a carry-free-product +
// sparse-reduction version built the way the GF processor would compute
// it (internal/gfbig primitives over the reflected polynomials).

import (
	"encoding/binary"
	"fmt"

	"repro/internal/gfbig"
)

// gcmTagSize is the full 16-byte authentication tag.
const gcmTagSize = 16

// GCM is an AES-GCM AEAD with a 96-bit nonce and 16-byte tag.
type GCM struct {
	c *Cipher
	// hash subkey H = E_K(0^128), big-endian halves.
	h0, h1 uint64
	// hRefl is H in the LSB-first polynomial basis for the carry-free path.
	hRefl gfbig.Elem
	// fRefl is GF(2^128)/x^128+x^7+x^2+x+1 for the carry-free path.
	fRefl *gfbig.Field
}

// NewGCM wraps the cipher in Galois/Counter Mode.
func (c *Cipher) NewGCM() *GCM {
	var zero, h [BlockSize]byte
	c.Encrypt(h[:], zero[:])
	g := &GCM{
		c:     c,
		h0:    binary.BigEndian.Uint64(h[0:8]),
		h1:    binary.BigEndian.Uint64(h[8:16]),
		fRefl: gfbig.MustNew(128, 7, 2, 1, 0),
	}
	g.hRefl = g.reflect(h[:])
	return g
}

// reflect converts a 16-byte GHASH element (bit 0 = MSB of byte 0 =
// coefficient of x^0) into the standard LSB-first gfbig packing.
func (g *GCM) reflect(b []byte) gfbig.Elem {
	e := g.fRefl.Zero()
	for i := 0; i < 128; i++ {
		// GHASH bit i lives at byte i/8, bit (7 - i%8) — MSB first.
		if b[i/8]>>(7-i%8)&1 == 1 {
			e[i/32] |= 1 << (i % 32)
		}
	}
	return e
}

// unreflect is the inverse of reflect.
func (g *GCM) unreflect(e gfbig.Elem) []byte {
	b := make([]byte, 16)
	for i := 0; i < 128; i++ {
		if e[i/32]>>(i%32)&1 == 1 {
			b[i/8] |= 1 << (7 - i%8)
		}
	}
	return b
}

// mulH multiplies the 128-bit block (big-endian halves) by H with the
// canonical GHASH shift-and-xor algorithm (NIST SP 800-38D, right-shift
// variant with R = 0xE1 << 120).
func (g *GCM) mulH(x0, x1 uint64) (z0, z1 uint64) {
	v0, v1 := g.h0, g.h1
	const r = uint64(0xE1) << 56
	for i := 0; i < 128; i++ {
		var bit uint64
		if i < 64 {
			bit = x0 >> (63 - i) & 1
		} else {
			bit = x1 >> (127 - i) & 1
		}
		if bit == 1 {
			z0 ^= v0
			z1 ^= v1
		}
		lsb := v1 & 1
		v1 = v1>>1 | v0<<63
		v0 >>= 1
		if lsb == 1 {
			v0 ^= r
		}
	}
	return
}

// mulHClmul computes the same product through carry-free multiplication
// and sparse reduction in the reflected basis — the GF-processor path:
// reflect both operands, take the 128x128 carry-free product (sixteen
// 32-bit partial products), multiply by the extra x that the double
// reflection introduces, reduce modulo x^128+x^7+x^2+x+1, reflect back.
func (g *GCM) mulHClmul(x []byte) []byte {
	// GHASH numbers the bits of its byte string MSB-of-byte-0 first, and
	// that bit index IS the polynomial coefficient index; reflect() maps
	// it to gfbig's LSB-first packing of the same polynomial, so the
	// product is a plain field multiplication modulo x^128+x^7+x^2+x+1 —
	// sixteen 32-bit carry-free partial products plus sparse reduction,
	// identical in structure to the Section 3.3.4 wide multiplies.
	xr := g.reflect(x)
	red := g.fRefl.Mul(xr, g.hRefl)
	return g.unreflect(red)
}

// ghash runs GHASH over the already-padded blocks of data.
func (g *GCM) ghash(chunks ...[]byte) [BlockSize]byte {
	var y0, y1 uint64
	absorb := func(b []byte) {
		for off := 0; off < len(b); off += BlockSize {
			var blk [BlockSize]byte
			copy(blk[:], b[off:])
			y0 ^= binary.BigEndian.Uint64(blk[0:8])
			y1 ^= binary.BigEndian.Uint64(blk[8:16])
			y0, y1 = g.mulH(y0, y1)
		}
	}
	for _, c := range chunks {
		absorb(c)
	}
	var out [BlockSize]byte
	binary.BigEndian.PutUint64(out[0:8], y0)
	binary.BigEndian.PutUint64(out[8:16], y1)
	return out
}

// lenBlock encodes the GHASH length block: bit lengths of aad and ct.
func lenBlock(aadLen, ctLen int) []byte {
	var b [BlockSize]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(aadLen)*8)
	binary.BigEndian.PutUint64(b[8:16], uint64(ctLen)*8)
	return b[:]
}

// counterBlocks derives J0 from a 96-bit nonce and runs GCTR.
func (g *GCM) gctr(dst, src, j0 []byte, startCtr uint32) {
	ctr := append([]byte(nil), j0...)
	var ks [BlockSize]byte
	c := startCtr
	for off := 0; off < len(src); off += BlockSize {
		binary.BigEndian.PutUint32(ctr[12:], c)
		c++
		g.c.Encrypt(ks[:], ctr)
		n := len(src) - off
		if n > BlockSize {
			n = BlockSize
		}
		for i := 0; i < n; i++ {
			dst[off+i] = src[off+i] ^ ks[i]
		}
	}
}

// Seal encrypts and authenticates plaintext with the 12-byte nonce and
// additional authenticated data, returning ciphertext || 16-byte tag.
func (g *GCM) Seal(nonce, plaintext, aad []byte) ([]byte, error) {
	if len(nonce) != 12 {
		return nil, fmt.Errorf("aes: GCM nonce must be 12 bytes")
	}
	j0 := make([]byte, BlockSize)
	copy(j0, nonce)
	j0[15] = 1
	out := make([]byte, len(plaintext)+gcmTagSize)
	g.gctr(out, plaintext, j0, 2)
	s := g.ghash(aad, out[:len(plaintext)], lenBlock(len(aad), len(plaintext)))
	var ek0 [BlockSize]byte
	g.c.Encrypt(ek0[:], j0)
	for i := 0; i < gcmTagSize; i++ {
		out[len(plaintext)+i] = s[i] ^ ek0[i]
	}
	return out, nil
}

// Open verifies and decrypts Seal's output. It returns an error on
// authentication failure (and no plaintext).
func (g *GCM) Open(nonce, sealed, aad []byte) ([]byte, error) {
	if len(nonce) != 12 {
		return nil, fmt.Errorf("aes: GCM nonce must be 12 bytes")
	}
	if len(sealed) < gcmTagSize {
		return nil, fmt.Errorf("aes: GCM ciphertext shorter than tag")
	}
	ct := sealed[:len(sealed)-gcmTagSize]
	tag := sealed[len(sealed)-gcmTagSize:]
	j0 := make([]byte, BlockSize)
	copy(j0, nonce)
	j0[15] = 1
	s := g.ghash(aad, ct, lenBlock(len(aad), len(ct)))
	var ek0 [BlockSize]byte
	g.c.Encrypt(ek0[:], j0)
	var diff byte
	for i := 0; i < gcmTagSize; i++ {
		diff |= tag[i] ^ s[i] ^ ek0[i]
	}
	if diff != 0 {
		return nil, fmt.Errorf("aes: GCM authentication failed")
	}
	pt := make([]byte, len(ct))
	g.gctr(pt, ct, j0, 2)
	return pt, nil
}
