// Package aes implements AES-128/192/256 from first principles on top of
// Galois-field arithmetic (repro/internal/gf), the way the paper maps it
// onto the GF processor: the S-box is the GF(2^8) multiplicative inverse
// followed by an affine transform (no lookup table is mathematically
// required), and MixColumns/InvMixColumns are inner products in
// GF(2^8)/x^8+x^4+x^3+x+1.
//
// The implementation is validated against the standard library crypto/aes
// and the FIPS-197 vectors in the tests. It is a reference/teaching
// implementation of the paper's datapath, not a constant-time production
// cipher.
//
// Concurrency: a *Cipher is immutable once NewCipher has expanded the
// key schedule, and a *GCM is immutable once NewGCM has derived the
// GHASH subkey; Encrypt, Decrypt, Seal and Open keep all per-call state
// in locals (the package-level sbox tables are written only at init).
// One shared instance may therefore be used from many goroutines
// concurrently, as the repro/internal/pipeline worker pools do; the
// CTR/CBC helpers in modes.go take the IV per call and are equally safe
// as long as callers pass distinct dst buffers.
package aes

import (
	"fmt"

	"repro/internal/gf"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// Field returns the AES Galois field GF(2^8)/x^8+x^4+x^3+x+1.
func Field() *gf.Field { return aesField }

var aesField = gf.AES()

// sbox/invSbox are derived — not transcribed — from the field inverse and
// affine transform at package init, mirroring the paper's claim that the
// S-box "is realized directly with the multiplicative inverse operation".
var sbox, invSbox [256]byte

func init() {
	for x := 0; x < 256; x++ {
		s := SubByteComputed(byte(x))
		sbox[x] = s
		invSbox[s] = byte(x)
	}
}

// SubByteComputed evaluates the AES S-box arithmetically:
// inverse in GF(2^8) (with 0 -> 0), then the FIPS-197 affine transform.
func SubByteComputed(x byte) byte {
	var inv byte
	if x != 0 {
		inv = byte(aesField.Inv(gf.Elem(x)))
	}
	return affine(inv)
}

// InvSubByteComputed evaluates the inverse S-box arithmetically: inverse
// affine transform, then GF(2^8) inversion.
func InvSubByteComputed(x byte) byte {
	y := invAffine(x)
	if y == 0 {
		return 0
	}
	return byte(aesField.Inv(gf.Elem(y)))
}

// affine applies b_i = a_i ^ a_{i+4} ^ a_{i+5} ^ a_{i+6} ^ a_{i+7} ^ c_i
// (indices mod 8) with c = 0x63.
func affine(a byte) byte {
	var b byte
	for i := 0; i < 8; i++ {
		bit := (a>>i ^ a>>((i+4)%8) ^ a>>((i+5)%8) ^ a>>((i+6)%8) ^ a>>((i+7)%8)) & 1
		b |= bit << i
	}
	return b ^ 0x63
}

// invAffine inverts affine: a_i = b_{i+2} ^ b_{i+5} ^ b_{i+7} ^ d_i with
// d = 0x05.
func invAffine(b byte) byte {
	var a byte
	for i := 0; i < 8; i++ {
		bit := (b>>((i+2)%8) ^ b>>((i+5)%8) ^ b>>((i+7)%8)) & 1
		a |= bit << i
	}
	return a ^ 0x05
}

// Cipher is an AES cipher with an expanded key schedule.
type Cipher struct {
	rounds int      // 10, 12 or 14
	enc    [][]byte // rounds+1 round keys of 16 bytes, encryption order
}

// NewCipher creates an AES cipher for a 16-, 24- or 32-byte key.
func NewCipher(key []byte) (*Cipher, error) {
	var rounds int
	switch len(key) {
	case 16:
		rounds = 10
	case 24:
		rounds = 12
	case 32:
		rounds = 14
	default:
		return nil, fmt.Errorf("aes: invalid key size %d", len(key))
	}
	c := &Cipher{rounds: rounds}
	c.enc = expandKey(key, rounds)
	return c, nil
}

// Rounds returns the number of rounds (10, 12 or 14).
func (c *Cipher) Rounds() int { return c.rounds }

// RoundKey returns round key r (0..rounds) as 16 bytes.
func (c *Cipher) RoundKey(r int) []byte { return append([]byte(nil), c.enc[r]...) }

// expandKey performs the FIPS-197 key expansion. The RotWord/SubWord step
// is the "vectorizable with 4 (a row)" kernel of the paper's Table 5.
func expandKey(key []byte, rounds int) [][]byte {
	nk := len(key) / 4
	nw := 4 * (rounds + 1)
	w := make([][4]byte, nw)
	for i := 0; i < nk; i++ {
		copy(w[i][:], key[4*i:4*i+4])
	}
	rcon := byte(1)
	for i := nk; i < nw; i++ {
		t := w[i-1]
		if i%nk == 0 {
			// RotWord + SubWord + Rcon
			t = [4]byte{sbox[t[1]], sbox[t[2]], sbox[t[3]], sbox[t[0]]}
			t[0] ^= rcon
			rcon = Xtime(rcon)
		} else if nk > 6 && i%nk == 4 {
			t = [4]byte{sbox[t[0]], sbox[t[1]], sbox[t[2]], sbox[t[3]]}
		}
		for j := 0; j < 4; j++ {
			w[i][j] = w[i-nk][j] ^ t[j]
		}
	}
	keys := make([][]byte, rounds+1)
	for r := range keys {
		k := make([]byte, 16)
		for c := 0; c < 4; c++ {
			copy(k[4*c:], w[4*r+c][:])
		}
		keys[r] = k
	}
	return keys
}

// State is the 4x4 AES state. state[r][c] follows FIPS-197: byte i of the
// input maps to state[i%4][i/4] (column-major).
type State [4][4]byte

// LoadState fills a state from a 16-byte block.
func LoadState(block []byte) State {
	var s State
	for i := 0; i < 16; i++ {
		s[i%4][i/4] = block[i]
	}
	return s
}

// Bytes serializes the state back to a 16-byte block.
func (s State) Bytes() []byte {
	out := make([]byte, 16)
	for i := 0; i < 16; i++ {
		out[i] = s[i%4][i/4]
	}
	return out
}

// AddRoundKey XORs the round key into the state — pure GF addition,
// "vectorizable with 16 independent state bytes" (Table 5).
func AddRoundKey(s *State, rk []byte) {
	for i := 0; i < 16; i++ {
		s[i%4][i/4] ^= rk[i]
	}
}

// SubBytes applies the S-box to every state byte.
func SubBytes(s *State) {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] = sbox[s[r][c]]
		}
	}
}

// InvSubBytes applies the inverse S-box.
func InvSubBytes(s *State) {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] = invSbox[s[r][c]]
		}
	}
}

// ShiftRows rotates row r left by r — the nonvectorizable data movement of
// Table 5.
func ShiftRows(s *State) {
	for r := 1; r < 4; r++ {
		var tmp [4]byte
		for c := 0; c < 4; c++ {
			tmp[c] = s[r][(c+r)%4]
		}
		s[r] = tmp
	}
}

// InvShiftRows rotates row r right by r.
func InvShiftRows(s *State) {
	for r := 1; r < 4; r++ {
		var tmp [4]byte
		for c := 0; c < 4; c++ {
			tmp[(c+r)%4] = s[r][c]
		}
		s[r] = tmp
	}
}

// mixColCoeff and invMixColCoeff are the circulant first rows of the
// MixColumns matrices. The paper highlights that MixCol's {02,03,01,01}
// admits shift/xor tricks on a CPU while InvMixCol's {0E,0B,0D,09} does
// not — but a GF multiplier is agnostic to the coefficient values.
var (
	mixColCoeff    = [4]byte{0x02, 0x03, 0x01, 0x01}
	invMixColCoeff = [4]byte{0x0E, 0x0B, 0x0D, 0x09}
)

// mixT/invMixT hold the four mul-by-coefficient rows of the (inverse)
// MixColumns matrices, derived at init from the field's bulk kernels:
// mixT[i][x] = coeff[i] * x. One table lookup per product replaces
// Field.Mul's two lookups plus branch in the block cipher's hottest
// non-S-box step — the software image of feeding the paper's wide GF
// multiplier with constant operands. The derivation goes through the
// kernel tier dispatch (docs/GF.md), so whichever tier serves it, the
// differential selftest guarantees identical tables; the per-block hot
// path below is tier-independent from then on.
var mixT, invMixT [4][256]byte

func init() {
	k := aesField.Kernels()
	src := make([]gf.Elem, 256)
	for x := range src {
		src[x] = gf.Elem(x)
	}
	row := make([]gf.Elem, 256)
	for i := 0; i < 4; i++ {
		k.MulConstSlice(row, src, gf.Elem(mixColCoeff[i]))
		for x, v := range row {
			mixT[i][x] = byte(v)
		}
		k.MulConstSlice(row, src, gf.Elem(invMixColCoeff[i]))
		for x, v := range row {
			invMixT[i][x] = byte(v)
		}
	}
}

// Xtime multiplies by x (0x02) in the AES field — the doubling primitive
// classic byte-sliced AES implementations build MixColumns from.
func Xtime(b byte) byte { return mixT[0][b] }

// MixColumns multiplies each state column by the MixColumns matrix in
// GF(2^8) — 4 independent 4x4 GF matrix-vector products (Table 5),
// table-driven via the precomputed coefficient rows.
func MixColumns(s *State) { mixWith(s, &mixT) }

// InvMixColumns applies the inverse matrix.
func InvMixColumns(s *State) { mixWith(s, &invMixT) }

// mixWith applies the circulant matrix whose mul-by-coefficient rows are
// t: out[r] = sum_i t[(i-r+4)%4][col[i]], fully unrolled per column.
func mixWith(s *State, t *[4][256]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		s[0][c] = t[0][a0] ^ t[1][a1] ^ t[2][a2] ^ t[3][a3]
		s[1][c] = t[3][a0] ^ t[0][a1] ^ t[1][a2] ^ t[2][a3]
		s[2][c] = t[2][a0] ^ t[3][a1] ^ t[0][a2] ^ t[1][a3]
		s[3][c] = t[1][a0] ^ t[2][a1] ^ t[3][a2] ^ t[0][a3]
	}
}

// mixWithGF is the arithmetic reference for mixWith: the same circulant
// product evaluated through Field.Mul. Tests assert the table path agrees
// with it for both coefficient sets over all byte values.
func mixWithGF(s *State, coeff [4]byte) {
	for c := 0; c < 4; c++ {
		var col, out [4]byte
		for r := 0; r < 4; r++ {
			col[r] = s[r][c]
		}
		for r := 0; r < 4; r++ {
			var acc gf.Elem
			for i := 0; i < 4; i++ {
				acc ^= aesField.Mul(gf.Elem(coeff[(i-r+4)%4]), gf.Elem(col[i]))
			}
			out[r] = byte(acc)
		}
		for r := 0; r < 4; r++ {
			s[r][c] = out[r]
		}
	}
}

// Encrypt encrypts one 16-byte block: dst = AES(src). dst and src may
// overlap. It panics on short slices like crypto/cipher.Block does.
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: short block")
	}
	s := LoadState(src[:16])
	AddRoundKey(&s, c.enc[0])
	for r := 1; r < c.rounds; r++ {
		SubBytes(&s)
		ShiftRows(&s)
		MixColumns(&s)
		AddRoundKey(&s, c.enc[r])
	}
	SubBytes(&s)
	ShiftRows(&s)
	AddRoundKey(&s, c.enc[c.rounds])
	copy(dst, s.Bytes())
}

// Decrypt decrypts one 16-byte block using the straightforward inverse
// cipher (FIPS-197 Section 5.3).
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: short block")
	}
	s := LoadState(src[:16])
	AddRoundKey(&s, c.enc[c.rounds])
	for r := c.rounds - 1; r >= 1; r-- {
		InvShiftRows(&s)
		InvSubBytes(&s)
		AddRoundKey(&s, c.enc[r])
		InvMixColumns(&s)
	}
	InvShiftRows(&s)
	InvSubBytes(&s)
	AddRoundKey(&s, c.enc[0])
	copy(dst, s.Bytes())
}

// BlockSize makes *Cipher satisfy crypto/cipher.Block.
func (c *Cipher) BlockSize() int { return BlockSize }
