package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"crypto/cipher"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSBoxKnownValues(t *testing.T) {
	// Spot values from the FIPS-197 S-box table.
	known := map[byte]byte{
		0x00: 0x63, 0x01: 0x7C, 0x53: 0xED, 0xFF: 0x16, 0x10: 0xCA, 0xAC: 0x91,
	}
	for in, want := range known {
		if got := SubByteComputed(in); got != want {
			t.Errorf("SBox(%#02x) = %#02x, want %#02x", in, got, want)
		}
	}
}

func TestSBoxInverseRoundTrip(t *testing.T) {
	for x := 0; x < 256; x++ {
		s := SubByteComputed(byte(x))
		if got := InvSubByteComputed(s); got != byte(x) {
			t.Fatalf("InvSBox(SBox(%#02x)) = %#02x", x, got)
		}
	}
}

func TestSBoxIsPermutationWithNoFixedPoints(t *testing.T) {
	seen := map[byte]bool{}
	for x := 0; x < 256; x++ {
		s := SubByteComputed(byte(x))
		if seen[s] {
			t.Fatalf("S-box not injective at %#02x", x)
		}
		seen[s] = true
		if s == byte(x) {
			t.Errorf("S-box fixed point at %#02x", x)
		}
	}
}

func TestFIPS197Appendix(t *testing.T) {
	// FIPS-197 Appendix B (AES-128) and C (128/192/256) vectors.
	cases := []struct{ key, pt, ct string }{
		{"2b7e151628aed2a6abf7158809cf4f3c", "3243f6a8885a308d313198a2e0370734", "3925841d02dc09fbdc118597196a0b32"},
		{"000102030405060708090a0b0c0d0e0f", "00112233445566778899aabbccddeeff", "69c4e0d86a7b0430d8cdb78070b4c55a"},
		{"000102030405060708090a0b0c0d0e0f1011121314151617", "00112233445566778899aabbccddeeff", "dda97ca4864cdfe06eaf70a0ec0d7191"},
		{"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f", "00112233445566778899aabbccddeeff", "8ea2b7ca516745bfeafc49904b496089"},
	}
	for i, c := range cases {
		ci, err := NewCipher(unhex(t, c.key))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		ci.Encrypt(got, unhex(t, c.pt))
		if !bytes.Equal(got, unhex(t, c.ct)) {
			t.Errorf("case %d: ct = %x, want %s", i, got, c.ct)
		}
		back := make([]byte, 16)
		ci.Decrypt(back, got)
		if !bytes.Equal(back, unhex(t, c.pt)) {
			t.Errorf("case %d: decrypt round trip failed", i)
		}
	}
}

func TestAgainstStdlibQuick(t *testing.T) {
	// Property: our GF-based AES matches crypto/aes for random keys and
	// blocks at every key size.
	for _, ks := range []int{16, 24, 32} {
		ks := ks
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			key := make([]byte, ks)
			rng.Read(key)
			pt := make([]byte, 16)
			rng.Read(pt)
			ours, err := NewCipher(key)
			if err != nil {
				return false
			}
			ref, err := stdaes.NewCipher(key)
			if err != nil {
				return false
			}
			a, b := make([]byte, 16), make([]byte, 16)
			ours.Encrypt(a, pt)
			ref.Encrypt(b, pt)
			if !bytes.Equal(a, b) {
				return false
			}
			ours.Decrypt(a, b)
			return bytes.Equal(a, pt)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("key size %d: %v", ks, err)
		}
	}
}

func TestKeySizeValidation(t *testing.T) {
	for _, n := range []int{0, 8, 15, 17, 33} {
		if _, err := NewCipher(make([]byte, n)); err == nil {
			t.Errorf("key size %d accepted", n)
		}
	}
}

func TestShortBlockPanics(t *testing.T) {
	c, _ := NewCipher(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on short block")
		}
	}()
	c.Encrypt(make([]byte, 15), make([]byte, 16))
}

func TestStateRoundTrip(t *testing.T) {
	blk := make([]byte, 16)
	for i := range blk {
		blk[i] = byte(i * 7)
	}
	if !bytes.Equal(LoadState(blk).Bytes(), blk) {
		t.Fatal("state serialization not inverse")
	}
}

func TestShiftRowsInverse(t *testing.T) {
	s := LoadState([]byte("0123456789abcdef"))
	orig := s
	ShiftRows(&s)
	if s == orig {
		t.Fatal("ShiftRows is identity")
	}
	InvShiftRows(&s)
	if s != orig {
		t.Fatal("InvShiftRows does not invert ShiftRows")
	}
}

func TestMixColumnsInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		blk := make([]byte, 16)
		rng.Read(blk)
		s := LoadState(blk)
		orig := s
		MixColumns(&s)
		InvMixColumns(&s)
		if s != orig {
			t.Fatal("InvMixColumns does not invert MixColumns")
		}
	}
}

func TestMixColumnsKnownVector(t *testing.T) {
	// FIPS-197 worked example column: db 13 53 45 -> 8e 4d a1 bc.
	var s State
	s[0][0], s[1][0], s[2][0], s[3][0] = 0xdb, 0x13, 0x53, 0x45
	MixColumns(&s)
	want := [4]byte{0x8e, 0x4d, 0xa1, 0xbc}
	for r := 0; r < 4; r++ {
		if s[r][0] != want[r] {
			t.Fatalf("MixColumns row %d = %#02x, want %#02x", r, s[r][0], want[r])
		}
	}
}

func TestKeyExpansionFIPS(t *testing.T) {
	// FIPS-197 A.1: last round key of the 2b7e... AES-128 key schedule.
	c, _ := NewCipher(unhex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	last := c.RoundKey(10)
	want := unhex(t, "d014f9a8c9ee2589e13f0cc8b6630ca6")
	if !bytes.Equal(last, want) {
		t.Fatalf("round key 10 = %x, want %x", last, want)
	}
	if c.Rounds() != 10 {
		t.Fatal("AES-128 rounds != 10")
	}
}

func TestCTRMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	key := make([]byte, 16)
	iv := make([]byte, 16)
	rng.Read(key)
	rng.Read(iv)
	msg := make([]byte, 100) // deliberately not block aligned
	rng.Read(msg)

	ours, _ := NewCipher(key)
	got := make([]byte, len(msg))
	if err := ours.EncryptCTR(got, msg, iv); err != nil {
		t.Fatal(err)
	}

	ref, _ := stdaes.NewCipher(key)
	want := make([]byte, len(msg))
	cipher.NewCTR(ref, iv).XORKeyStream(want, msg)
	if !bytes.Equal(got, want) {
		t.Fatal("CTR output differs from crypto/cipher")
	}
	// CTR is its own inverse.
	back := make([]byte, len(msg))
	if err := ours.EncryptCTR(back, got, iv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, msg) {
		t.Fatal("CTR round trip failed")
	}
}

func TestCTRCounterOverflow(t *testing.T) {
	key := make([]byte, 16)
	iv := bytes.Repeat([]byte{0xFF}, 16) // counter wraps immediately
	ours, _ := NewCipher(key)
	ref, _ := stdaes.NewCipher(key)
	msg := make([]byte, 64)
	got := make([]byte, 64)
	want := make([]byte, 64)
	if err := ours.EncryptCTR(got, msg, iv); err != nil {
		t.Fatal(err)
	}
	cipher.NewCTR(ref, iv).XORKeyStream(want, msg)
	if !bytes.Equal(got, want) {
		t.Fatal("CTR wrap-around differs from crypto/cipher")
	}
}

func TestCBCMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	key := make([]byte, 32)
	iv := make([]byte, 16)
	rng.Read(key)
	rng.Read(iv)
	msg := make([]byte, 96)
	rng.Read(msg)

	ours, _ := NewCipher(key)
	got := make([]byte, len(msg))
	if err := ours.EncryptCBC(got, msg, iv); err != nil {
		t.Fatal(err)
	}
	ref, _ := stdaes.NewCipher(key)
	want := make([]byte, len(msg))
	cipher.NewCBCEncrypter(ref, iv).CryptBlocks(want, msg)
	if !bytes.Equal(got, want) {
		t.Fatal("CBC encrypt differs from crypto/cipher")
	}
	back := make([]byte, len(msg))
	if err := ours.DecryptCBC(back, got, iv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, msg) {
		t.Fatal("CBC round trip failed")
	}
}

func TestModeValidation(t *testing.T) {
	c, _ := NewCipher(make([]byte, 16))
	buf := make([]byte, 32)
	if err := c.EncryptCTR(buf, buf, make([]byte, 8)); err == nil {
		t.Error("short CTR iv accepted")
	}
	if err := c.EncryptCBC(buf, buf[:20], make([]byte, 16)); err == nil {
		t.Error("unaligned CBC plaintext accepted")
	}
	if err := c.DecryptCBC(buf, buf[:20], make([]byte, 16)); err == nil {
		t.Error("unaligned CBC ciphertext accepted")
	}
	if err := c.EncryptCBC(buf[:16], buf, make([]byte, 16)); err == nil {
		t.Error("short CBC dst accepted")
	}
}

func TestDecryptIsLeftInverseQuick(t *testing.T) {
	c, _ := NewCipher([]byte("0123456789abcdef"))
	prop := func(blk [16]byte) bool {
		ct := make([]byte, 16)
		pt := make([]byte, 16)
		c.Encrypt(ct, blk[:])
		c.Decrypt(pt, ct)
		return bytes.Equal(pt, blk[:])
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
