package aes

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
)

// TestConcurrentCipherAndGCM exercises one shared *Cipher and one shared
// *GCM from many goroutines — with -race this proves the documented
// contract that both are immutable after construction (the expanded key
// schedule and the GHASH subkey are read-only; all per-call state lives
// on the stack).
func TestConcurrentCipherAndGCM(t *testing.T) {
	c, err := NewCipher([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	g := c.NewGCM()
	aad := []byte("header")

	const goroutines = 8
	const iters = 50
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for gid := 0; gid < goroutines; gid++ {
		go func(gid int) {
			defer wg.Done()
			var blk, out, back [BlockSize]byte
			nonce := make([]byte, 12)
			pt := make([]byte, 64)
			for it := 0; it < iters; it++ {
				// Block round trip.
				binary.BigEndian.PutUint64(blk[:], uint64(gid))
				binary.BigEndian.PutUint64(blk[8:], uint64(it))
				c.Encrypt(out[:], blk[:])
				c.Decrypt(back[:], out[:])
				if back != blk {
					t.Errorf("goroutine %d iter %d: block round trip failed", gid, it)
					return
				}
				// GCM round trip with per-call nonce and payload.
				binary.BigEndian.PutUint64(nonce[4:], uint64(gid*1000+it))
				for i := range pt {
					pt[i] = byte(gid + it + i)
				}
				sealed, err := g.Seal(nonce, pt, aad)
				if err != nil {
					t.Errorf("seal: %v", err)
					return
				}
				opened, err := g.Open(nonce, sealed, aad)
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				if !bytes.Equal(opened, pt) {
					t.Errorf("goroutine %d iter %d: GCM round trip mismatch", gid, it)
					return
				}
			}
		}(gid)
	}
	wg.Wait()
}
