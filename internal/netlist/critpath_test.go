package netlist

import (
	"math"
	"testing"
)

func TestInverseCritPathDerivesTable10(t *testing.T) {
	// Derivation: ITA for m=8 is 4 serial multiplications + 7 serial
	// squarings (Fig. 6). With the netlist depths (multiplier 8 levels,
	// square 4 levels) and the Table 3 calibration (multiplier = 0.4 ns),
	// the inverse path should land on Table 10's 2.91 ns within ~10%.
	got := InverseCritPathNs(8)
	if math.Abs(got-2.91)/2.91 > 0.10 {
		t.Errorf("derived inverse critical path = %.2f ns, paper 2.91 ns", got)
	}
	t.Logf("derived m=8 inverse critical path: %.2f ns (paper: 2.91 ns)", got)
}

func TestInverseCritPathMonotoneInM(t *testing.T) {
	prev := 0.0
	for m := 3; m <= 8; m++ {
		ns := InverseCritPathNs(m)
		if ns <= 0 {
			t.Fatalf("m=%d: nonpositive path", m)
		}
		if ns < prev*0.8 { // allow small non-monotonicity from chain shapes
			t.Errorf("m=%d: path %.2f much shorter than m=%d's %.2f", m, ns, m-1, prev)
		}
		prev = ns
	}
	// All supported widths must meet the paper's 300 MHz max clock.
	for m := 2; m <= 8; m++ {
		if ns := InverseCritPathNs(m); ns > 1000.0/300 {
			t.Errorf("m=%d inverse path %.2f ns misses 300 MHz", m, ns)
		}
	}
}

func TestGateDelayCalibration(t *testing.T) {
	d := GateDelayNs()
	if d < 0.03 || d > 0.08 {
		t.Errorf("gate delay %.3f ns implausible for 28 nm", d)
	}
	// The square primitive at this calibration should land near its
	// Table 3 figure of 0.2 ns.
	sqNs := float64(NewSquare(8).Depth()) * d
	if math.Abs(sqNs-0.2) > 0.06 {
		t.Errorf("square path %.2f ns, Table 3 says 0.2", sqNs)
	}
}
