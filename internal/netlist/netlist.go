// Package netlist builds gate-level combinational netlists for the GF
// arithmetic primitives of Section 2.4 — the closest software analogue of
// the paper's RTL. The compact multiplier is constructed exactly as
// Fig. 5 describes: an AND-array carryless multiplier with XOR
// accumulation trees feeding a programmable reduction stage whose matrix
// P arrives on configuration inputs. Gate counts are *derived* from the
// construction and must land exactly on the paper's Table 2 closed forms
// (AND = 2m^2 - m, XOR = 2m^2 - 3m + 1), and simulation of the netlist
// must agree bit-for-bit with the reference field arithmetic — both are
// enforced by the tests.
package netlist

import (
	"fmt"

	"repro/internal/gf"
)

// Kind enumerates gate types.
type Kind uint8

// Gate kinds.
const (
	Input Kind = iota // primary input
	Zero              // constant 0
	And
	Xor
)

// gate is one node; operands index earlier gates (topological by
// construction).
type gate struct {
	kind Kind
	a, b int32
}

// Circuit is a combinational netlist. Build inputs first, then gates;
// evaluation is a single topological pass.
type Circuit struct {
	gates   []gate
	nInputs int
	outputs []int32
}

// New returns an empty circuit with one constant-zero node.
func New() *Circuit {
	return &Circuit{gates: []gate{{kind: Zero}}}
}

// ZeroWire returns the constant-0 node.
func (c *Circuit) ZeroWire() int32 { return 0 }

// AddInput appends a primary input and returns its wire.
func (c *Circuit) AddInput() int32 {
	c.gates = append(c.gates, gate{kind: Input, a: int32(c.nInputs)})
	c.nInputs++
	return int32(len(c.gates) - 1)
}

// And appends an AND gate.
func (c *Circuit) And(a, b int32) int32 {
	c.gates = append(c.gates, gate{kind: And, a: a, b: b})
	return int32(len(c.gates) - 1)
}

// Xor appends an XOR gate.
func (c *Circuit) Xor(a, b int32) int32 {
	c.gates = append(c.gates, gate{kind: Xor, a: a, b: b})
	return int32(len(c.gates) - 1)
}

// XorTree reduces wires with a balanced XOR tree (no gates for 0/1 wires).
func (c *Circuit) XorTree(wires []int32) int32 {
	switch len(wires) {
	case 0:
		return c.ZeroWire()
	case 1:
		return wires[0]
	}
	mid := len(wires) / 2
	return c.Xor(c.XorTree(wires[:mid]), c.XorTree(wires[mid:]))
}

// SetOutputs registers the output wires.
func (c *Circuit) SetOutputs(outs []int32) { c.outputs = append([]int32(nil), outs...) }

// NumInputs returns the primary-input count.
func (c *Circuit) NumInputs() int { return c.nInputs }

// Count returns the number of gates of the given kind.
func (c *Circuit) Count(k Kind) int {
	n := 0
	for _, g := range c.gates {
		if g.kind == k {
			n++
		}
	}
	return n
}

// Depth returns the critical path in gate levels (inputs/constants = 0).
func (c *Circuit) Depth() int {
	depth := make([]int, len(c.gates))
	max := 0
	for i, g := range c.gates {
		switch g.kind {
		case And, Xor:
			d := depth[g.a]
			if depth[g.b] > d {
				d = depth[g.b]
			}
			depth[i] = d + 1
			if depth[i] > max {
				max = depth[i]
			}
		}
	}
	return max
}

// Eval simulates the netlist for the given input bits.
func (c *Circuit) Eval(inputs []bool) ([]bool, error) {
	if len(inputs) != c.nInputs {
		return nil, fmt.Errorf("netlist: %d inputs, circuit has %d", len(inputs), c.nInputs)
	}
	val := make([]bool, len(c.gates))
	for i, g := range c.gates {
		switch g.kind {
		case Zero:
			val[i] = false
		case Input:
			val[i] = inputs[g.a]
		case And:
			val[i] = val[g.a] && val[g.b]
		case Xor:
			val[i] = val[g.a] != val[g.b]
		}
	}
	out := make([]bool, len(c.outputs))
	for i, w := range c.outputs {
		out[i] = val[w]
	}
	return out, nil
}

// Multiplier is the compact GF multiplier netlist: inputs a[0..m-1],
// b[0..m-1] and the programmable reduction matrix p[i][j] (m-1 rows of m
// bits from the configuration register); outputs the m-bit product.
type Multiplier struct {
	*Circuit
	m        int
	aIn, bIn []int32
	pIn      [][]int32 // [m-1][m] configuration inputs
}

// NewMultiplier constructs the degree-m compact multiplier
// (Section 2.4.1, Fig. 5a). Gate counts land exactly on Table 2:
// AND = 2m^2 - m, XOR = 2m^2 - 3m + 1.
func NewMultiplier(m int) *Multiplier {
	c := New()
	mu := &Multiplier{Circuit: c, m: m}
	for i := 0; i < m; i++ {
		mu.aIn = append(mu.aIn, c.AddInput())
	}
	for i := 0; i < m; i++ {
		mu.bIn = append(mu.bIn, c.AddInput())
	}
	for i := 0; i < m-1; i++ {
		row := make([]int32, m)
		for j := 0; j < m; j++ {
			row[j] = c.AddInput()
		}
		mu.pIn = append(mu.pIn, row)
	}
	// Stage 1: carryless multiplier. m^2 ANDs; XOR trees per product
	// column ((m-1)^2 XORs total).
	full := make([]int32, 2*m-1)
	for k := range full {
		var terms []int32
		for i := 0; i < m; i++ {
			j := k - i
			if j < 0 || j >= m {
				continue
			}
			terms = append(terms, c.And(mu.aIn[i], mu.bIn[j]))
		}
		full[k] = c.XorTree(terms)
	}
	// Stage 2: programmable linear-transform reduction. The high product
	// bits c_{m+i} select row i of P: out_j = c_j XOR sum_i (c_{m+i} AND
	// p[i][j]). m(m-1) ANDs; m(m-1) XORs.
	outs := make([]int32, m)
	for j := 0; j < m; j++ {
		terms := []int32{full[j]}
		for i := 0; i < m-1; i++ {
			terms = append(terms, c.And(full[m+i], mu.pIn[i][j]))
		}
		outs[j] = c.XorTree(terms) // balanced, like the synthesized XOR tree
	}
	c.SetOutputs(outs)
	return mu
}

// Square is the square-primitive netlist: the full product is pure
// wiring (bit spreading, Fig. 5c), so only the reduction stage costs
// gates — the reason the square unit is ~3x smaller (Table 3).
type Square struct {
	*Circuit
	m   int
	aIn []int32
	pIn [][]int32
}

// NewSquare constructs the degree-m square primitive.
func NewSquare(m int) *Square {
	c := New()
	s := &Square{Circuit: c, m: m}
	for i := 0; i < m; i++ {
		s.aIn = append(s.aIn, c.AddInput())
	}
	for i := 0; i < m-1; i++ {
		row := make([]int32, m)
		for j := 0; j < m; j++ {
			row[j] = c.AddInput()
		}
		s.pIn = append(s.pIn, row)
	}
	// Spread wiring: full[2i] = a[i], odd positions constant 0.
	full := make([]int32, 2*m-1)
	for k := range full {
		if k%2 == 0 {
			full[k] = s.aIn[k/2]
		} else {
			full[k] = c.ZeroWire()
		}
	}
	outs := make([]int32, m)
	for j := 0; j < m; j++ {
		terms := []int32{full[j]}
		for i := 0; i < m-1; i++ {
			// Odd spread positions are constant zero; skip their gates
			// (hardware prunes them too).
			if (m+i)%2 == 1 {
				continue
			}
			terms = append(terms, c.And(full[m+i], s.pIn[i][j]))
		}
		outs[j] = c.XorTree(terms)
	}
	c.SetOutputs(outs)
	return s
}

// bitsOf unpacks the low n bits of v, LSB first.
func bitsOf(v uint32, n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = v>>i&1 == 1
	}
	return out
}

// packBits reverses bitsOf.
func packBits(bits []bool) uint32 {
	var v uint32
	for i, b := range bits {
		if b {
			v |= 1 << i
		}
	}
	return v
}

// configBits flattens the reduction matrix of poly into the P inputs'
// order (row-major).
func configBits(poly uint32, m int) []bool {
	rows := gf.ReductionMatrix(poly)
	var out []bool
	for _, r := range rows {
		out = append(out, bitsOf(r, m)...)
	}
	return out
}

// Mul evaluates the multiplier netlist for field elements a, b under the
// polynomial configuration.
func (mu *Multiplier) Mul(poly uint32, a, b uint32) (uint32, error) {
	in := append(bitsOf(a, mu.m), bitsOf(b, mu.m)...)
	in = append(in, configBits(poly, mu.m)...)
	out, err := mu.Eval(in)
	if err != nil {
		return 0, err
	}
	return packBits(out), nil
}

// Sqr evaluates the square netlist.
func (s *Square) Sqr(poly uint32, a uint32) (uint32, error) {
	in := append(bitsOf(a, s.m), configBits(poly, s.m)...)
	out, err := s.Eval(in)
	if err != nil {
		return 0, err
	}
	return packBits(out), nil
}
