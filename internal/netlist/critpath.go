package netlist

import "repro/internal/gf"

// Critical-path modeling. The single-cycle SIMD inverse wires the
// Itoh-Tsujii chain combinationally (Fig. 6), so its delay is the SERIAL
// depth of the chain's multipliers and squares. Calibrating one gate
// level against the paper's 0.4 ns multiplier (Table 3) lets the
// inverse's critical path be *derived* — and it lands on the paper's
// 2.91 ns (Table 10) within a few percent, a strong consistency check
// between Table 3, Fig. 6 and Table 10.

// ITAChainLevels returns the gate-level depth of the combinational
// Itoh-Tsujii inverse for degree m: the chain's multiplications and
// squarings in series, using the actual netlist depths.
func ITAChainLevels(m int) int {
	f := gf.MustDefault(m)
	_, tr := f.InvITAOps(1) // chain structure is input-independent
	return tr.Muls*NewMultiplier(m).Depth() + tr.Squares*NewSquare(m).Depth()
}

// GateDelayNs calibrates the per-level delay from the paper's Table 3
// multiplier (0.4 ns critical path).
func GateDelayNs() float64 {
	return 0.4 / float64(NewMultiplier(8).Depth())
}

// InverseCritPathNs estimates the single-cycle inverse instruction's
// critical path for degree m — the paper reports 2.91 ns for the m=8
// datapath (Table 10).
func InverseCritPathNs(m int) float64 {
	return float64(ITAChainLevels(m)) * GateDelayNs()
}
