package netlist

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
	"repro/internal/hwmodel"
)

func TestMultiplierGateCountsMatchTable2Exactly(t *testing.T) {
	// The construction must land exactly on the paper's closed forms:
	// AND = 2m^2 - m, XOR = 2m^2 - 3m + 1 (Table 2, "this work" column).
	for m := 2; m <= 8; m++ {
		mu := NewMultiplier(m)
		wantAND := 2*m*m - m
		wantXOR := 2*m*m - 3*m + 1
		if got := mu.Count(And); got != wantAND {
			t.Errorf("m=%d: AND gates = %d, want %d", m, got, wantAND)
		}
		if got := mu.Count(Xor); got != wantXOR {
			t.Errorf("m=%d: XOR gates = %d, want %d", m, got, wantXOR)
		}
		// Cross-check against the hwmodel formulas.
		hw := hwmodel.CompactMultiplier(m)
		if mu.Count(And) != hw.AND || mu.Count(Xor) != hw.XOR {
			t.Errorf("m=%d: netlist (%d,%d) != hwmodel (%d,%d)",
				m, mu.Count(And), mu.Count(Xor), hw.AND, hw.XOR)
		}
	}
}

func TestMultiplierNetlistMatchesFieldExhaustively(t *testing.T) {
	// The gate-level multiplier must agree with the reference field for
	// every operand pair of every irreducible polynomial, m = 2..6
	// exhaustively (m = 7, 8 sampled below).
	for m := 2; m <= 6; m++ {
		mu := NewMultiplier(m)
		for _, poly := range gf.IrreduciblePolys(m) {
			f := gf.MustNew(m, poly)
			for a := 0; a < 1<<m; a++ {
				for b := 0; b <= a; b++ {
					got, err := mu.Mul(poly, uint32(a), uint32(b))
					if err != nil {
						t.Fatal(err)
					}
					want := uint32(f.Mul(gf.Elem(a), gf.Elem(b)))
					if got != want {
						t.Fatalf("m=%d poly=%#x: netlist %#x*%#x = %#x, want %#x",
							m, poly, a, b, got, want)
					}
				}
			}
		}
	}
}

func TestMultiplierNetlistSampled8(t *testing.T) {
	mu := NewMultiplier(8)
	rng := rand.New(rand.NewSource(1))
	for _, poly := range []uint32{0x11B, 0x11D, 0x187} {
		f := gf.MustNew(8, poly)
		for trial := 0; trial < 300; trial++ {
			a := uint32(rng.Intn(256))
			b := uint32(rng.Intn(256))
			got, err := mu.Mul(poly, a, b)
			if err != nil {
				t.Fatal(err)
			}
			if got != uint32(f.Mul(gf.Elem(a), gf.Elem(b))) {
				t.Fatalf("poly=%#x: %#x*%#x", poly, a, b)
			}
		}
	}
}

func TestSquareNetlistMatchesField(t *testing.T) {
	for m := 2; m <= 8; m++ {
		s := NewSquare(m)
		for _, poly := range gf.IrreduciblePolys(m) {
			f := gf.MustNew(m, poly)
			for a := 0; a < 1<<m; a++ {
				got, err := s.Sqr(poly, uint32(a))
				if err != nil {
					t.Fatal(err)
				}
				if got != uint32(f.Sqr(gf.Elem(a))) {
					t.Fatalf("m=%d poly=%#x: sqr(%#x) = %#x, want %#x",
						m, poly, a, got, f.Sqr(gf.Elem(a)))
				}
			}
		}
	}
}

func TestSquareIsMuchSmallerAndShallower(t *testing.T) {
	// Table 3's structural claims: the square primitive is ~3x smaller
	// (263 vs 73 cells) and ~2x faster (0.4 vs 0.2 ns) than the
	// multiplier. Check both fall out of the netlists for m = 8.
	mu := NewMultiplier(8)
	sq := NewSquare(8)
	muGates := mu.Count(And) + mu.Count(Xor)
	sqGates := sq.Count(And) + sq.Count(Xor)
	ratio := float64(muGates) / float64(sqGates)
	if ratio < 2.5 || ratio > 4.5 {
		t.Errorf("gate ratio mult/square = %.2f (%d vs %d), want ~3",
			ratio, muGates, sqGates)
	}
	if sq.Depth() >= mu.Depth() {
		t.Errorf("square depth %d not shallower than multiplier depth %d",
			sq.Depth(), mu.Depth())
	}
	t.Logf("m=8 netlists: multiplier %d gates depth %d; square %d gates depth %d",
		muGates, mu.Depth(), sqGates, sq.Depth())
}

func TestCircuitPrimitives(t *testing.T) {
	c := New()
	a := c.AddInput()
	b := c.AddInput()
	c.SetOutputs([]int32{c.Xor(c.And(a, b), c.ZeroWire())})
	out, err := c.Eval([]bool{true, true})
	if err != nil || !out[0] {
		t.Fatal("1 AND 1 != 1")
	}
	out, _ = c.Eval([]bool{true, false})
	if out[0] {
		t.Fatal("1 AND 0 != 0")
	}
	if _, err := c.Eval([]bool{true}); err == nil {
		t.Fatal("wrong input count accepted")
	}
	if c.NumInputs() != 2 {
		t.Fatal("input count wrong")
	}
	if c.XorTree(nil) != c.ZeroWire() {
		t.Fatal("empty xor tree not zero")
	}
}

func TestDepthIsLogarithmicInM(t *testing.T) {
	// Balanced XOR trees keep the carryless stage at ~log2(m) levels; the
	// whole multiplier should stay in single-digit depth for m <= 8 —
	// consistent with a 0.4 ns critical path.
	if d := NewMultiplier(8).Depth(); d > 10 {
		t.Errorf("m=8 multiplier depth %d too deep", d)
	}
}
