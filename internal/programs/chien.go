package programs

import (
	"fmt"
	"strings"

	"repro/internal/gf"
	"repro/internal/gfpoly"
)

// ChienSIMD generates the Chien-search kernel: the error-locator
// polynomial lambda (degree <= 4, coefficients splatted into registers)
// is evaluated by Horner's rule at four candidate locators per pass —
// "explicit vectorizable with 2^m independent elements" (Table 5). The
// packed evaluations are stored at the `out` label, one word per group
// of four positions; a zero lane marks a root (an error location).
//
// Position group g, lane l evaluates lambda at alpha^-(4g+l); the x
// vectors are precomputed into data memory (the hardware equivalent is a
// gfmul by the alpha^-4 splat per iteration).
func ChienSIMD(f *gf.Field, lambda gfpoly.Poly, n int) (string, error) {
	nu := lambda.Degree()
	if nu < 1 || nu > 4 {
		return "", fmt.Errorf("programs: Chien kernel supports locator degree 1..4, got %d", nu)
	}
	groups := (n + 3) / 4
	var sb strings.Builder
	sb.WriteString("; Chien search: 4 locator candidates per SIMD pass\n")
	fmt.Fprintf(&sb, "\tmovi r10, =field\n\tgfconf r10\n")
	sb.WriteString("\tmovi r0, =xtab\n\tmovi r9, =out\n\tmovi r1, #0\n")
	// Splat the coefficients c_nu .. c_0 into r4..r8 (c_0 first in r4).
	for i := 0; i <= nu; i++ {
		c := uint32(lambda.Coeff(i))
		c |= c<<8 | c<<16 | c<<24
		fmt.Fprintf(&sb, "\tmovi r%d, #0x%04x\n\tmovhi r%d, #0x%04x\n", 4+i, c&0xFFFF, 4+i, c>>16)
	}
	fmt.Fprintf(&sb, `loop:
	lsli r10, r1, #2
	ldrr r3, [r0, r10]   ; packed x = alpha^-(4g+l)
	mov r2, r%d          ; acc = c_nu
`, 4+nu)
	for i := nu - 1; i >= 0; i-- {
		fmt.Fprintf(&sb, "\tgfmul r2, r2, r3\n\tgfadd r2, r2, r%d\n", 4+i)
	}
	fmt.Fprintf(&sb, `	lsli r10, r1, #2
	strr r2, [r9, r10]   ; store packed evaluations
	addi r1, r1, #1
	cmpi r1, #%d
	blt loop
	halt
.data
field:
	.word 0x%x
xtab:
`, groups, f.Poly())
	for g := 0; g < groups; g++ {
		var w uint32
		for l := 0; l < 4; l++ {
			p := 4*g + l
			if p < n {
				w |= uint32(f.AlphaPow(-p)) << (8 * l)
			}
		}
		fmt.Fprintf(&sb, "\t.word 0x%08x\n", w)
	}
	fmt.Fprintf(&sb, "out:\n\t.space %d\n", 4*groups)
	return sb.String(), nil
}

// ChienRoots decodes the out-words of a ChienSIMD run into codeword
// error positions (index 0 transmitted first), matching the convention
// of rs.Code.ChienSearch.
func ChienRoots(outWords []uint32, n int) []int {
	var pos []int
	for g, w := range outWords {
		for l := 0; l < 4; l++ {
			p := 4*g + l
			if p >= n {
				break
			}
			if w>>(8*l)&0xFF == 0 {
				pos = append(pos, n-1-p)
			}
		}
	}
	return pos
}
