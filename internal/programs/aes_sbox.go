package programs

import (
	"fmt"
	"strings"
)

// AESSubBytes generates a program that applies the AES S-box (or its
// inverse) to a 16-byte state with four gfMultInv_simd instructions —
// the paper's "S-box realized directly with the multiplicative inverse
// operation". The configuration word selects the affine output stage
// (core.AffineAES / core.AffineAESInverse). The transformed state is
// written back over the `state` data label.
func AESSubBytes(state []byte, inverse bool) string {
	if len(state) != 16 {
		panic("programs: AES state must be 16 bytes")
	}
	mode := uint32(1) // AffineAES
	if inverse {
		mode = 2 // AffineAESInverse
	}
	cfg := mode<<16 | 0x11B
	var sb strings.Builder
	fmt.Fprintf(&sb, `; AES SubBytes via SIMD multiplicative inverse (affine folded, A1)
	movi r10, =field
	gfconf r10
	movi r1, =state
	ldr r2, [r1, #0]
	ldr r3, [r1, #4]
	ldr r4, [r1, #8]
	ldr r5, [r1, #12]
	gfmulinv r2, r2
	gfmulinv r3, r3
	gfmulinv r4, r4
	gfmulinv r5, r5
	str r2, [r1, #0]
	str r3, [r1, #4]
	str r4, [r1, #8]
	str r5, [r1, #12]
	halt
.data
field:
	.word 0x%x
`, cfg)
	sb.WriteString(byteTable("state", state))
	return sb.String()
}
