package programs

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
	"repro/internal/gfpoly"
	"repro/internal/rs"
)

func TestChienSIMDProgramMatchesReference(t *testing.T) {
	f := gf.MustDefault(8)
	c := rs.Must(f, 255, 239)
	rng := rand.New(rand.NewSource(6))
	msg := make([]gf.Elem, c.K)
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(256))
	}
	cw, _ := c.Encode(msg)
	recv := append([]gf.Elem(nil), cw...)
	injected := rng.Perm(c.N)[:4]
	for _, p := range injected {
		recv[p] ^= gf.Elem(1 + rng.Intn(255))
	}
	synd := c.Syndromes(recv)
	lambda := c.BerlekampMassey(synd)
	want := c.ChienSearch(lambda)

	src, err := ChienSIMD(f, lambda, c.N)
	if err != nil {
		t.Fatal(err)
	}
	res, p, prog, err := Run(src, true)
	if err != nil {
		t.Fatal(err)
	}
	groups := (c.N + 3) / 4
	words, err := ReadWords(p, prog, "out", groups)
	if err != nil {
		t.Fatal(err)
	}
	got := ChienRoots(words, c.N)
	if len(got) != len(want) {
		t.Fatalf("positions %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("positions %v, want %v", got, want)
		}
	}
	t.Logf("Chien search on simulator: %d cycles for %d positions, degree-%d locator",
		res.Cycles, c.N, lambda.Degree())
}

func TestChienSIMDSmallField(t *testing.T) {
	// BCH-sized run: GF(2^5), locator with 2 known roots.
	f := gf.MustDefault(5)
	// lambda(x) = (1 + X1 x)(1 + X2 x) with X = alpha^p for p = 3, 17.
	x1, x2 := f.AlphaPow(3), f.AlphaPow(17)
	lambda := gfpoly.New(f, 1, x1).Mul(gfpoly.New(f, 1, x2))
	n := f.N()
	src, err := ChienSIMD(f, lambda, n)
	if err != nil {
		t.Fatal(err)
	}
	_, p, prog, err := Run(src, true)
	if err != nil {
		t.Fatal(err)
	}
	words, err := ReadWords(p, prog, "out", (n+3)/4)
	if err != nil {
		t.Fatal(err)
	}
	got := ChienRoots(words, n)
	// Roots at locator powers 3 and 17 -> codeword indices n-1-p.
	want := map[int]bool{n - 1 - 3: true, n - 1 - 17: true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Fatalf("roots = %v, want indices %v", got, want)
	}
}

func TestChienSIMDDegreeValidation(t *testing.T) {
	f := gf.MustDefault(8)
	if _, err := ChienSIMD(f, gfpoly.One(f), 255); err == nil {
		t.Error("degree-0 locator accepted")
	}
	big := gfpoly.New(f, 1, 1, 1, 1, 1, 1)
	if _, err := ChienSIMD(f, big, 255); err == nil {
		t.Error("degree-5 locator accepted")
	}
}
