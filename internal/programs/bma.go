package programs

import (
	"fmt"
	"strings"

	"repro/internal/gf"
)

// BMA generates the Berlekamp-Massey kernel as a real program: given the
// 2t = 4 syndromes of an RS(15,11,2)-class code in data memory, it runs
// the full iterative algorithm — discrepancy accumulation, the 2L <= n
// length-update branch with the connection-polynomial swap, and the
// lambda update — leaving the error-locator coefficients at the `lam`
// label. This is the paper's least-parallel kernel ("dependency among
// coefficients limits parallelism", Table 5): the GF instructions replace
// the log-domain multiplies but the control skeleton remains serial.
func BMA(f *gf.Field, synd []gf.Elem) (string, error) {
	if len(synd) != 4 {
		return "", fmt.Errorf("programs: BMA kernel takes exactly 4 syndromes")
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `; Berlekamp-Massey over 4 syndromes (t = 2 class codes)
	movi r10, =field
	gfconf r10
	movi r0, =lam
	movi r1, =bbuf
	movi r11, =synd
	movi r12, =tmp
	movi r2, #0          ; n
	movi r3, #0          ; L
	movi r4, #1          ; m (gap since last length change)
	movi r5, #1          ; b (last nonzero discrepancy)
outer:
	ldrbr r6, [r11, r2]  ; d = S[n]
	movi r7, #1          ; i
disc:
	cmp r7, r3
	bgt disc_done
	ldrbr r8, [r0, r7]   ; lam[i]
	sub r9, r2, r7
	ldrbr r9, [r11, r9]  ; S[n-i]
	gfmul r8, r8, r9
	eor r6, r6, r8
	addi r7, r7, #1
	b disc
disc_done:
	cmpi r6, #0
	bne nonzero
	addi r4, r4, #1      ; d == 0: m++
	b next_n
nonzero:
	gfmulinv r13, r5
	gfmul r13, r13, r6   ; coef = d / b
	lsli r8, r3, #1
	cmp r8, r2
	bgt no_len_change    ; 2L > n: update lambda only
	; length change: save lam -> tmp, update lam, bbuf <- tmp
	movi r7, #0
copy1:
	ldrbr r8, [r0, r7]
	strbr r8, [r12, r7]
	addi r7, r7, #1
	cmpi r7, #5
	blt copy1
	movi r7, #0
upd1:
	add r8, r7, r4
	cmpi r8, #5
	bge upd1_done
	ldrbr r9, [r1, r7]   ; bbuf[j]
	gfmul r9, r9, r13
	ldrbr r10, [r0, r8]  ; lam[j+m]
	eor r10, r10, r9
	strbr r10, [r0, r8]
	addi r7, r7, #1
	b upd1
upd1_done:
	movi r7, #0
copy2:
	ldrbr r8, [r12, r7]
	strbr r8, [r1, r7]
	addi r7, r7, #1
	cmpi r7, #5
	blt copy2
	addi r8, r2, #1      ; L = n + 1 - L
	sub r3, r8, r3
	mov r5, r6           ; b = d
	movi r4, #1          ; m = 1
	b next_n
no_len_change:
	movi r7, #0
upd2:
	add r8, r7, r4
	cmpi r8, #5
	bge upd2_done
	ldrbr r9, [r1, r7]
	gfmul r9, r9, r13
	ldrbr r10, [r0, r8]
	eor r10, r10, r9
	strbr r10, [r0, r8]
	addi r7, r7, #1
	b upd2
upd2_done:
	addi r4, r4, #1      ; m++
next_n:
	addi r2, r2, #1
	cmpi r2, #4
	blt outer
	halt
.data
field:
	.word 0x%x
lam:
	.byte 1, 0, 0, 0, 0
bbuf:
	.byte 1, 0, 0, 0, 0
tmp:
	.byte 0, 0, 0, 0, 0
`, f.Poly())
	sb.WriteString(byteTable("synd", []byte{
		byte(synd[0]), byte(synd[1]), byte(synd[2]), byte(synd[3]),
	}))
	return sb.String(), nil
}
