package programs

import (
	"bytes"
	"encoding/hex"
	"testing"

	"repro/internal/aes"
)

func TestAESBaselineProgramFIPSVector(t *testing.T) {
	key, _ := hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")
	pt, _ := hex.DecodeString("3243f6a8885a308d313198a2e0370734")
	want, _ := hex.DecodeString("3925841d02dc09fbdc118597196a0b32")
	src, err := AESEncryptBlockBaseline(key, pt)
	if err != nil {
		t.Fatal(err)
	}
	res, p, prog, err := Run(src, false) // runs WITHOUT the GF unit
	if err != nil {
		t.Fatal(err)
	}
	addr := prog.DataLabels["state"]
	got := p.Mem()[addr : addr+16]
	if !bytes.Equal(got, want) {
		t.Fatalf("baseline AES = %x, want %x", got, want)
	}
	t.Logf("baseline AES-128 block on simulator (no GF unit): %d cycles", res.Cycles)
}

func TestAESFig10HeadToHeadOnSimulator(t *testing.T) {
	// The full Fig. 10 encryption comparison as real code: both complete
	// AES implementations running on the same cycle-accurate core.
	key := []byte("\x00\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x0c\x0d\x0e\x0f")
	pt := []byte("\x00\x11\x22\x33\x44\x55\x66\x77\x88\x99\xaa\xbb\xcc\xdd\xee\xff")

	bSrc, err := AESEncryptBlockBaseline(key, pt)
	if err != nil {
		t.Fatal(err)
	}
	bRes, bP, bProg, err := Run(bSrc, false)
	if err != nil {
		t.Fatal(err)
	}
	gSrc, err := AESEncryptBlock(key, pt)
	if err != nil {
		t.Fatal(err)
	}
	gRes, gP, gProg, err := Run(gSrc, true)
	if err != nil {
		t.Fatal(err)
	}
	// Identical ciphertexts, both matching the library.
	bAddr := bProg.DataLabels["state"]
	bOut := bP.Mem()[bAddr : bAddr+16]
	words, _ := ReadWords(gP, gProg, "state", 4)
	gOut := AESStateBytes(words)
	c, _ := aes.NewCipher(key)
	want := make([]byte, 16)
	c.Encrypt(want, pt)
	if !bytes.Equal(bOut, want) || !bytes.Equal(gOut, want) {
		t.Fatalf("machines disagree: baseline %x, gfproc %x, want %x", bOut, gOut, want)
	}
	speedup := float64(bRes.Cycles) / float64(gRes.Cycles)
	// Fig. 10: encryption speedup > 5x.
	if speedup < 5 {
		t.Errorf("simulated encryption speedup %.1fx < 5 (baseline %d, gfproc %d)",
			speedup, bRes.Cycles, gRes.Cycles)
	}
	t.Logf("Fig. 10 head-to-head on the simulator: baseline %d cycles, GF processor %d cycles => %.1fx (paper: >5x)",
		bRes.Cycles, gRes.Cycles, speedup)
}

func TestAESBaselineValidation(t *testing.T) {
	if _, err := AESEncryptBlockBaseline(make([]byte, 8), make([]byte, 16)); err == nil {
		t.Error("short key accepted")
	}
}
