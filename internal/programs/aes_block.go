package programs

import (
	"fmt"
	"strings"

	"repro/internal/aes"
)

// AESEncryptBlock generates a complete AES-128 block encryption for the
// GF processor: the state rides row-major in four registers (lane j of
// register r = state[r][j]), SubBytes is four gfMultInv_simd
// instructions with the affine output stage, ShiftRows is three lane
// rotations, MixColumns is row-wise SIMD multiply-accumulate with
// splatted 0x02/0x03 constants, and AddRoundKey streams the
// (precomputed, row-major) round keys from data memory. The ciphertext
// replaces the plaintext at the `state` label.
//
// This is the executable form of the whole Fig. 10 story: every AES
// kernel running as real instructions on the simulated datapath.
func AESEncryptBlock(key, plaintext []byte) (string, error) {
	if len(key) != 16 {
		return "", fmt.Errorf("programs: AES-128 key must be 16 bytes")
	}
	if len(plaintext) != 16 {
		return "", fmt.Errorf("programs: plaintext must be one 16-byte block")
	}
	c, err := aes.NewCipher(key)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString(`; AES-128 block encryption on the GF processor
	movi r10, =field
	gfconf r10          ; GF(2^8)/0x11B with the S-box affine stage
	movi r0, =keys
	movi r10, =state
	ldr r2, [r10, #0]   ; state row 0 (lane j = column j)
	ldr r3, [r10, #4]
	ldr r4, [r10, #8]
	ldr r5, [r10, #12]
	; round constants for MixColumns
	movi r6, #0x0202
	movhi r6, #0x0202   ; 02 splat
	movi r7, #0x0303
	movhi r7, #0x0303   ; 03 splat
	; AddRoundKey round 0
	ldr r10, [r0, #0]
	gfadd r2, r2, r10
	ldr r10, [r0, #4]
	gfadd r3, r3, r10
	ldr r10, [r0, #8]
	gfadd r4, r4, r10
	ldr r10, [r0, #12]
	gfadd r5, r5, r10
	movi r1, #1         ; round counter
round:
	; SubBytes: 16 S-boxes in 4 instructions (affine folded)
	gfmulinv r2, r2
	gfmulinv r3, r3
	gfmulinv r4, r4
	gfmulinv r5, r5
	; ShiftRows: rotate row r left by r lanes
	lsri r8, r3, #8
	lsli r9, r3, #24
	orr r3, r8, r9
	lsri r8, r4, #16
	lsli r9, r4, #16
	orr r4, r8, r9
	lsri r8, r5, #24
	lsli r9, r5, #8
	orr r5, r8, r9
	; MixColumns, row-wise: out_r = sum over rows with circulant 02 03 01 01
	gfmul r10, r6, r2   ; 02*row0
	gfmul r8, r7, r3    ; 03*row1
	gfadd r8, r8, r10
	gfadd r8, r8, r4
	gfadd r8, r8, r5    ; out0
	gfmul r10, r6, r3   ; 02*row1
	gfmul r9, r7, r4    ; 03*row2
	gfadd r9, r9, r10
	gfadd r9, r9, r2
	gfadd r9, r9, r5    ; out1
	gfmul r10, r6, r4   ; 02*row2
	gfmul r11, r7, r5   ; 03*row3
	gfadd r11, r11, r10
	gfadd r11, r11, r2
	gfadd r11, r11, r3  ; out2
	gfmul r10, r6, r5   ; 02*row3
	gfmul r12, r7, r2   ; 03*row0
	gfadd r12, r12, r10
	gfadd r12, r12, r3
	gfadd r12, r12, r4  ; out3
	mov r2, r8
	mov r3, r9
	mov r4, r11
	mov r5, r12
	; AddRoundKey round r1: address = keys + 16*r1
	lsli r8, r1, #4
	add r8, r8, r0
	ldr r10, [r8, #0]
	gfadd r2, r2, r10
	ldr r10, [r8, #4]
	gfadd r3, r3, r10
	ldr r10, [r8, #8]
	gfadd r4, r4, r10
	ldr r10, [r8, #12]
	gfadd r5, r5, r10
	addi r1, r1, #1
	cmpi r1, #10
	blt round
	; final round: SubBytes + ShiftRows + AddRoundKey(10), no MixColumns
	gfmulinv r2, r2
	gfmulinv r3, r3
	gfmulinv r4, r4
	gfmulinv r5, r5
	lsri r8, r3, #8
	lsli r9, r3, #24
	orr r3, r8, r9
	lsri r8, r4, #16
	lsli r9, r4, #16
	orr r4, r8, r9
	lsri r8, r5, #24
	lsli r9, r5, #8
	orr r5, r8, r9
	ldr r10, [r0, #160]
	gfadd r2, r2, r10
	ldr r10, [r0, #164]
	gfadd r3, r3, r10
	ldr r10, [r0, #168]
	gfadd r4, r4, r10
	ldr r10, [r0, #172]
	gfadd r5, r5, r10
	; write back
	movi r10, =state
	str r2, [r10, #0]
	str r3, [r10, #4]
	str r4, [r10, #8]
	str r5, [r10, #12]
	halt
.data
field:
	.word 0x1011B       ; polynomial 0x11B + affine mode 1 (bits 17:16)
keys:
`)
	// Round keys, row-major: word for row i of round r packs bytes
	// rk[i + 4j] into lane j (FIPS stores the state column-major: byte
	// index 4*col + row).
	for r := 0; r <= 10; r++ {
		rk := c.RoundKey(r)
		for i := 0; i < 4; i++ {
			w := uint32(rk[i]) | uint32(rk[i+4])<<8 | uint32(rk[i+8])<<16 | uint32(rk[i+12])<<24
			fmt.Fprintf(&sb, "\t.word 0x%08x\n", w)
		}
	}
	// State, row-major words with the same packing.
	sb.WriteString("state:\n")
	for i := 0; i < 4; i++ {
		w := uint32(plaintext[i]) | uint32(plaintext[i+4])<<8 | uint32(plaintext[i+8])<<16 | uint32(plaintext[i+12])<<24
		fmt.Fprintf(&sb, "\t.word 0x%08x\n", w)
	}
	return sb.String(), nil
}

// AESStateBytes unpacks the row-major state words written by
// AESEncryptBlock back into FIPS byte order.
func AESStateBytes(words []uint32) []byte {
	out := make([]byte, 16)
	for i := 0; i < 4; i++ { // row
		for j := 0; j < 4; j++ { // column
			out[4*j+i] = byte(words[i] >> (8 * j))
		}
	}
	return out
}
