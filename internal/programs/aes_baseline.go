package programs

import (
	"fmt"
	"strings"

	"repro/internal/aes"
)

// AESEncryptBlockBaseline generates a complete AES-128 block encryption
// for the BASELINE profile (no GF unit): S-box as a 256-byte table,
// state in memory, MixColumns through a galois_mul2 subroutine with the
// conditional 0x1B reduction — the structure of the TI-style M0+
// implementation the paper benchmarks against ([44]). Together with
// AESEncryptBlock this provides the Fig. 10 encryption head-to-head as
// real code on the cycle-accurate simulator.
func AESEncryptBlockBaseline(key, plaintext []byte) (string, error) {
	if len(key) != 16 || len(plaintext) != 16 {
		return "", fmt.Errorf("programs: AES-128 needs 16-byte key and block")
	}
	c, err := aes.NewCipher(key)
	if err != nil {
		return "", err
	}
	table := make([]byte, 256)
	for i := range table {
		table[i] = aes.SubByteComputed(byte(i))
	}
	var sb strings.Builder
	sb.WriteString(`; AES-128 encryption, M0+ style: tables + memory-resident state
	movi r0, =state
	movi r1, =sbox
	movi r2, =keys
	; AddRoundKey round 0
	movi r4, #0
ark0:
	ldrbr r5, [r0, r4]
	ldrbr r6, [r2, r4]
	eor r5, r5, r6
	strbr r5, [r0, r4]
	addi r4, r4, #1
	cmpi r4, #16
	blt ark0
	movi r3, #1          ; round counter
round:
	; SubBytes: 16 table lookups
	movi r4, #0
sub_loop:
	ldrbr r5, [r0, r4]
	ldrbr r5, [r1, r5]
	strbr r5, [r0, r4]
	addi r4, r4, #1
	cmpi r4, #16
	blt sub_loop
	bl shiftrows
	; MixColumns: per column, galois_mul2 subroutine per output byte
	movi r11, #0         ; column base
mix_loop:
	ldrbr r4, [r0, r11]  ; a0
	addi r10, r11, #1
	ldrbr r5, [r0, r10]  ; a1
	addi r10, r11, #2
	ldrbr r6, [r0, r10]  ; a2
	addi r10, r11, #3
	ldrbr r12, [r0, r10] ; a3
	; t = a0^a1^a2^a3 -> r13
	eor r13, r4, r5
	eor r13, r13, r6
	eor r13, r13, r12
	; out0 = a0 ^ t ^ mul2(a0^a1)
	eor r7, r4, r5
	bl gmul2
	eor r7, r7, r13
	eor r7, r7, r4
	strbr r7, [r0, r11]
	; out1 = a1 ^ t ^ mul2(a1^a2)
	eor r7, r5, r6
	bl gmul2
	eor r7, r7, r13
	eor r7, r7, r5
	addi r10, r11, #1
	strbr r7, [r0, r10]
	; out2 = a2 ^ t ^ mul2(a2^a3)
	eor r7, r6, r12
	bl gmul2
	eor r7, r7, r13
	eor r7, r7, r6
	addi r10, r11, #2
	strbr r7, [r0, r10]
	; out3 = a3 ^ t ^ mul2(a3^a0)
	eor r7, r12, r4
	bl gmul2
	eor r7, r7, r13
	eor r7, r7, r12
	addi r10, r11, #3
	strbr r7, [r0, r10]
	addi r11, r11, #4
	cmpi r11, #16
	blt mix_loop
	; AddRoundKey round r3: key base = keys + 16*r3
	lsli r10, r3, #4
	add r10, r10, r2
	movi r4, #0
ark_loop:
	ldrbr r5, [r0, r4]
	ldrbr r6, [r10, r4]
	eor r5, r5, r6
	strbr r5, [r0, r4]
	addi r4, r4, #1
	cmpi r4, #16
	blt ark_loop
	addi r3, r3, #1
	cmpi r3, #10
	blt round
	; final round: SubBytes + ShiftRows + AddRoundKey(10)
	movi r4, #0
fsub:
	ldrbr r5, [r0, r4]
	ldrbr r5, [r1, r5]
	strbr r5, [r0, r4]
	addi r4, r4, #1
	cmpi r4, #16
	blt fsub
	bl shiftrows
	movi r10, #160
	add r10, r10, r2
	movi r4, #0
fark:
	ldrbr r5, [r0, r4]
	ldrbr r6, [r10, r4]
	eor r5, r5, r6
	strbr r5, [r0, r4]
	addi r4, r4, #1
	cmpi r4, #16
	blt fark
	halt

; galois_mul2: r7 <- xtime(r7), clobbers r8, r9
gmul2:
	lsli r8, r7, #1
	andi r9, r7, #0x80
	andi r7, r8, #0xFF
	cmpi r9, #0
	beq gdone
	movi r9, #0x1B
	eor r7, r7, r9
gdone:
	ret

; shiftrows on the FIPS byte layout (index 4*col + row), clobbers r4-r9
shiftrows:
	; row 1: 1 <- 5 <- 9 <- 13 <- 1
	ldrb r4, [r0, #1]
	ldrb r5, [r0, #5]
	strb r5, [r0, #1]
	ldrb r5, [r0, #9]
	strb r5, [r0, #5]
	ldrb r5, [r0, #13]
	strb r5, [r0, #9]
	strb r4, [r0, #13]
	; row 2: swap (2,10) and (6,14)
	ldrb r4, [r0, #2]
	ldrb r5, [r0, #10]
	strb r5, [r0, #2]
	strb r4, [r0, #10]
	ldrb r4, [r0, #6]
	ldrb r5, [r0, #14]
	strb r5, [r0, #6]
	strb r4, [r0, #14]
	; row 3: 3 <- 15 <- 11 <- 7 <- 3 (left rotate by 3 = right by 1)
	ldrb r4, [r0, #15]
	ldrb r5, [r0, #11]
	strb r5, [r0, #15]
	ldrb r5, [r0, #7]
	strb r5, [r0, #11]
	ldrb r5, [r0, #3]
	strb r5, [r0, #7]
	strb r4, [r0, #3]
	ret
.data
`)
	sb.WriteString(byteTable("state", plaintext))
	sb.WriteString(byteTable("sbox", table))
	rks := make([]byte, 0, 176)
	for r := 0; r <= 10; r++ {
		rks = append(rks, c.RoundKey(r)...)
	}
	sb.WriteString(byteTable("keys", rks))
	return sb.String(), nil
}
