package programs

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
	"repro/internal/gfbig"
	"repro/internal/rs"
)

func testWord(t *testing.T, seed int64) (*rs.Code, []gf.Elem) {
	t.Helper()
	f := gf.MustDefault(8)
	c := rs.Must(f, 255, 239)
	rng := rand.New(rand.NewSource(seed))
	msg := make([]gf.Elem, c.K)
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(256))
	}
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	recv := append([]gf.Elem(nil), cw...)
	for _, p := range rng.Perm(c.N)[:6] {
		recv[p] ^= gf.Elem(1 + rng.Intn(255))
	}
	return c, recv
}

func TestSyndromeBaselineProgramMatchesReference(t *testing.T) {
	c, recv := testWord(t, 1)
	want := c.Syndromes(recv)
	for idx := 1; idx <= 4; idx++ {
		src := SyndromeBaseline(c.F, recv, idx)
		res, _, _, err := Run(src, false)
		if err != nil {
			t.Fatalf("S_%d: %v", idx, err)
		}
		if gf.Elem(res.Regs[0]) != want[idx-1] {
			t.Fatalf("S_%d = %#x, want %#x", idx, res.Regs[0], want[idx-1])
		}
	}
}

func TestSyndromeSIMDProgramMatchesReference(t *testing.T) {
	c, recv := testWord(t, 2)
	want := c.Syndromes(recv)
	src := SyndromeSIMD(c.F, recv, 1)
	res, _, _, err := Run(src, true)
	if err != nil {
		t.Fatal(err)
	}
	packed := res.Regs[0]
	for l := 0; l < 4; l++ {
		if gf.Elem(packed>>(8*l)&0xFF) != want[l] {
			t.Fatalf("lane %d = %#x, want %#x", l, packed>>(8*l)&0xFF, want[l])
		}
	}
}

func TestTable6SpeedupOnSimulator(t *testing.T) {
	// The real measured speedup of the Table 6 inner loop: 4 syndromes on
	// the baseline (4 separate passes) versus one SIMD pass. The paper's
	// syndrome-kernel claim is "over 20x" with full vectorization (16
	// syndromes); for a 4-lane head-to-head we expect well above 4x
	// (lanes) because each lane also replaces the whole log-domain
	// sequence with one single-cycle instruction.
	c, recv := testWord(t, 3)
	var baseCycles int64
	for idx := 1; idx <= 4; idx++ {
		res, _, _, err := Run(SyndromeBaseline(c.F, recv, idx), false)
		if err != nil {
			t.Fatal(err)
		}
		baseCycles += res.Cycles
	}
	simd, _, _, err := Run(SyndromeSIMD(c.F, recv, 1), true)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(baseCycles) / float64(simd.Cycles)
	if speedup < 4 {
		t.Errorf("simulated Table-6 speedup %.1fx < 4x (base %d, simd %d)",
			speedup, baseCycles, simd.Cycles)
	}
	t.Logf("Table 6 on simulator: baseline %d cycles, SIMD %d cycles, %.1fx",
		baseCycles, simd.Cycles, speedup)
}

func TestWideMulFullProductProgram(t *testing.T) {
	f := gfbig.F233()
	rng := rand.New(rand.NewSource(4))
	a := f.Zero()
	b := f.Zero()
	for i := range a {
		a[i] = rng.Uint32()
		b[i] = rng.Uint32()
	}
	a[len(a)-1] &= 1<<(f.M()%32) - 1
	b[len(b)-1] &= 1<<(f.M()%32) - 1

	src := WideMulFullProduct(f, a, b)
	res, p, prog, err := Run(src, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadWords(p, prog, "res", 2*f.Words())
	if err != nil {
		t.Fatal(err)
	}
	want := f.MulFull(a, b)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("full product word %d = %#x, want %#x", i, got[i], want[i])
		}
	}
	// 64 gf32mul instructions must have been issued; the phase must land
	// in the few-hundred-cycle band of Table 7 (paper: 462 + 45 rearrange).
	if c := p.Counts(); c.GF32 != 64 {
		t.Fatalf("gf32mul count = %d, want 64", c.GF32)
	}
	if res.Cycles < 300 || res.Cycles > 900 {
		t.Errorf("full-product phase = %d cycles, expected 300..900", res.Cycles)
	}
	t.Logf("Table 7 full-product phase on simulator: %d cycles, %d instructions",
		res.Cycles, res.Instructions)
}

func TestReadWordsUnknownLabel(t *testing.T) {
	res, p, prog, err := Run("halt\n.data\nx: .word 1", false)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	if _, err := ReadWords(p, prog, "nope", 1); err == nil {
		t.Error("unknown label accepted")
	}
}
