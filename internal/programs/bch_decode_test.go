package programs

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bch"
	"repro/internal/gf"
)

func runBCHDecode(t *testing.T, recv []byte) (corrected []byte, flag byte, res *RunResult) {
	t.Helper()
	src, err := BCHDecode15(recv)
	if err != nil {
		t.Fatal(err)
	}
	r, p, prog, err := Run(src, true)
	if err != nil {
		t.Fatal(err)
	}
	addr := prog.DataLabels["recv"]
	corrected = append([]byte(nil), p.Mem()[addr:addr+15]...)
	flag = p.Mem()[prog.DataLabels["flag"]]
	return corrected, flag, r
}

func TestBCHDecoderProgramCorrectsUpToT(t *testing.T) {
	code := bch.Must(gf.MustDefault(4), 2) // BCH(15,7,2)
	rng := rand.New(rand.NewSource(13))
	var cycles int64
	for trial := 0; trial < 30; trial++ {
		msg := make([]byte, code.K)
		for i := range msg {
			msg[i] = byte(rng.Intn(2))
		}
		cw, err := code.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		nerr := trial % 3 // 0, 1 or 2 errors
		recv := append([]byte(nil), cw...)
		for _, p := range rng.Perm(code.N)[:nerr] {
			recv[p] ^= 1
		}
		corrected, flag, res := runBCHDecode(t, recv)
		if flag != 0 {
			t.Fatalf("trial %d (%d errors): failure flag raised", trial, nerr)
		}
		if !bytes.Equal(corrected, cw) {
			t.Fatalf("trial %d (%d errors): corrected %v != codeword %v", trial, nerr, corrected, cw)
		}
		cycles = res.Cycles
	}
	t.Logf("full BCH(15,7,2) decode on the simulator: %d cycles (2-error case)", cycles)
}

func TestBCHDecoderProgramFlagsUncorrectable(t *testing.T) {
	// Three errors whose locators sum to zero (alpha^0 + alpha^1 + alpha^4
	// = 1 + 2 + 3 = 0 in GF(2^4)) force S1 = 0 with nonzero syndromes —
	// the closed form's detectable-failure case.
	code := bch.Must(gf.MustDefault(4), 2)
	msg := make([]byte, code.K)
	cw, _ := code.Encode(msg)
	recv := append([]byte(nil), cw...)
	for _, p := range []int{0, 1, 4} { // locator powers -> indices 14-p
		recv[14-p] ^= 1
	}
	_, flag, _ := runBCHDecode(t, recv)
	if flag != 1 {
		t.Fatalf("failure flag = %d, want 1", flag)
	}
}

func TestBCHDecoderProgramValidation(t *testing.T) {
	if _, err := BCHDecode15(make([]byte, 10)); err == nil {
		t.Error("wrong-length word accepted")
	}
}

func TestBCHDecoderProgramCleanWordFastPath(t *testing.T) {
	// A clean codeword exits right after the syndrome pass.
	code := bch.Must(gf.MustDefault(4), 2)
	msg := []byte{1, 0, 1, 1, 0, 0, 1}
	cw, _ := code.Encode(msg)
	corrected, flag, res := runBCHDecode(t, cw)
	if flag != 0 || !bytes.Equal(corrected, cw) {
		t.Fatal("clean word mangled")
	}
	// Fast path: no ELP/Chien work, well under the 2-error cycle count.
	if res.Cycles > 250 {
		t.Errorf("clean decode took %d cycles", res.Cycles)
	}
}
