package programs

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
	"repro/internal/rs"
)

func runRSDecode(t *testing.T, recv []gf.Elem) (corrected []gf.Elem, flag byte, res *RunResult) {
	t.Helper()
	src, err := RSDecode15(recv)
	if err != nil {
		t.Fatal(err)
	}
	r, p, prog, err := Run(src, true)
	if err != nil {
		t.Fatal(err)
	}
	addr := prog.DataLabels["recv"]
	corrected = make([]gf.Elem, 15)
	for i := range corrected {
		corrected[i] = gf.Elem(p.Mem()[addr+i])
	}
	flag = p.Mem()[prog.DataLabels["flag"]]
	return corrected, flag, r
}

func TestRSDecoderProgramCorrectsErrorsAndValues(t *testing.T) {
	code := rs.Must(gf.MustDefault(4), 15, 11) // RS(15,11,2)
	rng := rand.New(rand.NewSource(21))
	var cycles int64
	for trial := 0; trial < 40; trial++ {
		msg := make([]gf.Elem, code.K)
		for i := range msg {
			msg[i] = gf.Elem(rng.Intn(16))
		}
		cw, err := code.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		nerr := trial % 3 // 0, 1 or 2 symbol errors
		recv := append([]gf.Elem(nil), cw...)
		for _, p := range rng.Perm(code.N)[:nerr] {
			recv[p] ^= gf.Elem(1 + rng.Intn(15))
		}
		corrected, flag, res := runRSDecode(t, recv)
		if flag != 0 {
			t.Fatalf("trial %d (%d errors): failure flag raised", trial, nerr)
		}
		for i := range cw {
			if corrected[i] != cw[i] {
				t.Fatalf("trial %d (%d errors): symbol %d = %#x, want %#x",
					trial, nerr, i, corrected[i], cw[i])
			}
		}
		if nerr == 2 {
			cycles = res.Cycles
		}
	}
	t.Logf("full RS(15,11,2) decode (with Forney, 2 errors) on the simulator: %d cycles", cycles)
}

func TestRSDecoderProgramFlagsInconsistentSingle(t *testing.T) {
	// Handcrafted syndrome pattern with det == 0 but inconsistent single-
	// error equations: three errors at locators forming a geometric-ish
	// degenerate pattern. Easiest robust approach: search for a 3-error
	// pattern that the program flags.
	code := rs.Must(gf.MustDefault(4), 15, 11)
	rng := rand.New(rand.NewSource(22))
	msg := make([]gf.Elem, code.K)
	cw, _ := code.Encode(msg)
	flagged := false
	for attempt := 0; attempt < 50 && !flagged; attempt++ {
		recv := append([]gf.Elem(nil), cw...)
		for _, p := range rng.Perm(code.N)[:3] {
			recv[p] ^= gf.Elem(1 + rng.Intn(15))
		}
		_, flag, _ := runRSDecode(t, recv)
		if flag == 1 {
			flagged = true
		}
	}
	if !flagged {
		t.Error("no 3-error pattern raised the uncorrectable flag in 50 attempts (suspicious)")
	}
}

func TestRSDecoderProgramCleanWord(t *testing.T) {
	code := rs.Must(gf.MustDefault(4), 15, 11)
	msg := make([]gf.Elem, code.K)
	for i := range msg {
		msg[i] = gf.Elem(i + 1)
	}
	cw, _ := code.Encode(msg)
	corrected, flag, res := runRSDecode(t, cw)
	if flag != 0 {
		t.Fatal("clean word flagged")
	}
	for i := range cw {
		if corrected[i] != cw[i] {
			t.Fatal("clean word mangled")
		}
	}
	if res.Cycles > 250 {
		t.Errorf("clean decode took %d cycles", res.Cycles)
	}
}

func TestRSDecoderProgramValidation(t *testing.T) {
	if _, err := RSDecode15(make([]gf.Elem, 10)); err == nil {
		t.Error("wrong-length word accepted")
	}
}
