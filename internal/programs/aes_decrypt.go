package programs

import (
	"fmt"
	"strings"

	"repro/internal/aes"
)

// AESDecryptBlock generates a complete AES-128 block decryption for the
// GF processor. It is the same code shape as encryption — the paper's
// point that the GF datapath "is agnostic to the values of the
// coefficients": InvMixColumns simply splats 0x0E/0x0B/0x0D/0x09 instead
// of 0x02/0x03, where the M0+ baseline loses its shift-trick optimization
// entirely. The inverse S-box uses the affine-input configuration
// (mode 2). The plaintext replaces the ciphertext at `state`.
func AESDecryptBlock(key, ciphertext []byte) (string, error) {
	if len(key) != 16 {
		return "", fmt.Errorf("programs: AES-128 key must be 16 bytes")
	}
	if len(ciphertext) != 16 {
		return "", fmt.Errorf("programs: ciphertext must be one 16-byte block")
	}
	c, err := aes.NewCipher(key)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString(`; AES-128 block decryption on the GF processor
	movi r10, =field
	gfconf r10          ; GF(2^8)/0x11B with the inverse S-box affine stage
	movi r0, =keys
	movi r10, =state
	ldr r2, [r10, #0]
	ldr r3, [r10, #4]
	ldr r4, [r10, #8]
	ldr r5, [r10, #12]
	; AddRoundKey round 10 (keys stored round-major; round 10 at offset 160)
	ldr r10, [r0, #160]
	gfadd r2, r2, r10
	ldr r10, [r0, #164]
	gfadd r3, r3, r10
	ldr r10, [r0, #168]
	gfadd r4, r4, r10
	ldr r10, [r0, #172]
	gfadd r5, r5, r10
	movi r1, #9         ; round counter 9..1
round:
	; InvShiftRows: rotate row r RIGHT by r lanes (lane j <- lane j-r)
	lsli r8, r3, #8
	lsri r9, r3, #24
	orr r3, r8, r9
	lsli r8, r4, #16
	lsri r9, r4, #16
	orr r4, r8, r9
	lsli r8, r5, #24
	lsri r9, r5, #8
	orr r5, r8, r9
	; InvSubBytes: inverse affine then inverse, 4 instructions
	gfmulinv r2, r2
	gfmulinv r3, r3
	gfmulinv r4, r4
	gfmulinv r5, r5
	; AddRoundKey round r1
	lsli r8, r1, #4
	add r8, r8, r0
	ldr r10, [r8, #0]
	gfadd r2, r2, r10
	ldr r10, [r8, #4]
	gfadd r3, r3, r10
	ldr r10, [r8, #8]
	gfadd r4, r4, r10
	ldr r10, [r8, #12]
	gfadd r5, r5, r10
	; InvMixColumns: same code as MixColumns, different splats
	; out_r = 0E*row_r + 0B*row_{r+1} + 0D*row_{r+2} + 09*row_{r+3}
	movi r6, #0x0e0e
	movhi r6, #0x0e0e
	movi r7, #0x0b0b
	movhi r7, #0x0b0b
	gfmul r8, r6, r2    ; 0E*row0
	gfmul r10, r7, r3   ; 0B*row1
	gfadd r8, r8, r10
	gfmul r9, r6, r3    ; 0E*row1
	gfmul r10, r7, r4   ; 0B*row2
	gfadd r9, r9, r10
	gfmul r11, r6, r4   ; 0E*row2
	gfmul r10, r7, r5   ; 0B*row3
	gfadd r11, r11, r10
	gfmul r12, r6, r5   ; 0E*row3
	gfmul r10, r7, r2   ; 0B*row0
	gfadd r12, r12, r10
	movi r6, #0x0d0d
	movhi r6, #0x0d0d
	movi r7, #0x0909
	movhi r7, #0x0909
	gfmul r10, r6, r4   ; 0D*row2
	gfadd r8, r8, r10
	gfmul r10, r7, r5   ; 09*row3
	gfadd r8, r8, r10   ; out0 done
	gfmul r10, r6, r5   ; 0D*row3
	gfadd r9, r9, r10
	gfmul r10, r7, r2   ; 09*row0
	gfadd r9, r9, r10   ; out1
	gfmul r10, r6, r2   ; 0D*row0
	gfadd r11, r11, r10
	gfmul r10, r7, r3   ; 09*row1
	gfadd r11, r11, r10 ; out2
	gfmul r10, r6, r3   ; 0D*row1
	gfadd r12, r12, r10
	gfmul r10, r7, r4   ; 09*row2
	gfadd r12, r12, r10 ; out3
	mov r2, r8
	mov r3, r9
	mov r4, r11
	mov r5, r12
	subi r1, r1, #1
	cmpi r1, #0
	bgt round
	; final: InvShiftRows + InvSubBytes + AddRoundKey(0)
	lsli r8, r3, #8
	lsri r9, r3, #24
	orr r3, r8, r9
	lsli r8, r4, #16
	lsri r9, r4, #16
	orr r4, r8, r9
	lsli r8, r5, #24
	lsri r9, r5, #8
	orr r5, r8, r9
	gfmulinv r2, r2
	gfmulinv r3, r3
	gfmulinv r4, r4
	gfmulinv r5, r5
	ldr r10, [r0, #0]
	gfadd r2, r2, r10
	ldr r10, [r0, #4]
	gfadd r3, r3, r10
	ldr r10, [r0, #8]
	gfadd r4, r4, r10
	ldr r10, [r0, #12]
	gfadd r5, r5, r10
	movi r10, =state
	str r2, [r10, #0]
	str r3, [r10, #4]
	str r4, [r10, #8]
	str r5, [r10, #12]
	halt
.data
field:
	.word 0x2011B       ; polynomial 0x11B + inverse affine mode (bits 17:16 = 2)
keys:
`)
	for r := 0; r <= 10; r++ {
		rk := c.RoundKey(r)
		for i := 0; i < 4; i++ {
			w := uint32(rk[i]) | uint32(rk[i+4])<<8 | uint32(rk[i+8])<<16 | uint32(rk[i+12])<<24
			fmt.Fprintf(&sb, "\t.word 0x%08x\n", w)
		}
	}
	sb.WriteString("state:\n")
	for i := 0; i < 4; i++ {
		w := uint32(ciphertext[i]) | uint32(ciphertext[i+4])<<8 | uint32(ciphertext[i+8])<<16 | uint32(ciphertext[i+12])<<24
		fmt.Fprintf(&sb, "\t.word 0x%08x\n", w)
	}
	return sb.String(), nil
}
