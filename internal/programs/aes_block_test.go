package programs

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"

	"repro/internal/aes"
)

func runAESBlock(t *testing.T, key, pt []byte) ([]byte, *RunResult) {
	t.Helper()
	src, err := AESEncryptBlock(key, pt)
	if err != nil {
		t.Fatal(err)
	}
	res, p, prog, err := Run(src, true)
	if err != nil {
		t.Fatal(err)
	}
	words, err := ReadWords(p, prog, "state", 4)
	if err != nil {
		t.Fatal(err)
	}
	return AESStateBytes(words), res
}

func TestAESBlockProgramFIPSVector(t *testing.T) {
	// FIPS-197 Appendix B.
	key, _ := hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")
	pt, _ := hex.DecodeString("3243f6a8885a308d313198a2e0370734")
	want, _ := hex.DecodeString("3925841d02dc09fbdc118597196a0b32")
	got, res := runAESBlock(t, key, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("simulated AES = %x, want %x", got, want)
	}
	t.Logf("AES-128 block on the simulator: %d cycles, %d instructions "+
		"(metered model: ~550; paper-implied: ~1049)", res.Cycles, res.Instructions)
	// The whole block must land in the few-hundred-cycle band that makes
	// the paper's 12.2 Mbps at 100 MHz plausible.
	if res.Cycles < 300 || res.Cycles > 1500 {
		t.Errorf("block took %d cycles, outside 300..1500", res.Cycles)
	}
}

func TestAESBlockProgramRandomAgainstLibrary(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		key := make([]byte, 16)
		pt := make([]byte, 16)
		rng.Read(key)
		rng.Read(pt)
		got, _ := runAESBlock(t, key, pt)
		c, _ := aes.NewCipher(key)
		want := make([]byte, 16)
		c.Encrypt(want, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: simulator %x != library %x", trial, got, want)
		}
	}
}

func TestAESBlockProgramValidation(t *testing.T) {
	if _, err := AESEncryptBlock(make([]byte, 8), make([]byte, 16)); err == nil {
		t.Error("short key accepted")
	}
	if _, err := AESEncryptBlock(make([]byte, 16), make([]byte, 8)); err == nil {
		t.Error("short block accepted")
	}
}

func TestAESBlockThroughputClaim(t *testing.T) {
	// Table 13 cross-check: throughput at 100 MHz from the simulated
	// cycle count must be in the same band as the paper's 12.2 Mbps.
	key := make([]byte, 16)
	pt := make([]byte, 16)
	_, res := runAESBlock(t, key, pt)
	mbps := 128.0 / float64(res.Cycles) * 100
	if mbps < 8 || mbps > 45 {
		t.Errorf("implied throughput %.1f Mbps outside 8..45 (paper: 12.2)", mbps)
	}
	t.Logf("implied AES throughput @100 MHz: %.1f Mbps (paper: 12.2)", mbps)
}
