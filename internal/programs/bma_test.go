package programs

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
	"repro/internal/gfpoly"
	"repro/internal/rs"
)

func TestBMAProgramMatchesReference(t *testing.T) {
	f := gf.MustDefault(4)
	code := rs.Must(f, 15, 11)
	rng := rand.New(rand.NewSource(31))
	var cycles int64
	for trial := 0; trial < 40; trial++ {
		msg := make([]gf.Elem, code.K)
		for i := range msg {
			msg[i] = gf.Elem(rng.Intn(16))
		}
		cw, _ := code.Encode(msg)
		nerr := trial % 3
		for _, p := range rng.Perm(code.N)[:nerr] {
			cw[p] ^= gf.Elem(1 + rng.Intn(15))
		}
		synd := code.Syndromes(cw)
		want := gfpoly.BerlekampMassey(f, synd)

		src, err := BMA(f, synd)
		if err != nil {
			t.Fatal(err)
		}
		res, p, prog, err := Run(src, true)
		if err != nil {
			t.Fatal(err)
		}
		addr := prog.DataLabels["lam"]
		for i := 0; i <= 4; i++ {
			got := gf.Elem(p.Mem()[addr+i])
			if got != want.Coeff(i) {
				t.Fatalf("trial %d (%d errors): lam[%d] = %#x, want %#x (synd %v)",
					trial, nerr, i, got, want.Coeff(i), synd)
			}
		}
		if nerr == 2 {
			cycles = res.Cycles
		}
	}
	t.Logf("BMA over 4 syndromes on the simulator: %d cycles (2-error case)", cycles)
}

func TestBMAProgramZeroSyndromes(t *testing.T) {
	f := gf.MustDefault(4)
	src, err := BMA(f, make([]gf.Elem, 4))
	if err != nil {
		t.Fatal(err)
	}
	_, p, prog, err := Run(src, true)
	if err != nil {
		t.Fatal(err)
	}
	addr := prog.DataLabels["lam"]
	if p.Mem()[addr] != 1 || p.Mem()[addr+1] != 0 || p.Mem()[addr+2] != 0 {
		t.Fatal("zero syndromes should leave lambda = 1")
	}
}

func TestBMAProgramValidation(t *testing.T) {
	f := gf.MustDefault(4)
	if _, err := BMA(f, make([]gf.Elem, 3)); err == nil {
		t.Error("3 syndromes accepted")
	}
}
