package programs

import (
	"fmt"
	"strings"

	"repro/internal/gf"
)

// RSDecode15 generates a COMPLETE RS(15,11,2) decoder over GF(2^4) as one
// program — the full Fig. 1(b) datapath: SIMD syndrome computation,
// Peterson's 2x2 closed-form error-locator solve, Chien search, and
// Forney's algorithm evaluating the error VALUES (the step binary BCH
// does not need), with in-place symbol correction. The corrected word
// replaces `recv`; `flag` is set to 1 for detectable-uncorrectable
// syndrome patterns.
//
// For nu <= 2 errors with first consecutive root alpha^1:
//
//	det    = S2^2 + S1*S3
//	sigma1 = (S2*S3 + S1*S4)/det,  sigma2 = (S2*S4 + S3^2)/det   (det != 0)
//	sigma1 = S2/S1,                sigma2 = 0                     (det == 0, single error)
//	Omega  = S(x)*Lambda(x) mod x^4 = S1 + (S2 + sigma1*S1)*x
//	Lambda'(x) = sigma1;  e_j = Omega(X_j^-1) / sigma1
func RSDecode15(recv []gf.Elem) (string, error) {
	f := gf.MustDefault(4)
	if len(recv) != f.N() {
		return "", fmt.Errorf("programs: received word must be %d symbols", f.N())
	}
	var alphas uint32
	for l := 0; l < 4; l++ {
		alphas |= uint32(f.AlphaPow(l+1)) << (8 * l)
	}
	alphaInv := uint32(f.AlphaPow(-1))
	rbytes := make([]byte, len(recv))
	for i, s := range recv {
		rbytes[i] = byte(s)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `; RS(15,11,2) decoder: syndromes -> Peterson -> Chien -> Forney -> fix
	movi r10, =field
	gfconf r10
; --- syndromes S1..S4 in four lanes ---
	movi r0, =recv
	movi r2, #0
	movi r3, #0
	movi r4, #0x%04x
	movhi r4, #0x%04x
	movi r5, #0x0101
	movhi r5, #0x0101
syn:
	gfmul r2, r2, r4
	ldrbr r6, [r0, r3]
	mul r6, r6, r5
	gfadd r2, r2, r6
	addi r3, r3, #1
	cmpi r3, #15
	blt syn
	cmpi r2, #0
	beq done
; --- unpack syndromes ---
	andi r4, r2, #0xFF  ; S1
	lsri r5, r2, #8
	andi r5, r5, #0xFF  ; S2
	lsri r6, r2, #16
	andi r6, r6, #0xFF  ; S3
	lsri r7, r2, #24    ; S4
; --- Peterson closed form ---
	gfmul r8, r5, r5    ; S2^2
	gfmul r9, r4, r6    ; S1*S3
	eor r8, r8, r9      ; det
	cmpi r8, #0
	bne two
; single error: sigma1 = S2/S1 (S1 != 0 here unless >2 errors)
	cmpi r4, #0
	beq fail
	gfmulinv r9, r4
	gfmul r11, r5, r9   ; sigma1 = S2*S1^-1
	; consistency: sigma1*S2 == S3 and sigma1*S3 == S4, else >2 errors
	gfmul r12, r11, r5
	cmp r12, r6
	bne fail
	gfmul r12, r11, r6
	cmp r12, r7
	bne fail
	mov r4, r11         ; sigma1
	movi r5, #0         ; sigma2
	b forney_setup
two:
	gfmulinv r8, r8     ; det^-1
	gfmul r9, r5, r6    ; S2*S3
	gfmul r12, r4, r7   ; S1*S4
	eor r9, r9, r12
	gfmul r9, r9, r8    ; sigma1
	gfmul r12, r5, r7   ; S2*S4
	gfmul r11, r6, r6   ; S3^2
	eor r12, r12, r11
	gfmul r12, r12, r8  ; sigma2
	gfmul r11, r9, r4   ; sigma1*S1 (for Omega1, using old S1 in r4)
	eor r5, r5, r11     ; Omega1 = S2 + sigma1*S1 ... computed before clobbering
	mov r6, r4          ; Omega0 = S1
	mov r4, r9          ; sigma1
	mov r7, r5          ; Omega1
	mov r5, r12         ; sigma2
	b forney_ready
forney_setup:
	; single-error path: Omega0 = S1 (still in... r4 now sigma1) —
	; recompute from packed syndromes in r2.
	andi r6, r2, #0xFF  ; Omega0 = S1
	lsri r7, r2, #8
	andi r7, r7, #0xFF  ; S2
	gfmul r12, r4, r6   ; sigma1*S1
	eor r7, r7, r12     ; Omega1 = S2 + sigma1*S1 (= 0 for a true single error)
forney_ready:
	cmpi r4, #0
	beq fail            ; sigma1 = 0 with errors present: uncorrectable
	gfmulinv r8, r4     ; 1/Lambda' = 1/sigma1
; --- Chien + Forney + correction ---
	movi r1, #0         ; p
	movi r3, #1         ; z = alpha^0
chien:
	gfmul r11, r4, r3   ; sigma1*z
	gfsq r12, r3
	gfmul r12, r5, r12  ; sigma2*z^2
	eor r11, r11, r12
	movi r12, #1
	eor r11, r11, r12   ; Lambda(z)
	andi r11, r11, #0xFF
	cmpi r11, #0
	bne next
	; error at index 14-p with value (Omega0 + Omega1*z)/sigma1
	gfmul r11, r7, r3   ; Omega1*z
	eor r11, r11, r6    ; + Omega0
	gfmul r11, r11, r8  ; / sigma1
	movi r12, #14
	sub r12, r12, r1
	ldrbr r9, [r0, r12]
	eor r9, r9, r11
	strbr r9, [r0, r12]
next:
	movi r12, #%d       ; alpha^-1
	gfmul r3, r3, r12
	addi r1, r1, #1
	cmpi r1, #15
	blt chien
	b done
fail:
	movi r9, #1
	movi r10, =flag
	strb r9, [r10, #0]
done:
	halt
.data
field:
	.word 0x%x
flag:
	.byte 0
`, alphas&0xFFFF, alphas>>16, alphaInv, f.Poly())
	sb.WriteString(byteTable("recv", rbytes))
	return sb.String(), nil
}
