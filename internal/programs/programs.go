// Package programs generates runnable assembly kernels for the processor
// simulator, demonstrating the paper's Table 6 (syndrome inner loop on
// both machines) and the full-product phase of Table 7 (GF(2^233)
// multiplication from single-cycle 32-bit partial products) as real
// programs rather than analytic cycle models. The generated sources are
// assembled by repro/internal/isa and executed on repro/internal/core.
package programs

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/gf"
	"repro/internal/gfbig"
	"repro/internal/isa"
)

// byteTable renders a byte slice as .byte directives.
func byteTable(label string, data []byte) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:\n", label)
	for i := 0; i < len(data); i += 16 {
		end := i + 16
		if end > len(data) {
			end = len(data)
		}
		parts := make([]string, 0, 16)
		for _, b := range data[i:end] {
			parts = append(parts, fmt.Sprintf("%d", b))
		}
		fmt.Fprintf(&sb, "\t.byte %s\n", strings.Join(parts, ", "))
	}
	return sb.String()
}

// SyndromeBaseline generates the Table 6 left-column program: one
// syndrome S_idx of the received word computed on the scalar core with
// log/antilog tables (the log-domain method). The syndrome lands in r2.
func SyndromeBaseline(f *gf.Field, recv []gf.Elem, idx int) string {
	n := f.N()
	logT := make([]byte, f.Order())
	expT := make([]byte, n)
	for v := 1; v < f.Order(); v++ {
		logT[v] = byte(f.Log(gf.Elem(v)))
	}
	for i := 0; i < n; i++ {
		expT[i] = byte(f.Exp(i))
	}
	rbytes := make([]byte, len(recv))
	for i, s := range recv {
		rbytes[i] = byte(s)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `; Table 6 baseline: syndrome S_%d via log-domain GF multiply
	movi r1, =recv      ; received word pointer
	movi r2, #0         ; sum
	movi r3, #0         ; j
	movi r4, =logtab
	movi r5, =exptab
	movi r6, #%d        ; field size - 1 (modulo base)
	movi r7, #%d        ; i (syndrome index: multiply by alpha^i)
loop:
	cmpi r2, #0
	beq  skipmul        ; sum == 0: product stays 0
	ldrbr r8, [r4, r2]  ; sumIdx = BIN2Idx[sum]
	add  r8, r8, r7     ; sumIdx += i
	cmp  r8, r6
	blt  nomod
	sub  r8, r8, r6     ; modulo field size
nomod:
	ldrbr r2, [r5, r8]  ; sum = Idx2BIN[sumIdx]
skipmul:
	ldrbr r9, [r1, r3]  ; R[j]
	eor  r2, r2, r9     ; sum ^= R[j]
	addi r3, r3, #1
	cmpi r3, #%d
	blt  loop
	halt
.data
`, idx, n, idx, len(recv))
	sb.WriteString(byteTable("logtab", logT))
	sb.WriteString(byteTable("exptab", expT))
	sb.WriteString(byteTable("recv", rbytes))
	return sb.String()
}

// SyndromeSIMD generates the Table 6 right-column program: four
// syndromes S_first..S_first+3 computed together with the SIMD GF
// instructions. The packed syndromes land in r2 (lane l = S_{first+l}).
func SyndromeSIMD(f *gf.Field, recv []gf.Elem, first int) string {
	var alphas uint32
	for l := 0; l < 4; l++ {
		alphas |= uint32(f.AlphaPow(first+l)) << (8 * l)
	}
	rbytes := make([]byte, len(recv))
	for i, s := range recv {
		rbytes[i] = byte(s)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `; Table 6 this-work: 4 syndromes in SIMD lanes
	movi r10, =field
	gfconf r10          ; load the irreducible polynomial
	movi r1, =recv
	movi r2, #0         ; packed sums
	movi r3, #0         ; j
	movi r4, #0x%04x
	movhi r4, #0x%04x   ; packed alpha^(first..first+3)
	movi r5, #0x0101
	movhi r5, #0x0101   ; splat multiplier
loop:
	gfmul r2, r2, r4    ; sum = sum (*) alpha^i   (all four lanes)
	ldrbr r6, [r1, r3]  ; R[j]
	mul  r6, r6, r5     ; splat R[j] to 4 lanes
	gfadd r2, r2, r6    ; sum = sum (+) R[j]
	addi r3, r3, #1
	cmpi r3, #%d
	blt  loop
	halt
.data
field:
	.word 0x%x
`, alphas&0xFFFF, alphas>>16, len(recv), f.Poly())
	sb.WriteString(byteTable("recv", rbytes))
	return sb.String()
}

// RunResult reports a simulated kernel execution.
type RunResult struct {
	Cycles       int64
	Instructions int64
	Regs         [4]uint32 // r2..r5 snapshot (kernel outputs)
}

// Run assembles and executes src on the simulator; gfu attaches the GF
// arithmetic unit. It returns the run summary, the halted processor and
// the assembled program (for data-label access).
func Run(src string, gfu bool) (*RunResult, *core.Processor, *isa.Program, error) {
	prog, err := isa.Assemble(src)
	if err != nil {
		return nil, nil, nil, err
	}
	p, err := core.New(prog, core.Config{GFUnit: gfu})
	if err != nil {
		return nil, nil, nil, err
	}
	if err := p.Run(0); err != nil {
		return nil, nil, nil, err
	}
	return &RunResult{
		Cycles:       p.Cycles(),
		Instructions: p.Instructions(),
		Regs:         [4]uint32{p.Reg(2), p.Reg(3), p.Reg(4), p.Reg(5)},
	}, p, prog, nil
}

// WideMulFullProduct generates the Table-7 "Full Product" phase for a
// Words x Words wide multiplication: a fully unrolled product-scanning
// sequence of gf32mul instructions with column accumulators in
// registers. Operands live at data labels opa/opb; the 2*Words-word full
// product is stored at label res. Register map: r0/r1/r2 = base pointers,
// r3/r4 = operand words, r5/r6 = product hi/lo, r7 = column accumulator,
// r8 = carry accumulator (next column's seed).
func WideMulFullProduct(f *gfbig.Field, a, b gfbig.Elem) string {
	w := f.Words()
	var sb strings.Builder
	sb.WriteString(`; Table 7 full-product phase: product scanning with gf32mul
	movi r10, =field
	gfconf r10
	movi r0, =opa
	movi r1, =opb
	movi r2, =res
	movi r7, #0         ; column accumulator
	movi r8, #0         ; carry into next column
`)
	for k := 0; k < 2*w-1; k++ {
		fmt.Fprintf(&sb, "; column %d\n", k)
		for i := 0; i < w; i++ {
			j := k - i
			if j < 0 || j >= w {
				continue
			}
			fmt.Fprintf(&sb, "\tldr r3, [r0, #%d]\n", 4*i)
			fmt.Fprintf(&sb, "\tldr r4, [r1, #%d]\n", 4*j)
			sb.WriteString("\tgf32mul r5, r6, r3, r4\n")
			sb.WriteString("\teor r7, r7, r6\n") // low into this column
			sb.WriteString("\teor r8, r8, r5\n") // high into next column
		}
		fmt.Fprintf(&sb, "\tstr r7, [r2, #%d]\n", 4*k)
		sb.WriteString("\tmov r7, r8\n\tmovi r8, #0\n")
	}
	fmt.Fprintf(&sb, "\tstr r7, [r2, #%d]\n\thalt\n.data\nfield:\n\t.word 0x11B\n", 4*(2*w-1))
	word := func(label string, e []uint32, n int) {
		fmt.Fprintf(&sb, "%s:\n", label)
		for i := 0; i < n; i++ {
			v := uint32(0)
			if i < len(e) {
				v = e[i]
			}
			fmt.Fprintf(&sb, "\t.word 0x%x\n", v)
		}
	}
	word("opa", a, w)
	word("opb", b, w)
	word("res", nil, 2*w)
	return sb.String()
}

// ReadWords reads n little-endian words from the processor's data memory
// at the program's data label.
func ReadWords(p *core.Processor, prog *isa.Program, label string, n int) ([]uint32, error) {
	addr, ok := prog.DataLabels[label]
	if !ok {
		return nil, fmt.Errorf("programs: no data label %q", label)
	}
	mem := p.Mem()
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		off := addr + 4*i
		out[i] = uint32(mem[off]) | uint32(mem[off+1])<<8 | uint32(mem[off+2])<<16 | uint32(mem[off+3])<<24
	}
	return out, nil
}
