package programs

import (
	"strings"

	"repro/internal/aes"
)

// AESSubBytesBaseline generates the M0+ version of SubBytes: a 256-byte
// S-box table in data memory and a byte-at-a-time lookup loop — the
// implementation the paper's Fig. 10 baseline uses. Paired with
// AESSubBytes (4 gfMultInv_simd instructions) it gives the S-box
// head-to-head on the real simulator.
func AESSubBytesBaseline(state []byte) string {
	if len(state) != 16 {
		panic("programs: AES state must be 16 bytes")
	}
	table := make([]byte, 256)
	for i := range table {
		table[i] = aes.SubByteComputed(byte(i))
	}
	var sb strings.Builder
	sb.WriteString(`; AES SubBytes the M0+ way: 16 table lookups
	movi r0, =state
	movi r1, =sbox
	movi r2, #0          ; i
loop:
	ldrbr r3, [r0, r2]   ; state[i]
	ldrbr r3, [r1, r3]   ; sbox[state[i]]
	strbr r3, [r0, r2]
	addi r2, r2, #1
	cmpi r2, #16
	blt loop
	halt
.data
`)
	sb.WriteString(byteTable("state", state))
	sb.WriteString(byteTable("sbox", table))
	return sb.String()
}
