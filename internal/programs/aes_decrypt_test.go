package programs

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/aes"
)

func TestAESDecryptProgramInvertsEncryptProgram(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 5; trial++ {
		key := make([]byte, 16)
		pt := make([]byte, 16)
		rng.Read(key)
		rng.Read(pt)
		// Encrypt with the library, decrypt on the simulator.
		c, _ := aes.NewCipher(key)
		ct := make([]byte, 16)
		c.Encrypt(ct, pt)

		src, err := AESDecryptBlock(key, ct)
		if err != nil {
			t.Fatal(err)
		}
		res, p, prog, err := Run(src, true)
		if err != nil {
			t.Fatal(err)
		}
		words, err := ReadWords(p, prog, "state", 4)
		if err != nil {
			t.Fatal(err)
		}
		got := AESStateBytes(words)
		if !bytes.Equal(got, pt) {
			t.Fatalf("trial %d: simulated decrypt %x != plaintext %x", trial, got, pt)
		}
		if trial == 0 {
			t.Logf("AES-128 decrypt on simulator: %d cycles (%d instructions)",
				res.Cycles, res.Instructions)
		}
	}
}

func TestAESDecryptProgramCycleBand(t *testing.T) {
	// Decryption runs MORE GF multiplies per round (InvMixColumns has four
	// nontrivial coefficients) yet stays in the same cycle band as
	// encryption — the coefficient-agnostic claim. On the M0+ baseline the
	// same change costs ~2x.
	key := make([]byte, 16)
	ct := make([]byte, 16)
	src, err := AESDecryptBlock(key, ct)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, _, err := Run(src, true)
	if err != nil {
		t.Fatal(err)
	}
	encSrc, _ := AESEncryptBlock(key, ct)
	enc, _, _, err := Run(encSrc, true)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(dec.Cycles) / float64(enc.Cycles)
	if ratio > 1.6 {
		t.Errorf("decrypt/encrypt cycle ratio %.2f > 1.6 (not coefficient-agnostic)", ratio)
	}
	t.Logf("simulator: encrypt %d cycles, decrypt %d cycles (ratio %.2f)",
		enc.Cycles, dec.Cycles, ratio)
}

func TestAESDecryptProgramValidation(t *testing.T) {
	if _, err := AESDecryptBlock(make([]byte, 15), make([]byte, 16)); err == nil {
		t.Error("short key accepted")
	}
	if _, err := AESDecryptBlock(make([]byte, 16), make([]byte, 17)); err == nil {
		t.Error("bad block accepted")
	}
}
