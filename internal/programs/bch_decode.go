package programs

import (
	"fmt"
	"strings"

	"repro/internal/gf"
)

// BCHDecode15 generates a COMPLETE binary BCH(15,7,2) decoder as one
// program: SIMD syndrome computation (four syndromes in one register),
// the paper's closed-form error-locator solver (Fig. 1a "Closed Form
// ELP", Peterson for t = 2 — sigma1 = S1, sigma2 = (S3 + S1^3)/S1,
// realized with gfsq/gfmul/gfmulinv), Chien search over all 15 positions,
// and in-place bit correction. The corrected word replaces `recv`; the
// byte at `flag` is set to 1 when the syndrome pattern is uncorrectable
// (S1 = 0 with nonzero syndromes).
//
// It is the end-to-end ECC_r datapath of Fig. 1(a) running as real
// instructions on the simulated processor.
func BCHDecode15(recv []byte) (string, error) {
	f := gf.MustDefault(4) // GF(2^4)/x^4+x+1
	if len(recv) != f.N() {
		return "", fmt.Errorf("programs: received word must be %d bits", f.N())
	}
	var alphas uint32
	for l := 0; l < 4; l++ {
		alphas |= uint32(f.AlphaPow(l+1)) << (8 * l)
	}
	alphaInv := uint32(f.AlphaPow(-1))
	var sb strings.Builder
	fmt.Fprintf(&sb, `; BCH(15,7,2) decoder: syndromes -> closed-form ELP -> Chien -> flip
	movi r10, =field
	gfconf r10
; --- syndrome computation (4 lanes: S1..S4) ---
	movi r0, =recv
	movi r2, #0
	movi r3, #0
	movi r4, #0x%04x
	movhi r4, #0x%04x   ; lanes alpha^1..alpha^4
	movi r5, #0x0101
	movhi r5, #0x0101
syn:
	gfmul r2, r2, r4
	ldrbr r6, [r0, r3]
	mul r6, r6, r5
	gfadd r2, r2, r6
	addi r3, r3, #1
	cmpi r3, #15
	blt syn
	cmpi r2, #0
	beq done            ; all syndromes zero: no errors
; --- closed-form ELP, t = 2 (Peterson) ---
	andi r6, r2, #0xFF  ; S1
	lsri r7, r2, #16
	andi r7, r7, #0xFF  ; S3
	cmpi r6, #0
	bne s1ok
	movi r9, #1         ; S1 = 0 with errors present: >2 errors
	movi r10, =flag
	strb r9, [r10, #0]
	b done
s1ok:
	gfsq r8, r6
	gfmul r8, r8, r6    ; S1^3
	gfadd r8, r8, r7    ; S1^3 + S3
	gfmulinv r9, r6
	gfmul r8, r8, r9    ; sigma2 = (S1^3+S3)/S1  (0 for a single error)
; --- Chien search + correction ---
	movi r1, #0         ; p
	movi r3, #1         ; x = alpha^0
chien:
	gfmul r11, r6, r3   ; sigma1 * x
	gfsq r12, r3
	gfmul r12, r8, r12  ; sigma2 * x^2
	gfadd r11, r11, r12
	movi r12, #1
	gfadd r11, r11, r12 ; Lambda(x) = 1 + sigma1*x + sigma2*x^2
	andi r11, r11, #0xFF
	cmpi r11, #0
	bne next
	movi r12, #14       ; root at alpha^-p: flip bit index n-1-p
	sub r12, r12, r1
	ldrbr r11, [r0, r12]
	movi r10, #1
	eor r11, r11, r10
	strbr r11, [r0, r12]
next:
	movi r12, #%d       ; alpha^-1
	gfmul r3, r3, r12
	addi r1, r1, #1
	cmpi r1, #15
	blt chien
done:
	halt
.data
field:
	.word 0x%x
flag:
	.byte 0
`, alphas&0xFFFF, alphas>>16, alphaInv, f.Poly())
	sb.WriteString(byteTable("recv", recv))
	return sb.String(), nil
}
