package programs

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/aes"
)

func TestAESSubBytesProgram(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		state := make([]byte, 16)
		rng.Read(state)

		// Forward S-box.
		res, p, prog, err := Run(AESSubBytes(state, false), true)
		if err != nil {
			t.Fatal(err)
		}
		_ = res
		addr := prog.DataLabels["state"]
		got := p.Mem()[addr : addr+16]
		want := make([]byte, 16)
		for i, b := range state {
			want[i] = aes.SubByteComputed(b)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("forward S-box program: got %x want %x", got, want)
		}

		// Inverse S-box undoes it.
		res2, p2, prog2, err := Run(AESSubBytes(got, true), true)
		if err != nil {
			t.Fatal(err)
		}
		_ = res2
		addr2 := prog2.DataLabels["state"]
		back := p2.Mem()[addr2 : addr2+16]
		if !bytes.Equal(back, state) {
			t.Fatalf("inverse S-box program: got %x want %x", back, state)
		}
	}
}

func TestAESSubBytesProgramCycleCount(t *testing.T) {
	// 16 S-box substitutions in 4 single-cycle instructions: the whole
	// kernel (config + load + 4 inv + store) must stay under ~35 cycles,
	// versus the >150-cycle table-lookup loop on the baseline.
	state := make([]byte, 16)
	for i := range state {
		state[i] = byte(i * 17)
	}
	res, _, _, err := Run(AESSubBytes(state, false), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles > 35 {
		t.Errorf("S-box kernel took %d cycles", res.Cycles)
	}
	t.Logf("SubBytes on simulator: %d cycles for 16 bytes", res.Cycles)
}

func TestAESSubBytesBadState(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for short state")
		}
	}()
	AESSubBytes(make([]byte, 5), false)
}

func TestAESSubBytesBaselineMatchesAndIsSlower(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	state := make([]byte, 16)
	rng.Read(state)
	want := make([]byte, 16)
	for i, b := range state {
		want[i] = aes.SubByteComputed(b)
	}
	// Baseline (no GF unit).
	resB, pB, progB, err := Run(AESSubBytesBaseline(state), false)
	if err != nil {
		t.Fatal(err)
	}
	addr := progB.DataLabels["state"]
	if !bytes.Equal(pB.Mem()[addr:addr+16], want) {
		t.Fatal("baseline S-box program wrong")
	}
	// GF processor.
	resG, _, _, err := Run(AESSubBytes(state, false), true)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(resB.Cycles) / float64(resG.Cycles)
	if speedup < 4 {
		t.Errorf("S-box simulator speedup %.1fx < 4 (baseline %d, gfproc %d)",
			speedup, resB.Cycles, resG.Cycles)
	}
	t.Logf("S-box head-to-head on simulator: baseline %d cycles, GF processor %d cycles (%.1fx)",
		resB.Cycles, resG.Cycles, speedup)
}
