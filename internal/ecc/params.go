package ecc

import (
	"fmt"
	"math/big"

	"repro/internal/gfbig"
)

// NIST binary-curve domain parameters (FIPS 186-4 / SEC 2). Each
// constructor builds the curve fresh; the parameters are validated by the
// package tests (base point on curve, n*G = infinity).

func mustHex(f *gfbig.Field, s string) gfbig.Elem {
	e, err := f.SetHex(s)
	if err != nil {
		panic("ecc: bad curve constant: " + err.Error())
	}
	return e
}

func mustBig(s string) *big.Int {
	n, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic("ecc: bad order constant")
	}
	return n
}

// K233 returns the NIST Koblitz curve K-233 over GF(2^233)/x^233+x^74+1
// with a = 0, b = 1 — the curve the paper hand-codes in Section 3.3.4.
func K233() *Curve {
	f := gfbig.F233()
	return &Curve{
		Name:     "NIST K-233",
		F:        f,
		A:        f.Zero(),
		B:        f.One(),
		Gx:       mustHex(f, "017232ba853a7e731af129f22ff4149563a419c26bf50a4c9d6eefad6126"),
		Gy:       mustHex(f, "01db537dece819b7f70f555a67c427a8cd9bf18aeb9b56e0c11056fae6a3"),
		Order:    mustBig("8000000000000000000000000000069d5bb915bcd46efb1ad5f173abdf"),
		Cofactor: 4,
	}
}

// B233 returns the NIST pseudo-random curve B-233 (a = 1).
func B233() *Curve {
	f := gfbig.F233()
	return &Curve{
		Name:     "NIST B-233",
		F:        f,
		A:        f.One(),
		B:        mustHex(f, "0066647ede6c332c7f8c0923bb58213b333b20e9ce4281fe115f7d8f90ad"),
		Gx:       mustHex(f, "00fac9dfcbac8313bb2139f1bb755fef65bc391f8b36f8f8eb7371fd558b"),
		Gy:       mustHex(f, "01006a08a41903350678e58528bebf8a0beff867a7ca36716f7e01f81052"),
		Order:    mustBig("1000000000000000000000000000013e974e72f8a6922031d2603cfe0d7"),
		Cofactor: 2,
	}
}

// K163 returns the NIST Koblitz curve K-163 over
// GF(2^163)/x^163+x^7+x^6+x^3+1 with a = 1, b = 1 — the smallest
// standardized binary curve (the paper's "smallest being 113 bits" refers
// to the older SEC sect113 family; 163 is the smallest NIST one).
func K163() *Curve {
	f := gfbig.F163()
	return &Curve{
		Name:     "NIST K-163",
		F:        f,
		A:        f.One(),
		B:        f.One(),
		Gx:       mustHex(f, "02fe13c0537bbc11acaa07d793de4e6d5e5c94eee8"),
		Gy:       mustHex(f, "0289070fb05d38ff58321f2e800536d538ccdaa3d9"),
		Order:    mustBig("4000000000000000000020108a2e0cc0d99f8a5ef"),
		Cofactor: 2,
	}
}

// B163 returns the NIST pseudo-random curve B-163.
func B163() *Curve {
	f := gfbig.F163()
	return &Curve{
		Name:     "NIST B-163",
		F:        f,
		A:        f.One(),
		B:        mustHex(f, "020a601907b8c953ca1481eb10512f78744a3205fd"),
		Gx:       mustHex(f, "03f0eba16286a2d57ea0991168d4994637e8343e36"),
		Gy:       mustHex(f, "00d51fbc6c71a0094fa2cdd545b11c5c0c797324f1"),
		Order:    mustBig("40000000000000000000292fe77e70c12a4234c33"),
		Cofactor: 2,
	}
}

// K283 returns the NIST Koblitz curve K-283 over
// GF(2^283)/x^283+x^12+x^7+x^5+1 with a = 0, b = 1.
func K283() *Curve {
	f := gfbig.F283()
	return &Curve{
		Name:     "NIST K-283",
		F:        f,
		A:        f.Zero(),
		B:        f.One(),
		Gx:       mustHex(f, "0503213f78ca44883f1a3b8162f188e553cd265f23c1567a16876913b0c2ac2458492836"),
		Gy:       mustHex(f, "01ccda380f1c9e318d90f95d07e5426fe87e45c0e8184698e45962364e34116177dd2259"),
		Order:    mustBig("01ffffffffffffffffffffffffffffffffffe9ae2ed07577265dff7f94451e061e163c61"),
		Cofactor: 4,
	}
}

// Curves returns all built-in curves, smallest field first.
func Curves() []*Curve {
	return []*Curve{K163(), B163(), K233(), B233(), K283()}
}

// CurveByName resolves a curve from its configuration name ("K-233",
// "b163", "NIST K-283", ...), case-insensitively and ignoring the
// NIST prefix and dashes.
func CurveByName(name string) (*Curve, error) {
	key := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'A' && c <= 'Z':
			key = append(key, c+'a'-'A')
		case c == '-' || c == ' ' || c == '_':
		default:
			key = append(key, c)
		}
	}
	switch s := string(key); s {
	case "k163", "nistk163":
		return K163(), nil
	case "b163", "nistb163":
		return B163(), nil
	case "k233", "nistk233", "sect233k1":
		return K233(), nil
	case "b233", "nistb233", "sect233r1":
		return B233(), nil
	case "k283", "nistk283":
		return K283(), nil
	}
	return nil, fmt.Errorf("ecc: unknown curve %q (have K-163, B-163, K-233, B-233, K-283)", name)
}
