package ecc

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestWNAFDigitProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, w := range []uint{2, 3, 4, 5} {
		for trial := 0; trial < 50; trial++ {
			k := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 233))
			if k.Sign() == 0 {
				continue
			}
			digits := wnaf(k, w)
			// Reconstruct: sum d_i * 2^i == k (digits are LSB-first).
			sum := new(big.Int)
			for i := len(digits) - 1; i >= 0; i-- {
				sum.Lsh(sum, 1)
				sum.Add(sum, big.NewInt(int64(digits[i])))
			}
			if sum.Cmp(k) != 0 {
				t.Fatalf("w=%d: digits do not reconstruct k", w)
			}
			half := int8(1) << (w - 1)
			lastNonzero := -100
			for i, d := range digits {
				if d == 0 {
					continue
				}
				if d%2 == 0 || d >= half || d <= -half {
					t.Fatalf("w=%d: digit %d out of form", w, d)
				}
				if i-lastNonzero < int(w) && lastNonzero >= 0 {
					t.Fatalf("w=%d: nonzero digits %d apart", w, i-lastNonzero)
				}
				lastNonzero = i
			}
		}
	}
	if wnaf(big.NewInt(0), 4) != nil {
		t.Error("wnaf(0) not empty")
	}
}

func TestScalarMultWNAFMatches(t *testing.T) {
	for _, c := range []*Curve{K233(), B163()} {
		rng := rand.New(rand.NewSource(2))
		for _, w := range []uint{2, 4, 6} {
			k := new(big.Int).Rand(rng, c.Order)
			want := c.ScalarBaseMult(k)
			got := c.ScalarMultWNAF(k, c.Generator(), w)
			if !c.Equal(got, want) {
				t.Fatalf("%s w=%d: wNAF != double-and-add", c, w)
			}
		}
		// Edge cases and clamping.
		if !c.ScalarMultWNAF(big.NewInt(0), c.Generator(), 4).Inf {
			t.Error("0*G != infinity")
		}
		if !c.ScalarMultWNAF(c.Order, c.Generator(), 1).Inf { // w clamps to 2
			t.Error("n*G != infinity")
		}
		if !c.ScalarMultWNAF(big.NewInt(5), Infinity(), 9).Inf { // w clamps to 8
			t.Error("k*infinity != infinity")
		}
	}
}

func TestWNAFReducesAdditions(t *testing.T) {
	c := K233()
	rng := rand.New(rand.NewSource(3))
	k := new(big.Int).Rand(rng, c.Order)
	_, st2 := c.ScalarMultWNAFStats(k, c.Generator(), 2) // plain NAF
	_, st5 := c.ScalarMultWNAFStats(k, c.Generator(), 5)
	// Window 5 should need far fewer main-loop additions (~233/6 = 39)
	// than NAF (~233/3 = 78), at the cost of 7 precomputation adds.
	if st5.Adds >= st2.Adds {
		t.Errorf("w=5 adds (%d) not fewer than w=2 adds (%d)", st5.Adds, st2.Adds)
	}
	if st5.Precomp != 7 {
		t.Errorf("w=5 precomputation adds = %d, want 7", st5.Precomp)
	}
	total2 := st2.Adds + st2.Precomp
	total5 := st5.Adds + st5.Precomp
	if total5 >= total2 {
		t.Errorf("w=5 total adds (%d) not fewer than w=2 (%d)", total5, total2)
	}
	t.Logf("wNAF ablation on K-233: w=2 %d+%d adds, w=5 %d+%d adds, doubles ~%d",
		st2.Adds, st2.Precomp, st5.Adds, st5.Precomp, st5.Doubles)
}
