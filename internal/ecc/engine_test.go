package ecc

import (
	"bytes"
	"crypto/sha256"
	"math/big"
	"math/rand"
	"testing"
)

func testEngine(t testing.TB, c *Curve) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	d, err := c.RandomScalar(rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(c, d)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEngineScalarRejection: NewEngine rejects zero and overflowing
// private scalars instead of silently reducing them.
func TestEngineScalarRejection(t *testing.T) {
	c := K233()
	for _, d := range []*big.Int{
		nil,
		big.NewInt(0),
		new(big.Int).Neg(big.NewInt(5)),
		new(big.Int).Set(c.Order),
		new(big.Int).Add(c.Order, big.NewInt(1)),
		new(big.Int).Lsh(big.NewInt(1), 400),
	} {
		if _, err := NewEngine(c, d); err == nil {
			t.Errorf("NewEngine accepted out-of-range scalar %v", d)
		}
	}
	if _, err := NewEngine(c, big.NewInt(1)); err != nil {
		t.Errorf("NewEngine rejected d=1: %v", err)
	}
	dMax := new(big.Int).Sub(c.Order, big.NewInt(1))
	if _, err := NewEngine(c, dMax); err != nil {
		t.Errorf("NewEngine rejected d=n-1: %v", err)
	}
}

// TestEngineLadderMatchesScalarMult: the scratch x-only ladder against
// the projective double-and-add reference, on random scalars and
// points, for every curve.
func TestEngineLadderMatchesScalarMult(t *testing.T) {
	for _, c := range Curves() {
		t.Run(c.Name, func(t *testing.T) {
			e := testEngine(t, c)
			rng := rand.New(rand.NewSource(int64(c.F.M())))
			k := e.sf.newElem()
			for iter := 0; iter < 8; iter++ {
				kb, err := c.RandomScalar(rng)
				if err != nil {
					t.Fatal(err)
				}
				// Random base point: kb2 * G.
				kb2, _ := c.RandomScalar(rng)
				p := c.ScalarBaseMult(kb2)
				e.sf.setBytes(k, kb.Bytes())
				ok := e.ladderX(k, p.X)
				// ladderX only sees x, so compare against the reference
				// ladder which shares that contract.
				want := c.ScalarMult(kb, p)
				if want.Inf != !ok {
					t.Fatalf("infinity disagreement: ref inf=%v ladder ok=%v", want.Inf, ok)
				}
				if ok && !c.F.Equal(e.xout, want.X) {
					t.Fatalf("x(kP) mismatch:\n  got  %s\n  want %s",
						c.F.Hex(e.xout), c.F.Hex(want.X))
				}
			}
			// k = 1 and k = order-1 edges.
			g := c.Generator()
			e.sf.setBytes(k, []byte{1})
			if !e.ladderX(k, g.X) || !c.F.Equal(e.xout, g.X) {
				t.Fatalf("ladder k=1 mismatch")
			}
			nm1 := new(big.Int).Sub(c.Order, big.NewInt(1))
			e.sf.setBytes(k, nm1.Bytes())
			if !e.ladderX(k, g.X) || !c.F.Equal(e.xout, g.X) {
				t.Fatalf("ladder k=n-1 should land on -G (same x)")
			}
		})
	}
}

// TestEngineDeriveMatchesSharedSecret: the wire-format Derive against
// the reference ECDH, plus the symmetry d1*Q2 == d2*Q1.
func TestEngineDeriveMatchesSharedSecret(t *testing.T) {
	for _, c := range Curves() {
		t.Run(c.Name, func(t *testing.T) {
			e := testEngine(t, c)
			rng := rand.New(rand.NewSource(99))
			peer, err := GenerateKey(c, rng)
			if err != nil {
				t.Fatal(err)
			}
			peerBytes := c.MarshalUncompressed(peer.Pub)
			got, err := e.Derive(nil, peerBytes)
			if err != nil {
				t.Fatal(err)
			}
			// Reference: the engine's key as a PrivateKey.
			d := new(big.Int).SetBytes(e.dBytes)
			priv, err := NewPrivateKey(c, d)
			if err != nil {
				t.Fatal(err)
			}
			want, err := priv.SharedSecret(peer.Pub)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("Derive mismatch:\n  got  %x\n  want %x", got, want)
			}
			// Symmetry: peer derives the same secret from our public.
			sym, err := peer.SharedSecret(priv.Pub)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, sym) {
				t.Fatalf("ECDH asymmetry")
			}
		})
	}
}

// TestEngineDeriveRejects covers the public-point validation matrix.
func TestEngineDeriveRejects(t *testing.T) {
	c := K233()
	e := testEngine(t, c)
	rng := rand.New(rand.NewSource(5))
	peer, _ := GenerateKey(c, rng)
	good := c.MarshalUncompressed(peer.Pub)

	cases := map[string][]byte{
		"empty":           {},
		"identity":        {0x00},
		"compressed-tag":  append([]byte{0x02}, good[1:]...),
		"truncated":       good[:len(good)-1],
		"trailing":        append(append([]byte{}, good...), 0x00),
		"off-curve":       flipBit(good, len(good)-1),
		"x-overflow":      overflowX(c, good),
		"wrong-curve-283": c283Point(t),
	}
	for name, b := range cases {
		if _, err := e.Derive(nil, b); err == nil {
			t.Errorf("%s: Derive accepted invalid point", name)
		}
	}
	// B-233 points live on the same field but a different curve: the
	// on-curve check must reject them (wrong-curve public point).
	b233 := B233()
	bpeer, _ := GenerateKey(b233, rng)
	if _, err := e.Derive(nil, b233.MarshalUncompressed(bpeer.Pub)); err == nil {
		t.Errorf("Derive accepted a B-233 point on the K-233 engine")
	}
}

func flipBit(b []byte, i int) []byte {
	out := append([]byte{}, b...)
	out[i] ^= 1
	return out
}

func overflowX(c *Curve, good []byte) []byte {
	out := append([]byte{}, good...)
	out[1] |= 0xFF // x gains bits >= m: SetBytesInto must reject
	return out
}

func c283Point(t *testing.T) []byte {
	t.Helper()
	c := K283()
	k, _ := c.RandomScalar(rand.New(rand.NewSource(1)))
	return c.MarshalUncompressed(c.ScalarBaseMult(k))
}

// TestEngineSignVerify: deterministic sign against the independent
// big.Int verifier, across curves and digest lengths (SEC 1
// truncation both shorter and longer than the order).
func TestEngineSignVerify(t *testing.T) {
	for _, c := range Curves() {
		t.Run(c.Name, func(t *testing.T) {
			e := testEngine(t, c)
			pub := e.Public()
			for _, dlen := range []int{1, 16, 20, 32, 48, 64} {
				digest := make([]byte, dlen)
				rand.New(rand.NewSource(int64(dlen))).Read(digest)
				sig, err := e.SignAppend(nil, digest)
				if err != nil {
					t.Fatalf("sign(%d bytes): %v", dlen, err)
				}
				if len(sig) != 2*e.ob {
					t.Fatalf("signature length %d, want %d", len(sig), 2*e.ob)
				}
				r := new(big.Int).SetBytes(sig[:e.ob])
				s := new(big.Int).SetBytes(sig[e.ob:])
				if !VerifyDigest(c, pub, digest, &Signature{R: r, S: s}) {
					t.Fatalf("reference verifier rejected deterministic signature (digest %d bytes)", dlen)
				}
				if err := e.VerifyWire(e.PublicBytes(), sig, digest); err != nil {
					t.Fatalf("VerifyWire rejected own signature: %v", err)
				}
				// Determinism: same digest, same signature — including
				// from a clone (a different pipeline worker).
				sig2, err := e.Clone().SignAppend(nil, digest)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(sig, sig2) {
					t.Fatalf("deterministic signing diverged between clones")
				}
			}
			// Digest rejection.
			if _, err := e.SignAppend(nil, nil); err == nil {
				t.Fatalf("accepted empty digest")
			}
			if _, err := e.SignAppend(nil, make([]byte, 65)); err == nil {
				t.Fatalf("accepted oversized digest")
			}
		})
	}
}

// TestEngineSignLowS: the signer always emits the canonical low-s
// representative, and the verifier (correctly, per spec) accepts both
// (r, s) and (r, n-s) — the malleability pair.
func TestEngineSignLowS(t *testing.T) {
	c := K233()
	e := testEngine(t, c)
	half := new(big.Int).Rsh(c.Order, 1)
	for i := 0; i < 16; i++ {
		digest := sha256.Sum256([]byte{byte(i)})
		sig, err := e.SignAppend(nil, digest[:])
		if err != nil {
			t.Fatal(err)
		}
		s := new(big.Int).SetBytes(sig[e.ob:])
		if s.Cmp(half) > 0 {
			t.Fatalf("signer emitted high-s (iteration %d)", i)
		}
		// The mirrored signature also verifies: malleability is a
		// property of ECDSA itself, which is why the signer pins the
		// low form rather than the verifier rejecting the high one.
		r := new(big.Int).SetBytes(sig[:e.ob])
		sm := new(big.Int).Sub(c.Order, s)
		if !VerifyDigest(c, e.Public(), digest[:], &Signature{R: r, S: sm}) {
			t.Fatalf("mirrored signature (r, n-s) did not verify")
		}
		// But a perturbed s must not.
		bad := new(big.Int).Add(s, big.NewInt(1))
		if VerifyDigest(c, e.Public(), digest[:], &Signature{R: r, S: bad}) {
			t.Fatalf("perturbed signature verified")
		}
	}
}

// TestEngineSignKAT pins known-answer signatures so any change to the
// nonce derivation, truncation, scalar arithmetic or ladder shows up
// as a diff — the signatures are deterministic by construction.
func TestEngineSignKAT(t *testing.T) {
	for _, kat := range signKATs {
		c, err := CurveByName(kat.curve)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := new(big.Int).SetString(kat.d, 16)
		e, err := NewEngine(c, d)
		if err != nil {
			t.Fatal(err)
		}
		digest := sha256.Sum256([]byte(kat.msg))
		sig, err := e.SignAppend(nil, digest[:])
		if err != nil {
			t.Fatal(err)
		}
		got := hexStr(sig)
		if got != kat.sig {
			t.Errorf("%s/%q: signature\n  got  %s\n  want %s", kat.curve, kat.msg, got, kat.sig)
		}
		if err := e.VerifyWire(e.PublicBytes(), sig, digest[:]); err != nil {
			t.Errorf("%s/%q: KAT signature does not verify: %v", kat.curve, kat.msg, err)
		}
	}
}

func hexStr(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 2*len(b))
	for i, v := range b {
		out[2*i] = digits[v>>4]
		out[2*i+1] = digits[v&0xF]
	}
	return string(out)
}

// TestEngineZeroAlloc enforces the acceptance criterion: steady-state
// ecdsa-sign and ecdh-derive are 0 allocs/request.
func TestEngineZeroAlloc(t *testing.T) {
	c := K233()
	e := testEngine(t, c)
	rng := rand.New(rand.NewSource(11))
	peer, _ := GenerateKey(c, rng)
	peerBytes := c.MarshalUncompressed(peer.Pub)
	digest := sha256.Sum256([]byte("steady state"))
	out := make([]byte, 0, 256)
	// Warm up (first call may calibrate the gfbig strategy).
	if _, err := e.Derive(out, peerBytes); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SignAppend(out, digest[:]); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(10, func() {
		if _, err := e.Derive(out[:0], peerBytes); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Derive: %v allocs/request, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() {
		if _, err := e.SignAppend(out[:0], digest[:]); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("SignAppend: %v allocs/request, want 0", n)
	}
}

// TestSecureSessionRoundTrip: server handshake, client open, tamper
// rejection.
func TestSecureSessionRoundTrip(t *testing.T) {
	c := K233()
	e := testEngine(t, c)
	rng := rand.New(rand.NewSource(31))
	client, err := GenerateKey(c, rng)
	if err != nil {
		t.Fatal(err)
	}
	clientPub := c.MarshalUncompressed(client.Pub)
	challenge := []byte("prove you derived the same key")
	resp, err := e.SecureSession(rng, nil, clientPub, challenge)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != e.SessionResponseBytes(len(challenge)) {
		t.Fatalf("response length %d, want %d", len(resp), e.SessionResponseBytes(len(challenge)))
	}
	key, got, err := OpenSessionResponse(client, clientPub, resp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, challenge) {
		t.Fatalf("challenge mismatch: %q", got)
	}
	if len(key) != 16 {
		t.Fatalf("key length %d", len(key))
	}
	// Tampering anywhere in the response must fail the GCM open.
	for _, i := range []int{0, 1, len(resp) - 1, e.PointBytes() + 2} {
		bad := flipBit(resp, i)
		if _, _, err := OpenSessionResponse(client, clientPub, bad); err == nil {
			t.Errorf("tampered response (byte %d) opened", i)
		}
	}
	// A response bound to a different client point must not open.
	other, _ := GenerateKey(c, rng)
	if _, _, err := OpenSessionResponse(other, c.MarshalUncompressed(other.Pub), resp); err == nil {
		t.Errorf("response opened under a different client key")
	}
	// Two handshakes must use distinct ephemeral keys.
	resp2, err := e.SecureSession(rng, nil, clientPub, challenge)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(resp[:e.PointBytes()], resp2[:e.PointBytes()]) {
		t.Fatalf("ephemeral key reused across handshakes")
	}
	// Invalid client point.
	if _, err := e.SecureSession(rng, nil, flipBit(clientPub, len(clientPub)-1), challenge); err == nil {
		t.Fatalf("handshake accepted off-curve client point")
	}
	// Empty challenge is legal.
	if _, err := e.SecureSession(rng, nil, clientPub, nil); err != nil {
		t.Fatalf("empty challenge: %v", err)
	}
}

func TestCurveByName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"K-233", "NIST K-233"},
		{"k233", "NIST K-233"},
		{"NIST B-163", "NIST B-163"},
		{"sect233k1", "NIST K-233"},
		{"K_283", "NIST K-283"},
	} {
		c, err := CurveByName(tc.in)
		if err != nil {
			t.Fatalf("CurveByName(%q): %v", tc.in, err)
		}
		if c.Name != tc.want {
			t.Fatalf("CurveByName(%q) = %s, want %s", tc.in, c.Name, tc.want)
		}
	}
	if _, err := CurveByName("P-256"); err == nil {
		t.Fatalf("CurveByName accepted P-256")
	}
}

func BenchmarkECDHDerive(b *testing.B) {
	c := K233()
	e := testEngine(b, c)
	peer, _ := GenerateKey(c, rand.New(rand.NewSource(2)))
	peerBytes := c.MarshalUncompressed(peer.Pub)
	out := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Derive(out[:0], peerBytes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECDSASign(b *testing.B) {
	c := K233()
	e := testEngine(b, c)
	digest := sha256.Sum256([]byte("bench"))
	out := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.SignAppend(out[:0], digest[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECDSAVerify(b *testing.B) {
	c := K233()
	e := testEngine(b, c)
	digest := sha256.Sum256([]byte("bench"))
	sig, err := e.SignAppend(nil, digest[:])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.VerifyWire(e.PublicBytes(), sig, digest[:]); err != nil {
			b.Fatal(err)
		}
	}
}
