package ecc

import (
	"math/big"
	"math/rand"
	"testing"
)

// toBig converts a little-endian word vector to a big.Int.
func toBig(sf *scalarField, x []uint32) *big.Int {
	out := new(big.Int)
	for i := len(x) - 1; i >= 0; i-- {
		out.Lsh(out, 32)
		out.Or(out, big.NewInt(int64(x[i])))
	}
	return out
}

func randScalarWords(sf *scalarField, rng *rand.Rand) []uint32 {
	for {
		x := sf.newElem()
		for i := range x {
			x[i] = rng.Uint32()
		}
		v := toBig(sf, x)
		v.Mod(v, toBig(sf, sf.n))
		sf.setBytes(x, v.Bytes())
		if !sf.isZero(x) {
			return x
		}
	}
}

// TestScalarFieldDifferential checks every fixed-width routine against
// math/big on random operands, for every curve order.
func TestScalarFieldDifferential(t *testing.T) {
	for _, c := range Curves() {
		t.Run(c.Name, func(t *testing.T) {
			sf := newScalarField(c.Order)
			s := sf.newScratch()
			n := toBig(sf, sf.n)
			if n.Cmp(c.Order) != 0 {
				t.Fatalf("order round trip: got %x want %x", n, c.Order)
			}
			rng := rand.New(rand.NewSource(int64(sf.bits)))
			dst := sf.newElem()
			want := new(big.Int)
			for iter := 0; iter < 50; iter++ {
				a := randScalarWords(sf, rng)
				b := randScalarWords(sf, rng)
				ab, bb := toBig(sf, a), toBig(sf, b)

				sf.addMod(dst, a, b)
				want.Add(ab, bb)
				want.Mod(want, n)
				if toBig(sf, dst).Cmp(want) != 0 {
					t.Fatalf("addMod mismatch")
				}
				sf.subMod(dst, a, b)
				want.Sub(ab, bb)
				want.Mod(want, n)
				if toBig(sf, dst).Cmp(want) != 0 {
					t.Fatalf("subMod mismatch")
				}
				sf.mulMod(dst, a, b, s)
				want.Mul(ab, bb)
				want.Mod(want, n)
				if toBig(sf, dst).Cmp(want) != 0 {
					t.Fatalf("mulMod mismatch")
				}
				sf.invMod(dst, a, s)
				want.ModInverse(ab, n)
				if toBig(sf, dst).Cmp(want) != 0 {
					t.Fatalf("invMod mismatch: got %x want %x", toBig(sf, dst), want)
				}
				// reduceWide on a full double-width product.
				wide := make([]uint32, 2*sf.words)
				prod := new(big.Int).Mul(ab, bb)
				pb := prod.Bytes()
				for i := 0; i < len(pb); i++ {
					wide[i/4] |= uint32(pb[len(pb)-1-i]) << (8 * (i % 4))
				}
				sf.reduceWide(dst, wide, s)
				want.Mod(prod, n)
				if toBig(sf, dst).Cmp(want) != 0 {
					t.Fatalf("reduceWide mismatch")
				}
			}
		})
	}
}

// TestScalarBits2Int pins the RFC 6979 / SEC 1 truncation semantics
// against the existing big.Int hashToInt.
func TestScalarBits2Int(t *testing.T) {
	for _, c := range Curves() {
		sf := newScalarField(c.Order)
		dst := sf.newElem()
		rng := rand.New(rand.NewSource(7))
		for _, dlen := range []int{1, 20, 28, 29, 30, 32, 48, 64} {
			digest := make([]byte, dlen)
			rng.Read(digest)
			sf.bits2int(dst, digest)
			want := hashToInt(digest, c.Order)
			if toBig(sf, dst).Cmp(want) != 0 {
				t.Fatalf("%s: bits2int(%d bytes) = %x, want %x",
					c.Name, dlen, toBig(sf, dst), want)
			}
		}
	}
}

func TestScalarBitLen(t *testing.T) {
	sf := newScalarField(K233().Order)
	x := sf.newElem()
	if got := scalarBitLen(x); got != 0 {
		t.Fatalf("bitLen(0) = %d", got)
	}
	x[0] = 1
	if got := scalarBitLen(x); got != 1 {
		t.Fatalf("bitLen(1) = %d", got)
	}
	x[3] = 0x80000000
	if got := scalarBitLen(x); got != 128 {
		t.Fatalf("bitLen = %d, want 128", got)
	}
}
