package ecc

import (
	"crypto/sha256"
	"fmt"
	"io"
	"math/big"
)

// ECDSA over binary curves: the authentication half of the paper's
// asymmetric-cryptography story (ECDH exchanges keys; ECDSA signs). The
// scalar arithmetic modulo the group order uses math/big; every curve
// operation runs on the GF(2^m) stack.

// Signature is an ECDSA signature pair.
type Signature struct {
	R, S *big.Int
}

// hashToInt converts a message digest to an integer per SEC 1 4.1.3:
// the leftmost bits of the hash, truncated to the order's bit length.
func hashToInt(h []byte, order *big.Int) *big.Int {
	bits := order.BitLen()
	if len(h)*8 > bits {
		h = h[:(bits+7)/8]
	}
	e := new(big.Int).SetBytes(h)
	if excess := len(h)*8 - bits; excess > 0 {
		e.Rsh(e, uint(excess))
	}
	return e
}

// Sign signs the message (hashed internally with SHA-256) with the
// private key, drawing nonces from rand.
func (k *PrivateKey) Sign(rand io.Reader, msg []byte) (*Signature, error) {
	sum := sha256.Sum256(msg)
	return k.SignDigest(rand, sum[:])
}

// SignDigest signs a precomputed digest.
func (k *PrivateKey) SignDigest(rand io.Reader, digest []byte) (*Signature, error) {
	n := k.Curve.Order
	e := hashToInt(digest, n)
	for attempt := 0; attempt < 100; attempt++ {
		kk, err := k.Curve.RandomScalar(rand)
		if err != nil {
			return nil, err
		}
		p := k.Curve.ScalarBaseMult(kk)
		if p.Inf {
			continue
		}
		r := new(big.Int).SetBytes(k.Curve.F.Bytes(p.X))
		r.Mod(r, n)
		if r.Sign() == 0 {
			continue
		}
		kInv := new(big.Int).ModInverse(kk, n)
		if kInv == nil {
			continue
		}
		s := new(big.Int).Mul(r, k.D)
		s.Add(s, e)
		s.Mul(s, kInv)
		s.Mod(s, n)
		if s.Sign() == 0 {
			continue
		}
		return &Signature{R: r, S: s}, nil
	}
	return nil, fmt.Errorf("ecc: signing failed to find a usable nonce")
}

// Verify checks the signature over msg (SHA-256) against the public key.
func Verify(c *Curve, pub Point, msg []byte, sig *Signature) bool {
	sum := sha256.Sum256(msg)
	return VerifyDigest(c, pub, sum[:], sig)
}

// VerifyDigest checks a signature over a precomputed digest.
func VerifyDigest(c *Curve, pub Point, digest []byte, sig *Signature) bool {
	if sig == nil || sig.R == nil || sig.S == nil {
		return false
	}
	n := c.Order
	if sig.R.Sign() <= 0 || sig.R.Cmp(n) >= 0 || sig.S.Sign() <= 0 || sig.S.Cmp(n) >= 0 {
		return false
	}
	if pub.Inf || !c.OnCurve(pub) {
		return false
	}
	e := hashToInt(digest, n)
	w := new(big.Int).ModInverse(sig.S, n)
	if w == nil {
		return false
	}
	u1 := new(big.Int).Mul(e, w)
	u1.Mod(u1, n)
	u2 := new(big.Int).Mul(sig.R, w)
	u2.Mod(u2, n)
	p := c.Add(c.ScalarBaseMult(u1), c.ScalarMult(u2, pub))
	if p.Inf {
		return false
	}
	v := new(big.Int).SetBytes(c.F.Bytes(p.X))
	v.Mod(v, n)
	return v.Cmp(sig.R) == 0
}
