package ecc

import (
	"fmt"
	"io"
	"math/big"
)

// ECDH key agreement (the paper's Section 3.3.4: "The Elliptic Curve
// Diffie Hellman (ECDH) key exchange protocol is one of the most popular
// ECC_l applications. It requires one scalar multiplication per session.")

// PrivateKey is an ECDH private scalar with its public point.
type PrivateKey struct {
	Curve *Curve
	D     *big.Int
	Pub   Point
}

// GenerateKey creates a key pair using entropy from rand.
func GenerateKey(c *Curve, rand io.Reader) (*PrivateKey, error) {
	d, err := c.RandomScalar(rand)
	if err != nil {
		return nil, err
	}
	return NewPrivateKey(c, d)
}

// NewPrivateKey builds the key pair for a given scalar (reduced mod the
// curve order; must not reduce to zero).
func NewPrivateKey(c *Curve, d *big.Int) (*PrivateKey, error) {
	d = new(big.Int).Mod(d, c.Order)
	if d.Sign() == 0 {
		return nil, fmt.Errorf("ecc: zero private scalar")
	}
	return &PrivateKey{Curve: c, D: d, Pub: c.ScalarBaseMult(d)}, nil
}

// SharedSecret computes the x-coordinate of d*Q as the session secret,
// rejecting peer points that are not on the curve or are the identity
// (basic public-key validation).
func (k *PrivateKey) SharedSecret(peer Point) ([]byte, error) {
	if peer.Inf {
		return nil, fmt.Errorf("ecc: peer public key is the identity")
	}
	if !k.Curve.OnCurve(peer) {
		return nil, fmt.Errorf("ecc: peer public key not on %s", k.Curve)
	}
	s := k.Curve.ScalarMult(k.D, peer)
	if s.Inf {
		return nil, fmt.Errorf("ecc: shared point at infinity")
	}
	return k.Curve.F.Bytes(s.X), nil
}
