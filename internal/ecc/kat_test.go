package ecc

// Known-answer vectors for the deterministic signer. The private keys
// and messages are arbitrary; the signatures were produced by this
// implementation and cross-verified by the independent big.Int
// verifier (TestEngineSignKAT re-verifies on every run), then pinned
// so the nonce derivation and scalar arithmetic cannot drift silently.
var signKATs = []struct {
	curve string
	d     string // private scalar, hex
	msg   string // SHA-256 hashed before signing
	sig   string // r || s, hex
}{
	{
		curve: "K-233",
		d:     "1a2b3c4d5e6f708192a3b4c5d6e7f8091a2b3c4d5e6f708192a3b4c5d6",
		msg:   "sample",
		sig:   "504e06dd8f2e7fe080f7a0efa9be2682c7d56bec2481531d844359e74c0187b41e27f4cfd56214e99870137d584ef6580bbf6e8dba0becbcf264",
	},
	{
		curve: "K-233",
		d:     "1a2b3c4d5e6f708192a3b4c5d6e7f8091a2b3c4d5e6f708192a3b4c5d6",
		msg:   "test",
		sig:   "7e59ac07d27a1ca663b3113a4c5d50b4ac11e7b4718fa7dc502977e6981f65181b133cc719e2cc33bf1beff12622dcea5e3d577b43b7e25d5404",
	},
	{
		curve: "K-163",
		d:     "09a4d6792295a7f730fc3f2b49cbc0f62e862272f",
		msg:   "sample",
		sig:   "0113a63990598a3828c407c0f4d2438d990df99a7f01313a2e03f5412ddb296a22e2c455335545672d9f",
	},
	{
		curve: "B-163",
		d:     "35318fc447d48d7e6bc93b48617dddedf26aa658f",
		msg:   "sample",
		sig:   "0134e00f78fc1cb9501675d91c401de20ddf228cdc008cd8c51393c93484504779fad1f121a886d2960f",
	},
	{
		curve: "K-283",
		d:     "06a0777356e87b89ba1ed3a3d845357be332173c8f7a65bdc7db4fab3c4cc79acc8194e",
		msg:   "sample",
		sig:   "019e90aa3de5fb20aed22879f92c6fed278d9c9b9293cc5e94922cd952c9dbf20df1753a00ca558bbc495da2ee449b53b7d1fb2b86fd1996b9a7f2b9b40b8e6a9fd8254ac750939e",
	},
}
