package ecc

// Fixed-width scalar arithmetic modulo the curve group order n, on
// little-endian uint32 words — the integer-side companion of gfbig's
// allocation-free To-variants. math/big's ModInverse/Mod allocate on
// every call, which would put the GC on the ecdsa-sign hot path; these
// routines run entirely in caller-provided buffers so a steady-state
// sign is allocation-free. Division is bit-serial and inversion is the
// binary extended Euclidean algorithm (HAC 14.61) — variable-time, like
// the rest of the datapath model (see the package comment).

import "math/big"

// scalarField holds the group order and derived sizes. It is immutable
// after construction and safe to share across workers.
type scalarField struct {
	n     []uint32 // the order, little-endian
	words int
	bits  int // n.BitLen()
	bytes int // ceil(bits/8): the wire width of a scalar
}

func newScalarField(order *big.Int) *scalarField {
	bits := order.BitLen()
	words := (bits + 31) / 32
	sf := &scalarField{
		n:     make([]uint32, words),
		words: words,
		bits:  bits,
		bytes: (bits + 7) / 8,
	}
	sf.setBytes(sf.n, order.Bytes())
	return sf
}

// scalarScratch is the per-engine working memory of the scalar routines.
type scalarScratch struct {
	wide []uint32 // 2*words: schoolbook product / wide reduction input
	r    []uint32 // words+1: bit-serial division remainder
	u    []uint32 // inversion temporaries
	v    []uint32
	x1   []uint32
	x2   []uint32
}

func (sf *scalarField) newScratch() *scalarScratch {
	w := sf.words
	return &scalarScratch{
		wide: make([]uint32, 2*w),
		r:    make([]uint32, w+1),
		u:    make([]uint32, w),
		v:    make([]uint32, w),
		x1:   make([]uint32, w),
		x2:   make([]uint32, w),
	}
}

func (sf *scalarField) newElem() []uint32 { return make([]uint32, sf.words) }

func (sf *scalarField) setZero(x []uint32) {
	for i := range x {
		x[i] = 0
	}
}

func (sf *scalarField) isZero(x []uint32) bool {
	for _, w := range x {
		if w != 0 {
			return false
		}
	}
	return true
}

// cmp returns -1, 0 or 1 as a <=> b.
func (sf *scalarField) cmp(a, b []uint32) int {
	for i := len(a) - 1; i >= 0; i-- {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// setBytes parses big-endian bytes into dst. Bytes beyond the field
// width must be zero; excess low-order input wraps is not allowed —
// callers guarantee len(b) <= words*4 (wire widths are validated first).
func (sf *scalarField) setBytes(dst []uint32, b []byte) {
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < len(b); i++ {
		v := b[len(b)-1-i]
		dst[i/4] |= uint32(v) << (8 * (i % 4))
	}
}

// toBytes writes the fixed-width (sf.bytes) big-endian encoding of a.
func (sf *scalarField) toBytes(dst []byte, a []uint32) {
	n := sf.bytes
	for i := 0; i < n; i++ {
		dst[n-1-i] = byte(a[i/4] >> (8 * (i % 4)))
	}
}

// add sets dst = a + b, returning the carry out.
func (sf *scalarField) add(dst, a, b []uint32) uint32 {
	var carry uint64
	for i := range dst {
		t := uint64(a[i]) + uint64(b[i]) + carry
		dst[i] = uint32(t)
		carry = t >> 32
	}
	return uint32(carry)
}

// sub sets dst = a - b, returning the borrow out (1 when a < b).
func (sf *scalarField) sub(dst, a, b []uint32) uint32 {
	var borrow uint64
	for i := range dst {
		t := uint64(a[i]) - uint64(b[i]) - borrow
		dst[i] = uint32(t)
		borrow = t >> 32 & 1
	}
	return uint32(borrow)
}

// addMod sets dst = a + b mod n (operands < n).
func (sf *scalarField) addMod(dst, a, b []uint32) {
	carry := sf.add(dst, a, b)
	if carry != 0 || sf.cmp(dst, sf.n) >= 0 {
		sf.sub(dst, dst, sf.n)
	}
}

// subMod sets dst = a - b mod n (operands < n).
func (sf *scalarField) subMod(dst, a, b []uint32) {
	if sf.sub(dst, a, b) != 0 {
		sf.add(dst, dst, sf.n)
	}
}

// condSub reduces x < 2n to x mod n with one conditional subtraction.
func (sf *scalarField) condSub(x []uint32) {
	if sf.cmp(x, sf.n) >= 0 {
		sf.sub(x, x, sf.n)
	}
}

// mulMod sets dst = a * b mod n (operands < n).
func (sf *scalarField) mulMod(dst, a, b []uint32, s *scalarScratch) {
	w := sf.words
	wide := s.wide
	for i := range wide {
		wide[i] = 0
	}
	for i := 0; i < w; i++ {
		ai := uint64(a[i])
		if ai == 0 {
			continue
		}
		var carry uint64
		for j := 0; j < w; j++ {
			t := uint64(wide[i+j]) + ai*uint64(b[j]) + carry
			wide[i+j] = uint32(t)
			carry = t >> 32
		}
		wide[i+w] = uint32(carry)
	}
	sf.reduceWide(dst, wide, s)
}

// reduceWide sets dst = wide mod n by bit-serial long division. wide is
// left unmodified; any width up to 2*words is accepted.
func (sf *scalarField) reduceWide(dst, wide []uint32, s *scalarScratch) {
	r := s.r
	for i := range r {
		r[i] = 0
	}
	top := -1
	for i := len(wide) - 1; i >= 0; i-- {
		if wide[i] != 0 {
			top = i*32 + 31
			for b := 31; b >= 0; b-- {
				if wide[i]>>b&1 == 1 {
					top = i*32 + b
					break
				}
			}
			break
		}
	}
	for i := top; i >= 0; i-- {
		// r = r<<1 | bit(wide, i)
		var carry uint32
		for j := range r {
			nc := r[j] >> 31
			r[j] = r[j]<<1 | carry
			carry = nc
		}
		r[0] |= wide[i/32] >> (i % 32) & 1
		if sf.geqN(r) {
			sf.subN(r)
		}
	}
	copy(dst, r[:sf.words])
}

// geqN reports whether the (words+1)-wide value r is >= n.
func (sf *scalarField) geqN(r []uint32) bool {
	if r[sf.words] != 0 {
		return true
	}
	return sf.cmp(r[:sf.words], sf.n) >= 0
}

// subN subtracts n from the (words+1)-wide value r in place.
func (sf *scalarField) subN(r []uint32) {
	var borrow uint64
	for i := 0; i < sf.words; i++ {
		t := uint64(r[i]) - uint64(sf.n[i]) - borrow
		r[i] = uint32(t)
		borrow = t >> 32 & 1
	}
	r[sf.words] -= uint32(borrow)
}

// shr1 halves x in place, shifting in topBit at the high end.
func shr1(x []uint32, topBit uint32) {
	for i := 0; i < len(x)-1; i++ {
		x[i] = x[i]>>1 | x[i+1]<<31
	}
	x[len(x)-1] = x[len(x)-1]>>1 | topBit<<31
}

// halfMod sets x = x/2 mod n: even values shift, odd values first add
// the (odd) modulus so the sum is even, tracking the carry bit.
func (sf *scalarField) halfMod(x []uint32) {
	if x[0]&1 == 0 {
		shr1(x, 0)
		return
	}
	carry := sf.add(x, x, sf.n)
	shr1(x, carry)
}

// invMod sets dst = a^-1 mod n by the binary extended Euclidean
// algorithm (HAC 14.61; n is odd and prime, a must be in [1, n-1]).
func (sf *scalarField) invMod(dst, a []uint32, s *scalarScratch) {
	u, v, x1, x2 := s.u, s.v, s.x1, s.x2
	copy(u, a)
	copy(v, sf.n)
	sf.setZero(x1)
	x1[0] = 1
	sf.setZero(x2)
	for !sf.isOne(u) && !sf.isOne(v) {
		for u[0]&1 == 0 {
			shr1(u, 0)
			sf.halfMod(x1)
		}
		for v[0]&1 == 0 {
			shr1(v, 0)
			sf.halfMod(x2)
		}
		if sf.cmp(u, v) >= 0 {
			sf.sub(u, u, v)
			sf.subMod(x1, x1, x2)
		} else {
			sf.sub(v, v, u)
			sf.subMod(x2, x2, x1)
		}
	}
	if sf.isOne(u) {
		copy(dst, x1)
	} else {
		copy(dst, x2)
	}
}

func (sf *scalarField) isOne(x []uint32) bool {
	if x[0] != 1 {
		return false
	}
	for _, w := range x[1:] {
		if w != 0 {
			return false
		}
	}
	return true
}

// bits2int converts a byte string to an integer per RFC 6979 §2.3.2 /
// SEC 1 §4.1.3: the leftmost min(8*len(b), bits) bits of b. The result
// may be >= n; callers reduce (condSub for digests, < 2n by
// construction) or reject (nonce candidates).
func (sf *scalarField) bits2int(dst []uint32, b []byte) {
	cl := (sf.bits + 7) / 8
	if len(b) > cl {
		b = b[:cl]
	}
	sf.setBytes(dst, b)
	if excess := len(b)*8 - sf.bits; excess > 0 {
		// Right-shift by excess (< 8) bits.
		for i := 0; i < len(dst)-1; i++ {
			dst[i] = dst[i]>>excess | dst[i+1]<<(32-excess)
		}
		dst[len(dst)-1] >>= excess
	}
}
