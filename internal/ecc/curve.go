// Package ecc implements elliptic-curve cryptography over binary fields
// GF(2^m) — the asymmetric-cryptography (ECC_l) workload of the paper.
// It provides the NIST binary curves (Koblitz and pseudo-random) including
// the paper's flagship K-233 on GF(2^233)/x^233+x^74+1, affine and
// Lopez-Dahab projective point arithmetic, double-and-add and Montgomery
// ladder scalar multiplication, and ECDH key agreement.
//
// Curves are y^2 + xy = x^3 + a*x^2 + b over GF(2^m). This is a faithful
// reference implementation of the paper's datapath (variable-time,
// suitable for simulation and benchmarking, not production key material).
package ecc

import (
	"fmt"
	"io"
	"math/big"

	"repro/internal/gfbig"
)

// Curve describes a binary elliptic curve y^2 + xy = x^3 + a*x^2 + b with
// a distinguished base point of prime order.
type Curve struct {
	Name     string
	F        *gfbig.Field
	A, B     gfbig.Elem
	Gx, Gy   gfbig.Elem
	Order    *big.Int // order of the base point
	Cofactor int
}

// Point is an affine point; Inf marks the point at infinity (the group
// identity), in which case X and Y are ignored.
type Point struct {
	X, Y gfbig.Elem
	Inf  bool
}

// Infinity returns the point at infinity.
func Infinity() Point { return Point{Inf: true} }

// Generator returns the curve's base point.
func (c *Curve) Generator() Point {
	return Point{X: c.F.Copy(c.Gx), Y: c.F.Copy(c.Gy)}
}

// Equal reports whether p and q are the same point.
func (c *Curve) Equal(p, q Point) bool {
	if p.Inf || q.Inf {
		return p.Inf == q.Inf
	}
	return c.F.Equal(p.X, q.X) && c.F.Equal(p.Y, q.Y)
}

// OnCurve reports whether p satisfies y^2 + xy = x^3 + a*x^2 + b.
func (c *Curve) OnCurve(p Point) bool {
	if p.Inf {
		return true
	}
	f := c.F
	lhs := f.Add(f.Sqr(p.Y), f.Mul(p.X, p.Y))
	x2 := f.Sqr(p.X)
	rhs := f.Add(f.Add(f.Mul(x2, p.X), f.Mul(c.A, x2)), c.B)
	return f.Equal(lhs, rhs)
}

// Neg returns -p = (x, x+y).
func (c *Curve) Neg(p Point) Point {
	if p.Inf {
		return p
	}
	return Point{X: c.F.Copy(p.X), Y: c.F.Add(p.X, p.Y)}
}

// Add returns p + q using the affine char-2 group law: one field inversion,
// two multiplications and one squaring — the operation mix the paper maps
// onto GF instructions.
func (c *Curve) Add(p, q Point) Point {
	if p.Inf {
		return q
	}
	if q.Inf {
		return p
	}
	f := c.F
	if f.Equal(p.X, q.X) {
		if f.Equal(p.Y, q.Y) {
			return c.Double(p) // handles the x==0 order-2 case internally
		}
		return Infinity() // q == -p
	}
	// lambda = (y1+y2)/(x1+x2)
	lam := f.Div(f.Add(p.Y, q.Y), f.Add(p.X, q.X))
	// x3 = lambda^2 + lambda + x1 + x2 + a
	x3 := f.Add(f.Add(f.Add(f.Add(f.Sqr(lam), lam), p.X), q.X), c.A)
	// y3 = lambda*(x1+x3) + x3 + y1
	y3 := f.Add(f.Add(f.Mul(lam, f.Add(p.X, x3)), x3), p.Y)
	return Point{X: x3, Y: y3}
}

// Double returns 2p.
func (c *Curve) Double(p Point) Point {
	if p.Inf {
		return p
	}
	f := c.F
	if f.IsZero(p.X) {
		// The only point with x=0 is (0, sqrt(b)), which has order 2.
		return Infinity()
	}
	// lambda = x + y/x
	lam := f.Add(p.X, f.Div(p.Y, p.X))
	// x3 = lambda^2 + lambda + a
	x3 := f.Add(f.Add(f.Sqr(lam), lam), c.A)
	// y3 = x^2 + (lambda+1)*x3
	lam1 := f.Copy(lam)
	lam1[0] ^= 1
	y3 := f.Add(f.Sqr(p.X), f.Mul(lam1, x3))
	return Point{X: x3, Y: y3}
}

// ScalarMult returns k*p by left-to-right double-and-add on Lopez-Dahab
// projective coordinates with mixed additions, converting back to affine
// at the end (one inversion) — the paper's Section 3.3.4 structure.
// Negative or zero k yields the identity handling one expects: k is taken
// modulo the curve order.
func (c *Curve) ScalarMult(k *big.Int, p Point) Point {
	k = new(big.Int).Mod(k, c.Order)
	if k.Sign() == 0 || p.Inf {
		return Infinity()
	}
	acc := newLD(c) // identity
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc = c.ldDouble(acc)
		if k.Bit(i) == 1 {
			acc = c.ldAddMixed(acc, p)
		}
	}
	return c.ldToAffine(acc)
}

// ScalarBaseMult returns k*G.
func (c *Curve) ScalarBaseMult(k *big.Int) Point { return c.ScalarMult(k, c.Generator()) }

// ScalarMultAffine is ScalarMult computed entirely in affine coordinates
// (one inversion per group operation); it exists as a slow independent
// cross-check and as the baseline for the projective-coordinates ablation.
func (c *Curve) ScalarMultAffine(k *big.Int, p Point) Point {
	k = new(big.Int).Mod(k, c.Order)
	acc := Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc = c.Double(acc)
		if k.Bit(i) == 1 {
			acc = c.Add(acc, p)
		}
	}
	return acc
}

// String implements fmt.Stringer.
func (c *Curve) String() string { return c.Name }

// RandomScalar returns a uniformly random scalar in [1, Order-1] using the
// provided entropy source.
func (c *Curve) RandomScalar(rand io.Reader) (*big.Int, error) {
	max := new(big.Int).Sub(c.Order, big.NewInt(1))
	byteLen := (max.BitLen() + 7) / 8
	buf := make([]byte, byteLen)
	for {
		if _, err := io.ReadFull(rand, buf); err != nil {
			return nil, fmt.Errorf("ecc: entropy: %w", err)
		}
		k := new(big.Int).SetBytes(buf)
		k.Mod(k, max)
		k.Add(k, big.NewInt(1)) // [1, Order-1]
		return k, nil
	}
}

// PaperScalar returns the scalar pattern of Section 3.3.4: a 113-bit value
// whose top bit is one and whose remaining 112 bits contain exactly 56
// ones, so that double-and-add performs 112 point doublings and 56 point
// additions (alternating ones and zeros).
func PaperScalar() *big.Int {
	k := new(big.Int).SetBit(new(big.Int), 112, 1)
	for i := 0; i < 112; i += 2 {
		k.SetBit(k, i, 1)
	}
	return k
}
