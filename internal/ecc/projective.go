package ecc

import (
	"math/big"

	"repro/internal/gfbig"
)

// Lopez-Dahab projective coordinates: an affine point (x, y) is
// represented as (X, Y, Z) with x = X/Z and y = Y/Z^2. Point addition and
// doubling then need no field inversion — the transformation the paper
// applies because inversion in GF(2^233) costs ~40k cycles while a
// multiplication costs ~600 (Section 3.3.4, Table 9): "transforming
// points to a different coordinate (e.g., the projective coordinate) may
// be necessary to reduce the complexity."

type ldPoint struct {
	X, Y, Z gfbig.Elem // Z == 0 encodes the identity
}

func newLD(c *Curve) ldPoint {
	return ldPoint{X: c.F.One(), Y: c.F.Zero(), Z: c.F.Zero()}
}

func (c *Curve) ldFromAffine(p Point) ldPoint {
	if p.Inf {
		return newLD(c)
	}
	return ldPoint{X: c.F.Copy(p.X), Y: c.F.Copy(p.Y), Z: c.F.One()}
}

func (c *Curve) ldIsInf(p ldPoint) bool { return c.F.IsZero(p.Z) }

// ldToAffine converts back with one inversion: x = X/Z, y = Y/Z^2.
func (c *Curve) ldToAffine(p ldPoint) Point {
	if c.ldIsInf(p) {
		return Infinity()
	}
	f := c.F
	zInv := f.Inv(p.Z)
	x := f.Mul(p.X, zInv)
	y := f.Mul(p.Y, f.Sqr(zInv))
	return Point{X: x, Y: y}
}

// ldDouble implements Lopez-Dahab doubling (Hankerson-Menezes-Vanstone
// Alg. 3.24): Z3 = X1^2*Z1^2, X3 = X1^4 + b*Z1^4,
// Y3 = b*Z1^4*Z3 + X3*(a*Z3 + Y1^2 + b*Z1^4).
// Cost: 4 multiplications + 5 squarings (one mult saved when a = 0).
func (c *Curve) ldDouble(p ldPoint) ldPoint {
	if c.ldIsInf(p) {
		return p
	}
	f := c.F
	if f.IsZero(p.X) {
		return newLD(c) // order-2 point
	}
	x2 := f.Sqr(p.X)
	z2 := f.Sqr(p.Z)
	bz4 := f.Mul(c.B, f.Sqr(z2))
	z3 := f.Mul(x2, z2)
	x3 := f.Add(f.Sqr(x2), bz4)
	t := f.Add(f.Sqr(p.Y), bz4)
	if !f.IsZero(c.A) {
		t = f.Add(t, f.Mul(c.A, z3))
	}
	y3 := f.Add(f.Mul(bz4, z3), f.Mul(x3, t))
	return ldPoint{X: x3, Y: y3, Z: z3}
}

// ldAddMixed adds the affine point q to the projective point p
// (Hankerson-Menezes-Vanstone Alg. 3.25, mixed coordinates):
// 8 multiplications + 5 squarings.
func (c *Curve) ldAddMixed(p ldPoint, q Point) ldPoint {
	if q.Inf {
		return p
	}
	if c.ldIsInf(p) {
		return c.ldFromAffine(q)
	}
	f := c.F
	z12 := f.Sqr(p.Z)
	a := f.Add(f.Mul(q.Y, z12), p.Y) // A = y2*Z1^2 + Y1
	b := f.Add(f.Mul(q.X, p.Z), p.X) // B = x2*Z1 + X1
	if f.IsZero(b) {
		if f.IsZero(a) {
			// p == q: double instead.
			return c.ldDouble(p)
		}
		return newLD(c) // p == -q
	}
	cc := f.Mul(p.Z, b) // C = Z1*B
	var d gfbig.Elem    // D = B^2*(C + a*Z1^2)
	if f.IsZero(c.A) {
		d = f.Mul(f.Sqr(b), cc)
	} else {
		d = f.Mul(f.Sqr(b), f.Add(cc, f.Mul(c.A, z12)))
	}
	z3 := f.Sqr(cc)
	e := f.Mul(a, cc)
	x3 := f.Add(f.Add(f.Sqr(a), d), e)
	ff := f.Add(x3, f.Mul(q.X, z3))
	g := f.Mul(f.Add(q.X, q.Y), f.Sqr(z3))
	y3 := f.Add(f.Mul(f.Add(e, z3), ff), g)
	return ldPoint{X: x3, Y: y3, Z: z3}
}

// MontgomeryLadderX computes the x-coordinate of k*P with the Lopez-Dahab
// x-only Montgomery ladder (Hankerson-Menezes-Vanstone Alg. 3.40): two
// field multiplications per key bit for the add step and one squaring-rich
// double step, branching only on the key bit pair swap. It returns ok =
// false when the result is the point at infinity.
//
// The full y-coordinate recovery is performed at the end so the result can
// be checked against ScalarMult.
func (c *Curve) MontgomeryLadderX(k *big.Int, p Point) (x gfbig.Elem, ok bool) {
	pt, ok := c.MontgomeryLadder(k, p)
	if !ok {
		return nil, false
	}
	return pt.X, true
}

// MontgomeryLadder computes k*P with the x-only ladder, recovering y at
// the end. It returns ok = false for the point at infinity.
func (c *Curve) MontgomeryLadder(k *big.Int, p Point) (Point, bool) {
	k = new(big.Int).Mod(k, c.Order)
	if k.Sign() == 0 || p.Inf {
		return Infinity(), false
	}
	if k.Cmp(big.NewInt(1)) == 0 {
		return p, true
	}
	f := c.F
	x := p.X
	// R0 = P: (X1, Z1); R1 = 2P: (X2, Z2) = (x^4 + b, x^2).
	x1, z1 := f.Copy(x), f.One()
	x2 := f.Add(f.Sqr(f.Sqr(x)), c.B)
	z2 := f.Sqr(x)
	mAdd := func(xa, za, xb, zb gfbig.Elem) (gfbig.Elem, gfbig.Elem) {
		// (xa,za) <- (xa,za)+(xb,zb) given difference P with x-coord x:
		// Z3 = (Xa*Zb + Xb*Za)^2, X3 = x*Z3 + Xa*Zb*Xb*Za.
		t1 := f.Mul(xa, zb)
		t2 := f.Mul(xb, za)
		z3 := f.Sqr(f.Add(t1, t2))
		x3 := f.Add(f.Mul(x, z3), f.Mul(t1, t2))
		return x3, z3
	}
	mDouble := func(xa, za gfbig.Elem) (gfbig.Elem, gfbig.Elem) {
		// X3 = Xa^4 + b*Za^4, Z3 = Xa^2*Za^2.
		xa2 := f.Sqr(xa)
		za2 := f.Sqr(za)
		x3 := f.Add(f.Sqr(xa2), f.Mul(c.B, f.Sqr(za2)))
		z3 := f.Mul(xa2, za2)
		return x3, z3
	}
	for i := k.BitLen() - 2; i >= 0; i-- {
		if k.Bit(i) == 1 {
			x1, z1 = mAdd(x1, z1, x2, z2)
			x2, z2 = mDouble(x2, z2)
		} else {
			x2, z2 = mAdd(x2, z2, x1, z1)
			x1, z1 = mDouble(x1, z1)
		}
	}
	if f.IsZero(z1) {
		return Infinity(), false
	}
	if f.IsZero(z2) {
		// R1 = infinity means R0 = -P; kP = -P.
		return c.Neg(p), true
	}
	// y recovery (HMV Alg. 3.40 Mxy): with x1/z1 = x(kP), x2/z2 = x((k+1)P):
	// xk = X1/Z1
	// yk = (x + xk) * [ (X1 + x*Z1)*(X2 + x*Z2) + (x^2 + y)*Z1*Z2 ]
	//      / (x*Z1*Z2) + y
	t3 := f.Mul(z1, z2)
	xk := f.Mul(x1, f.Inv(z1))
	num := f.Add(
		f.Mul(f.Add(x1, f.Mul(x, z1)), f.Add(x2, f.Mul(x, z2))),
		f.Mul(f.Add(f.Sqr(x), p.Y), t3),
	)
	den := f.Mul(x, t3)
	yk := f.Add(f.Mul(f.Add(x, xk), f.Mul(num, f.Inv(den))), p.Y)
	return Point{X: xk, Y: yk}, true
}
