package ecc

// The secure-session handshake: the paper's IoT security story as one
// end-to-end exchange. A client sends its ECDH public point and an
// opaque challenge; the server replies with a fresh ephemeral public
// point plus the challenge sealed under AES-128-GCM keyed from the
// ECDH shared secret. Opening the sealed challenge proves both sides
// derived the same key, and from then on the pair can run the sealed
// channel. The server side draws a fresh ephemeral key per handshake
// from real entropy, which is exactly why the GFP1 secure-session op
// is never retried by the proxy: a replay would answer with a
// different key than the response the client may already have acted
// on (see server.Op.Idempotent).

import (
	"crypto/sha256"
	"fmt"
	"io"

	"repro/internal/aes"
)

// sessionDomain separates the session KDF and AAD from any other use
// of the shared secret.
const sessionDomain = "GFP1 secure-session v1"

// SessionNonceBytes is the AES-GCM nonce width in the wire response.
const SessionNonceBytes = 12

// sessionTagBytes is the GCM tag appended to the sealed challenge.
const sessionTagBytes = 16

// SessionKey derives the 16-byte AES-128-GCM channel key from an ECDH
// shared secret: SHA-256(domain || shared)[:16].
func SessionKey(shared []byte) []byte {
	h := sha256.New()
	io.WriteString(h, sessionDomain)
	h.Write(shared)
	return h.Sum(nil)[:16]
}

// SessionResponseBytes returns the wire width of a handshake response
// for a challenge of the given length: ephemeral point, nonce, sealed
// challenge (ciphertext plus tag).
func (e *Engine) SessionResponseBytes(challengeLen int) int {
	return e.PointBytes() + SessionNonceBytes + challengeLen + sessionTagBytes
}

// SecureSession runs the server side of the handshake: validate the
// client's point, generate an ephemeral key pair from rand, derive the
// channel key, and append ephPub || nonce || seal(challenge) to dst.
// The AAD binds both public points under the domain label, so a
// response cannot be spliced onto a different handshake. Unlike
// Derive/SignAppend this path allocates (fresh key material each call).
func (e *Engine) SecureSession(rand io.Reader, dst, clientPub, challenge []byte) ([]byte, error) {
	if err := e.parsePoint(clientPub); err != nil {
		return nil, err
	}
	client := Point{X: e.c.F.Copy(e.px), Y: e.c.F.Copy(e.py)}
	eph, err := GenerateKey(e.c, rand)
	if err != nil {
		return nil, fmt.Errorf("ecc: session keygen: %w", err)
	}
	shared, err := eph.SharedSecret(client)
	if err != nil {
		return nil, err
	}
	ephPub := e.c.MarshalUncompressed(eph.Pub)
	var nonce [SessionNonceBytes]byte
	if _, err := io.ReadFull(rand, nonce[:]); err != nil {
		return nil, fmt.Errorf("ecc: session nonce: %w", err)
	}
	gcm, err := sessionGCM(shared)
	if err != nil {
		return nil, err
	}
	sealed, err := gcm.Seal(nonce[:], challenge, sessionAAD(clientPub, ephPub))
	if err != nil {
		return nil, err
	}
	dst = append(dst, ephPub...)
	dst = append(dst, nonce[:]...)
	dst = append(dst, sealed...)
	return dst, nil
}

// OpenSessionResponse runs the client side: parse the server's
// response, derive the same channel key from the client's private key
// and the server's ephemeral point, and open the sealed challenge.
// It returns the channel key and the recovered challenge.
func OpenSessionResponse(priv *PrivateKey, clientPub, resp []byte) (key, challenge []byte, err error) {
	pb := 1 + 2*(priv.Curve.F.M()+7)/8
	if len(resp) < pb+SessionNonceBytes+sessionTagBytes {
		return nil, nil, fmt.Errorf("ecc: session response truncated")
	}
	ephPub := resp[:pb]
	nonce := resp[pb : pb+SessionNonceBytes]
	sealed := resp[pb+SessionNonceBytes:]
	eph, err := priv.Curve.UnmarshalUncompressed(ephPub)
	if err != nil {
		return nil, nil, err
	}
	shared, err := priv.SharedSecret(eph)
	if err != nil {
		return nil, nil, err
	}
	gcm, err := sessionGCM(shared)
	if err != nil {
		return nil, nil, err
	}
	challenge, err = gcm.Open(nonce, sealed, sessionAAD(clientPub, ephPub))
	if err != nil {
		return nil, nil, fmt.Errorf("ecc: session open: %w", err)
	}
	return SessionKey(shared), challenge, nil
}

func sessionGCM(shared []byte) (*aes.GCM, error) {
	c, err := aes.NewCipher(SessionKey(shared))
	if err != nil {
		return nil, err
	}
	return c.NewGCM(), nil
}

func sessionAAD(clientPub, ephPub []byte) []byte {
	aad := make([]byte, 0, len(sessionDomain)+len(clientPub)+len(ephPub))
	aad = append(aad, sessionDomain...)
	aad = append(aad, clientPub...)
	aad = append(aad, ephPub...)
	return aad
}
