package ecc

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestBasePointsOnCurve(t *testing.T) {
	for _, c := range Curves() {
		if !c.OnCurve(c.Generator()) {
			t.Errorf("%s: base point not on curve", c)
		}
	}
}

func TestOrderAnnihilatesBasePoint(t *testing.T) {
	// n*G must be the point at infinity — validates both the order constant
	// and the whole scalar-multiplication stack.
	for _, c := range Curves() {
		if p := c.ScalarBaseMult(c.Order); !p.Inf {
			t.Errorf("%s: n*G != infinity", c)
		}
		if p := c.ScalarBaseMult(new(big.Int).Sub(c.Order, big.NewInt(1))); !c.Equal(p, c.Neg(c.Generator())) {
			t.Errorf("%s: (n-1)*G != -G", c)
		}
	}
}

func TestGroupLawSmallMultiples(t *testing.T) {
	c := K233()
	g := c.Generator()
	// Repeated addition must match scalar multiplication for k = 1..12.
	acc := Infinity()
	for k := 1; k <= 12; k++ {
		acc = c.Add(acc, g)
		if !c.OnCurve(acc) {
			t.Fatalf("%d*G not on curve", k)
		}
		sm := c.ScalarBaseMult(big.NewInt(int64(k)))
		if !c.Equal(acc, sm) {
			t.Fatalf("%d*G: repeated add != ScalarMult", k)
		}
	}
}

func TestAddCommutativeAssociative(t *testing.T) {
	c := K233()
	g := c.Generator()
	p := c.ScalarBaseMult(big.NewInt(7))
	q := c.ScalarBaseMult(big.NewInt(11))
	r := c.ScalarBaseMult(big.NewInt(13))
	if !c.Equal(c.Add(p, q), c.Add(q, p)) {
		t.Fatal("addition not commutative")
	}
	if !c.Equal(c.Add(c.Add(p, q), r), c.Add(p, c.Add(q, r))) {
		t.Fatal("addition not associative")
	}
	if !c.Equal(c.Add(p, Infinity()), p) {
		t.Fatal("P + 0 != P")
	}
	if !c.Equal(c.Add(p, c.Neg(p)), Infinity()) {
		t.Fatal("P + (-P) != 0")
	}
	if !c.Equal(c.Add(g, g), c.Double(g)) {
		t.Fatal("P + P != 2P")
	}
}

func TestScalarLinearity(t *testing.T) {
	for _, c := range []*Curve{K233(), B163()} {
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 5; trial++ {
			k1 := new(big.Int).Rand(rng, c.Order)
			k2 := new(big.Int).Rand(rng, c.Order)
			sum := new(big.Int).Add(k1, k2)
			lhs := c.ScalarBaseMult(sum)
			rhs := c.Add(c.ScalarBaseMult(k1), c.ScalarBaseMult(k2))
			if !c.Equal(lhs, rhs) {
				t.Fatalf("%s: (k1+k2)G != k1·G + k2·G", c)
			}
		}
	}
}

func TestProjectiveMatchesAffine(t *testing.T) {
	for _, c := range Curves() {
		rng := rand.New(rand.NewSource(2))
		k := new(big.Int).Rand(rng, big.NewInt(1<<30))
		pa := c.ScalarMultAffine(k, c.Generator())
		pp := c.ScalarBaseMult(k)
		if !c.Equal(pa, pp) {
			t.Errorf("%s: projective != affine scalar mult", c)
		}
	}
}

func TestMontgomeryLadderMatches(t *testing.T) {
	for _, c := range Curves() {
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 3; trial++ {
			k := new(big.Int).Rand(rng, c.Order)
			if k.Sign() == 0 {
				continue
			}
			want := c.ScalarBaseMult(k)
			got, ok := c.MontgomeryLadder(k, c.Generator())
			if !ok {
				t.Fatalf("%s: ladder returned infinity for k=%v", c, k)
			}
			if !c.Equal(got, want) {
				t.Fatalf("%s: ladder point != double-and-add", c)
			}
			x, ok := c.MontgomeryLadderX(k, c.Generator())
			if !ok || !c.F.Equal(x, want.X) {
				t.Fatalf("%s: ladder x mismatch", c)
			}
		}
	}
}

func TestMontgomeryLadderEdgeCases(t *testing.T) {
	c := K233()
	g := c.Generator()
	if _, ok := c.MontgomeryLadder(big.NewInt(0), g); ok {
		t.Error("k=0 should be infinity")
	}
	one, ok := c.MontgomeryLadder(big.NewInt(1), g)
	if !ok || !c.Equal(one, g) {
		t.Error("k=1 != G")
	}
	two, ok := c.MontgomeryLadder(big.NewInt(2), g)
	if !ok || !c.Equal(two, c.Double(g)) {
		t.Error("k=2 != 2G")
	}
	// k = n-1 gives -G; k = n gives infinity.
	nm1, ok := c.MontgomeryLadder(new(big.Int).Sub(c.Order, big.NewInt(1)), g)
	if !ok || !c.Equal(nm1, c.Neg(g)) {
		t.Error("k=n-1 != -G")
	}
	if _, ok := c.MontgomeryLadder(c.Order, g); ok {
		t.Error("k=n should be infinity")
	}
}

func TestScalarMultEdgeCases(t *testing.T) {
	c := K233()
	g := c.Generator()
	if !c.ScalarBaseMult(big.NewInt(0)).Inf {
		t.Error("0*G != infinity")
	}
	if !c.ScalarMult(big.NewInt(5), Infinity()).Inf {
		t.Error("5*infinity != infinity")
	}
	// Negative scalars wrap modulo the order.
	neg := c.ScalarBaseMult(big.NewInt(-1))
	if !c.Equal(neg, c.Neg(g)) {
		t.Error("-1*G != -G")
	}
}

func TestDoubleOrderTwoPoint(t *testing.T) {
	// On K-233 (b=1) the point (0, 1) has order 2: 2*(0,1) = infinity.
	c := K233()
	p := Point{X: c.F.Zero(), Y: c.F.One()}
	if !c.OnCurve(p) {
		t.Fatal("(0,1) should be on K-233")
	}
	if !c.Double(p).Inf {
		t.Fatal("2*(0,sqrt(b)) != infinity")
	}
	if !c.Add(p, p).Inf {
		t.Fatal("(0,1)+(0,1) != infinity")
	}
}

func TestOnCurveRejectsJunk(t *testing.T) {
	c := K233()
	bad := Point{X: c.F.FromUint64(123), Y: c.F.FromUint64(456)}
	if c.OnCurve(bad) {
		t.Fatal("junk point accepted")
	}
}

func TestPaperScalarShape(t *testing.T) {
	k := PaperScalar()
	if k.BitLen() != 113 {
		t.Fatalf("bit length %d, want 113", k.BitLen())
	}
	ones := 0
	for i := 0; i < 112; i++ {
		if k.Bit(i) == 1 {
			ones++
		}
	}
	if ones != 56 {
		t.Fatalf("%d ones below the top bit, want 56", ones)
	}
	// And it must be a usable scalar on K-233.
	c := K233()
	p := c.ScalarBaseMult(k)
	if p.Inf || !c.OnCurve(p) {
		t.Fatal("paper scalar multiplication failed")
	}
}

func TestECDHAgreement(t *testing.T) {
	for _, c := range []*Curve{K233(), K163()} {
		rng := rand.New(rand.NewSource(4))
		alice, err := GenerateKey(c, rng)
		if err != nil {
			t.Fatal(err)
		}
		bob, err := GenerateKey(c, rng)
		if err != nil {
			t.Fatal(err)
		}
		s1, err := alice.SharedSecret(bob.Pub)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := bob.SharedSecret(alice.Pub)
		if err != nil {
			t.Fatal(err)
		}
		if string(s1) != string(s2) {
			t.Fatalf("%s: shared secrets differ", c)
		}
		if len(s1) != (c.F.M()+7)/8 {
			t.Fatalf("%s: secret length %d", c, len(s1))
		}
	}
}

func TestECDHValidation(t *testing.T) {
	c := K233()
	rng := rand.New(rand.NewSource(5))
	key, _ := GenerateKey(c, rng)
	if _, err := key.SharedSecret(Infinity()); err == nil {
		t.Error("identity peer accepted")
	}
	junk := Point{X: c.F.FromUint64(1), Y: c.F.FromUint64(2)}
	if _, err := key.SharedSecret(junk); err == nil {
		t.Error("off-curve peer accepted")
	}
	if _, err := NewPrivateKey(c, big.NewInt(0)); err == nil {
		t.Error("zero scalar accepted")
	}
}

func TestRandomScalarRange(t *testing.T) {
	c := K163()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 20; i++ {
		k, err := c.RandomScalar(rng)
		if err != nil {
			t.Fatal(err)
		}
		if k.Sign() <= 0 || k.Cmp(c.Order) >= 0 {
			t.Fatalf("scalar out of range: %v", k)
		}
	}
}
