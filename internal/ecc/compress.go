package ecc

import "fmt"

// SEC 1 point compression for binary curves. A compressed point is the
// x-coordinate plus one bit: for x != 0 the bit is the least significant
// bit of z = y/x; decompression solves z^2 + z = x + a + b/x^2 and picks
// the root whose low bit matches. IoT radios care: K-233 public keys
// shrink from 60 to 31 bytes per transmission.

// Compress encodes p in SEC 1 form: 0x02/0x03 || x (or 0x00 for the
// point at infinity).
func (c *Curve) Compress(p Point) []byte {
	if p.Inf {
		return []byte{0x00}
	}
	out := make([]byte, 1+(c.F.M()+7)/8)
	var bit byte
	if !c.F.IsZero(p.X) {
		z := c.F.Div(p.Y, p.X)
		bit = byte(z[0] & 1)
	}
	out[0] = 0x02 | bit
	copy(out[1:], c.F.Bytes(p.X))
	return out
}

// Decompress inverts Compress, validating the result is on the curve.
func (c *Curve) Decompress(data []byte) (Point, error) {
	if len(data) == 1 && data[0] == 0x00 {
		return Infinity(), nil
	}
	if len(data) != 1+(c.F.M()+7)/8 || (data[0] != 0x02 && data[0] != 0x03) {
		return Point{}, fmt.Errorf("ecc: malformed compressed point")
	}
	f := c.F
	x, err := f.SetBytes(data[1:])
	if err != nil {
		return Point{}, fmt.Errorf("ecc: bad x-coordinate: %w", err)
	}
	bit := uint32(data[0] & 1)
	if f.IsZero(x) {
		// The only point with x = 0 is (0, sqrt(b)).
		return Point{X: x, Y: f.Sqrt(c.B)}, nil
	}
	// z^2 + z = x + a + b/x^2; y = x*z.
	rhs := f.Add(f.Add(x, c.A), f.Div(c.B, f.Sqr(x)))
	z, ok := f.SolveQuadratic(rhs)
	if !ok {
		return Point{}, fmt.Errorf("ecc: x-coordinate not on %s", c)
	}
	if z[0]&1 != bit {
		z = f.Copy(z)
		z[0] ^= 1 // the other root z + 1
	}
	p := Point{X: x, Y: f.Mul(x, z)}
	if !c.OnCurve(p) {
		return Point{}, fmt.Errorf("ecc: decompressed point fails curve equation")
	}
	return p, nil
}

// MarshalUncompressed encodes 0x04 || x || y (SEC 1 uncompressed form).
func (c *Curve) MarshalUncompressed(p Point) []byte {
	if p.Inf {
		return []byte{0x00}
	}
	n := (c.F.M() + 7) / 8
	out := make([]byte, 1+2*n)
	out[0] = 0x04
	copy(out[1:], c.F.Bytes(p.X))
	copy(out[1+n:], c.F.Bytes(p.Y))
	return out
}

// UnmarshalUncompressed decodes MarshalUncompressed output, validating
// curve membership.
func (c *Curve) UnmarshalUncompressed(data []byte) (Point, error) {
	if len(data) == 1 && data[0] == 0x00 {
		return Infinity(), nil
	}
	n := (c.F.M() + 7) / 8
	if len(data) != 1+2*n || data[0] != 0x04 {
		return Point{}, fmt.Errorf("ecc: malformed uncompressed point")
	}
	x, err := c.F.SetBytes(data[1 : 1+n])
	if err != nil {
		return Point{}, err
	}
	y, err := c.F.SetBytes(data[1+n:])
	if err != nil {
		return Point{}, err
	}
	p := Point{X: x, Y: y}
	if !c.OnCurve(p) {
		return Point{}, fmt.Errorf("ecc: point not on %s", c)
	}
	return p, nil
}
