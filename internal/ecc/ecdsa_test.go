package ecc

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestECDSASignVerify(t *testing.T) {
	for _, c := range []*Curve{K233(), B163()} {
		rng := rand.New(rand.NewSource(1))
		key, err := GenerateKey(c, rng)
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte("sensor reading: 21.4C at node 7")
		sig, err := key.Sign(rng, msg)
		if err != nil {
			t.Fatal(err)
		}
		if !Verify(c, key.Pub, msg, sig) {
			t.Fatalf("%s: valid signature rejected", c)
		}
		// Wrong message, tampered signature, wrong key must all fail.
		if Verify(c, key.Pub, []byte("sensor reading: 99.9C"), sig) {
			t.Errorf("%s: wrong message accepted", c)
		}
		bad := &Signature{R: new(big.Int).Add(sig.R, big.NewInt(1)), S: sig.S}
		if Verify(c, key.Pub, msg, bad) {
			t.Errorf("%s: tampered R accepted", c)
		}
		other, _ := GenerateKey(c, rng)
		if Verify(c, other.Pub, msg, sig) {
			t.Errorf("%s: wrong key accepted", c)
		}
	}
}

func TestECDSARejectsDegenerateSignatures(t *testing.T) {
	c := K233()
	rng := rand.New(rand.NewSource(2))
	key, _ := GenerateKey(c, rng)
	msg := []byte("m")
	if Verify(c, key.Pub, msg, nil) {
		t.Error("nil signature accepted")
	}
	if Verify(c, key.Pub, msg, &Signature{R: big.NewInt(0), S: big.NewInt(1)}) {
		t.Error("r=0 accepted")
	}
	if Verify(c, key.Pub, msg, &Signature{R: big.NewInt(1), S: c.Order}) {
		t.Error("s=n accepted")
	}
	if Verify(c, Infinity(), msg, &Signature{R: big.NewInt(1), S: big.NewInt(1)}) {
		t.Error("identity public key accepted")
	}
}

func TestECDSASignaturesAreRandomized(t *testing.T) {
	c := K163()
	rng := rand.New(rand.NewSource(3))
	key, _ := GenerateKey(c, rng)
	msg := []byte("same message")
	s1, _ := key.Sign(rng, msg)
	s2, _ := key.Sign(rng, msg)
	if s1.R.Cmp(s2.R) == 0 {
		t.Error("two signatures share a nonce")
	}
	if !Verify(c, key.Pub, msg, s1) || !Verify(c, key.Pub, msg, s2) {
		t.Error("randomized signatures invalid")
	}
}

func TestHashToInt(t *testing.T) {
	// Truncation: a 256-bit digest against a 163-bit order keeps the
	// leftmost 163 bits.
	order := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 163), big.NewInt(1)) // bitlen 163
	h := make([]byte, 32)
	for i := range h {
		h[i] = 0xFF
	}
	e := hashToInt(h, order)
	if e.BitLen() != 163 {
		t.Fatalf("bitlen = %d, want 163", e.BitLen())
	}
	// Short digests pass through.
	e2 := hashToInt([]byte{0x01, 0x02}, order)
	if e2.Int64() != 0x0102 {
		t.Fatalf("short digest = %v", e2)
	}
}

func TestCompressRoundTrip(t *testing.T) {
	for _, c := range Curves() {
		rng := rand.New(rand.NewSource(int64(c.F.M())))
		for trial := 0; trial < 4; trial++ {
			k := new(big.Int).Rand(rng, c.Order)
			p := c.ScalarBaseMult(k)
			if p.Inf {
				continue
			}
			enc := c.Compress(p)
			if len(enc) != 1+(c.F.M()+7)/8 {
				t.Fatalf("%s: compressed length %d", c, len(enc))
			}
			back, err := c.Decompress(enc)
			if err != nil {
				t.Fatalf("%s: %v", c, err)
			}
			if !c.Equal(back, p) {
				t.Fatalf("%s: compression round trip failed", c)
			}
		}
		// Infinity encodes as a single zero byte.
		enc := c.Compress(Infinity())
		if len(enc) != 1 || enc[0] != 0 {
			t.Fatalf("%s: infinity encoding %v", c, enc)
		}
		back, err := c.Decompress(enc)
		if err != nil || !back.Inf {
			t.Fatalf("%s: infinity round trip", c)
		}
	}
}

func TestDecompressRejectsJunk(t *testing.T) {
	c := K233()
	if _, err := c.Decompress([]byte{0x05}); err == nil {
		t.Error("bad prefix accepted")
	}
	if _, err := c.Decompress(make([]byte, 10)); err == nil {
		t.Error("bad length accepted")
	}
	// An x with no solution: find one by trial.
	junk := make([]byte, 1+30)
	junk[0] = 0x02
	found := false
	for v := byte(1); v < 200 && !found; v++ {
		junk[30] = v
		if _, err := c.Decompress(junk); err != nil {
			found = true
		}
	}
	if !found {
		t.Error("every junk x decompressed (suspicious)")
	}
}

func TestUncompressedMarshalRoundTrip(t *testing.T) {
	c := B233()
	p := c.ScalarBaseMult(big.NewInt(12345))
	enc := c.MarshalUncompressed(p)
	back, err := c.UnmarshalUncompressed(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(back, p) {
		t.Fatal("uncompressed round trip failed")
	}
	enc[len(enc)-1] ^= 1 // corrupt y
	if _, err := c.UnmarshalUncompressed(enc); err == nil {
		t.Error("off-curve uncompressed point accepted")
	}
}

func TestQuadraticToolkit(t *testing.T) {
	f := K233().F
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		a := f.Zero()
		for i := range a {
			a[i] = rng.Uint32()
		}
		a[len(a)-1] &= 1<<(233%32) - 1
		// sqrt(a)^2 == a
		if !f.Equal(f.Sqr(f.Sqrt(a)), a) {
			t.Fatal("sqrt broken")
		}
		// Trace is additive and 0/1-valued; z^2+z always has trace 0.
		z := f.Add(f.Sqr(a), a)
		if f.Trace(z) != 0 {
			t.Fatal("trace of z^2+z not 0")
		}
		sol, ok := f.SolveQuadratic(z)
		if !ok {
			t.Fatal("solvable quadratic rejected")
		}
		if !f.Equal(f.Add(f.Sqr(sol), sol), z) {
			t.Fatal("quadratic solution wrong")
		}
	}
}
