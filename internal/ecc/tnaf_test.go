package ecc

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestZTauArithmetic(t *testing.T) {
	// tau^2 = mu*tau - 2 for both mu values.
	for _, mu := range []int64{-1, 1} {
		tau := ztNew(0, 1)
		sq := ztMul(tau, tau, mu)
		if sq.x0.Int64() != -2 || sq.x1.Int64() != mu {
			t.Fatalf("mu=%d: tau^2 = %v + %v tau", mu, sq.x0, sq.x1)
		}
		// Norm is multiplicative on a sample.
		a := ztNew(5, -3)
		b := ztNew(-7, 2)
		nab := ztNorm(ztMul(a, b, mu), mu)
		n2 := new(big.Int).Mul(ztNorm(a, mu), ztNorm(b, mu))
		if nab.Cmp(n2) != 0 {
			t.Fatalf("mu=%d: norm not multiplicative", mu)
		}
	}
}

func TestNormOfTauMinusOneIsCurveOrderOverF2(t *testing.T) {
	// N(tau - 1) = #E(F_2): 4 for a=0 (K-233, K-283), 2 for a=1 (K-163).
	if n := ztNorm(ztNew(-1, 1), -1); n.Int64() != 4 {
		t.Errorf("mu=-1: N(tau-1) = %v, want 4", n)
	}
	if n := ztNorm(ztNew(-1, 1), 1); n.Int64() != 2 {
		t.Errorf("mu=+1: N(tau-1) = %v, want 2", n)
	}
}

func TestTNAFDigitForm(t *testing.T) {
	digits := tnaf(zTau{big.NewInt(123456789), big.NewInt(-987654)}, -1)
	last := -10
	for i, d := range digits {
		if d != 0 && d != 1 && d != -1 {
			t.Fatalf("digit %d out of range", d)
		}
		if d != 0 {
			if i-last == 1 {
				t.Fatalf("adjacent nonzero digits at %d", i)
			}
			last = i
		}
	}
}

func TestScalarMultTNAFMatchesReference(t *testing.T) {
	for _, c := range []*Curve{K233(), K163(), K283()} {
		rng := rand.New(rand.NewSource(int64(c.F.M())))
		for trial := 0; trial < 4; trial++ {
			k := new(big.Int).Rand(rng, c.Order)
			want := c.ScalarBaseMult(k)
			got, st, err := c.ScalarMultTNAFStats(k, c.Generator())
			if err != nil {
				t.Fatal(err)
			}
			if !c.Equal(got, want) {
				t.Fatalf("%s: TNAF result differs from double-and-add (k=%v)", c, k)
			}
			// Partial reduction keeps the expansion near m digits and NAF
			// density near 1/3.
			if st.Digits > c.F.M()+12 {
				t.Errorf("%s: %d digits for m=%d (reduction ineffective)", c, st.Digits, c.F.M())
			}
			if st.Adds > st.Digits/2 {
				t.Errorf("%s: %d adds in %d digits (not NAF-sparse)", c, st.Adds, st.Digits)
			}
		}
	}
}

func TestScalarMultTNAFEdgeCases(t *testing.T) {
	c := K233()
	g := c.Generator()
	if p, _ := c.ScalarMultTNAF(big.NewInt(0), g); !p.Inf {
		t.Error("0*G != infinity")
	}
	if p, _ := c.ScalarMultTNAF(big.NewInt(1), g); !c.Equal(p, g) {
		t.Error("1*G != G")
	}
	if p, _ := c.ScalarMultTNAF(c.Order, g); !p.Inf {
		t.Error("n*G != infinity")
	}
	if p, _ := c.ScalarMultTNAF(big.NewInt(7), Infinity()); !p.Inf {
		t.Error("k*infinity != infinity")
	}
	// Non-Koblitz curves are rejected.
	if _, err := B233().ScalarMultTNAF(big.NewInt(5), B233().Generator()); err == nil {
		t.Error("B-233 accepted as Koblitz")
	}
}

func TestTNAFEliminatesDoublings(t *testing.T) {
	// The headline: zero point doublings; ~m cheap Frobenius maps and
	// ~m/3 additions instead of m doublings + m/2 additions.
	c := K233()
	rng := rand.New(rand.NewSource(9))
	k := new(big.Int).Rand(rng, c.Order)
	_, st, err := c.ScalarMultTNAFStats(k, c.Generator())
	if err != nil {
		t.Fatal(err)
	}
	if st.Frobenius == 0 || st.Adds == 0 {
		t.Fatal("no work recorded")
	}
	t.Logf("K-233 TNAF: %d digits, %d adds, %d Frobenius maps (0 doublings; "+
		"double-and-add needs ~232 doublings + ~116 adds)", st.Digits, st.Adds, st.Frobenius)
}
