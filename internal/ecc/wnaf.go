package ecc

import "math/big"

// Width-w NAF scalar multiplication — the precomputation optimization
// family the paper cites ("Speeding Up Elliptic Scalar Multiplication
// with Precomputation", Lim-Hwang [30]). A width-w non-adjacent form has
// nonzero density ~1/(w+1) versus 1/2 for plain binary, trading point
// additions for a small table of odd multiples; negation on binary
// curves is one field addition, so signed digits are nearly free.

// wnaf returns the width-w NAF digits of k, least significant first.
// Every nonzero digit is odd with |d| < 2^(w-1), and any two nonzero
// digits are separated by at least w-1 zeros.
func wnaf(k *big.Int, w uint) []int8 {
	if k.Sign() == 0 {
		return nil
	}
	k = new(big.Int).Set(k)
	mod := int64(1) << w
	half := mod >> 1
	var digits []int8
	for k.Sign() > 0 {
		if k.Bit(0) == 1 {
			r := new(big.Int).And(k, big.NewInt(mod-1)).Int64()
			if r >= half {
				r -= mod
			}
			digits = append(digits, int8(r))
			k.Sub(k, big.NewInt(r))
		} else {
			digits = append(digits, 0)
		}
		k.Rsh(k, 1)
	}
	return digits
}

// ScalarMultWNAF computes k*p with width-w NAF (w in 2..8) over
// Lopez-Dahab projective coordinates. It returns the same point as
// ScalarMult with fewer point additions.
func (c *Curve) ScalarMultWNAF(k *big.Int, p Point, w uint) Point {
	pt, _ := c.scalarMultWNAFTrace(k, p, w)
	return pt
}

// WNAFStats reports the group-operation counts of a wNAF multiplication.
type WNAFStats struct {
	Doubles int
	Adds    int // additions in the main loop
	Precomp int // additions spent building the odd-multiple table
}

// ScalarMultWNAFStats is ScalarMultWNAF, also reporting operation counts
// for the precomputation ablation.
func (c *Curve) ScalarMultWNAFStats(k *big.Int, p Point, w uint) (Point, WNAFStats) {
	return c.scalarMultWNAFTrace(k, p, w)
}

func (c *Curve) scalarMultWNAFTrace(k *big.Int, p Point, w uint) (Point, WNAFStats) {
	var st WNAFStats
	if w < 2 {
		w = 2
	}
	if w > 8 {
		w = 8
	}
	k = new(big.Int).Mod(k, c.Order)
	if k.Sign() == 0 || p.Inf {
		return Infinity(), st
	}
	// Precompute odd multiples P, 3P, ..., (2^(w-1)-1)P in affine form.
	nTab := 1 << (w - 2)
	tab := make([]Point, nTab) // tab[i] = (2i+1)P
	tab[0] = p
	if nTab > 1 {
		twoP := c.Double(p)
		st.Doubles++
		for i := 1; i < nTab; i++ {
			tab[i] = c.Add(tab[i-1], twoP)
			st.Precomp++
		}
	}
	digits := wnaf(k, w)
	acc := newLD(c)
	for i := len(digits) - 1; i >= 0; i-- {
		if !c.ldIsInf(acc) {
			acc = c.ldDouble(acc)
			st.Doubles++
		}
		d := digits[i]
		if d == 0 {
			continue
		}
		q := tab[(abs8(d)-1)/2]
		if d < 0 {
			q = c.Neg(q)
		}
		acc = c.ldAddMixed(acc, q)
		st.Adds++
	}
	return c.ldToAffine(acc), st
}

func abs8(d int8) int {
	if d < 0 {
		return int(-d)
	}
	return int(d)
}
