package ecc

import (
	"fmt"
	"math/big"
)

// tau-adic NAF scalar multiplication for Koblitz (anomalous binary)
// curves — the reason curves like the paper's K-233 are standardized at
// all: the Frobenius endomorphism tau(x, y) = (x^2, y^2) satisfies
// tau^2 - mu*tau + 2 = 0 (mu = (-1)^(1-a)), so a scalar expanded in
// powers of tau replaces EVERY point doubling with two field squarings,
// which the GF processor executes almost for free.
//
// The scalar is first partially reduced modulo delta = (tau^m - 1)/
// (tau - 1) in Z[tau] (Solinas), shrinking the expansion to ~m digits;
// the reduction is exact for points in the prime-order subgroup because
// N(delta) = n and gcd(#E(F_2), n) = 1.

// zTau is an element x0 + x1*tau of Z[tau].
type zTau struct {
	x0, x1 *big.Int
}

func ztNew(a, b int64) zTau { return zTau{big.NewInt(a), big.NewInt(b)} }

// ztMul multiplies in Z[tau] using tau^2 = mu*tau - 2.
func ztMul(a, b zTau, mu int64) zTau {
	// (a0 + a1 t)(b0 + b1 t) = a0b0 - 2 a1b1 + (a0b1 + a1b0 + mu a1b1) t
	a0b0 := new(big.Int).Mul(a.x0, b.x0)
	a1b1 := new(big.Int).Mul(a.x1, b.x1)
	x0 := new(big.Int).Sub(a0b0, new(big.Int).Lsh(a1b1, 1))
	x1 := new(big.Int).Mul(a.x0, b.x1)
	x1.Add(x1, new(big.Int).Mul(a.x1, b.x0))
	x1.Add(x1, new(big.Int).Mul(big.NewInt(mu), a1b1))
	return zTau{x0, x1}
}

// ztConj returns the conjugate: x0 + mu*x1 - x1*tau.
func ztConj(a zTau, mu int64) zTau {
	x0 := new(big.Int).Mul(big.NewInt(mu), a.x1)
	x0.Add(x0, a.x0)
	return zTau{x0, new(big.Int).Neg(a.x1)}
}

// ztNorm returns N(a) = x0^2 + mu*x0*x1 + 2*x1^2... derived as a*conj(a).
func ztNorm(a zTau, mu int64) *big.Int {
	p := ztMul(a, ztConj(a, mu), mu)
	// the tau component of a*conj(a) is always zero
	return p.x0
}

// tauPowM returns tau^m as an element of Z[tau].
func tauPowM(m int, mu int64) zTau {
	t := ztNew(0, 1)
	acc := ztNew(1, 0)
	for i := 0; i < m; i++ {
		acc = ztMul(acc, t, mu)
	}
	return acc
}

// roundDiv returns round(a/b) for b > 0.
func roundDiv(a, b *big.Int) *big.Int {
	q, r := new(big.Int).QuoRem(a, b, new(big.Int))
	// round half away from zero
	r2 := new(big.Int).Lsh(new(big.Int).Abs(r), 1)
	if r2.Cmp(b) >= 0 {
		if a.Sign()*b.Sign() < 0 {
			q.Sub(q, big.NewInt(1))
		} else {
			q.Add(q, big.NewInt(1))
		}
	}
	return q
}

// partmod reduces the integer k modulo delta = (tau^m - 1)/(tau - 1),
// returning r0 + r1*tau with tau-adic length ~m.
func partmod(k *big.Int, m int, mu int64) zTau {
	// delta = (tau^m - 1) * conj(tau - 1) / N(tau - 1)
	tm := tauPowM(m, mu)
	tm1 := zTau{new(big.Int).Sub(tm.x0, big.NewInt(1)), new(big.Int).Set(tm.x1)}
	t1 := ztNew(-1, 1)
	nT1 := ztNorm(t1, mu) // #E(F_2): 4 for a=0, 2 for a=1
	num := ztMul(tm1, ztConj(t1, mu), mu)
	delta := zTau{new(big.Int).Quo(num.x0, nT1), new(big.Int).Quo(num.x1, nT1)}

	// q = round(k * conj(delta) / N(delta)); r = k - q*delta.
	nD := ztNorm(delta, mu)
	kc := ztMul(zTau{new(big.Int).Set(k), big.NewInt(0)}, ztConj(delta, mu), mu)
	q := zTau{roundDiv(kc.x0, nD), roundDiv(kc.x1, nD)}
	qd := ztMul(q, delta, mu)
	return zTau{new(big.Int).Sub(k, qd.x0), new(big.Int).Neg(qd.x1)}
}

// tnaf expands r0 + r1*tau into tau-adic NAF digits (LSB first, each
// digit in {0, +1, -1}, no two adjacent nonzeros).
func tnaf(r zTau, mu int64) []int8 {
	r0 := new(big.Int).Set(r.x0)
	r1 := new(big.Int).Set(r.x1)
	var digits []int8
	zero := big.NewInt(0)
	for r0.Cmp(zero) != 0 || r1.Cmp(zero) != 0 {
		var u int8
		if r0.Bit(0) == 1 {
			// u = 2 - (r0 - 2*r1 mod 4)
			t := new(big.Int).Lsh(r1, 1)
			t.Sub(r0, t)
			mod4 := new(big.Int).And(t, big.NewInt(3)).Int64()
			if mod4 == 1 {
				u = 1
			} else {
				u = -1
			}
			if u == 1 {
				r0.Sub(r0, big.NewInt(1))
			} else {
				r0.Add(r0, big.NewInt(1))
			}
		}
		digits = append(digits, u)
		// (r0, r1) <- (r1 + mu*r0/2, -r0/2)
		half := new(big.Int).Rsh(r0, 1)
		newR0 := new(big.Int).Set(r1)
		if mu == 1 {
			newR0.Add(newR0, half)
		} else {
			newR0.Sub(newR0, half)
		}
		r0, r1 = newR0, new(big.Int).Neg(half)
	}
	return digits
}

// TNAFStats reports the operation mix of a tau-adic multiplication.
type TNAFStats struct {
	Digits    int // expansion length (~m after partial reduction)
	Adds      int // point additions (nonzero digits)
	Frobenius int // tau applications (3 field squarings each, no doubling!)
}

// TNAFDigits returns the partially-reduced tau-adic NAF digits of k
// (LSB first) and the curve's mu, for external cost models. It errors on
// non-Koblitz curves.
func (c *Curve) TNAFDigits(k *big.Int) ([]int8, int64, error) {
	f := c.F
	aIsZero := f.IsZero(c.A)
	aIsOne := f.Equal(c.A, f.One())
	if !f.Equal(c.B, f.One()) || (!aIsZero && !aIsOne) {
		return nil, 0, fmt.Errorf("ecc: %s is not a Koblitz curve", c)
	}
	mu := int64(-1)
	if aIsOne {
		mu = 1
	}
	k = new(big.Int).Mod(k, c.Order)
	if k.Sign() == 0 {
		return nil, mu, nil
	}
	return tnaf(partmod(k, f.M(), mu), mu), mu, nil
}

// ScalarMultTNAF computes k*p on a Koblitz curve (a in {0,1}, b = 1)
// using the tau-adic NAF — no point doublings at all. p must lie in the
// prime-order subgroup (true for the generator and its multiples).
// It returns an error for non-Koblitz curves.
func (c *Curve) ScalarMultTNAF(k *big.Int, p Point) (Point, error) {
	pt, _, err := c.ScalarMultTNAFStats(k, p)
	return pt, err
}

// ScalarMultTNAFStats is ScalarMultTNAF with operation counts.
func (c *Curve) ScalarMultTNAFStats(k *big.Int, p Point) (Point, TNAFStats, error) {
	var st TNAFStats
	f := c.F
	// Koblitz check: b = 1 and a in {0, 1}.
	aIsZero := f.IsZero(c.A)
	aIsOne := f.Equal(c.A, f.One())
	if !f.Equal(c.B, f.One()) || (!aIsZero && !aIsOne) {
		return Point{}, st, fmt.Errorf("ecc: %s is not a Koblitz curve", c)
	}
	mu := int64(-1)
	if aIsOne {
		mu = 1
	}
	k = new(big.Int).Mod(k, c.Order)
	if k.Sign() == 0 || p.Inf {
		return Infinity(), st, nil
	}
	digits := tnaf(partmod(k, f.M(), mu), mu)
	st.Digits = len(digits)

	acc := newLD(c)
	for i := len(digits) - 1; i >= 0; i-- {
		if !c.ldIsInf(acc) {
			// tau: square every coordinate (x -> x^2 commutes with the
			// Lopez-Dahab representation since squaring is a field
			// homomorphism).
			acc = ldPoint{X: f.Sqr(acc.X), Y: f.Sqr(acc.Y), Z: f.Sqr(acc.Z)}
			st.Frobenius++
		}
		switch digits[i] {
		case 1:
			acc = c.ldAddMixed(acc, p)
			st.Adds++
		case -1:
			acc = c.ldAddMixed(acc, c.Neg(p))
			st.Adds++
		}
	}
	return c.ldToAffine(acc), st, nil
}
