package ecc

// Engine is the server-side ECC hot path: one worker's pre-allocated
// state for ecdh-derive and ecdsa-sign requests. Every temporary the
// x-only Montgomery ladder, the fixed-width scalar arithmetic and the
// RFC 6979 nonce derivation need is owned by the engine, so a
// steady-state Derive or SignAppend performs zero heap allocations
// (enforced by TestEngineZeroAlloc). Engines are not safe for
// concurrent use; the pipeline gives each worker its own via Clone.
//
// Signing is deterministic (RFC 6979 HMAC-SHA256 nonces, low-s
// canonical form), which is what lets the GFP1 ecdsa-sign op be
// classified idempotent: a fleet of backends sharing the signing key
// produces bit-identical signatures, so a proxy retry after a
// transport failure cannot produce divergent answers.

import (
	"crypto/sha256"
	"errors"
	"math/big"

	"repro/internal/gfbig"
)

// Exported engine errors. The server maps ErrBadPoint/ErrBadDigest to
// StatusBadRequest-style rejections and the semantic failures to
// codec-failed responses.
var (
	ErrBadScalar       = errors.New("ecc: private scalar out of range [1, order-1]")
	ErrBadPoint        = errors.New("ecc: malformed or off-curve public point")
	ErrPointAtInfinity = errors.New("ecc: result is the point at infinity")
	ErrBadDigest       = errors.New("ecc: digest must be 1..64 bytes")
	ErrVerifyFailed    = errors.New("ecc: signature verification failed")
)

// maxDigestLen bounds digests on the wire: up to SHA-512 output.
const maxDigestLen = 64

// MaxDigestBytes is maxDigestLen for wire-facing callers (the server's
// request validation), so the bound cannot drift between the layers.
const MaxDigestBytes = maxDigestLen

// Engine holds one worker's ECC state. See the package-level docs.
type Engine struct {
	c  *Curve
	sf *scalarField
	fs *gfbig.Scratch

	d        []uint32 // private scalar, scalar words
	dBytes   []byte   // int2octets(d) for the RFC 6979 DRBG
	pub      Point
	pubBytes []byte // SEC 1 uncompressed encoding of the public point

	fb int // field element wire bytes: ceil(m/8)
	ob int // scalar wire bytes: ceil(orderBits/8)

	// Field temporaries: ladder registers, curve checks, parsed points.
	lx             gfbig.Elem // borrowed: the ladder's base x-coordinate
	x1, z1, x2, z2 gfbig.Elem
	t1, t2, t3     gfbig.Elem
	xout           gfbig.Elem
	px, py         gfbig.Elem

	// Scalar temporaries.
	ss                 *scalarScratch
	se, sr, ssig, sk   []uint32 // e, r, s, nonce
	skinv, stmp, stmp2 []uint32
	xwide              []uint32 // ladder x output widened for mod-n reduction

	// RFC 6979 HMAC-SHA256 DRBG state and buffers.
	hV, hK     [32]byte
	ipad, opad [64]byte
	obuf       [96]byte // opad || inner hash for the outer compression
	hbuf       []byte   // inner hash input: ipad || message
	tbuf       []byte   // accumulated T output
	h1o        []byte   // bits2octets(digest), ob bytes
}

// NewEngine builds an engine for the given curve and private scalar.
// Unlike NewPrivateKey it rejects (rather than reduces) out-of-range
// scalars: d must already be in [1, order-1].
func NewEngine(c *Curve, d *big.Int) (*Engine, error) {
	if d == nil || d.Sign() <= 0 || d.Cmp(c.Order) >= 0 {
		return nil, ErrBadScalar
	}
	e := &Engine{
		c:  c,
		sf: newScalarField(c.Order),
		fb: (c.F.M() + 7) / 8,
	}
	e.ob = e.sf.bytes
	e.d = e.sf.newElem()
	e.sf.setBytes(e.d, d.Bytes())
	e.dBytes = make([]byte, e.ob)
	e.sf.toBytes(e.dBytes, e.d)
	e.pub = c.ScalarBaseMult(d)
	e.pubBytes = c.MarshalUncompressed(e.pub)
	e.initScratch()
	return e, nil
}

// Clone returns an engine sharing the immutable key material with
// fresh scratch state — the per-worker fan-out.
func (e *Engine) Clone() *Engine {
	ne := &Engine{
		c: e.c, sf: e.sf,
		d: e.d, dBytes: e.dBytes, pub: e.pub, pubBytes: e.pubBytes,
		fb: e.fb, ob: e.ob,
	}
	ne.initScratch()
	return ne
}

func (e *Engine) initScratch() {
	f := e.c.F
	e.fs = f.NewScratch()
	for _, p := range []*gfbig.Elem{&e.x1, &e.z1, &e.x2, &e.z2, &e.t1, &e.t2, &e.t3, &e.xout, &e.px, &e.py} {
		*p = f.Zero()
	}
	e.ss = e.sf.newScratch()
	for _, p := range []*[]uint32{&e.se, &e.sr, &e.ssig, &e.sk, &e.skinv, &e.stmp, &e.stmp2} {
		*p = e.sf.newElem()
	}
	e.xwide = make([]uint32, f.Words())
	e.hbuf = make([]byte, 0, 64+2*(32+1+2*e.ob))
	e.tbuf = make([]byte, 0, ((e.sf.bits+255)/256)*32)
	e.h1o = make([]byte, e.ob)
}

// Curve returns the engine's curve.
func (e *Engine) Curve() *Curve { return e.c }

// PublicBytes returns the SEC 1 uncompressed encoding of the public
// point (shared, do not modify).
func (e *Engine) PublicBytes() []byte { return e.pubBytes }

// Public returns the public point.
func (e *Engine) Public() Point { return e.pub }

// FieldBytes returns the wire width of one field element.
func (e *Engine) FieldBytes() int { return e.fb }

// OrderBytes returns the wire width of one scalar (r or s).
func (e *Engine) OrderBytes() int { return e.ob }

// PointBytes returns the wire width of an uncompressed point.
func (e *Engine) PointBytes() int { return 1 + 2*e.fb }

// SignatureBytes returns the wire width of a signature (r || s).
func (e *Engine) SignatureBytes() int { return 2 * e.ob }

// parsePoint decodes an SEC 1 uncompressed point into (px, py) and
// validates it is on the curve. The identity (0x00) and compressed
// forms are rejected: the wire ops only accept full points.
func (e *Engine) parsePoint(b []byte) error {
	if len(b) != 1+2*e.fb || b[0] != 0x04 {
		return ErrBadPoint
	}
	f := e.c.F
	if f.SetBytesInto(e.px, b[1:1+e.fb]) != nil {
		return ErrBadPoint
	}
	if f.SetBytesInto(e.py, b[1+e.fb:]) != nil {
		return ErrBadPoint
	}
	if !e.onCurve(e.px, e.py) {
		return ErrBadPoint
	}
	return nil
}

// onCurve checks y^2 + xy = x^3 + a*x^2 + b without allocating.
func (e *Engine) onCurve(x, y gfbig.Elem) bool {
	f, fs := e.c.F, e.fs
	f.SquareTo(e.t1, y, fs)
	f.MulTo(e.t2, x, y, fs)
	f.AddTo(e.t1, e.t1, e.t2) // lhs = y^2 + xy
	f.SquareTo(e.t2, x, fs)   // x^2
	f.MulTo(e.t3, e.t2, x, fs)
	if !f.IsZero(e.c.A) {
		f.MulTo(e.t2, e.c.A, e.t2, fs)
		f.AddTo(e.t3, e.t3, e.t2)
	}
	f.AddTo(e.t3, e.t3, e.c.B) // rhs = x^3 + a*x^2 + b
	return f.Equal(e.t1, e.t3)
}

// ladderX computes the x-coordinate of k*P into e.xout with the
// Lopez-Dahab x-only Montgomery ladder (the allocation-free twin of
// Curve.MontgomeryLadder), where P is the point with x-coordinate
// base. It reports false when k*P is the point at infinity.
func (e *Engine) ladderX(k []uint32, base gfbig.Elem) bool {
	f, fs := e.c.F, e.fs
	kb := scalarBitLen(k)
	if kb == 0 {
		return false
	}
	e.lx = base
	if kb == 1 { // k == 1
		copy(e.xout, base)
		return true
	}
	// R0 = P: (x, 1); R1 = 2P: (x^4 + b, x^2).
	copy(e.x1, base)
	for i := range e.z1 {
		e.z1[i] = 0
	}
	e.z1[0] = 1
	f.SquareTo(e.z2, base, fs)
	f.SquareTo(e.x2, e.z2, fs)
	f.AddTo(e.x2, e.x2, e.c.B)
	for i := kb - 2; i >= 0; i-- {
		if k[i/32]>>(i%32)&1 == 1 {
			e.mAdd(e.x1, e.z1, e.x2, e.z2)
			e.mDouble(e.x2, e.z2)
		} else {
			e.mAdd(e.x2, e.z2, e.x1, e.z1)
			e.mDouble(e.x1, e.z1)
		}
	}
	if f.IsZero(e.z1) {
		return false
	}
	if f.IsZero(e.z2) {
		// R1 = infinity means R0 = -P, which shares P's x-coordinate.
		copy(e.xout, base)
		return true
	}
	f.InvTo(e.t3, e.z1, fs)
	f.MulTo(e.xout, e.x1, e.t3, fs)
	return true
}

// mAdd: (xa,za) <- (xa,za)+(xb,zb) given the difference point's
// x-coordinate e.lx: Z3 = (Xa*Zb + Xb*Za)^2, X3 = x*Z3 + Xa*Zb*Xb*Za.
func (e *Engine) mAdd(xa, za, xb, zb gfbig.Elem) {
	f, fs := e.c.F, e.fs
	f.MulTo(e.t1, xa, zb, fs)
	f.MulTo(e.t2, xb, za, fs)
	f.AddTo(za, e.t1, e.t2)
	f.SquareTo(za, za, fs)        // Z3
	f.MulTo(e.t1, e.t1, e.t2, fs) // Xa*Zb * Xb*Za
	f.MulTo(e.t2, e.lx, za, fs)   // x * Z3
	f.AddTo(xa, e.t2, e.t1)       // X3
}

// mDouble: (xa,za) <- 2*(xa,za): X3 = Xa^4 + b*Za^4, Z3 = Xa^2*Za^2.
func (e *Engine) mDouble(xa, za gfbig.Elem) {
	f, fs := e.c.F, e.fs
	f.SquareTo(xa, xa, fs)
	f.SquareTo(za, za, fs)
	f.MulTo(e.t1, xa, za, fs) // Z3
	f.SquareTo(xa, xa, fs)
	f.SquareTo(za, za, fs)
	f.MulTo(za, e.c.B, za, fs)
	f.AddTo(xa, xa, za) // X3
	copy(za, e.t1)
}

// Derive validates the peer's uncompressed public point and appends
// the ECDH shared secret — the x-coordinate of d*Q, FieldBytes wide —
// to dst. Allocation-free when dst has capacity.
func (e *Engine) Derive(dst, peer []byte) ([]byte, error) {
	if err := e.parsePoint(peer); err != nil {
		return nil, err
	}
	if !e.ladderX(e.d, e.px) {
		return nil, ErrPointAtInfinity
	}
	n := len(dst)
	dst = appendZeros(dst, e.fb)
	e.c.F.BytesInto(dst[n:], e.xout)
	return dst, nil
}

// SignAppend deterministically signs digest (RFC 6979 nonces, SEC 1
// truncation, low-s canonical form) and appends r || s (each
// OrderBytes wide) to dst. Allocation-free when dst has capacity.
func (e *Engine) SignAppend(dst, digest []byte) ([]byte, error) {
	if len(digest) == 0 || len(digest) > maxDigestLen {
		return nil, ErrBadDigest
	}
	sf := e.sf
	// e = bits2int(digest) mod n; h1o = int2octets(e) = bits2octets(digest).
	sf.bits2int(e.se, digest)
	sf.condSub(e.se)
	sf.toBytes(e.h1o, e.se)
	e.drbgInit()
	for attempt := 0; ; attempt++ {
		if attempt >= 100 {
			// Unreachable in practice: each candidate is accepted with
			// overwhelming probability. Guarded to bound the loop.
			return nil, errors.New("ecc: signing failed to find a usable nonce")
		}
		if !e.drbgNonce(e.sk) {
			continue
		}
		// r = x(k*G) mod n.
		if !e.ladderX(e.sk, e.c.Gx) {
			e.drbgBump()
			continue
		}
		for i, w := range e.xout {
			e.xwide[i] = w
		}
		sf.reduceWide(e.sr, e.xwide, e.ss)
		if sf.isZero(e.sr) {
			e.drbgBump()
			continue
		}
		// s = k^-1 * (e + r*d) mod n.
		sf.mulMod(e.stmp, e.sr, e.d, e.ss)
		sf.addMod(e.stmp, e.stmp, e.se)
		sf.invMod(e.skinv, e.sk, e.ss)
		sf.mulMod(e.ssig, e.skinv, e.stmp, e.ss)
		if sf.isZero(e.ssig) {
			e.drbgBump()
			continue
		}
		// Canonical low-s form: emit min(s, n-s); (r, n-s) verifies
		// whenever (r, s) does, so signers pin one representative.
		sf.sub(e.stmp2, sf.n, e.ssig)
		if sf.cmp(e.stmp2, e.ssig) < 0 {
			copy(e.ssig, e.stmp2)
		}
		n := len(dst)
		dst = appendZeros(dst, 2*e.ob)
		sf.toBytes(dst[n:n+e.ob], e.sr)
		sf.toBytes(dst[n+e.ob:], e.ssig)
		return dst, nil
	}
}

// VerifyWire checks an r||s signature over digest against an SEC 1
// uncompressed public point. It deliberately runs the independent
// big.Int + projective double-and-add path (VerifyDigest), not the
// engine's fixed-width ladder, so sign and verify cross-check each
// other. Returns ErrVerifyFailed on any semantic failure.
func (e *Engine) VerifyWire(pub, sig, digest []byte) error {
	if len(sig) != 2*e.ob || len(digest) == 0 || len(digest) > maxDigestLen {
		return ErrVerifyFailed
	}
	pt, err := e.c.UnmarshalUncompressed(pub)
	if err != nil || pt.Inf {
		return ErrVerifyFailed
	}
	r := new(big.Int).SetBytes(sig[:e.ob])
	s := new(big.Int).SetBytes(sig[e.ob:])
	if !VerifyDigest(e.c, pt, digest, &Signature{R: r, S: s}) {
		return ErrVerifyFailed
	}
	return nil
}

// scalarBitLen returns the bit length of the little-endian word vector.
func scalarBitLen(k []uint32) int {
	for i := len(k) - 1; i >= 0; i-- {
		if k[i] != 0 {
			n := i * 32
			for v := k[i]; v != 0; v >>= 1 {
				n++
			}
			return n
		}
	}
	return 0
}

// appendZeros extends dst by n zero bytes (growing only when capacity
// is short — steady-state callers pass reusable buffers).
func appendZeros(dst []byte, n int) []byte {
	for i := 0; i < n; i++ {
		dst = append(dst, 0)
	}
	return dst
}

// --- RFC 6979 deterministic nonce DRBG -------------------------------
//
// HMAC-SHA256 built by hand on sha256.Sum256 over engine-owned buffers:
// crypto/hmac's New allocates per instantiation, which would break the
// zero-alloc sign path. Keys are always 32 bytes here (SHA-256 output),
// so the ipad/opad blocks are simple.

func (e *Engine) hmacSetKey(key []byte) {
	for i := 0; i < 64; i++ {
		var k byte
		if i < len(key) {
			k = key[i]
		}
		e.ipad[i] = k ^ 0x36
		e.opad[i] = k ^ 0x5c
	}
}

// hmacStart begins a new MAC computation under the current key.
func (e *Engine) hmacStart() {
	e.hbuf = e.hbuf[:0]
	e.hbuf = append(e.hbuf, e.ipad[:]...)
}

func (e *Engine) hmacWrite(p []byte) {
	e.hbuf = append(e.hbuf, p...)
}

func (e *Engine) hmacWriteByte(b byte) {
	e.hbuf = append(e.hbuf, b)
}

func (e *Engine) hmacSum(out *[32]byte) {
	inner := sha256.Sum256(e.hbuf)
	copy(e.obuf[:64], e.opad[:])
	copy(e.obuf[64:], inner[:])
	*out = sha256.Sum256(e.obuf[:])
}

// drbgInit runs RFC 6979 §3.2 steps b-g for the current digest
// (e.h1o must already hold bits2octets(digest)).
func (e *Engine) drbgInit() {
	for i := range e.hV {
		e.hV[i] = 0x01
		e.hK[i] = 0x00
	}
	for _, sep := range []byte{0x00, 0x01} {
		e.hmacSetKey(e.hK[:])
		e.hmacStart()
		e.hmacWrite(e.hV[:])
		e.hmacWriteByte(sep)
		e.hmacWrite(e.dBytes)
		e.hmacWrite(e.h1o)
		e.hmacSum(&e.hK)
		e.hmacSetKey(e.hK[:])
		e.hmacStart()
		e.hmacWrite(e.hV[:])
		e.hmacSum(&e.hV)
	}
}

// drbgNonce generates the next candidate nonce (§3.2 step h),
// reporting false (after bumping the state) when the candidate falls
// outside [1, n-1].
func (e *Engine) drbgNonce(k []uint32) bool {
	e.tbuf = e.tbuf[:0]
	for len(e.tbuf)*8 < e.sf.bits {
		e.hmacSetKey(e.hK[:])
		e.hmacStart()
		e.hmacWrite(e.hV[:])
		e.hmacSum(&e.hV)
		e.tbuf = append(e.tbuf, e.hV[:]...)
	}
	e.sf.bits2int(k, e.tbuf)
	if e.sf.isZero(k) || e.sf.cmp(k, e.sf.n) >= 0 {
		e.drbgBump()
		return false
	}
	return true
}

// drbgBump advances the DRBG state after a rejected candidate:
// K = HMAC_K(V || 0x00); V = HMAC_K(V).
func (e *Engine) drbgBump() {
	e.hmacSetKey(e.hK[:])
	e.hmacStart()
	e.hmacWrite(e.hV[:])
	e.hmacWriteByte(0x00)
	e.hmacSum(&e.hK)
	e.hmacSetKey(e.hK[:])
	e.hmacStart()
	e.hmacWrite(e.hV[:])
	e.hmacSum(&e.hV)
}
