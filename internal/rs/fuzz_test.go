package rs

import (
	"testing"

	"repro/internal/gf"
)

// fuzzRSCodes: one byte-symbol and one nibble-symbol code, built once.
var fuzzRSCodes = []*Code{
	Must(gf.MustDefault(8), 255, 223),
	Must(gf.MustDefault(4), 15, 9),
}

// FuzzRSRoundtrip drives encode -> corrupt -> decode with fuzzer-chosen
// message bytes and error pattern. Up to t injected errors must decode
// back to the message with the positions reported exactly; beyond t the
// decoder may fail but must never return success with a wrong message
// (miscorrection detection via the verify pass).
func FuzzRSRoundtrip(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint64(0), uint8(0))
	f.Add([]byte{0xFF, 0x00, 0xAA, 0x55}, uint64(1<<40|1<<3), uint8(1))
	f.Add([]byte("fuzz the decoder"), uint64(0xDEADBEEF), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, errBits uint64, codeSel uint8) {
		c := fuzzRSCodes[int(codeSel)%len(fuzzRSCodes)]
		msg := make([]gf.Elem, c.K)
		for i := range msg {
			if len(data) > 0 {
				msg[i] = gf.Elem(int(data[i%len(data)]) % c.F.Order())
			}
		}
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}

		// Corrupt: bit i of errBits flips symbol at a position derived from
		// i, value derived from the message. Up to 64 candidate positions,
		// truncated to at most t actual errors so decode must succeed.
		recv := make([]gf.Elem, c.N)
		copy(recv, cw)
		seen := map[int]bool{}
		var positions []int
		for i := 0; i < 64 && len(positions) < c.T; i++ {
			if errBits>>i&1 == 0 {
				continue
			}
			pos := (i*37 + int(errBits>>32)) % c.N
			if seen[pos] {
				continue
			}
			seen[pos] = true
			positions = append(positions, pos)
			recv[pos] ^= gf.Elem(i%(c.F.Order()-1) + 1)
		}

		res, err := c.Decode(recv)
		if err != nil {
			t.Fatalf("decode failed with %d <= t=%d errors: %v", len(positions), c.T, err)
		}
		if res.NumErrors != len(positions) {
			t.Fatalf("NumErrors = %d, want %d", res.NumErrors, len(positions))
		}
		for i, s := range msg {
			if res.Message[i] != s {
				t.Fatalf("message[%d] = %#x, want %#x", i, res.Message[i], s)
			}
		}
		for _, p := range positions {
			found := false
			for _, q := range res.Positions {
				if q == p {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("error position %d not reported (got %v)", p, res.Positions)
			}
		}

		// Heavier corruption: whatever happens, a success result must
		// round-trip its own re-encode (decoder soundness).
		for i := 0; i < c.T+2 && i < c.N; i++ {
			recv[(i*11)%c.N] ^= gf.Elem(int(errBits>>(i%56))%(c.F.Order()-1) + 1)
		}
		if res2, err := c.Decode(recv); err == nil {
			re, err := c.Encode(res2.Message)
			if err != nil {
				t.Fatal(err)
			}
			for i := range re {
				if re[i] != res2.Corrected[i] {
					t.Fatalf("accepted word is not a codeword at %d", i)
				}
			}
		}
	})
}
