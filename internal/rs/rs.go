// Package rs implements Reed-Solomon encoding and decoding over GF(2^m),
// following the decoder datapath of the paper's Fig. 1(b): syndrome
// calculation, the Berlekamp-Massey algorithm, Chien search and Forney's
// algorithm. Errors-and-erasures decoding and shortened codes are supported.
//
// The paper's flagship configuration is RS(255,239,8) over GF(2^8); any
// (n,k) with n <= 2^m-1 and even n-k works, with an arbitrary irreducible
// field polynomial and an arbitrary first consecutive generator root —
// precisely the flexibility the GF processor's configuration register
// provides in hardware.
//
// The hot paths (EncodeTo's LFSR bank, SyndromesTo, the BMA/Chien/
// Forney slice loops) ride gf.Kernels, so the serving implementation
// tier — flat product table, bitsliced SWAR or carry-less multiply —
// is chosen per (op, length) at runtime and can be pinned process-wide
// with GFP_KERNEL_TIER / -kernel-tier; every tier is differentially
// verified against the scalar reference, so codewords are bit-exact
// regardless (see docs/GF.md).
//
// Concurrency: a *Code (and a *Interleaved wrapping it) is immutable
// after construction — the generator polynomial and the underlying
// gf.Field tables are only written by New — and every Encode/Decode call
// allocates its own working buffers. One shared instance may therefore
// serve any number of goroutines concurrently (see the -race test
// TestConcurrentEncodeDecodeSharedCode), which is what the worker pools
// of repro/internal/pipeline rely on.
package rs

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/gfpoly"
)

// Code is a Reed-Solomon code RS(n, k) over GF(2^m). Codewords are symbol
// slices of length n; index 0 is transmitted first and carries the
// highest-degree coefficient of the codeword polynomial.
type Code struct {
	F *gf.Field
	N int // codeword length in symbols (<= 2^m - 1)
	K int // information symbols
	T int // correctable symbol errors, (n-k)/2
	B int // exponent of the first consecutive root of the generator

	full int         // natural length 2^m - 1
	gen  gfpoly.Poly // generator polynomial, degree n-k

	// Hot-path precomputation (immutable after New).
	kern   *gf.Kernels // the field's bulk slice kernels
	genTop []gf.Elem   // generator coefficients in transmission order: genTop[j] = gen.Coeff(n-k-1-j)
	enc    *gf.LFSR    // precomputed encoder feedback bank over genTop
	roots  []gf.Elem   // the 2t generator roots alpha^b .. alpha^(b+2t-1)
}

// New constructs RS(n, k) over the field f with first consecutive root
// alpha^1 (narrow sense). n may be shorter than 2^m-1 (a shortened code).
func New(f *gf.Field, n, k int) (*Code, error) { return NewWithFCR(f, n, k, 1) }

// NewWithFCR constructs RS(n, k) with generator roots alpha^b .. alpha^(b+n-k-1).
func NewWithFCR(f *gf.Field, n, k, b int) (*Code, error) {
	full := f.N()
	switch {
	case n < 3 || n > full:
		return nil, fmt.Errorf("rs: n=%d out of range [3,%d] for %v", n, full, f)
	case k <= 0 || k >= n:
		return nil, fmt.Errorf("rs: k=%d out of range (0,%d)", k, n)
	case (n-k)%2 != 0:
		return nil, fmt.Errorf("rs: n-k=%d must be even", n-k)
	}
	c := &Code{F: f, N: n, K: k, T: (n - k) / 2, B: b, full: full}
	// g(x) = prod_{i=b}^{b+2t-1} (x - alpha^i)
	g := gfpoly.One(f)
	for i := 0; i < 2*c.T; i++ {
		g = g.Mul(gfpoly.New(f, f.AlphaPow(b+i), 1))
	}
	c.gen = g
	c.kern = f.Kernels()
	nk := n - k
	c.genTop = make([]gf.Elem, nk)
	for j := 0; j < nk; j++ {
		c.genTop[j] = g.Coeff(nk - 1 - j)
	}
	c.enc = c.kern.NewLFSR(c.genTop)
	c.roots = make([]gf.Elem, 2*c.T)
	for j := range c.roots {
		c.roots[j] = f.AlphaPow(b + j)
	}
	return c, nil
}

// Must is New but panics on error.
func Must(f *gf.Field, n, k int) *Code {
	c, err := New(f, n, k)
	if err != nil {
		panic(err)
	}
	return c
}

// Generator returns the generator polynomial g(x) of degree n-k.
func (c *Code) Generator() gfpoly.Poly { return c.gen.Clone() }

// Rate returns the code rate k/n.
func (c *Code) Rate() float64 { return float64(c.K) / float64(c.N) }

// String implements fmt.Stringer.
func (c *Code) String() string {
	return fmt.Sprintf("RS(%d,%d,%d)/%v", c.N, c.K, c.T, c.F)
}

// Encode systematically encodes k message symbols into an n-symbol
// codeword: the message occupies the first k positions, parity the last
// n-k. It returns an error if the message has the wrong length or contains
// out-of-field symbols.
func (c *Code) Encode(msg []gf.Elem) ([]gf.Elem, error) {
	return c.EncodeTo(make([]gf.Elem, c.N), msg)
}

// EncodeTo is Encode reusing a caller-owned n-symbol destination buffer:
// it performs no allocation. msg may alias dst[:k] (encode in place). The
// parity is computed by the precomputed LFSR feedback bank (gf.LFSR): one
// fused shift-XOR pass per message symbol, no multiplies in the loop —
// the software form of the paper's hard-wired encoder datapath. Returns
// dst.
func (c *Code) EncodeTo(dst, msg []gf.Elem) ([]gf.Elem, error) {
	if len(msg) != c.K {
		return nil, fmt.Errorf("rs: message length %d, want %d", len(msg), c.K)
	}
	if len(dst) != c.N {
		return nil, fmt.Errorf("rs: destination length %d, want %d", len(dst), c.N)
	}
	for i, s := range msg {
		if !c.F.Valid(s) {
			return nil, fmt.Errorf("rs: message symbol %d (%#x) outside %v", i, s, c.F)
		}
	}
	// c(x) = m(x)*x^(n-k) + (m(x)*x^(n-k) mod g(x)). The remainder is kept
	// in transmission order directly in the parity slots dst[k:], so
	// par[0] is the highest-degree remainder coefficient.
	par := dst[c.K:]
	for j := range par {
		par[j] = 0
	}
	c.enc.Run(par, msg)
	copy(dst, msg) // no-op when encoding in place
	return dst, nil
}

// encodeScalar is the symbol-at-a-time reference implementation of Encode,
// kept as the behavioral baseline the bulk path is property-tested and
// benchmarked against.
func (c *Code) encodeScalar(msg []gf.Elem) ([]gf.Elem, error) {
	if len(msg) != c.K {
		return nil, fmt.Errorf("rs: message length %d, want %d", len(msg), c.K)
	}
	nk := c.N - c.K
	rem := make([]gf.Elem, nk) // rem[j] = coefficient of x^j
	for i := 0; i < c.K; i++ {
		feedback := msg[i] ^ rem[nk-1]
		copy(rem[1:], rem[:nk-1])
		rem[0] = 0
		if feedback != 0 {
			for j := 0; j < nk; j++ {
				rem[j] ^= c.F.Mul(feedback, c.gen.Coeff(j))
			}
		}
	}
	out := make([]gf.Elem, c.N)
	copy(out, msg)
	for j := 0; j < nk; j++ {
		out[c.K+j] = rem[nk-1-j]
	}
	return out, nil
}

// Syndromes evaluates the 2t syndromes S_j = r(alpha^(b+j)) of the received
// word by Horner's rule — the paper's first (and unavoidable) decoding
// kernel. All syndromes zero means no detectable error.
func (c *Code) Syndromes(recv []gf.Elem) []gf.Elem {
	return c.SyndromesTo(make([]gf.Elem, 2*c.T), recv)
}

// SyndromesTo is Syndromes into a caller-owned 2t-element destination
// buffer: no allocation. The batched kernel runs four Horner accumulator
// chains per pass over the word (gf.Kernels.SyndromeSlice), mirroring the
// paper's 4-lane SIMD syndrome unit. Returns dst.
func (c *Code) SyndromesTo(dst []gf.Elem, recv []gf.Elem) []gf.Elem {
	c.kern.SyndromeSlice(dst, recv, c.roots)
	return dst
}

// syndromesScalar is the symbol-at-a-time reference implementation of
// Syndromes, kept as the behavioral baseline for tests and benchmarks.
func (c *Code) syndromesScalar(recv []gf.Elem) []gf.Elem {
	s := make([]gf.Elem, 2*c.T)
	for j := range s {
		x := c.F.AlphaPow(c.B + j)
		var acc gf.Elem
		for _, r := range recv {
			acc = c.F.Mul(acc, x) ^ r
		}
		s[j] = acc
	}
	return s
}

// AllZero reports whether every syndrome is zero.
func AllZero(s []gf.Elem) bool {
	for _, v := range s {
		if v != 0 {
			return false
		}
	}
	return true
}

// BerlekampMassey runs the Berlekamp-Massey algorithm on the syndrome
// sequence and returns the error-locator polynomial Lambda(x) with
// Lambda(0) = 1 and degree = number of errors (when correctable).
func (c *Code) BerlekampMassey(synd []gf.Elem) gfpoly.Poly {
	return gfpoly.BerlekampMassey(c.F, synd)
}

// ChienSearch finds the error positions encoded in Lambda: it returns the
// codeword indices (0-based, index 0 transmitted first) whose locators
// X = alpha^(n-1-i) satisfy Lambda(X^-1) = 0, by evaluating Lambda at every
// field element as the hardware Chien search does.
func (c *Code) ChienSearch(lambda gfpoly.Poly) []int {
	var pos []int
	// Evaluate at z = alpha^-p for each codeword power p = 0..n-1;
	// codeword index i = n-1-p.
	for p := 0; p < c.N; p++ {
		z := c.F.AlphaPow(-p)
		if lambda.Eval(z) == 0 {
			pos = append(pos, c.N-1-p)
		}
	}
	return pos
}

// Forney computes the error values at the given codeword positions using
// Forney's algorithm: e = X^(1-b) * Omega(X^-1) / Lambda'(X^-1) where
// Omega = S(x)*Lambda(x) mod x^2t.
func (c *Code) Forney(synd []gf.Elem, lambda gfpoly.Poly, positions []int) ([]gf.Elem, error) {
	sPoly := gfpoly.New(c.F, synd...)
	omega := sPoly.Mul(lambda).ModXn(len(synd))
	dLambda := lambda.Derivative()
	vals := make([]gf.Elem, len(positions))
	for i, posIdx := range positions {
		p := c.N - 1 - posIdx
		xInv := c.F.AlphaPow(-p)
		den := dLambda.Eval(xInv)
		if den == 0 {
			return nil, fmt.Errorf("rs: Forney division by zero at position %d", posIdx)
		}
		e := c.F.Div(omega.Eval(xInv), den)
		// X^(1-b) factor generalizes to arbitrary first consecutive root.
		if c.B != 1 {
			e = c.F.Mul(e, c.F.AlphaPow(p*(1-c.B)))
		}
		vals[i] = e
	}
	return vals, nil
}

// DecodeResult carries the diagnostic output of a decode.
type DecodeResult struct {
	Corrected  []gf.Elem // the corrected codeword
	Message    []gf.Elem // the first k symbols of Corrected
	NumErrors  int       // symbol errors corrected
	NumErasure int       // erasures filled
	Positions  []int     // indices corrected
	Syndromes  []gf.Elem // syndromes of the received word
}

// Decode corrects up to t symbol errors in recv and returns the result.
// It returns an error when the word is uncorrectable (more than t errors
// detected). Every call allocates fresh buffers, so one *Code may decode
// on any number of goroutines; use DecodeTo with a per-worker DecodeBuf
// for the allocation-free hot path.
func (c *Code) Decode(recv []gf.Elem) (*DecodeResult, error) {
	return c.DecodeTo(nil, recv)
}

// DecodeBuf holds all scratch a decode needs: syndrome, Berlekamp-Massey,
// Chien and Forney working storage plus the DecodeResult itself. A buffer
// belongs to one goroutine at a time; reusing it across DecodeTo calls
// makes steady-state decoding allocation-free. The DecodeResult returned
// by DecodeTo points into the buffer and is invalidated by the next call.
type DecodeBuf struct {
	word      []gf.Elem // received word copy, corrected in place (len n)
	synd      []gf.Elem // syndromes of the received word (len 2t)
	vsynd     []gf.Elem // verification syndromes of the corrected word
	lambda    []gf.Elem // BMA connection polynomial
	prev      []gf.Elem // BMA previous connection polynomial
	swap      []gf.Elem // BMA copy scratch
	omega     []gf.Elem // error evaluator S*Lambda mod x^2t (len 2t)
	dlam      []gf.Elem // formal derivative of lambda
	positions []int     // Chien search roots (cap 2t)
	vals      []gf.Elem // Forney error values (cap 2t)
	res       DecodeResult
}

// NewDecodeBuf allocates a decode buffer sized for this code.
func (c *Code) NewDecodeBuf() *DecodeBuf {
	t2 := 2 * c.T
	// The BMA polynomials can transiently exceed degree 2t before the
	// final trim; 2*(2t)+2 coefficients bound every intermediate.
	bl := 2*t2 + 2
	return &DecodeBuf{
		word:      make([]gf.Elem, c.N),
		synd:      make([]gf.Elem, t2),
		vsynd:     make([]gf.Elem, t2),
		lambda:    make([]gf.Elem, bl),
		prev:      make([]gf.Elem, bl),
		swap:      make([]gf.Elem, bl),
		omega:     make([]gf.Elem, t2),
		dlam:      make([]gf.Elem, t2),
		positions: make([]int, 0, t2),
		vals:      make([]gf.Elem, t2),
	}
}

// DecodeTo is Decode using caller-owned scratch: with a reused buf the
// whole syndrome → BMA → Chien → Forney → verify chain performs zero
// allocations, every bulk step running on the field's slice kernels. A
// nil buf allocates a fresh one (making DecodeTo(nil, recv) ≡ Decode).
// The returned DecodeResult and its slices point into buf and are only
// valid until the next DecodeTo call with the same buffer.
func (c *Code) DecodeTo(buf *DecodeBuf, recv []gf.Elem) (*DecodeResult, error) {
	if len(recv) != c.N {
		return nil, fmt.Errorf("rs: received length %d, want %d", len(recv), c.N)
	}
	for i, s := range recv {
		if !c.F.Valid(s) {
			return nil, fmt.Errorf("rs: received symbol %d (%#x) outside %v", i, s, c.F)
		}
	}
	if buf == nil {
		buf = c.NewDecodeBuf()
	}
	word := buf.word
	copy(word, recv)
	synd := c.SyndromesTo(buf.synd, word)

	res := &buf.res
	*res = DecodeResult{Corrected: word, Message: word[:c.K], Syndromes: synd}
	if AllZero(synd) {
		return res, nil
	}

	nu := c.bmaTo(buf, synd)
	if 2*nu > 2*c.T {
		return nil, fmt.Errorf("rs: %d errors + %d erasures exceed capability t=%d", nu, 0, c.T)
	}
	lam := buf.lambda[:nu+1]

	// Chien search: evaluate Lambda at alpha^-p for every codeword power.
	positions := buf.positions[:0]
	for p := 0; p < c.N; p++ {
		if c.kern.EvalSlice(lam, c.F.AlphaPow(-p)) == 0 {
			positions = append(positions, c.N-1-p)
		}
	}
	if len(positions) != nu {
		return nil, fmt.Errorf("rs: Chien search found %d roots for degree-%d locator (uncorrectable)", len(positions), nu)
	}

	// Forney: Omega = S*Lambda mod x^2t by bulk convolution rows, then
	// e = X^(1-b) * Omega(X^-1) / Lambda'(X^-1) at each located position.
	t2 := 2 * c.T
	omega := buf.omega
	for i := range omega {
		omega[i] = 0
	}
	for j, s := range synd {
		if s == 0 {
			continue
		}
		lim := len(lam)
		if j+lim > t2 {
			lim = t2 - j
		}
		c.kern.MulConstAddSlice(omega[j:j+lim], lam[:lim], s)
	}
	dlam := buf.dlam[:nu]
	for i := range dlam {
		dlam[i] = 0
	}
	for i := 1; i <= nu; i += 2 {
		dlam[i-1] = lam[i]
	}
	vals := buf.vals[:len(positions)]
	for i, posIdx := range positions {
		p := c.N - 1 - posIdx
		xInv := c.F.AlphaPow(-p)
		den := c.kern.EvalSlice(dlam, xInv)
		if den == 0 {
			return nil, fmt.Errorf("rs: Forney division by zero at position %d", posIdx)
		}
		e := c.F.Div(c.kern.EvalSlice(omega, xInv), den)
		// X^(1-b) factor generalizes to arbitrary first consecutive root.
		if c.B != 1 {
			e = c.F.Mul(e, c.F.AlphaPow(p*(1-c.B)))
		}
		vals[i] = e
	}
	for i, idx := range positions {
		word[idx] ^= vals[i]
	}
	// Verify: corrected word must have all-zero syndromes.
	if !AllZero(c.SyndromesTo(buf.vsynd, word)) {
		return nil, fmt.Errorf("rs: correction verification failed (uncorrectable word)")
	}
	res.NumErrors = nu
	res.Positions = positions
	return res, nil
}

// bmaTo runs Berlekamp-Massey in buf's scratch (no allocation) and
// returns the degree of the error locator left in buf.lambda. It mirrors
// gfpoly.BerlekampMassey exactly, with the polynomial update folded into
// one bulk multiply-accumulate row per discrepancy.
func (c *Code) bmaTo(buf *DecodeBuf, synd []gf.Elem) int {
	lambda, prev, swap := buf.lambda, buf.prev, buf.swap
	for i := range lambda {
		lambda[i] = 0
		prev[i] = 0
	}
	lambda[0] = 1
	prev[0] = 1
	l, m, b := 0, 1, gf.Elem(1)
	for n := 0; n < len(synd); n++ {
		// Discrepancy d = S_n + sum_{i=1..l} lambda_i * S_{n-i}.
		d := synd[n]
		for i := 1; i <= l; i++ {
			d ^= c.F.Mul(lambda[i], synd[n-i])
		}
		if d == 0 {
			m++
			continue
		}
		coef := c.F.Div(d, b)
		if 2*l <= n {
			copy(swap, lambda)
			c.kern.MulConstAddSlice(lambda[m:], prev[:len(lambda)-m], coef)
			copy(prev, swap)
			l = n + 1 - l
			b = d
			m = 1
		} else {
			c.kern.MulConstAddSlice(lambda[m:], prev[:len(lambda)-m], coef)
			m++
		}
	}
	deg := 0
	for i := len(lambda) - 1; i > 0; i-- {
		if lambda[i] != 0 {
			deg = i
			break
		}
	}
	return deg
}

// DecodeErasures corrects errors and erasures. erasures lists codeword
// indices known to be unreliable; a code can correct nu errors and rho
// erasures whenever 2*nu + rho <= n-k. The erased positions' current
// values are ignored.
func (c *Code) DecodeErasures(recv []gf.Elem, erasures []int) (*DecodeResult, error) {
	if len(recv) != c.N {
		return nil, fmt.Errorf("rs: received length %d, want %d", len(recv), c.N)
	}
	if len(erasures) > c.N-c.K {
		return nil, fmt.Errorf("rs: %d erasures exceed n-k=%d", len(erasures), c.N-c.K)
	}
	for i, s := range recv {
		if !c.F.Valid(s) {
			return nil, fmt.Errorf("rs: received symbol %d (%#x) outside %v", i, s, c.F)
		}
	}
	word := append([]gf.Elem(nil), recv...)
	for _, idx := range erasures {
		if idx < 0 || idx >= c.N {
			return nil, fmt.Errorf("rs: erasure index %d out of range", idx)
		}
		word[idx] = 0 // normalize erased symbols
	}
	synd := c.Syndromes(word)
	res := &DecodeResult{Corrected: word, Syndromes: synd}
	if AllZero(synd) && len(erasures) == 0 {
		res.Message = word[:c.K]
		return res, nil
	}

	// Erasure locator Gamma(x) = prod (1 - X_i x).
	gamma := gfpoly.One(c.F)
	for _, idx := range erasures {
		p := c.N - 1 - idx
		gamma = gamma.Mul(gfpoly.New(c.F, 1, c.F.AlphaPow(p)))
	}
	// Forney syndromes: the coefficients rho..2t-1 of S(x)*Gamma(x) form a
	// pure-error syndrome sequence of length 2t-rho (the erasure terms cancel
	// because Gamma vanishes at the erasure locators). BMA on that sequence
	// yields the error-only locator.
	rho := len(erasures)
	sPoly := gfpoly.New(c.F, synd...)
	tPoly := sPoly.Mul(gamma).ModXn(2 * c.T)
	tSynd := make([]gf.Elem, 2*c.T-rho)
	for i := range tSynd {
		tSynd[i] = tPoly.Coeff(i + rho)
	}
	lambda := gfpoly.BerlekampMassey(c.F, tSynd)
	nu := lambda.Degree()
	if 2*nu+len(erasures) > 2*c.T {
		return nil, fmt.Errorf("rs: %d errors + %d erasures exceed capability t=%d", nu, len(erasures), c.T)
	}

	// Errata locator Psi = Lambda * Gamma; roots give all corrupt positions.
	psi := lambda.Mul(gamma)
	positions := c.ChienSearch(psi)
	if len(positions) != psi.Degree() {
		return nil, fmt.Errorf("rs: Chien search found %d roots for degree-%d locator (uncorrectable)", len(positions), psi.Degree())
	}
	vals, err := c.Forney(synd, psi, positions)
	if err != nil {
		return nil, err
	}
	for i, idx := range positions {
		word[idx] ^= vals[i]
	}
	// Verify: corrected word must have all-zero syndromes.
	if !AllZero(c.Syndromes(word)) {
		return nil, fmt.Errorf("rs: correction verification failed (uncorrectable word)")
	}
	res.Corrected = word
	res.Message = word[:c.K]
	res.NumErrors = nu
	res.NumErasure = len(erasures)
	res.Positions = positions
	return res, nil
}

// EncodeBytes encodes a k-byte message for fields with m <= 8.
func (c *Code) EncodeBytes(msg []byte) ([]byte, error) {
	if c.F.M() > 8 {
		return nil, fmt.Errorf("rs: byte interface requires m <= 8")
	}
	sym := make([]gf.Elem, len(msg))
	for i, b := range msg {
		sym[i] = gf.Elem(b)
	}
	cw, err := c.Encode(sym)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(cw))
	for i, s := range cw {
		out[i] = byte(s)
	}
	return out, nil
}

// DecodeBytes decodes an n-byte received word for fields with m <= 8 and
// returns the corrected k-byte message.
func (c *Code) DecodeBytes(recv []byte) ([]byte, error) {
	if c.F.M() > 8 {
		return nil, fmt.Errorf("rs: byte interface requires m <= 8")
	}
	sym := make([]gf.Elem, len(recv))
	for i, b := range recv {
		sym[i] = gf.Elem(b)
	}
	res, err := c.Decode(sym)
	if err != nil {
		return nil, err
	}
	out := make([]byte, c.K)
	for i, s := range res.Message {
		out[i] = byte(s)
	}
	return out, nil
}
