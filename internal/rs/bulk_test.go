package rs

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
)

// bulkCodes returns the code shapes the bulk ≡ scalar property tests run
// over: the paper's flagship, the deep-parity CCSDS shape, a shortened
// code, a small-field code and a non-narrow-sense code.
func bulkCodes(t testing.TB) []*Code {
	t.Helper()
	f8 := gf.MustDefault(8)
	f4 := gf.MustDefault(4)
	mk := func(f *gf.Field, n, k, b int) *Code {
		c, err := NewWithFCR(f, n, k, b)
		if err != nil {
			t.Fatalf("NewWithFCR(%d,%d,%d): %v", n, k, b, err)
		}
		return c
	}
	return []*Code{
		mk(f8, 255, 239, 1),
		mk(f8, 255, 223, 1),
		mk(f8, 64, 40, 1),
		mk(f8, 255, 251, 0),
		mk(f4, 15, 9, 1),
		mk(f4, 15, 11, 2),
		mk(gf.MustDefault(10), 50, 30, 1), // scalar kernel tier (m > 8)
	}
}

func bulkRandMsg(rng *rand.Rand, c *Code) []gf.Elem {
	msg := make([]gf.Elem, c.K)
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(c.F.Order()))
	}
	return msg
}

// bulkCorrupt flips nerr distinct random symbols of cw in place.
func bulkCorrupt(rng *rand.Rand, c *Code, cw []gf.Elem, nerr int) {
	perm := rng.Perm(c.N)
	for _, idx := range perm[:nerr] {
		delta := gf.Elem(1 + rng.Intn(c.F.Order()-1))
		cw[idx] ^= delta
	}
}

// TestEncodeBulkMatchesScalar: the kernel-driven encoder agrees with the
// symbol-at-a-time reference for every code shape.
func TestEncodeBulkMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range bulkCodes(t) {
		for trial := 0; trial < 50; trial++ {
			msg := bulkRandMsg(rng, c)
			fast, err := c.Encode(msg)
			if err != nil {
				t.Fatalf("%v: Encode: %v", c, err)
			}
			ref, err := c.encodeScalar(msg)
			if err != nil {
				t.Fatalf("%v: encodeScalar: %v", c, err)
			}
			for i := range ref {
				if fast[i] != ref[i] {
					t.Fatalf("%v trial %d: codeword[%d] = %#x, want %#x", c, trial, i, fast[i], ref[i])
				}
			}
		}
	}
}

// TestEncodeToInPlace: msg may alias dst[:k].
func TestEncodeToInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, c := range bulkCodes(t) {
		msg := bulkRandMsg(rng, c)
		want, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]gf.Elem, c.N)
		copy(dst, msg)
		if _, err := c.EncodeTo(dst, dst[:c.K]); err != nil {
			t.Fatalf("%v: in-place EncodeTo: %v", c, err)
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("%v: in-place codeword[%d] = %#x, want %#x", c, i, dst[i], want[i])
			}
		}
	}
}

// TestSyndromesBulkMatchesScalar: the 4-way batched syndrome kernel
// agrees with the per-syndrome Horner reference.
func TestSyndromesBulkMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, c := range bulkCodes(t) {
		for trial := 0; trial < 50; trial++ {
			word := make([]gf.Elem, c.N)
			for i := range word {
				word[i] = gf.Elem(rng.Intn(c.F.Order()))
			}
			fast := c.Syndromes(word)
			ref := c.syndromesScalar(word)
			for j := range ref {
				if fast[j] != ref[j] {
					t.Fatalf("%v trial %d: S[%d] = %#x, want %#x", c, trial, j, fast[j], ref[j])
				}
			}
		}
	}
}

// TestDecodeToMatchesDecodeErasures: the allocation-free decode chain
// produces the same corrections, positions and diagnostics as the
// polynomial-object reference path (DecodeErasures with no erasures),
// over error weights 0..t+2 — including the uncorrectable regime, where
// both must reject.
func TestDecodeToMatchesDecodeErasures(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, c := range bulkCodes(t) {
		buf := c.NewDecodeBuf()
		for trial := 0; trial < 60; trial++ {
			msg := bulkRandMsg(rng, c)
			cw, err := c.Encode(msg)
			if err != nil {
				t.Fatal(err)
			}
			nerr := rng.Intn(c.T + 3)
			if max := c.N; nerr > max {
				nerr = max
			}
			recv := append([]gf.Elem(nil), cw...)
			bulkCorrupt(rng, c, recv, nerr)

			got, gotErr := c.DecodeTo(buf, recv)
			want, wantErr := c.DecodeErasures(recv, nil)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%v trial %d (%d errs): DecodeTo err=%v, reference err=%v", c, trial, nerr, gotErr, wantErr)
			}
			if gotErr != nil {
				if gotErr.Error() != wantErr.Error() {
					t.Fatalf("%v trial %d: error text %q vs %q", c, trial, gotErr, wantErr)
				}
				continue
			}
			if got.NumErrors != want.NumErrors {
				t.Fatalf("%v trial %d: NumErrors %d vs %d", c, trial, got.NumErrors, want.NumErrors)
			}
			for i := range want.Corrected {
				if got.Corrected[i] != want.Corrected[i] {
					t.Fatalf("%v trial %d: Corrected[%d] mismatch", c, trial, i)
				}
			}
			if len(got.Positions) != len(want.Positions) {
				t.Fatalf("%v trial %d: positions %v vs %v", c, trial, got.Positions, want.Positions)
			}
			for i := range want.Positions {
				if got.Positions[i] != want.Positions[i] {
					t.Fatalf("%v trial %d: positions %v vs %v", c, trial, got.Positions, want.Positions)
				}
			}
			for j := range want.Syndromes {
				if got.Syndromes[j] != want.Syndromes[j] {
					t.Fatalf("%v trial %d: syndromes differ at %d", c, trial, j)
				}
			}
			if nerr <= c.T {
				for i := range msg {
					if got.Message[i] != msg[i] {
						t.Fatalf("%v trial %d: message not recovered at %d", c, trial, i)
					}
				}
			}
		}
	}
}

// TestDecodeToZeroAlloc pins the acceptance criterion: the steady-state
// encode → corrupt → decode chain with reused buffers performs zero
// allocations per operation.
func TestDecodeToZeroAlloc(t *testing.T) {
	c := Must(gf.MustDefault(8), 255, 223)
	rng := rand.New(rand.NewSource(5))
	msg := bulkRandMsg(rng, c)
	cw := make([]gf.Elem, c.N)
	if _, err := c.EncodeTo(cw, msg); err != nil {
		t.Fatal(err)
	}
	recv := append([]gf.Elem(nil), cw...)
	bulkCorrupt(rng, c, recv, c.T)
	buf := c.NewDecodeBuf()
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := c.EncodeTo(cw, msg); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("EncodeTo: %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		res, err := c.DecodeTo(buf, recv)
		if err != nil || res.NumErrors != c.T {
			t.Fatalf("decode: %v (errs=%d)", err, res.NumErrors)
		}
	}); allocs != 0 {
		t.Errorf("DecodeTo: %v allocs/op, want 0", allocs)
	}

	iv, _ := NewInterleaved(c, 4)
	fmsg := make([]gf.Elem, iv.FrameK())
	for i := range fmsg {
		fmsg[i] = gf.Elem(rng.Intn(256))
	}
	frame := make([]gf.Elem, iv.FrameN())
	fb := iv.NewFrameBuf()
	if _, err := iv.EncodeTo(frame, fmsg, fb); err != nil {
		t.Fatal(err)
	}
	out := make([]gf.Elem, iv.FrameK())
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := iv.EncodeTo(frame, fmsg, fb); err != nil {
			t.Fatal(err)
		}
		if _, err := iv.DecodeWithStatsTo(out, frame, fb); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("interleaved EncodeTo+DecodeWithStatsTo: %v allocs/op, want 0", allocs)
	}
	for i := range fmsg {
		if out[i] != fmsg[i] {
			t.Fatalf("frame roundtrip mismatch at %d", i)
		}
	}
}

// TestFrameBufReuseAcrossOutcomes: one FrameBuf must stay correct when a
// failed decode is followed by clean ones (stale scratch must not leak).
func TestFrameBufReuseAcrossOutcomes(t *testing.T) {
	c := Must(gf.MustDefault(8), 255, 239)
	iv, _ := NewInterleaved(c, 3)
	rng := rand.New(rand.NewSource(6))
	fb := iv.NewFrameBuf()
	msg := make([]gf.Elem, iv.FrameK())
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(256))
	}
	frame, err := iv.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	// Destroy codeword 1 beyond repair.
	bad := append([]gf.Elem(nil), frame...)
	for j := 0; j < c.N; j++ {
		if j%2 == 0 {
			bad[j*iv.Depth+1] ^= 0x5a
		}
	}
	out := make([]gf.Elem, iv.FrameK())
	st, err := iv.DecodeWithStatsTo(out, bad, fb)
	if err == nil {
		t.Fatal("expected decode failure for destroyed codeword")
	}
	if st.Failed != 1 || st.PerCodeword[1] != -1 || st.Max != c.T+1 {
		t.Fatalf("stats after failure: %+v", st)
	}
	// Clean frame through the same buffer must fully recover.
	st, err = iv.DecodeWithStatsTo(out, frame, fb)
	if err != nil {
		t.Fatalf("clean frame after failed frame: %v", err)
	}
	if st.Failed != 0 || st.Total != 0 {
		t.Fatalf("stats after clean frame: %+v", st)
	}
	for i := range msg {
		if out[i] != msg[i] {
			t.Fatalf("message mismatch at %d after buffer reuse", i)
		}
	}
}

func benchCode(b *testing.B, n, k int) (*Code, []gf.Elem, []gf.Elem) {
	b.Helper()
	c := Must(gf.MustDefault(8), n, k)
	rng := rand.New(rand.NewSource(7))
	msg := bulkRandMsg(rng, c)
	cw, err := c.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	return c, msg, cw
}

func BenchmarkEncode255_223Bulk(b *testing.B) {
	c, msg, _ := benchCode(b, 255, 223)
	dst := make([]gf.Elem, c.N)
	b.SetBytes(int64(c.K))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeTo(dst, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode255_223Scalar(b *testing.B) {
	c, msg, _ := benchCode(b, 255, 223)
	b.SetBytes(int64(c.K))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.encodeScalar(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSyndromes255_223Bulk(b *testing.B) {
	c, _, cw := benchCode(b, 255, 223)
	dst := make([]gf.Elem, 2*c.T)
	b.SetBytes(int64(c.N))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SyndromesTo(dst, cw)
	}
}

func BenchmarkSyndromes255_223Scalar(b *testing.B) {
	c, _, cw := benchCode(b, 255, 223)
	b.SetBytes(int64(c.N))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.syndromesScalar(cw)
	}
}

func BenchmarkDecodeTo255_223_16errors(b *testing.B) {
	c, _, cw := benchCode(b, 255, 223)
	rng := rand.New(rand.NewSource(8))
	recv := append([]gf.Elem(nil), cw...)
	bulkCorrupt(rng, c, recv, c.T)
	buf := c.NewDecodeBuf()
	b.SetBytes(int64(c.N))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeTo(buf, recv); err != nil {
			b.Fatal(err)
		}
	}
}
