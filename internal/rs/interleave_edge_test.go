package rs

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gf"
)

// TestInterleavedDecodeErrorPaths pins the Decode failure contracts: the
// wrong-length message, the partial progress returned when a middle
// codeword is unrecoverable, and the index wrapping in the error text.
func TestInterleavedDecodeErrorPaths(t *testing.T) {
	c := Must(gf.MustDefault(8), 15, 9)
	iv, err := NewInterleaved(c, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong frame length: every entry point must refuse it up front.
	short := make([]gf.Elem, iv.FrameN()-1)
	if _, _, err := iv.Decode(short); err == nil || !strings.Contains(err.Error(), "frame length") {
		t.Fatalf("Decode(short) err = %v, want frame length error", err)
	}
	if _, _, err := iv.DecodeWithStats(short); err == nil || !strings.Contains(err.Error(), "frame length") {
		t.Fatalf("DecodeWithStats(short) err = %v, want frame length error", err)
	}
	if _, err := iv.DecodeWithStatsTo(make([]gf.Elem, iv.FrameK()), short, nil); err == nil {
		t.Fatal("DecodeWithStatsTo(short): expected error")
	}
	if _, err := iv.DecodeWithStatsTo(make([]gf.Elem, 1), make([]gf.Elem, iv.FrameN()), nil); err == nil ||
		!strings.Contains(err.Error(), "frame message length") {
		t.Fatalf("DecodeWithStatsTo(short msg) err = %v, want frame message length error", err)
	}
	if _, err := iv.Encode(make([]gf.Elem, 1)); err == nil || !strings.Contains(err.Error(), "frame message length") {
		t.Fatalf("Encode(short) err = %v, want frame message length error", err)
	}
	if _, err := iv.EncodeTo(make([]gf.Elem, 1), make([]gf.Elem, iv.FrameK()), nil); err == nil ||
		!strings.Contains(err.Error(), "frame destination length") {
		t.Fatalf("EncodeTo(short dst) err = %v, want frame destination length error", err)
	}

	// Unrecoverable middle codeword: Decode stops there, names the index,
	// and reports the corrections made before the failure.
	rng := rand.New(rand.NewSource(77))
	msg := make([]gf.Elem, iv.FrameK())
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(256))
	}
	frame, err := iv.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	// Codeword 0: t correctable errors. Codeword 1: destroyed (> t errors).
	for j := 0; j < c.T; j++ {
		frame[(3*j)*iv.Depth] ^= gf.Elem(1 + rng.Intn(255)) // stride offset 0
	}
	for j := 0; j < c.N; j += 2 {
		frame[j*iv.Depth+1] ^= gf.Elem(1 + rng.Intn(255)) // stride offset 1
	}
	_, total, err := iv.Decode(frame)
	if err == nil {
		t.Fatal("Decode: expected unrecoverable codeword error")
	}
	if !strings.Contains(err.Error(), "codeword 1 of frame") {
		t.Fatalf("Decode err = %v, want codeword 1 index", err)
	}
	if total != c.T {
		t.Fatalf("Decode partial corrections = %d, want %d (codeword 0)", total, c.T)
	}

	// DecodeWithStats keeps going: codeword 2 still decodes cleanly and
	// the stats cover the whole frame.
	got, st, err := iv.DecodeWithStats(frame)
	if err == nil || !strings.Contains(err.Error(), "codeword 1 of frame") {
		t.Fatalf("DecodeWithStats err = %v, want codeword 1 wrapped error", err)
	}
	if st.Failed != 1 || st.PerCodeword[1] != -1 {
		t.Fatalf("stats = %+v, want exactly codeword 1 failed", st)
	}
	if st.PerCodeword[0] != c.T || st.PerCodeword[2] != 0 || st.Total != c.T {
		t.Fatalf("stats = %+v, want %d corrections in codeword 0, none in 2", st, c.T)
	}
	if st.Max != c.T+1 {
		t.Fatalf("stats.Max = %d, want t+1 = %d for a failed codeword", st.Max, c.T+1)
	}
	// Codewords 0 and 2 of the returned message are still intact.
	for i := 0; i < c.K; i++ {
		if got[0*c.K+i] != msg[0*c.K+i] {
			t.Fatalf("codeword 0 message symbol %d corrupted", i)
		}
		if got[2*c.K+i] != msg[2*c.K+i] {
			t.Fatalf("codeword 2 message symbol %d corrupted", i)
		}
	}
}

// TestInterleavedDecodeInvalidSymbol: a frame carrying symbols outside
// the field must be rejected, not silently masked.
func TestInterleavedDecodeInvalidSymbol(t *testing.T) {
	c := Must(gf.MustDefault(4), 15, 9)
	iv, err := NewInterleaved(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := iv.Encode(make([]gf.Elem, iv.FrameK()))
	if err != nil {
		t.Fatal(err)
	}
	frame[5] = 0x10 // outside GF(2^4)
	if _, _, err := iv.Decode(frame); err == nil {
		t.Fatal("Decode accepted an out-of-field symbol")
	}
}
