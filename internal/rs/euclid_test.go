package rs

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
	"repro/internal/gfpoly"
)

func TestEuclidDecoderMatchesBMA(t *testing.T) {
	codes := []*Code{
		Must(f8, 255, 239),
		Must(f8, 255, 223),
		Must(gf.MustDefault(4), 15, 9),
	}
	rng := rand.New(rand.NewSource(41))
	for _, c := range codes {
		for nerr := 0; nerr <= c.T; nerr++ {
			msg := randMsg(rng, c.F, c.K)
			cw, _ := c.Encode(msg)
			recv, _ := corrupt(rng, c.F, cw, nerr)
			a, errA := c.Decode(recv)
			b, errB := c.DecodeEuclid(recv)
			if errA != nil || errB != nil {
				t.Fatalf("%v nerr=%d: BMA err=%v, Euclid err=%v", c, nerr, errA, errB)
			}
			for i := range a.Corrected {
				if a.Corrected[i] != b.Corrected[i] {
					t.Fatalf("%v nerr=%d: decoders disagree at %d", c, nerr, i)
				}
			}
			if a.NumErrors != b.NumErrors {
				t.Fatalf("%v nerr=%d: error counts %d vs %d", c, nerr, a.NumErrors, b.NumErrors)
			}
		}
	}
}

func TestEuclidKeyEquationAgainstBMA(t *testing.T) {
	c := Must(f8, 255, 239)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		msg := randMsg(rng, c.F, c.K)
		cw, _ := c.Encode(msg)
		nerr := 1 + rng.Intn(c.T)
		recv, _ := corrupt(rng, c.F, cw, nerr)
		synd := c.Syndromes(recv)
		lamE, omegaE, err := c.SolveKeyEquationEuclid(synd)
		if err != nil {
			t.Fatal(err)
		}
		lamB := c.BerlekampMassey(synd)
		if !lamE.Equal(lamB) {
			t.Fatalf("trial %d: Euclid lambda %v != BMA %v", trial, lamE, lamB)
		}
		// Key equation: Lambda*S mod x^2t == Omega.
		sPoly := gfpoly.New(c.F, synd...)
		got := lamE.Mul(sPoly).ModXn(2 * c.T)
		if !got.Equal(omegaE) {
			t.Fatalf("trial %d: key equation violated", trial)
		}
		if omegaE.Degree() >= lamE.Degree() {
			t.Fatalf("trial %d: deg Omega %d >= deg Lambda %d", trial, omegaE.Degree(), lamE.Degree())
		}
	}
}

func TestEuclidDecoderBeyondT(t *testing.T) {
	c := Must(f8, 255, 239)
	rng := rand.New(rand.NewSource(43))
	fails := 0
	for trial := 0; trial < 20; trial++ {
		msg := randMsg(rng, c.F, c.K)
		cw, _ := c.Encode(msg)
		recv, _ := corrupt(rng, c.F, cw, c.T+4)
		res, err := c.DecodeEuclid(recv)
		if err != nil {
			fails++
			continue
		}
		same := true
		for i := range msg {
			if res.Message[i] != msg[i] {
				same = false
			}
		}
		if same {
			t.Fatal("t+4 errors decoded to original (impossible)")
		}
	}
	if fails == 0 {
		t.Error("no failures beyond capacity (suspicious)")
	}
}

func TestEuclidValidation(t *testing.T) {
	c := Must(f8, 255, 239)
	if _, err := c.DecodeEuclid(make([]gf.Elem, 10)); err == nil {
		t.Error("short word accepted")
	}
}
