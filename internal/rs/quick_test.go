package rs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gf"
)

// Property (testing/quick): ANY pattern of up to t symbol errors decodes
// back to the original message — the defining invariant of RS(n, k).
func TestQuickDecodeInvariant(t *testing.T) {
	c := Must(f8, 255, 239)
	prop := func(seed int64, nerrRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nerr := int(nerrRaw) % (c.T + 1)
		msg := randMsg(rng, f8, c.K)
		cw, err := c.Encode(msg)
		if err != nil {
			return false
		}
		recv, _ := corrupt(rng, f8, cw, nerr)
		res, err := c.Decode(recv)
		if err != nil || res.NumErrors != nerr {
			return false
		}
		for i := range msg {
			if res.Message[i] != msg[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: encoding is linear — encode(a) XOR encode(b) == encode(a XOR b).
func TestQuickEncoderLinearity(t *testing.T) {
	c := Must(gf.MustDefault(4), 15, 9)
	prop := func(seedA, seedB int64) bool {
		rngA := rand.New(rand.NewSource(seedA))
		rngB := rand.New(rand.NewSource(seedB))
		a := randMsg(rngA, c.F, c.K)
		b := randMsg(rngB, c.F, c.K)
		sum := make([]gf.Elem, c.K)
		for i := range sum {
			sum[i] = a[i] ^ b[i]
		}
		ca, _ := c.Encode(a)
		cb, _ := c.Encode(b)
		cs, _ := c.Encode(sum)
		for i := range cs {
			if cs[i] != ca[i]^cb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
