package rs

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
	"repro/internal/gfpoly"
)

var f8 = gf.MustDefault(8)

func randMsg(rng *rand.Rand, f *gf.Field, k int) []gf.Elem {
	m := make([]gf.Elem, k)
	for i := range m {
		m[i] = gf.Elem(rng.Intn(f.Order()))
	}
	return m
}

// corrupt injects nerr random symbol errors at distinct random positions.
func corrupt(rng *rand.Rand, f *gf.Field, cw []gf.Elem, nerr int) ([]gf.Elem, []int) {
	out := append([]gf.Elem(nil), cw...)
	perm := rng.Perm(len(cw))[:nerr]
	for _, idx := range perm {
		e := gf.Elem(1 + rng.Intn(f.Order()-1))
		out[idx] ^= e
	}
	return out, perm
}

func TestNewValidation(t *testing.T) {
	if _, err := New(f8, 256, 239); err == nil {
		t.Error("n > 2^m-1 accepted")
	}
	if _, err := New(f8, 255, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(f8, 255, 240); err == nil {
		t.Error("odd n-k accepted")
	}
	if _, err := New(f8, 255, 255); err == nil {
		t.Error("k=n accepted")
	}
}

func TestGeneratorProperties(t *testing.T) {
	c := Must(f8, 255, 239)
	g := c.Generator()
	if g.Degree() != 16 {
		t.Fatalf("generator degree %d, want 16", g.Degree())
	}
	// Generator must vanish at alpha^1..alpha^2t.
	for i := 1; i <= 16; i++ {
		if g.Eval(f8.AlphaPow(i)) != 0 {
			t.Errorf("g(alpha^%d) != 0", i)
		}
	}
	if g.Eval(f8.AlphaPow(17)) == 0 {
		t.Error("g vanishes beyond its designed roots")
	}
}

func TestEncodedWordIsMultipleOfGenerator(t *testing.T) {
	c := Must(f8, 255, 239)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		cw, err := c.Encode(randMsg(rng, f8, c.K))
		if err != nil {
			t.Fatal(err)
		}
		// Codeword as polynomial: coefficient of x^(n-1-i) = cw[i].
		coeffs := make([]gf.Elem, c.N)
		for i, s := range cw {
			coeffs[c.N-1-i] = s
		}
		p := gfpoly.New(f8, coeffs...)
		if !p.Mod(c.Generator()).IsZero() {
			t.Fatal("codeword not divisible by generator")
		}
		if !AllZero(c.Syndromes(cw)) {
			t.Fatal("clean codeword has nonzero syndromes")
		}
	}
}

func TestEncodeSystematic(t *testing.T) {
	c := Must(f8, 255, 239)
	rng := rand.New(rand.NewSource(2))
	msg := randMsg(rng, f8, c.K)
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msg {
		if cw[i] != msg[i] {
			t.Fatal("encoding not systematic")
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	c := Must(f8, 255, 239)
	if _, err := c.Encode(make([]gf.Elem, 10)); err == nil {
		t.Error("wrong-length message accepted")
	}
	bad := make([]gf.Elem, c.K)
	bad[0] = 0x100
	if _, err := c.Encode(bad); err == nil {
		t.Error("out-of-field symbol accepted")
	}
}

func TestDecodeUpToT(t *testing.T) {
	codes := []*Code{
		Must(f8, 255, 239),              // the paper's RS code, t=8
		Must(f8, 255, 223),              // CCSDS-style, t=16
		Must(gf.MustDefault(4), 15, 9),  // small field, t=3
		Must(gf.MustDefault(5), 31, 25), // t=3
	}
	rng := rand.New(rand.NewSource(3))
	for _, c := range codes {
		for nerr := 0; nerr <= c.T; nerr++ {
			msg := randMsg(rng, c.F, c.K)
			cw, err := c.Encode(msg)
			if err != nil {
				t.Fatal(err)
			}
			recv, _ := corrupt(rng, c.F, cw, nerr)
			res, err := c.Decode(recv)
			if err != nil {
				t.Fatalf("%v: decode with %d errors failed: %v", c, nerr, err)
			}
			if res.NumErrors != nerr {
				t.Errorf("%v: reported %d errors, injected %d", c, res.NumErrors, nerr)
			}
			for i := range msg {
				if res.Message[i] != msg[i] {
					t.Fatalf("%v: message corrupted after decode (%d errors)", c, nerr)
				}
			}
		}
	}
}

func TestDecodeBeyondTFails(t *testing.T) {
	c := Must(f8, 255, 239)
	rng := rand.New(rand.NewSource(4))
	fails := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		msg := randMsg(rng, f8, c.K)
		cw, _ := c.Encode(msg)
		recv, _ := corrupt(rng, f8, cw, c.T+3)
		res, err := c.Decode(recv)
		if err != nil {
			fails++
			continue
		}
		// Miscorrection is possible but must never be reported as <= t
		// errors matching the original message.
		same := true
		for i := range msg {
			if res.Message[i] != msg[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("decoded t+3 errors to the original message (impossible)")
		}
	}
	if fails == 0 {
		t.Error("no decode failures in any beyond-capacity trial (suspicious)")
	}
}

func TestDecodeErasuresOnly(t *testing.T) {
	c := Must(f8, 255, 239)
	rng := rand.New(rand.NewSource(5))
	// Up to n-k = 16 erasures are correctable with no errors.
	for _, rho := range []int{1, 4, 8, 16} {
		msg := randMsg(rng, f8, c.K)
		cw, _ := c.Encode(msg)
		recv := append([]gf.Elem(nil), cw...)
		idx := rng.Perm(c.N)[:rho]
		for _, i := range idx {
			recv[i] = gf.Elem(rng.Intn(256)) // garbage; decoder ignores it
		}
		res, err := c.DecodeErasures(recv, idx)
		if err != nil {
			t.Fatalf("rho=%d: %v", rho, err)
		}
		for i := range msg {
			if res.Message[i] != msg[i] {
				t.Fatalf("rho=%d: message corrupted", rho)
			}
		}
		if res.NumErasure != rho {
			t.Errorf("rho=%d: reported %d erasures", rho, res.NumErasure)
		}
	}
}

func TestDecodeErrorsAndErasures(t *testing.T) {
	c := Must(f8, 255, 239)
	rng := rand.New(rand.NewSource(6))
	// 2*nu + rho <= 16: try the full frontier.
	for rho := 0; rho <= 16; rho += 2 {
		nu := (16 - rho) / 2
		msg := randMsg(rng, f8, c.K)
		cw, _ := c.Encode(msg)
		perm := rng.Perm(c.N)
		eras := perm[:rho]
		recv := append([]gf.Elem(nil), cw...)
		for _, i := range eras {
			recv[i] ^= gf.Elem(1 + rng.Intn(255))
		}
		for _, i := range perm[rho : rho+nu] {
			recv[i] ^= gf.Elem(1 + rng.Intn(255))
		}
		res, err := c.DecodeErasures(recv, eras)
		if err != nil {
			t.Fatalf("rho=%d nu=%d: %v", rho, nu, err)
		}
		for i := range msg {
			if res.Message[i] != msg[i] {
				t.Fatalf("rho=%d nu=%d: message corrupted", rho, nu)
			}
		}
	}
}

func TestErasureValidation(t *testing.T) {
	c := Must(f8, 255, 239)
	cw, _ := c.Encode(make([]gf.Elem, c.K))
	if _, err := c.DecodeErasures(cw, make([]int, 17)); err == nil {
		t.Error("17 erasures accepted for t=8 code")
	}
	if _, err := c.DecodeErasures(cw, []int{-1}); err == nil {
		t.Error("negative erasure index accepted")
	}
	if _, err := c.Decode(cw[:10]); err == nil {
		t.Error("short received word accepted")
	}
}

func TestShortenedCode(t *testing.T) {
	// RS(64, 48) over GF(2^8): a shortened code, t=8.
	c := Must(f8, 64, 48)
	rng := rand.New(rand.NewSource(7))
	for nerr := 0; nerr <= c.T; nerr++ {
		msg := randMsg(rng, f8, c.K)
		cw, _ := c.Encode(msg)
		recv, _ := corrupt(rng, f8, cw, nerr)
		res, err := c.Decode(recv)
		if err != nil {
			t.Fatalf("shortened decode with %d errors: %v", nerr, err)
		}
		for i := range msg {
			if res.Message[i] != msg[i] {
				t.Fatal("shortened decode corrupted message")
			}
		}
	}
}

func TestNonStandardFCR(t *testing.T) {
	// CCSDS uses b=112 style offsets; verify an arbitrary fcr decodes.
	c, err := NewWithFCR(f8, 255, 239, 112)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	msg := randMsg(rng, f8, c.K)
	cw, _ := c.Encode(msg)
	recv, _ := corrupt(rng, f8, cw, c.T)
	res, err := c.Decode(recv)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msg {
		if res.Message[i] != msg[i] {
			t.Fatal("fcr=112 decode corrupted message")
		}
	}
}

func TestArbitraryFieldPolynomial(t *testing.T) {
	// The paper's flexibility claim: same code on a different irreducible
	// polynomial. Run RS(255,239) on three distinct GF(2^8) constructions.
	for _, poly := range []uint32{0x11D, 0x12B, 0x187} {
		f, err := gf.New(8, poly)
		if err != nil {
			t.Fatalf("poly %#x: %v", poly, err)
		}
		c := Must(f, 255, 239)
		rng := rand.New(rand.NewSource(9))
		msg := randMsg(rng, f, c.K)
		cw, _ := c.Encode(msg)
		recv, _ := corrupt(rng, f, cw, 8)
		res, err := c.Decode(recv)
		if err != nil {
			t.Fatalf("poly %#x: %v", poly, err)
		}
		for i := range msg {
			if res.Message[i] != msg[i] {
				t.Fatalf("poly %#x: corrupted", poly)
			}
		}
	}
}

func TestChienSearchPositions(t *testing.T) {
	c := Must(f8, 255, 239)
	rng := rand.New(rand.NewSource(10))
	msg := randMsg(rng, f8, c.K)
	cw, _ := c.Encode(msg)
	recv, injected := corrupt(rng, f8, cw, 5)
	synd := c.Syndromes(recv)
	lambda := c.BerlekampMassey(synd)
	if lambda.Degree() != 5 {
		t.Fatalf("lambda degree %d, want 5", lambda.Degree())
	}
	pos := c.ChienSearch(lambda)
	if len(pos) != 5 {
		t.Fatalf("found %d positions, want 5", len(pos))
	}
	want := map[int]bool{}
	for _, p := range injected {
		want[p] = true
	}
	for _, p := range pos {
		if !want[p] {
			t.Fatalf("position %d not among injected %v", p, injected)
		}
	}
}

func TestForneyValues(t *testing.T) {
	c := Must(f8, 255, 239)
	rng := rand.New(rand.NewSource(11))
	msg := randMsg(rng, f8, c.K)
	cw, _ := c.Encode(msg)
	recv := append([]gf.Elem(nil), cw...)
	// Known injected errors.
	inj := map[int]gf.Elem{10: 0x5A, 100: 0x01, 254: 0xFF}
	for i, e := range inj {
		recv[i] ^= e
	}
	synd := c.Syndromes(recv)
	lambda := c.BerlekampMassey(synd)
	pos := c.ChienSearch(lambda)
	vals, err := c.Forney(synd, lambda, pos)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pos {
		if vals[i] != inj[p] {
			t.Fatalf("Forney value at %d = %#x, want %#x", p, vals[i], inj[p])
		}
	}
}

func TestByteInterface(t *testing.T) {
	c := Must(f8, 255, 239)
	rng := rand.New(rand.NewSource(12))
	msg := make([]byte, c.K)
	rng.Read(msg)
	cw, err := c.EncodeBytes(msg)
	if err != nil {
		t.Fatal(err)
	}
	cw[0] ^= 0xAA
	cw[200] ^= 0x55
	got, err := c.DecodeBytes(cw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatal("byte round trip corrupted")
		}
	}
}

func TestRateAndString(t *testing.T) {
	c := Must(f8, 255, 239)
	if r := c.Rate(); r < 0.937 || r > 0.938 {
		t.Errorf("rate = %v", r)
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
}

func TestBurstErrorCorrection(t *testing.T) {
	// An RS symbol absorbs up to m consecutive bit errors: a 64-bit burst
	// spans at most 9 symbols — within t=16 of RS(255,223). This is the
	// paper's "multiple-burst" robustness argument for RS.
	c := Must(f8, 255, 223)
	rng := rand.New(rand.NewSource(13))
	msg := randMsg(rng, f8, c.K)
	cw, _ := c.Encode(msg)
	recv := append([]gf.Elem(nil), cw...)
	start := 40
	for i := 0; i < 16; i++ { // 16-symbol burst = up to 128 bit errors
		recv[start+i] ^= gf.Elem(1 + rng.Intn(255))
	}
	res, err := c.Decode(recv)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msg {
		if res.Message[i] != msg[i] {
			t.Fatal("burst decode corrupted message")
		}
	}
}
