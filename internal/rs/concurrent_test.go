package rs

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gf"
)

// TestConcurrentEncodeDecodeSharedCode hammers one shared *Code (and one
// shared *Interleaved) from many goroutines. Run with -race this proves
// the concurrency contract documented in the package comment: a codec
// instance is immutable after construction, so one instance may serve a
// whole worker pool.
func TestConcurrentEncodeDecodeSharedCode(t *testing.T) {
	f := gf.MustDefault(8)
	code := Must(f, 255, 239)
	iv, err := NewInterleaved(code, 4)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 30
	var wg sync.WaitGroup
	wg.Add(goroutines)
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			msg := make([]gf.Elem, code.K)
			for it := 0; it < iters; it++ {
				for i := range msg {
					msg[i] = gf.Elem(rng.Intn(256))
				}
				cw, err := code.Encode(msg)
				if err != nil {
					errCh <- err
					return
				}
				// Inject t errors at goroutine-dependent positions.
				for e := 0; e < code.T; e++ {
					cw[(g*17+e*29)%code.N] ^= gf.Elem(1 + rng.Intn(255))
				}
				res, err := code.Decode(cw)
				if err != nil {
					errCh <- err
					return
				}
				for i := range msg {
					if res.Message[i] != msg[i] {
						t.Errorf("goroutine %d iter %d: symbol %d mismatch", g, it, i)
						return
					}
				}

				// Interleaved frame round trip on the same shared codec.
				frame := make([]gf.Elem, iv.FrameK())
				for i := range frame {
					frame[i] = gf.Elem(rng.Intn(256))
				}
				enc, err := iv.Encode(frame)
				if err != nil {
					errCh <- err
					return
				}
				// A burst of depth*t consecutive corrupted symbols is
				// guaranteed correctable.
				start := rng.Intn(iv.FrameN() - iv.BurstTolerance())
				for e := 0; e < iv.BurstTolerance(); e++ {
					enc[start+e] ^= gf.Elem(1 + rng.Intn(255))
				}
				dec, _, err := iv.Decode(enc)
				if err != nil {
					errCh <- err
					return
				}
				for i := range frame {
					if dec[i] != frame[i] {
						t.Errorf("goroutine %d iter %d: frame symbol %d mismatch", g, it, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
