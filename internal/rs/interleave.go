package rs

import (
	"fmt"

	"repro/internal/gf"
)

// Interleaved Reed-Solomon: depth-I symbol interleaving of I codewords,
// the CCSDS-style construction that multiplies burst tolerance by the
// interleaving depth. A frame carries I*k message symbols; on the wire,
// symbol j of the frame belongs to codeword j mod I, so a burst of up to
// I*t consecutive corrupted symbols splits into at most t per codeword.
type Interleaved struct {
	Code  *Code
	Depth int
}

// NewInterleaved wraps the code with interleaving depth I >= 1.
func NewInterleaved(c *Code, depth int) (*Interleaved, error) {
	if depth < 1 {
		return nil, fmt.Errorf("rs: interleaving depth %d < 1", depth)
	}
	return &Interleaved{Code: c, Depth: depth}, nil
}

// FrameK returns the message symbols per frame (I*k).
func (iv *Interleaved) FrameK() int { return iv.Depth * iv.Code.K }

// FrameN returns the frame length on the wire (I*n).
func (iv *Interleaved) FrameN() int { return iv.Depth * iv.Code.N }

// BurstTolerance returns the longest guaranteed-correctable symbol burst.
func (iv *Interleaved) BurstTolerance() int { return iv.Depth * iv.Code.T }

// Encode encodes I*k message symbols into an interleaved I*n frame.
func (iv *Interleaved) Encode(msg []gf.Elem) ([]gf.Elem, error) {
	if len(msg) != iv.FrameK() {
		return nil, fmt.Errorf("rs: frame message length %d, want %d", len(msg), iv.FrameK())
	}
	out := make([]gf.Elem, iv.FrameN())
	for i := 0; i < iv.Depth; i++ {
		cw, err := iv.Code.Encode(msg[i*iv.Code.K : (i+1)*iv.Code.K])
		if err != nil {
			return nil, err
		}
		for j, s := range cw {
			out[j*iv.Depth+i] = s
		}
	}
	return out, nil
}

// Decode deinterleaves and decodes a frame, returning the I*k message
// symbols and the total number of symbol errors corrected.
func (iv *Interleaved) Decode(recv []gf.Elem) ([]gf.Elem, int, error) {
	if len(recv) != iv.FrameN() {
		return nil, 0, fmt.Errorf("rs: frame length %d, want %d", len(recv), iv.FrameN())
	}
	msg := make([]gf.Elem, iv.FrameK())
	total := 0
	cw := make([]gf.Elem, iv.Code.N)
	for i := 0; i < iv.Depth; i++ {
		for j := 0; j < iv.Code.N; j++ {
			cw[j] = recv[j*iv.Depth+i]
		}
		res, err := iv.Code.Decode(cw)
		if err != nil {
			return nil, total, fmt.Errorf("rs: codeword %d of frame: %w", i, err)
		}
		copy(msg[i*iv.Code.K:], res.Message)
		total += res.NumErrors
	}
	return msg, total, nil
}

// FrameStats reports per-codeword decode detail for one interleaved
// frame — the margin signal adaptive link controllers feed on.
type FrameStats struct {
	// PerCodeword holds the corrections made in each of the Depth
	// codewords; -1 marks a codeword the decoder could not correct.
	PerCodeword []int
	// Failed counts uncorrectable codewords.
	Failed int
	// Total is the corrections summed over the decodable codewords.
	Total int
	// Max is the worst per-codeword correction count (failed codewords
	// count as the full bound t+1, i.e. past the correctable limit).
	Max int
}

// DecodeWithStats deinterleaves and decodes a frame like Decode but keeps
// going past uncorrectable codewords, so the returned FrameStats always
// covers every codeword. The message is complete only when err is nil;
// failed codewords leave their message symbols as received (systematic
// prefix, uncorrected). The returned error is the first codeword's decode
// error, wrapped with its index.
func (iv *Interleaved) DecodeWithStats(recv []gf.Elem) ([]gf.Elem, *FrameStats, error) {
	if len(recv) != iv.FrameN() {
		return nil, nil, fmt.Errorf("rs: frame length %d, want %d", len(recv), iv.FrameN())
	}
	msg := make([]gf.Elem, iv.FrameK())
	st := &FrameStats{PerCodeword: make([]int, iv.Depth)}
	var firstErr error
	cw := make([]gf.Elem, iv.Code.N)
	for i := 0; i < iv.Depth; i++ {
		for j := 0; j < iv.Code.N; j++ {
			cw[j] = recv[j*iv.Depth+i]
		}
		res, err := iv.Code.Decode(cw)
		if err != nil {
			st.PerCodeword[i] = -1
			st.Failed++
			if over := iv.Code.T + 1; over > st.Max {
				st.Max = over
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("rs: codeword %d of frame: %w", i, err)
			}
			copy(msg[i*iv.Code.K:], cw[:iv.Code.K])
			continue
		}
		st.PerCodeword[i] = res.NumErrors
		st.Total += res.NumErrors
		if res.NumErrors > st.Max {
			st.Max = res.NumErrors
		}
		copy(msg[i*iv.Code.K:], res.Message)
	}
	return msg, st, firstErr
}
