package rs

import (
	"fmt"

	"repro/internal/gf"
)

// Interleaved Reed-Solomon: depth-I symbol interleaving of I codewords,
// the CCSDS-style construction that multiplies burst tolerance by the
// interleaving depth. A frame carries I*k message symbols; on the wire,
// symbol j of the frame belongs to codeword j mod I, so a burst of up to
// I*t consecutive corrupted symbols splits into at most t per codeword.
type Interleaved struct {
	Code  *Code
	Depth int
}

// NewInterleaved wraps the code with interleaving depth I >= 1.
func NewInterleaved(c *Code, depth int) (*Interleaved, error) {
	if depth < 1 {
		return nil, fmt.Errorf("rs: interleaving depth %d < 1", depth)
	}
	return &Interleaved{Code: c, Depth: depth}, nil
}

// FrameK returns the message symbols per frame (I*k).
func (iv *Interleaved) FrameK() int { return iv.Depth * iv.Code.K }

// FrameN returns the frame length on the wire (I*n).
func (iv *Interleaved) FrameN() int { return iv.Depth * iv.Code.N }

// BurstTolerance returns the longest guaranteed-correctable symbol burst.
func (iv *Interleaved) BurstTolerance() int { return iv.Depth * iv.Code.T }

// FrameBuf holds the per-frame scratch of the interleaved codec: one
// codeword staging buffer, one decode buffer, and the FrameStats storage.
// A FrameBuf belongs to one goroutine at a time; reusing it across *To
// calls makes steady-state frame processing allocation-free.
type FrameBuf struct {
	cw    []gf.Elem
	dec   *DecodeBuf
	stats FrameStats
}

// NewFrameBuf allocates frame scratch sized for this interleaver.
func (iv *Interleaved) NewFrameBuf() *FrameBuf {
	return &FrameBuf{
		cw:    make([]gf.Elem, iv.Code.N),
		dec:   iv.Code.NewDecodeBuf(),
		stats: FrameStats{PerCodeword: make([]int, iv.Depth)},
	}
}

// Encode encodes I*k message symbols into an interleaved I*n frame.
func (iv *Interleaved) Encode(msg []gf.Elem) ([]gf.Elem, error) {
	return iv.EncodeTo(make([]gf.Elem, iv.FrameN()), msg, nil)
}

// EncodeTo is Encode into a caller-owned I*n destination using FrameBuf
// scratch: with a reused fb it allocates nothing. Each codeword is
// encoded into the staging buffer and interleaved onto the wire with the
// stride copy kernel (gf.ScatterStride). A nil fb allocates fresh
// scratch. Returns dst.
func (iv *Interleaved) EncodeTo(dst, msg []gf.Elem, fb *FrameBuf) ([]gf.Elem, error) {
	if len(msg) != iv.FrameK() {
		return nil, fmt.Errorf("rs: frame message length %d, want %d", len(msg), iv.FrameK())
	}
	if len(dst) != iv.FrameN() {
		return nil, fmt.Errorf("rs: frame destination length %d, want %d", len(dst), iv.FrameN())
	}
	if fb == nil {
		fb = iv.NewFrameBuf()
	}
	for i := 0; i < iv.Depth; i++ {
		if _, err := iv.Code.EncodeTo(fb.cw, msg[i*iv.Code.K:(i+1)*iv.Code.K]); err != nil {
			return nil, err
		}
		gf.ScatterStride(dst, fb.cw, i, iv.Depth)
	}
	return dst, nil
}

// Decode deinterleaves and decodes a frame, returning the I*k message
// symbols and the total number of symbol errors corrected. It stops at
// the first uncorrectable codeword.
func (iv *Interleaved) Decode(recv []gf.Elem) ([]gf.Elem, int, error) {
	if len(recv) != iv.FrameN() {
		return nil, 0, fmt.Errorf("rs: frame length %d, want %d", len(recv), iv.FrameN())
	}
	msg := make([]gf.Elem, iv.FrameK())
	fb := iv.NewFrameBuf()
	total := 0
	for i := 0; i < iv.Depth; i++ {
		gf.GatherStride(fb.cw, recv, i, iv.Depth)
		res, err := iv.Code.DecodeTo(fb.dec, fb.cw)
		if err != nil {
			return nil, total, fmt.Errorf("rs: codeword %d of frame: %w", i, err)
		}
		copy(msg[i*iv.Code.K:], res.Message)
		total += res.NumErrors
	}
	return msg, total, nil
}

// FrameStats reports per-codeword decode detail for one interleaved
// frame — the margin signal adaptive link controllers feed on.
type FrameStats struct {
	// PerCodeword holds the corrections made in each of the Depth
	// codewords; -1 marks a codeword the decoder could not correct.
	PerCodeword []int
	// Failed counts uncorrectable codewords.
	Failed int
	// Total is the corrections summed over the decodable codewords.
	Total int
	// Max is the worst per-codeword correction count (failed codewords
	// count as the full bound t+1, i.e. past the correctable limit).
	Max int
}

// DecodeWithStats deinterleaves and decodes a frame like Decode but keeps
// going past uncorrectable codewords, so the returned FrameStats always
// covers every codeword. The message is complete only when err is nil;
// failed codewords leave their message symbols as received (systematic
// prefix, uncorrected). The returned error is the first codeword's decode
// error, wrapped with its index. Every call allocates fresh buffers, so
// one shared *Interleaved may serve any number of goroutines; use
// DecodeWithStatsTo with a per-worker FrameBuf for the zero-alloc path.
func (iv *Interleaved) DecodeWithStats(recv []gf.Elem) ([]gf.Elem, *FrameStats, error) {
	if len(recv) != iv.FrameN() {
		return nil, nil, fmt.Errorf("rs: frame length %d, want %d", len(recv), iv.FrameN())
	}
	msg := make([]gf.Elem, iv.FrameK())
	st, err := iv.DecodeWithStatsTo(msg, recv, iv.NewFrameBuf())
	return msg, st, err
}

// DecodeWithStatsTo is DecodeWithStats writing the I*k message into a
// caller-owned msg buffer and using FrameBuf scratch: with a reused fb
// the steady state allocates nothing (error wrapping on failed codewords
// is the only allocating path). The returned *FrameStats points into fb
// and is invalidated by the next call with the same buffer. A nil fb
// allocates fresh scratch.
func (iv *Interleaved) DecodeWithStatsTo(msg, recv []gf.Elem, fb *FrameBuf) (*FrameStats, error) {
	if len(recv) != iv.FrameN() {
		return nil, fmt.Errorf("rs: frame length %d, want %d", len(recv), iv.FrameN())
	}
	if len(msg) != iv.FrameK() {
		return nil, fmt.Errorf("rs: frame message length %d, want %d", len(msg), iv.FrameK())
	}
	if fb == nil {
		fb = iv.NewFrameBuf()
	}
	st := &fb.stats
	*st = FrameStats{PerCodeword: st.PerCodeword[:iv.Depth]}
	var firstErr error
	for i := 0; i < iv.Depth; i++ {
		gf.GatherStride(fb.cw, recv, i, iv.Depth)
		res, err := iv.Code.DecodeTo(fb.dec, fb.cw)
		if err != nil {
			st.PerCodeword[i] = -1
			st.Failed++
			if over := iv.Code.T + 1; over > st.Max {
				st.Max = over
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("rs: codeword %d of frame: %w", i, err)
			}
			copy(msg[i*iv.Code.K:], fb.cw[:iv.Code.K])
			continue
		}
		st.PerCodeword[i] = res.NumErrors
		st.Total += res.NumErrors
		if res.NumErrors > st.Max {
			st.Max = res.NumErrors
		}
		copy(msg[i*iv.Code.K:], res.Message)
	}
	return st, firstErr
}
