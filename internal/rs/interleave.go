package rs

import (
	"fmt"

	"repro/internal/gf"
)

// Interleaved Reed-Solomon: depth-I symbol interleaving of I codewords,
// the CCSDS-style construction that multiplies burst tolerance by the
// interleaving depth. A frame carries I*k message symbols; on the wire,
// symbol j of the frame belongs to codeword j mod I, so a burst of up to
// I*t consecutive corrupted symbols splits into at most t per codeword.
type Interleaved struct {
	Code  *Code
	Depth int
}

// NewInterleaved wraps the code with interleaving depth I >= 1.
func NewInterleaved(c *Code, depth int) (*Interleaved, error) {
	if depth < 1 {
		return nil, fmt.Errorf("rs: interleaving depth %d < 1", depth)
	}
	return &Interleaved{Code: c, Depth: depth}, nil
}

// FrameK returns the message symbols per frame (I*k).
func (iv *Interleaved) FrameK() int { return iv.Depth * iv.Code.K }

// FrameN returns the frame length on the wire (I*n).
func (iv *Interleaved) FrameN() int { return iv.Depth * iv.Code.N }

// BurstTolerance returns the longest guaranteed-correctable symbol burst.
func (iv *Interleaved) BurstTolerance() int { return iv.Depth * iv.Code.T }

// Encode encodes I*k message symbols into an interleaved I*n frame.
func (iv *Interleaved) Encode(msg []gf.Elem) ([]gf.Elem, error) {
	if len(msg) != iv.FrameK() {
		return nil, fmt.Errorf("rs: frame message length %d, want %d", len(msg), iv.FrameK())
	}
	out := make([]gf.Elem, iv.FrameN())
	for i := 0; i < iv.Depth; i++ {
		cw, err := iv.Code.Encode(msg[i*iv.Code.K : (i+1)*iv.Code.K])
		if err != nil {
			return nil, err
		}
		for j, s := range cw {
			out[j*iv.Depth+i] = s
		}
	}
	return out, nil
}

// Decode deinterleaves and decodes a frame, returning the I*k message
// symbols and the total number of symbol errors corrected.
func (iv *Interleaved) Decode(recv []gf.Elem) ([]gf.Elem, int, error) {
	if len(recv) != iv.FrameN() {
		return nil, 0, fmt.Errorf("rs: frame length %d, want %d", len(recv), iv.FrameN())
	}
	msg := make([]gf.Elem, iv.FrameK())
	total := 0
	cw := make([]gf.Elem, iv.Code.N)
	for i := 0; i < iv.Depth; i++ {
		for j := 0; j < iv.Code.N; j++ {
			cw[j] = recv[j*iv.Depth+i]
		}
		res, err := iv.Code.Decode(cw)
		if err != nil {
			return nil, total, fmt.Errorf("rs: codeword %d of frame: %w", i, err)
		}
		copy(msg[i*iv.Code.K:], res.Message)
		total += res.NumErrors
	}
	return msg, total, nil
}
