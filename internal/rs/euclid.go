package rs

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/gfpoly"
)

// Sugiyama's extended-Euclidean decoder: the algorithmic family behind
// the systolic Euclidean dividers the paper's Table 4 compares against.
// Instead of Berlekamp-Massey iteration, the key equation
//
//	Lambda(x) * S(x) = Omega(x)  (mod x^2t),  deg Omega < deg Lambda <= t
//
// is solved by running the extended Euclidean algorithm on (x^2t, S(x))
// and stopping as soon as the remainder degree drops below t. Both
// decoders must locate identical error patterns; the tests enforce it.

// SolveKeyEquationEuclid returns (Lambda, Omega) from the syndromes,
// normalized so Lambda(0) = 1.
func (c *Code) SolveKeyEquationEuclid(synd []gf.Elem) (lambda, omega gfpoly.Poly, err error) {
	f := c.F
	twoT := 2 * c.T
	// r_{-1} = x^2t, r_0 = S(x); v_{-1} = 0, v_0 = 1.
	rPrev := gfpoly.Mono(f, 1, twoT)
	rCur := gfpoly.New(f, synd...)
	vPrev := gfpoly.Zero(f)
	vCur := gfpoly.One(f)
	for !rCur.IsZero() && rCur.Degree() >= c.T {
		q, rem := rPrev.DivMod(rCur)
		rPrev, rCur = rCur, rem
		vPrev, vCur = vCur, vPrev.Add(q.Mul(vCur))
	}
	// Lambda = vCur normalized; Omega = rCur with the same scaling.
	c0 := vCur.Coeff(0)
	if c0 == 0 {
		return lambda, omega, fmt.Errorf("rs: Euclidean key equation degenerate (Lambda(0)=0)")
	}
	inv := f.Inv(c0)
	return vCur.Scale(inv), rCur.Scale(inv), nil
}

// DecodeEuclid decodes with the Sugiyama solver instead of
// Berlekamp-Massey; results must match Decode for every correctable word.
func (c *Code) DecodeEuclid(recv []gf.Elem) (*DecodeResult, error) {
	if len(recv) != c.N {
		return nil, fmt.Errorf("rs: received length %d, want %d", len(recv), c.N)
	}
	word := append([]gf.Elem(nil), recv...)
	synd := c.Syndromes(word)
	res := &DecodeResult{Corrected: word, Syndromes: synd}
	if AllZero(synd) {
		res.Message = word[:c.K]
		return res, nil
	}
	lambda, _, err := c.SolveKeyEquationEuclid(synd)
	if err != nil {
		return nil, err
	}
	nu := lambda.Degree()
	if nu > c.T {
		return nil, fmt.Errorf("rs: Euclidean locator degree %d exceeds t=%d", nu, c.T)
	}
	positions := c.ChienSearch(lambda)
	if len(positions) != nu {
		return nil, fmt.Errorf("rs: Chien found %d roots for degree-%d locator (uncorrectable)", len(positions), nu)
	}
	vals, err := c.Forney(synd, lambda, positions)
	if err != nil {
		return nil, err
	}
	for i, idx := range positions {
		word[idx] ^= vals[i]
	}
	if !AllZero(c.Syndromes(word)) {
		return nil, fmt.Errorf("rs: Euclidean correction verification failed")
	}
	res.Corrected = word
	res.Message = word[:c.K]
	res.NumErrors = nu
	res.Positions = positions
	return res, nil
}
