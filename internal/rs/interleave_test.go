package rs

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
)

func TestInterleavedRoundTrip(t *testing.T) {
	c := Must(gf.MustDefault(8), 255, 239)
	iv, err := NewInterleaved(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if iv.FrameK() != 5*239 || iv.FrameN() != 5*255 || iv.BurstTolerance() != 40 {
		t.Fatalf("frame geometry wrong: %d/%d/%d", iv.FrameK(), iv.FrameN(), iv.BurstTolerance())
	}
	rng := rand.New(rand.NewSource(1))
	msg := make([]gf.Elem, iv.FrameK())
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(256))
	}
	frame, err := iv.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, nerr, err := iv.Decode(frame)
	if err != nil || nerr != 0 {
		t.Fatalf("clean decode: %v (%d errors)", err, nerr)
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatal("clean round trip corrupted")
		}
	}
}

func TestInterleavedBurstTolerance(t *testing.T) {
	// Depth 4, t=8: a 32-symbol contiguous burst must be fully corrected,
	// while the plain code would collapse under it.
	c := Must(gf.MustDefault(8), 255, 239)
	iv, _ := NewInterleaved(c, 4)
	rng := rand.New(rand.NewSource(2))
	msg := make([]gf.Elem, iv.FrameK())
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(256))
	}
	frame, _ := iv.Encode(msg)
	recv := append([]gf.Elem(nil), frame...)
	start := 100
	for i := 0; i < iv.BurstTolerance(); i++ {
		recv[start+i] ^= gf.Elem(1 + rng.Intn(255))
	}
	got, nerr, err := iv.Decode(recv)
	if err != nil {
		t.Fatalf("burst decode failed: %v", err)
	}
	if nerr != iv.BurstTolerance() {
		t.Errorf("corrected %d symbols, want %d", nerr, iv.BurstTolerance())
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatal("burst decode corrupted message")
		}
	}
	// Control: the same burst inside one un-interleaved codeword fails.
	plainMsg := msg[:c.K]
	cw, _ := c.Encode(plainMsg)
	for i := 0; i < 32; i++ {
		cw[start%c.N-32+i] ^= gf.Elem(1 + rng.Intn(255))
	}
	if _, err := c.Decode(cw); err == nil {
		t.Error("32-symbol burst decoded by a t=8 code (impossible)")
	}
}

func TestInterleavedValidation(t *testing.T) {
	c := Must(gf.MustDefault(8), 255, 239)
	if _, err := NewInterleaved(c, 0); err == nil {
		t.Error("depth 0 accepted")
	}
	iv, _ := NewInterleaved(c, 2)
	if _, err := iv.Encode(make([]gf.Elem, 10)); err == nil {
		t.Error("short frame message accepted")
	}
	if _, _, err := iv.Decode(make([]gf.Elem, 10)); err == nil {
		t.Error("short frame accepted")
	}
}

func TestInterleavedBeyondToleranceFails(t *testing.T) {
	c := Must(gf.MustDefault(8), 255, 251) // t=2
	iv, _ := NewInterleaved(c, 2)
	rng := rand.New(rand.NewSource(3))
	msg := make([]gf.Elem, iv.FrameK())
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(256))
	}
	frame, _ := iv.Encode(msg)
	// A 10-symbol burst: 5 errors per codeword, beyond t=2. The decoder
	// must either report failure or miscorrect to a *different* message —
	// it can never silently return the original one.
	for i := 0; i < 10; i++ {
		frame[50+i] ^= gf.Elem(1 + rng.Intn(255))
	}
	got, _, err := iv.Decode(frame)
	if err == nil {
		same := true
		for i := range msg {
			if got[i] != msg[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("over-tolerance burst decoded to the original message (impossible)")
		} else {
			t.Log("over-tolerance burst miscorrected (expected behavior for 5 errors in a d=5 code)")
		}
	}
}

// TestDecodeWithStats checks per-codeword decode detail: clean frames,
// unevenly distributed errors, and frames with an uncorrectable
// codeword (stats must still cover every codeword).
func TestDecodeWithStats(t *testing.T) {
	f := gf.MustDefault(8)
	code := Must(f, 255, 239) // t=8
	iv, err := NewInterleaved(code, 3)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]gf.Elem, iv.FrameK())
	for i := range msg {
		msg[i] = gf.Elem(i % 251)
	}
	frame, err := iv.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}

	// Clean frame.
	got, st, err := iv.DecodeWithStats(append([]gf.Elem(nil), frame...))
	if err != nil || st.Failed != 0 || st.Total != 0 || st.Max != 0 {
		t.Fatalf("clean frame: stats %+v err %v", st, err)
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatal("clean frame decoded to wrong message")
		}
	}

	// 5 errors in codeword 1, 2 in codeword 2: PerCodeword [0 5 2].
	recv := append([]gf.Elem(nil), frame...)
	for j := 0; j < 5; j++ {
		recv[(j*3)*iv.Depth+1] ^= 0xA5
	}
	for j := 0; j < 2; j++ {
		recv[(j*7)*iv.Depth+2] ^= 0x3C
	}
	got, st, err = iv.DecodeWithStats(recv)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 5, 2}
	for i, w := range want {
		if st.PerCodeword[i] != w {
			t.Errorf("PerCodeword = %v, want %v", st.PerCodeword, want)
			break
		}
	}
	if st.Total != 7 || st.Max != 5 || st.Failed != 0 {
		t.Errorf("stats %+v, want Total 7 Max 5 Failed 0", st)
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatal("corrupted frame decoded to wrong message")
		}
	}

	// Overwhelm codeword 0 (t+1 scattered errors) while codeword 1 keeps
	// 3 correctable ones: stats still cover all codewords, Max reports
	// past-the-bound, and the error names the failed codeword.
	recv = append([]gf.Elem(nil), frame...)
	for j := 0; j <= code.T; j++ {
		recv[(j*11)*iv.Depth] ^= 0x55
	}
	for j := 0; j < 3; j++ {
		recv[(j*5)*iv.Depth+1] ^= 0x66
	}
	_, st, err = iv.DecodeWithStats(recv)
	if err == nil {
		t.Fatal("overwhelmed codeword decoded without error")
	}
	if st == nil || st.Failed != 1 || st.PerCodeword[0] != -1 {
		t.Fatalf("stats %+v, want Failed 1 and PerCodeword[0] = -1", st)
	}
	if st.PerCodeword[1] != 3 {
		t.Errorf("PerCodeword[1] = %d, want 3", st.PerCodeword[1])
	}
	if st.Max != code.T+1 {
		t.Errorf("Max = %d, want t+1 = %d", st.Max, code.T+1)
	}
}
