package rs

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
)

func TestInterleavedRoundTrip(t *testing.T) {
	c := Must(gf.MustDefault(8), 255, 239)
	iv, err := NewInterleaved(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if iv.FrameK() != 5*239 || iv.FrameN() != 5*255 || iv.BurstTolerance() != 40 {
		t.Fatalf("frame geometry wrong: %d/%d/%d", iv.FrameK(), iv.FrameN(), iv.BurstTolerance())
	}
	rng := rand.New(rand.NewSource(1))
	msg := make([]gf.Elem, iv.FrameK())
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(256))
	}
	frame, err := iv.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, nerr, err := iv.Decode(frame)
	if err != nil || nerr != 0 {
		t.Fatalf("clean decode: %v (%d errors)", err, nerr)
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatal("clean round trip corrupted")
		}
	}
}

func TestInterleavedBurstTolerance(t *testing.T) {
	// Depth 4, t=8: a 32-symbol contiguous burst must be fully corrected,
	// while the plain code would collapse under it.
	c := Must(gf.MustDefault(8), 255, 239)
	iv, _ := NewInterleaved(c, 4)
	rng := rand.New(rand.NewSource(2))
	msg := make([]gf.Elem, iv.FrameK())
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(256))
	}
	frame, _ := iv.Encode(msg)
	recv := append([]gf.Elem(nil), frame...)
	start := 100
	for i := 0; i < iv.BurstTolerance(); i++ {
		recv[start+i] ^= gf.Elem(1 + rng.Intn(255))
	}
	got, nerr, err := iv.Decode(recv)
	if err != nil {
		t.Fatalf("burst decode failed: %v", err)
	}
	if nerr != iv.BurstTolerance() {
		t.Errorf("corrected %d symbols, want %d", nerr, iv.BurstTolerance())
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatal("burst decode corrupted message")
		}
	}
	// Control: the same burst inside one un-interleaved codeword fails.
	plainMsg := msg[:c.K]
	cw, _ := c.Encode(plainMsg)
	for i := 0; i < 32; i++ {
		cw[start%c.N-32+i] ^= gf.Elem(1 + rng.Intn(255))
	}
	if _, err := c.Decode(cw); err == nil {
		t.Error("32-symbol burst decoded by a t=8 code (impossible)")
	}
}

func TestInterleavedValidation(t *testing.T) {
	c := Must(gf.MustDefault(8), 255, 239)
	if _, err := NewInterleaved(c, 0); err == nil {
		t.Error("depth 0 accepted")
	}
	iv, _ := NewInterleaved(c, 2)
	if _, err := iv.Encode(make([]gf.Elem, 10)); err == nil {
		t.Error("short frame message accepted")
	}
	if _, _, err := iv.Decode(make([]gf.Elem, 10)); err == nil {
		t.Error("short frame accepted")
	}
}

func TestInterleavedBeyondToleranceFails(t *testing.T) {
	c := Must(gf.MustDefault(8), 255, 251) // t=2
	iv, _ := NewInterleaved(c, 2)
	rng := rand.New(rand.NewSource(3))
	msg := make([]gf.Elem, iv.FrameK())
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(256))
	}
	frame, _ := iv.Encode(msg)
	// A 10-symbol burst: 5 errors per codeword, beyond t=2. The decoder
	// must either report failure or miscorrect to a *different* message —
	// it can never silently return the original one.
	for i := 0; i < 10; i++ {
		frame[50+i] ^= gf.Elem(1 + rng.Intn(255))
	}
	got, _, err := iv.Decode(frame)
	if err == nil {
		same := true
		for i := range msg {
			if got[i] != msg[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("over-tolerance burst decoded to the original message (impossible)")
		} else {
			t.Log("over-tolerance burst miscorrected (expected behavior for 5 errors in a d=5 code)")
		}
	}
}
