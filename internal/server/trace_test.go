package server

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/trace"
)

// TestFlagsWireRoundTrip: the status/flags split of header offset 6 must
// round-trip both halves and stay bit-exact with the pre-trace format
// when no flag is set (old peers always wrote plain big-endian status
// there).
func TestFlagsWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	plain := &Message{Op: OpStats, Status: StatusShuttingDown, ID: 42}
	if err := writeMessage(&buf, plain); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()[:headerSize]
	if got := binary.BigEndian.Uint16(hdr[6:]); got != uint16(StatusShuttingDown) {
		t.Fatalf("unflagged status field = %#04x, want the pre-trace encoding %#04x",
			got, uint16(StatusShuttingDown))
	}

	buf.Reset()
	flagged := &Message{Op: OpRSEncode, Status: StatusOK, Flags: FlagTraced, ID: 7, Payload: []byte("x")}
	if err := writeMessage(&buf, flagged); err != nil {
		t.Fatal(err)
	}
	hdr = buf.Bytes()[:headerSize]
	if got := binary.BigEndian.Uint16(hdr[6:]); got != FlagTraced {
		t.Fatalf("flagged status field = %#04x, want %#04x", got, FlagTraced)
	}
	got, err := readMessage(&buf, DefaultMaxPayload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flags != FlagTraced || got.Status != StatusOK {
		t.Fatalf("read split flags=%#04x status=%v, want %#04x and StatusOK", got.Flags, got.Status, FlagTraced)
	}

	// A status bit pattern must never leak into the flags half or vice
	// versa.
	buf.Reset()
	both := &Message{Op: OpRSDecode, Status: StatusCodecFailed, Flags: FlagTraced, ID: 9}
	if err := writeMessage(&buf, both); err != nil {
		t.Fatal(err)
	}
	got, err = readMessage(&buf, DefaultMaxPayload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusCodecFailed || got.Flags != FlagTraced {
		t.Fatalf("combined field split wrong: status=%v flags=%#04x", got.Status, got.Flags)
	}
}

// waitForSpans polls the server's trace ring until at least n spans for
// the given trace id show up (span recording completes asynchronously
// after the response is written).
func waitForSpans(t *testing.T, s *Server, traceID string, n int) []trace.Span {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		var got []trace.Span
		for _, sp := range s.TraceSnap().Spans {
			if sp.Trace == traceID {
				got = append(got, sp)
			}
		}
		if len(got) >= n {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d spans for trace %s after 2s: %+v", len(got), traceID, got)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTracedRequestSpans: a sampled request through a live server must
// leave the full span set — request, admission, per-stage, write-back —
// under one trace id, parented to the caller's span, while untraced
// requests leave the ring untouched.
func TestTracedRequestSpans(t *testing.T) {
	s, addr := startServer(t, Config{N: 255, K: 239, Depth: 2, Workers: 2, TraceRing: 64})
	c := dialT(t, addr)

	msg := make([]byte, s.Code().FrameK())
	rand.New(rand.NewSource(3)).Read(msg)

	// Untraced traffic records nothing.
	if _, err := c.RSEncode(msg); err != nil {
		t.Fatal(err)
	}
	if total := s.TraceSnap().Total; total != 0 {
		t.Fatalf("untraced request recorded %d spans", total)
	}

	tc := trace.Context{Trace: trace.NewID(), Span: trace.NewID(), Sampled: true}
	m := &Message{Op: OpRSEncode, Payload: msg}
	AttachTrace(m, tc)
	resp, err := c.Do(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Payload) != s.Code().FrameN() {
		t.Fatalf("traced encode returned %dB, want %d", len(resp.Payload), s.Code().FrameN())
	}

	spans := waitForSpans(t, s, trace.FormatID(tc.Trace), 4)
	byName := make(map[string]trace.Span)
	stage := false
	for _, sp := range spans {
		if sp.Service != "gfserved" {
			t.Errorf("span %s has service %q", sp.Name, sp.Service)
		}
		if strings.HasPrefix(sp.Name, "stage:") {
			stage = true
			continue
		}
		byName[sp.Name] = sp
	}
	for _, want := range []string{"request", "admission", "write-back"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("missing %q span; have %+v", want, spans)
		}
	}
	if !stage {
		t.Errorf("no per-stage span recorded: %+v", spans)
	}
	if req := byName["request"]; req.Parent != trace.FormatID(tc.Span) {
		t.Errorf("request span parent = %q, want the caller's span %s", req.Parent, trace.FormatID(tc.Span))
	}
	if req := byName["request"]; req.Status != "" {
		t.Errorf("successful request span has status %q", req.Status)
	}
}

// TestMalformedTraceExtensionIgnored: a request flagged as traced whose
// extension is garbage or truncated must be served normally (untraced),
// never rejected, and must record nothing.
func TestMalformedTraceExtensionIgnored(t *testing.T) {
	s, addr := startServer(t, Config{N: 255, K: 239, Depth: 2, Workers: 2, TraceRing: 64})
	c := dialT(t, addr)

	msg := make([]byte, s.Code().FrameK())
	rand.New(rand.NewSource(4)).Read(msg)

	for name, params := range map[string][]byte{
		"bad magic": bytes.Repeat([]byte{0xab}, trace.ExtSize),
		"truncated": {0x54, 0x43, 1, 1, 0, 0},
		"empty":     nil,
	} {
		resp, err := c.Do(&Message{Op: OpRSEncode, Flags: FlagTraced, Params: params, Payload: msg})
		if err != nil {
			t.Fatalf("%s: traced-flagged request failed: %v", name, err)
		}
		if len(resp.Payload) != s.Code().FrameN() {
			t.Fatalf("%s: encode returned %dB, want %d", name, len(resp.Payload), s.Code().FrameN())
		}
	}
	if total := s.TraceSnap().Total; total != 0 {
		t.Fatalf("malformed extensions recorded %d spans", total)
	}
}
