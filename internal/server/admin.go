package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"

	"repro/internal/gf"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/pipeline"
)

// RegisterMetrics registers the server ledger, the shared pipeline's
// stage/trace instruments and the process-wide GF kernel tier counters
// with reg. Call once per server per registry.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("gfp_server_connections_accepted_total",
		"Client connections accepted.", s.ctr.connsAccepted.Load)
	reg.GaugeFunc("gfp_server_connections_active",
		"Client connections currently open.",
		func() float64 { return float64(s.ctr.connsActive.Load()) })
	reg.CounterFunc("gfp_server_requests_total",
		"Requests framed off client connections.", s.ctr.requests.Load)
	reg.CounterFunc("gfp_server_responses_total",
		"OK responses written to clients.", s.ctr.responses.Load)
	reg.CounterFunc("gfp_server_rejects_total",
		"Error-status responses written to clients.", s.ctr.rejects.Load)
	reg.CounterFunc("gfp_server_dropped_total",
		"Requests whose response was never written (connection died).",
		s.ctr.dropped.Load)
	reg.CounterFunc("gfp_server_protocol_errors_total",
		"Framing violations that poisoned a connection (outside the request ledger).",
		s.ctr.protoErrors.Load)
	reg.CounterFunc("gfp_server_bytes_in_total",
		"Request bytes read off the wire (headers included).", s.ctr.bytesIn.Load)
	reg.CounterFunc("gfp_server_bytes_out_total",
		"Response bytes written to the wire (headers included).", s.ctr.bytesOut.Load)
	reg.GaugeFunc("gfp_server_info",
		"Constant 1; labels carry the codec configuration.",
		func() float64 { return 1 },
		obs.L("code", fmt.Sprintf("RS(%d,%d)", s.cfg.N, s.cfg.K)),
		obs.L("depth", fmt.Sprintf("%d", s.cfg.Depth)))

	if e := s.ecc; e != nil {
		reg.CounterFunc("gfp_ecc_ops_total",
			"Completed ECC operations.", e.derives.Load, obs.L("op", "ecdh-derive"))
		reg.CounterFunc("gfp_ecc_ops_total",
			"Completed ECC operations.", e.signs.Load, obs.L("op", "ecdsa-sign"))
		reg.CounterFunc("gfp_ecc_ops_total",
			"Completed ECC operations.", e.verifies.Load, obs.L("op", "ecdsa-verify"))
		reg.CounterFunc("gfp_ecc_ops_total",
			"Completed ECC operations.", e.sessions.Load, obs.L("op", "secure-session"))
		reg.CounterFunc("gfp_ecc_failures_total",
			"ECC operations that failed semantically (off-curve point, bad signature, ...).",
			e.failures.Load)
		reg.HistogramFunc("gfp_ecc_derive_seconds",
			"ecdh-derive compute latency (engine only, excludes queueing).", &e.deriveLat)
		reg.HistogramFunc("gfp_ecc_sign_seconds",
			"ecdsa-sign compute latency (engine only, excludes queueing).", &e.signLat)
		reg.GaugeFunc("gfp_ecc_info",
			"Constant 1; labels carry the ECC service configuration.",
			func() float64 { return 1 },
			obs.L("curve", e.curveName),
			obs.L("mul_strategy", e.eng.Curve().F.MulStrategy().String()))
	}

	for op := Op(1); int(op) < len(s.opLat); op++ {
		reg.HistogramFuncEx("gfp_server_op_latency_seconds",
			"End-to-end request latency (framed off the socket to response written), per op.",
			&s.opLat[op], &s.opEx[op], obs.L("op", op.String()))
	}
	s.cfg.SLO.RegisterMetrics(reg)

	s.pl.RegisterMetrics(reg)
	pipeline.RegisterGFKernelMetrics(reg)
}

// Healthy reports nil while the server is accepting and processing:
// Serve has been called, Shutdown has not, the shared pipeline still
// takes frames, and the once-per-process datapath self-test (see
// SelfTest) has passed — a backend whose kernel tables disagree with
// the scalar reference never reports healthy, so a routing front door
// ejects it instead of spreading wrong math. /healthz maps nil to 200
// and an error to 503.
func (s *Server) Healthy() error {
	s.mu.Lock()
	serving, draining := s.serving, s.draining
	s.mu.Unlock()
	switch {
	case draining:
		return errors.New("draining")
	case !serving:
		return errors.New("not serving")
	case s.run.Closed():
		return errors.New("pipeline closed")
	}
	if st := s.startupSelfTest(); !st.OK {
		return fmt.Errorf("datapath selftest failed: %s", st.Error)
	}
	return nil
}

// Tracer returns the shared pipeline's frame tracer, or nil when
// Config.TraceEvery was 0.
func (s *Server) Tracer() *pipeline.Tracer { return s.pl.Tracer() }

// Statsz is the /statsz payload: the GFP1 stats-op snapshot plus the
// full metrics registry, the calibrated GF kernel-tier selections
// (which implementation tier serves each (field, op) at which lengths)
// and the slowest traced frames — a superset of what the wire
// protocol's OpStats returns.
type Statsz struct {
	*StatsSnapshot
	Metrics          []obs.Metric          `json:"metrics"`
	KernelSelections []gf.TierSelection    `json:"kernel_selections,omitempty"`
	Traces           []pipeline.FrameTrace `json:"traces,omitempty"`
	SLO              []obs.SLOStatus       `json:"slo,omitempty"`
}

// TraceSnap captures the server's distributed-trace span ring — the
// state /tracez serves.
func (s *Server) TraceSnap() trace.Snap { return s.spans.Snap() }

// AdminHandler returns the admin mux gfserved mounts on -admin:
// /metrics (Prometheus text), /healthz, /statsz (JSON), /tracez
// (distributed-trace spans; see docs/OBSERVABILITY.md), /selftest
// (re-runs the differential datapath verification) and the
// net/http/pprof endpoints under /debug/pprof/.
func (s *Server) AdminHandler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if err := s.Healthy(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, _ *http.Request) {
		sz := Statsz{
			StatsSnapshot:    s.Snapshot(),
			Metrics:          reg.Gather(),
			KernelSelections: gf.Selections(),
			SLO:              s.cfg.SLO.Snapshot(),
		}
		if t := s.Tracer(); t != nil {
			sz.Traces = t.Dump()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(sz)
	})
	mux.HandleFunc("/tracez", trace.Handler("gfserved", s.spans.Snap))
	mux.HandleFunc("/selftest", func(w http.ResponseWriter, _ *http.Request) {
		res := s.SelfTest()
		w.Header().Set("Content-Type", "application/json")
		if !res.OK {
			w.WriteHeader(http.StatusInternalServerError)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(res)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
